// Package fpcc is a library for analysing dynamic congestion-control
// protocols with the Fokker-Planck approximation of Mukherjee &
// Strikwerda (SIGCOMM '91 / UPenn TR MS-CIS-91-18), "Analysis of
// Dynamic Congestion Control Protocols: A Fokker-Planck
// Approximation".
//
// The paper models a bottleneck queue with service rate μ whose
// sources adjust their sending rate λ(t) from (possibly delayed)
// queue-length feedback, dλ/dt = g(Q, λ), and derives the extended
// Fokker-Planck equation for the joint density f(t, q, v) of queue
// length and queue growth rate v = λ − μ:
//
//	f_t + v·f_q + (g·f)_v = (σ²/2)·f_qq        (Eq. 14)
//
// The package exposes six complementary views of the same system:
//
//   - FokkerPlanck: a finite-difference solver for Eq. 14 (the paper's
//     primary contribution) with moments, marginals and overflow
//     probabilities.
//   - Characteristics: the σ = 0 phase-plane analysis of Section 5 —
//     exact piecewise trajectories, Poincaré sections, and the
//     Theorem 1 convergence classification.
//   - Fluid: the deterministic Bolot-Shankar baseline with N sources
//     and per-source feedback delays (Sections 6-7).
//   - PacketSim: a packet-level discrete-event simulator of the real
//     stochastic system the analysis approximates.
//   - MeanField: the large-N kinetic limit — per-class rate densities
//     for millions of heterogeneous sources at O(classes × bins) cost,
//     with a finite-N particle backend as cross-check.
//   - NetMeanField: the same kinetic limit over an arbitrary topology
//     of fluid link queues — routed source classes observing summed,
//     delayed path backlogs, at O(links + classes × bins) cost (the
//     mean-field twin of NetSim's scenario class).
//
// # Quick start
//
//	law := fpcc.AIMD{C0: 2, C1: 0.8, QHat: 20} // the JRJ algorithm
//	solver, err := fpcc.NewFokkerPlanck(fpcc.FokkerPlanckConfig{
//		Law: law, Mu: 10, Sigma: 1,
//		QMax: 60, NQ: 120, VMin: -12, VMax: 12, NV: 96,
//	})
//	if err != nil { ... }
//	_ = solver.SetGaussian(5, -2, 1.5, 1) // initial density blob
//	_ = solver.Advance(50, 0)             // integrate Eq. 14 to t=50
//	m := solver.Moments()                 // E[Q] ≈ q̂, E[v] ≈ 0
//
// See the examples directory for runnable programs and EXPERIMENTS.md
// for the reproduction of every table and figure in the paper.
package fpcc

import (
	"flag"
	"io"

	"fpcc/internal/characteristics"
	"fpcc/internal/churn"
	"fpcc/internal/control"
	"fpcc/internal/des"
	"fpcc/internal/fluid"
	"fpcc/internal/fokkerplanck"
	"fpcc/internal/markov"
	"fpcc/internal/meanfield"
	"fpcc/internal/netmf"
	"fpcc/internal/netsim"
	"fpcc/internal/obs"
	"fpcc/internal/obs/chrometrace"
	"fpcc/internal/obs/obscli"
	"fpcc/internal/sde"
	"fpcc/internal/stability"
	"fpcc/internal/stats"
	"fpcc/internal/sweep"
	"fpcc/internal/traffic"
)

// Law is a rate-control law g(q, λ): the drift of the sending rate
// given the observed queue length. The paper's Equation 4.
type Law = control.Law

// AIMD is the paper's linear-increase/exponential-decrease law
// (Equation 2), the rate analogue of the Jacobson / Ramakrishnan-Jain
// window algorithm: dλ/dt = +C0 when Q ≤ QHat, −C1·λ when Q > QHat.
type AIMD = control.AIMD

// AIAD is the linear-increase/linear-decrease variant, which
// oscillates even without feedback delay (Section 7).
type AIAD = control.AIAD

// MIMD is the multiplicative-increase/multiplicative-decrease variant.
type MIMD = control.MIMD

// CustomLaw wraps an arbitrary drift function as a Law.
type CustomLaw = control.Custom

// SmoothAIMD is AIMD with the hard threshold replaced by a logistic
// blend — the differentiable variant the linear stability analysis
// (Linearize, CriticalDelay) requires.
type SmoothAIMD = control.SmoothAIMD

// LinearLaw is the proportional-derivative rate law
// g = −Kq·(q−q̂) − Kl·(λ−MuRef), whose damping — and with it the
// delay budget τ* — is a free design parameter (experiment E23).
type LinearLaw = control.Linear

// Window is the original window-based algorithm (Equation 1) with its
// rate-law correspondence.
type Window = control.Window

// NewAIMD validates and returns the paper's AIMD law.
func NewAIMD(c0, c1, qHat float64) (AIMD, error) { return control.NewAIMD(c0, c1, qHat) }

// NewAIAD validates and returns an AIAD law.
func NewAIAD(c0, c1, qHat float64) (AIAD, error) { return control.NewAIAD(c0, c1, qHat) }

// NewMIMD validates and returns a MIMD law.
func NewMIMD(c0, c1, qHat float64) (MIMD, error) { return control.NewMIMD(c0, c1, qHat) }

// NewWindow validates and returns a window law.
func NewWindow(a, d, qHat float64) (Window, error) { return control.NewWindow(a, d, qHat) }

// NewSmoothAIMD validates and returns a smooth AIMD law of the given
// blend width.
func NewSmoothAIMD(c0, c1, qHat, width float64) (SmoothAIMD, error) {
	return control.NewSmoothAIMD(c0, c1, qHat, width)
}

// NewLinearLaw validates and returns a PD law.
func NewLinearLaw(kq, kl, qHat, muRef float64) (LinearLaw, error) {
	return control.NewLinear(kq, kl, qHat, muRef)
}

// FokkerPlanckConfig configures the Eq. 14 solver. Its Workers field
// bounds the solver's intra-step sweep parallelism (0 = GOMAXPROCS);
// like every worker knob in this module it changes wall-clock time
// only, never results — the solution is bit-identical for any value.
type FokkerPlanckConfig = fokkerplanck.Config

// FokkerPlanck is the finite-difference solver for Eq. 14.
type FokkerPlanck = fokkerplanck.Solver

// FPMoments are the low-order moments of the FP density.
type FPMoments = fokkerplanck.Moments

// NewFokkerPlanck builds an Eq. 14 solver.
func NewFokkerPlanck(cfg FokkerPlanckConfig) (*FokkerPlanck, error) {
	return fokkerplanck.New(cfg)
}

// Point is a phase-plane state (Q, λ).
type Point = characteristics.Point

// ExactPath is a closed-form AIMD characteristic trajectory.
type ExactPath = characteristics.ExactPath

// Behavior classifies a trajectory: Converging (Theorem 1 spiral),
// NeutralCycle, Diverging, or Inconclusive.
type Behavior = characteristics.Behavior

// Behavior values.
const (
	Converging   = characteristics.Converging
	NeutralCycle = characteristics.NeutralCycle
	Diverging    = characteristics.Diverging
	Inconclusive = characteristics.Inconclusive
)

// TraceExact integrates the AIMD characteristic system in closed form
// (Section 5): parabolic arcs below q̂, exponential arcs above,
// switching times located analytically.
func TraceExact(law AIMD, mu float64, p0 Point, maxTime float64, maxSegments int) (*ExactPath, error) {
	return characteristics.TraceExact(law, mu, p0, maxTime, maxSegments)
}

// DelayedPath is an exactly traced trajectory of the delayed system
// (Section 7): closed-form arcs with branch switches at the q̂-crossing
// times shifted by the feedback delay τ.
type DelayedPath = characteristics.DelayedPath

// CycleMetrics summarizes a delay-induced limit cycle.
type CycleMetrics = characteristics.CycleMetrics

// TraceExactDelayed integrates the delayed AIMD system exactly; its
// Cycle method measures the Section 7 limit cycle to machine
// precision.
func TraceExactDelayed(law AIMD, mu, tau float64, p0 Point, tEnd float64, maxSegments int) (*DelayedPath, error) {
	return characteristics.TraceExactDelayed(law, mu, tau, p0, tEnd, maxSegments)
}

// ReturnMap evaluates one revolution of the Poincaré map of the AIMD
// spiral at the section q = q̂ (Theorem 1's contraction; the small-
// amplitude law is a′ = a − (2/3)a²/μ).
func ReturnMap(law AIMD, mu, a float64) (float64, error) {
	return characteristics.ReturnMap(law, mu, a)
}

// EquilibriumPoint returns Theorem 1's limit point (q̂, μ).
func EquilibriumPoint(law Law, mu float64) Point {
	return characteristics.EquilibriumPoint(law, mu)
}

// FluidSource is one sender in the deterministic fluid model.
type FluidSource = fluid.Source

// FluidModel is the Bolot-Shankar deterministic baseline: coupled
// (delay) differential equations for Q and each λᵢ.
type FluidModel = fluid.Model

// FluidSolution is a solved fluid trajectory.
type FluidSolution = fluid.Solution

// PredictedShares returns Section 6's closed-form share law
// λᵢ ∝ C0ᵢ/C1ᵢ for AIMD sources sharing a bottleneck.
func PredictedShares(laws []AIMD) ([]float64, error) { return fluid.PredictedShares(laws) }

// PacketSimConfig configures the packet-level simulator.
type PacketSimConfig = des.Config

// PacketSource describes one sender in the packet simulator.
type PacketSource = des.SourceConfig

// PacketSim is the discrete-event packet-level simulator.
type PacketSim = des.Sim

// PacketSimResult summarizes a packet simulation run.
type PacketSimResult = des.Result

// NewPacketSim builds a packet-level simulator.
func NewPacketSim(cfg PacketSimConfig) (*PacketSim, error) { return des.New(cfg) }

// WindowSource describes a sender running the original window
// algorithm (Equation 1) in the packet simulator.
type WindowSource = des.WindowSourceConfig

// NewWindowSim builds a packet simulator whose sources run the window
// algorithm of Equation 1 (one update per RTT, rate = window/RTT).
func NewWindowSim(mu float64, seed uint64, sources []WindowSource, sampleEvery float64) (*PacketSim, error) {
	return des.NewWindowSim(mu, seed, sources, sampleEvery)
}

// TandemConfig describes a multi-hop tandem network simulation.
type TandemConfig = des.TandemConfig

// TandemSource is one flow through the tandem network.
type TandemSource = des.TandemSource

// TandemSim simulates flows over a path of store-and-forward hops —
// the setting of the Zhang/Jacobson multi-hop unfairness observation.
// New multi-hop code should prefer NetSim, which generalizes the
// tandem chain to arbitrary topologies; TandemSim remains as the
// hardwired special case netsim is tested against.
type TandemSim = des.TandemSim

// NewTandemSim builds a tandem-network simulator.
func NewTandemSim(cfg TandemConfig) (*TandemSim, error) { return des.NewTandem(cfg) }

// Arbitrary-topology packet network simulator (internal/netsim): a
// directed graph of queues with per-node gateway disciplines,
// carrying rate-controlled flows over explicit multi-hop routes. The
// single-node and linear-chain special cases reduce to PacketSim and
// TandemSim; new multi-hop code should start here.

// NetNode is one store-and-forward queue in a netsim topology.
type NetNode = netsim.Node

// NetLink is a directed edge with propagation delay.
type NetLink = netsim.Link

// NetFlow is one rate-controlled sender following a fixed multi-hop
// route.
type NetFlow = netsim.Flow

// NetConfig describes an arbitrary-topology packet simulation.
type NetConfig = netsim.Config

// NetSim is the general-topology packet simulator.
type NetSim = netsim.Sim

// NetResult summarizes a netsim run.
type NetResult = netsim.Result

// NewNetSim builds a general-topology packet simulator.
func NewNetSim(cfg NetConfig) (*NetSim, error) { return netsim.New(cfg) }

// ConstantRateLaw returns a zero-drift law: a flow using it sends at
// its initial rate forever, modelling uncontrolled cross-traffic.
func ConstantRateLaw() Law { return netsim.ConstantRate() }

// ParkingLotConfig parameterizes the parking-lot fairness benchmark.
type ParkingLotConfig = netsim.ParkingLotConfig

// NewParkingLot builds the parking-lot topology: one long flow over a
// chain of bottleneck hops, one short cross flow per hop.
func NewParkingLot(pc ParkingLotConfig) (NetConfig, error) { return netsim.ParkingLot(pc) }

// CrossChainConfig parameterizes the bottleneck-migration scenario.
type CrossChainConfig = netsim.CrossChainConfig

// NewCrossChain builds a two-hop chain with constant-rate cross
// traffic at the second hop.
func NewCrossChain(cc CrossChainConfig) (NetConfig, error) { return netsim.CrossChain(cc) }

// SweepParam is one axis of a scenario-sweep grid.
type SweepParam = netsim.Param

// SweepConfig describes an N-dimensional scenario sweep evaluated in
// parallel with deterministic per-cell seeds.
type SweepConfig = netsim.SweepConfig

// SweepCell is the aggregate of one sweep grid cell.
type SweepCell = netsim.CellResult

// SweepResult holds a completed sweep in grid order; WriteCSV and
// WriteJSON render it byte-identically for any worker count.
type SweepResult = netsim.SweepResult

// RunSweep shards the grid across parallel workers and aggregates
// per-flow throughput, fairness and queue statistics per cell.
func RunSweep(cfg SweepConfig) (*SweepResult, error) { return netsim.Sweep(cfg) }

// Engine-agnostic parameter sweeps (internal/sweep): the worker-pool,
// deterministic-seeding and byte-stable-aggregation machinery behind
// RunSweep, usable with any evaluation function — Fokker-Planck
// solves, DDE integrations, packet simulations, or anything else.
// Results (and any error) are independent of the worker count.

// GridDim is one named axis of a generic sweep grid.
type GridDim = sweep.Dim

// Grid is an N-dimensional parameter grid enumerated row-major (last
// dimension fastest).
type Grid = sweep.Grid

// GridCell is one evaluated point: its index in grid order, decoded
// dimension values, and deterministic per-cell seed.
type GridCell = sweep.Cell

// GridConfig describes a generic sweep: grid, base seed, worker bound.
type GridConfig = sweep.Config

// GridRow is one cell's output under a named-column schema (float64,
// integer, string or []float64 values).
type GridRow = sweep.Row

// GridResult holds a completed row-producing sweep; its WriteCSV and
// WriteJSON render full-precision output byte-identically for any
// worker count.
type GridResult = sweep.Result

// SweepGrid evaluates fn over every cell of the grid on up to
// cfg.Workers goroutines and returns the results in grid order. The
// error, if any, reports the lowest-indexed failing cell.
func SweepGrid[T any](cfg GridConfig, fn func(GridCell) (T, error)) ([]T, error) {
	return sweep.Run(cfg, fn)
}

// SweepGridRows evaluates a sweep whose cells produce named-column
// rows, for byte-stable CSV/JSON emission.
func SweepGridRows(cfg GridConfig, columns []string, fn func(GridCell) (GridRow, error)) (*GridResult, error) {
	return sweep.RunRows(cfg, columns, fn)
}

// Mean-field population engine (internal/meanfield): the paper's
// large-N limit made first-class. Heterogeneous classes of sources —
// mixed laws, RTTs, weights, populations — evolve as per-class rate
// densities coupled to the shared bottleneck queue, at
// O(classes × bins) cost per step independent of N, so 10⁶⁺-source
// scenarios run in milliseconds. A cross-checking finite-N particle
// backend (structure-of-arrays, chunked worker pool, deterministic
// for any worker count) provides the stochastic ground truth the
// density limit is validated against (experiment E28).

// MeanFieldClass describes one homogeneous sub-population: law,
// population size, weight, feedback delay (RTT), initial rate blob
// and intrinsic rate noise.
type MeanFieldClass = meanfield.Class

// MeanFieldConfig describes a mean-field scenario: class mix, shared
// bottleneck, rate domain and step. Both backends take the same
// config; its Workers field bounds the density engine's per-step
// class parallelism (0 = GOMAXPROCS) without affecting results.
type MeanFieldConfig = meanfield.Config

// MeanField is the kinetic (population-density) engine.
type MeanField = meanfield.Density

// MeanFieldParticles is the finite-N SoA particle backend.
type MeanFieldParticles = meanfield.Particles

// MeanFieldClasses builds the Classes slice of a MeanFieldConfig in
// one expression.
func MeanFieldClasses(classes ...MeanFieldClass) []MeanFieldClass { return classes }

// NewMeanField builds the kinetic engine: per-class rate densities on
// a shared λ-grid, upwind or MUSCL transport, coupled queue ODE.
func NewMeanField(cfg MeanFieldConfig) (*MeanField, error) { return meanfield.NewDensity(cfg) }

// NewMeanFieldParticles builds the finite-N particle backend; workers
// bounds the per-step parallelism (0 = GOMAXPROCS) and never affects
// results.
func NewMeanFieldParticles(cfg MeanFieldConfig, seed uint64, workers int) (*MeanFieldParticles, error) {
	return meanfield.NewParticles(cfg, seed, workers)
}

// MeanFieldStepper is the stepping surface both mean-field backends
// share.
type MeanFieldStepper = meanfield.Stepper

// MeanFieldSteadyStats advances either backend to the horizon and
// returns the window-averaged queue and per-class mean rates over
// (warm, horizon]; onStep (optional) runs after every step for trace
// sampling.
func MeanFieldSteadyStats(s MeanFieldStepper, warm, horizon float64, onStep func()) (meanQ float64, meanRates []float64, err error) {
	return meanfield.SteadyStats(s, warm, horizon, onStep)
}

// Networked mean-field engine (internal/netmf): the large-N kinetic
// limit over an arbitrary topology of fluid link queues — the join of
// NetSim's scenario class and MeanField's scaling. Classes of sources
// follow routes through a netsim-style node/link graph (NetTopology),
// observing the summed, delayed backlog of their path; stepping costs
// O(links + classes × bins) independent of every class's population,
// so parking-lot and bottleneck-migration studies run at 10⁶ sources
// per class (experiments E30, E31). A one-node topology reduces
// bit-for-bit to MeanField.

// NetTopology is the node/link graph shared by NetSim and the
// networked mean-field engine (route validation, path delays).
type NetTopology = netsim.Topology

// NetMeanFieldClass describes one source class of a networked
// mean-field scenario: law, population, route, RTT, initial blob and
// rate noise.
type NetMeanFieldClass = netmf.Class

// NetMeanFieldConfig describes a networked mean-field scenario
// (its Workers field bounds per-step class parallelism, 0 =
// GOMAXPROCS, without affecting results):
// topology, routed class mix, rate domain and step.
type NetMeanFieldConfig = netmf.Config

// NetMeanField is the networked kinetic engine: one rate density per
// class coupled to one fluid queue ODE per node.
type NetMeanField = netmf.Engine

// NewNetMeanField builds the networked kinetic engine.
func NewNetMeanField(cfg NetMeanFieldConfig) (*NetMeanField, error) { return netmf.New(cfg) }

// NetMeanFieldSteadyStats advances the networked engine to the
// horizon and returns the window-averaged per-node queues and
// per-class mean rates over [warm, horizon]; onStep (optional) runs
// after every step for trace sampling.
func NetMeanFieldSteadyStats(e *NetMeanField, warm, horizon float64, onStep func()) (meanQ, meanRates []float64, err error) {
	return netmf.SteadyStats(e, warm, horizon, onStep)
}

// NetMeanFieldParkingLotConfig parameterizes the large-N parking-lot
// benchmark.
type NetMeanFieldParkingLotConfig = netmf.ParkingLotConfig

// NewNetMeanFieldParkingLot builds the parking-lot fairness benchmark
// as a mean-field class mix: one long class over a chain of hops, one
// cross class per hop.
func NewNetMeanFieldParkingLot(pc NetMeanFieldParkingLotConfig) (NetMeanFieldConfig, error) {
	return netmf.ParkingLot(pc)
}

// NetMeanFieldCrossChainConfig parameterizes the large-N
// bottleneck-migration scenario.
type NetMeanFieldCrossChainConfig = netmf.CrossChainConfig

// NewNetMeanFieldCrossChain builds the two-hop class-mix-ramp
// scenario: an adaptive class over both hops vs a constant-rate class
// at the second.
func NewNetMeanFieldCrossChain(cc NetMeanFieldCrossChainConfig) (NetMeanFieldConfig, error) {
	return netmf.CrossChain(cc)
}

// Open systems and adversarial traffic (internal/churn + misbehaving
// laws in internal/control): birth–death session dynamics — Poisson
// arrivals, exponential or heavy-tailed Pareto lifetimes — threaded
// through the kinetic engines as O(classes × bins) source/sink terms
// (MeanFieldClass.Churn, NetMeanFieldClass.Churn) and through the
// packet simulator as per-session birth/death events
// (NetConfig.Churn), plus the non-cooperating source laws the
// honest-vs-adversarial experiments E32–E34 are built on.

// ChurnLifetime is a session-lifetime distribution: a sampler for the
// packet engines and a hyperexponential phase mixture for the kinetic
// ones, so both views of the same open system agree.
type ChurnLifetime = churn.Lifetime

// ChurnPhase is one exponential phase of a lifetime's
// hyperexponential representation.
type ChurnPhase = churn.Phase

// ChurnExponential is the memoryless session lifetime.
type ChurnExponential = churn.Exponential

// ChurnPareto is the heavy-tailed (Pareto) session lifetime, fitted
// as a hyperexponential phase mixture for the density engines.
type ChurnPareto = churn.Pareto

// ChurnFlow opens one engine class: Poisson session arrivals, a
// lifetime distribution, and the newborn rate profile. Assign it to
// MeanFieldClass.Churn or NetMeanFieldClass.Churn.
type ChurnFlow = churn.Flow

// ChurnPulse is the synchronized on/off duty-cycle envelope of a
// blaster population in the density engines (the mean-field twin of a
// traffic.SquareWave-modulated packet source).
type ChurnPulse = churn.Pulse

// NetChurnClass is an open session class of the packet simulator:
// Poisson arrivals, sampled lifetimes, explicit per-session
// birth/death events (NetConfig.Churn).
type NetChurnClass = netsim.ChurnClass

// NewChurnExponential returns an exponential session lifetime with
// the given mean.
func NewChurnExponential(mean float64) (ChurnExponential, error) {
	return churn.NewExponential(mean)
}

// NewChurnPareto returns a Pareto session lifetime with tail index
// alpha (> 1) and scale xm.
func NewChurnPareto(alpha, xm float64) (ChurnPareto, error) { return churn.NewPareto(alpha, xm) }

// NewChurnPulse returns a duty-cycle envelope: factor hi for durHi
// seconds, lo for durLo, repeating from t = 0.
func NewChurnPulse(hi, lo, durHi, durLo float64) (*ChurnPulse, error) {
	return churn.NewPulse(hi, lo, durHi, durLo)
}

// UnresponsiveLaw is the open-loop blaster: zero drift, so a source
// holds its rate regardless of congestion feedback (a CBR flow, or an
// on/off blaster when combined with a Burst modulator or ChurnPulse).
type UnresponsiveLaw = control.Unresponsive

// GreedyLaw is the defecting law: it follows the additive-increase
// branch everywhere and ignores every decrease signal, probing up to
// its rate cap.
type GreedyLaw = control.Greedy

// NewGreedyLaw validates and returns a greedy law with probe gain c0
// and rate cap cap.
func NewGreedyLaw(c0, cap float64) (GreedyLaw, error) { return control.NewGreedy(c0, cap) }

// EnsembleConfig configures an SDE particle ensemble of the Eq. 14
// diffusion (the Monte-Carlo ground truth for the PDE). Its Workers
// field bounds the per-step chunk parallelism (0 = GOMAXPROCS);
// chunk streams are fixed by Particles and Seed alone, so results
// are byte-identical for any value.
type EnsembleConfig = sde.Config

// Ensemble is a reflected-SDE particle ensemble.
type Ensemble = sde.Ensemble

// NewEnsemble builds a particle ensemble.
func NewEnsemble(cfg EnsembleConfig) (*Ensemble, error) { return sde.New(cfg) }

// JainIndex is Jain's fairness index (1 = perfectly fair).
func JainIndex(alloc []float64) float64 { return stats.JainIndex(alloc) }

// KSTwoSample returns the two-sample Kolmogorov-Smirnov statistic and
// asymptotic p-value — a whole-distribution comparison used to test
// FP marginals against simulated queue samples.
func KSTwoSample(a, b []float64) (d, pValue float64, err error) { return stats.KSTwoSample(a, b) }

// BatchMeans estimates the mean of a correlated stationary series
// with a batch-means confidence half-width (z = 1.96 for 95%).
func BatchMeans(xs []float64, nBatches int, z float64) (mean, halfWidth float64, err error) {
	return stats.BatchMeans(xs, nBatches, z)
}

// Loop stability analysis (Section 7, made quantitative).

// Linearization holds the delayed feedback loop linearized at its
// equilibrium: dx/dt = y, dy/dt = A·x(t−τ) + B·y.
type Linearization = stability.Linearization

// Linearize computes the equilibrium and partial derivatives of a law
// at service rate mu, bracketing the equilibrium queue in [lo, hi].
func Linearize(law Law, mu, lo, hi float64) (*Linearization, error) {
	return stability.Linearize(law, mu, lo, hi)
}

// CriticalDelay returns the Hopf delay τ* and crossing frequency ω*
// of the linearized loop: stable for τ < τ*, oscillatory beyond.
func CriticalDelay(a, b float64) (tau, omega float64, err error) {
	return stability.CriticalDelay(a, b)
}

// DominantRoot returns the rightmost characteristic root of the
// delayed loop — its real part is the growth rate of disturbances.
func DominantRoot(a, b, tau float64) (complex128, error) {
	return stability.DominantRoot(a, b, tau)
}

// MultiSourceLinearize linearizes the symmetric (aggregate) mode of n
// identical delayed sources sharing the bottleneck; the result feeds
// CriticalDelay/DominantRoot directly. The n−1 difference modes are
// delay-free and damped at DifferenceModeRate.
func MultiSourceLinearize(law Law, mu float64, n int, lo, hi float64) (*Linearization, error) {
	return stability.MultiSourceLinearize(law, mu, n, lo, hi)
}

// DifferenceModeRate returns the decay rate of pairwise rate
// differences between equal-parameter, equal-delay sources (negative
// means fairness is restored exponentially even under delay).
func DifferenceModeRate(law Law, mu float64, n int, lo, hi float64) (float64, error) {
	return stability.DifferenceModeRate(law, mu, n, lo, hi)
}

// Exact Markov ground truth for Eq. 14.

// MarkovChain is a sparse finite-state CTMC with a uniformization
// transient solver.
type MarkovChain = markov.Chain

// BirthDeath is a one-dimensional birth-death chain (M/M/1/K and
// state-dependent variants) with product-form stationary laws.
type BirthDeath = markov.BirthDeath

// ControlledQueue is the exact CTMC on (queue length, discretized
// sending rate) induced by a control law — the finite-state analogue
// of the joint density f(t, q, v).
type ControlledQueue = markov.ControlledQueue

// NewControlledQueue builds the controlled-queue chain.
func NewControlledQueue(law Law, mu float64, qMax int, rateMin, rateMax float64, nRate int) (*ControlledQueue, error) {
	return markov.NewControlledQueue(law, mu, qMax, rateMin, rateMax, nRate)
}

// NewMM1K returns the birth-death chain of an M/M/1/K queue.
func NewMM1K(lambda, mu float64, k int) (*BirthDeath, error) { return markov.NewMM1K(lambda, mu, k) }

// Bursty traffic models (the "traffic variability" of the paper's
// closing claim).

// Modulator is a piecewise-constant rate-modulation process applied
// to a packet source (see PacketSource.Burst).
type Modulator = traffic.Modulator

// MMPP is a Markov-modulated Poisson process modulator.
type MMPP = traffic.MMPP

// NewOnOff returns an on/off burst modulator with mean factor 1
// (burstiness = (meanOn+meanOff)/meanOn).
func NewOnOff(meanOn, meanOff float64) (*MMPP, error) { return traffic.NewOnOff(meanOn, meanOff) }

// NewMMPP2 returns a two-state MMPP modulator with closed-form
// burstiness (MMPP.IDCInfinity).
func NewMMPP2(f1, f2, r12, r21 float64) (*MMPP, error) { return traffic.NewMMPP2(f1, f2, r12, r21) }

// IDC measures the index of dispersion for counts of an arrival-time
// series at the given window width (Poisson = 1).
func IDC(times []float64, window, horizon float64) (float64, error) {
	return traffic.IDC(times, window, horizon)
}

// Gateway feedback disciplines for the packet simulator.

// Gateway transforms the bottleneck queue into the congestion signal
// sources receive (see PacketSimConfig.Gateway).
type Gateway = des.Gateway

// ThresholdGateway is the paper's transparent raw-queue feedback.
type ThresholdGateway = des.ThresholdGateway

// EWMAGateway feeds back a DECbit-style averaged queue.
type EWMAGateway = des.EWMAGateway

// REDGateway marks observations probabilistically on an averaged
// queue (random early detection).
type REDGateway = des.REDGateway

// NewEWMAGateway returns an averaging gateway with time constant tc.
func NewEWMAGateway(tc float64) (*EWMAGateway, error) { return des.NewEWMAGateway(tc) }

// NewREDGateway returns a RED marking gateway.
func NewREDGateway(minTh, maxTh, maxP, tc float64) (*REDGateway, error) {
	return des.NewREDGateway(minTh, maxTh, maxP, tc)
}

// Ack-clocked window protocol (TCP Tahoe style).

// TahoeConfig configures the ack-clocked Tahoe simulator.
type TahoeConfig = des.TahoeConfig

// TahoeFlowConfig describes one Tahoe flow.
type TahoeFlowConfig = des.TahoeFlowConfig

// TahoeSim simulates slow start / congestion avoidance / timeout
// recovery against a finite drop-tail buffer.
type TahoeSim = des.TahoeSim

// TahoeResult summarizes a Tahoe run.
type TahoeResult = des.TahoeResult

// NewTahoeSim builds a Tahoe simulator.
func NewTahoeSim(cfg TahoeConfig) (*TahoeSim, error) { return des.NewTahoe(cfg) }

// Observability (internal/obs): an opt-in metrics/tracing/invariant
// layer every engine accepts via its config's Obs field. The nil
// default is a true no-op — engines pay one branch per step and
// produce byte-identical results with or without a recorder attached.

// ObsConfig configures the observability layer: an optional JSONL
// sink, the invariant-checking switch, the probe sampling period, and
// the mass-conservation tolerance.
type ObsConfig = obs.Config

// ObsRecorder collects counters, gauges, histograms, span timings and
// probe series for one scope. A nil *ObsRecorder is the zero-overhead
// disabled state accepted everywhere.
type ObsRecorder = obs.Recorder

// ObsEvent is one record of the JSONL trace stream.
type ObsEvent = obs.Event

// ObsJSONL is a concurrency-safe streaming JSONL event sink.
type ObsJSONL = obs.JSONL

// ObsViolation is the step-stamped error an engine returns when an
// invariant check fails under ObsConfig.Invariants.
type ObsViolation = obs.Violation

// NewObsJSONL returns a streaming JSONL sink writing to w.
func NewObsJSONL(w io.Writer) *ObsJSONL { return obs.NewJSONL(w) }

// ObsProbeCatalog lists every probe series the engines emit, with
// units — the reference EXPERIMENTS.md documents.
func ObsProbeCatalog() []obs.ProbeSeries { return obs.Catalog() }

// ObsSummary is the point-in-time aggregate snapshot of a recorder
// hierarchy: counters, gauges, probe series, log-bucketed histograms
// and span totals, merged deterministically over the Child tree —
// the JSON run manifest -obs-summary writes and fpcc-bench/4 embeds.
type ObsSummary = obs.Summary

// ObsResources are process resource deltas (wall/CPU time, allocs,
// GC cycles) attached to summary nodes by the suite runner.
type ObsResources = obs.Resources

// ObsCLI holds the shared observability flags every command binds
// (-trace, -trace-dt, -trace-chrome, -obs-listen, -obs-summary,
// -flight-recorder, -pprof, -obs-invariants).
type ObsCLI = obscli.CLI

// BindObsFlags registers the observability flags on fs (pass
// flag.CommandLine for the process flags). Call Setup after parsing,
// hand Recorder(scope) to engine configs, call DumpViolation on the
// run-error path, and defer Close.
func BindObsFlags(fs *flag.FlagSet) *ObsCLI { return obscli.Bind(fs) }

// WriteChromeTrace converts a JSONL event trace (the -trace output)
// into Chrome trace_event JSON, loadable in Perfetto.
func WriteChromeTrace(r io.Reader, w io.Writer) error { return chrometrace.Convert(r, w) }
