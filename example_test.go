package fpcc_test

import (
	"fmt"
	"math"

	"fpcc"
)

// ExampleTraceExact demonstrates Theorem 1: the exact AIMD
// characteristic spirals into the limit point (q̂, μ).
func ExampleTraceExact() {
	law, _ := fpcc.NewAIMD(2.0, 0.8, 20)
	path, _ := fpcc.TraceExact(law, 10, fpcc.Point{Q: 0, Lambda: 2}, 1500, 200000)
	end := path.At(path.TotalTime())
	fmt.Printf("limit point: q=%.1f lambda=%.1f\n", end.Q, end.Lambda)
	// Output:
	// limit point: q=20.0 lambda=10.0
}

// ExampleNewFokkerPlanck integrates Eq. 14 and reads the operating-
// point moments.
func ExampleNewFokkerPlanck() {
	law, _ := fpcc.NewAIMD(2.0, 0.8, 20)
	solver, _ := fpcc.NewFokkerPlanck(fpcc.FokkerPlanckConfig{
		Law: law, Mu: 10, Sigma: 1,
		QMax: 60, NQ: 100, VMin: -12, VMax: 12, NV: 80,
		SecondOrder: true, // MUSCL advection: tighter moments
	})
	_ = solver.SetGaussian(5, -2, 1.5, 1)
	_ = solver.Advance(80, 0)
	m := solver.Moments()
	fmt.Printf("mean queue near target: %v\n", math.Abs(m.MeanQ-20) < 3)
	fmt.Printf("rate matched to service: %v\n", math.Abs(m.MeanV) < 1)
	// Output:
	// mean queue near target: true
	// rate matched to service: true
}

// ExamplePredictedShares shows the Section 6 closed-form share law.
func ExamplePredictedShares() {
	shares, _ := fpcc.PredictedShares([]fpcc.AIMD{
		{C0: 2, C1: 1, QHat: 20}, // aggressive prober
		{C0: 1, C1: 1, QHat: 20}, // half the probe rate
	})
	fmt.Printf("%.3f %.3f\n", shares[0], shares[1])
	// Output:
	// 0.667 0.333
}

// ExampleJainIndex measures allocation fairness.
func ExampleJainIndex() {
	fmt.Printf("%.2f\n", fpcc.JainIndex([]float64{5, 5, 5}))
	fmt.Printf("%.2f\n", fpcc.JainIndex([]float64{15, 0, 0}))
	// Output:
	// 1.00
	// 0.33
}

// ExampleCriticalDelay computes the Section 7 oscillation boundary in
// closed form: the delay budget of a smoothed AIMD loop.
func ExampleCriticalDelay() {
	law, _ := fpcc.NewSmoothAIMD(2, 0.8, 20, 1.5)
	lin, _ := fpcc.Linearize(law, 10, 0, 60)
	tauStar, _, _ := fpcc.CriticalDelay(lin.A, lin.B)
	// The derived law: τ* ≈ width/μ = 0.15 s.
	fmt.Printf("delay budget within 5%% of width/mu: %v\n", math.Abs(tauStar-0.15) < 0.0075)
	// Output:
	// delay budget within 5% of width/mu: true
}

// ExampleNewControlledQueue solves the exact Markov chain of the
// controlled queue and reads its long-run operating point.
func ExampleNewControlledQueue() {
	law, _ := fpcc.NewAIMD(2, 0.8, 8)
	cq, _ := fpcc.NewControlledQueue(law, 10, 40, 0, 20, 41)
	p0, _ := cq.InitialPoint(0, 4)
	p, _ := cq.Transient(p0, 200, 1e-8)
	meanRate, _, _ := cq.RateMoments(p)
	fmt.Printf("rate matched to service: %v\n", math.Abs(meanRate-10) < 1.5)
	// Output:
	// rate matched to service: true
}

// ExampleNewOnOff builds a bursty source whose long-run offered load
// equals the nominal rate.
func ExampleNewOnOff() {
	mod, _ := fpcc.NewOnOff(0.5, 1.5) // on 25% of the time at 4x the rate
	fmt.Printf("peak factor: %.0f\n", mod.Factor(0))
	fmt.Printf("mean factor: %.0f\n", mod.MeanFactor())
	// Output:
	// peak factor: 4
	// mean factor: 1
}

// ExampleNewLinearLaw shows the PD law's engineered equilibrium.
func ExampleNewLinearLaw() {
	pd, _ := fpcc.NewLinearLaw(0.5, 2, 20, 10)
	fmt.Printf("drift at the operating point: %.0f\n", math.Abs(pd.Drift(20, 10)))
	fmt.Printf("equilibrium queue at true mu=8: %.0f\n", pd.EquilibriumQ(8))
	// Output:
	// drift at the operating point: 0
	// equilibrium queue at true mu=8: 28
}
