package fpcc_test

// Benchmark harness regenerating every table and figure of the
// paper's evaluation: one benchmark per experiment E1..E27 (see
// EXPERIMENTS.md for the experiment index and paper-vs-measured
// results). Each benchmark times a full experiment
// run; on the first iteration it also verifies the experiment did not
// flag a shape mismatch, so `go test -bench=.` doubles as a
// reproduction check.
//
// Micro-benchmarks for the individual substrates live in their
// packages (e.g. internal/fokkerplanck.BenchmarkStep).

import (
	"strings"
	"testing"

	"fpcc/internal/experiments"
)

// runExperiment executes one experiment per iteration, failing the
// benchmark if the experiment errors or records an alarmed finding.
func runExperiment(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, f := range tb.Findings {
				for _, alarm := range []string{"MISMATCH", "UNEXPECTED", "VIOLATED", "FAILURE", "DEVIATION", "NOT REACHED", "GAP:"} {
					if strings.Contains(f, alarm) {
						b.Fatalf("%s: %s", tb.ID, f)
					}
				}
			}
			if testing.Verbose() {
				b.Log("\n" + tb.String())
			}
		}
	}
}

// BenchmarkE1Quadrants regenerates Figure 2 (drift directions).
func BenchmarkE1Quadrants(b *testing.B) {
	runExperiment(b, experiments.E1QuadrantDrifts)
}

// BenchmarkE2Spiral regenerates Figure 3 / Theorem 1 (convergent
// spiral, Poincaré contraction).
func BenchmarkE2Spiral(b *testing.B) {
	runExperiment(b, experiments.E2ConvergentSpiral)
}

// BenchmarkE3Trace regenerates the Figure 1 queue-trace artifact from
// the packet-level simulator.
func BenchmarkE3Trace(b *testing.B) {
	runExperiment(b, experiments.E3QueueTrace)
}

// BenchmarkE4EqualShare regenerates the Section 6 equal-parameter
// fairness result (fluid + packet systems).
func BenchmarkE4EqualShare(b *testing.B) {
	runExperiment(b, experiments.E4FairnessEqual)
}

// BenchmarkE5HeteroShare regenerates the Section 6 exact-share law
// (λᵢ ∝ C0ᵢ/C1ᵢ).
func BenchmarkE5HeteroShare(b *testing.B) {
	runExperiment(b, experiments.E5FairnessHetero)
}

// BenchmarkE6DelayCycle regenerates the Section 7 delay sweep
// (limit-cycle amplitude/period vs τ).
func BenchmarkE6DelayCycle(b *testing.B) {
	runExperiment(b, experiments.E6DelayOscillation)
}

// BenchmarkE7DelayUnfair regenerates the Section 7 unfairness result
// (pure-delay symmetry vs full RTT coupling).
func BenchmarkE7DelayUnfair(b *testing.B) {
	runExperiment(b, experiments.E7DelayUnfairness)
}

// BenchmarkE8Aiad regenerates the AIMD-vs-AIAD contrast (algorithm-
// induced vs delay-induced oscillation).
func BenchmarkE8Aiad(b *testing.B) {
	runExperiment(b, experiments.E8AlgorithmOscillation)
}

// BenchmarkE9FPvMC regenerates the Eq. 14 validation against the
// Monte-Carlo ensemble.
func BenchmarkE9FPvMC(b *testing.B) {
	runExperiment(b, experiments.E9FokkerPlanckVsMonteCarlo)
}

// BenchmarkE10FPvFluid regenerates the variability comparison against
// the fluid approximation (overflow probabilities).
func BenchmarkE10FPvFluid(b *testing.B) {
	runExperiment(b, experiments.E10VariabilityVsFluid)
}

// BenchmarkE11ParamTable regenerates the (C0, C1) convergence sweep.
func BenchmarkE11ParamTable(b *testing.B) {
	runExperiment(b, experiments.E11ParameterSweep)
}

// BenchmarkE12SigmaSweep regenerates the stationary-spread-vs-σ sweep.
func BenchmarkE12SigmaSweep(b *testing.B) {
	runExperiment(b, experiments.E12DiffusionSpread)
}

// BenchmarkE13WindowRate regenerates the Eq. 1 window protocol vs
// Eq. 2 rate analogue comparison.
func BenchmarkE13WindowRate(b *testing.B) {
	runExperiment(b, experiments.E13WindowRateEquivalence)
}

// BenchmarkE14SchemeAblation regenerates the FP advection scheme
// ablation (first-order upwind vs MUSCL/minmod).
func BenchmarkE14SchemeAblation(b *testing.B) {
	runExperiment(b, experiments.E14SchemeAblation)
}

// BenchmarkE15ReturnMap regenerates the Poincaré return-map table and
// the quadratic contraction-law fit.
func BenchmarkE15ReturnMap(b *testing.B) {
	runExperiment(b, experiments.E15ReturnMapLaw)
}

// BenchmarkE16Tandem regenerates the multi-hop share-vs-hop-count
// table (the Zhang/Jacobson observation in a real tandem network).
func BenchmarkE16Tandem(b *testing.B) {
	runExperiment(b, experiments.E16TandemHopCount)
}

// BenchmarkE17FPvMarkov regenerates the Fokker-Planck vs exact-CTMC
// comparison (the strongest Eq. 14 ground truth in the repository).
func BenchmarkE17FPvMarkov(b *testing.B) {
	runExperiment(b, experiments.E17FokkerPlanckVsMarkov)
}

// BenchmarkE18Burst regenerates the burstiness sweep (queue
// variability under on/off modulated traffic at fixed offered load).
func BenchmarkE18Burst(b *testing.B) {
	runExperiment(b, experiments.E18BurstinessSweep)
}

// BenchmarkE19Stability regenerates the delayed-feedback stability
// boundary: closed-form Hopf point vs the nonlinear DDE.
func BenchmarkE19Stability(b *testing.B) {
	runExperiment(b, experiments.E19StabilityBoundary)
}

// BenchmarkE20Gateway regenerates the gateway-discipline comparison
// (threshold vs DECbit-EWMA vs RED marking).
func BenchmarkE20Gateway(b *testing.B) {
	runExperiment(b, experiments.E20GatewayComparison)
}

// BenchmarkE21Tahoe regenerates the TCP-Tahoe share-vs-RTT-ratio
// table (the protocol-level unfairness observation).
func BenchmarkE21Tahoe(b *testing.B) {
	runExperiment(b, experiments.E21TahoeRTTShare)
}

// BenchmarkE22Integrators regenerates the stiff-law integrator
// ablation (explicit RK4 vs implicit trapezoid vs BDF2).
func BenchmarkE22Integrators(b *testing.B) {
	runExperiment(b, experiments.E22IntegratorAblation)
}

// BenchmarkE23PDLaw regenerates the delay-budget engineering table
// (AIMD's fixed damping vs a PD damping sweep).
func BenchmarkE23PDLaw(b *testing.B) {
	runExperiment(b, experiments.E23DelayBudgetEngineering)
}

// BenchmarkE24MultiSource regenerates the n-delayed-sources table
// (shared-loop oscillation, head-count-invariant delay budget).
func BenchmarkE24MultiSource(b *testing.B) {
	runExperiment(b, experiments.E24MultiSourceDelay)
}

// BenchmarkE25Implicit regenerates the explicit-vs-implicit feedback
// comparison at a finite buffer.
func BenchmarkE25Implicit(b *testing.B) {
	runExperiment(b, experiments.E25ImplicitVsExplicit)
}

// BenchmarkE26ParkingLot regenerates the parking-lot fairness table
// on the arbitrary-topology simulator.
func BenchmarkE26ParkingLot(b *testing.B) {
	runExperiment(b, experiments.E26ParkingLotFairness)
}

// BenchmarkE27Migration regenerates the cross-traffic bottleneck
// migration sweep (parallel sweep runner).
func BenchmarkE27Migration(b *testing.B) {
	runExperiment(b, experiments.E27BottleneckMigration)
}
