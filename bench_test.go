package fpcc_test

// Benchmark harness regenerating every table and figure of the
// paper's evaluation: one sub-benchmark per registry entry (see
// EXPERIMENTS.md for the experiment index and paper-vs-measured
// results), driven off experiments.All() so new experiments are
// benchmarked automatically. Each sub-benchmark times a full
// experiment run; on the first iteration it also verifies the
// experiment did not flag a shape mismatch, so
// `go test -bench=.` doubles as a reproduction check.
//
// Run one experiment with `go test -bench=BenchmarkExperiments/E6$`.
//
// Micro-benchmarks for the individual substrates live in their
// packages (e.g. internal/fokkerplanck.BenchmarkStep).

import (
	"testing"

	"fpcc/internal/experiments"
)

func BenchmarkExperiments(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tb, err := e.Run(nil)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if alarm := tb.Alarm(); alarm != "" {
						b.Fatalf("%s: %s", tb.ID, alarm)
					}
					if testing.Verbose() {
						b.Log("\n" + tb.String())
					}
				}
			}
		})
	}
}
