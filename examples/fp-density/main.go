// Fokker-Planck density study: evolve the joint density f(t, q, v) of
// Eq. 14 through the convergence transient, print snapshots of the
// queue marginal as ASCII profiles, and validate each snapshot against
// a Monte-Carlo particle ensemble of the same system (the package's
// experiment E9 in miniature).
//
// This is the artifact the paper's abstract highlights: unlike a fluid
// model, the density view shows how traffic variability spreads the
// operating point into a distribution — including the overflow mass
// P(Q > B) that a deterministic model cannot see.
//
// Run with: go run ./examples/fp-density
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"fpcc"
)

func main() {
	log.SetFlags(0)
	law, err := fpcc.NewAIMD(2.0, 0.8, 20)
	if err != nil {
		log.Fatal(err)
	}
	const (
		mu    = 10.0
		sigma = 1.5
		qMax  = 60.0
		nq    = 120
	)
	solver, err := fpcc.NewFokkerPlanck(fpcc.FokkerPlanckConfig{
		Law: law, Mu: mu, Sigma: sigma,
		QMax: qMax, NQ: nq, VMin: -12, VMax: 12, NV: 96,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := solver.SetGaussian(5, -2, 1.5, 1); err != nil {
		log.Fatal(err)
	}
	ens, err := fpcc.NewEnsemble(fpcc.EnsembleConfig{
		Law: law, Mu: mu, Sigma: sigma,
		Particles: 20000, Dt: 5e-3, Seed: 42,
		Q0: 5, Lambda0: 8, InitStdQ: 1.5, InitStdL: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range []float64{0, 3, 10, 30, 80} {
		if err := solver.Advance(t, 0); err != nil {
			log.Fatal(err)
		}
		ens.Run(t)
		fp := solver.Moments()
		mc := ens.Moments()
		fmt.Printf("t = %-4.0f  E[Q]: FP %6.2f / MC %6.2f    Std[Q]: FP %5.2f / MC %5.2f    P(Q>25): FP %.3f / MC %.3f\n",
			t, fp.MeanQ, mc.MeanQ, math.Sqrt(fp.VarQ), math.Sqrt(mc.VarQ),
			solver.TailProb(25), ens.TailFraction(25))
		printProfile(solver.MarginalQ(), qMax)
		fmt.Println()
	}
	fmt.Println("The blob starts at q=5, overshoots the target while the rate")
	fmt.Println("spirals in, and settles as a stationary distribution centred on")
	fmt.Println("q̂=20 whose width is set by σ — the variability a fluid model")
	fmt.Println("collapses to a single point.")
}

// printProfile renders the q-marginal density as a coarse ASCII
// profile: 30 columns covering [0, qMax].
func printProfile(density []float64, qMax float64) {
	const cols = 30
	buckets := make([]float64, cols)
	per := len(density) / cols
	var peak float64
	for c := 0; c < cols; c++ {
		var sum float64
		for i := c * per; i < (c+1)*per && i < len(density); i++ {
			sum += density[i]
		}
		buckets[c] = sum
		if sum > peak {
			peak = sum
		}
	}
	if peak == 0 {
		return
	}
	var b strings.Builder
	b.WriteString("   q: 0")
	b.WriteString(strings.Repeat(" ", cols-8))
	fmt.Fprintf(&b, "%4.0f\n", qMax)
	b.WriteString("      ")
	for _, v := range buckets {
		idx := int(v / peak * 8)
		b.WriteString([]string{" ", ".", ":", "-", "=", "+", "*", "#", "#"}[idx])
	}
	fmt.Println(b.String())
}
