// Delayed-feedback study: how the feedback delay τ shapes the
// oscillation of an AIMD-controlled connection (Section 7 of the
// paper).
//
// The program sweeps τ, runs the deterministic delayed system for each
// value, measures the late-window limit cycle, and prints the
// amplitude/period table plus a phase-plane sketch of one cycle. It
// then cross-checks one point of the sweep against the packet-level
// simulator: the stochastic system oscillates around the same cycle.
//
// Run with: go run ./examples/delayed-feedback
package main

import (
	"fmt"
	"log"
	"math"

	"fpcc"
	"fpcc/internal/stats"
)

func main() {
	log.SetFlags(0)
	law, err := fpcc.NewAIMD(2.0, 0.8, 20)
	if err != nil {
		log.Fatal(err)
	}
	const mu = 10.0

	fmt.Println("Delay sweep (deterministic system, late window 600-800s):")
	fmt.Printf("%-8s %-14s %-12s %-10s\n", "τ (s)", "queue swing", "amplitude", "period (s)")
	for _, tau := range []float64{0, 0.5, 1, 2, 4} {
		m := fpcc.FluidModel{
			Mu: mu, Q0: 0,
			Sources: []fpcc.FluidSource{{Law: law, Delay: tau, Lambda0: 2}},
		}
		sol, err := m.Solve(800, 1e-3, 20)
		if err != nil {
			log.Fatal(err)
		}
		ts, qs := sol.Queue()
		swing := stats.SwingOver(ts, qs, 600)
		osc := stats.MeasureOscillation(ts, qs, 600, math.Max(swing/4, 0.05))
		period := "-"
		if !math.IsNaN(osc.Period) {
			period = fmt.Sprintf("%.2f", osc.Period)
		}
		fmt.Printf("%-8.1f %-14.3f %-12.3f %-10s\n", tau, swing, osc.Amplitude, period)
	}
	fmt.Println("\n=> amplitude ~0 at τ=0 (Theorem 1 convergence) and grows with τ:")
	fmt.Println("   the oscillation is caused by the delay, not the algorithm.")

	// One cycle of the τ=2 limit cycle in the phase plane.
	m := fpcc.FluidModel{
		Mu: mu, Q0: 0,
		Sources: []fpcc.FluidSource{{Law: law, Delay: 2, Lambda0: 2}},
	}
	sol, err := m.Solve(820, 1e-3, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOne limit-cycle orbit at τ=2 (t in [780, 810]):")
	fmt.Printf("%-8s %-10s %-10s\n", "t", "q", "λ")
	for i := 0; i < sol.Len(); i += 20 {
		t, y := sol.At(i)
		if t < 780 || t > 810 {
			continue
		}
		fmt.Printf("%-8.1f %-10.3f %-10.3f\n", t, y[0], y[1])
	}

	// Packet-level cross-check at τ=2.
	sim, err := fpcc.NewPacketSim(fpcc.PacketSimConfig{
		Mu:          50,
		Seed:        7,
		SampleEvery: 0.2,
		Sources: []fpcc.PacketSource{{
			Law:      fpcc.AIMD{C0: 10, C1: 2, QHat: 15},
			Delay:    2.0,
			Interval: 0.05,
			Lambda0:  5,
			MinRate:  1,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(600, 100)
	if err != nil {
		log.Fatal(err)
	}
	oscP := stats.MeasureOscillation(res.TraceT, res.TraceQ, 100, 8)
	fmt.Printf("\nPacket-level cross-check (μ=50, q̂=15, τ=2):\n")
	fmt.Printf("   queue oscillation amplitude %.1f packets over %d cycles (period %.1fs)\n",
		oscP.Amplitude, oscP.NumCycles, oscP.Period)
	fmt.Println("   the stochastic system rides the same delay-induced cycle.")
}
