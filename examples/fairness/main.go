// Fairness study: how competing AIMD senders split a bottleneck
// (Section 6 of the paper) and how feedback delay breaks the split
// (Section 7).
//
// Three scenarios:
//
//  1. Equal parameters, wildly unequal starting rates — shares
//     equalize (Jain index -> 1).
//  2. Heterogeneous (C0, C1) — shares match the closed-form law
//     λᵢ ∝ C0ᵢ/C1ᵢ.
//  3. Equal parameters but unequal feedback delays — the longer-delay
//     sender loses.
//
// Run with: go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"fpcc"
)

func main() {
	log.SetFlags(0)
	const mu = 12.0
	base, err := fpcc.NewAIMD(2.0, 0.8, 20)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Equal parameters => equal shares -----------------------
	srcs := []fpcc.FluidSource{
		{Law: base, Lambda0: 0},
		{Law: base, Lambda0: 4},
		{Law: base, Lambda0: 8},
	}
	m := fpcc.FluidModel{Mu: mu, Q0: 0, Sources: srcs}
	sol, err := m.Solve(2000, 1e-3, 200)
	if err != nil {
		log.Fatal(err)
	}
	means := sol.MeanRates(1500)
	fmt.Println("1. Equal parameters, starts 0/4/8 packets/s:")
	for i, r := range means {
		fmt.Printf("   S%d mean rate %.3f (share %.3f)\n", i+1, r, r/sum(means))
	}
	fmt.Printf("   Jain fairness index: %.4f  (Section 6: provably fair)\n\n", fpcc.JainIndex(means))

	// --- 2. Heterogeneous parameters => C0/C1 shares ----------------
	laws := []fpcc.AIMD{
		{C0: 2, C1: 0.8, QHat: 20},
		{C0: 1, C1: 0.8, QHat: 20},
		{C0: 2, C1: 1.6, QHat: 20},
	}
	pred, err := fpcc.PredictedShares(laws)
	if err != nil {
		log.Fatal(err)
	}
	hsrcs := make([]fpcc.FluidSource, len(laws))
	for i, l := range laws {
		hsrcs[i] = fpcc.FluidSource{Law: l, Lambda0: 1}
	}
	hm := fpcc.FluidModel{Mu: 10, Q0: 0, Sources: hsrcs}
	hsol, err := hm.Solve(4000, 1e-3, 200)
	if err != nil {
		log.Fatal(err)
	}
	hmeans := hsol.MeanRates(3000)
	fmt.Println("2. Heterogeneous parameters (C0, C1):")
	fmt.Printf("   %-6s %-6s %-6s %-12s %-10s\n", "src", "C0", "C1", "predicted", "measured")
	for i, l := range laws {
		fmt.Printf("   S%-5d %-6.1f %-6.1f %-12.4f %-10.4f\n",
			i+1, l.C0, l.C1, pred[i], hmeans[i]/sum(hmeans))
	}
	fmt.Println("   => shares follow λᵢ ∝ C0ᵢ/C1ᵢ (Section 6's exact-share law)")

	// --- 3. Connection length => unfair ------------------------------
	// A subtle point our reproduction surfaced: with the SAME law and
	// only the observation delay differing, average shares stay equal
	// (a time-shifted copy of one source's sawtooth solves the
	// other's equation). The unfairness Jacobson measured comes from
	// the full round-trip coupling: a longer path delays the signal
	// AND slows the additive probe (one window step per RTT, i.e.
	// C0 ∝ 1/RTT in the rate analogue).
	fmt.Println("\n3a. Same law, observation delays 0.5s vs 4s only:")
	dm := fpcc.FluidModel{
		Mu: 10, Q0: 0,
		Sources: []fpcc.FluidSource{
			{Law: base, Delay: 0.5, Lambda0: 5},
			{Law: base, Delay: 4.0, Lambda0: 5},
		},
	}
	dsol, err := dm.Solve(2000, 5e-3, 100)
	if err != nil {
		log.Fatal(err)
	}
	dmeans := dsol.MeanRates(1000)
	fmt.Printf("   shares %.3f vs %.3f — still (almost) equal: pure signal\n",
		dmeans[0]/sum(dmeans), dmeans[1]/sum(dmeans))
	fmt.Println("   staleness does not bias the long-run average by itself.")

	fmt.Println("\n3b. Full connection-length coupling (RTT 0.5s vs 2s):")
	const rtt1, rtt2 = 0.5, 2.0
	short := fpcc.AIMD{C0: 2, C1: 0.8, QHat: 20}
	long := fpcc.AIMD{C0: 2 * rtt1 / rtt2, C1: 0.8, QHat: 20}
	cm := fpcc.FluidModel{
		Mu: 10, Q0: 0,
		Sources: []fpcc.FluidSource{
			{Law: short, Delay: rtt1, Lambda0: 5},
			{Law: long, Delay: rtt2, Lambda0: 5},
		},
	}
	csol, err := cm.Solve(2000, 5e-3, 100)
	if err != nil {
		log.Fatal(err)
	}
	cmeans := csol.MeanRates(1000)
	fmt.Printf("   short connection: %.3f packets/s (share %.3f)\n", cmeans[0], cmeans[0]/sum(cmeans))
	fmt.Printf("   long  connection: %.3f packets/s (share %.3f)\n", cmeans[1], cmeans[1]/sum(cmeans))
	fmt.Println("   => the longer connection loses decisively (Section 7), matching")
	fmt.Println("      Jacobson's observation that long-haul connections fare worse.")
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
