// Multi-bottleneck study on the arbitrary-topology simulator: the
// scenario class the paper's single-queue model cannot express, and
// the one its successors (DECbit, RED, TCP) are evaluated on.
//
// Three scenarios:
//
//  1. Parking lot — one long flow crosses three bottlenecks, each
//     also carrying a one-hop cross flow. The long flow is beaten
//     below the max-min share: it backs off for congestion anywhere
//     on its path and probes once per (longer) RTT.
//  2. Bottleneck migration — a two-hop chain where growing constant
//     cross-traffic at the downstream hop moves the standing queue
//     (and the binding capacity) from hop 1 to hop 2.
//  3. A parallel parameter sweep over (cross rate × C0) producing the
//     per-cell aggregates as CSV — the batch face of the simulator.
//
// Run with: go run ./examples/multi-bottleneck
package main

import (
	"fmt"
	"log"
	"os"

	"fpcc"
)

func main() {
	log.SetFlags(0)
	law, err := fpcc.NewAIMD(10, 2, 12)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Parking lot: long flow vs one-hop cross flows.
	fmt.Println("=== parking lot: 3 bottlenecks, 1 long flow, 3 cross flows ===")
	cfg, err := fpcc.NewParkingLot(fpcc.ParkingLotConfig{
		Hops: 3, Mu: 40, Delay: 0.02, Law: law,
		Lambda0: 5, MinRate: 0.5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := fpcc.NewNetSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(1500, 150)
	if err != nil {
		log.Fatal(err)
	}
	for i, tp := range res.Throughput {
		fmt.Printf("  %-7s hops=%d RTT=%.2fs throughput=%6.2f pk/s\n",
			cfg.FlowName(i), len(cfg.Flows[i].Route), res.FlowRTT[i], tp)
	}
	fmt.Printf("  the long flow is beaten below every cross flow (Jain %.3f)\n\n",
		fpcc.JainIndex(res.Throughput))

	// 2. Bottleneck migration under cross traffic.
	fmt.Println("=== bottleneck migration: two hops (mu 40, 60), cross traffic at hop 2 ===")
	for _, cross := range []float64{0, 30, 50} {
		ccfg, err := fpcc.NewCrossChain(fpcc.CrossChainConfig{
			Mu1: 40, Mu2: 60, Delay: 0.02, Law: law,
			Lambda0: 10, MinRate: 0.5, CrossRate: cross, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		csim, err := fpcc.NewNetSim(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		cres, err := csim.Run(1000, 100)
		if err != nil {
			log.Fatal(err)
		}
		q1, q2 := cres.NodeQueue[0].Mean(), cres.NodeQueue[1].Mean()
		bottleneck := "hop1"
		if q2 > q1 {
			bottleneck = "hop2"
		}
		fmt.Printf("  cross=%4.0f: main throughput %6.2f, mean queues (%.2f, %.2f) -> bottleneck %s\n",
			cross, cres.Throughput[0], q1, q2, bottleneck)
	}
	fmt.Println()

	// 3. Parallel sweep: (cross rate × C0), aggregates as CSV.
	fmt.Println("=== sweep: cross x C0 grid, parallel workers, CSV aggregates ===")
	sweep, err := fpcc.RunSweep(fpcc.SweepConfig{
		Params: []fpcc.SweepParam{
			{Name: "cross", Values: []float64{0, 20, 40}},
			{Name: "c0", Values: []float64{4, 10}},
		},
		Build: func(values []float64, seed uint64) (fpcc.NetConfig, error) {
			cellLaw, err := fpcc.NewAIMD(values[1], 2, 12)
			if err != nil {
				return fpcc.NetConfig{}, err
			}
			return fpcc.NewCrossChain(fpcc.CrossChainConfig{
				Mu1: 40, Mu2: 60, Delay: 0.02, Law: cellLaw,
				Lambda0: 10, MinRate: 0.5, CrossRate: values[0], Seed: seed,
			})
		},
		Horizon:  300,
		Warmup:   50,
		BaseSeed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sweep.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
