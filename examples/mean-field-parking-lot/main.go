// Parking-lot fairness in the large-N limit, on the networked
// mean-field engine: the repository's two scaling axes joined — the
// multi-bottleneck scenario class of internal/netsim evaluated with
// the million-source population machinery of internal/meanfield.
//
// Three parts:
//
//  1. The classic 3-hop parking lot at one MILLION sources per class
//     (one long class crossing every hop, one cross class per hop).
//     The long class observes the summed backlog of its whole path;
//     with the cross classes holding every hop at the shared target,
//     that sum is permanently above threshold and the long class is
//     starved down to its diffusion floor — the E26 packet-level
//     unfairness, sharpened to its kinetic-limit form.
//  2. The same topology handed to the packet simulator at 80 flows
//     per class: the finite-N system whose N → ∞ limit part 1 solves,
//     agreeing hop by hop on the steady mean queue.
//  3. A bottleneck-migration ramp: growing a constant-rate cross
//     class at the second of two hops until the standing fluid queue
//     migrates downstream (the E27/E31 scenario).
//
// Run with: go run ./examples/mean-field-parking-lot
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"fpcc"
)

func main() {
	log.SetFlags(0)

	// 1. One million sources per class on the networked density
	// engine.
	const million = 1_000_000
	cfg, err := fpcc.NewNetMeanFieldParkingLot(fpcc.NetMeanFieldParkingLotConfig{
		Hops: 3, N: million, Delay: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg.SecondOrder = true
	fmt.Println("=== 3-hop parking lot, 1,000,000 sources per class ===")
	e, err := fpcc.NewNetMeanField(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var steps int
	meanQ, rates, err := fpcc.NetMeanFieldSteadyStats(e, 60, 120, func() { steps++ })
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	fmt.Printf("%d steps in %v — %.3g µs/step for %d sources over %d queues\n",
		steps, wall.Round(time.Millisecond),
		float64(wall.Microseconds())/float64(steps), cfg.TotalSources(), len(meanQ))
	for k := range cfg.Classes {
		fmt.Printf("  %-6s per-source share %.4f (%d hops)\n",
			cfg.ClassName(k), rates[k], len(cfg.Classes[k].Route))
	}
	fmt.Printf("the long class is starved to its diffusion floor (%.2fx below the cross share):\n",
		rates[1]/rates[0])
	fmt.Println("in the kinetic limit, summed-path feedback alone beats any multi-hop flow")
	fmt.Println()

	// 2. The finite-N cross-check: the same 2-hop topology in the
	// packet simulator vs the fluid limit.
	fmt.Println("=== cross-check: 2-hop lot, netsim (80 flows/class) vs netmf ===")
	const perClass = 80
	const share = 10.0
	law, err := fpcc.NewAIMD(5, 0.5, 80)
	if err != nil {
		log.Fatal(err)
	}
	topo := fpcc.NetTopology{
		Nodes: []fpcc.NetNode{
			{Name: "hop0", Mu: 2 * perClass * share},
			{Name: "hop1", Mu: 2 * perClass * share},
		},
		Links: []fpcc.NetLink{{From: 0, To: 1}},
	}
	ncfg := fpcc.NetConfig{Nodes: topo.Nodes, Links: topo.Links, Seed: 4}
	for _, route := range [][]int{{0, 1}, {0}, {1}} {
		for i := 0; i < perClass; i++ {
			ncfg.Flows = append(ncfg.Flows, fpcc.NetFlow{
				Law: law, Route: route, Interval: 0.05, Lambda0: share,
			})
		}
	}
	sim, err := fpcc.NewNetSim(ncfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(200, 50)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := fpcc.NetMeanFieldConfig{
		Topology: topo,
		Classes: []fpcc.NetMeanFieldClass{
			{Name: "long", Law: law, N: perClass, Route: []int{0, 1}, Lambda0: share, InitStd: 1, SigmaL: 1},
			{Name: "cross0", Law: law, N: perClass, Route: []int{0}, Lambda0: share, InitStd: 1, SigmaL: 1},
			{Name: "cross1", Law: law, N: perClass, Route: []int{1}, Lambda0: share, InitStd: 1, SigmaL: 1},
		},
		LMax: 40, Bins: 160, Dt: 0.01, SecondOrder: true,
	}
	me, err := fpcc.NewNetMeanField(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	fluidQ, _, err := fpcc.NetMeanFieldSteadyStats(me, 50, 200, nil)
	if err != nil {
		log.Fatal(err)
	}
	for h := range fluidQ {
		simQ := res.NodeQueue[h].Mean()
		fmt.Printf("  hop%d steady mean queue: packets %.2f vs fluid %.2f (gap %.2f%%)\n",
			h, simQ, fluidQ[h], 100*math.Abs(fluidQ[h]-simQ)/simQ)
	}
	fmt.Println()

	// 3. Bottleneck migration: ramp the constant-rate class at hop 2.
	fmt.Println("=== bottleneck migration ramp at N = 10⁶ (cross fraction grows) ===")
	for _, frac := range []float64{0, 0.2, 0.4} {
		ccfg, err := fpcc.NewNetMeanFieldCrossChain(fpcc.NetMeanFieldCrossChainConfig{
			N: million, CrossFrac: frac, Delay: 0.1,
		})
		if err != nil {
			log.Fatal(err)
		}
		ccfg.SecondOrder = true
		ce, err := fpcc.NewNetMeanField(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		q, r, err := fpcc.NetMeanFieldSteadyStats(ce, 60, 120, nil)
		if err != nil {
			log.Fatal(err)
		}
		bottleneck := "hop1"
		if q[1] > q[0] {
			bottleneck = "hop2"
		}
		fmt.Printf("  cross frac %.1f: Q1/N %.3f, Q2/N %.3f -> bottleneck %s (main rate %.3f)\n",
			frac, q[0]/million, q[1]/million, bottleneck, r[0])
	}
	fmt.Println("the standing queue migrates downstream as hop 2's residual capacity shrinks")
}
