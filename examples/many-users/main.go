// Many-users study on the mean-field population engine: the paper's
// large-N limit — "many sources adjusting their rates from queue
// feedback" — made directly computable instead of extrapolated.
//
// Three parts:
//
//  1. A million homogeneous sources on the kinetic (density) engine:
//     per-class rate densities coupled to the shared queue ODE, cost
//     O(classes × bins) per step — N never appears, so the run takes
//     milliseconds.
//  2. The same scenario at N = 10⁴ on the finite-N particle backend
//     (SoA chunks on a worker pool): the stochastic system whose
//     N → ∞ limit the density solves. The two steady states agree to
//     a fraction of a percent (experiment E28 quantifies the
//     convergence rate, ≈ 1/√N).
//  3. A heterogeneous mix at N = 10⁶ — half fast-RTT, half slow-RTT
//     sources (probe gain ∝ 1/RTT, later observation) — reproducing
//     the DEC heterogeneous-population unfairness at a scale no
//     per-source engine reaches.
//
// Run with: go run ./examples/many-users
package main

import (
	"fmt"
	"log"
	"time"

	"fpcc"
)

// steady wraps fpcc.MeanFieldSteadyStats, rescaling the queue to
// per-source units and counting steps for the timing report.
func steady(eng fpcc.MeanFieldStepper, perSource, warm, horizon float64) (q float64, rates []float64, steps int, err error) {
	meanQ, rates, err := fpcc.MeanFieldSteadyStats(eng, warm, horizon, func() { steps++ })
	if err != nil {
		return 0, nil, 0, err
	}
	return meanQ / perSource, rates, steps, nil
}

func main() {
	log.SetFlags(0)

	// 1. One million homogeneous sources, kinetic engine. Scaled
	// scenario: per-source service share 1 pk/s, total queue target
	// 2 packets per source.
	const million = 1_000_000
	law := fpcc.AIMD{C0: 0.5, C1: 0.5, QHat: 2 * million}
	cfg := fpcc.MeanFieldConfig{
		Classes: fpcc.MeanFieldClasses(fpcc.MeanFieldClass{
			Name: "bulk", Law: law, N: million,
			Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
		}),
		Mu: million, LMax: 4, Bins: 160, Dt: 0.01,
		Q0: 2 * million, SecondOrder: true,
	}
	fmt.Println("=== 1,000,000 sources on the density engine ===")
	d, err := fpcc.NewMeanField(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	q, rates, steps, err := steady(d, million, 40, 80)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	fmt.Printf("steady queue/source %.4f (target 2), mean rate %.4f (share 1)\n", q, rates[0])
	fmt.Printf("%d steps in %v — %.3g µs/step for 10⁶ sources\n\n",
		steps, wall.Round(time.Millisecond), float64(wall.Microseconds())/float64(steps))

	// 2. The finite-N cross-check at N = 10⁴ (same scaled scenario).
	const nPart = 10_000
	pcfg := cfg
	pcfg.Classes = fpcc.MeanFieldClasses(fpcc.MeanFieldClass{
		Name: "bulk", Law: fpcc.AIMD{C0: 0.5, C1: 0.5, QHat: 2 * nPart}, N: nPart,
		Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
	})
	pcfg.Mu = nPart
	pcfg.Q0 = 2 * nPart
	fmt.Println("=== cross-check: 10,000 sources on the particle engine ===")
	p, err := fpcc.NewMeanFieldParticles(pcfg, 42, 0)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	pq, prates, psteps, err := steady(p, nPart, 40, 80)
	if err != nil {
		log.Fatal(err)
	}
	pwall := time.Since(start)
	fmt.Printf("steady queue/source %.4f, mean rate %.4f\n", pq, prates[0])
	fmt.Printf("%d steps in %v — %.3g µs/step for 10⁴ sources\n", psteps, pwall.Round(time.Millisecond),
		float64(pwall.Microseconds())/float64(psteps))
	fmt.Printf("density-vs-particle queue gap: %.3f%% (with 100x the sources at a fraction of the cost)\n\n",
		100*abs(pq-q)/q)

	// 3. Heterogeneous mix: half the population probes 4x slower and
	// observes 4x later (RTT ratio 4).
	fmt.Println("=== heterogeneous mix at N = 10⁶: fast-RTT vs slow-RTT ===")
	hcfg := cfg
	hcfg.LMax = 6
	hcfg.Bins = 192
	hcfg.Dt = 0.005
	hcfg.Classes = fpcc.MeanFieldClasses(
		fpcc.MeanFieldClass{
			Name: "fast", Law: fpcc.AIMD{C0: 0.5, C1: 0.5, QHat: 2 * million},
			N: million / 2, Delay: 0.2, Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
		},
		fpcc.MeanFieldClass{
			Name: "slow", Law: fpcc.AIMD{C0: 0.125, C1: 0.5, QHat: 2 * million},
			N: million / 2, Delay: 0.8, Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
		},
	)
	h, err := fpcc.NewMeanField(hcfg)
	if err != nil {
		log.Fatal(err)
	}
	hq, hrates, _, err := steady(h, million, 60, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady queue/source %.4f; fast share %.4f vs slow share %.4f (ratio %.2f)\n",
		hq, hrates[0], hrates[1], hrates[0]/hrates[1])
	fmt.Println("the slow-RTT half is beaten below its fair share — the DEC heterogeneous-user result, at N = 10⁶")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
