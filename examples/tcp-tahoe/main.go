// TCP Tahoe: the protocol behind the paper's Equation 1.
//
// The paper abstracts Jacobson's 1988 congestion-control algorithm
// into the rate law of Equation 2 and then proves convergence,
// oscillation and unfairness properties of the abstraction. This
// example runs the actual ack-clocked protocol — slow start,
// congestion avoidance, timeout recovery against a drop-tail buffer —
// and shows the two phenomena the paper's citations reported from the
// real system:
//
//  1. the cwnd sawtooth (probe up, collapse on loss, probe again);
//  2. RTT unfairness: a flow with 4× the propagation delay gets far
//     less than a quarter of the bottleneck.
//
// Run with: go run ./examples/tcp-tahoe
package main

import (
	"fmt"
	"log"
	"strings"

	"fpcc"
)

func main() {
	log.SetFlags(0)

	// --- 1. One flow: the sawtooth ---------------------------------
	cfg := fpcc.TahoeConfig{
		Mu:          100, // packets/s
		Buffer:      20,  // packets
		Seed:        13,
		SampleEvery: 0.25,
		Flows: []fpcc.TahoeFlowConfig{
			{PropDelay: 0.05, RTO: 1},
		},
	}
	sim, err := fpcc.NewTahoeSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(60, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. single Tahoe flow, μ=100 pkt/s, buffer 20: cwnd over time")
	fmt.Println("   (each row is 0.25s; bar length = congestion window)")
	for i := 40; i < 100 && i < len(res.TraceW[0]); i += 4 {
		w := res.TraceW[0][i]
		n := int(w)
		if n > 60 {
			n = 60
		}
		fmt.Printf("   t=%5.2fs cwnd=%5.1f %s\n", res.TraceT[i], w, strings.Repeat("#", n))
	}
	fmt.Printf("   throughput %.1f pkt/s (%.0f%% of the link), %d drops\n\n",
		res.Throughput[0], 100*res.Throughput[0]/cfg.Mu, res.Drops[0])

	// --- 2. Two flows, unequal RTTs: the unfairness ----------------
	cfg2 := fpcc.TahoeConfig{
		Mu:     100,
		Buffer: 25,
		Seed:   29,
		Flows: []fpcc.TahoeFlowConfig{
			{PropDelay: 0.025, RTO: 0.8}, // short path
			{PropDelay: 0.100, RTO: 3.2}, // long path (4x)
		},
	}
	sim2, err := fpcc.NewTahoeSim(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := sim2.Run(600, 100)
	if err != nil {
		log.Fatal(err)
	}
	short, long := res2.Throughput[0], res2.Throughput[1]
	fmt.Println("2. two flows sharing the bottleneck, RTT ratio 4:")
	fmt.Printf("   short-RTT flow: %6.1f pkt/s  (mean RTT %.0f ms)\n", short, 1000*res2.MeanRTT[0])
	fmt.Printf("   long-RTT flow:  %6.1f pkt/s  (mean RTT %.0f ms)\n", long, 1000*res2.MeanRTT[1])
	fmt.Printf("   share ratio %.2f, Jain index %.3f\n\n", short/long, fpcc.JainIndex(res2.Throughput))

	fmt.Println("the paper's Section 7 explains the mechanism in the rate model:")
	fmt.Println("the long flow's feedback is older and its probe slower, so it")
	fmt.Println("concedes the queue to the short flow. E7/E21 quantify both views.")
}
