// Quickstart: the minimal end-to-end use of the fpcc library.
//
// We model a single sender running the Jacobson / Ramakrishnan-Jain
// algorithm (linear increase, exponential decrease) against a
// 10 packet/s bottleneck with a 20-packet target queue, and answer the
// paper's three headline questions:
//
//  1. Does it converge? (Theorem 1 — yes, to (q̂, μ))
//  2. What does noise do? (Eq. 14 — spreads the operating point)
//  3. What does feedback delay do? (Section 7 — sustained oscillation)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"fpcc"
)

func main() {
	log.SetFlags(0)

	// The paper's Equation 2: dλ/dt = +C0 below the target queue,
	// −C1·λ above it.
	law, err := fpcc.NewAIMD(2.0, 0.8, 20)
	if err != nil {
		log.Fatal(err)
	}
	const mu = 10.0

	// --- 1. The deterministic skeleton: Theorem 1 ------------------
	path, err := fpcc.TraceExact(law, mu, fpcc.Point{Q: 0, Lambda: 2}, 1500, 200000)
	if err != nil {
		log.Fatal(err)
	}
	end := path.At(path.TotalTime())
	eq := fpcc.EquilibriumPoint(law, mu)
	fmt.Printf("1. Characteristics (σ=0, no delay):\n")
	fmt.Printf("   start (q=0, λ=2) -> after %.0fs: (q=%.2f, λ=%.2f)\n",
		path.TotalTime(), end.Q, end.Lambda)
	fmt.Printf("   Theorem 1 limit point: (q̂=%.0f, μ=%.0f)  ✓ convergent spiral\n\n", eq.Q, eq.Lambda)

	// --- 2. The full Fokker-Planck density: Eq. 14 -----------------
	solver, err := fpcc.NewFokkerPlanck(fpcc.FokkerPlanckConfig{
		Law: law, Mu: mu, Sigma: 1.5,
		QMax: 60, NQ: 120, VMin: -12, VMax: 12, NV: 96,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := solver.SetGaussian(5, -2, 1.5, 1); err != nil {
		log.Fatal(err)
	}
	if err := solver.Advance(80, 0); err != nil {
		log.Fatal(err)
	}
	m := solver.Moments()
	fmt.Printf("2. Fokker-Planck density (σ=1.5) at t=80:\n")
	fmt.Printf("   E[Q]=%.2f  Std[Q]=%.2f  E[λ]=%.2f\n", m.MeanQ, math.Sqrt(m.VarQ), m.MeanV+mu)
	fmt.Printf("   P(Q > q̂) = %.3f — noise keeps real mass above the target,\n", solver.TailProb(20))
	fmt.Printf("   which a deterministic fluid model reports as zero.\n\n")

	// --- 3. Delayed feedback: Section 7 ----------------------------
	delayed := fpcc.FluidModel{
		Mu: mu, Q0: 0,
		Sources: []fpcc.FluidSource{{Law: law, Delay: 2.0, Lambda0: 2}},
	}
	sol, err := delayed.Solve(600, 1e-3, 50)
	if err != nil {
		log.Fatal(err)
	}
	ts, qs := sol.Queue()
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, t := range ts {
		if t < 400 {
			continue
		}
		lo = math.Min(lo, qs[i])
		hi = math.Max(hi, qs[i])
	}
	fmt.Printf("3. Same sender with 2s feedback delay, late-window queue:\n")
	fmt.Printf("   oscillates between %.1f and %.1f packets — the delay-induced\n", lo, hi)
	fmt.Printf("   limit cycle of Section 7 (it never settles at q̂=20).\n")
}
