// Stability map: where exactly does delayed feedback start to
// oscillate?
//
// Section 7 of the paper observes that feedback delay introduces
// cyclic behavior. This example makes the observation an engineering
// tool: for a smoothed AIMD controller it computes the closed-form
// critical delay τ* (the Hopf point of the linearized loop) and maps
// it over the system parameters.
//
// The map reveals a law the paper's qualitative treatment could not:
// for the logistic-blend AIMD the ratio of damping to restoring
// force is exactly β/α = Width/μ, so to first order
//
//	τ* ≈ Width / μ
//
// — the delay budget is the feedback smoothing scale divided by the
// service rate, nearly independent of the controller gains C0, C1.
// Sharper congestion signals (small Width) and faster links tolerate
// less feedback delay; retuning the gains barely helps.
//
// Run with: go run ./examples/stability-map
package main

import (
	"fmt"
	"log"

	"fpcc"
)

func main() {
	log.SetFlags(0)
	const qHat = 20.0

	fmt.Println("critical delay τ* (s) for SmoothAIMD(C0=2, C1=0.8, q̂=20)")
	fmt.Println("rows: signal smoothing width; columns: service rate μ")
	fmt.Println()
	// Widths and rates are chosen so the equilibrium queue
	// q* = q̂ + width·ln(C0/(C1·μ)) stays positive; beyond that the
	// loop has no interior fixed point to stabilize (a real design
	// constraint the map's edge marks).
	widths := []float64{0.5, 1, 2, 4}
	mus := []float64{5.0, 10, 20}
	fmt.Printf("%9s", "width\\μ")
	for _, mu := range mus {
		fmt.Printf("%9.0f", mu)
	}
	fmt.Printf("  %s\n", "width/μ @ μ=10")
	for _, w := range widths {
		fmt.Printf("%9.1f", w)
		var at10 float64
		for _, mu := range mus {
			law, err := fpcc.NewSmoothAIMD(2, 0.8, qHat, w)
			if err != nil {
				log.Fatal(err)
			}
			lin, err := fpcc.Linearize(law, mu, 0, 400)
			if err != nil {
				log.Fatal(err)
			}
			tauStar, _, err := fpcc.CriticalDelay(lin.A, lin.B)
			if err != nil {
				log.Fatal(err)
			}
			if mu == 10 {
				at10 = w / mu
			}
			fmt.Printf("%9.3f", tauStar)
		}
		fmt.Printf("  %14.3f\n", at10)
	}

	fmt.Println("\nand the gain near-independence (width 1.5, μ=10):")
	for _, gains := range [][2]float64{{0.5, 0.2}, {2, 0.8}, {8, 1.6}} {
		law, err := fpcc.NewSmoothAIMD(gains[0], gains[1], qHat, 1.5)
		if err != nil {
			log.Fatal(err)
		}
		lin, err := fpcc.Linearize(law, 10, 0, 400)
		if err != nil {
			log.Fatal(err)
		}
		tauStar, omega, err := fpcc.CriticalDelay(lin.A, lin.B)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  C0=%.1f C1=%.1f: τ* = %.4f s (Hopf frequency %.3f rad/s)\n",
			gains[0], gains[1], tauStar, omega)
	}

	// Spot-check the boundary with the characteristic-root finder.
	law, err := fpcc.NewSmoothAIMD(2, 0.8, qHat, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	lin, err := fpcc.Linearize(law, 10, 0, 400)
	if err != nil {
		log.Fatal(err)
	}
	tauStar, _, err := fpcc.CriticalDelay(lin.A, lin.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nspot check against the dominant characteristic root:")
	for _, f := range []float64{0.5, 1.5} {
		root, err := fpcc.DominantRoot(lin.A, lin.B, f*tauStar)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "stable (disturbances decay)"
		if real(root) > 0 {
			verdict = "unstable (limit cycle)"
		}
		fmt.Printf("  τ = %.2f·τ*: dominant root %+.4f%+.4fi -> %s\n",
			f, real(root), imag(root), verdict)
	}
	fmt.Println("\ntakeaway: the delay budget is width/μ — set by how sharp the")
	fmt.Println("congestion signal is and how fast the bottleneck drains, not by")
	fmt.Println("how aggressively the endpoints probe.")
}
