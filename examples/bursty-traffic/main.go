// Bursty traffic: what the Fokker-Planck view sees that a fluid model
// cannot.
//
// The paper closes by noting its model "addresses traffic variability
// (to some extent) that fluid approximation techniques do not
// address". This example generates that variability: the same AIMD
// controller, the same long-run offered load, but increasingly bursty
// on/off arrival envelopes. A fluid model — which only carries mean
// rates — predicts identical behaviour in every run. The packet
// system disagrees: queue spread explodes and utilization collapses
// with burstiness, and the measured index of dispersion for counts
// (IDC) quantifies how far from Poisson the input is.
//
// Run with: go run ./examples/bursty-traffic
package main

import (
	"fmt"
	"log"

	"fpcc"
	"fpcc/internal/rng"
	"fpcc/internal/traffic"
)

func main() {
	log.SetFlags(0)
	law, err := fpcc.NewAIMD(2, 0.5, 15)
	if err != nil {
		log.Fatal(err)
	}
	const (
		mu      = 30.0
		cycle   = 2.0 // on+off cycle length in seconds
		horizon = 4000.0
		warmup  = 500.0
	)

	fmt.Println("AIMD source into a μ=30 bottleneck; on/off bursts with mean factor 1")
	fmt.Printf("%12s %10s %12s %12s %10s %8s\n",
		"burstiness", "IDC(10s)", "throughput", "utilization", "mean Q", "std Q")

	for _, beta := range []float64{1, 2, 4, 8} {
		var mod fpcc.Modulator
		if beta > 1 {
			m, err := fpcc.NewOnOff(cycle/beta, cycle-cycle/beta)
			if err != nil {
				log.Fatal(err)
			}
			mod = m
		}

		// Measure the input burstiness on an open-loop sample of the
		// modulated process at a fixed base rate.
		idc := 1.0
		if mod != nil {
			times, err := traffic.Arrivals(mod, rng.New(7), 25, 20000)
			if err != nil {
				log.Fatal(err)
			}
			idc, err = fpcc.IDC(times, 10, 20000)
			if err != nil {
				log.Fatal(err)
			}
		}

		sim, err := fpcc.NewPacketSim(fpcc.PacketSimConfig{
			Mu:   mu,
			Seed: 33,
			Sources: []fpcc.PacketSource{{
				Law: law, Interval: 0.25, Lambda0: 10, MinRate: 0.5, Burst: mod,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(horizon, warmup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.0f %10.1f %12.2f %12.2f %10.2f %8.2f\n",
			beta, idc, res.Throughput[0], res.Throughput[0]/mu,
			res.QueueStats.Mean(), res.QueueStats.StdDev())
	}

	fmt.Println("\nevery row offers the same average load; only the variability")
	fmt.Println("changes. The queue spread (and the lost utilization) is exactly")
	fmt.Println("the dimension the σ²·f_qq term of Eq. 14 exists to carry.")
}
