// Package config centralizes the package allowlists the fpcc
// analyzers share: which packages are deterministic engine code
// (where wall clocks are forbidden and recorder call sites must be
// gated), which render output (where map iteration order leaks into
// emitted bytes), and which own their contracts' implementations
// (and are therefore exempt from the checks built on them).
//
// The lists are spelled as canonical import paths of this module so
// the same analyzers apply to the real tree and to analysistest
// fixtures that recreate the paths under their own roots.
package config

import "strings"

// Module is the module path of this repository.
const Module = "fpcc"

// EnginePackages are the deterministic sim-clock packages: every
// package whose computations feed experiment tables. Wall-clock reads
// (walltime) are forbidden here, and obs.Recorder call sites that
// compute probe arguments must be gated behind Enabled/ProbeDue/
// Invariants (obsgate), so the disabled-observability path stays one
// predictable branch per site.
var EnginePackages = []string{
	Module + "/internal/characteristics",
	Module + "/internal/control",
	Module + "/internal/dde",
	Module + "/internal/des",
	Module + "/internal/eventq",
	Module + "/internal/experiments",
	Module + "/internal/fluid",
	Module + "/internal/fokkerplanck",
	Module + "/internal/grid",
	Module + "/internal/linalg",
	Module + "/internal/markov",
	Module + "/internal/meanfield",
	Module + "/internal/netmf",
	Module + "/internal/netsim",
	Module + "/internal/ode",
	Module + "/internal/parallel",
	Module + "/internal/queue",
	Module + "/internal/rng",
	Module + "/internal/sde",
	Module + "/internal/stability",
	Module + "/internal/stats",
	Module + "/internal/sweep",
	Module + "/internal/traffic",
}

// EmissionPackages render or stream deterministic output: experiment
// tables, sweep CSV/JSON, obs summaries/traces/metrics. Iterating a
// map here without sorting (or copying into another map) is the
// Recorder.SpanSeconds bug class: byte-unstable output.
var EmissionPackages = []string{
	Module + "/internal/experiments",
	Module + "/internal/netsim",
	Module + "/internal/obs",
	Module + "/internal/obs/chrometrace",
	Module + "/internal/obs/obscli",
	Module + "/internal/obs/obshttp",
	Module + "/internal/sweep",
	Module + "/cmd/benchreport",
}

// SeedflowExempt packages may touch math/rand: only internal/rng,
// which owns the repository's generator and derives every stream.
var SeedflowExempt = []string{
	Module + "/internal/rng",
}

// SharedwriteExempt packages host the fork-join frameworks
// themselves; their own implementations legitimately write captured
// state (claim counters, block-indexed partial arrays) inside the
// closures they spawn.
var SharedwriteExempt = []string{
	Module + "/internal/parallel",
	Module + "/internal/sweep",
}

// ObsPackage is the observability package whose *Recorder methods
// must begin with the inlineable nil-receiver guard.
var ObsPackage = Module + "/internal/obs"

// ParallelPackage and SweepPackage locate the fork-join entry points
// the sharedwrite analyzer watches.
var (
	ParallelPackage = Module + "/internal/parallel"
	SweepPackage    = Module + "/internal/sweep"
)

// In reports whether pkgPath is one of the listed packages.
func In(pkgPath string, list []string) bool {
	for _, p := range list {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// UnderModule reports whether pkgPath belongs to this module (the
// analyzers' contracts do not apply to testdata fixtures of other
// roots or to the standard library).
func UnderModule(pkgPath string) bool {
	return pkgPath == Module || strings.HasPrefix(pkgPath, Module+"/")
}
