package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// KnownTokens lists every valid //fpcc: suppression token. The
// walltime analyzer's token is "wallclock" (the engines' sim-clock
// contract predates the analyzer and its comments were specified that
// way); every other analyzer's token is its name.
var KnownTokens = []string{"wallclock", "maprange", "seedflow", "obsgate", "sharedwrite"}

// suppression is one parsed //fpcc:<token> comment.
type suppression struct {
	token string
	pos   token.Pos
	file  string
	line  int
}

// suppressionIndex holds a package's parsed suppression comments.
type suppressionIndex struct {
	// ok maps token -> file -> set of lines covered (the comment's
	// own line and the line below it, so a comment can sit inline or
	// on its own line above the finding).
	ok        map[string]map[string]map[int]bool
	malformed []suppression
	unknown   []suppression
}

// covers reports whether a well-formed suppression for token covers
// the given position.
func (s *suppressionIndex) covers(token string, pos token.Position) bool {
	byFile := s.ok[token]
	if byFile == nil {
		return false
	}
	return byFile[pos.Filename][pos.Line]
}

// scanSuppressions parses every //fpcc:<token> comment in the files.
// A well-formed comment is "//fpcc:<token> -- <justification>" with a
// non-empty justification; it suppresses findings of the matching
// analyzer on its own line and the next line. Malformed and
// unknown-token comments are collected for reporting.
func scanSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{ok: make(map[string]map[string]map[int]bool)}
	known := make(map[string]bool, len(KnownTokens))
	for _, t := range KnownTokens {
		known[t] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, found := strings.CutPrefix(c.Text, "//fpcc:")
				if !found {
					continue
				}
				tok := text
				rest := ""
				if i := strings.IndexAny(text, " \t"); i >= 0 {
					tok, rest = text[:i], text[i:]
				}
				pos := fset.Position(c.Pos())
				s := suppression{token: tok, pos: c.Pos(), file: pos.Filename, line: pos.Line}
				if !known[tok] {
					idx.unknown = append(idx.unknown, s)
					continue
				}
				just := ""
				if _, after, found := strings.Cut(rest, "--"); found {
					just = strings.TrimSpace(after)
				}
				if just == "" {
					idx.malformed = append(idx.malformed, s)
					continue
				}
				byFile := idx.ok[tok]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					idx.ok[tok] = byFile
				}
				lines := byFile[s.file]
				if lines == nil {
					lines = make(map[int]bool)
					byFile[s.file] = lines
				}
				lines[s.line] = true
				lines[s.line+1] = true
			}
		}
	}
	return idx
}
