// Package maprange flags map iteration in the output-rendering
// packages unless the iteration is order-independent.
//
// Go randomizes map iteration order per run. In the packages that
// render experiment tables, sweep CSV/JSON, obs summaries, traces,
// and metrics expositions — where the repository guarantees
// byte-identical output for any worker count and across runs — a
// bare `for k := range m` is the Recorder.SpanSeconds bug class:
// output whose bytes (or float accumulation order) change run to
// run. Two iteration shapes are provably order-independent and
// allowed without comment:
//
//   - collect-then-sort: the loop body only appends keys/values to
//     slices, and every such slice is passed to a sort.* or slices.*
//     sort call after the loop, before use;
//   - map-to-map: the loop body only writes map entries or deletes
//     keys (building one unordered structure from another).
//
// Anything else needs an explicit justification:
//
//	for k, v := range m { //fpcc:maprange -- commutative max, order-free
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"fpcc/internal/analysis"
	"fpcc/internal/analysis/config"
)

// Analyzer is the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag order-dependent map iteration in output/trace/summary rendering packages",
	Run:  run,
}

// sortFuncs are the accepted sorting entry points, by package path.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) error {
	if !config.In(pass.Pkg.Path(), config.EmissionPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			fn := analysis.EnclosingFunc(append(stack, n))
			if ok, collected := orderFree(pass, rng); ok {
				if allSorted(pass, fn, rng, collected) {
					return true
				}
			}
			pass.Reportf(rng.Pos(),
				"maprange: map iteration order reaches output in rendering package %s: collect into a slice and sort before emission, or copy map-to-map (//fpcc:maprange -- <why> to suppress)",
				pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// orderFree reports whether every statement of the range body is an
// order-independent collector or merger — an append into a slice
// variable (returned in collected, to be checked for a later sort), a
// map write, a delete, a body-local definition and updates to it
// (`prev := m[k]; prev.N += v; m[k] = prev`), lazy initialization of
// a destination map, or a continue — possibly nested under plain if
// statements.
func orderFree(pass *analysis.Pass, rng *ast.RangeStmt) (ok bool, collected []types.Object) {
	// locals are variables defined (:=) inside the body: writes to
	// them, or to their fields, stay private to one iteration.
	locals := make(map[types.Object]bool)
	localTarget := func(e ast.Expr) bool {
		root := analysis.RootIdent(e)
		return root != nil && locals[analysis.ObjectOf(pass.TypesInfo, root)]
	}
	mapTarget := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, st := range stmts {
			switch s := st.(type) {
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					for _, lhs := range s.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								locals[obj] = true
							}
						}
					}
					continue
				}
				for i, lhs := range s.Lhs {
					switch l := analysis.Unparen(lhs).(type) {
					case *ast.Ident:
						if l.Name == "_" || locals[analysis.ObjectOf(pass.TypesInfo, l)] {
							continue
						}
						// Lazy map init (`dst = map[...]{}`) builds the
						// unordered destination; otherwise only
						// `x = append(x, ...)` accumulation.
						if mapTarget(l) {
							continue
						}
						if len(s.Rhs) != len(s.Lhs) {
							return false
						}
						obj := analysis.ObjectOf(pass.TypesInfo, l)
						if obj == nil || !isAppendTo(pass, s.Rhs[i], obj) {
							return false
						}
						collected = append(collected, obj)
					case *ast.IndexExpr:
						// Map writes are unordered-to-unordered; index
						// writes into anything ordered are not.
						if !mapTarget(l.X) && !localTarget(l.X) {
							return false
						}
					case *ast.SelectorExpr:
						// Field updates on a body-local, or lazy init of
						// a destination map field (`out.Gauges = ...`).
						if !localTarget(l) && !mapTarget(l) {
							return false
						}
					default:
						return false
					}
				}
			case *ast.IncDecStmt:
				switch l := analysis.Unparen(s.X).(type) {
				case *ast.IndexExpr:
					if !mapTarget(l.X) && !localTarget(l.X) {
						return false
					}
				default:
					if !localTarget(s.X) {
						return false
					}
				}
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return false
				}
				id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return false
				}
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
					return false
				}
			case *ast.BranchStmt:
				// continue skips an iteration — order-free; break stops
				// at a nondeterministic point — not.
				if s.Tok != token.CONTINUE || s.Label != nil {
					return false
				}
			case *ast.IfStmt:
				if s.Init != nil {
					return false
				}
				if !walk(s.Body.List) {
					return false
				}
				switch e := s.Else.(type) {
				case nil:
				case *ast.BlockStmt:
					if !walk(e.List) {
						return false
					}
				default:
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(rng.Body.List) {
		return false, nil
	}
	return true, collected
}

// isAppendTo reports whether e is `append(obj, ...)`.
func isAppendTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	first, ok := analysis.Unparen(call.Args[0]).(*ast.Ident)
	return ok && analysis.ObjectOf(pass.TypesInfo, first) == obj
}

// allSorted reports whether each collected slice object is passed to
// a recognized sort call after the range statement, within the
// enclosing function.
func allSorted(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt, collected []types.Object) bool {
	if len(collected) == 0 {
		return true
	}
	if fn == nil {
		return false
	}
	sorted := make(map[types.Object]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := analysis.CalleeOf(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		names := sortFuncs[callee.Pkg().Path()]
		if names == nil || !names[callee.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := analysis.Unparen(arg).(*ast.Ident); ok {
				if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil {
					sorted[obj] = true
				}
			}
		}
		return true
	})
	for _, obj := range collected {
		if !sorted[obj] {
			return false
		}
	}
	return true
}
