package maprange_test

import (
	"testing"

	"fpcc/internal/analysis/analysistest"
	"fpcc/internal/analysis/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, maprange.Analyzer,
		"fpcc/internal/obs",  // emission package: findings, escapes, suppression
		"fpcc/internal/grid", // outside the emission set: clean
	)
}
