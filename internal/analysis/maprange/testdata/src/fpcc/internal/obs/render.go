// Package obs is a fixture recreating an emission package path:
// map iteration order must not reach output here.
package obs

import (
	"fmt"
	"io"
	"sort"
)

// Summary is a fixture aggregate.
type Summary struct {
	Counters map[string]int64
	Gauges   map[string]float64
}

// WriteUnsorted streams entries in map order — the SpanSeconds bug
// class this analyzer exists for.
func (s *Summary) WriteUnsorted(w io.Writer) {
	for k, v := range s.Counters { // want `maprange: map iteration order reaches output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// WriteSorted collects keys, sorts them, then emits: clean.
func (s *Summary) WriteSorted(w io.Writer) {
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, s.Counters[k])
	}
}

// KeysUnsorted collects but never sorts before returning — the order
// leak just moves to the caller, so it is still a finding.
func (s *Summary) KeysUnsorted() []string {
	var keys []string
	for k := range s.Counters { // want `maprange: map iteration order reaches output`
		keys = append(keys, k)
	}
	return keys
}

// Rollup is the allowed map-to-map merge shape: lazy destination
// init, body-local staging, commutative accumulation, continue.
func (s *Summary) Rollup(out *Summary) {
	for k, v := range s.Counters {
		if v == 0 {
			continue
		}
		if out.Counters == nil {
			out.Counters = map[string]int64{}
		}
		out.Counters[k] += v
	}
	for k, g := range s.Gauges {
		prev := out.Gauges[k]
		if g > prev {
			prev = g
		}
		if out.Gauges == nil {
			out.Gauges = map[string]float64{}
		}
		out.Gauges[k] = prev
	}
}

// Prune deletes in map order — deletion is order-free.
func (s *Summary) Prune() {
	for k, v := range s.Counters {
		if v == 0 {
			delete(s.Counters, k)
		}
	}
}

// MaxGauge reduces with a commutative max but through a captured
// scalar, which the shape check cannot prove — justified in place.
func (s *Summary) MaxGauge() float64 {
	best := 0.0
	for _, g := range s.Gauges { //fpcc:maprange -- fixture: commutative max, order-free by algebra
		if g > best {
			best = g
		}
	}
	return best
}

// SumGauges accumulates floats in map order: accumulation order
// changes the rounding, so this is a finding.
func (s *Summary) SumGauges() float64 {
	total := 0.0
	for _, g := range s.Gauges { // want `maprange: map iteration order reaches output`
		total += g
	}
	return total
}
