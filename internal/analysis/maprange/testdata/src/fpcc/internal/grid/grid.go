// Package grid is a fixture engine package outside the emission set:
// internal map iteration that never renders output is not maprange's
// business (determinism of state updates is the race detector's and
// the goldens' job).
package grid

// Mass sums cell weights in map order.
func Mass(cells map[int]float64) float64 {
	total := 0.0
	for _, w := range cells {
		total += w
	}
	return total
}
