// Package load type-checks packages from source with the standard
// library alone: module-internal imports resolve against the module
// tree, everything else (the standard library) through go/importer's
// source importer. It powers cmd/fpccvet's standalone mode and the
// analysistest harness; the `go vet -vettool` path gets its type
// information from export data instead (see cmd/fpccvet).
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fpcc/internal/analysis"
)

// Loader loads and caches type-checked packages of one module root.
// It is not safe for concurrent use.
type Loader struct {
	// Root is the directory holding the module (or fixture tree).
	Root string
	// Module is the import-path prefix mapped onto Root; "" maps
	// every non-standard-library path onto Root directly (the
	// analysistest fixture layout, where testdata/src/<path> IS the
	// package path — including paths that recreate this module's).
	Module string
	// GoVersion is the language version for the type checker (e.g.
	// "go1.24"); empty uses the checker default.
	GoVersion string

	fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*analysis.Package
	loadin map[string]bool
}

// New returns a Loader for the module rooted at root. The module path
// is read from root's go.mod.
func New(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("load: reading go.mod: %w", err)
	}
	mod, gover := parseGoMod(string(data))
	if mod == "" {
		return nil, fmt.Errorf("load: no module directive in %s/go.mod", root)
	}
	l := NewFixture(root, gover)
	l.Module = mod
	return l, nil
}

// NewFixture returns a Loader over a bare source tree (no go.mod):
// package paths map directly onto directories under root. The
// analysistest harness loads testdata/src trees this way.
func NewFixture(root, goVersion string) *Loader {
	// The source importer type-checks standard-library dependencies
	// from $GOROOT/src. Disable cgo so cgo-using packages (net, ...)
	// select their pure-Go fallbacks instead of shelling out to cgo.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Root:      root,
		GoVersion: goVersion,
		fset:      fset,
		std:       importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:      make(map[string]*analysis.Package),
		loadin:    make(map[string]bool),
	}
}

// parseGoMod extracts the module path and go version from go.mod
// text.
func parseGoMod(text string) (module, goVersion string) {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.Trim(strings.TrimSpace(rest), `"`)
		} else if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	return module, goVersion
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps a loadable package path to its directory under Root,
// or "" if the path is not served by this loader.
func (l *Loader) dirFor(path string) string {
	if l.Module == "" {
		return filepath.Join(l.Root, filepath.FromSlash(path))
	}
	if path == l.Module {
		return l.Root
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest))
	}
	return ""
}

// stdlib reports whether the loader should delegate path to the
// source importer: fixture loaders (Module == "") serve any path
// that exists as a directory under Root, module loaders any path
// under the module prefix.
func (l *Loader) servesPath(path string) bool {
	dir := l.dirFor(path)
	if dir == "" {
		return false
	}
	if l.Module != "" {
		return true
	}
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// Load type-checks the package at the given import path (relative to
// the loader's root) and returns it. Results are cached; imports of
// other module packages load recursively.
func (l *Loader) Load(path string) (*analysis.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loadin[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loadin[path] = true
	defer delete(l.loadin, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load: %q is outside the loader root", path)
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, err
		}
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, &build.NoGoError{Dir: dir}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  (*loaderImporter)(l),
		GoVersion: l.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, typeErrs[0])
	}
	p := &analysis.Package{Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts Loader to types.Importer, resolving
// module-internal paths through the loader and everything else
// through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.servesPath(path) {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Dirs enumerates the package directories under root, skipping
// testdata, vendored code, and dot-directories, and returns their
// import paths relative to the loader (module-prefixed for module
// loaders). Directories with only test files are skipped: the fpcc
// contracts govern shipped code.
func (l *Loader) Dirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.Root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := build.Default.ImportDir(p, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.Root, p)
		if err != nil {
			return err
		}
		switch {
		case rel == ".":
			if l.Module != "" {
				out = append(out, l.Module)
			}
		case l.Module != "":
			out = append(out, l.Module+"/"+filepath.ToSlash(rel))
		default:
			out = append(out, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
