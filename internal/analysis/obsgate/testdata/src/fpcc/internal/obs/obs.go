// Package obs is a fixture recreating the telemetry package: every
// exported *Recorder method must lead with the nil-receiver guard.
package obs

// Recorder is the fixture telemetry hub; nil means disabled.
type Recorder struct {
	enabled bool
	every   int64
	n       int64
	last    float64
}

// Enabled uses the expression guard form `r != nil && ...`.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// ProbeDue uses the same form with more clauses.
func (r *Recorder) ProbeDue(step int64) bool {
	return r != nil && r.enabled && r.every > 0 && step%r.every == 0
}

// Invariants uses the bare expression form `r != nil`.
func (r *Recorder) Invariants() bool { return r != nil }

// Probe uses the statement guard form.
func (r *Recorder) Probe(name string, v float64, w int) {
	if r == nil {
		return
	}
	r.n++
	r.last = v
	_ = name
	_ = w
}

// Gauge guards with an ||-extended condition, nil check leftmost.
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil || !r.enabled {
		return
	}
	r.n++
	r.last = v
	_ = name
}

// Count guards then panics on misuse — panic terminates too.
func (r *Recorder) Count(name string, n int64) {
	if r == nil {
		return
	}
	if n < 0 {
		panic("obs: negative count")
	}
	r.n += n
	_ = name
}

// Observe delegates to a guarded sibling as its sole statement.
func (r *Recorder) Observe(name string, v float64) int64 {
	return r.ObserveWorker(name, v, -1)
}

// ObserveWorker carries the guard Observe delegates to.
func (r *Recorder) ObserveWorker(name string, v float64, w int) int64 {
	if r == nil {
		return 0
	}
	r.n++
	r.last = v
	_ = name
	_ = w
	return r.n
}

// Violations has no guard at all.
func (r *Recorder) Violations() int64 { // want `must begin with the inlineable nil-receiver guard`
	return r.n
}

// Snapshot allocates before guarding — the SpanSeconds bug shape: a
// nil recorder pays for a map allocation.
func (r *Recorder) Snapshot() map[string]float64 { // want `must begin with the inlineable nil-receiver guard`
	out := map[string]float64{}
	if r == nil {
		return out
	}
	out["last"] = r.last
	return out
}

// reset is unexported: internal helpers run behind guarded exported
// entry points and are not checked.
func (r *Recorder) reset() {
	r.n = 0
	r.last = 0
}

// Config is not a Recorder; its methods are not checked.
type Config struct{ Every int64 }

// Validate needs no nil-receiver guard (value receiver, other type).
func (c Config) Validate() bool { return c.Every >= 0 }
