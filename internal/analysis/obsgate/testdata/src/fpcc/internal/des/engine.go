// Package des is a fixture engine package: calls that compute probe
// arguments must sit behind an Enabled/ProbeDue gate.
package des

import "fpcc/internal/obs"

// Engine is a fixture simulation with a recorder that may be nil.
type Engine struct {
	rec  *obs.Recorder
	f    []float64
	step int64
}

// mass is the expensive reduction engines feed to probes.
func mass(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// StepBad feeds a computed argument with no gate: the disabled path
// pays for the whole reduction before Probe's guard rejects it.
func (e *Engine) StepBad() {
	e.rec.Probe("mass", mass(e.f), 1) // want `obsgate: Probe argument computes work outside an Enabled\(\)/ProbeDue\(\) gate`
}

// StepGated computes behind the enclosing ProbeDue gate.
func (e *Engine) StepGated() {
	if e.rec.ProbeDue(e.step) {
		e.rec.Probe("mass", mass(e.f), 1)
	}
}

// StepEarlyReturn computes behind an early-return Enabled gate.
func (e *Engine) StepEarlyReturn() {
	if !e.rec.Enabled() {
		return
	}
	e.rec.Gauge("mass", mass(e.f))
}

// StepNilChecked computes behind an explicit nil check.
func (e *Engine) StepNilChecked() {
	if e.rec == nil {
		return
	}
	e.rec.Gauge("mass", mass(e.f))
}

// StepTrivial feeds only conversions and cheap builtins: the nil
// guard inside Count is gate enough.
func (e *Engine) StepTrivial() {
	e.rec.Count("cells", int64(len(e.f)))
}

// StepJustified carries a suppression for a call the analyzer cannot
// see is cheap.
func (e *Engine) StepJustified() {
	e.rec.Gauge("cached", e.cachedMass()) //fpcc:obsgate -- fixture: cachedMass is a field read behind a sync.Once
}

func (e *Engine) cachedMass() float64 { return e.f[0] }
