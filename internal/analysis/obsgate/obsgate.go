// Package obsgate enforces the zero-overhead observability contract
// on both sides of the *obs.Recorder API.
//
// Provider side (package internal/obs): every exported method on
// *Recorder must begin with the inlineable nil-receiver guard, so a
// disabled recorder — a nil pointer — costs exactly one predictable
// branch and touches no memory. Accepted leading forms:
//
//	if r == nil { return ... }          // possibly `r == nil || more`
//	return r != nil                     // possibly `&& more` / `== nil || more`
//	return r.Other(...)                 // delegation to a guarded sibling
//
// Consumer side (the engine packages): a call to Probe, Gauge, Count,
// or Observe whose arguments compute anything (contain a non-trivial
// call — a moment pass, a mass integral) must sit behind an
// Enabled(), ProbeDue(), or Invariants() gate, either as an enclosing
// if condition or an early-return guard earlier in the function, so
// the disabled path never pays for feeding a recorder that isn't
// there.
package obsgate

import (
	"go/ast"
	"go/token"
	"go/types"

	"fpcc/internal/analysis"
	"fpcc/internal/analysis/config"
)

// Analyzer is the obsgate check.
var Analyzer = &analysis.Analyzer{
	Name: "obsgate",
	Doc:  "require nil-receiver guards on *obs.Recorder methods and Enabled/ProbeDue gates at computing call sites",
	Run:  run,
}

// feeding are the Recorder methods whose arguments engines compute.
var feeding = map[string]bool{"Probe": true, "Gauge": true, "Count": true, "Observe": true}

// gates are the Recorder predicates that establish the enabled path.
var gates = map[string]bool{"Enabled": true, "ProbeDue": true, "Invariants": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == config.ObsPackage {
		checkMethods(pass)
	}
	if config.In(pass.Pkg.Path(), config.EnginePackages) {
		checkCallSites(pass)
	}
	return nil
}

// checkMethods verifies the leading nil-receiver guard on every
// exported *Recorder method.
func checkMethods(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if !recvIsPtrRecorder(pass, fd) {
				continue
			}
			recv := recvName(fd)
			if recv == "" {
				pass.Reportf(fd.Pos(),
					"obsgate: exported method (*Recorder).%s has no named receiver to nil-guard", fd.Name.Name)
				continue
			}
			if len(fd.Body.List) == 0 || !guardOK(fd.Body.List[0], recv, len(fd.Body.List) == 1) {
				pass.Reportf(fd.Pos(),
					"obsgate: exported method (*Recorder).%s must begin with the inlineable nil-receiver guard (if %s == nil { return ... })",
					fd.Name.Name, recv)
			}
		}
	}
}

// recvIsPtrRecorder reports whether fd's receiver is *Recorder of the
// current (obs) package.
func recvIsPtrRecorder(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Recorder" && named.Obj().Pkg() == pass.Pkg
}

func recvName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

// guardOK reports whether stmt is an accepted leading guard for the
// named receiver. sole indicates stmt is the method's only statement
// (required for the expression and delegation forms, which guard by
// construction only when nothing follows them).
func guardOK(stmt ast.Stmt, recv string, sole bool) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		// if recv == nil { ...; return/panic } — possibly `|| more`,
		// with the nil check leftmost so it short-circuits first.
		if s.Init != nil || !condLeadsWithNilCheck(s.Cond, recv, token.EQL) {
			return false
		}
		return terminates(s.Body)
	case *ast.ReturnStmt:
		if !sole || len(s.Results) != 1 {
			return false
		}
		e := analysis.Unparen(s.Results[0])
		if exprLeadsWithNilCheck(e, recv) {
			return true
		}
		// Delegation: return recv.Sibling(...).
		if call, ok := e.(*ast.CallExpr); ok {
			if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := analysis.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
					return true
				}
			}
		}
		return false
	}
	return false
}

// condLeadsWithNilCheck reports whether the leftmost operand of an
// ||-chain (or the whole condition) is `recv <op> nil`.
func condLeadsWithNilCheck(e ast.Expr, recv string, op token.Token) bool {
	e = analysis.Unparen(e)
	if bin, ok := e.(*ast.BinaryExpr); ok {
		if bin.Op == token.LOR {
			return condLeadsWithNilCheck(bin.X, recv, op)
		}
		return bin.Op == op && isRecvIdent(bin.X, recv) && isNil(bin.Y)
	}
	return false
}

// exprLeadsWithNilCheck accepts `recv != nil`, `recv != nil && ...`,
// and `recv == nil || ...` (leftmost, so the nil test runs first).
func exprLeadsWithNilCheck(e ast.Expr, recv string) bool {
	bin, ok := analysis.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.NEQ:
		return isRecvIdent(bin.X, recv) && isNil(bin.Y)
	case token.LAND:
		return exprLeadsWithNilCheck(bin.X, recv)
	case token.LOR:
		return condLeadsWithNilCheck(bin, recv, token.EQL)
	}
	return false
}

func isRecvIdent(e ast.Expr, recv string) bool {
	id, ok := analysis.Unparen(e).(*ast.Ident)
	return ok && id.Name == recv
}

func isNil(e ast.Expr) bool {
	id, ok := analysis.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block's last statement stops the
// method (return or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// checkCallSites flags feeding calls whose arguments compute work
// without an Enabled/ProbeDue/Invariants gate in scope.
func checkCallSites(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := analysis.MethodOf(analysis.CalleeOf(pass.TypesInfo, call), config.ObsPackage, "Recorder")
			if !ok || !feeding[name] {
				return true
			}
			if !argsCompute(pass, call) {
				return true
			}
			if gatedByAncestor(pass, stack) || gatedByEarlyReturn(pass, stack, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"obsgate: %s argument computes work outside an Enabled()/ProbeDue() gate: the disabled-recorder path must stay one branch (//fpcc:obsgate -- <why> to suppress)",
				name)
			return true
		})
	}
}

// argsCompute reports whether any argument contains a non-trivial
// call (not a conversion, not a cheap builtin).
func argsCompute(pass *analysis.Pass, call *ast.CallExpr) bool {
	cheap := map[string]bool{"len": true, "cap": true, "min": true, "max": true, "abs": true}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fun := analysis.Unparen(inner.Fun)
			// Type conversions are free.
			if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
				return true
			}
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && cheap[b.Name()] {
					return true
				}
			}
			found = true
			return false
		})
		if found {
			return true
		}
	}
	return false
}

// gatedByAncestor reports whether any enclosing if (or for) condition
// within the current function calls a gate predicate on a *Recorder.
func gatedByAncestor(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if condCallsGate(pass, s.Cond) {
				return true
			}
		}
	}
	return false
}

// gatedByEarlyReturn reports whether a statement before the call, at
// any block level of the enclosing function, is an early-return
// guard: `if <cond touching a gate or nil-check on a Recorder> {
// return }`.
func gatedByEarlyReturn(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr) bool {
	fn := analysis.EnclosingFunc(stack)
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || found || ifs.End() > call.Pos() {
			return !found
		}
		if !terminates(ifs.Body) {
			return true
		}
		if condCallsGate(pass, ifs.Cond) || condNilChecksRecorder(pass, ifs.Cond) {
			found = true
			return false
		}
		return true
	})
	return found
}

// condCallsGate reports whether the expression contains a call to a
// gate predicate (Enabled/ProbeDue/Invariants) on a *Recorder.
func condCallsGate(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if name, ok := analysis.MethodOf(analysis.CalleeOf(pass.TypesInfo, call), config.ObsPackage, "Recorder"); ok && gates[name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// condNilChecksRecorder reports whether the expression contains a
// `x == nil` comparison where x is a *Recorder.
func condNilChecksRecorder(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || found || bin.Op != token.EQL {
			return !found
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if !isNil(side) {
				if tv, ok := pass.TypesInfo.Types[side]; ok && tv.Type != nil && isPtrRecorder(tv.Type) {
					if isNil(bin.Y) || isNil(bin.X) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

func isPtrRecorder(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Recorder" && o.Pkg() != nil && o.Pkg().Path() == config.ObsPackage
}
