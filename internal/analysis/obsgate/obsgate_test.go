package obsgate_test

import (
	"testing"

	"fpcc/internal/analysis/analysistest"
	"fpcc/internal/analysis/obsgate"
)

func TestObsgate(t *testing.T) {
	analysistest.Run(t, obsgate.Analyzer,
		"fpcc/internal/obs", // provider side: guard forms on *Recorder methods
		"fpcc/internal/des", // consumer side: gates at computing call sites
	)
}
