// Package analysistest runs an analyzer over fixture packages and
// checks its findings against expectations embedded in the fixtures,
// in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under testdata/src/<import-path>/ next to the
// analyzer's test; fixture packages may import one another (including
// recreations of this module's own paths, so analyzers keyed on
// package allowlists exercise for real). A line expecting one or more
// findings carries a comment with the marker `want` followed by
// quoted regexps:
//
//	t0 := time.Now() // want `walltime: time\.Now`
//
// Every diagnostic must be matched by a pattern on its line and every
// pattern must match a diagnostic; the marker may also ride on a
// non-comment-only line's trailing comment (e.g. after a malformed
// suppression, which is itself a finding).
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fpcc/internal/analysis"
	"fpcc/internal/analysis/load"
)

// wantRE extracts the quoted patterns following a `want` marker.
var wantRE = regexp.MustCompile("\\bwant\\s+((?:(?:`[^`]*`|\"[^\"]*\")\\s*)+)")

// quotedRE extracts the individual quoted patterns.
var quotedRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// Run loads each fixture package from testdata/src under the test's
// working directory, applies the analyzer (through the same
// suppression-filtering driver fpccvet uses), and checks findings
// against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunDir(t, filepath.Join("testdata", "src"), a, pkgPaths...)
}

// RunDir is Run with an explicit fixture root.
func RunDir(t *testing.T, root string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := load.NewFixture(root, "go1.24")
	for _, path := range pkgPaths {
		pkg, err := ld.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, pkg, path, diags)
	}
}

// expectation is one want pattern and whether a diagnostic matched
// it.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, pkg *analysis.Package, path string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string]map[int][]*expectation) // file -> line -> patterns
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Package).Filename
		byLine := make(map[int][]*expectation)
		wants[fname] = byLine
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					raw := q[1 : len(q)-1]
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", fname, line, raw, err)
					}
					byLine[line] = append(byLine[line], &expectation{re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		var hit *expectation
		for _, e := range wants[pos.Filename][pos.Line] {
			if !e.matched && e.re.MatchString(d.Message) {
				hit = e
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", path, relName(pos.Filename), pos.Line, d.Message)
			continue
		}
		hit.matched = true
	}
	for fname, byLine := range wants {
		for line, es := range byLine {
			for _, e := range es {
				if !e.matched {
					t.Errorf("%s: no diagnostic at %s:%d matching %q", path, relName(fname), line, e.raw)
				}
			}
		}
	}
}

// relName trims the testdata prefix for readable failures.
func relName(fname string) string {
	if i := strings.Index(fname, "testdata"+string(filepath.Separator)); i >= 0 {
		return fname[i:]
	}
	return fname
}
