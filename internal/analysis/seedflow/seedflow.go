// Package seedflow forbids randomness sources other than
// internal/rng anywhere in the module.
//
// Reproducibility here hangs on one discipline: every stream derives
// from an explicit integer seed through rng.New, and every sub-stream
// (per sweep cell, per particle chunk, per worker) through rng.Mix —
// so the whole 31-experiment suite is a pure function of its seeds at
// any worker split. math/rand (v1 or v2) breaks that three ways: its
// global functions are process-seeded, its generators are a second
// uncontrolled stream family, and its algorithms differ across Go
// releases, silently moving goldens. crypto/rand is nondeterministic
// by construction. Both are flagged at the import, outside
// internal/rng (which owns the generator).
package seedflow

import (
	"strconv"

	"fpcc/internal/analysis"
	"fpcc/internal/analysis/config"
)

// forbiddenImports are the randomness packages engine code must not
// touch.
var forbiddenImports = map[string]string{
	"math/rand":    "use internal/rng (rng.New, per-stream rng.Mix sub-seeds)",
	"math/rand/v2": "use internal/rng (rng.New, per-stream rng.Mix sub-seeds)",
	"crypto/rand":  "nondeterministic by construction; experiments must derive from explicit seeds",
}

// Analyzer is the seedflow check.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "forbid math/rand and crypto/rand outside internal/rng; streams must derive via rng.Mix",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !config.UnderModule(pass.Pkg.Path()) || config.In(pass.Pkg.Path(), config.SeedflowExempt) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := forbiddenImports[path]; bad {
				pass.Reportf(imp.Pos(),
					"seedflow: import of %s outside internal/rng: %s (//fpcc:seedflow -- <why> to suppress)",
					path, why)
			}
		}
	}
	return nil
}
