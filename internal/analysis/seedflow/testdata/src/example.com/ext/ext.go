// Package ext is outside the fpcc module: seedflow does not apply.
package ext

import "math/rand"

// Roll uses the global stream; foreign code is not ours to lint.
func Roll() int { return rand.Intn(6) }
