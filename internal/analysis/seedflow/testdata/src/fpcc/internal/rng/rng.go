// Package rng is a fixture recreating the one package allowed to own
// a generator: the exemption makes its math/rand import clean.
package rng

import "math/rand"

// New returns a deterministic stream for an explicit seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
