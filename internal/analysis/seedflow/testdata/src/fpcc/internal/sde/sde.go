// Package sde is a fixture engine package: randomness must come from
// internal/rng, so both forbidden imports are flagged at the import.
package sde

import (
	crand "crypto/rand" // want `seedflow: import of crypto/rand outside internal/rng`
	"math/rand"         // want `seedflow: import of math/rand outside internal/rng`
)

// Noise draws from the process-seeded global stream — the import
// above is the finding; the calls just use it.
func Noise() float64 {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Float64() + float64(b[0])
}
