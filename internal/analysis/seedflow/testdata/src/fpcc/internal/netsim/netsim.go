// Package netsim is a fixture engine carrying a justified suppression
// for a deliberate, gated use.
package netsim

import (
	"math/rand/v2" //fpcc:seedflow -- fixture: jitter source for a non-golden smoke mode, gated off in experiments
)

// Jitter is only reachable in the suppressed smoke mode.
func Jitter() float64 { return rand.Float64() }
