package seedflow_test

import (
	"testing"

	"fpcc/internal/analysis/analysistest"
	"fpcc/internal/analysis/seedflow"
)

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, seedflow.Analyzer,
		"fpcc/internal/sde",    // engine package: both forbidden imports flagged
		"fpcc/internal/netsim", // justified suppression: clean
		"fpcc/internal/rng",    // the exempt generator owner: clean
		"example.com/ext",      // outside the module: clean
	)
}
