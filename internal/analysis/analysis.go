// Package analysis is the repository's static-analysis framework: a
// self-contained, dependency-free subset of the golang.org/x/tools
// go/analysis API (Analyzer, Pass, Diagnostic) plus the shared
// suppression-comment machinery every fpcc analyzer uses.
//
// The five analyzers built on it (walltime, maprange, seedflow,
// obsgate, sharedwrite — one package each under internal/analysis/)
// encode the determinism and zero-overhead contracts the rest of the
// repository is built on; cmd/fpccvet bundles them into a vet tool
// runnable standalone or as `go vet -vettool=$(which fpccvet) ./...`.
//
// The framework is intentionally a subset: analyzers are pure
// functions of one type-checked package (no cross-package facts, no
// suggested fixes), which is all the fpcc contracts need and keeps
// the whole suite buildable offline with the standard library alone.
//
// # Suppressions
//
// A finding is suppressed by a comment on the same line (or the line
// directly above) of the form
//
//	//fpcc:<token> -- <justification>
//
// where <token> is the analyzer's suppression token (its name, except
// walltime which uses the historical "wallclock") and the
// justification is mandatory: a bare //fpcc:<token> does not suppress
// and is itself reported, so every exception in the tree carries its
// reason next to it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name, a documentation
// string, and a Run function applied to one type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and testdata
	// directories. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, then the contract it enforces.
	Doc string
	// Suppress is the //fpcc:<token> suppression token; empty means
	// Name.
	Suppress string
	// Run performs the check, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// Token returns the analyzer's suppression token.
func (a *Analyzer) Token() string {
	if a.Suppress != "" {
		return a.Suppress
	}
	return a.Name
}

// Pass is the input to one analyzer run: a single parsed and
// type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package; Pkg.Path() is the canonical
	// import path the analyzers' package allowlists match against.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// report receives diagnostics (set by the driver; filtered for
	// suppressions).
	report func(Diagnostic)
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// stamps the reporting analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Package is a loaded, type-checked package as produced by the load
// package or the unitchecker config path — the unit every analyzer
// runs over.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// RunPackage applies the analyzers to pkg and returns the surviving
// diagnostics in file/line order: suppressed findings are dropped,
// malformed suppression comments (missing the mandatory "-- reason")
// and unknown //fpcc: tokens are reported as findings themselves.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := scanSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic

	// Malformed or unknown suppression comments are findings in their
	// own right, independent of which analyzers run: a suppression
	// that silently fails to suppress (or suppresses nothing known)
	// must not pass the gate.
	for _, c := range sup.malformed {
		out = append(out, Diagnostic{
			Pos:      c.pos,
			Analyzer: "fpccvet",
			Message: fmt.Sprintf("fpcc:%s suppression requires a justification: //fpcc:%s -- <why>",
				c.token, c.token),
		})
	}
	for _, c := range sup.unknown {
		out = append(out, Diagnostic{
			Pos:      c.pos,
			Analyzer: "fpccvet",
			Message:  fmt.Sprintf("unknown fpcc suppression token %q (known: %v)", c.token, KnownTokens),
		})
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		token := a.Token()
		pass.report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if sup.covers(token, pkg.Fset.Position(d.Pos)) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// WithStack walks the AST rooted at root, calling fn with each node
// and the stack of its ancestors (outermost first, root's ancestors
// empty). Returning false skips the node's children.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// IsTestFile reports whether the file's name ends in _test.go. The
// fpcc contracts govern shipped code; tests may freely use wall
// clocks, maps, and local randomness.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Package).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
