// Package fokkerplanck is a fixture engine exercising every
// sharedwrite target class inside fork-join closures.
package fokkerplanck

import (
	"fpcc/internal/parallel"
	"fpcc/internal/sweep"
)

// Solver is a fixture engine.
type Solver struct {
	f       []float64
	workers int
	maxStep float64
}

// StepRacy accumulates into captured state five racy ways.
func (s *Solver) StepRacy(scale float64) float64 {
	sum := 0.0
	hits := 0
	seen := map[int]bool{}
	ptr := &sum
	parallel.For(len(s.f), s.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += s.f[i]         // want `sharedwrite: assignment to captured variable "sum" inside a parallel.For closure`
			hits++                // want `sharedwrite: assignment to captured variable "hits"`
			seen[i] = true        // want `sharedwrite: write to captured map "seen"`
			s.maxStep = s.f[i]    // want `sharedwrite: field write on captured "s"`
			*ptr = s.f[i] * scale // want `sharedwrite: write through captured pointer "ptr"`
		}
	})
	return sum + float64(hits)
}

// StepChunked writes only chunk-indexed slots and closure locals:
// the deterministic patterns, no findings.
func (s *Solver) StepChunked(out []float64) {
	parallel.For(len(s.f), s.workers, func(lo, hi int) {
		local := 0.0
		for i := lo; i < hi; i++ {
			local += s.f[i]
			out[i] = s.f[i] * 2
		}
		_ = local
	})
}

// StepScratch uses per-worker scratch slots: worker-indexed state is
// written through the slice element, not a captured scalar.
func (s *Solver) StepScratch() float64 {
	partial := make([]float64, s.workers)
	parallel.ForWorker(len(s.f), s.workers, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			partial[w] += s.f[i]
		}
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// StepReduce uses the framework's deterministic reduction instead of
// a captured accumulator.
func (s *Solver) StepReduce() float64 {
	return parallel.ReduceSum(len(s.f), s.workers, func(lo, hi int) float64 {
		block := 0.0
		for i := lo; i < hi; i++ {
			block += s.f[i]
		}
		return block
	})
}

// MapCells shows the same contract on sweep closures.
func (s *Solver) MapCells() ([]float64, error) {
	last := 0.0
	out, err := sweep.MapWorker(len(s.f), s.workers, func(w, i int) (float64, error) {
		last = s.f[i] // want `sharedwrite: assignment to captured variable "last" inside a sweep.MapWorker closure`
		return s.f[i], nil
	})
	_ = last
	return out, err
}

// SerialJustified writes captured state under a justified suppression
// (the call runs with one worker on this path).
func (s *Solver) SerialJustified() float64 {
	sum := 0.0
	parallel.For(len(s.f), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += s.f[i] //fpcc:sharedwrite -- fixture: workers pinned to 1 on this path, serial by construction
		}
	})
	return sum
}

// plainClosure writes captured state outside any fork-join call:
// ordinary closures are not sharedwrite's business.
func (s *Solver) plainClosure() float64 {
	sum := 0.0
	add := func(v float64) { sum += v }
	for _, v := range s.f {
		add(v)
	}
	return sum
}
