// Package churn is a fixture recreating the open-system mass ledger:
// per-class cumulative born/died session mass folded out of fork-join
// closures. The racy shape is the one the real birth–death kernels
// must avoid — accumulating the ledger through captured variables or
// fields from inside a concurrently-run closure instead of through
// chunk-indexed slots.
package churn

import (
	"fpcc/internal/parallel"
	"fpcc/internal/sweep"
)

// Ledger tracks cumulative born/died session mass per phase kernel.
type Ledger struct {
	born, died []float64
	totalBorn  float64
	workers    int
}

// FoldRacy folds per-kernel birth/death deltas into captured
// accumulators — the non-deterministic-reduction bug on both the
// scalar and the field target.
func (l *Ledger) FoldRacy(cells int) (float64, error) {
	balance := 0.0
	_, err := sweep.Map(cells, l.workers, func(i int) (float64, error) {
		balance += l.born[i] - l.died[i] // want `sharedwrite: assignment to captured variable "balance" inside a sweep.Map closure`
		l.totalBorn += l.born[i]         // want `sharedwrite: field write on captured "l"`
		return balance, nil
	})
	return balance, err
}

// FoldChunked writes each kernel's ledger balance into its own slot
// and reduces serially afterwards — the deterministic pattern, no
// findings.
func (l *Ledger) FoldChunked() float64 {
	balances := make([]float64, len(l.born))
	parallel.Each(len(l.born), l.workers, func(i int) {
		balances[i] = l.born[i] - l.died[i]
	})
	total := 0.0
	for _, b := range balances {
		total += b
	}
	return total
}

// FoldReduced uses the framework's deterministic reduction for the
// same fold.
func (l *Ledger) FoldReduced() float64 {
	return parallel.ReduceSum(len(l.born), l.workers, func(lo, hi int) float64 {
		block := 0.0
		for i := lo; i < hi; i++ {
			block += l.born[i] - l.died[i]
		}
		return block
	})
}
