// Package sweep is a fixture recreating the cell-mapping package:
// Map and MapWorker closures run concurrently.
package sweep

// Map runs fn over [0,n) and collects results.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// MapWorker is Map with the worker index.
func MapWorker[T any](n, workers int, fn func(worker, i int) (T, error)) ([]T, error) {
	return Map(n, workers, func(i int) (T, error) { return fn(0, i) })
}
