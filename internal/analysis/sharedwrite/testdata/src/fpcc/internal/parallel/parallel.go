// Package parallel is a fixture recreating the fork-join package:
// the entry points sharedwrite watches, run serially here. Its own
// internals write captured state by design and are exempt.
package parallel

// For splits [0,n) into blocks and runs fn per block.
func For(n, workers int, fn func(lo, hi int)) {
	done := 0
	fn(0, n)
	done++ // exempt package: the framework owns its synchronization
	_ = done
}

// ForWorker is For with the worker index.
func ForWorker(n, workers int, fn func(w, lo, hi int)) { fn(0, 0, n) }

// Each runs fn per index.
func Each(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// EachWorker is Each with the worker index.
func EachWorker(n, workers int, fn func(w, i int)) {
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

// ReduceSum sums fn over blocks.
func ReduceSum(n, workers int, fn func(lo, hi int) float64) float64 {
	return fn(0, n)
}

// Scratch is per-worker storage.
type Scratch[T any] struct{ slots []T }

// NewScratch builds per-worker slots.
func NewScratch[T any](workers int, mk func() T) *Scratch[T] {
	s := &Scratch[T]{slots: make([]T, 0, workers)}
	for i := 0; i < workers; i++ {
		s.slots = append(s.slots, mk())
	}
	return s
}

// Get returns worker w's slot.
func (s *Scratch[T]) Get(w int) T { return s.slots[w] }
