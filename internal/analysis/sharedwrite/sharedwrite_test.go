package sharedwrite_test

import (
	"testing"

	"fpcc/internal/analysis/analysistest"
	"fpcc/internal/analysis/sharedwrite"
)

func TestSharedwrite(t *testing.T) {
	analysistest.Run(t, sharedwrite.Analyzer,
		"fpcc/internal/fokkerplanck", // engine closures: every target class plus the allowed patterns
		"fpcc/internal/parallel",     // the framework itself is exempt
		"fpcc/internal/churn",        // open-system mass ledger: captured-accumulator folds vs chunk-indexed slots
	)
}
