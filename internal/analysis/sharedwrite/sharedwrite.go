// Package sharedwrite flags writes to captured variables inside the
// closures the fork-join frameworks run concurrently.
//
// Closures passed to parallel.For / ForWorker / Each / EachWorker /
// ReduceSum and sweep.Map / MapWorker / Run / RunRows execute on
// several workers at once. A write to a variable captured from the
// enclosing scope — a scalar accumulation (`sum += x`), a
// reassignment, a captured map entry, a captured struct field — is
// the non-deterministic-reduction bug class: a data race whose
// winning order varies run to run. The deterministic patterns the
// frameworks provide remain allowed without comment:
//
//   - element writes into captured slices (`out[i] = ...`) — the
//     frameworks' chunk-indexed slots, where each index is written by
//     exactly one block;
//   - anything declared inside the closure, including per-worker
//     scratch obtained from parallel.Scratch.
//
// A write that is provably safe for another reason carries its
// justification in place:
//
//	last = v //fpcc:sharedwrite -- workers==1 on this path
package sharedwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"fpcc/internal/analysis"
	"fpcc/internal/analysis/config"
)

// Analyzer is the sharedwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "sharedwrite",
	Doc:  "flag racy writes to captured variables inside parallel.For/Each and sweep.Map closures",
	Run:  run,
}

// parallelFuncs and sweepFuncs are the fork-join entry points whose
// closure arguments run concurrently.
var parallelFuncs = map[string]bool{
	"For": true, "ForWorker": true, "Each": true, "EachWorker": true, "ReduceSum": true,
}
var sweepFuncs = map[string]bool{
	"Map": true, "MapWorker": true, "Run": true, "RunRows": true,
}

func run(pass *analysis.Pass) error {
	if !config.UnderModule(pass.Pkg.Path()) || config.In(pass.Pkg.Path(), config.SharedwriteExempt) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeOf(pass.TypesInfo, call)
			if !analysis.IsPkgFunc(callee, config.ParallelPackage, parallelFuncs) &&
				!analysis.IsPkgFunc(callee, config.SweepPackage, sweepFuncs) {
				return true
			}
			qual := callee.Pkg().Name() + "." + callee.Name()
			for _, arg := range call.Args {
				if lit, ok := analysis.Unparen(arg).(*ast.FuncLit); ok {
					checkClosure(pass, lit, qual)
				}
			}
			return true
		})
	}
	return nil
}

// checkClosure reports racy writes to captured state anywhere inside
// the worker closure (nested literals included — they still run on
// the worker).
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, qual string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				// := defines new (closure-local) variables; x, y = ...
				// with ASSIGN writes existing ones.
				if s.Tok == token.DEFINE {
					continue
				}
				checkTarget(pass, lit, lhs, qual)
			}
		case *ast.IncDecStmt:
			checkTarget(pass, lit, s.X, qual)
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				if s.Key != nil {
					checkTarget(pass, lit, s.Key, qual)
				}
				if s.Value != nil {
					checkTarget(pass, lit, s.Value, qual)
				}
			}
		}
		return true
	})
}

// checkTarget classifies one assignment target inside the closure.
func checkTarget(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr, qual string) {
	switch l := analysis.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := analysis.ObjectOf(pass.TypesInfo, l)
		if isCapturedVar(obj, lit) {
			pass.Reportf(l.Pos(),
				"sharedwrite: assignment to captured variable %q inside a %s closure races across workers: use per-worker scratch or chunk-indexed slots (//fpcc:sharedwrite -- <why> to suppress)",
				l.Name, qual)
		}
	case *ast.IndexExpr:
		// Slice element writes are the frameworks' chunk-indexed
		// slots; captured MAP writes race on the map's internals.
		tv, ok := pass.TypesInfo.Types[l.X]
		if !ok || tv.Type == nil {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		if root := analysis.RootIdent(l.X); root != nil {
			if isCapturedVar(analysis.ObjectOf(pass.TypesInfo, root), lit) {
				pass.Reportf(l.Pos(),
					"sharedwrite: write to captured map %q inside a %s closure races across workers (//fpcc:sharedwrite -- <why> to suppress)",
					root.Name, qual)
			}
		}
	case *ast.SelectorExpr:
		// Direct field writes on a captured value (x.f = v). Field
		// writes through slice elements (xs[i].f = v) root at an
		// index expression and are allowed above.
		if root, ok := analysis.Unparen(l.X).(*ast.Ident); ok {
			if isCapturedVar(analysis.ObjectOf(pass.TypesInfo, root), lit) {
				pass.Reportf(l.Pos(),
					"sharedwrite: field write on captured %q inside a %s closure races across workers (//fpcc:sharedwrite -- <why> to suppress)",
					root.Name, qual)
			}
		}
	case *ast.StarExpr:
		if root := analysis.RootIdent(l); root != nil {
			if isCapturedVar(analysis.ObjectOf(pass.TypesInfo, root), lit) {
				pass.Reportf(l.Pos(),
					"sharedwrite: write through captured pointer %q inside a %s closure races across workers (//fpcc:sharedwrite -- <why> to suppress)",
					root.Name, qual)
			}
		}
	}
}

// isCapturedVar reports whether obj is a local variable or parameter
// declared outside the closure (package-level state is excluded: it
// is shared by design and owned by whoever synchronizes it, and the
// race detector in CI covers it).
func isCapturedVar(obj types.Object, lit *ast.FuncLit) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level variables are not "captured" — skip them.
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return false
	}
	return analysis.DeclaredOutside(obj, lit)
}
