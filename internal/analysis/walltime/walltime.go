// Package walltime forbids wall-clock reads in the deterministic
// engine and experiment packages.
//
// Every engine in this repository advances a simulation clock; its
// observables are pure functions of (config, seed). A time.Now or
// time.Since inside engine code is either dead determinism risk or an
// accident waiting to flow into a table — the golden byte-identity
// tests catch it only after it corrupts output, this analyzer at the
// call site. Telemetry packages (internal/obs and its subpackages)
// and the CLIs legitimately measure wall time and are outside the
// checked package set; a deliberate wall-clock measurement inside an
// engine package (e.g. the suite runner timing experiment runs) is
// suppressed in place:
//
//	start := time.Now() //fpcc:wallclock -- wall timing for the bench report; never enters tables
package walltime

import (
	"go/ast"

	"fpcc/internal/analysis"
	"fpcc/internal/analysis/config"
)

// forbidden are the time-package functions that read or schedule
// against the wall clock. Pure-value functions (time.Duration
// arithmetic, time.Unix construction, time.Date) stay allowed.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer is the walltime check. Its suppression token is
// "wallclock".
var Analyzer = &analysis.Analyzer{
	Name:     "walltime",
	Suppress: "wallclock",
	Doc:      "forbid wall-clock reads (time.Now, time.Since, ...) in deterministic engine packages",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	if !config.In(pass.Pkg.Path(), config.EnginePackages) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbidden[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"walltime: time.%s in deterministic package %s: sim-clock code must not read the wall clock (//fpcc:wallclock -- <why> to suppress)",
					obj.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
