// Package demo is a fixture CLI package: it is outside the engine
// allowlist, so wall-clock reads are legitimate and unflagged.
package demo

import "time"

// Uptime measures real elapsed time, as CLIs do.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}
