// Package des is a fixture recreating an engine package path, so the
// walltime contract applies to it.
package des

import "time"

// Sim is a fixture engine with a simulation clock.
type Sim struct{ t float64 }

// Step reads the wall clock three forbidden ways.
func (s *Sim) Step() {
	t0 := time.Now()                     // want `walltime: time\.Now in deterministic package fpcc/internal/des`
	s.t += time.Since(t0).Seconds()      // want `walltime: time\.Since in deterministic package`
	time.Sleep(0)                        // want `walltime: time\.Sleep in deterministic package`
	if time.Until(time.Unix(0, 0)) > 0 { // want `walltime: time\.Until in deterministic package`
		s.t = 0
	}
}

// PureValues exercises the allowed time-package surface: duration
// arithmetic and construction never touch the wall clock.
func (s *Sim) PureValues() time.Duration {
	d := 3 * time.Second
	_ = time.Unix(42, 0)
	return d
}

// Timed carries the justified suppression form: no findings.
func (s *Sim) Timed() float64 {
	start := time.Now()                //fpcc:wallclock -- fixture: bench accounting only, never enters simulation state
	return time.Since(start).Seconds() //fpcc:wallclock -- fixture: bench accounting only, never enters simulation state
}

// CoveredAbove is suppressed by a comment on the line above the call.
func (s *Sim) CoveredAbove() {
	//fpcc:wallclock -- fixture: suppression on the preceding line covers the next one
	s.t = float64(time.Now().UnixNano())
}

// Bare shows that a justification-free suppression suppresses nothing
// and is itself a finding.
func (s *Sim) Bare() {
	_ = time.Now() //fpcc:wallclock // want `suppression requires a justification` `walltime: time\.Now`
}

//fpcc:turbomode // want `unknown fpcc suppression token "turbomode"`
