package walltime_test

import (
	"testing"

	"fpcc/internal/analysis/analysistest"
	"fpcc/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer,
		"fpcc/internal/des", // engine package: findings, suppressions, malformed/unknown tokens
		"fpcc/cmd/demo",     // CLI package outside the allowlist: clean
	)
}
