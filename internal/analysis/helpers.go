package analysis

import (
	"go/ast"
	"go/types"
)

// Unparen strips parentheses from an expression. It deliberately
// does NOT strip index expressions: `m[k]` must stay an index write,
// not collapse to `m` (generic instantiation stripping lives in
// CalleeOf, the only place it belongs).
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// stripInstance removes parentheses and generic instantiation indices
// (f[T], f[T1, T2]) so callee resolution sees the underlying
// identifier or selector.
func stripInstance(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// CalleeOf resolves a call expression to the function or method
// object it invokes, or nil (builtins resolve to *types.Builtin,
// conversions to nil or a type name).
func CalleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := stripInstance(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether obj is a package-level function of the
// given package path with one of the given names.
func IsPkgFunc(obj types.Object, pkgPath string, names map[string]bool) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return names[fn.Name()]
}

// MethodOf reports whether obj is a method (pointer or value
// receiver) of the named type in the given package, returning its
// name.
func MethodOf(obj types.Object, pkgPath, typeName string) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	o := named.Obj()
	if o.Name() != typeName || o.Pkg() == nil || o.Pkg().Path() != pkgPath {
		return "", false
	}
	return fn.Name(), true
}

// ObjectOf resolves an identifier through Uses then Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// DeclaredOutside reports whether the object's declaration lies
// outside the given node's source range — i.e. the object is
// captured by a function literal spanning that range.
func DeclaredOutside(obj types.Object, n ast.Node) bool {
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	if !pos.IsValid() {
		// No syntax (package-level dot imports, universe): treat as
		// outside.
		return true
	}
	return pos < n.Pos() || pos > n.End()
}

// RootIdent returns the leftmost identifier of an expression chain
// (x, x.f, x[i], x.f[i].g, *x, ...), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// EnclosingFunc returns the innermost function declaration or
// literal in the ancestor stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
