package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file is the byte-stable emission layer: RunRows evaluates a
// sweep whose cells produce a Row of named-column values, and the
// resulting Result renders as CSV or JSON identically for any worker
// count. Floats are rendered with full round-trip precision
// (FormatFloat with precision -1), never a lossy fixed format.

// Row is one cell's output: one value per column of the sweep's
// schema, in column order. Supported kinds are float64, integers,
// strings and []float64 (rendered ';'-joined in CSV).
type Row []any

// CellRow pairs a grid cell with its output row.
type CellRow struct {
	Index  int       `json:"index"`
	Values []float64 `json:"values"`
	Seed   uint64    `json:"seed"`
	Row    Row       `json:"row"`
}

// Result holds a completed row-producing sweep in grid order.
type Result struct {
	Dims    []Dim     `json:"dims"`
	Columns []string  `json:"columns"`
	Cells   []CellRow `json:"cells"`
}

// RunRows evaluates fn over every grid cell and collects the rows
// under the given column schema. Every row must have exactly one
// value per column.
func RunRows(cfg Config, columns []string, fn func(Cell) (Row, error)) (*Result, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("sweep: no columns")
	}
	cells, err := Run(cfg, func(c Cell) (CellRow, error) {
		row, err := fn(c)
		if err != nil {
			return CellRow{}, err
		}
		if len(row) != len(columns) {
			return CellRow{}, fmt.Errorf("row has %d values, schema has %d columns", len(row), len(columns))
		}
		return CellRow{Index: c.Index, Values: c.Values, Seed: c.Seed, Row: row}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Dims: cfg.Grid.Dims, Columns: columns, Cells: cells}, nil
}

// FormatFloat renders a float with full round-trip precision, so
// machine outputs are byte-stable and lossless.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JoinFloats renders a ';'-separated full-precision float list.
func JoinFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = FormatFloat(v)
	}
	return strings.Join(parts, ";")
}

// FormatValue renders one Row value for CSV output.
func FormatValue(v any) string {
	switch x := v.(type) {
	case float64:
		return FormatFloat(x)
	case []float64:
		return JoinFloats(x)
	default:
		return fmt.Sprint(x)
	}
}

// CSVField quotes a rendered value containing separators or quotes,
// so string cells cannot corrupt the column structure.
func CSVField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// JSONValue maps one Row value to a JSON-encodable one: non-finite
// floats (NaN, ±Inf), scalar or inside a []float64, become their
// FormatFloat strings — encoding/json rejects them outright —
// and everything else passes through at full precision.
func JSONValue(v any) any {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return FormatFloat(x)
		}
	case []float64:
		for _, f := range x {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				out := make([]any, len(x))
				for i, g := range x {
					out[i] = JSONValue(g)
				}
				return out
			}
		}
	}
	return v
}

// MarshalJSON sanitizes the output row (see JSONValue) so a cell
// reporting a NaN (e.g. a settling time that never settled) cannot
// abort the whole result encoding.
func (c CellRow) MarshalJSON() ([]byte, error) {
	row := make([]any, len(c.Row))
	for i, v := range c.Row {
		row[i] = JSONValue(v)
	}
	return json.Marshal(struct {
		Index  int       `json:"index"`
		Values []float64 `json:"values"`
		Seed   uint64    `json:"seed"`
		Row    []any     `json:"row"`
	}{c.Index, c.Values, c.Seed, row})
}

// WriteCSV renders the result as CSV: a header of the cell index, the
// dimension names and the column names, then one row per cell in grid
// order.
func (r *Result) WriteCSV(w io.Writer) error {
	cols := []string{"index"}
	for _, d := range r.Dims {
		cols = append(cols, CSVField(d.Name))
	}
	for _, c := range r.Columns {
		cols = append(cols, CSVField(c))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{strconv.Itoa(c.Index)}
		for _, v := range c.Values {
			row = append(row, FormatFloat(v))
		}
		for _, v := range c.Row {
			row = append(row, CSVField(FormatValue(v)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
