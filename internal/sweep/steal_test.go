package sweep

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapStealExactlyOnce drives the work-stealing pool through a
// pathologically uneven load — the whole tail of the index space is
// slow while one worker's initial block is stuck behind a very slow
// first cell — and pins the two invariants stealing must not break:
// every item runs exactly once, and results land by index.
func TestMapStealExactlyOnce(t *testing.T) {
	const n = 64
	for _, workers := range []int{2, 4, 16} {
		calls := make([]atomic.Int32, n)
		got, err := Map(n, workers, func(i int) (int, error) {
			switch {
			case i == 0:
				time.Sleep(20 * time.Millisecond)
			case i >= n-8:
				time.Sleep(2 * time.Millisecond)
			}
			calls[i].Add(1)
			return i + 1, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range calls {
			if c := calls[i].Load(); c != 1 {
				t.Errorf("workers=%d: item %d ran %d times", workers, i, c)
			}
			if got[i] != i+1 {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], i+1)
			}
		}
	}
}

// TestMapStealSingleItemRanges forces steals of one-item ranges: with
// as many workers as items, every initial block holds exactly one
// index, so any steal transfers a whole single item. Each must still
// run exactly once.
func TestMapStealSingleItemRanges(t *testing.T) {
	const n = 8
	calls := make([]atomic.Int32, n)
	if _, err := Map(n, n, func(i int) (int, error) {
		if i == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		calls[i].Add(1)
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Errorf("item %d ran %d times", i, c)
		}
	}
}

// TestMapStealLowestFailure: with failures scattered across the index
// space and stealing reordering execution, the reported CellError must
// still be the globally lowest failing index, for any worker count.
func TestMapStealLowestFailure(t *testing.T) {
	const n = 200
	fails := map[int]bool{23: true, 24: true, 120: true, 199: true}
	for _, workers := range []int{1, 3, 7, 16} {
		_, err := Map(n, workers, func(i int) (int, error) {
			if i >= n-20 {
				time.Sleep(time.Millisecond) // slow tail → steals
			}
			if fails[i] {
				return 0, fmt.Errorf("fail %d", i)
			}
			return i, nil
		})
		ce, ok := err.(*CellError)
		if !ok {
			t.Fatalf("workers=%d: error %T is not *CellError", workers, err)
		}
		if ce.Index != 23 {
			t.Errorf("workers=%d: reported index %d, want 23", workers, ce.Index)
		}
	}
}
