// Package sweep is the engine-agnostic parameter-sweep runner: it
// evaluates an arbitrary cell function over every cell of an
// N-dimensional grid of named parameter dimensions, sharding cells
// across a bounded pool of workers.
//
// The package owns the three properties every sweep in this
// repository relies on, independent of which engine (netsim, des,
// fluid, fokkerplanck, sde, dde, markov) evaluates the cells:
//
//   - Deterministic seeding: each cell's seed is a pure function of
//     (BaseSeed, cell index) via rng.Mix, so stochastic cells
//     reproduce exactly for any worker count.
//   - Order-independent aggregation: results are stored by cell index
//     as workers finish, so the aggregate — and any CSV/JSON rendered
//     from it — is byte-identical for any worker count.
//   - Deterministic failure: a failing cell aborts the sweep early
//     (already-claimed cells finish, unclaimed ones never start), and
//     the reported error is always the lowest-indexed failure.
//
// Run is the generic entry point (any result type); RunRows adds a
// named-column result schema with byte-stable CSV and JSON emission.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fpcc/internal/obs"
	"fpcc/internal/rng"
)

// Dim is one named axis of a sweep grid.
type Dim struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Grid is an N-dimensional parameter grid: the cross product of its
// dimensions, enumerated row-major with the last dimension varying
// fastest.
type Grid struct {
	Dims []Dim
}

// Size returns the number of cells (the product of the value counts).
func (g Grid) Size() int {
	n := 1
	for _, d := range g.Dims {
		n *= len(d.Values)
	}
	return n
}

// Validate rejects degenerate grids: no dimensions, unnamed
// dimensions, or dimensions without values.
func (g Grid) Validate() error {
	if len(g.Dims) == 0 {
		return fmt.Errorf("sweep: grid has no dimensions")
	}
	for _, d := range g.Dims {
		if d.Name == "" {
			return fmt.Errorf("sweep: grid dimension with empty name")
		}
		if len(d.Values) == 0 {
			return fmt.Errorf("sweep: grid dimension %q has no values", d.Name)
		}
	}
	return nil
}

// Values decodes cell idx into one value per dimension (row-major:
// the last dimension varies fastest).
func (g Grid) Values(idx int) []float64 {
	vals := make([]float64, len(g.Dims))
	for k := len(g.Dims) - 1; k >= 0; k-- {
		n := len(g.Dims[k].Values)
		vals[k] = g.Dims[k].Values[idx%n]
		idx /= n
	}
	return vals
}

// CellSeed derives the deterministic seed of cell idx from the base
// seed: one SplitMix64 finalization along the golden-ratio sequence
// per cell, so adjacent cells get well-separated streams.
func CellSeed(base uint64, idx int) uint64 {
	return rng.Mix(base + 0x9e3779b97f4a7c15*uint64(idx))
}

// Cell is one point of the grid handed to the cell function: its
// index in grid order, the decoded dimension values, and the cell's
// deterministic seed.
type Cell struct {
	Index  int
	Values []float64
	Seed   uint64
}

// Config describes a sweep: the grid to cover, the base seed every
// cell seed derives from, and the worker bound.
type Config struct {
	Grid Grid
	// BaseSeed derives every cell seed; two sweeps with equal BaseSeed
	// and grid hand identical Cells to the cell function.
	BaseSeed uint64
	// Workers bounds the parallelism (0 means GOMAXPROCS).
	Workers int
	// Obs, when non-nil, records one "cell" span per evaluated cell,
	// attributed to the worker that ran it. It never affects results
	// — only the trace.
	Obs *obs.Recorder
}

// CellError reports the lowest-indexed failing cell of a sweep.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the cell function's error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Map evaluates fn(0..n-1) on up to workers goroutines and returns
// the results in index order. It is the worker pool under Run and
// under the experiment suite runner: items are claimed in ascending
// index order from a shared counter, results land by index, and a
// failure stops the pool early (claimed items finish, unclaimed ones
// never start). Because claiming is ascending, the lowest-indexed
// failure is always among the claimed items, so the returned
// *CellError is deterministic regardless of worker count or
// scheduling.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil function")
	}
	return MapWorker(n, workers, func(_, i int) (T, error) { return fn(i) })
}

// MapWorker is Map with the executing worker's 0-based index handed
// to fn alongside the item index — the hook for worker-attributed
// span timings (and for per-worker scratch). The worker index must
// not influence any result: scheduling varies run to run, only the
// item index is deterministic.
func MapWorker[T any](n, workers int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative item count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				results[idx], errs[idx] = fn(w, idx)
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return nil, &CellError{Index: idx, Err: err}
		}
	}
	return results, nil
}

// Run evaluates fn on every cell of the grid and returns the results
// in grid order. Cells run concurrently on up to cfg.Workers
// goroutines; the results (and any error, a *CellError for the
// lowest-indexed failing cell) are independent of the worker count.
func Run[T any](cfg Config, fn func(Cell) (T, error)) ([]T, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil cell function")
	}
	return MapWorker(cfg.Grid.Size(), cfg.Workers, func(w, idx int) (T, error) {
		sp := cfg.Obs.WorkerSpan("cell", w)
		defer sp.End()
		return fn(Cell{
			Index:  idx,
			Values: cfg.Grid.Values(idx),
			Seed:   CellSeed(cfg.BaseSeed, idx),
		})
	})
}
