// Package sweep is the engine-agnostic parameter-sweep runner: it
// evaluates an arbitrary cell function over every cell of an
// N-dimensional grid of named parameter dimensions, sharding cells
// across a bounded pool of workers.
//
// The package owns the three properties every sweep in this
// repository relies on, independent of which engine (netsim, des,
// fluid, fokkerplanck, sde, dde, markov) evaluates the cells:
//
//   - Deterministic seeding: each cell's seed is a pure function of
//     (BaseSeed, cell index) via rng.Mix, so stochastic cells
//     reproduce exactly for any worker count.
//   - Order-independent aggregation: results are stored by cell index
//     as workers finish, so the aggregate — and any CSV/JSON rendered
//     from it — is byte-identical for any worker count.
//   - Deterministic failure: a failing cell stops work on every
//     higher-indexed cell (lower-indexed ones still run), so the
//     reported error is always the globally lowest-indexed failure.
//
// Run is the generic entry point (any result type); RunRows adds a
// named-column result schema with byte-stable CSV and JSON emission.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fpcc/internal/obs"
	"fpcc/internal/rng"
)

// Dim is one named axis of a sweep grid.
type Dim struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Grid is an N-dimensional parameter grid: the cross product of its
// dimensions, enumerated row-major with the last dimension varying
// fastest.
type Grid struct {
	Dims []Dim
}

// Size returns the number of cells (the product of the value counts).
func (g Grid) Size() int {
	n := 1
	for _, d := range g.Dims {
		n *= len(d.Values)
	}
	return n
}

// Validate rejects degenerate grids: no dimensions, unnamed
// dimensions, or dimensions without values.
func (g Grid) Validate() error {
	if len(g.Dims) == 0 {
		return fmt.Errorf("sweep: grid has no dimensions")
	}
	for _, d := range g.Dims {
		if d.Name == "" {
			return fmt.Errorf("sweep: grid dimension with empty name")
		}
		if len(d.Values) == 0 {
			return fmt.Errorf("sweep: grid dimension %q has no values", d.Name)
		}
	}
	return nil
}

// Values decodes cell idx into one value per dimension (row-major:
// the last dimension varies fastest).
func (g Grid) Values(idx int) []float64 {
	vals := make([]float64, len(g.Dims))
	for k := len(g.Dims) - 1; k >= 0; k-- {
		n := len(g.Dims[k].Values)
		vals[k] = g.Dims[k].Values[idx%n]
		idx /= n
	}
	return vals
}

// CellSeed derives the deterministic seed of cell idx from the base
// seed: one SplitMix64 finalization along the golden-ratio sequence
// per cell, so adjacent cells get well-separated streams.
func CellSeed(base uint64, idx int) uint64 {
	return rng.Mix(base + 0x9e3779b97f4a7c15*uint64(idx))
}

// Cell is one point of the grid handed to the cell function: its
// index in grid order, the decoded dimension values, and the cell's
// deterministic seed.
type Cell struct {
	Index  int
	Values []float64
	Seed   uint64
}

// Config describes a sweep: the grid to cover, the base seed every
// cell seed derives from, and the worker bound.
type Config struct {
	Grid Grid
	// BaseSeed derives every cell seed; two sweeps with equal BaseSeed
	// and grid hand identical Cells to the cell function.
	BaseSeed uint64
	// Workers bounds the parallelism (0 means GOMAXPROCS).
	Workers int
	// Obs, when non-nil, records one "cell" span per evaluated cell,
	// attributed to the worker that ran it. It never affects results
	// — only the trace.
	Obs *obs.Recorder
}

// CellError reports the lowest-indexed failing cell of a sweep.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the cell function's error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Map evaluates fn(0..n-1) on up to workers goroutines and returns
// the results in index order. It is the worker pool under Run and
// under the experiment suite runner. Items are distributed by
// work-stealing over per-worker contiguous index ranges: each worker
// drains its own range front-to-back and, when empty, steals the top
// half of the largest leftover range — so uneven grids (a few slow
// cells clustered at one end) don't tail-stall behind one worker.
// Results land by index, so the output is byte-identical for any
// worker count. On failure, every index below the lowest failing one
// is still evaluated (only higher indices are skipped), so the
// returned *CellError is always the globally lowest-indexed failure,
// deterministic regardless of worker count or scheduling.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil function")
	}
	return MapWorker(n, workers, func(_, i int) (T, error) { return fn(i) })
}

// stealRange is one worker's claimable index range [next, limit),
// packed into a single CAS word (next in the high 32 bits, limit in
// the low 32) so owner pops and thief steals are each one
// compare-and-swap. The pad spaces ranges a cache line apart.
type stealRange struct {
	word atomic.Uint64
	_    [56]byte
}

func packRange(next, limit int) uint64 { return uint64(next)<<32 | uint64(limit) }

func unpackRange(w uint64) (next, limit int) { return int(w >> 32), int(w & 0xffffffff) }

// pop claims the lowest index of the range, returning ok=false when
// the range is empty.
func (r *stealRange) pop() (idx int, ok bool) {
	for {
		w := r.word.Load()
		next, limit := unpackRange(w)
		if next >= limit {
			return 0, false
		}
		if r.word.CompareAndSwap(w, packRange(next+1, limit)) {
			return next, true
		}
	}
}

// stealHalf removes the top ⌈half⌉ of the range (the victim keeps
// the bottom half, preserving its front-to-back scan) and returns it.
// The stolen range is never empty: a single remaining item is taken
// whole, so a thief can always relieve a tail-stalled victim.
func (r *stealRange) stealHalf() (next, limit int, ok bool) {
	for {
		w := r.word.Load()
		vNext, vLimit := unpackRange(w)
		avail := vLimit - vNext
		if avail <= 0 {
			return 0, 0, false
		}
		mid := vNext + avail/2
		if r.word.CompareAndSwap(w, packRange(vNext, mid)) {
			return mid, vLimit, true
		}
	}
}

// MapWorker is Map with the executing worker's 0-based index handed
// to fn alongside the item index — the hook for worker-attributed
// span timings (and for per-worker scratch). The worker index must
// not influence any result: scheduling varies run to run, only the
// item index is deterministic.
func MapWorker[T any](n, workers int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative item count %d", n)
	}
	if n > 1<<31-1 {
		return nil, fmt.Errorf("sweep: item count %d exceeds 2^31-1", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return []T{}, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	// Initial partition: contiguous blocks, sized within one of each
	// other, lower-indexed blocks to lower-indexed workers.
	ranges := make([]stealRange, workers)
	block, rem := n/workers, n%workers
	start := 0
	for w := range ranges {
		size := block
		if w < rem {
			size++
		}
		ranges[w].word.Store(packRange(start, start+size))
		start += size
	}
	// lowestFail is the lowest failing index seen so far (n = none).
	// Indices above it are skipped; indices below it always run, which
	// pins the reported failure to the globally lowest one.
	var lowestFail atomic.Int64
	lowestFail.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx, ok := ranges[w].pop()
				if !ok {
					// Own range drained: steal the top half of another
					// worker's range. Install the remainder as our own
					// range immediately (our word is empty, and empty
					// ranges are never stolen from, so a plain Store is
					// race-free).
					for off := 1; off < workers; off++ {
						v := (w + off) % workers
						if next, limit, stole := ranges[v].stealHalf(); stole {
							idx, ok = next, true
							ranges[w].word.Store(packRange(next+1, limit))
							break
						}
					}
					if !ok {
						return
					}
				}
				if int64(idx) > lowestFail.Load() {
					continue
				}
				var err error
				results[idx], err = fn(w, idx)
				if err != nil {
					errs[idx] = err
					for {
						cur := lowestFail.Load()
						if int64(idx) >= cur || lowestFail.CompareAndSwap(cur, int64(idx)) {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return nil, &CellError{Index: idx, Err: err}
		}
	}
	return results, nil
}

// Run evaluates fn on every cell of the grid and returns the results
// in grid order. Cells run concurrently on up to cfg.Workers
// goroutines; the results (and any error, a *CellError for the
// lowest-indexed failing cell) are independent of the worker count.
func Run[T any](cfg Config, fn func(Cell) (T, error)) ([]T, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil cell function")
	}
	return MapWorker(cfg.Grid.Size(), cfg.Workers, func(w, idx int) (T, error) {
		sp := cfg.Obs.WorkerSpan("cell", w)
		defer sp.End()
		return fn(Cell{
			Index:  idx,
			Values: cfg.Grid.Values(idx),
			Seed:   CellSeed(cfg.BaseSeed, idx),
		})
	})
}
