package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"fpcc/internal/rng"
)

// TestGridOrder: cells enumerate the grid row-major with the last
// dimension varying fastest, and carry stable per-cell seeds.
func TestGridOrder(t *testing.T) {
	g := Grid{Dims: []Dim{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{10, 20, 30}},
	}}
	if g.Size() != 6 {
		t.Fatalf("size = %d, want 6", g.Size())
	}
	want := [][2]float64{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	for idx, w := range want {
		got := g.Values(idx)
		if got[0] != w[0] || got[1] != w[1] {
			t.Errorf("cell %d values = %v, want %v", idx, got, w)
		}
	}
	if CellSeed(1, 0) == CellSeed(1, 1) {
		t.Error("adjacent cells share a seed")
	}
	if CellSeed(1, 0) == CellSeed(2, 0) {
		t.Error("different base seeds give the same cell seed")
	}
	if CellSeed(1, 5) != CellSeed(1, 5) {
		t.Error("cell seed is not a pure function")
	}
}

func TestGridValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    Grid
	}{
		{"empty", Grid{}},
		{"unnamed", Grid{Dims: []Dim{{Name: "", Values: []float64{1}}}}},
		{"no values", Grid{Dims: []Dim{{Name: "x"}}}},
	} {
		if err := tc.g.Validate(); err == nil {
			t.Errorf("%s grid accepted", tc.name)
		}
	}
	ok := Grid{Dims: []Dim{{Name: "x", Values: []float64{1}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

// TestMapOrderAndParallelism: Map returns results in index order for
// any worker count and actually runs the function once per item.
func TestMapOrderAndParallelism(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var calls atomic.Int64
		got, err := Map(100, workers, func(i int) (int, error) {
			calls.Add(1)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 100 {
			t.Errorf("workers=%d: %d calls, want 100", workers, calls.Load())
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if _, err := Map[int](5, 1, nil); err == nil {
		t.Error("nil function accepted")
	}
	if _, err := Map(-1, 1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative count accepted")
	}
	empty, err := Map(0, 4, func(int) (int, error) { return 0, nil })
	if err != nil || len(empty) != 0 {
		t.Errorf("empty map: %v, %v", empty, err)
	}
}

// TestMapLowestIndexedError: regardless of worker count, the reported
// failure is the lowest-indexed failing item, wrapped as *CellError,
// and the pool aborts early (unclaimed items never start).
func TestMapLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4, 8} {
		var calls atomic.Int64
		_, err := Map(1000, workers, func(i int) (int, error) {
			calls.Add(1)
			if i >= 17 {
				return 0, fmt.Errorf("item %d: %w", i, boom)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: failing map returned nil error", workers)
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error %T is not *CellError", workers, err)
		}
		if ce.Index != 17 {
			t.Errorf("workers=%d: reported index %d, want 17", workers, ce.Index)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: cause not unwrapped", workers)
		}
		if calls.Load() >= 1000 {
			t.Errorf("workers=%d: no early abort (%d calls)", workers, calls.Load())
		}
	}
}

// syntheticConfig is a 60-cell stochastic sweep with no engine
// dependency: each cell draws from its cell seed, so determinism
// across worker counts exercises the seeding contract.
func syntheticConfig(workers int) Config {
	return Config{
		Grid: Grid{Dims: []Dim{
			{Name: "x", Values: []float64{0.5, 1, 2, 4, 8}},
			{Name: "y", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		}},
		BaseSeed: 42,
		Workers:  workers,
	}
}

func syntheticRow(c Cell) (Row, error) {
	r := rng.New(c.Seed)
	sum := 0.0
	for i := 0; i < 100; i++ {
		sum += r.Exp(c.Values[0]) * c.Values[1]
	}
	return Row{sum, int64(c.Index % 7), fmt.Sprintf("cell%d", c.Index), []float64{sum / 2, math.Sqrt(sum)}}, nil
}

// TestRunRowsDeterministicAcrossWorkers is the package's acceptance
// criterion: CSV and JSON renderings of a stochastic sweep must be
// byte-identical for 1 worker and many workers.
func TestRunRowsDeterministicAcrossWorkers(t *testing.T) {
	cols := []string{"sum", "mod", "label", "vec"}
	render := func(workers int) (string, string) {
		res, err := RunRows(syntheticConfig(workers), cols, syntheticRow)
		if err != nil {
			t.Fatal(err)
		}
		var cb, jb bytes.Buffer
		if err := res.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		return cb.String(), jb.String()
	}
	sc, sj := render(1)
	for _, workers := range []int{8, runtime.GOMAXPROCS(0)} {
		pc, pj := render(workers)
		if sc != pc {
			t.Errorf("CSV differs between 1 worker and %d workers", workers)
		}
		if sj != pj {
			t.Errorf("JSON differs between 1 worker and %d workers", workers)
		}
	}
	lines := strings.Split(strings.TrimRight(sc, "\n"), "\n")
	if len(lines) != 61 {
		t.Fatalf("CSV has %d lines, want 61", len(lines))
	}
	if want := "index,x,y,sum,mod,label,vec"; lines[0] != want {
		t.Errorf("CSV header = %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], "cell0") || !strings.Contains(lines[1], ";") {
		t.Errorf("CSV row malformed: %q", lines[1])
	}
}

// TestRunRowsSchemaMismatch: a row with the wrong arity is an error
// naming the offending cell.
func TestRunRowsSchemaMismatch(t *testing.T) {
	cfg := syntheticConfig(4)
	_, err := RunRows(cfg, []string{"a", "b"}, func(c Cell) (Row, error) {
		return Row{1.0}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("schema mismatch not reported: %v", err)
	}
	if _, err := RunRows(cfg, nil, syntheticRow); err == nil {
		t.Fatal("empty schema accepted")
	}
}

// TestFormatValue: full precision floats, ';'-joined vectors,
// pass-through for the rest.
func TestFormatValue(t *testing.T) {
	if got := FormatValue(1.0 / 3.0); got != "0.3333333333333333" {
		t.Errorf("FormatValue(1/3) = %q", got)
	}
	if got := FormatValue([]float64{1.5, 2.25}); got != "1.5;2.25" {
		t.Errorf("vector format = %q", got)
	}
	if got := FormatValue(int64(42)); got != "42" {
		t.Errorf("int format = %q", got)
	}
	if got := FormatValue("x"); got != "x" {
		t.Errorf("string format = %q", got)
	}
	if got := FormatFloat(math.NaN()); got != "NaN" {
		t.Errorf("NaN format = %q", got)
	}
}

// TestEmitHazards: string cells with separators are CSV-quoted, and
// non-finite floats (scalar or inside vectors) survive JSON encoding
// as strings instead of aborting it.
func TestEmitHazards(t *testing.T) {
	cfg := Config{Grid: Grid{Dims: []Dim{{Name: "x", Values: []float64{1}}}}}
	res, err := RunRows(cfg, []string{"s", "nan", "vec"}, func(c Cell) (Row, error) {
		return Row{`a,"b`, math.NaN(), []float64{1.5, math.Inf(1)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := res.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if want := `0,1,"a,""b",NaN,1.5;+Inf`; lines[1] != want {
		t.Errorf("CSV row = %q, want %q", lines[1], want)
	}
	if err := res.WriteJSON(&jb); err != nil {
		t.Fatalf("JSON with non-finite values failed: %v", err)
	}
	for _, want := range []string{`"NaN"`, `"+Inf"`, `"a,\"b"`, "1.5"} {
		if !strings.Contains(jb.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, jb.String())
		}
	}
}

// TestRunValidation: Run surfaces grid validation and nil-function
// errors.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, func(Cell) (int, error) { return 0, nil }); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Run[int](syntheticConfig(1), nil); err == nil {
		t.Error("nil cell function accepted")
	}
}
