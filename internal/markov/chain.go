// Package markov provides exact transient and stationary analysis of
// finite continuous-time Markov chains (CTMCs) by uniformization.
//
// The package exists as an independent ground truth for the paper's
// Fokker-Planck approximation (Eq. 14): the packet-level system —
// Poisson arrivals at a controller-adjusted rate into an exponential
// server — is a Markov chain, and for a *discretized* controller state
// it is a finite one whose transient law can be computed to any
// accuracy. Comparing the CTMC marginals with the Fokker-Planck
// moments quantifies how much of the gap between the PDE and the
// packet simulator is diffusion-approximation error rather than
// Monte-Carlo noise.
//
// Three layers:
//
//   - Chain: a general sparse CTMC with the uniformization transient
//     p(t) = Σₖ e^{−Λt}(Λt)ᵏ/k! · p(0)·Pᵏ, P = I + Q/Λ.
//   - BirthDeath: one-dimensional birth-death chains (M/M/1/K and
//     state-dependent variants) with product-form stationary laws.
//   - ControlledQueue: the two-dimensional chain on (queue length,
//     discretized sending rate) induced by a rate-control law g — the
//     exact finite-state analogue of the joint density f(t, q, v).
package markov

import (
	"fmt"
	"math"
)

// rateEntry is one off-diagonal transition i → j.
type rateEntry struct {
	to   int
	rate float64
}

// Chain is a finite-state CTMC held as a sparse list of transition
// rates. States are indexed 0..n-1. The zero value is not usable;
// construct with NewChain.
type Chain struct {
	n    int
	rows [][]rateEntry // rows[i] = transitions out of state i
	out  []float64     // total outflow rate per state
}

// NewChain returns an empty chain on n states.
func NewChain(n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: chain needs at least one state, got %d", n)
	}
	return &Chain{n: n, rows: make([][]rateEntry, n), out: make([]float64, n)}, nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.n }

// AddRate adds a transition i → j with the given rate. Rates
// accumulate if called twice for the same pair. Self-loops and
// non-positive rates are rejected.
func (c *Chain) AddRate(i, j int, rate float64) error {
	switch {
	case i < 0 || i >= c.n || j < 0 || j >= c.n:
		return fmt.Errorf("markov: transition %d→%d out of range [0,%d)", i, j, c.n)
	case i == j:
		return fmt.Errorf("markov: self-loop on state %d", i)
	case !(rate > 0) || math.IsInf(rate, 1) || math.IsNaN(rate):
		return fmt.Errorf("markov: transition %d→%d has invalid rate %v", i, j, rate)
	}
	c.rows[i] = append(c.rows[i], rateEntry{to: j, rate: rate})
	c.out[i] += rate
	return nil
}

// MaxOutflow returns the largest total outflow rate over all states —
// the uniformization constant Λ must be at least this.
func (c *Chain) MaxOutflow() float64 {
	var m float64
	for _, o := range c.out {
		if o > m {
			m = o
		}
	}
	return m
}

// stepP advances a distribution one step of the uniformized DTMC
// P = I + Q/Λ: dst = src · P. dst and src must be distinct slices of
// length n.
func (c *Chain) stepP(dst, src []float64, lambda float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i, p := range src {
		if p == 0 {
			continue
		}
		dst[i] += p * (1 - c.out[i]/lambda)
		for _, e := range c.rows[i] {
			dst[e.to] += p * e.rate / lambda
		}
	}
}

// maxMatvecs caps the number of uniformization steps; beyond this the
// transient is indistinguishable from stationary at any reasonable
// tolerance and the caller should use StationaryPower instead.
const maxMatvecs = 2_000_000

// Transient returns the distribution at time t ≥ 0 starting from p0,
// computed by uniformization with truncation error below tol in total
// variation. p0 must be a probability vector of length N().
func (c *Chain) Transient(p0 []float64, t, tol float64) ([]float64, error) {
	if err := checkDist(p0, c.n); err != nil {
		return nil, err
	}
	switch {
	case math.IsNaN(t) || t < 0:
		return nil, fmt.Errorf("markov: negative time %v", t)
	case !(tol > 0) || tol >= 1:
		return nil, fmt.Errorf("markov: tolerance must be in (0,1), got %v", tol)
	}
	out := make([]float64, c.n)
	copy(out, p0)
	if t == 0 || c.MaxOutflow() == 0 {
		return out, nil
	}
	// Λ slightly above the max outflow keeps 1 − out/Λ strictly
	// positive, which makes P aperiodic and the scheme more robust.
	lambda := c.MaxOutflow() * 1.0000001
	lt := lambda * t
	kMax, err := poissonTruncation(lt, tol)
	if err != nil {
		return nil, err
	}
	if kMax > maxMatvecs {
		return nil, fmt.Errorf("markov: uniformization needs %d > %d matrix-vector products (Λt = %.3g); use StationaryPower or a coarser model", kMax, maxMatvecs, lt)
	}
	// Poisson weights by the stable central recurrence: compute
	// log w_k and exponentiate, so large Λt cannot underflow the
	// whole sum.
	acc := make([]float64, c.n)
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	copy(cur, p0)
	logW := -lt // log w_0
	for k := 0; ; k++ {
		if w := math.Exp(logW); w > 0 {
			for i := range acc {
				acc[i] += w * cur[i]
			}
		}
		if k == kMax {
			break
		}
		c.stepP(next, cur, lambda)
		cur, next = next, cur
		logW += math.Log(lt / float64(k+1))
	}
	// The truncated sum deliberately misses ≤ tol of the Poisson
	// mass; renormalize so the result is exactly a distribution.
	var sum float64
	for _, p := range acc {
		sum += p
	}
	if !(sum > 0) {
		return nil, fmt.Errorf("markov: uniformization lost all mass (Λt = %.3g); increase tol", lt)
	}
	for i := range acc {
		acc[i] /= sum
	}
	return acc, nil
}

// TransientSeries evaluates the transient distribution at each of the
// strictly increasing times ts, reusing the previous point as the
// start of the next interval (the Markov property makes this exact).
func (c *Chain) TransientSeries(p0 []float64, ts []float64, tol float64) ([][]float64, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("markov: no time points")
	}
	prevT := 0.0
	prev := p0
	out := make([][]float64, 0, len(ts))
	for i, t := range ts {
		if t < prevT {
			return nil, fmt.Errorf("markov: time points must be non-decreasing from 0; ts[%d] = %v after %v", i, t, prevT)
		}
		p, err := c.Transient(prev, t-prevT, tol)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		prev, prevT = p, t
	}
	return out, nil
}

// StationaryPower iterates the uniformized DTMC until the total-
// variation change per step falls below tol, returning the stationary
// distribution. The chain must be irreducible (or at least have a
// single closed communicating class reachable from p0's support — a
// uniform start is used here).
func (c *Chain) StationaryPower(tol float64, maxIter int) ([]float64, error) {
	if !(tol > 0) || tol >= 1 {
		return nil, fmt.Errorf("markov: tolerance must be in (0,1), got %v", tol)
	}
	if maxIter <= 0 {
		return nil, fmt.Errorf("markov: maxIter must be positive, got %d", maxIter)
	}
	if c.MaxOutflow() == 0 {
		return nil, fmt.Errorf("markov: chain has no transitions")
	}
	lambda := c.MaxOutflow() * 1.0000001
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	for i := range cur {
		cur[i] = 1 / float64(c.n)
	}
	for it := 0; it < maxIter; it++ {
		c.stepP(next, cur, lambda)
		var dist float64
		for i := range next {
			dist += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if dist/2 < tol {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not reach tol %v in %d steps", tol, maxIter)
}

// poissonTruncation returns the smallest K with
// P[Poisson(m) > K] ≤ tol, by the stable central recurrence.
func poissonTruncation(m, tol float64) (int, error) {
	if m <= 0 {
		return 0, nil
	}
	if m > 1e12 {
		return 0, fmt.Errorf("markov: Λt = %.3g too large to uniformize", m)
	}
	// Start from a Chernoff-style upper bound and refine by summing
	// the pmf in log space from the mode outward.
	mode := math.Floor(m)
	logPMode := -m + mode*math.Log(m) - lgamma(mode+1)
	// Sum right tail from the mode until the remaining mass must be
	// below tol. Also accumulate the left side once for the total.
	var mass float64
	logP := logPMode
	k := mode
	for {
		mass += math.Exp(logP)
		// Left-of-mode mass: add it lazily by symmetry of need — we
		// only need "cumulative ≥ 1 − tol", so account for it exactly:
		if k == mode {
			lp := logPMode
			for j := mode; j > 0; j-- {
				lp += math.Log(float64(j) / m)
				mass += math.Exp(lp)
				if lp < math.Log(tol)-40 {
					break
				}
			}
		}
		if mass >= 1-tol {
			return int(k), nil
		}
		k++
		logP += math.Log(m / k)
		if k > m+40*math.Sqrt(m)+100 {
			// Numerical safety net: the tail is certainly below tol
			// here for any tol ≥ 1e-14.
			return int(k), nil
		}
	}
}

// lgamma wraps math.Lgamma discarding the sign (arguments here are
// positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// checkDist validates a probability vector.
func checkDist(p []float64, n int) error {
	if len(p) != n {
		return fmt.Errorf("markov: distribution has length %d, want %d", len(p), n)
	}
	var sum float64
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("markov: p[%d] = %v is not a probability", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("markov: distribution sums to %v, want 1", sum)
	}
	return nil
}

// MeanVar returns the mean and variance of a distribution over states
// mapped through the value function vals (vals[i] is the numeric value
// of state i).
func MeanVar(p, vals []float64) (mean, variance float64, err error) {
	if len(p) != len(vals) {
		return 0, 0, fmt.Errorf("markov: %d probabilities but %d values", len(p), len(vals))
	}
	for i, pi := range p {
		mean += pi * vals[i]
	}
	for i, pi := range p {
		d := vals[i] - mean
		variance += pi * d * d
	}
	return mean, variance, nil
}
