package markov

import (
	"testing"

	"fpcc/internal/control"
)

// benchChain builds a moderately sized controlled-queue chain once
// per benchmark.
func benchChain(b *testing.B) (*ControlledQueue, []float64) {
	b.Helper()
	law, err := control.NewAIMD(2, 0.8, 8)
	if err != nil {
		b.Fatal(err)
	}
	cq, err := NewControlledQueue(law, 10, 40, 0, 20, 41)
	if err != nil {
		b.Fatal(err)
	}
	p0, err := cq.InitialPoint(0, 4)
	if err != nil {
		b.Fatal(err)
	}
	return cq, p0
}

// BenchmarkUniformizationTransient times one transient solve of the
// 1681-state controlled queue to t = 5 (the E17 workload unit).
func BenchmarkUniformizationTransient(b *testing.B) {
	cq, p0 := benchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cq.Transient(p0, 5, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStationaryPower times the power-iteration stationary solve
// of an M/M/1/200 chain.
func BenchmarkStationaryPower(b *testing.B) {
	bd, err := NewMM1K(9, 10, 200)
	if err != nil {
		b.Fatal(err)
	}
	c, err := bd.Chain()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.StationaryPower(1e-10, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
