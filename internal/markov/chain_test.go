package markov

import (
	"math"
	"testing"
	"testing/quick"
)

// twoState builds the standard two-state chain 0⇄1 with rates a (0→1)
// and b (1→0); its transient law is known in closed form.
func twoState(t *testing.T, a, b float64) *Chain {
	t.Helper()
	c, err := NewChain(2)
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	if err := c.AddRate(0, 1, a); err != nil {
		t.Fatalf("AddRate: %v", err)
	}
	if err := c.AddRate(1, 0, b); err != nil {
		t.Fatalf("AddRate: %v", err)
	}
	return c
}

func TestNewChainRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := NewChain(n); err == nil {
			t.Errorf("NewChain(%d): want error", n)
		}
	}
}

func TestAddRateValidation(t *testing.T) {
	c, err := NewChain(3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		i, j int
		r    float64
	}{
		{-1, 0, 1}, {0, 3, 1}, {1, 1, 1}, {0, 1, 0}, {0, 1, -2},
		{0, 1, math.Inf(1)}, {0, 1, math.NaN()},
	}
	for _, tc := range cases {
		if err := c.AddRate(tc.i, tc.j, tc.r); err == nil {
			t.Errorf("AddRate(%d,%d,%v): want error", tc.i, tc.j, tc.r)
		}
	}
}

func TestTransientTwoStateClosedForm(t *testing.T) {
	// p1(t) = π1 + (p1(0) − π1)·e^{−(a+b)t}, π1 = a/(a+b).
	a, b := 3.0, 1.5
	c := twoState(t, a, b)
	pi1 := a / (a + b)
	for _, tt := range []float64{0, 0.01, 0.1, 0.5, 1, 5, 20} {
		p, err := c.Transient([]float64{1, 0}, tt, 1e-12)
		if err != nil {
			t.Fatalf("Transient(t=%v): %v", tt, err)
		}
		want := pi1 + (0-pi1)*math.Exp(-(a+b)*tt)
		if math.Abs(p[1]-want) > 1e-9 {
			t.Errorf("t=%v: p1 = %.12f, want %.12f", tt, p[1], want)
		}
	}
}

func TestTransientPureBirthIsPoisson(t *testing.T) {
	// A pure birth chain at rate λ started at 0 is a Poisson counting
	// process: p_k(t) = e^{−λt}(λt)^k/k! (with the last state
	// absorbing the tail). This exercises the uniformization weights
	// directly against the Poisson pmf.
	const lam, tt = 4.0, 2.5
	n := 60
	c, err := NewChain(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if err := c.AddRate(i, i+1, lam); err != nil {
			t.Fatal(err)
		}
	}
	p0 := make([]float64, n)
	p0[0] = 1
	p, err := c.Transient(p0, tt, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	m := lam * tt
	logP := -m
	for k := 0; k < 30; k++ {
		want := math.Exp(logP)
		if math.Abs(p[k]-want) > 1e-9 {
			t.Errorf("k=%d: p = %.12f, want Poisson %.12f", k, p[k], want)
		}
		logP += math.Log(m / float64(k+1))
	}
}

func TestTransientConservesMass(t *testing.T) {
	c := twoState(t, 0.7, 0.2)
	p, err := c.Transient([]float64{0.25, 0.75}, 3.7, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mass = %.15f, want 1", sum)
	}
}

func TestTransientZeroTimeIsIdentity(t *testing.T) {
	c := twoState(t, 1, 1)
	p0 := []float64{0.3, 0.7}
	p, err := c.Transient(p0, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != p0[i] {
			t.Errorf("p[%d] = %v, want %v", i, p[i], p0[i])
		}
	}
}

func TestTransientLargeLambdaT(t *testing.T) {
	// Λt = 2000·5 = 10⁴ exercises the log-space Poisson weights: naive
	// e^{−Λt} underflows at Λt ≳ 745.
	c := twoState(t, 2000, 1000)
	p, err := c.Transient([]float64{1, 0}, 5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	want := 2000.0 / 3000.0
	if math.Abs(p[1]-want) > 1e-8 {
		t.Errorf("p1 = %.10f, want stationary %.10f", p[1], want)
	}
}

func TestTransientInvalidInputs(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.Transient([]float64{1}, 1, 1e-9); err == nil {
		t.Error("short distribution: want error")
	}
	if _, err := c.Transient([]float64{0.5, 0.4}, 1, 1e-9); err == nil {
		t.Error("non-normalized distribution: want error")
	}
	if _, err := c.Transient([]float64{1, 0}, -1, 1e-9); err == nil {
		t.Error("negative time: want error")
	}
	if _, err := c.Transient([]float64{1, 0}, 1, 0); err == nil {
		t.Error("zero tolerance: want error")
	}
	if _, err := c.Transient([]float64{1, 0}, 1, 1.5); err == nil {
		t.Error("tolerance above 1: want error")
	}
	if _, err := c.Transient([]float64{-0.5, 1.5}, 1, 1e-9); err == nil {
		t.Error("negative probability: want error")
	}
}

func TestTransientSeriesMatchesDirect(t *testing.T) {
	c := twoState(t, 2, 0.5)
	p0 := []float64{1, 0}
	ts := []float64{0.2, 0.7, 1.9}
	series, err := c.TransientSeries(p0, ts, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		direct, err := c.Transient(p0, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		for j := range direct {
			if math.Abs(series[i][j]-direct[j]) > 1e-9 {
				t.Errorf("t=%v state %d: series %.12f vs direct %.12f", tt, j, series[i][j], direct[j])
			}
		}
	}
}

func TestTransientSeriesRejectsDecreasingTimes(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.TransientSeries([]float64{1, 0}, []float64{1, 0.5}, 1e-9); err == nil {
		t.Error("decreasing times: want error")
	}
	if _, err := c.TransientSeries([]float64{1, 0}, nil, 1e-9); err == nil {
		t.Error("empty times: want error")
	}
}

func TestStationaryPowerMatchesBalance(t *testing.T) {
	c := twoState(t, 3, 1)
	pi, err := c.StationaryPower(1e-12, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[1]-0.75) > 1e-8 {
		t.Errorf("π1 = %.10f, want 0.75", pi[1])
	}
}

func TestStationaryPowerErrors(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.StationaryPower(0, 10); err == nil {
		t.Error("zero tol: want error")
	}
	if _, err := c.StationaryPower(1e-9, 0); err == nil {
		t.Error("zero maxIter: want error")
	}
	empty, _ := NewChain(2)
	if _, err := empty.StationaryPower(1e-9, 10); err == nil {
		t.Error("no transitions: want error")
	}
}

// Property: for random irreducible 3-state chains, the transient law
// at a random time is a valid distribution and converges to the power-
// iteration stationary law for large t.
func TestTransientPropertyRandomChains(t *testing.T) {
	f := func(r01, r10, r12, r21, r02, r20 uint8, tRaw uint8) bool {
		// Map to rates in (0.1, 25.7) and time in (0, 5.1].
		rate := func(u uint8) float64 { return 0.1 + float64(u)/10 }
		c, err := NewChain(3)
		if err != nil {
			return false
		}
		for _, e := range []struct {
			i, j int
			r    float64
		}{
			{0, 1, rate(r01)}, {1, 0, rate(r10)}, {1, 2, rate(r12)},
			{2, 1, rate(r21)}, {0, 2, rate(r02)}, {2, 0, rate(r20)},
		} {
			if err := c.AddRate(e.i, e.j, e.r); err != nil {
				return false
			}
		}
		tt := 0.02 * (float64(tRaw) + 1)
		p, err := c.Transient([]float64{1, 0, 0}, tt, 1e-10)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range p {
			if v < -1e-15 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Long-run limit agrees with the stationary law.
		pLong, err := c.Transient([]float64{1, 0, 0}, 2000, 1e-10)
		if err != nil {
			return false
		}
		pi, err := c.StationaryPower(1e-12, 2_000_000)
		if err != nil {
			return false
		}
		for i := range pi {
			if math.Abs(pLong[i]-pi[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPoissonTruncationCoversMass(t *testing.T) {
	for _, m := range []float64{0.1, 1, 10, 100, 5000} {
		k, err := poissonTruncation(m, 1e-10)
		if err != nil {
			t.Fatalf("m=%v: %v", m, err)
		}
		// Sum the pmf up to k in log space and check coverage.
		var mass float64
		logP := -m
		for j := 0; j <= k; j++ {
			mass += math.Exp(logP)
			logP += math.Log(m / float64(j+1))
		}
		if mass < 1-1e-9 {
			t.Errorf("m=%v: truncation at %d covers only %.12f", m, k, mass)
		}
	}
}

func TestPoissonTruncationRejectsHugeM(t *testing.T) {
	if _, err := poissonTruncation(1e13, 1e-9); err == nil {
		t.Error("want error for enormous Λt")
	}
}

func TestMeanVar(t *testing.T) {
	mean, v, err := MeanVar([]float64{0.5, 0.5}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1) > 1e-15 || math.Abs(v-1) > 1e-15 {
		t.Errorf("mean=%v var=%v, want 1, 1", mean, v)
	}
	if _, _, err := MeanVar([]float64{1}, []float64{0, 1}); err == nil {
		t.Error("length mismatch: want error")
	}
}
