package markov

import (
	"math"
	"testing"

	"fpcc/internal/control"
)

func testLaw(t *testing.T) control.AIMD {
	t.Helper()
	law, err := control.NewAIMD(2, 0.8, 10)
	if err != nil {
		t.Fatal(err)
	}
	return law
}

func TestNewControlledQueueValidation(t *testing.T) {
	law := testLaw(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"nil law", func() error {
			_, err := NewControlledQueue(nil, 5, 20, 0, 10, 11)
			return err
		}},
		{"bad mu", func() error {
			_, err := NewControlledQueue(law, 0, 20, 0, 10, 11)
			return err
		}},
		{"bad qmax", func() error {
			_, err := NewControlledQueue(law, 5, 0, 0, 10, 11)
			return err
		}},
		{"one rate level", func() error {
			_, err := NewControlledQueue(law, 5, 20, 0, 10, 1)
			return err
		}},
		{"inverted range", func() error {
			_, err := NewControlledQueue(law, 5, 20, 10, 5, 11)
			return err
		}},
		{"negative min", func() error {
			_, err := NewControlledQueue(law, 5, 20, -1, 5, 11)
			return err
		}},
	}
	for _, tc := range cases {
		if tc.fn() == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestControlledQueueIndexing(t *testing.T) {
	cq, err := NewControlledQueue(testLaw(t), 5, 7, 0, 12, 13)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cq.NStates(), 8*13; got != want {
		t.Fatalf("NStates = %d, want %d", got, want)
	}
	seen := make(map[int]bool)
	for q := 0; q <= 7; q++ {
		for l := 0; l < 13; l++ {
			i := cq.Index(q, l)
			if i < 0 || i >= cq.NStates() || seen[i] {
				t.Fatalf("Index(%d,%d) = %d invalid or duplicate", q, l, i)
			}
			seen[i] = true
		}
	}
	if r := cq.Rate(0); r != 0 {
		t.Errorf("Rate(0) = %v, want 0", r)
	}
	if r := cq.Rate(12); math.Abs(r-12) > 1e-12 {
		t.Errorf("Rate(12) = %v, want 12", r)
	}
	if l := cq.RateLevel(-3); l != 0 {
		t.Errorf("RateLevel(-3) = %d, want clamp to 0", l)
	}
	if l := cq.RateLevel(99); l != 12 {
		t.Errorf("RateLevel(99) = %d, want clamp to 12", l)
	}
	if l := cq.RateLevel(5.4); l != 5 {
		t.Errorf("RateLevel(5.4) = %d, want 5", l)
	}
}

func TestControlledQueueMassConservation(t *testing.T) {
	cq, err := NewControlledQueue(testLaw(t), 10, 30, 0, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := cq.InitialPoint(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cq.Transient(p0, 3, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass = %.12f, want 1", sum)
	}
	mq, err := cq.MarginalQ(p)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := cq.MarginalRate(p)
	if err != nil {
		t.Fatal(err)
	}
	sumQ, sumL := 0.0, 0.0
	for _, v := range mq {
		sumQ += v
	}
	for _, v := range ml {
		sumL += v
	}
	if math.Abs(sumQ-1) > 1e-9 || math.Abs(sumL-1) > 1e-9 {
		t.Errorf("marginal masses %v / %v, want 1", sumQ, sumL)
	}
}

func TestControlledQueueConvergesNearTarget(t *testing.T) {
	// The AIMD-controlled chain's long-run mean rate must sit near the
	// service rate μ and the mean queue near q̂ — Theorem 1's limit
	// point, but obtained from the exact Markov model rather than the
	// σ=0 characteristics. Tolerances are loose: the chain hovers
	// around the target under genuine birth-death noise.
	law, err := control.NewAIMD(2, 0.8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const mu = 10.0
	cq, err := NewControlledQueue(law, mu, 40, 0, 20, 41)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := cq.InitialPoint(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cq.Transient(p0, 200, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	mQ, _, err := cq.QueueMoments(p)
	if err != nil {
		t.Fatal(err)
	}
	mL, _, err := cq.RateMoments(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mL-mu) > 0.15*mu {
		t.Errorf("mean rate %v far from μ = %v", mL, mu)
	}
	if math.Abs(mQ-8) > 5 {
		t.Errorf("mean queue %v far from q̂ = 8", mQ)
	}
}

func TestControlledQueueInitialPointErrors(t *testing.T) {
	cq, err := NewControlledQueue(testLaw(t), 5, 10, 0, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cq.InitialPoint(-1, 5); err == nil {
		t.Error("negative queue: want error")
	}
	if _, err := cq.InitialPoint(11, 5); err == nil {
		t.Error("queue beyond capacity: want error")
	}
}

func TestControlledQueueMarginalLengthChecks(t *testing.T) {
	cq, err := NewControlledQueue(testLaw(t), 5, 10, 0, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cq.MarginalQ(make([]float64, 3)); err == nil {
		t.Error("MarginalQ length: want error")
	}
	if _, err := cq.MarginalRate(make([]float64, 3)); err == nil {
		t.Error("MarginalRate length: want error")
	}
	if _, _, err := cq.QueueMoments(make([]float64, 3)); err == nil {
		t.Error("QueueMoments length: want error")
	}
	if _, _, err := cq.RateMoments(make([]float64, 3)); err == nil {
		t.Error("RateMoments length: want error")
	}
}

func TestControlledQueueRateDriftDirection(t *testing.T) {
	// With the queue pinned low (capacity 1 ⇒ queue ∈ {0,1} stays
	// mostly below q̂ = 50) the AIMD chain should push the rate up over
	// a short horizon.
	law, err := control.NewAIMD(2, 0.8, 50)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := NewControlledQueue(law, 100, 1, 0, 10, 21)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := cq.InitialPoint(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cq.Transient(p0, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	mL, _, err := cq.RateMoments(p)
	if err != nil {
		t.Fatal(err)
	}
	// dλ/dt = C0 = 2 for 2 seconds from λ0 = 2 → ≈ 6.
	if mL < 4 || mL > 8 {
		t.Errorf("mean rate after probe = %v, want ≈ 6", mL)
	}
}
