package markov

import (
	"fmt"
	"math"
)

// BirthDeath is a finite birth-death chain on states 0..N-1: state i
// moves up at rate Birth[i] (i < N−1) and down at rate Death[i]
// (i > 0). It is the exact model of a single queue with state-
// dependent Poisson arrivals and exponential service — the finite-
// state ground truth that both the M/M/1 formulas and the Fokker-
// Planck q-marginal approximate.
type BirthDeath struct {
	Birth []float64 // Birth[i]: rate i → i+1; Birth[N-1] ignored
	Death []float64 // Death[i]: rate i → i−1; Death[0] ignored
}

// NewMM1K returns the birth-death chain of an M/M/1/K queue: arrivals
// at rate lambda while fewer than k customers are present, service at
// rate mu. The chain has k+1 states (0..k customers).
func NewMM1K(lambda, mu float64, k int) (*BirthDeath, error) {
	switch {
	case !(lambda > 0) || math.IsInf(lambda, 1):
		return nil, fmt.Errorf("markov: arrival rate must be positive, got %v", lambda)
	case !(mu > 0) || math.IsInf(mu, 1):
		return nil, fmt.Errorf("markov: service rate must be positive, got %v", mu)
	case k < 1:
		return nil, fmt.Errorf("markov: capacity must be at least 1, got %d", k)
	}
	n := k + 1
	bd := &BirthDeath{Birth: make([]float64, n), Death: make([]float64, n)}
	for i := 0; i < n; i++ {
		if i < k {
			bd.Birth[i] = lambda
		}
		if i > 0 {
			bd.Death[i] = mu
		}
	}
	return bd, nil
}

// NewStateDependent builds a birth-death chain with rates given by
// functions of the state (birth(n−1) is ignored, death(0) is ignored).
// Negative returned rates are treated as zero.
func NewStateDependent(n int, birth, death func(i int) float64) (*BirthDeath, error) {
	if n < 2 {
		return nil, fmt.Errorf("markov: need at least 2 states, got %d", n)
	}
	if birth == nil || death == nil {
		return nil, fmt.Errorf("markov: nil rate function")
	}
	bd := &BirthDeath{Birth: make([]float64, n), Death: make([]float64, n)}
	for i := 0; i < n; i++ {
		if i < n-1 {
			if r := birth(i); r > 0 {
				bd.Birth[i] = r
			}
		}
		if i > 0 {
			if r := death(i); r > 0 {
				bd.Death[i] = r
			}
		}
	}
	return bd, nil
}

// N returns the number of states.
func (bd *BirthDeath) N() int { return len(bd.Birth) }

// Validate checks internal consistency.
func (bd *BirthDeath) Validate() error {
	if len(bd.Birth) != len(bd.Death) {
		return fmt.Errorf("markov: birth/death length mismatch %d vs %d", len(bd.Birth), len(bd.Death))
	}
	if len(bd.Birth) < 2 {
		return fmt.Errorf("markov: need at least 2 states")
	}
	for i := range bd.Birth {
		if bd.Birth[i] < 0 || math.IsNaN(bd.Birth[i]) || math.IsInf(bd.Birth[i], 1) {
			return fmt.Errorf("markov: invalid birth rate %v at state %d", bd.Birth[i], i)
		}
		if bd.Death[i] < 0 || math.IsNaN(bd.Death[i]) || math.IsInf(bd.Death[i], 1) {
			return fmt.Errorf("markov: invalid death rate %v at state %d", bd.Death[i], i)
		}
	}
	return nil
}

// Chain converts the birth-death chain to a general sparse CTMC.
func (bd *BirthDeath) Chain() (*Chain, error) {
	if err := bd.Validate(); err != nil {
		return nil, err
	}
	n := bd.N()
	c, err := NewChain(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if i < n-1 && bd.Birth[i] > 0 {
			if err := c.AddRate(i, i+1, bd.Birth[i]); err != nil {
				return nil, err
			}
		}
		if i > 0 && bd.Death[i] > 0 {
			if err := c.AddRate(i, i-1, bd.Death[i]); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// Stationary returns the product-form stationary distribution
// πᵢ ∝ Π_{j<i} Birth[j]/Death[j+1]. The chain must be irreducible
// (all Birth[0..n−2] and Death[1..n−1] positive).
func (bd *BirthDeath) Stationary() ([]float64, error) {
	if err := bd.Validate(); err != nil {
		return nil, err
	}
	n := bd.N()
	for i := 0; i < n-1; i++ {
		if !(bd.Birth[i] > 0) {
			return nil, fmt.Errorf("markov: birth rate 0 at state %d breaks irreducibility", i)
		}
		if !(bd.Death[i+1] > 0) {
			return nil, fmt.Errorf("markov: death rate 0 at state %d breaks irreducibility", i+1)
		}
	}
	// Accumulate in log space: the products can overflow for long
	// chains with extreme rate ratios.
	logPi := make([]float64, n)
	maxLog := 0.0
	for i := 1; i < n; i++ {
		logPi[i] = logPi[i-1] + math.Log(bd.Birth[i-1]/bd.Death[i])
		if logPi[i] > maxLog {
			maxLog = logPi[i]
		}
	}
	pi := make([]float64, n)
	var sum float64
	for i := range pi {
		pi[i] = math.Exp(logPi[i] - maxLog)
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// Transient computes the law at time t from p0 via uniformization.
func (bd *BirthDeath) Transient(p0 []float64, t, tol float64) ([]float64, error) {
	c, err := bd.Chain()
	if err != nil {
		return nil, err
	}
	return c.Transient(p0, t, tol)
}

// StateValues returns [0, 1, ..., N−1] for use with MeanVar.
func (bd *BirthDeath) StateValues() []float64 {
	vals := make([]float64, bd.N())
	for i := range vals {
		vals[i] = float64(i)
	}
	return vals
}

// MM1KStationary returns the closed-form stationary law of M/M/1/K —
// an independent check of Stationary() used by tests.
func MM1KStationary(lambda, mu float64, k int) ([]float64, error) {
	switch {
	case !(lambda > 0) || !(mu > 0):
		return nil, fmt.Errorf("markov: rates must be positive, got λ=%v μ=%v", lambda, mu)
	case k < 1:
		return nil, fmt.Errorf("markov: capacity must be at least 1, got %d", k)
	}
	rho := lambda / mu
	p := make([]float64, k+1)
	if math.Abs(rho-1) < 1e-12 {
		for i := range p {
			p[i] = 1 / float64(k+1)
		}
		return p, nil
	}
	norm := (1 - rho) / (1 - math.Pow(rho, float64(k+1)))
	for i := range p {
		p[i] = norm * math.Pow(rho, float64(i))
	}
	return p, nil
}
