package markov

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMM1KValidation(t *testing.T) {
	cases := []struct {
		lam, mu float64
		k       int
	}{
		{0, 1, 5}, {-1, 1, 5}, {1, 0, 5}, {1, -3, 5}, {1, 1, 0},
		{math.Inf(1), 1, 5}, {1, math.Inf(1), 5},
	}
	for _, tc := range cases {
		if _, err := NewMM1K(tc.lam, tc.mu, tc.k); err == nil {
			t.Errorf("NewMM1K(%v,%v,%d): want error", tc.lam, tc.mu, tc.k)
		}
	}
}

func TestMM1KStationaryMatchesClosedForm(t *testing.T) {
	for _, tc := range []struct {
		lam, mu float64
		k       int
	}{
		{4, 5, 10}, {5, 4, 8}, {3, 3, 6}, {0.5, 10, 20},
	} {
		bd, err := NewMM1K(tc.lam, tc.mu, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := bd.Stationary()
		if err != nil {
			t.Fatal(err)
		}
		want, err := MM1KStationary(tc.lam, tc.mu, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pi {
			if math.Abs(pi[i]-want[i]) > 1e-12 {
				t.Errorf("λ=%v μ=%v K=%d state %d: %v vs closed form %v",
					tc.lam, tc.mu, tc.k, i, pi[i], want[i])
			}
		}
	}
}

func TestMM1KStationaryEqualRates(t *testing.T) {
	// ρ = 1 is the uniform distribution (the closed form has a 0/0
	// that must be special-cased).
	p, err := MM1KStationary(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if math.Abs(v-0.2) > 1e-12 {
			t.Errorf("state %d: %v, want 0.2", i, v)
		}
	}
}

func TestStationaryDetailedBalance(t *testing.T) {
	bd, err := NewStateDependent(12,
		func(i int) float64 { return 3 / (1 + float64(i)) },
		func(i int) float64 { return 1 + 0.5*float64(i) },
	)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := bd.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bd.N()-1; i++ {
		lhs := pi[i] * bd.Birth[i]
		rhs := pi[i+1] * bd.Death[i+1]
		if math.Abs(lhs-rhs) > 1e-14*(lhs+rhs+1e-300) {
			t.Errorf("detailed balance broken at %d: %v vs %v", i, lhs, rhs)
		}
	}
}

func TestStationaryRejectsReducibleChain(t *testing.T) {
	bd := &BirthDeath{Birth: []float64{0, 1, 0}, Death: []float64{0, 1, 1}}
	if _, err := bd.Stationary(); err == nil {
		t.Error("zero birth rate: want irreducibility error")
	}
	bd2 := &BirthDeath{Birth: []float64{1, 1, 0}, Death: []float64{0, 0, 1}}
	if _, err := bd2.Stationary(); err == nil {
		t.Error("zero death rate: want irreducibility error")
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	bd, err := NewMM1K(4, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, bd.N())
	p0[0] = 1
	p, err := bd.Transient(p0, 400, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := bd.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(p[i]-pi[i]) > 1e-7 {
			t.Errorf("state %d: transient %v vs stationary %v", i, p[i], pi[i])
		}
	}
}

func TestTransientMonotoneMeanFromEmpty(t *testing.T) {
	// Starting empty, E[Q](t) rises monotonically toward the
	// stationary mean for an M/M/1/K (stochastic monotonicity).
	bd, err := NewMM1K(4.5, 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, bd.N())
	p0[0] = 1
	vals := bd.StateValues()
	prev := -1.0
	c, err := bd.Chain()
	if err != nil {
		t.Fatal(err)
	}
	series, err := c.TransientSeries(p0, []float64{0.5, 1, 2, 4, 8, 16, 32}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range series {
		mean, _, err := MeanVar(p, vals)
		if err != nil {
			t.Fatal(err)
		}
		if mean < prev-1e-9 {
			t.Errorf("mean decreased at step %d: %v after %v", i, mean, prev)
		}
		prev = mean
	}
}

func TestNewStateDependentValidation(t *testing.T) {
	if _, err := NewStateDependent(1, func(int) float64 { return 1 }, func(int) float64 { return 1 }); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := NewStateDependent(5, nil, func(int) float64 { return 1 }); err == nil {
		t.Error("nil birth: want error")
	}
	if _, err := NewStateDependent(5, func(int) float64 { return 1 }, nil); err == nil {
		t.Error("nil death: want error")
	}
	// Negative rates are clamped to zero, not errors.
	bd, err := NewStateDependent(3, func(int) float64 { return -1 }, func(int) float64 { return -2 })
	if err != nil {
		t.Fatal(err)
	}
	for i := range bd.Birth {
		if bd.Birth[i] != 0 || bd.Death[i] != 0 {
			t.Errorf("state %d: negative rates not clamped: %v %v", i, bd.Birth[i], bd.Death[i])
		}
	}
}

// Property: for random M/M/1/K parameters, the uniformization
// transient at large t matches the product-form stationary law.
func TestMM1KTransientStationaryProperty(t *testing.T) {
	f := func(lamRaw, muRaw uint8, kRaw uint8) bool {
		lam := 0.5 + float64(lamRaw)/32 // (0.5, 8.5)
		mu := 0.5 + float64(muRaw)/32   // (0.5, 8.5)
		k := 2 + int(kRaw)%10           // 2..11
		bd, err := NewMM1K(lam, mu, k)
		if err != nil {
			return false
		}
		p0 := make([]float64, bd.N())
		p0[bd.N()/2] = 1
		// t = 600/min(λ,μ) is far beyond the relaxation time of a
		// chain this small.
		tt := 600 / math.Min(lam, mu)
		p, err := bd.Transient(p0, tt, 1e-10)
		if err != nil {
			return false
		}
		pi, err := bd.Stationary()
		if err != nil {
			return false
		}
		for i := range pi {
			if math.Abs(p[i]-pi[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBirthDeathValidate(t *testing.T) {
	bad := &BirthDeath{Birth: []float64{1, math.NaN()}, Death: []float64{0, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("NaN birth rate: want error")
	}
	mismatch := &BirthDeath{Birth: []float64{1}, Death: []float64{0, 1}}
	if err := mismatch.Validate(); err == nil {
		t.Error("length mismatch: want error")
	}
	tiny := &BirthDeath{Birth: []float64{1}, Death: []float64{1}}
	if err := tiny.Validate(); err == nil {
		t.Error("single state: want error")
	}
}
