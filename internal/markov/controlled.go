package markov

import (
	"fmt"
	"math"

	"fpcc/internal/control"
)

// ControlledQueue is the finite-state CTMC on (queue length, sending
// rate) induced by a rate-control law: the exact Markov analogue of
// the joint density f(t, q, v) of Eq. 14.
//
// States are pairs (q, l) with q ∈ {0..QMax} packets in the system and
// λ_l = RateMin + l·dλ, l ∈ {0..NRate−1} the discretized sending rate.
// Transitions:
//
//   - packet arrival  (q,l) → (q+1,l) at rate λ_l  (blocked at QMax —
//     the finite buffer that a real router has);
//   - packet service  (q,l) → (q−1,l) at rate Mu   (idle at q = 0);
//   - control drift   (q,l) → (q,l±1) at rate |g(q, λ_l)|/dλ in the
//     sign direction of g — the standard jump-process discretization
//     of the deterministic drift dλ/dt = g, exact in the mean as
//     dλ → 0 (it adds rate-diffusion O(|g|·dλ), which is the Markov
//     counterpart of the paper's footnote-2 intrinsic v-variability).
//
// Unlike the Fokker-Planck solver, nothing here is a continuum
// approximation of the queue: the birth-death noise that Eq. 14
// models with the σ²f_qq term arises natively. Comparing the two is
// therefore a direct measurement of the diffusion-approximation error.
type ControlledQueue struct {
	Law     control.Law
	Mu      float64 // service rate
	QMax    int     // buffer size (states 0..QMax)
	RateMin float64 // smallest representable sending rate
	RateMax float64 // largest representable sending rate
	NRate   int     // number of rate grid points (≥ 2)

	chain *Chain
	dRate float64
}

// NewControlledQueue validates the parameters and builds the
// generator.
func NewControlledQueue(law control.Law, mu float64, qMax int, rateMin, rateMax float64, nRate int) (*ControlledQueue, error) {
	switch {
	case law == nil:
		return nil, fmt.Errorf("markov: nil control law")
	case !(mu > 0) || math.IsInf(mu, 1):
		return nil, fmt.Errorf("markov: service rate must be positive, got %v", mu)
	case qMax < 1:
		return nil, fmt.Errorf("markov: queue capacity must be at least 1, got %d", qMax)
	case nRate < 2:
		return nil, fmt.Errorf("markov: need at least 2 rate levels, got %d", nRate)
	case !(rateMin >= 0) || !(rateMax > rateMin):
		return nil, fmt.Errorf("markov: invalid rate range [%v, %v]", rateMin, rateMax)
	}
	cq := &ControlledQueue{
		Law: law, Mu: mu, QMax: qMax,
		RateMin: rateMin, RateMax: rateMax, NRate: nRate,
		dRate: (rateMax - rateMin) / float64(nRate-1),
	}
	if err := cq.build(); err != nil {
		return nil, err
	}
	return cq, nil
}

// NStates returns the total state count (QMax+1)·NRate.
func (cq *ControlledQueue) NStates() int { return (cq.QMax + 1) * cq.NRate }

// Index maps (q, l) to the flat state index.
func (cq *ControlledQueue) Index(q, l int) int { return q*cq.NRate + l }

// Rate returns λ_l for rate level l.
func (cq *ControlledQueue) Rate(l int) float64 { return cq.RateMin + float64(l)*cq.dRate }

// RateLevel returns the nearest rate level to lambda, clamped to the
// grid.
func (cq *ControlledQueue) RateLevel(lambda float64) int {
	l := int(math.Round((lambda - cq.RateMin) / cq.dRate))
	if l < 0 {
		l = 0
	}
	if l >= cq.NRate {
		l = cq.NRate - 1
	}
	return l
}

// build assembles the sparse generator.
func (cq *ControlledQueue) build() error {
	c, err := NewChain(cq.NStates())
	if err != nil {
		return err
	}
	for q := 0; q <= cq.QMax; q++ {
		for l := 0; l < cq.NRate; l++ {
			i := cq.Index(q, l)
			lam := cq.Rate(l)
			if q < cq.QMax && lam > 0 {
				if err := c.AddRate(i, cq.Index(q+1, l), lam); err != nil {
					return err
				}
			}
			if q > 0 {
				if err := c.AddRate(i, cq.Index(q-1, l), cq.Mu); err != nil {
					return err
				}
			}
			g := cq.Law.Drift(float64(q), lam)
			switch {
			case g > 0 && l < cq.NRate-1:
				if err := c.AddRate(i, cq.Index(q, l+1), g/cq.dRate); err != nil {
					return err
				}
			case g < 0 && l > 0:
				if err := c.AddRate(i, cq.Index(q, l-1), -g/cq.dRate); err != nil {
					return err
				}
			}
		}
	}
	cq.chain = c
	return nil
}

// Chain exposes the underlying sparse CTMC.
func (cq *ControlledQueue) Chain() *Chain { return cq.chain }

// InitialPoint returns the distribution concentrated at queue q0 and
// the rate level nearest to lambda0.
func (cq *ControlledQueue) InitialPoint(q0 int, lambda0 float64) ([]float64, error) {
	if q0 < 0 || q0 > cq.QMax {
		return nil, fmt.Errorf("markov: initial queue %d outside [0, %d]", q0, cq.QMax)
	}
	p := make([]float64, cq.NStates())
	p[cq.Index(q0, cq.RateLevel(lambda0))] = 1
	return p, nil
}

// Transient returns the joint law at time t.
func (cq *ControlledQueue) Transient(p0 []float64, t, tol float64) ([]float64, error) {
	return cq.chain.Transient(p0, t, tol)
}

// MarginalQ sums the joint law over rate levels, returning the queue-
// length pmf (length QMax+1).
func (cq *ControlledQueue) MarginalQ(p []float64) ([]float64, error) {
	if len(p) != cq.NStates() {
		return nil, fmt.Errorf("markov: joint law has length %d, want %d", len(p), cq.NStates())
	}
	out := make([]float64, cq.QMax+1)
	for q := 0; q <= cq.QMax; q++ {
		var s float64
		for l := 0; l < cq.NRate; l++ {
			s += p[cq.Index(q, l)]
		}
		out[q] = s
	}
	return out, nil
}

// MarginalRate sums the joint law over queue lengths, returning the
// pmf over rate levels (length NRate).
func (cq *ControlledQueue) MarginalRate(p []float64) ([]float64, error) {
	if len(p) != cq.NStates() {
		return nil, fmt.Errorf("markov: joint law has length %d, want %d", len(p), cq.NStates())
	}
	out := make([]float64, cq.NRate)
	for q := 0; q <= cq.QMax; q++ {
		for l := 0; l < cq.NRate; l++ {
			out[l] += p[cq.Index(q, l)]
		}
	}
	return out, nil
}

// QueueMoments returns E[Q] and Var[Q] under the joint law.
func (cq *ControlledQueue) QueueMoments(p []float64) (mean, variance float64, err error) {
	mq, err := cq.MarginalQ(p)
	if err != nil {
		return 0, 0, err
	}
	vals := make([]float64, len(mq))
	for i := range vals {
		vals[i] = float64(i)
	}
	return MeanVar(mq, vals)
}

// RateMoments returns E[λ] and Var[λ] under the joint law.
func (cq *ControlledQueue) RateMoments(p []float64) (mean, variance float64, err error) {
	ml, err := cq.MarginalRate(p)
	if err != nil {
		return 0, 0, err
	}
	vals := make([]float64, len(ml))
	for i := range vals {
		vals[i] = cq.Rate(i)
	}
	return MeanVar(ml, vals)
}
