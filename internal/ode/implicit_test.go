package ode

import (
	"math"
	"testing"
)

// decay is the scalar stiff test problem y' = −k·y.
func decay(k float64) System {
	return func(t float64, y, dydt []float64) { dydt[0] = -k * y[0] }
}

func TestImplicitTrapezoidExactOnLinearDecay(t *testing.T) {
	// Second order: error O(h²) against e^{−t}.
	s, err := NewImplicitTrapezoid(1)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1}
	const h = 0.01
	for i := 0; i < 100; i++ {
		s.Step(decay(1), float64(i)*h, h, y)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	want := math.Exp(-1)
	if math.Abs(y[0]-want) > 1e-5 {
		t.Errorf("y(1) = %v, want %v", y[0], want)
	}
}

func TestImplicitTrapezoidAStable(t *testing.T) {
	// k·h = 100: explicit methods explode; the trapezoid stays
	// bounded and decays.
	s, err := NewImplicitTrapezoid(1)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1}
	const h, k = 0.1, 1000.0
	for i := 0; i < 50; i++ {
		s.Step(decay(k), float64(i)*h, h, y)
		if math.Abs(y[0]) > 1 {
			t.Fatalf("step %d: |y| = %v grew", i, y[0])
		}
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
}

func TestRK4ExplodesWhereImplicitHolds(t *testing.T) {
	// The motivating comparison: same stiff problem, same step.
	const h, k = 0.1, 1000.0
	rk := NewRK4(1)
	y := []float64{1}
	for i := 0; i < 20; i++ {
		rk.Step(decay(k), float64(i)*h, h, y)
	}
	if !(math.Abs(y[0]) > 1e10 || math.IsNaN(y[0]) || math.IsInf(y[0], 0)) {
		t.Errorf("RK4 at kh=100 unexpectedly stable: y = %v", y[0])
	}
}

func TestBDF2LStableKillsStiffTransient(t *testing.T) {
	// L-stability: for kh → ∞ the BDF2 amplification goes to zero, so
	// the stiff component must be crushed, not just bounded.
	s, err := NewBDF2(1)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1}
	const h, k = 0.5, 10000.0
	for i := 0; i < 10; i++ {
		s.Step(decay(k), float64(i)*h, h, y)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if math.Abs(y[0]) > 1e-6 {
		t.Errorf("stiff transient survived: y = %v", y[0])
	}
}

func TestBDF2SecondOrderConvergence(t *testing.T) {
	// Halving h must cut the error by ≈ 4 on a smooth problem
	// (y' = cos t, y(0) = 0, exact sin t).
	sys := func(t float64, y, dydt []float64) { dydt[0] = math.Cos(t) }
	errAt := func(h float64) float64 {
		s, err := NewBDF2(1)
		if err != nil {
			t.Fatal(err)
		}
		y := []float64{0}
		n := int(math.Round(2 / h))
		for i := 0; i < n; i++ {
			s.Step(sys, float64(i)*h, h, y)
		}
		if s.Err() != nil {
			t.Fatal(s.Err())
		}
		return math.Abs(y[0] - math.Sin(2))
	}
	e1 := errAt(0.02)
	e2 := errAt(0.01)
	ratio := e1 / e2
	if ratio < 3 || ratio > 5 {
		t.Errorf("error ratio %v on halving, want ≈ 4 (e1=%v e2=%v)", ratio, e1, e2)
	}
}

func TestImplicitTrapezoidSecondOrderConvergence(t *testing.T) {
	sys := func(t float64, y, dydt []float64) { dydt[0] = -y[0] + math.Sin(t) }
	exact := func(t float64) float64 {
		// y' + y = sin t, y(0) = 1 → y = 1.5e^{−t} + (sin t − cos t)/2.
		return 1.5*math.Exp(-t) + (math.Sin(t)-math.Cos(t))/2
	}
	errAt := func(h float64) float64 {
		s, err := NewImplicitTrapezoid(1)
		if err != nil {
			t.Fatal(err)
		}
		y := []float64{1}
		n := int(math.Round(3 / h))
		for i := 0; i < n; i++ {
			s.Step(sys, float64(i)*h, h, y)
		}
		return math.Abs(y[0] - exact(3))
	}
	ratio := errAt(0.02) / errAt(0.01)
	if ratio < 3 || ratio > 5 {
		t.Errorf("error ratio %v on halving, want ≈ 4", ratio)
	}
}

func TestBDF2TwoDimensionalOscillator(t *testing.T) {
	// Harmonic oscillator: checks the dense Newton path for dim > 1.
	sys := func(t float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	s, err := NewBDF2(2)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1, 0}
	const h = 0.002
	n := int(math.Round(math.Pi / h))
	for i := 0; i < n; i++ {
		s.Step(sys, float64(i)*h, h, y)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	// After half a period: y ≈ (−1, 0).
	if math.Abs(y[0]+1) > 0.01 || math.Abs(y[1]) > 0.01 {
		t.Errorf("y(π) = %v, want (−1, 0)", y)
	}
}

func TestBDF2RejectsVariableStep(t *testing.T) {
	s, err := NewBDF2(1)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1}
	s.Step(decay(1), 0, 0.1, y)
	s.Step(decay(1), 0.1, 0.1, y)
	s.Step(decay(1), 0.2, 0.05, y) // step change
	if s.Err() == nil {
		t.Error("variable step accepted silently")
	}
}

func TestImplicitSteppersViaFixedSolve(t *testing.T) {
	// The implicit steppers satisfy the Stepper interface and work
	// through the generic driver.
	s, err := NewImplicitTrapezoid(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FixedSolve(decay(2), s, []float64{1}, 0, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	_, last := tr.Last()
	if math.Abs(last[0]-math.Exp(-2)) > 1e-4 {
		t.Errorf("y(1) = %v, want e^{−2}", last[0])
	}
	if s.Order() != 2 {
		t.Error("Order() != 2")
	}
	b, err := NewBDF2(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Order() != 2 {
		t.Error("BDF2 Order() != 2")
	}
}

func TestNewImplicitValidation(t *testing.T) {
	if _, err := NewImplicitTrapezoid(0); err == nil {
		t.Error("zero dim: want error")
	}
	if _, err := NewBDF2(-1); err == nil {
		t.Error("negative dim: want error")
	}
}
