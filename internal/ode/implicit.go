package ode

import (
	"fmt"
	"math"

	"fpcc/internal/linalg"
)

// This file adds A-stable implicit steppers — the implicit trapezoid
// rule and BDF2 — for stiff problems. Stiffness arises in this
// repository when the exponential-decrease branch of a control law is
// fast relative to the queue dynamics (large C1·λ), where explicit
// RK4 needs steps far below the accuracy requirement just to stay
// bounded. Both steppers solve their stage equations with a damped
// Newton iteration on a finite-difference Jacobian.

// newtonSolve solves y − beta·h·f(t, y) = rhs for y, starting from
// the predictor already stored in y. dim-sized scratch slices are
// provided by the caller to keep steppers allocation-free per step.
func newtonSolve(f System, t, h, beta float64, y, rhs, fy, ypert, fpert []float64, jac *linalg.Dense) error {
	n := len(y)
	const maxNewton = 25
	for iter := 0; iter < maxNewton; iter++ {
		f(t, y, fy)
		// Residual r = y − beta·h·f − rhs; solve J·δ = −r.
		var rnorm float64
		for i := 0; i < n; i++ {
			r := y[i] - beta*h*fy[i] - rhs[i]
			fpert[i] = -r // reuse fpert as the negated residual/RHS
			if a := math.Abs(r); a > rnorm {
				rnorm = a
			}
		}
		scale := 1.0
		for i := 0; i < n; i++ {
			if a := math.Abs(y[i]); a > scale {
				scale = a
			}
		}
		if rnorm <= 1e-12*scale {
			return nil
		}
		// Finite-difference Jacobian of the residual:
		// J = I − beta·h·∂f/∂y.
		copy(ypert, y)
		rhsVec := make([]float64, n)
		copy(rhsVec, fpert)
		for j := 0; j < n; j++ {
			dy := 1e-7 * (1 + math.Abs(y[j]))
			ypert[j] = y[j] + dy
			f(t, ypert, fpert)
			for i := 0; i < n; i++ {
				jac.Set(i, j, -beta*h*(fpert[i]-fy[i])/dy)
			}
			jac.Set(j, j, jac.At(j, j)+1)
			ypert[j] = y[j]
		}
		if err := linalg.SolveDense(jac, rhsVec); err != nil {
			return fmt.Errorf("ode: Newton Jacobian solve failed: %w", err)
		}
		var step float64
		for i := 0; i < n; i++ {
			y[i] += rhsVec[i]
			if a := math.Abs(rhsVec[i]); a > step {
				step = a
			}
		}
		if step <= 1e-13*scale {
			return nil
		}
	}
	return fmt.Errorf("ode: Newton iteration did not converge in %d steps (h=%v)", maxNewton, h)
}

// ImplicitTrapezoid is the A-stable one-step method
// y⁺ = y + h/2·(f(t,y) + f(t+h,y⁺)), second order. Step panics on
// Newton failure to satisfy the Stepper interface; use TrySolve for
// error-returning integration.
type ImplicitTrapezoid struct {
	fy, f0, rhs, ypert, fpert []float64
	jac                       *linalg.Dense
	err                       error
}

// NewImplicitTrapezoid builds a stepper for the given state dimension.
func NewImplicitTrapezoid(dim int) (*ImplicitTrapezoid, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("ode: dimension must be positive, got %d", dim)
	}
	jac, err := linalg.NewDense(dim)
	if err != nil {
		return nil, err
	}
	return &ImplicitTrapezoid{
		fy: make([]float64, dim), f0: make([]float64, dim),
		rhs: make([]float64, dim), ypert: make([]float64, dim),
		fpert: make([]float64, dim), jac: jac,
	}, nil
}

// Err returns the first Newton failure encountered by Step, if any.
func (s *ImplicitTrapezoid) Err() error { return s.err }

// Step implements Stepper. A Newton failure is latched into Err and
// the state is advanced by an explicit Euler fallback step so the
// caller can detect the degradation instead of silently continuing.
func (s *ImplicitTrapezoid) Step(f System, t, h float64, y []float64) {
	f(t, y, s.f0)
	// rhs = y + h/2·f(t, y); unknown solves y⁺ − h/2·f(t+h, y⁺) = rhs.
	for i := range y {
		s.rhs[i] = y[i] + h/2*s.f0[i]
	}
	// Predictor: explicit Euler.
	for i := range y {
		y[i] += h * s.f0[i]
	}
	if err := newtonSolve(f, t+h, h, 0.5, y, s.rhs, s.fy, s.ypert, s.fpert, s.jac); err != nil && s.err == nil {
		s.err = err
	}
}

// Order implements Stepper.
func (s *ImplicitTrapezoid) Order() int { return 2 }

// BDF2 is the two-step backward differentiation formula
// y⁺ = (4·yₙ − yₙ₋₁)/3 + (2h/3)·f(t+h, y⁺), L-stable, second order.
// The first step bootstraps with the implicit trapezoid rule. Fixed
// step size only: the history coefficients assume uniform h.
type BDF2 struct {
	trap   *ImplicitTrapezoid
	prev   []float64 // yₙ₋₁
	hasTwo bool
	lastH  float64
	rhs    []float64
	err    error
}

// NewBDF2 builds a BDF2 stepper for the given dimension.
func NewBDF2(dim int) (*BDF2, error) {
	trap, err := NewImplicitTrapezoid(dim)
	if err != nil {
		return nil, err
	}
	return &BDF2{trap: trap, prev: make([]float64, dim), rhs: make([]float64, dim)}, nil
}

// Err returns the first Newton failure, if any.
func (s *BDF2) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.trap.Err()
}

// Step implements Stepper.
func (s *BDF2) Step(f System, t, h float64, y []float64) {
	if !s.hasTwo {
		copy(s.prev, y)
		s.trap.Step(f, t, h, y)
		s.hasTwo = true
		s.lastH = h
		return
	}
	if math.Abs(h-s.lastH) > 1e-12*math.Abs(h) && s.err == nil {
		s.err = fmt.Errorf("ode: BDF2 requires a fixed step, got %v after %v", h, s.lastH)
	}
	// rhs = (4yₙ − yₙ₋₁)/3; unknown solves y⁺ − (2h/3)f = rhs.
	for i := range y {
		s.rhs[i] = (4*y[i] - s.prev[i]) / 3
	}
	copy(s.prev, y)
	// Predictor: keep yₙ (cheap and robust for stiff decays).
	if err := newtonSolve(f, t+h, h, 2.0/3.0, y, s.rhs, s.trap.fy, s.trap.ypert, s.trap.fpert, s.trap.jac); err != nil && s.err == nil {
		s.err = err
	}
}

// Order implements Stepper.
func (s *BDF2) Order() int { return 2 }
