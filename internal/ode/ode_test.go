package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// expSystem is dy/dt = y, solution y(t) = y0*e^t.
func expSystem(t float64, y, dydt []float64) { dydt[0] = y[0] }

// oscillator is the harmonic oscillator y” = -y as a 2-D system,
// solution (cos t, -sin t) from (1, 0).
func oscillator(t float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}

func TestRK4Exponential(t *testing.T) {
	s := NewRK4(1)
	tr, err := FixedSolve(expSystem, s, []float64{1}, 0, 1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	_, y := tr.Last()
	if got, want := y[0], math.E; math.Abs(got-want) > 1e-10 {
		t.Fatalf("y(1) = %v, want e = %v", got, want)
	}
}

func TestEulerExponential(t *testing.T) {
	s := NewEuler(1)
	tr, err := FixedSolve(expSystem, s, []float64{1}, 0, 1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	_, y := tr.Last()
	// Euler at h=1e-4 should be within ~1.4e-4 of e.
	if got, want := y[0], math.E; math.Abs(got-want) > 5e-4 {
		t.Fatalf("y(1) = %v, want e = %v", got, want)
	}
}

// TestConvergenceOrders verifies the formal orders: halving h shrinks
// the error by ~2 for Euler and ~16 for RK4.
func TestConvergenceOrders(t *testing.T) {
	errAt := func(s Stepper, h float64) float64 {
		tr, err := FixedSolve(expSystem, s, []float64{1}, 0, 1, h)
		if err != nil {
			t.Fatal(err)
		}
		_, y := tr.Last()
		return math.Abs(y[0] - math.E)
	}
	e1 := errAt(NewEuler(1), 1e-2)
	e2 := errAt(NewEuler(1), 5e-3)
	if ratio := e1 / e2; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("Euler error ratio %v, want ~2", ratio)
	}
	r1 := errAt(NewRK4(1), 1e-1)
	r2 := errAt(NewRK4(1), 5e-2)
	if ratio := r1 / r2; ratio < 12 || ratio > 20 {
		t.Errorf("RK4 error ratio %v, want ~16", ratio)
	}
}

func TestRK4Oscillator(t *testing.T) {
	s := NewRK4(2)
	tr, err := FixedSolve(oscillator, s, []float64{1, 0}, 0, 2*math.Pi, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	_, y := tr.Last()
	if math.Abs(y[0]-1) > 1e-9 || math.Abs(y[1]) > 1e-9 {
		t.Fatalf("after one period y = %v, want (1, 0)", y)
	}
}

func TestFixedSolveLandsOnEnd(t *testing.T) {
	s := NewRK4(1)
	tr, err := FixedSolve(expSystem, s, []float64{1}, 0, 0.35, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tEnd, _ := tr.Last()
	if math.Abs(tEnd-0.35) > 1e-12 {
		t.Fatalf("final time %v, want 0.35", tEnd)
	}
}

func TestFixedSolveValidation(t *testing.T) {
	s := NewRK4(1)
	if _, err := FixedSolve(expSystem, s, []float64{1}, 0, 1, 0); err == nil {
		t.Error("expected error for zero step")
	}
	if _, err := FixedSolve(expSystem, s, []float64{1}, 1, 0, 0.1); err == nil {
		t.Error("expected error for reversed interval")
	}
}

func TestFixedSolveDoesNotMutateInitial(t *testing.T) {
	y0 := []float64{1}
	s := NewRK4(1)
	if _, err := FixedSolve(expSystem, s, y0, 0, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	if y0[0] != 1 {
		t.Fatalf("initial condition mutated to %v", y0[0])
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	s := NewRK4(1)
	tr, err := FixedSolve(expSystem, s, []float64{1}, 0, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	t0, y0 := tr.At(0)
	if t0 != 0 || y0[0] != 1 {
		t.Fatalf("At(0) = (%v, %v), want (0, [1])", t0, y0)
	}
}

// TestEventCrossing locates the zero of cos(t) for y' = -sin(t),
// i.e. the event y(t) = cos(t) crossing zero at t = pi/2.
func TestEventCrossing(t *testing.T) {
	f := func(tt float64, y, dydt []float64) { dydt[0] = -math.Sin(tt) }
	ev := func(tt float64, y []float64) float64 { return y[0] }
	s := NewRK4(1)
	_, events, err := SolveWithEvents(f, s, []float64{1}, 0, 3, 0.01, 1e-10,
		[]EventFunc{ev}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("located %d events, want 1", len(events))
	}
	if got := events[0].T; math.Abs(got-math.Pi/2) > 1e-6 {
		t.Fatalf("event at t = %v, want pi/2 = %v", got, math.Pi/2)
	}
}

// TestEventMutation verifies onEvent can modify the state: a bouncing
// ball y” = -1 with reflection at y = 0 keeps bouncing rather than
// falling through the floor.
func TestEventMutation(t *testing.T) {
	fall := func(tt float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -1
	}
	floor := func(tt float64, y []float64) float64 { return y[0] }
	s := NewRK4(2)
	bounces := 0
	tr, events, err := SolveWithEvents(fall, s, []float64{1, 0}, 0, 10, 0.001, 1e-9,
		[]EventFunc{floor},
		func(idx int, tt float64, y []float64) {
			y[0] = 0
			y[1] = -y[1] // perfectly elastic bounce
			bounces++
		}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bounces < 3 {
		t.Fatalf("only %d bounces in 10s, want >= 3", bounces)
	}
	// First touchdown of a unit drop is at t = sqrt(2).
	if got := events[0].T; math.Abs(got-math.Sqrt2) > 1e-5 {
		t.Fatalf("first bounce at %v, want sqrt(2) = %v", got, math.Sqrt2)
	}
	for i := 0; i < tr.Len(); i++ {
		_, y := tr.At(i)
		if y[0] < -1e-6 {
			t.Fatalf("ball fell through the floor: y = %v", y[0])
		}
	}
}

func TestSolveWithEventsMaxEvents(t *testing.T) {
	fall := func(tt float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -1
	}
	floor := func(tt float64, y []float64) float64 { return y[0] }
	s := NewRK4(2)
	_, events, err := SolveWithEvents(fall, s, []float64{1, 0}, 0, 100, 0.001, 1e-9,
		[]EventFunc{floor},
		func(idx int, tt float64, y []float64) { y[1] = -y[1] }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("located %d events, want exactly 2 (maxEvents)", len(events))
	}
}

func TestSolveWithEventsValidation(t *testing.T) {
	s := NewRK4(1)
	if _, _, err := SolveWithEvents(expSystem, s, []float64{1}, 0, 1, 0, 1e-9, nil, nil, 0); err == nil {
		t.Error("expected error for zero step")
	}
	if _, _, err := SolveWithEvents(expSystem, s, []float64{1}, 0, 1, 0.1, 0, nil, nil, 0); err == nil {
		t.Error("expected error for zero tolerance")
	}
}

func TestAdaptiveExponential(t *testing.T) {
	tr, err := Adaptive(expSystem, []float64{1}, 0, 1, 0.1, 1e-10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	_, y := tr.Last()
	if math.Abs(y[0]-math.E) > 1e-7 {
		t.Fatalf("Adaptive y(1) = %v, want e", y[0])
	}
}

func TestAdaptiveOscillatorLongHorizon(t *testing.T) {
	tr, err := Adaptive(oscillator, []float64{1, 0}, 0, 20*math.Pi, 0.1, 1e-9, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	_, y := tr.Last()
	if math.Abs(y[0]-1) > 1e-5 || math.Abs(y[1]) > 1e-5 {
		t.Fatalf("after 10 periods y = %v, want (1, 0)", y)
	}
}

func TestAdaptiveTakesFewerStepsThanFixed(t *testing.T) {
	// For a smooth problem the adaptive integrator should need far
	// fewer steps than a fixed-step RK4 at comparable accuracy.
	trA, err := Adaptive(expSystem, []float64{1}, 0, 1, 0.01, 1e-8, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if trA.Len() > 60 {
		t.Fatalf("adaptive used %d samples for e^t on [0,1], want far fewer", trA.Len())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := Adaptive(expSystem, []float64{1}, 1, 0, 0.1, 1e-8, 1e-8); err == nil {
		t.Error("expected error for reversed interval")
	}
	if _, err := Adaptive(expSystem, []float64{1}, 0, 1, 0, 1e-8, 1e-8); err == nil {
		t.Error("expected error for zero initial step")
	}
	if _, err := Adaptive(expSystem, []float64{1}, 0, 1, 0.1, 0, 1e-8); err == nil {
		t.Error("expected error for zero atol")
	}
}

// Property: for linear decay y' = -k y the RK4 solution stays within
// a tight factor of the exact exponential for random rates and spans.
func TestRK4LinearDecayProperty(t *testing.T) {
	f := func(kRaw, spanRaw uint8) bool {
		k := float64(kRaw%50)/10 + 0.1
		span := float64(spanRaw%40)/10 + 0.1
		sys := func(t float64, y, dydt []float64) { dydt[0] = -k * y[0] }
		s := NewRK4(1)
		tr, err := FixedSolve(sys, s, []float64{1}, 0, span, 1e-3)
		if err != nil {
			return false
		}
		_, y := tr.Last()
		want := math.Exp(-k * span)
		return math.Abs(y[0]-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the RK4 oscillator conserves energy to high accuracy over
// one period for random initial conditions.
func TestOscillatorEnergyProperty(t *testing.T) {
	f := func(aRaw, bRaw int8) bool {
		a := float64(aRaw) / 16
		b := float64(bRaw) / 16
		if a == 0 && b == 0 {
			return true
		}
		s := NewRK4(2)
		tr, err := FixedSolve(oscillator, s, []float64{a, b}, 0, 2*math.Pi, 1e-3)
		if err != nil {
			return false
		}
		e0 := a*a + b*b
		_, y := tr.Last()
		e1 := y[0]*y[0] + y[1]*y[1]
		return math.Abs(e1-e0) < 1e-8*(1+e0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRK4Step(b *testing.B) {
	s := NewRK4(2)
	y := []float64{1, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Step(oscillator, 0, 1e-3, y)
	}
}

func BenchmarkAdaptiveOscillatorPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Adaptive(oscillator, []float64{1, 0}, 0, 2*math.Pi, 0.1, 1e-8, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}
