// Package ode provides the ordinary-differential-equation integrators
// used throughout the repository: fixed-step Euler and RK4 and an
// adaptive Runge-Kutta-Fehlberg 4(5) method, plus event location by
// bisection on a sign-changing event function.
//
// The congestion-control dynamics analysed by the paper,
//
//	dq/dt = v,   dv/dt = g(q, λ)
//
// are piecewise smooth with a switching surface at q = q̂ (the rate
// controller changes branch there). Integrating across the switch with
// a smooth method loses accuracy, so SolveWithEvents locates each
// crossing to tolerance and restarts the integrator on the far side —
// the same technique the paper's characteristic analysis performs
// analytically.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// System is the right-hand side of an autonomous-or-not ODE system
// dy/dt = f(t, y). Implementations write the derivative into dydt and
// must not retain either slice.
type System func(t float64, y, dydt []float64)

// Step advances y by one fixed step of size h using the given method
// and scratch workspace (see NewWorkspace).
type Stepper interface {
	// Step advances y in place from t to t+h.
	Step(f System, t, h float64, y []float64)
	// Order returns the formal order of accuracy (1 for Euler, 4 for RK4).
	Order() int
}

// Euler is the first-order explicit Euler method. Primarily used as a
// cross-check and in convergence-order tests.
type Euler struct{ k []float64 }

// NewEuler returns an Euler stepper for systems of dimension dim.
func NewEuler(dim int) *Euler { return &Euler{k: make([]float64, dim)} }

// Step implements Stepper.
func (e *Euler) Step(f System, t, h float64, y []float64) {
	f(t, y, e.k)
	for i := range y {
		y[i] += h * e.k[i]
	}
}

// Order implements Stepper.
func (e *Euler) Order() int { return 1 }

// RK4 is the classic fourth-order Runge-Kutta method with
// preallocated stages. It allocates nothing per step.
type RK4 struct {
	k1, k2, k3, k4, tmp []float64
}

// NewRK4 returns an RK4 stepper for systems of dimension dim.
func NewRK4(dim int) *RK4 {
	return &RK4{
		k1:  make([]float64, dim),
		k2:  make([]float64, dim),
		k3:  make([]float64, dim),
		k4:  make([]float64, dim),
		tmp: make([]float64, dim),
	}
}

// Step implements Stepper.
func (r *RK4) Step(f System, t, h float64, y []float64) {
	n := len(y)
	f(t, y, r.k1)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k1[i]
	}
	f(t+0.5*h, r.tmp, r.k2)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k2[i]
	}
	f(t+0.5*h, r.tmp, r.k3)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + h*r.k3[i]
	}
	f(t+h, r.tmp, r.k4)
	for i := 0; i < n; i++ {
		y[i] += h / 6 * (r.k1[i] + 2*r.k2[i] + 2*r.k3[i] + r.k4[i])
	}
}

// Order implements Stepper.
func (r *RK4) Order() int { return 4 }

// Trajectory records sampled states of an integration: Times[i] is
// the time of sample i and States[i] the state vector (owned by the
// Trajectory).
type Trajectory struct {
	Times  []float64
	States [][]float64
}

// At returns the state at sample i.
func (tr *Trajectory) At(i int) (t float64, y []float64) {
	return tr.Times[i], tr.States[i]
}

// Len returns the number of samples.
func (tr *Trajectory) Len() int { return len(tr.Times) }

// Last returns the final time and state. It panics on an empty
// trajectory.
func (tr *Trajectory) Last() (t float64, y []float64) {
	n := len(tr.Times)
	return tr.Times[n-1], tr.States[n-1]
}

// append records a copy of y at time t.
func (tr *Trajectory) append(t float64, y []float64) {
	tr.Times = append(tr.Times, t)
	tr.States = append(tr.States, append([]float64(nil), y...))
}

// FixedSolve integrates dy/dt = f from t0 to t1 with fixed step h
// using stepper s, recording every step (including the endpoints).
// The final partial step is shortened to land exactly on t1.
// It returns an error for invalid h or a reversed interval.
func FixedSolve(f System, s Stepper, y0 []float64, t0, t1, h float64) (*Trajectory, error) {
	if !(h > 0) {
		return nil, fmt.Errorf("ode: non-positive step %v", h)
	}
	if t1 < t0 {
		return nil, fmt.Errorf("ode: reversed interval [%v, %v]", t0, t1)
	}
	y := append([]float64(nil), y0...)
	tr := &Trajectory{}
	tr.append(t0, y)
	t := t0
	for t < t1 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		if step < 1e-15*(1+math.Abs(t)) {
			break
		}
		s.Step(f, t, step, y)
		t += step
		tr.append(t, y)
	}
	return tr, nil
}

// EventFunc evaluates a scalar event function e(t, y); an event is a
// sign change of e along the trajectory.
type EventFunc func(t float64, y []float64) float64

// Event describes a located event.
type Event struct {
	T float64   // event time
	Y []float64 // state at the event
}

// SolveWithEvents integrates like FixedSolve but additionally locates
// zero crossings of each event function by bisection to time tolerance
// tol, records them, and invokes onEvent (if non-nil) at each crossing
// so the caller can mutate the state (e.g. switch a controller branch).
// Crossing states are included in the trajectory. maxEvents bounds the
// number of located events (<= 0 means unbounded).
func SolveWithEvents(f System, s Stepper, y0 []float64, t0, t1, h, tol float64,
	events []EventFunc, onEvent func(idx int, t float64, y []float64), maxEvents int) (*Trajectory, []Event, error) {
	if !(h > 0) {
		return nil, nil, fmt.Errorf("ode: non-positive step %v", h)
	}
	if !(tol > 0) {
		return nil, nil, fmt.Errorf("ode: non-positive event tolerance %v", tol)
	}
	if t1 < t0 {
		return nil, nil, fmt.Errorf("ode: reversed interval [%v, %v]", t0, t1)
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	prev := make([]float64, dim)
	trial := make([]float64, dim)
	tr := &Trajectory{}
	tr.append(t0, y)
	var found []Event

	evPrev := make([]float64, len(events))
	for i, e := range events {
		evPrev[i] = e(t0, y)
	}

	t := t0
	for t < t1 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		if step < 1e-15*(1+math.Abs(t)) {
			break
		}
		copy(prev, y)
		s.Step(f, t, step, y)
		tNext := t + step

		// Check each event function for a sign change over [t, tNext].
		crossed := -1
		for i, e := range events {
			val := e(tNext, y)
			if evPrev[i] == 0 {
				evPrev[i] = val
				continue
			}
			if val != 0 && math.Signbit(val) == math.Signbit(evPrev[i]) {
				evPrev[i] = val
				continue
			}
			crossed = i
			// Bisect on the step fraction to locate the crossing.
			lo, hi := 0.0, 1.0
			for hi-lo > tol/step {
				mid := 0.5 * (lo + hi)
				copy(trial, prev)
				s.Step(f, t, mid*step, trial)
				v := e(t+mid*step, trial)
				if v == 0 {
					lo, hi = mid, mid
					break
				}
				if math.Signbit(v) == math.Signbit(evPrev[i]) {
					lo = mid
				} else {
					hi = mid
				}
			}
			frac := 0.5 * (lo + hi)
			copy(trial, prev)
			s.Step(f, t, frac*step, trial)
			tEv := t + frac*step
			ev := Event{T: tEv, Y: append([]float64(nil), trial...)}
			found = append(found, ev)
			if onEvent != nil {
				onEvent(i, tEv, trial)
			}
			// Restart from (possibly mutated) event state.
			copy(y, trial)
			t = tEv
			tr.append(t, y)
			for j, ej := range events {
				evPrev[j] = ej(t, y)
			}
			if maxEvents > 0 && len(found) >= maxEvents {
				return tr, found, nil
			}
			break
		}
		if crossed >= 0 {
			continue
		}
		t = tNext
		tr.append(t, y)
		for i, e := range events {
			evPrev[i] = e(t, y)
		}
	}
	return tr, found, nil
}

// rkf45 coefficients (Fehlberg).
var (
	rkfA = [6]float64{0, 1. / 4, 3. / 8, 12. / 13, 1, 1. / 2}
	rkfB = [6][5]float64{
		{},
		{1. / 4},
		{3. / 32, 9. / 32},
		{1932. / 2197, -7200. / 2197, 7296. / 2197},
		{439. / 216, -8, 3680. / 513, -845. / 4104},
		{-8. / 27, 2, -3544. / 2565, 1859. / 4104, -11. / 40},
	}
	rkfC4 = [6]float64{25. / 216, 0, 1408. / 2565, 2197. / 4104, -1. / 5, 0}
	rkfC5 = [6]float64{16. / 135, 0, 6656. / 12825, 28561. / 56430, -9. / 50, 2. / 55}
)

// Adaptive integrates dy/dt = f from t0 to t1 with the adaptive
// RKF4(5) method, holding the per-step error estimate below
// atol + rtol*|y| componentwise. It records every accepted step and
// returns an error if the step size underflows (stiff or singular
// problem) or the arguments are invalid.
func Adaptive(f System, y0 []float64, t0, t1, h0, atol, rtol float64) (*Trajectory, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("ode: reversed interval [%v, %v]", t0, t1)
	}
	if !(h0 > 0) || !(atol > 0) || !(rtol >= 0) {
		return nil, fmt.Errorf("ode: invalid tolerances h0=%v atol=%v rtol=%v", h0, atol, rtol)
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	var k [6][]float64
	for i := range k {
		k[i] = make([]float64, dim)
	}
	tmp := make([]float64, dim)
	y4 := make([]float64, dim)
	y5 := make([]float64, dim)

	tr := &Trajectory{}
	tr.append(t0, y)
	t, h := t0, h0
	hMin := 1e-14 * (1 + math.Abs(t1-t0))
	for t < t1 {
		if t+h > t1 {
			h = t1 - t
		}
		if h < hMin {
			return tr, errors.New("ode: step size underflow in Adaptive")
		}
		// Evaluate the six stages.
		for s := 0; s < 6; s++ {
			copy(tmp, y)
			for j := 0; j < s; j++ {
				b := rkfB[s][j]
				if b == 0 {
					continue
				}
				for i := 0; i < dim; i++ {
					tmp[i] += h * b * k[j][i]
				}
			}
			f(t+rkfA[s]*h, tmp, k[s])
		}
		// Fourth- and fifth-order solutions and error estimate.
		maxRatio := 0.0
		for i := 0; i < dim; i++ {
			var s4, s5 float64
			for s := 0; s < 6; s++ {
				s4 += rkfC4[s] * k[s][i]
				s5 += rkfC5[s] * k[s][i]
			}
			y4[i] = y[i] + h*s4
			y5[i] = y[i] + h*s5
			sc := atol + rtol*math.Abs(y[i])
			if ratio := math.Abs(y5[i]-y4[i]) / sc; ratio > maxRatio {
				maxRatio = ratio
			}
		}
		if maxRatio <= 1 {
			// Accept the (higher-order) solution.
			t += h
			copy(y, y5)
			tr.append(t, y)
		}
		// Standard step-size controller with safety factor.
		var factor float64
		if maxRatio == 0 {
			factor = 4
		} else {
			factor = 0.9 * math.Pow(maxRatio, -0.2)
			if factor > 4 {
				factor = 4
			} else if factor < 0.1 {
				factor = 0.1
			}
		}
		h *= factor
	}
	return tr, nil
}
