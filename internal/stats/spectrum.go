package stats

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Spectral analysis: a hand-rolled radix-2 FFT and a periodogram,
// used as an independent cross-check of the peak-detection oscillation
// metrics — the delay-induced limit cycles of Section 7 show up as a
// sharp line at 1/period, whereas a converged trajectory has no
// dominant line.

// FFT computes the in-place decimation-in-time radix-2 fast Fourier
// transform of x. len(x) must be a power of two (ErrNotPow2
// otherwise).
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("stats: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly passes.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Periodogram estimates the power spectral density of the real series
// xs sampled every dt seconds: the mean is removed, the series is
// zero-padded to the next power of two, and |X(f)|² is returned for
// the positive frequencies. freqs[i] is in Hz (cycles per second).
func Periodogram(xs []float64, dt float64) (freqs, power []float64, err error) {
	if len(xs) < 4 {
		return nil, nil, fmt.Errorf("stats: periodogram needs at least 4 samples, got %d", len(xs))
	}
	if !(dt > 0) {
		return nil, nil, fmt.Errorf("stats: non-positive sample period %v", dt)
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	n := 1
	for n < len(xs) {
		n <<= 1
	}
	buf := make([]complex128, n)
	for i, v := range xs {
		buf[i] = complex(v-mean, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, nil, err
	}
	half := n / 2
	freqs = make([]float64, half)
	power = make([]float64, half)
	for i := 0; i < half; i++ {
		freqs[i] = float64(i) / (float64(n) * dt)
		re, im := real(buf[i]), imag(buf[i])
		power[i] = (re*re + im*im) / float64(n)
	}
	return freqs, power, nil
}

// DominantPeriod returns the period (seconds) of the strongest
// spectral line of the series and the fraction of total power it
// carries (a confidence proxy: sustained oscillation concentrates
// power, noise spreads it). It returns NaN period when the series has
// no positive-frequency power.
func DominantPeriod(xs []float64, dt float64) (period, powerFrac float64, err error) {
	freqs, power, err := Periodogram(xs, dt)
	if err != nil {
		return 0, 0, err
	}
	var total float64
	best := -1
	for i := 1; i < len(power); i++ { // skip DC
		total += power[i]
		if best < 0 || power[i] > power[best] {
			best = i
		}
	}
	if best < 0 || total == 0 || power[best] == 0 {
		return math.NaN(), 0, nil
	}
	// Aggregate the line's immediate neighbours for the power
	// fraction (spectral leakage spreads a line over a few bins).
	line := power[best]
	if best > 1 {
		line += power[best-1]
	}
	if best+1 < len(power) {
		line += power[best+1]
	}
	return 1 / freqs[best], line / total, nil
}
