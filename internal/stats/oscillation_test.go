package stats

import (
	"math"
	"testing"

	"fpcc/internal/rng"
)

func sineSeries(n int, period, amp float64) (ts, xs []float64) {
	ts = make([]float64, n)
	xs = make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) * 0.01
		ts[i] = t
		xs[i] = amp * math.Sin(2*math.Pi*t/period)
	}
	return ts, xs
}

func TestFindPeaksSine(t *testing.T) {
	ts, xs := sineSeries(5000, 5.0, 2.0)
	peaks := FindPeaks(ts, xs, 0.5)
	if len(peaks) < 15 {
		t.Fatalf("found %d peaks in 10 periods, want ~20", len(peaks))
	}
	// Peaks must alternate max/min.
	for i := 1; i < len(peaks); i++ {
		if peaks[i].IsMax == peaks[i-1].IsMax {
			t.Fatalf("peaks %d and %d do not alternate", i-1, i)
		}
	}
	// Max values ~ +2, min values ~ -2.
	for _, p := range peaks {
		if p.IsMax && math.Abs(p.Value-2) > 0.01 {
			t.Fatalf("max peak value %v, want ~2", p.Value)
		}
		if !p.IsMax && math.Abs(p.Value+2) > 0.01 {
			t.Fatalf("min peak value %v, want ~-2", p.Value)
		}
	}
}

func TestFindPeaksIgnoresNoise(t *testing.T) {
	// A flat series with small noise must produce no peaks at a
	// prominence above the noise level.
	r := rng.New(3)
	n := 2000
	ts := make([]float64, n)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = float64(i)
		xs[i] = 0.01 * r.Norm()
	}
	if peaks := FindPeaks(ts, xs, 0.5); len(peaks) != 0 {
		t.Fatalf("found %d peaks in noise", len(peaks))
	}
}

func TestFindPeaksDegenerate(t *testing.T) {
	if FindPeaks(nil, nil, 1) != nil {
		t.Error("nil input should yield nil")
	}
	if FindPeaks([]float64{0, 1}, []float64{0, 1}, 1) != nil {
		t.Error("too-short input should yield nil")
	}
	if FindPeaks([]float64{0, 1}, []float64{0, 1, 2}, 1) != nil {
		t.Error("mismatched lengths should yield nil")
	}
}

func TestMeasureOscillationSine(t *testing.T) {
	ts, xs := sineSeries(10000, 5.0, 3.0)
	osc := MeasureOscillation(ts, xs, 10, 0.5)
	if math.Abs(osc.Amplitude-3) > 0.05 {
		t.Fatalf("amplitude %v, want ~3", osc.Amplitude)
	}
	if math.Abs(osc.Period-5) > 0.1 {
		t.Fatalf("period %v, want ~5", osc.Period)
	}
	if osc.NumCycles < 10 {
		t.Fatalf("cycles %d, want >= 10", osc.NumCycles)
	}
}

func TestMeasureOscillationConverged(t *testing.T) {
	// Exponentially decaying series: late window has no oscillation.
	n := 5000
	ts := make([]float64, n)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) * 0.01
		ts[i] = t
		xs[i] = 10 * math.Exp(-t) * math.Cos(2*math.Pi*t)
	}
	osc := MeasureOscillation(ts, xs, 30, 0.5)
	if osc.Amplitude != 0 {
		t.Fatalf("late amplitude %v, want 0", osc.Amplitude)
	}
	if !math.IsNaN(osc.Period) {
		t.Fatalf("late period %v, want NaN", osc.Period)
	}
}

func TestSwingOver(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4}
	xs := []float64{0, 10, -5, 3, 4}
	if got := SwingOver(ts, xs, 0); got != 15 {
		t.Fatalf("full swing = %v, want 15", got)
	}
	if got := SwingOver(ts, xs, 2.5); got != 1 {
		t.Fatalf("late swing = %v, want 1", got)
	}
	if got := SwingOver(ts, xs, 100); got != 0 {
		t.Fatalf("empty-window swing = %v, want 0", got)
	}
}
