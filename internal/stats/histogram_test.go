package stats

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/rng"
)

func TestHistogram1DValidation(t *testing.T) {
	if _, err := NewHistogram1D(0, 1, 0); err == nil {
		t.Error("accepted zero bins")
	}
	if _, err := NewHistogram1D(1, 1, 4); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := NewHistogram1D(0, math.Inf(1), 4); err == nil {
		t.Error("accepted infinite range")
	}
}

func TestHistogram1DBinning(t *testing.T) {
	h, err := NewHistogram1D(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)   // underflow
	h.Add(0)    // bin 0
	h.Add(1.99) // bin 0
	h.Add(5)    // bin 2
	h.Add(9.99) // bin 4
	h.Add(10)   // overflow (half-open range)
	h.Add(15)   // overflow
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	if h.Counts[0] != 2 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if got := h.BinCenter(2); got != 5 {
		t.Errorf("BinCenter(2) = %v, want 5", got)
	}
}

func TestHistogram1DDensityNormalization(t *testing.T) {
	h, err := NewHistogram1D(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Add(r.Float64())
	}
	d := h.Density()
	var integral float64
	for _, v := range d {
		integral += v * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral = %v, want 1", integral)
	}
	// Uniform density should be ~1 everywhere.
	for i, v := range d {
		if math.Abs(v-1) > 0.05 {
			t.Fatalf("bin %d density %v, want ~1", i, v)
		}
	}
	if m := h.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("Mean = %v, want ~0.5", m)
	}
}

func TestHistogram1DEmpty(t *testing.T) {
	h, err := NewHistogram1D(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range h.Density() {
		if v != 0 {
			t.Fatal("empty histogram density not zero")
		}
	}
	if !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram Mean should be NaN")
	}
}

func TestHistogram2DBasics(t *testing.T) {
	h, err := NewHistogram2D(0, 4, 4, -2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5, -1.9) // in range
	h.Add(3.9, 1.9)  // in range
	h.Add(4.0, 0)    // out (x at max)
	h.Add(-1, 0)     // out
	if h.OutOfRange != 2 {
		t.Errorf("OutOfRange = %d, want 2", h.OutOfRange)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
	var inRange int
	for _, c := range h.Counts {
		inRange += c
	}
	if inRange != 2 {
		t.Errorf("in-range count = %d, want 2", inRange)
	}
}

func TestHistogram2DValidation(t *testing.T) {
	if _, err := NewHistogram2D(0, 1, 0, 0, 1, 4); err == nil {
		t.Error("accepted zero binsX")
	}
	if _, err := NewHistogram2D(1, 0, 4, 0, 1, 4); err == nil {
		t.Error("accepted inverted range")
	}
}

func TestHistogram2DDensityAndMarginal(t *testing.T) {
	h, err := NewHistogram2D(0, 1, 8, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	const n = 200000
	for i := 0; i < n; i++ {
		h.Add(r.Float64(), r.Float64())
	}
	d := h.Density()
	var integral float64
	for _, v := range d {
		integral += v * h.CellArea()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("joint density integral = %v, want 1", integral)
	}
	mx := h.MarginalX()
	var mIntegral float64
	for _, v := range mx {
		mIntegral += v * (1.0 / 8)
	}
	if math.Abs(mIntegral-1) > 1e-9 {
		t.Fatalf("marginal integral = %v, want 1", mIntegral)
	}
	for i, v := range mx {
		if math.Abs(v-1) > 0.05 {
			t.Fatalf("marginal bin %d = %v, want ~1", i, v)
		}
	}
}

func TestL1DensityDistance(t *testing.T) {
	p := []float64{1, 0, 0, 0}
	q := []float64{0, 0, 0, 1}
	// With cell = 1 these are unit masses on disjoint cells: distance 2.
	got, err := L1DensityDistance(p, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("L1 = %v, want 2", got)
	}
	same, err := L1DensityDistance(p, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same != 0 {
		t.Fatalf("identical L1 = %v, want 0", same)
	}
	if _, err := L1DensityDistance(p, q[:3], 1); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := L1DensityDistance(p, q, 0); err == nil {
		t.Error("accepted zero cell")
	}
}

// Property: histogram total always equals in-range + under + over.
func TestHistogramAccountingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		h, err := NewHistogram1D(-10, 10, 16)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Add(float64(r) / 100)
		}
		var in int
		for _, c := range h.Counts {
			in += c
		}
		return h.Total() == in+h.Underflow+h.Overflow && h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
