package stats

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"fpcc/internal/rng"
)

func TestFFTValidation(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Error("accepted non-power-of-two length")
	}
	if err := FFT(nil); err == nil {
		t.Error("accepted empty input")
	}
}

// TestFFTKnownTransform: the FFT of a pure tone is a single line.
func TestFFTKnownTransform(t *testing.T) {
	const n = 64
	const k = 5 // tone bin
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/n))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k {
			if math.Abs(mag-n) > 1e-9 {
				t.Fatalf("bin %d magnitude %v, want %v", i, mag, float64(n))
			}
		} else if mag > 1e-9 {
			t.Fatalf("bin %d magnitude %v, want 0", i, mag)
		}
	}
}

// TestFFTMatchesDFT: cross-check against the O(n²) direct transform on
// random input.
func TestFFTMatchesDFT(t *testing.T) {
	const n = 32
	r := rng.New(9)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Norm(), r.Norm())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / n
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		want[k] = sum
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k := range x {
		if cmplx.Abs(x[k]-want[k]) > 1e-9 {
			t.Fatalf("bin %d: FFT %v vs DFT %v", k, x[k], want[k])
		}
	}
}

// TestFFTParseval: energy is preserved (Parseval's theorem) for random
// power-of-two lengths.
func TestFFTParseval(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%6) + 2 // lengths 4..128
		n := 1 << p
		r := rng.New(seed)
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(r.Norm(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodogramValidation(t *testing.T) {
	if _, _, err := Periodogram([]float64{1, 2}, 0.1); err == nil {
		t.Error("accepted too-short series")
	}
	if _, _, err := Periodogram(make([]float64, 16), 0); err == nil {
		t.Error("accepted zero dt")
	}
}

// TestDominantPeriodSine: a pure 5-second wave sampled at 100 Hz must
// yield a 5 s dominant period carrying most of the power.
func TestDominantPeriodSine(t *testing.T) {
	const dt = 0.01
	n := 4096
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 3 * math.Sin(2*math.Pi*float64(i)*dt/5)
	}
	period, frac, err := DominantPeriod(xs, dt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(period-5)/5 > 0.05 {
		t.Fatalf("dominant period %v, want ~5", period)
	}
	if frac < 0.8 {
		t.Fatalf("line power fraction %v, want concentrated", frac)
	}
}

// TestDominantPeriodNoise: white noise has no concentrated line.
func TestDominantPeriodNoise(t *testing.T) {
	r := rng.New(31)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Norm()
	}
	_, frac, err := DominantPeriod(xs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if frac > 0.1 {
		t.Fatalf("noise line fraction %v, want diffuse", frac)
	}
}

// TestDominantPeriodConstant: a constant series has no line at all.
func TestDominantPeriodConstant(t *testing.T) {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 7
	}
	period, _, err := DominantPeriod(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(period) {
		t.Fatalf("constant series period %v, want NaN", period)
	}
}

// TestSpectrumAgreesWithPeakDetection: the two oscillation-measurement
// paths (time-domain peaks and frequency-domain line) must agree on a
// clean periodic series.
func TestSpectrumAgreesWithPeakDetection(t *testing.T) {
	const dt = 0.01
	n := 8192
	ts := make([]float64, n)
	xs := make([]float64, n)
	for i := range xs {
		ts[i] = float64(i) * dt
		xs[i] = 10 + 4*math.Sin(2*math.Pi*ts[i]/7)
	}
	osc := MeasureOscillation(ts, xs, 0, 1)
	period, _, err := DominantPeriod(xs, dt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(osc.Period-period)/period > 0.05 {
		t.Fatalf("peak-detection period %v vs spectral period %v", osc.Period, period)
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	r := rng.New(1)
	for i := range x {
		x[i] = complex(r.Norm(), 0)
	}
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}
