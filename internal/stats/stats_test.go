package stats

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/rng"
)

func TestMomentsBasics(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) || !math.IsNaN(m.Variance()) || !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Fatal("empty Moments should report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d", m.Count())
	}
	if got := m.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := m.Variance(); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := m.StdDev(); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", m.Min(), m.Max())
	}
}

// Property: Welford mean/variance match the naive two-pass formulas.
func TestMomentsMatchNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var m Moments
		var sum float64
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 7
			m.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs))
		return math.Abs(m.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(m.Variance()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging arbitrarily split shards reproduces the
// single-pass accumulator over the whole stream.
func TestMomentsMergeMatchesSinglePass(t *testing.T) {
	f := func(raw []int16, splitRaw uint8) bool {
		var whole Moments
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 7
			whole.Add(xs[i])
		}
		split := 0
		if len(xs) > 0 {
			split = int(splitRaw) % (len(xs) + 1)
		}
		var a, b Moments
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if whole.Count() == 0 {
			return a.Count() == 0
		}
		close := func(got, want float64) bool {
			return math.Abs(got-want) < 1e-9*(1+math.Abs(want))
		}
		return a.Count() == whole.Count() &&
			close(a.Mean(), whole.Mean()) &&
			close(a.Variance(), whole.Variance()) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Merging into or from an empty accumulator is the identity, and a
// many-way chunked merge matches one pass (the meanfield SoA layout:
// fixed-size chunks, merged in chunk order).
func TestMomentsMergeChunked(t *testing.T) {
	r := rng.New(42)
	xs := make([]float64, 10000)
	var whole Moments
	for i := range xs {
		xs[i] = r.Norm()*3 + 1
		whole.Add(xs[i])
	}
	var merged Moments
	merged.Merge(Moments{}) // empty into empty: stays empty
	if merged.Count() != 0 {
		t.Fatal("merge of empties is not empty")
	}
	const chunk = 512
	for lo := 0; lo < len(xs); lo += chunk {
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		var part Moments
		for _, x := range xs[lo:hi] {
			part.Add(x)
		}
		merged.Merge(part)
	}
	merged.Merge(Moments{}) // empty shard is a no-op
	if merged.Count() != whole.Count() {
		t.Fatalf("Count = %d, want %d", merged.Count(), whole.Count())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("Variance = %v, want %v", merged.Variance(), whole.Variance())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("Min/Max = %v/%v, want %v/%v", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
}

func TestWeightedMoments(t *testing.T) {
	var m WeightedMoments
	if !math.IsNaN(m.Mean()) {
		t.Fatal("empty WeightedMoments should report NaN mean")
	}
	// Weighted observations equivalent to {1, 1, 5}.
	m.Add(1, 2)
	m.Add(5, 1)
	if got, want := m.Mean(), 7.0/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	wantVar := (2*(1-7.0/3)*(1-7.0/3) + (5-7.0/3)*(5-7.0/3)) / 3
	if got := m.Variance(); math.Abs(got-wantVar) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, wantVar)
	}
	if m.TotalWeight() != 3 {
		t.Fatalf("TotalWeight = %v", m.TotalWeight())
	}
	// Non-positive weights are ignored.
	m.Add(100, 0)
	m.Add(100, -5)
	if m.TotalWeight() != 3 {
		t.Fatal("non-positive weight was not ignored")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal allocations: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single user: %v, want 0.25", got)
	}
	if !math.IsNaN(JainIndex(nil)) {
		t.Fatal("empty input should be NaN")
	}
	if !math.IsNaN(JainIndex([]float64{0, 0})) {
		t.Fatal("all-zero input should be NaN")
	}
}

// Property: Jain index always lies in [1/n, 1] for non-negative
// allocations with at least one positive entry.
func TestJainIndexRangeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v, want 2", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range q did not panic")
		}
	}()
	Quantile(xs, 1.5)
}

func TestAutocorrelation(t *testing.T) {
	// A perfectly periodic series has lag-period autocorrelation ~1.
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 50)
	}
	if got := Autocorrelation(xs, 50); got < 0.9 {
		t.Fatalf("lag-50 autocorr of period-50 wave = %v, want ~1", got)
	}
	if got := Autocorrelation(xs, 25); got > -0.9 {
		t.Fatalf("half-period autocorr = %v, want ~-1", got)
	}
	if got := Autocorrelation(xs, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("lag-0 autocorr = %v, want 1", got)
	}
	if !math.IsNaN(Autocorrelation([]float64{1, 1, 1}, 1)) {
		t.Fatal("constant series should be NaN")
	}
	if !math.IsNaN(Autocorrelation(xs, -1)) {
		t.Fatal("negative lag should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{1}, 1)) {
		t.Fatal("too-short series should be NaN")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Norm()
	}
	if got := Autocorrelation(xs, 10); math.Abs(got) > 0.05 {
		t.Fatalf("white-noise lag-10 autocorr = %v, want ~0", got)
	}
}
