package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file implements Kolmogorov-Smirnov distribution comparisons,
// used by the experiments to test whether the Fokker-Planck marginal
// and the Monte-Carlo / Markov-chain queue distributions agree as
// whole distributions rather than only in their first two moments.

// KSOneSample returns the Kolmogorov-Smirnov statistic
// D = sup |F̂(x) − F(x)| of a sample against a reference CDF, plus
// the asymptotic p-value. The sample need not be sorted.
func KSOneSample(sample []float64, cdf func(float64) float64) (d, pValue float64, err error) {
	if len(sample) == 0 {
		return 0, 0, fmt.Errorf("stats: empty sample")
	}
	if cdf == nil {
		return 0, 0, fmt.Errorf("stats: nil reference CDF")
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	for i, x := range xs {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return 0, 0, fmt.Errorf("stats: reference CDF returned %v at %v", f, x)
		}
		if diff := math.Abs(float64(i+1)/n - f); diff > d {
			d = diff
		}
		if diff := math.Abs(f - float64(i)/n); diff > d {
			d = diff
		}
	}
	return d, ksPValue(math.Sqrt(n) * d), nil
}

// KSTwoSample returns the two-sample KS statistic
// D = sup |F̂₁(x) − F̂₂(x)| and the asymptotic p-value.
func KSTwoSample(a, b []float64) (d, pValue float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, fmt.Errorf("stats: empty sample (len %d, %d)", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := float64(len(as)), float64(len(bs))
	var i, j int
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	ne := na * nb / (na + nb)
	return d, ksPValue(math.Sqrt(ne) * d), nil
}

// ksPValue evaluates the asymptotic Kolmogorov survival function
// Q(λ) = 2·Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}, the limiting p-value of
// √n·D.
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	if lambda > 10 {
		return 0
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-16 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// CDFFromPMF converts a discrete pmf on points xs (ascending) into a
// right-continuous step CDF usable with KSOneSample.
func CDFFromPMF(xs, pmf []float64) (func(float64) float64, error) {
	if len(xs) == 0 || len(xs) != len(pmf) {
		return nil, fmt.Errorf("stats: pmf/support length mismatch %d vs %d", len(xs), len(pmf))
	}
	if !sort.Float64sAreSorted(xs) {
		return nil, fmt.Errorf("stats: pmf support must be ascending")
	}
	cum := make([]float64, len(pmf))
	var total float64
	for i, p := range pmf {
		if p < -1e-12 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: pmf[%d] = %v invalid", i, p)
		}
		total += p
		cum[i] = total
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("stats: pmf sums to %v, want 1", total)
	}
	for i := range cum {
		cum[i] /= total
	}
	support := append([]float64(nil), xs...)
	return func(x float64) float64 {
		k := sort.SearchFloat64s(support, x)
		if k < len(support) && support[k] == x {
			return cum[k]
		}
		if k == 0 {
			return 0
		}
		return cum[k-1]
	}, nil
}

// BatchMeans estimates the mean of a correlated stationary series and
// a confidence half-width by the method of batch means: split into
// nBatches equal batches, treat batch averages as approximately
// independent, and apply the normal approximation with the given z
// quantile (1.96 for 95%).
func BatchMeans(xs []float64, nBatches int, z float64) (mean, halfWidth float64, err error) {
	if nBatches < 2 {
		return 0, 0, fmt.Errorf("stats: need at least 2 batches, got %d", nBatches)
	}
	if len(xs) < 2*nBatches {
		return 0, 0, fmt.Errorf("stats: series of %d too short for %d batches", len(xs), nBatches)
	}
	if !(z > 0) {
		return 0, 0, fmt.Errorf("stats: z quantile must be positive, got %v", z)
	}
	size := len(xs) / nBatches
	means := make([]float64, nBatches)
	for b := 0; b < nBatches; b++ {
		var s float64
		for i := b * size; i < (b+1)*size; i++ {
			s += xs[i]
		}
		means[b] = s / float64(size)
	}
	var m Moments
	for _, v := range means {
		m.Add(v)
	}
	se := m.StdDev() / math.Sqrt(float64(nBatches))
	return m.Mean(), z * se, nil
}
