// Package stats provides the measurement toolkit shared by every
// experiment in the repository: running moments, histograms (1-D and
// 2-D), Jain's fairness index, oscillation metrics (peak detection,
// amplitude, period), autocorrelation, and density distances used to
// compare the Fokker-Planck solution against Monte-Carlo ensembles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates count, mean, variance and extremes online
// (Welford's algorithm), so a single pass over any stream of
// observations yields numerically stable moments. The zero value is
// ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Merge incorporates the observations summarized by other into m, as
// if every observation fed to other had been fed to m directly
// (Chan-Golub-LeVeque pairwise update of the Welford state). It lets
// shards of a partitioned stream — e.g. the SoA particle chunks of
// internal/meanfield — accumulate moments independently and combine
// them without a second pass over the data.
func (m *Moments) Merge(other Moments) {
	if other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = other
		return
	}
	if other.min < m.min {
		m.min = other.min
	}
	if other.max > m.max {
		m.max = other.max
	}
	na, nb := float64(m.n), float64(other.n)
	n := na + nb
	d := other.mean - m.mean
	m.mean += d * nb / n
	m.m2 += other.m2 + d*d*na*nb/n
	m.n += other.n
}

// Count returns the number of observations.
func (m *Moments) Count() int { return m.n }

// Mean returns the sample mean (NaN when empty).
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.mean
}

// Variance returns the population variance (NaN when empty).
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (NaN when empty).
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.min
}

// Max returns the largest observation (NaN when empty).
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.max
}

// WeightedMoments accumulates a weighted mean and variance, used for
// time-weighted averages (a queue-length sample weighted by how long
// the queue held that value). The zero value is ready to use.
type WeightedMoments struct {
	wsum float64
	mean float64
	m2   float64
}

// Add incorporates observation x with non-negative weight w; zero or
// negative weights are ignored.
func (m *WeightedMoments) Add(x, w float64) {
	if w <= 0 {
		return
	}
	m.wsum += w
	d := x - m.mean
	m.mean += d * w / m.wsum
	m.m2 += w * d * (x - m.mean)
}

// TotalWeight returns the accumulated weight.
func (m *WeightedMoments) TotalWeight() float64 { return m.wsum }

// Mean returns the weighted mean (NaN when no weight accumulated).
func (m *WeightedMoments) Mean() float64 {
	if m.wsum == 0 {
		return math.NaN()
	}
	return m.mean
}

// Variance returns the weighted population variance (NaN when empty).
func (m *WeightedMoments) Variance() float64 {
	if m.wsum == 0 {
		return math.NaN()
	}
	return m.m2 / m.wsum
}

// StdDev returns the weighted standard deviation.
func (m *WeightedMoments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// JainIndex returns Jain's fairness index of the allocations x:
// (Σx)² / (n·Σx²), which is 1 for perfectly equal allocations and
// 1/n when a single user takes everything. It returns NaN for empty
// input and for all-zero allocations.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(x)) * sumSq)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy. It panics
// if q is outside [0, 1] and returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0, 1]", q))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Autocorrelation returns the lag-k autocorrelation of xs, or NaN when
// it is undefined (fewer than k+2 points or zero variance).
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || n-k < 2 {
		return math.NaN()
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+k < n {
			num += d * (xs[i+k] - mean)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
