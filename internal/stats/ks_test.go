package stats

import (
	"math"
	"testing"

	"fpcc/internal/rng"
)

func uniformCDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

func TestKSOneSampleAcceptsMatchingDistribution(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	d, p, err := KSOneSample(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.05 {
		t.Errorf("D = %v for a true uniform sample", d)
	}
	if p < 0.01 {
		t.Errorf("p = %v rejects a correct null", p)
	}
}

func TestKSOneSampleRejectsWrongDistribution(t *testing.T) {
	// Squaring a uniform gives Beta(1/2, 1) — far from uniform.
	r := rng.New(2)
	xs := make([]float64, 2000)
	for i := range xs {
		u := r.Float64()
		xs[i] = u * u
	}
	d, p, err := KSOneSample(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.1 {
		t.Errorf("D = %v too small for a wrong null", d)
	}
	if p > 1e-6 {
		t.Errorf("p = %v fails to reject", p)
	}
}

func TestKSOneSampleValidation(t *testing.T) {
	if _, _, err := KSOneSample(nil, uniformCDF); err == nil {
		t.Error("empty sample: want error")
	}
	if _, _, err := KSOneSample([]float64{1}, nil); err == nil {
		t.Error("nil cdf: want error")
	}
	bad := func(float64) float64 { return 2 }
	if _, _, err := KSOneSample([]float64{1}, bad); err == nil {
		t.Error("invalid cdf: want error")
	}
}

func TestKSTwoSampleSameSource(t *testing.T) {
	r := rng.New(3)
	a := make([]float64, 1500)
	b := make([]float64, 1700)
	for i := range a {
		a[i] = r.Norm()
	}
	for i := range b {
		b[i] = r.Norm()
	}
	_, p, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("p = %v rejects identical distributions", p)
	}
}

func TestKSTwoSampleShiftedSource(t *testing.T) {
	r := rng.New(4)
	a := make([]float64, 1500)
	b := make([]float64, 1500)
	for i := range a {
		a[i] = r.Norm()
	}
	for i := range b {
		b[i] = r.Norm() + 0.5
	}
	d, p, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.1 || p > 1e-6 {
		t.Errorf("shifted samples not detected: D=%v p=%v", d, p)
	}
	if _, _, err := KSTwoSample(nil, b); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestKSPValueBounds(t *testing.T) {
	if p := ksPValue(0); p != 1 {
		t.Errorf("ksPValue(0) = %v, want 1", p)
	}
	if p := ksPValue(20); p != 0 {
		t.Errorf("ksPValue(20) = %v, want 0", p)
	}
	// Known value: Q(1.0) ≈ 0.27.
	if p := ksPValue(1); math.Abs(p-0.27) > 0.01 {
		t.Errorf("ksPValue(1) = %v, want ≈ 0.27", p)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := ksPValue(l)
		if p > prev+1e-12 {
			t.Fatalf("ksPValue not monotone at λ=%v", l)
		}
		prev = p
	}
}

func TestCDFFromPMF(t *testing.T) {
	cdf, err := CDFFromPMF([]float64{0, 1, 2}, []float64{0.2, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, want float64 }{
		{-1, 0}, {0, 0.2}, {0.5, 0.2}, {1, 0.7}, {1.5, 0.7}, {2, 1}, {5, 1},
	} {
		if got := cdf(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("cdf(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if _, err := CDFFromPMF([]float64{1, 0}, []float64{0.5, 0.5}); err == nil {
		t.Error("unsorted support: want error")
	}
	if _, err := CDFFromPMF([]float64{0, 1}, []float64{0.4, 0.4}); err == nil {
		t.Error("pmf not normalized: want error")
	}
	if _, err := CDFFromPMF(nil, nil); err == nil {
		t.Error("empty pmf: want error")
	}
	if _, err := CDFFromPMF([]float64{0, 1}, []float64{1.2, -0.2}); err == nil {
		t.Error("negative mass: want error")
	}
}

func TestBatchMeansIIDCoverage(t *testing.T) {
	// For iid normal data the 95% interval should cover the true mean
	// in the vast majority of replications.
	r := rng.New(5)
	covered := 0
	const reps = 200
	for rep := 0; rep < reps; rep++ {
		xs := make([]float64, 1000)
		for i := range xs {
			xs[i] = 3 + 2*r.Norm()
		}
		mean, hw, err := BatchMeans(xs, 20, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-3) <= hw {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.88 {
		t.Errorf("coverage %v, want ≈ 0.95", frac)
	}
}

func TestBatchMeansCorrelatedSeriesWiderInterval(t *testing.T) {
	// An AR(1)-style positively correlated series must produce a wider
	// interval than shuffle-equivalent iid noise of the same variance.
	r := rng.New(6)
	n := 4000
	ar := make([]float64, n)
	prev := 0.0
	for i := range ar {
		prev = 0.95*prev + r.Norm()
		ar[i] = prev
	}
	iid := make([]float64, n)
	for i := range iid {
		iid[i] = r.Norm()
	}
	_, hwAR, err := BatchMeans(ar, 20, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	_, hwIID, err := BatchMeans(iid, 20, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if hwAR < 2*hwIID {
		t.Errorf("correlated half-width %v not clearly wider than iid %v", hwAR, hwIID)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	xs := make([]float64, 100)
	if _, _, err := BatchMeans(xs, 1, 1.96); err == nil {
		t.Error("one batch: want error")
	}
	if _, _, err := BatchMeans(xs[:3], 2, 1.96); err == nil {
		t.Error("short series: want error")
	}
	if _, _, err := BatchMeans(xs, 10, 0); err == nil {
		t.Error("zero z: want error")
	}
}
