package stats

import (
	"math"
)

// Peak is a local maximum or minimum of a time series.
type Peak struct {
	T     float64 // time of the extremum
	Value float64 // series value there
	IsMax bool    // true for a maximum, false for a minimum
}

// FindPeaks locates alternating local extrema of the series (ts, xs)
// that are prominent relative to minProminence: a candidate maximum
// must exceed the preceding located minimum by at least minProminence
// (and symmetrically for minima). Small-ripple noise below the
// prominence threshold is ignored, which matters when the series
// comes from a stochastic simulation.
func FindPeaks(ts, xs []float64, minProminence float64) []Peak {
	n := len(xs)
	if n < 3 || len(ts) != n {
		return nil
	}
	var peaks []Peak
	// Track the running extremes since the last accepted peak.
	curMaxI, curMinI := 0, 0
	direction := 0 // +1 looking for max, -1 looking for min, 0 undetermined
	for i := 1; i < n; i++ {
		if xs[i] > xs[curMaxI] {
			curMaxI = i
		}
		if xs[i] < xs[curMinI] {
			curMinI = i
		}
		switch direction {
		case 0:
			if xs[i] >= xs[curMinI]+minProminence {
				direction = +1 // rising enough: first peak will be a max
				curMaxI = i
			} else if xs[i] <= xs[curMaxI]-minProminence {
				direction = -1
				curMinI = i
			}
		case +1:
			if xs[curMaxI]-xs[i] >= minProminence {
				peaks = append(peaks, Peak{T: ts[curMaxI], Value: xs[curMaxI], IsMax: true})
				direction = -1
				curMinI = i
			}
		case -1:
			if xs[i]-xs[curMinI] >= minProminence {
				peaks = append(peaks, Peak{T: ts[curMinI], Value: xs[curMinI], IsMax: false})
				direction = +1
				curMaxI = i
			}
		}
	}
	return peaks
}

// Oscillation summarizes sustained oscillation of a series.
type Oscillation struct {
	Amplitude float64 // mean peak-to-trough half-swing over the window
	Period    float64 // mean time between consecutive maxima
	NumCycles int     // number of full cycles observed
}

// MeasureOscillation estimates amplitude and period of the series
// (ts, xs) restricted to t >= tFrom, using peaks with the given
// prominence. A converged (non-oscillating) series yields zero
// amplitude and NaN period.
func MeasureOscillation(ts, xs []float64, tFrom, minProminence float64) Oscillation {
	// Restrict to the analysis window.
	start := 0
	for start < len(ts) && ts[start] < tFrom {
		start++
	}
	ts, xs = ts[start:], xs[start:]
	peaks := FindPeaks(ts, xs, minProminence)
	var maxima, minima []Peak
	for _, p := range peaks {
		if p.IsMax {
			maxima = append(maxima, p)
		} else {
			minima = append(minima, p)
		}
	}
	if len(maxima) < 2 || len(minima) < 1 {
		return Oscillation{Amplitude: 0, Period: math.NaN()}
	}
	// Amplitude: average |max − min| / 2 over adjacent extrema pairs.
	var ampSum float64
	var ampN int
	for i := 0; i+1 < len(peaks); i++ {
		ampSum += math.Abs(peaks[i].Value-peaks[i+1].Value) / 2
		ampN++
	}
	// Period: average spacing of maxima.
	var perSum float64
	for i := 1; i < len(maxima); i++ {
		perSum += maxima[i].T - maxima[i-1].T
	}
	return Oscillation{
		Amplitude: ampSum / float64(ampN),
		Period:    perSum / float64(len(maxima)-1),
		NumCycles: len(maxima) - 1,
	}
}

// SwingOver returns max − min of the series restricted to t >= tFrom —
// a cruder but assumption-free oscillation measure (0 for a converged
// series up to numerical residue).
func SwingOver(ts, xs []float64, tFrom float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, t := range ts {
		if t < tFrom {
			continue
		}
		if xs[i] < lo {
			lo = xs[i]
		}
		if xs[i] > hi {
			hi = xs[i]
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
