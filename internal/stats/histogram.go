package stats

import (
	"fmt"
	"math"
)

// Histogram1D is a fixed-range histogram over [Min, Max) with uniform
// bins. Out-of-range observations are counted in the under/overflow
// tallies, never silently dropped.
type Histogram1D struct {
	Min, Max  float64
	Counts    []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram1D builds a histogram. It returns an error if bins < 1
// or the range is empty or not finite.
func NewHistogram1D(min, max float64, bins int) (*Histogram1D, error) {
	switch {
	case bins < 1:
		return nil, fmt.Errorf("stats: need at least one bin, got %d", bins)
	case !(max > min):
		return nil, fmt.Errorf("stats: empty histogram range [%v, %v]", min, max)
	case math.IsInf(min, 0) || math.IsInf(max, 0) || math.IsNaN(min) || math.IsNaN(max):
		return nil, fmt.Errorf("stats: non-finite histogram range [%v, %v]", min, max)
	}
	return &Histogram1D{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// BinWidth returns the width of each bin.
func (h *Histogram1D) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// Add records one observation.
func (h *Histogram1D) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Underflow++
	case x >= h.Max:
		h.Overflow++
	default:
		i := int((x - h.Min) / h.BinWidth())
		if i >= len(h.Counts) { // floating-point edge at x just below Max
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including out-of-range.
func (h *Histogram1D) Total() int { return h.total }

// BinCenter returns the center coordinate of bin i.
func (h *Histogram1D) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized density estimate: Counts scaled so
// the histogram integrates to the in-range probability mass
// (in-range count / total). An empty histogram returns all zeros.
func (h *Histogram1D) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.total) * w)
	}
	return d
}

// Mean returns the histogram mean estimated from bin centers (NaN when
// no in-range mass).
func (h *Histogram1D) Mean() float64 {
	var sum float64
	var n int
	for i, c := range h.Counts {
		sum += float64(c) * h.BinCenter(i)
		n += c
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Histogram2D is a fixed-range 2-D histogram used to estimate the
// joint density f(q, v) from particle ensembles. Values are stored
// row-major: index = ix*BinsY + iy.
type Histogram2D struct {
	MinX, MaxX float64
	MinY, MaxY float64
	BinsX      int
	BinsY      int
	Counts     []int
	OutOfRange int
	total      int
}

// NewHistogram2D builds a 2-D histogram.
func NewHistogram2D(minX, maxX float64, binsX int, minY, maxY float64, binsY int) (*Histogram2D, error) {
	switch {
	case binsX < 1 || binsY < 1:
		return nil, fmt.Errorf("stats: need at least one bin per axis, got %dx%d", binsX, binsY)
	case !(maxX > minX) || !(maxY > minY):
		return nil, fmt.Errorf("stats: empty histogram range")
	}
	return &Histogram2D{
		MinX: minX, MaxX: maxX, MinY: minY, MaxY: maxY,
		BinsX: binsX, BinsY: binsY,
		Counts: make([]int, binsX*binsY),
	}, nil
}

// Add records one observation.
func (h *Histogram2D) Add(x, y float64) {
	h.total++
	if x < h.MinX || x >= h.MaxX || y < h.MinY || y >= h.MaxY {
		h.OutOfRange++
		return
	}
	ix := int((x - h.MinX) / (h.MaxX - h.MinX) * float64(h.BinsX))
	iy := int((y - h.MinY) / (h.MaxY - h.MinY) * float64(h.BinsY))
	if ix >= h.BinsX {
		ix = h.BinsX - 1
	}
	if iy >= h.BinsY {
		iy = h.BinsY - 1
	}
	h.Counts[ix*h.BinsY+iy]++
}

// Total returns the number of observations including out-of-range.
func (h *Histogram2D) Total() int { return h.total }

// CellArea returns the area of one cell.
func (h *Histogram2D) CellArea() float64 {
	return (h.MaxX - h.MinX) / float64(h.BinsX) * (h.MaxY - h.MinY) / float64(h.BinsY)
}

// Density returns the normalized joint density estimate (integrates to
// the in-range mass fraction).
func (h *Histogram2D) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	a := h.CellArea()
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.total) * a)
	}
	return d
}

// MarginalX returns the marginal density over the x axis.
func (h *Histogram2D) MarginalX() []float64 {
	m := make([]float64, h.BinsX)
	if h.total == 0 {
		return m
	}
	wx := (h.MaxX - h.MinX) / float64(h.BinsX)
	for ix := 0; ix < h.BinsX; ix++ {
		var c int
		for iy := 0; iy < h.BinsY; iy++ {
			c += h.Counts[ix*h.BinsY+iy]
		}
		m[ix] = float64(c) / (float64(h.total) * wx)
	}
	return m
}

// L1DensityDistance integrates |p − q| over the common support of two
// densities sampled on the same uniform grid with cell size cell.
// Identical densities give 0; disjoint unit-mass densities give 2.
func L1DensityDistance(p, q []float64, cell float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: density length mismatch %d vs %d", len(p), len(q))
	}
	if !(cell > 0) {
		return 0, fmt.Errorf("stats: non-positive cell size %v", cell)
	}
	var sum float64
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum * cell, nil
}
