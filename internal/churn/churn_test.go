package churn

import (
	"math"
	"testing"

	"fpcc/internal/rng"
)

// TestExponentialPhasesExact pins the exponential lifetime's phase
// representation: exactly one phase at hazard 1/mean, so the density
// engines evolve the distribution without approximation.
func TestExponentialPhasesExact(t *testing.T) {
	e, err := NewExponential(12.5)
	if err != nil {
		t.Fatal(err)
	}
	ph := e.Phases()
	if len(ph) != 1 {
		t.Fatalf("exponential has %d phases, want 1", len(ph))
	}
	if ph[0].Weight != 1 || ph[0].Rate != 1/12.5 {
		t.Errorf("phase = %+v, want weight 1, rate %v", ph[0], 1/12.5)
	}
	if err := ValidatePhases(ph, e.Mean()); err != nil {
		t.Error(err)
	}
}

// TestParetoPhasesContract property-tests the hyperexponential fit
// over a grid of shapes and scales: valid phases, the mixture mean
// preserved to near machine precision, and the model ccdf within a
// small constant factor of the true Pareto tail over three decades.
func TestParetoPhasesContract(t *testing.T) {
	for _, alpha := range []float64{1.2, 1.5, 2, 3, 5} {
		for _, xm := range []float64{0.5, 2, 10} {
			p, err := NewPareto(alpha, xm)
			if err != nil {
				t.Fatal(err)
			}
			ph := p.Phases()
			if err := ValidatePhases(ph, p.Mean()); err != nil {
				t.Errorf("α=%v xm=%v: %v", alpha, xm, err)
				continue
			}
			var mixMean float64
			for _, q := range ph {
				mixMean += q.Weight / q.Rate
			}
			if rel := math.Abs(mixMean-p.Mean()) / p.Mean(); rel > 1e-9 {
				t.Errorf("α=%v xm=%v: mixture mean off by %.2e relative", alpha, xm, rel)
			}
			// Tail accuracy in the heavy-tailed regime α ≤ 2 (cv² ≥ 1,
			// where a hyperexponential can represent the shape): the fit
			// anchors the top three decades of the tail, so hold the
			// model ccdf within a factor of 3 of the truth at the
			// quantiles spanning them. For α > 2 the distribution is
			// LESS variable than an exponential, no exponential mixture
			// can match it, and only the exact mean is promised.
			if alpha > 2 {
				continue
			}
			for _, lvl := range []float64{0.3, 0.1, 0.03, 0.01, 0.003, 0.001} {
				x := xm * math.Pow(lvl, -1/alpha) // ccdf(x) = lvl
				var model float64
				for _, q := range ph {
					model += q.Weight * math.Exp(-q.Rate*x)
				}
				if ratio := model / lvl; ratio < 1.0/3 || ratio > 3 {
					t.Errorf("α=%v xm=%v: ccdf at level %v off by factor %.2f", alpha, xm, lvl, ratio)
				}
			}
		}
	}
}

// TestParetoSampleMoments checks the exact sampler against the
// analytic mean and the scale floor.
func TestParetoSampleMoments(t *testing.T) {
	p, err := NewPareto(2.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := p.Sample(r)
		if x < p.XMin() {
			t.Fatalf("sample %v below scale %v", x, p.XMin())
		}
		sum += x
	}
	if got, want := sum/n, p.Mean(); math.Abs(got-want)/want > 0.02 {
		t.Errorf("sample mean %v, want %v within 2%%", got, want)
	}
}

// TestExponentialSampleMean holds the memoryless sampler to its mean.
func TestExponentialSampleMean(t *testing.T) {
	e, err := NewExponential(4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += e.Sample(r)
	}
	if got := sum / n; math.Abs(got-4)/4 > 0.02 {
		t.Errorf("sample mean %v, want 4 within 2%%", got)
	}
}

// TestConstructorValidation rejects the parameterizations the open
// system cannot close on: infinite-mean Pareto (α ≤ 1), non-positive
// scales and means.
func TestConstructorValidation(t *testing.T) {
	if _, err := NewPareto(1, 1); err == nil {
		t.Error("α = 1 (infinite mean) accepted")
	}
	if _, err := NewPareto(0.5, 1); err == nil {
		t.Error("α < 1 accepted")
	}
	if _, err := NewPareto(2, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewExponential(0); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := NewExponential(math.Inf(1)); err == nil {
		t.Error("infinite mean accepted")
	}
}

// TestFlowValidate covers the open-system descriptor's checks,
// including Little's-law bookkeeping.
func TestFlowValidate(t *testing.T) {
	life, err := NewExponential(10)
	if err != nil {
		t.Fatal(err)
	}
	f := &Flow{Arrival: 5, Lifetime: life, Lambda0: 0.5, InitStd: 0.1}
	if err := f.Validate(4); err != nil {
		t.Fatalf("valid flow rejected: %v", err)
	}
	if got := f.MeanPopulation(); got != 50 {
		t.Errorf("MeanPopulation = %v, want 50", got)
	}
	bad := []Flow{
		{Arrival: -1, Lifetime: life},
		{Arrival: 1, Lifetime: nil},
		{Arrival: 1, Lifetime: life, Lambda0: 5}, // above lMax=4
		{Arrival: 1, Lifetime: life, InitStd: -1},
	}
	for i := range bad {
		if err := bad[i].Validate(4); err == nil {
			t.Errorf("bad flow %d accepted", i)
		}
	}
}

// TestPulseEnvelope pins the deterministic duty cycle and its
// agreement with the packet-engine modulator twin.
func TestPulseEnvelope(t *testing.T) {
	p, err := NewPulse(2, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 2}, {0.99, 2}, {1.0, 0}, {3.99, 0}, {4.0, 2}, {5.5, 0},
	}
	for _, c := range cases {
		if got := p.FactorAt(c.t); got != c.want {
			t.Errorf("FactorAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := p.MeanFactor(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanFactor = %v, want 0.5", got)
	}
	m := p.Modulator()
	if m.States() != 2 || m.Factor(0) != 2 || m.Factor(1) != 0 {
		t.Errorf("modulator twin disagrees with the envelope")
	}
	if _, err := NewPulse(-1, 0, 1, 1); err == nil {
		t.Error("negative factor accepted")
	}
}

// TestValidatePhasesRejects covers the contract checker's refusals.
func TestValidatePhasesRejects(t *testing.T) {
	if err := ValidatePhases(nil, 1); err == nil {
		t.Error("empty phase list accepted")
	}
	if err := ValidatePhases([]Phase{{Weight: 0.5, Rate: 1}}, 0.5); err == nil {
		t.Error("weights summing to 0.5 accepted")
	}
	if err := ValidatePhases([]Phase{{Weight: 1, Rate: 0}}, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if err := ValidatePhases([]Phase{{Weight: 1, Rate: 1}}, 2); err == nil {
		t.Error("mean-violating mixture accepted")
	}
}
