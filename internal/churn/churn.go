// Package churn opens the simulated system: instead of a fixed,
// closed population of sources, flows are born by a Poisson arrival
// process and die after a random session lifetime. The package holds
// the vocabulary every engine family shares — lifetime distributions,
// the open-system class descriptor, and the deterministic blaster
// envelope — while each engine keeps its own mechanics:
//
//   - the packet engines (internal/netsim) draw exact per-session
//     lifetimes with Lifetime.Sample and emit per-flow birth/death
//     events;
//   - the kinetic engines (internal/meanfield, internal/netmf) need a
//     Markovian representation of the same distribution to keep the
//     density evolution local in time, so every Lifetime also exposes
//     Phases(): a hyperexponential mixture a newborn is routed into,
//     each phase dying at a constant hazard. For the exponential
//     distribution the representation is exact (one phase); for the
//     heavy-tailed Pareto it is a Feldmann–Whitt-style tail fit with
//     the mean preserved exactly, so Little's-law population targets
//     agree across engine families to rounding.
//
// The mean-field limit of the open M/G/∞-style population is a
// birth–death source term on each class's rate density: newborn mass
// is deposited at a configurable λ₀ profile at the normalized rate
// Arrival/N, and each phase's mass decays at its hazard. The engines
// keep a cumulative born/died ledger so the transport mass budget
// stays auditable (∫f = initial + clipped + born − died).
package churn

import (
	"fmt"
	"math"

	"fpcc/internal/rng"
)

// Phase is one exponential stage of a hyperexponential lifetime
// representation: a newborn flow enters the phase with probability
// Weight and departs at constant hazard Rate.
type Phase struct {
	Weight float64
	Rate   float64
}

// Lifetime is a session-lifetime distribution, usable by both engine
// families: the packet engines draw exact samples, the kinetic
// engines use the phase representation.
type Lifetime interface {
	// Name is a short identifier used in reports ("exp", "pareto").
	Name() string
	// Mean returns the expected lifetime E[L] (finite by
	// construction; open systems need Little's law to close).
	Mean() float64
	// Sample draws one lifetime from the exact distribution.
	Sample(r *rng.Source) float64
	// Phases returns the hyperexponential representation the density
	// engines evolve: weights sum to 1, rates are positive, and the
	// mixture mean Σ wᵢ/rᵢ equals Mean() exactly. The tail may be
	// approximate (it is for Pareto); the mean never is.
	Phases() []Phase
}

// Exponential is the memoryless lifetime: the one distribution whose
// phase representation is exact, which makes it the reference for the
// packet-vs-density cross-check tests.
type Exponential struct {
	mean float64
}

// NewExponential validates and returns an exponential lifetime with
// the given mean.
func NewExponential(mean float64) (Exponential, error) {
	if !(mean > 0) || math.IsInf(mean, 1) {
		return Exponential{}, fmt.Errorf("churn: exponential mean lifetime must be positive and finite, got %v", mean)
	}
	return Exponential{mean: mean}, nil
}

// Name implements Lifetime.
func (e Exponential) Name() string { return "exp" }

// Mean implements Lifetime.
func (e Exponential) Mean() float64 { return e.mean }

// Sample implements Lifetime.
func (e Exponential) Sample(r *rng.Source) float64 { return r.Exp(1 / e.mean) }

// Phases implements Lifetime: a single phase at hazard 1/mean.
func (e Exponential) Phases() []Phase {
	return []Phase{{Weight: 1, Rate: 1 / e.mean}}
}

// Pareto is the heavy-tailed lifetime of measured flow-size and
// session-duration distributions: ccdf (xm/x)^α for x ≥ xm. The mean
// α·xm/(α−1) must be finite, so α > 1 is required. Phases() returns a
// hyperexponential fitted to the tail (computed once at
// construction); Sample draws from the exact distribution.
//
// The phase fit targets the heavy-tailed regime 1 < α ≤ 2 (cv² ≥ 1),
// where it tracks the true ccdf within a small constant factor over
// the top three decades of the tail. For α > 2 the Pareto is LESS
// variable than an exponential and no exponential mixture can match
// its shape; the fit then degrades gracefully toward a single
// exponential, still preserving the mean exactly.
type Pareto struct {
	alpha, xm float64
	phases    []Phase
}

// NewPareto validates and returns a Pareto lifetime with shape alpha
// (> 1, finite mean) and scale xm (the minimum lifetime).
func NewPareto(alpha, xm float64) (Pareto, error) {
	switch {
	case !(alpha > 1) || math.IsInf(alpha, 1):
		return Pareto{}, fmt.Errorf("churn: Pareto shape must satisfy α > 1 (finite mean), got %v", alpha)
	case !(xm > 0) || math.IsInf(xm, 1):
		return Pareto{}, fmt.Errorf("churn: Pareto scale must be positive and finite, got %v", xm)
	}
	return Pareto{alpha: alpha, xm: xm, phases: fitPareto(alpha, xm)}, nil
}

// Name implements Lifetime.
func (p Pareto) Name() string { return "pareto" }

// Alpha returns the shape parameter.
func (p Pareto) Alpha() float64 { return p.alpha }

// XMin returns the scale parameter (the minimum lifetime).
func (p Pareto) XMin() float64 { return p.xm }

// Mean implements Lifetime.
func (p Pareto) Mean() float64 { return p.alpha * p.xm / (p.alpha - 1) }

// Sample implements Lifetime by inversion: xm·U^(−1/α) with
// U ∈ (0, 1].
func (p Pareto) Sample(r *rng.Source) float64 {
	u := 1 - r.Float64() // (0, 1]: avoids the U=0 pole
	return p.xm * math.Pow(u, -1/p.alpha)
}

// Phases implements Lifetime. The slice is shared and must not be
// mutated.
func (p Pareto) Phases() []Phase { return p.phases }

// fitPareto builds the hyperexponential tail fit, Feldmann–Whitt
// style: working from the largest time scale inward, each anchor
// contributes one phase matched to the residual ccdf at two points
// (x and q·x), and a closing phase absorbs the remaining probability
// with its rate chosen so the mixture mean equals the Pareto mean
// exactly. The fit is fully deterministic.
func fitPareto(alpha, xm float64) []Phase {
	mean := alpha * xm / (alpha - 1)
	ccdf := func(x float64) float64 {
		if x <= xm {
			return 1
		}
		return math.Pow(xm/x, alpha)
	}
	// Anchors at fixed ccdf levels (tail quantiles), deepest first, so
	// the fit spans the top three decades of the tail whatever the
	// shape: phase k is matched to the residual ccdf at the points
	// where the true tail crosses 10^−k and 10^−(k−1/2).
	var phases []Phase
	resid := func(x float64) float64 {
		g := ccdf(x)
		for _, p := range phases {
			g -= p.Weight * math.Exp(-p.Rate*x)
		}
		return g
	}
	var sumW, sumMean float64
	for _, k := range [...]float64{3, 2, 1} {
		x1 := xm * math.Pow(10, k/alpha)       // ccdf(x1) = 10^−k
		x2 := xm * math.Pow(10, (k-0.5)/alpha) // ccdf(x2) = 10^−(k−1/2)
		g1, g2 := resid(x1), resid(x2)
		if !(g1 > 1e-12) || !(g2 > g1) {
			continue // tail already captured at this scale
		}
		r := math.Log(g2/g1) / (x1 - x2)
		w := g1 * math.Exp(r*x1)
		if !(r > 0) || !(w > 0) || sumW+w >= 1 {
			continue
		}
		phases = append(phases, Phase{Weight: w, Rate: r})
		sumW += w
		sumMean += w / r
	}
	// Closing phase: remaining weight at the rate that makes the
	// mixture mean exact. If the tail phases already spent the mean
	// budget (possible only for degenerate shapes), collapse to the
	// single-phase exponential of the same mean.
	wK := 1 - sumW
	mK := mean - sumMean
	if !(wK > 0) || !(mK > 0) {
		return []Phase{{Weight: 1, Rate: 1 / mean}}
	}
	return append(phases, Phase{Weight: wK, Rate: wK / mK})
}

// ValidatePhases checks the contract Phases() promises: weights
// positive and summing to 1, rates positive and finite, mixture mean
// equal to mean within tolerance. The kinetic engines run it when
// building their kernels so a broken custom Lifetime fails at
// configuration time.
func ValidatePhases(ph []Phase, mean float64) error {
	if len(ph) == 0 {
		return fmt.Errorf("churn: lifetime has no phases")
	}
	var sumW, sumMean float64
	for i, p := range ph {
		if !(p.Weight > 0) || p.Weight > 1 {
			return fmt.Errorf("churn: phase %d has invalid weight %v", i, p.Weight)
		}
		if !(p.Rate > 0) || math.IsInf(p.Rate, 1) {
			return fmt.Errorf("churn: phase %d has invalid rate %v", i, p.Rate)
		}
		sumW += p.Weight
		sumMean += p.Weight / p.Rate
	}
	if math.Abs(sumW-1) > 1e-9 {
		return fmt.Errorf("churn: phase weights sum to %v, want 1", sumW)
	}
	if math.Abs(sumMean-mean) > 1e-6*math.Max(1, mean) {
		return fmt.Errorf("churn: phase mixture mean %v does not preserve lifetime mean %v", sumMean, mean)
	}
	return nil
}
