package churn

import (
	"fmt"
	"math"

	"fpcc/internal/traffic"
)

// Flow opens one class of an engine: sessions are born by a Poisson
// process at Arrival flows/s and each lives an independent Lifetime.
// In the kinetic engines the class's configured population N is the
// population at t = 0 and the live population thereafter is
// N·(1 + born − died) with born/died tracked as normalized mass; in
// the packet engines N0 initial sessions are instantiated and each
// birth/death is an explicit event. The steady-state population is
// Little's law: Arrival · Lifetime.Mean().
type Flow struct {
	// Arrival is the Poisson session-birth rate in flows/s. Zero is
	// allowed (a draining population: deaths only).
	Arrival float64
	// Lifetime is the session-lifetime distribution.
	Lifetime Lifetime
	// Lambda0 and InitStd shape the newborn rate profile: a Gaussian
	// blob clipped to the engine's rate grid (InitStd = 0 is a point
	// mass). Newborns typically enter slow (small Lambda0) and ramp up
	// under the class's control law.
	Lambda0 float64
	InitStd float64
}

// Validate checks the open-system parameters; lMax bounds the newborn
// profile's center to the engine's rate domain.
func (f *Flow) Validate(lMax float64) error {
	switch {
	case f == nil:
		return nil
	case !(f.Arrival >= 0) || math.IsInf(f.Arrival, 1):
		return fmt.Errorf("churn: invalid arrival rate %v", f.Arrival)
	case f.Lifetime == nil:
		return fmt.Errorf("churn: nil lifetime")
	case !(f.Lambda0 >= 0) || f.Lambda0 > lMax:
		return fmt.Errorf("churn: newborn rate %v outside [0, %v]", f.Lambda0, lMax)
	case !(f.InitStd >= 0) || math.IsInf(f.InitStd, 1):
		return fmt.Errorf("churn: invalid newborn spread %v", f.InitStd)
	}
	return ValidatePhases(f.Lifetime.Phases(), f.Lifetime.Mean())
}

// MeanPopulation returns the Little's-law steady-state population
// Arrival · E[Lifetime].
func (f *Flow) MeanPopulation() float64 {
	return f.Arrival * f.Lifetime.Mean()
}

// Pulse is the deterministic duty-cycle envelope of a synchronized
// on/off blaster population: factor Hi for On seconds, Lo for Off
// seconds, repeating from t = 0, every attacker in phase. It is the
// density-engine view of a population of traffic.SquareWave-modulated
// sources — in the mean-field limit a population of DESYNCHRONIZED
// on/off sources averages to its mean factor (only the mean enters
// the queue coupling), so the interesting adversarial limit is the
// fully synchronized pulse, which is also the worst case for the
// queue. Modulator() returns the per-source twin for the packet
// engines.
type Pulse struct {
	sw traffic.SquareWave
}

// NewPulse validates (via traffic.NewSquareWave) and returns a pulse
// envelope: factor hi for durHi seconds, then lo for durLo, repeating.
func NewPulse(hi, lo, durHi, durLo float64) (*Pulse, error) {
	sw, err := traffic.NewSquareWave(hi, lo, durHi, durLo)
	if err != nil {
		return nil, err
	}
	return &Pulse{sw: *sw}, nil
}

// FactorAt returns the envelope's rate multiplier at time t.
func (p *Pulse) FactorAt(t float64) float64 {
	period := p.sw.DurHi + p.sw.DurLo
	ph := math.Mod(t, period)
	if ph < 0 {
		ph += period
	}
	if ph < p.sw.DurHi {
		return p.sw.Hi
	}
	return p.sw.Lo
}

// MeanFactor returns the time-average multiplier.
func (p *Pulse) MeanFactor() float64 { return p.sw.MeanFactor() }

// Modulator returns the per-source packet-engine twin: a
// traffic.SquareWave with the same factors and durations, for
// des.SourceConfig.Burst / netsim.Flow.Burst.
func (p *Pulse) Modulator() traffic.Modulator {
	sw := p.sw
	return &sw
}
