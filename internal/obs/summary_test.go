package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestHistBuckets pins the log₂ bucketing: each sample lands in the
// bucket whose bound is the smallest power of two ≥ the sample, and
// non-positive/NaN samples land in the zero bucket.
func TestHistBuckets(t *testing.T) {
	cases := []struct {
		v     float64
		bound float64
	}{
		{0.75, 1}, {1, 1}, {1.5, 2}, {2, 2}, {3, 4}, {1024, 1024},
		{0.25, 0.25}, {0.3, 0.5},
		{0, 0}, {-5, 0}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := BucketBound(histBucket(c.v)); got != c.bound {
			t.Errorf("bucket bound of %g = %g, want %g", c.v, got, c.bound)
		}
	}
	// Extreme magnitudes clamp instead of minting unbounded buckets.
	if b := histBucket(math.MaxFloat64); b > bucketMax {
		t.Errorf("huge sample bucket %d exceeds clamp %d", b, bucketMax)
	}
	if b := histBucket(math.SmallestNonzeroFloat64); b < bucketMin {
		t.Errorf("tiny sample bucket %d below clamp %d", b, bucketMin)
	}
}

// TestSummarySnapshot pins the Summary tree shape: per-recorder
// aggregates, sparse ascending histogram buckets, worker-summed
// spans, and children sorted by scope.
func TestSummarySnapshot(t *testing.T) {
	r := (&Config{}).Recorder("root")
	r.Count("events", 3)
	r.Gauge("level", 0.5)
	r.Probe("series", 1.0, 42)
	r.Probe("series", 2.0, 43)
	r.Observe("lat", 0.75)
	r.Observe("lat", 3)
	cb := r.Child("b")
	ca := r.Child("a")
	ca.Count("events", 1)
	cb.Count("events", 2)

	s := r.Summary()
	if s.Scope != "root" || s.Counters["events"] != 3 {
		t.Fatalf("bad root snapshot: %+v", s)
	}
	p := s.Probes["series"]
	if p.Count != 2 || p.Last != 43 || p.LastT != 2.0 {
		t.Errorf("probe summary = %+v, want count 2 last 43 at t=2", p)
	}
	h := s.Hists["lat"]
	if h.Count != 2 || h.Sum != 3.75 || h.Min != 0.75 || h.Max != 3 {
		t.Errorf("hist summary = %+v", h)
	}
	if want := []float64{1, 4}; !reflect.DeepEqual(h.Le, want) {
		t.Errorf("hist bounds = %v, want %v", h.Le, want)
	}
	if want := []int64{1, 1}; !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("hist counts = %v, want %v", h.Counts, want)
	}
	if len(s.Children) != 2 || s.Children[0].Scope != "root/a" || s.Children[1].Scope != "root/b" {
		t.Fatalf("children not sorted by scope: %+v", s.Children)
	}

	roll := s.Rollup()
	if roll.Counters["events"] != 6 {
		t.Errorf("rolled-up counter = %d, want 6", roll.Counters["events"])
	}
	if roll.Children != nil {
		t.Error("rollup must flatten children")
	}
}

// TestSummaryDeterministicJSON requires two identically-fed recorders
// to marshal byte-identical manifests — the contract that makes
// summary diffs meaningful.
func TestSummaryDeterministicJSON(t *testing.T) {
	build := func(seed int) []byte {
		r := (&Config{}).Recorder("run")
		// Insertion order varies with seed; the snapshot must not.
		names := []string{"a", "b", "c", "d"}
		for i := range names {
			n := names[(i+seed)%len(names)]
			r.Count(n, int64(len(n)))
			r.Observe("h."+n, float64(strings.IndexByte("abcd", n[0])+1))
			r.Child(n).Count("inner", 1)
		}
		raw, err := json.Marshal(r.Summary())
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := build(0), b2(build); !bytes.Equal(a, b) {
		t.Errorf("summaries differ across insertion orders:\n%s\n%s", a, b)
	}
}

func b2(build func(int) []byte) []byte { return build(2) }

// TestRollupMergesHistograms pins the bucket-wise merge-join: two
// children with overlapping and disjoint buckets roll up into one
// ascending sparse histogram with summed counts.
func TestRollupMergesHistograms(t *testing.T) {
	r := (&Config{}).Recorder("run")
	a, b := r.Child("a"), r.Child("b")
	a.Observe("h", 1)   // bucket 1
	a.Observe("h", 3)   // bucket 4
	b.Observe("h", 2)   // bucket 2
	b.Observe("h", 3.5) // bucket 4
	roll := r.Summary().Rollup()
	h := roll.Hists["h"]
	if h.Count != 4 || h.Min != 1 || h.Max != 3.5 {
		t.Fatalf("merged hist = %+v", h)
	}
	if want := []float64{1, 2, 4}; !reflect.DeepEqual(h.Le, want) {
		t.Errorf("merged bounds = %v, want %v", h.Le, want)
	}
	if want := []int64{1, 1, 2}; !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("merged counts = %v, want %v", h.Counts, want)
	}
}

// TestFlightRingWraparound fills a small ring past capacity and
// checks the snapshot keeps exactly the newest events, oldest first.
func TestFlightRingWraparound(t *testing.T) {
	r := (&Config{FlightRecorder: 4, Invariants: true}).Recorder("x")
	for i := 0; i < 10; i++ {
		r.Probe("p", float64(i), float64(i))
	}
	err := r.Violationf(11, 11, "x.f", "boom")
	v := err.(*Violation)
	if len(v.Recent) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(v.Recent))
	}
	for i, ev := range v.Recent {
		if want := float64(6 + i); ev.T != want {
			t.Errorf("ring[%d].T = %g, want %g (newest 4, oldest first)", i, ev.T, want)
		}
	}
	if !strings.Contains(v.Error(), "4 preceding events") {
		t.Errorf("violation error does not mention the dump: %v", v)
	}
}

// TestSpanSecondsDeterministic pins the satellite fix: Phases maps
// built from identical span activity are equal however goroutines
// interleaved, because accumulation iterates keys in sorted order.
func TestSpanSecondsDeterministic(t *testing.T) {
	build := func() map[string]float64 {
		r := (&Config{}).Recorder("x")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					r.WorkerSpan("step", w).End()
					r.WorkerSpan("render", w).End()
				}
			}(w)
		}
		wg.Wait()
		return r.SpanSeconds()
	}
	a, b := build(), build()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("span names lost: %v %v", a, b)
	}
	for _, m := range []map[string]float64{a, b} {
		for name, sec := range m {
			if sec < 0 {
				t.Errorf("%s accumulated negative time %g", name, sec)
			}
		}
	}
}

// TestResourcesDelta checks ReadResources moves forward and Sub/Add
// round-trip.
func TestResourcesDelta(t *testing.T) {
	before := ReadResources()
	waste := make([]byte, 1<<20)
	_ = waste[len(waste)-1]
	after := ReadResources()
	d := after.Sub(before)
	if d.WallSeconds < 0 || d.CPUSeconds < 0 {
		t.Errorf("negative time delta: %+v", d)
	}
	if d.AllocBytes == 0 || d.Mallocs == 0 {
		t.Errorf("allocation not attributed: %+v", d)
	}
	if rt := before.Add(d); rt != after {
		t.Errorf("Add(Sub) round-trip: %+v != %+v", rt, after)
	}
}

// TestJSONLNoInterleaving is the whole-line serialization regression
// test: many goroutines — child recorders sharing one sink — emit
// events whose marshaled size exceeds the sink's 64KB buffer, forcing
// mid-line flushes; every line of the output must still parse as one
// event. (Marshal-outside-lock plus a single locked write per line is
// what guarantees this.)
func TestJSONLNoInterleaving(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	root := (&Config{Sink: sink}).Recorder("root")
	big := strings.Repeat("x", 80<<10) // bigger than the 64KB buffer
	var wg sync.WaitGroup
	const writers, perWriter = 8, 40
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := root.Child(fmt.Sprintf("w%d", w))
			for i := 0; i < perWriter; i++ {
				sink.Emit(Event{Kind: "probe", Scope: c.Scope(), Name: "big", T: float64(i), Msg: big})
				c.Probe("small", float64(i), float64(w))
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is torn or malformed: %v", lines, err)
		}
		if ev.Wall == 0 {
			t.Fatalf("line %d missing the sink's wall stamp", lines)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := writers * perWriter * 2; lines != want {
		t.Fatalf("trace has %d lines, want %d", lines, want)
	}
}

// TestEmitBatchContiguous interleaves batch dumps with concurrent
// single emits and requires every batch to appear as a contiguous
// run of lines.
func TestEmitBatchContiguous(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				sink.Emit(Event{Kind: "probe", Name: "noise", T: float64(i)})
			}
		}
	}()
	const batches, batchLen = 20, 5
	for b := 0; b < batches; b++ {
		batch := make([]Event, batchLen)
		for i := range batch {
			batch[i] = Event{Kind: "flight.probe", Name: fmt.Sprintf("b%d", b), Step: int64(i)}
		}
		sink.EmitBatch(batch)
	}
	close(stop)
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	run := 0 // position inside the current batch, 0 = outside
	name := ""
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "flight.probe" {
			if run > 0 && (ev.Name != name || ev.Step != int64(run)) {
				t.Fatalf("batch %s interrupted at step %d by %s/%d", name, run, ev.Name, ev.Step)
			}
			name = ev.Name
			run = (run + 1) % batchLen
		} else if run != 0 {
			t.Fatalf("noise event inside batch %s at position %d", name, run)
		}
	}
}
