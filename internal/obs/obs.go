// Package obs is the observability layer shared by every engine in
// this repository: counters, gauges, histograms, monotonic span
// timers, periodic per-step probes, and a fail-fast invariant checker,
// all behind a *Recorder whose disabled default — a nil pointer — is a
// true no-op.
//
// # Zero overhead when off
//
// Every Recorder method begins with an inlineable nil check, so an
// uninstrumented run pays exactly one predictable branch per call
// site and touches no memory. Engines additionally gate any work
// needed only to FEED the recorder (an O(N) moment pass, a mass
// integral) behind Enabled/Invariants/ProbeDue, so a nil recorder
// costs nothing beyond the branch. The determinism contract is
// absolute: attaching or detaching a recorder never changes a single
// bit of any engine observable (enforced by the suite byte-identity
// test in internal/experiments).
//
// # Event stream
//
// When a JSONL sink is attached, probes, span timings, and invariant
// violations stream out as one JSON object per line (Event), cheap
// enough to leave running for whole experiment suites. Counters,
// gauges, and histograms accumulate in memory and are emitted as
// summary events by Flush.
//
// # Invariants
//
// The checker half of the package (invariants.go) verifies the
// conservation laws the solvers are built on — density mass budgets,
// non-negativity, CFL margins, history time-monotonicity — and fails
// fast with step-stamped context: a violation is an error carrying
// the exact step, time, and field, returned from the engine's Step so
// the run stops at the first corrupted state rather than rendering a
// poisoned table.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Event is one observability record: a probe sample, a span timing, a
// counter/gauge/histogram summary, or an invariant violation. Events
// marshal to single-line JSON in the trace stream.
type Event struct {
	// Kind is "probe", "span", "span_total", "counter", "gauge",
	// "hist", or "violation".
	Kind string `json:"kind"`
	// Scope identifies the recorder that emitted the event (an
	// experiment id, a CLI name, a sweep cell).
	Scope string `json:"scope,omitempty"`
	Name  string `json:"name"`
	// Step and T stamp the simulation step and time of probes and
	// violations.
	Step int64   `json:"step,omitempty"`
	T    float64 `json:"t,omitempty"`
	// Value carries the probe sample, gauge level, span seconds, or
	// histogram mean.
	Value float64 `json:"value,omitempty"`
	Count int64   `json:"count,omitempty"`
	// Worker is the 1-based worker index of an attributed span
	// (0 = unattributed).
	Worker int    `json:"worker,omitempty"`
	Msg    string `json:"msg,omitempty"`
	// Wall is the wall-clock emission time in seconds since process
	// start, stamped by the JSONL sink. For "span" events it marks the
	// span's END; the start is Wall − Value. The Chrome trace exporter
	// (internal/obs/chrometrace) places spans on its timeline with it.
	Wall float64 `json:"wall,omitempty"`
}

// eventAlias strips Event's methods so the marshallers below can
// recurse into the plain struct encoding.
type eventAlias Event

// MarshalJSON encodes the event, spelling non-finite floats as
// strings ("NaN", "+Inf", "-Inf"): JSON has no non-finite numbers,
// and a poisoned probe sample is exactly the evidence a post-mortem
// trace must not drop. Finite events (the overwhelmingly common case)
// take the plain struct path, byte-identical to the default encoding.
func (e Event) MarshalJSON() ([]byte, error) {
	if isFinite(e.T) && isFinite(e.Value) && isFinite(e.Wall) {
		return json.Marshal(eventAlias(e))
	}
	clean := e
	clean.T, clean.Value, clean.Wall = 0, 0, 0
	raw, err := json.Marshal(eventAlias(clean))
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	for _, f := range []struct {
		key string
		v   float64
	}{{"t", e.T}, {"value", e.Value}, {"wall", e.Wall}} {
		switch {
		case !isFinite(f.v):
			m[f.key] = fmt.Sprint(f.v)
		case f.v != 0:
			m[f.key] = f.v
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON accepts both numeric and stringified non-finite
// forms of the float fields.
func (e *Event) UnmarshalJSON(data []byte) error {
	var wire struct {
		eventAlias
		T     json.RawMessage `json:"t"`
		Value json.RawMessage `json:"value"`
		Wall  json.RawMessage `json:"wall"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	*e = Event(wire.eventAlias)
	var err error
	if e.T, err = floatField(wire.T); err != nil {
		return fmt.Errorf("obs: event field t: %w", err)
	}
	if e.Value, err = floatField(wire.Value); err != nil {
		return fmt.Errorf("obs: event field value: %w", err)
	}
	if e.Wall, err = floatField(wire.Wall); err != nil {
		return fmt.Errorf("obs: event field wall: %w", err)
	}
	return nil
}

// floatField decodes a float that may be spelled as a JSON string
// ("NaN", "+Inf", "-Inf"). Absent fields decode to 0.
func floatField(raw json.RawMessage) (float64, error) {
	if len(raw) == 0 {
		return 0, nil
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err == nil {
		return f, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return 0, err
	}
	return strconv.ParseFloat(s, 64)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// epoch anchors Event.Wall: seconds since process start.
var epoch = time.Now()

// sinceEpoch returns the current wall-clock offset for Event.Wall.
func sinceEpoch() float64 { return time.Since(epoch).Seconds() }

// JSONL is a concurrency-safe streaming sink writing one Event per
// line. Create with NewJSONL, share it between any number of
// Recorders, and Flush (or Close the underlying file) when done.
//
// Lines are serialized whole: every event is marshaled OUTSIDE the
// write lock and appended to the stream in a single locked write, so
// concurrent writers (per-experiment Child recorders under the
// two-level scheduler all share one sink) can never tear a line, no
// matter how event sizes relate to the internal buffer size. Emitted
// events are stamped with Event.Wall (seconds since process start).
type JSONL struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	events int64
	err    error
}

// NewJSONL wraps w in a buffered JSONL event sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Emit writes one event line. Safe on a nil sink (drops the event)
// and from any goroutine.
func (s *JSONL) Emit(ev Event) {
	if s == nil {
		return
	}
	if ev.Wall == 0 {
		ev.Wall = sinceEpoch()
	}
	line, err := json.Marshal(ev)
	s.mu.Lock()
	if err != nil {
		if s.err == nil {
			s.err = err
		}
	} else {
		line = append(line, '\n')
		if _, werr := s.bw.Write(line); werr != nil && s.err == nil {
			s.err = werr
		}
	}
	s.events++
	s.mu.Unlock()
}

// EmitBatch writes a sequence of event lines contiguously: the whole
// batch is marshaled first and appended under one lock acquisition,
// so no event from another writer can interleave inside it. The
// flight recorder uses it to keep post-mortem dumps in one block of
// the trace.
func (s *JSONL) EmitBatch(evs []Event) {
	if s == nil || len(evs) == 0 {
		return
	}
	now := sinceEpoch()
	var block []byte
	var firstErr error
	for _, ev := range evs {
		if ev.Wall == 0 {
			ev.Wall = now
		}
		line, err := json.Marshal(ev)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		block = append(block, line...)
		block = append(block, '\n')
	}
	s.mu.Lock()
	if firstErr != nil && s.err == nil {
		s.err = firstErr
	}
	if _, werr := s.bw.Write(block); werr != nil && s.err == nil {
		s.err = werr
	}
	s.events += int64(len(evs))
	s.mu.Unlock()
}

// Events returns the number of events emitted so far.
func (s *JSONL) Events() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Flush drains the buffer to the underlying writer and returns the
// first write error encountered, if any.
func (s *JSONL) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// DefaultProbeDt is the probe sampling interval (in simulation
// seconds) used when Config.ProbeDt is zero: fine enough to resolve
// the paper's oscillation periods (tens of seconds), coarse enough
// that a long run stays a few thousand lines per series.
const DefaultProbeDt = 0.25

// DefaultMassTol is the mass-budget tolerance used when
// Config.MassTol is zero. The solvers' transport is conservative to
// rounding, so the budget drift over a long run stays orders of
// magnitude below this.
const DefaultMassTol = 1e-6

// Config describes an observability setup: where events stream,
// whether invariants run, and how often probes sample. The zero value
// (and a nil *Config) disables everything.
type Config struct {
	// Sink receives the event stream (nil discards probes and spans;
	// counters still accumulate for SpanSeconds/Flush).
	Sink *JSONL
	// Invariants enables the per-step invariant checks in every
	// engine holding a Recorder from this Config.
	Invariants bool
	// ProbeDt is the minimum simulation-time spacing between samples
	// of one probe series (0 = DefaultProbeDt).
	ProbeDt float64
	// MassTol is the relative tolerance of the density mass-budget
	// checks (0 = DefaultMassTol).
	MassTol float64
	// FlightRecorder, when positive, keeps a fixed-size ring buffer of
	// the most recent events per recorder (probes, spans, violations —
	// whether or not a sink is attached). When an invariant Violation
	// fires, the ring is attached to the returned *Violation as Recent
	// and dumped to the sink as one contiguous "flight.*" block, so a
	// fault post-mortem does not require re-running with full tracing.
	FlightRecorder int
	// OnRecorder, when non-nil, observes every root recorder created
	// from this config (Child recorders are reached through their
	// parent's Summary tree). The obscli layer uses it to attach
	// recorders created deep inside the suite runner to the live
	// monitoring surface. Must be safe for concurrent calls: parallel
	// suite workers create recorders concurrently.
	OnRecorder func(*Recorder)
}

// Recorder returns a new recorder bound to this config under the
// given scope. A nil *Config returns a nil *Recorder — the no-op
// default every engine accepts.
func (c *Config) Recorder(scope string) *Recorder {
	if c == nil {
		return nil
	}
	r := &Recorder{cfg: *c, scope: scope}
	if c.OnRecorder != nil {
		c.OnRecorder(r)
	}
	return r
}

// spanKey identifies a span accumulator: name plus the 0-based worker
// index (-1 for unattributed spans).
type spanKey struct {
	name   string
	worker int
}

type spanStat struct {
	total time.Duration
	count int64
}

type histStat struct {
	count         int64
	sum, min, max float64
	// buckets is the sparse log₂ histogram: buckets[e] counts samples
	// v ∈ (2^(e−1), 2^e]; the upper bound exported to summaries and
	// the Prometheus exposition is 2^e, so the buckets obey the
	// "≤ le" convention. Non-positive samples land in bucketZero
	// (bound 0).
	buckets map[int]int64
}

// bucketZero keys the ≤ 0 histogram bucket; bucketMin/bucketMax clamp
// the Frexp exponent so bucket bounds stay finite and the bucket set
// bounded (2^-32 ≈ 2.3e-10 … 2^64 ≈ 1.8e19 covers every unit in the
// probe catalog with saturating extreme buckets beyond).
const (
	bucketZero = -1 << 30
	bucketMin  = -32
	bucketMax  = 64
)

// histBucket maps a sample to its log₂ bucket key.
func histBucket(v float64) int {
	if !(v > 0) { // ≤ 0 and NaN
		return bucketZero
	}
	frac, e := math.Frexp(v)
	if frac == 0.5 {
		// Exact powers of two belong to their own bound: buckets hold
		// (2^(e−1), 2^e], matching the Prometheus "≤ le" convention.
		e--
	}
	if e < bucketMin {
		return bucketMin
	}
	if e > bucketMax {
		return bucketMax
	}
	return e
}

// BucketBound returns the upper bound of the log₂ bucket keyed by e
// (0 for the non-positive bucket).
func BucketBound(e int) float64 {
	if e == bucketZero {
		return 0
	}
	return math.Ldexp(1, e)
}

// probeStat tracks one probe series: its sample count and last
// (value, simulation-time) pair — the live reading the HTTP metrics
// surface exports between flushes.
type probeStat struct {
	count int64
	last  float64
	lastT float64
}

// Recorder collects metrics for one scope (an experiment, a CLI run,
// a sweep cell). All methods are safe on a nil receiver — the
// disabled default — and safe for concurrent use; engines keep their
// hot paths cheap by gating any feeding work behind Enabled,
// Invariants, and ProbeDue.
type Recorder struct {
	cfg    Config
	scope  string
	parent *Recorder

	mu         sync.Mutex
	counters   map[string]int64
	gauges     map[string]float64
	hists      map[string]*histStat
	spans      map[spanKey]*spanStat
	probes     map[string]*probeStat
	violations int64
	children   []*Recorder
	// ring is the flight recorder (cfg.FlightRecorder > 0): a circular
	// buffer of the ringN most recent events this recorder emitted.
	ring      []Event
	ringStart int
}

// Enabled reports whether the recorder is live. Engines use it to
// gate probe computation; a nil recorder reports false.
func (r *Recorder) Enabled() bool { return r != nil }

// Invariants reports whether the per-step invariant checks should
// run.
func (r *Recorder) Invariants() bool { return r != nil && r.cfg.Invariants }

// MassTol returns the mass-budget tolerance of the invariant checks.
func (r *Recorder) MassTol() float64 {
	if r == nil || r.cfg.MassTol == 0 {
		return DefaultMassTol
	}
	return r.cfg.MassTol
}

// Scope returns the recorder's scope label ("" on a nil recorder).
func (r *Recorder) Scope() string {
	if r == nil {
		return ""
	}
	return r.scope
}

// Child returns a recorder sharing this recorder's config (sink,
// invariants, tolerances, flight-recorder size) under a nested
// scope — e.g. one per sweep cell, so interleaved probe series from
// concurrent cells stay distinguishable in the trace. The child is
// registered with its parent, so Summary sees the whole hierarchy
// and merges it deterministically. A nil receiver returns nil.
func (r *Recorder) Child(scope string) *Recorder {
	if r == nil {
		return nil
	}
	c := &Recorder{cfg: r.cfg, scope: r.scope + "/" + scope, parent: r}
	r.mu.Lock()
	r.children = append(r.children, c)
	r.mu.Unlock()
	return c
}

func (r *Recorder) emit(ev Event) {
	ev.Scope = r.scope
	if r.cfg.FlightRecorder > 0 {
		r.mu.Lock()
		r.ringAdd(ev)
		r.mu.Unlock()
	}
	r.cfg.Sink.Emit(ev)
}

// ringAdd appends ev to the flight-recorder ring, overwriting the
// oldest entry once full. Callers hold r.mu.
func (r *Recorder) ringAdd(ev Event) {
	n := r.cfg.FlightRecorder
	if len(r.ring) < n {
		r.ring = append(r.ring, ev)
		return
	}
	r.ring[r.ringStart] = ev
	r.ringStart = (r.ringStart + 1) % n
}

// ringSnapshot copies the flight ring oldest-first. Callers hold r.mu.
func (r *Recorder) ringSnapshot() []Event {
	if len(r.ring) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		out = append(out, r.ring[(r.ringStart+i)%len(r.ring)])
	}
	return out
}

// Count adds delta to the named counter.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets the named gauge to v (last value wins).
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = make(map[string]float64)
	}
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe adds a sample to the named histogram (count/sum/min/max
// summary, emitted by Flush).
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.hists == nil {
		r.hists = make(map[string]*histStat)
	}
	h := r.hists[name]
	if h == nil {
		h = &histStat{min: math.Inf(1), max: math.Inf(-1), buckets: make(map[int]int64)}
		r.hists[name] = h
	}
	h.count++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
	h.buckets[histBucket(v)]++
	r.mu.Unlock()
}

// ProbeDue reports whether the named probe series is due for a sample
// at simulation time t — true when no sample exists yet or at least
// ProbeDt has elapsed since the last one. Engines call it BEFORE
// computing an expensive probe value, so a between-samples step pays
// only the check. Always false on a nil recorder.
func (r *Recorder) ProbeDue(name string, t float64) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.probes[name]
	return !ok || t >= p.lastT+r.probeDt()
}

func (r *Recorder) probeDt() float64 {
	if r.cfg.ProbeDt > 0 {
		return r.cfg.ProbeDt
	}
	return DefaultProbeDt
}

// Probe records one sample of the named series at simulation time t,
// updating the series' rate-limit clock and last value (the live
// reading obshttp exports) and emitting a "probe" event.
func (r *Recorder) Probe(name string, t, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.probes == nil {
		r.probes = make(map[string]*probeStat)
	}
	p := r.probes[name]
	if p == nil {
		p = &probeStat{}
		r.probes[name] = p
	}
	p.count++
	p.last, p.lastT = v, t
	r.mu.Unlock()
	r.emit(Event{Kind: "probe", Name: name, T: t, Value: v})
}

// Span is an in-flight monotonic timer returned by Recorder.Span; End
// stops it. The zero Span (from a nil recorder) is a no-op.
type Span struct {
	r      *Recorder
	name   string
	worker int // 0-based; -1 unattributed
	start  time.Time
}

// Span starts an unattributed monotonic timer under the given name.
func (r *Recorder) Span(name string) Span { return r.WorkerSpan(name, -1) }

// WorkerSpan starts a monotonic timer attributed to the 0-based
// worker index that executes the timed region (sweep cells, suite
// experiments).
func (r *Recorder) WorkerSpan(name string, worker int) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, worker: worker, start: time.Now()}
}

// End stops the span, accumulating its duration into the recorder's
// totals and emitting a "span" event.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	r := s.r
	r.mu.Lock()
	if r.spans == nil {
		r.spans = make(map[spanKey]*spanStat)
	}
	k := spanKey{s.name, s.worker}
	st := r.spans[k]
	if st == nil {
		st = &spanStat{}
		r.spans[k] = st
	}
	st.total += d
	st.count++
	r.mu.Unlock()
	r.emit(Event{Kind: "span", Name: s.name, Worker: s.worker + 1, Value: d.Seconds()})
}

// SpanSeconds returns the total seconds accumulated per span name
// (workers summed) — the per-phase breakdown benchreport embeds in
// its JSON artifact. The per-worker totals are accumulated in sorted
// (name, worker) order, NOT map-iteration order, so the float sums —
// and with them the suite's Report.Phases — are identical across
// runs given identical span durations. Nil and empty recorders
// return an empty map.
func (r *Recorder) SpanSeconds() map[string]float64 {
	if r == nil {
		return map[string]float64{}
	}
	out := map[string]float64{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedSpanKeys(r.spans) {
		out[k.name] += r.spans[k].total.Seconds()
	}
	return out
}

// sortedSpanKeys orders span accumulators by (name, worker) — the
// deterministic iteration order for sums and summaries.
func sortedSpanKeys(m map[spanKey]*spanStat) []spanKey {
	ks := make([]spanKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].name != ks[j].name {
			return ks[i].name < ks[j].name
		}
		return ks[i].worker < ks[j].worker
	})
	return ks
}

// Violations returns the number of invariant violations recorded.
func (r *Recorder) Violations() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.violations
}

// Flush emits summary events for every counter, gauge, histogram, and
// span total (sorted by name, so traces are deterministic given
// deterministic values) and flushes the sink. Call it once at the end
// of the scope's run.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	spanKeys := sortedSpanKeys(r.spans)
	var evs []Event
	for _, n := range counters {
		evs = append(evs, Event{Kind: "counter", Name: n, Count: r.counters[n]})
	}
	for _, n := range gauges {
		evs = append(evs, Event{Kind: "gauge", Name: n, Value: r.gauges[n]})
	}
	for _, n := range hists {
		h := r.hists[n]
		mean := 0.0
		if h.count > 0 {
			mean = h.sum / float64(h.count)
		}
		evs = append(evs, Event{
			Kind: "hist", Name: n, Count: h.count, Value: mean,
			Msg: fmt.Sprintf("min=%g max=%g sum=%g", h.min, h.max, h.sum),
		})
	}
	for _, k := range spanKeys {
		st := r.spans[k]
		evs = append(evs, Event{
			Kind: "span_total", Name: k.name, Worker: k.worker + 1,
			Count: st.count, Value: st.total.Seconds(),
		})
	}
	r.mu.Unlock()
	for _, ev := range evs {
		r.emit(ev)
	}
	return r.cfg.Sink.Flush()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
