package obs

import (
	"fmt"
	"math"
)

// Violation is a failed invariant check: the exact step, simulation
// time, and field where a conservation law broke, carried as an error
// so the engine's Step fails fast instead of rendering a poisoned
// table. Violationf builds one; it works on a nil recorder too (the
// check helpers below are usable standalone), recording and emitting
// only when a recorder is live.
type Violation struct {
	Scope string
	Step  int64
	T     float64
	Field string
	Msg   string
	// Recent is the flight-recorder dump: the events (oldest first)
	// the violating recorder emitted before the violation, captured
	// when Config.FlightRecorder > 0. It rides on the error so a CLI
	// can print the post-mortem context without the run having
	// streamed a full trace.
	Recent []Event
}

func (v *Violation) Error() string {
	s := fmt.Sprintf("obs: invariant violated at step %d (t=%g): %s: %s", v.Step, v.T, v.Field, v.Msg)
	if n := len(v.Recent); n > 0 {
		s += fmt.Sprintf(" (flight recorder: %d preceding events attached)", n)
	}
	return s
}

// Violationf records an invariant violation against the named field
// at the given step and simulation time, emits a "violation" event,
// and returns it as an error. With the flight recorder enabled, the
// ring of recent events is attached to the Violation and dumped to
// the sink as one contiguous block — a "flight" header followed by
// the buffered events re-tagged "flight.<kind>" — immediately before
// the violation event.
func (r *Recorder) Violationf(step int64, t float64, field, format string, args ...any) error {
	if r == nil {
		return &Violation{Step: step, T: t, Field: field, Msg: fmt.Sprintf(format, args...)}
	}
	v := &Violation{Scope: r.scope, Step: step, T: t, Field: field, Msg: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	r.violations++
	if r.cfg.FlightRecorder > 0 {
		v.Recent = r.ringSnapshot()
	}
	r.mu.Unlock()
	if len(v.Recent) > 0 {
		batch := make([]Event, 0, len(v.Recent)+1)
		batch = append(batch, Event{
			Kind: "flight", Scope: r.scope, Name: field, Step: step, T: t,
			Count: int64(len(v.Recent)),
			Msg:   "flight-recorder dump: events preceding the violation below",
		})
		for _, ev := range v.Recent {
			ev.Kind = "flight." + ev.Kind
			batch = append(batch, ev)
		}
		r.cfg.Sink.EmitBatch(batch)
	}
	r.emit(Event{Kind: "violation", Name: field, Step: step, T: t, Msg: v.Msg})
	return v
}

// CheckNonNegative verifies every value is finite and non-negative,
// reporting the first offending index. Density fields and queue
// vectors must satisfy it after every step (undershoot clipping runs
// before the check).
//
//fpcc:obsgate -- standalone pure-math check, must run on nil recorder (TestInvariantHelpers); Violationf is nil-safe
func (r *Recorder) CheckNonNegative(step int64, t float64, field string, vals []float64) error {
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return r.Violationf(step, t, field, "index %d is %v", i, v)
		}
		if v < 0 {
			return r.Violationf(step, t, field, "index %d = %g < 0", i, v)
		}
	}
	return nil
}

// CheckFinite verifies a scalar is finite and non-negative (queue
// lengths, rates).
//
//fpcc:obsgate -- standalone pure-math check, must run on nil recorder (TestInvariantHelpers); Violationf is nil-safe
func (r *Recorder) CheckFinite(step int64, t float64, field string, v float64) error {
	if !(v >= 0) || math.IsInf(v, 0) {
		return r.Violationf(step, t, field, "value %g outside [0, ∞)", v)
	}
	return nil
}

// CheckMass verifies a mass budget: |got − want| ≤ tol·max(1, |want|).
// The conservative transport sweeps guarantee ∫f = initial + clipped −
// outflow to rounding, so a violation means corrupted state, not
// discretization error.
//
//fpcc:obsgate -- standalone pure-math check, must run on nil recorder (TestInvariantHelpers); Violationf is nil-safe
func (r *Recorder) CheckMass(step int64, t float64, field string, got, want, tol float64) error {
	if math.IsNaN(got) || math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		return r.Violationf(step, t, field, "mass %.12g outside budget %.12g ± %g", got, want, tol)
	}
	return nil
}

// CheckCourant verifies an advection Courant number is within the
// stability limit (the engines check this themselves before stepping;
// the invariant re-verifies the margin on the state actually stepped).
//
//fpcc:obsgate -- standalone pure-math check, must run on nil recorder (TestInvariantHelpers); Violationf is nil-safe
func (r *Recorder) CheckCourant(step int64, t float64, field string, courant, limit float64) error {
	if math.IsNaN(courant) || courant > limit {
		return r.Violationf(step, t, field, "Courant number %.6g exceeds %.6g", courant, limit)
	}
	return nil
}

// CheckMonotoneTail verifies the last two entries of a timestamp
// series are non-decreasing — the O(1) per-step form of the
// queue-history monotonicity invariant (each step appends once, so
// checking the tail every step covers the whole series).
//
//fpcc:obsgate -- standalone pure-math check, must run on nil recorder (TestInvariantHelpers); Violationf is nil-safe
func (r *Recorder) CheckMonotoneTail(step int64, field string, times []float64) error {
	if n := len(times); n >= 2 && times[n-1] < times[n-2] {
		return r.Violationf(step, times[n-1], field,
			"history time regressed: %g recorded after %g", times[n-1], times[n-2])
	}
	return nil
}
