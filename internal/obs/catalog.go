package obs

// ProbeSeries documents one probe series (or end-of-run counter) an
// engine emits when a recorder is attached. Names containing <class>
// or <node> are families: the placeholder is replaced by the class or
// node display name at runtime.
type ProbeSeries struct {
	Engine string // owning package (fokkerplanck, sde, meanfield, netmf, des)
	Name   string // series name as it appears in Event.Name
	Unit   string
	Desc   string
}

// Catalog lists every probe series the engines emit. It is the single
// source of truth the EXPERIMENTS.md probe table is checked against
// (TestProbeCatalogDocumented in internal/experiments), so adding a
// probe to an engine means adding it here and to the doc table.
func Catalog() []ProbeSeries {
	return []ProbeSeries{
		{"fokkerplanck", "fp.mass", "1", "total density mass ∫f dq dv"},
		{"fokkerplanck", "fp.meanq", "packets", "mass-weighted mean queue E[Q]"},
		{"fokkerplanck", "fp.clipped", "1", "cumulative mass removed by negativity clipping"},
		{"fokkerplanck", "fp.outflow", "1", "cumulative mass lost through the q = QMax boundary"},
		{"fokkerplanck", "fp.cfl", "1", "Courant number of the last step"},
		{"sde", "sde.meanq", "packets", "ensemble mean queue length"},
		{"sde", "sde.meanlam", "packets/s", "ensemble mean sending rate"},
		{"sde", "sde.varq", "packets²", "ensemble queue-length variance"},
		{"meanfield", "mf.queue", "packets", "bottleneck fluid queue length Q"},
		{"meanfield", "mf.lambda", "packets/s", "aggregate arrival rate Λ = Σ_k w_k N_k ⟨λ⟩_k"},
		{"meanfield", "mf.clipped", "1", "cumulative clipped density mass, summed over classes"},
		{"meanfield", "mf.<class>.mean", "packets/s", "class mean per-source rate ⟨λ⟩_k"},
		{"meanfield", "mf.<class>.var", "(packets/s)²", "class per-source rate variance"},
		{"meanfield", "mf.<class>.pop", "sources", "open-class live population N_k·LiveMass_k"},
		{"meanfield", "mf.<class>.born", "sources", "open-class cumulative sessions born N_k·born_k"},
		{"meanfield", "mf.<class>.died", "sources", "open-class cumulative sessions died N_k·died_k"},
		{"meanfield", "mfp.queue", "packets", "particle-backend fluid queue length"},
		{"meanfield", "mfp.lambda", "packets/s", "particle-backend aggregate arrival rate"},
		{"netmf", "netmf.<node>.q", "packets", "per-node fluid queue length Q_j"},
		{"netmf", "netmf.<class>.lambda", "packets/s", "class offered rate Λ_k = w_k N_k ⟨λ⟩_k"},
		{"netmf", "netmf.<class>.mean", "packets/s", "class mean per-source rate ⟨λ⟩_k"},
		{"netmf", "netmf.<class>.pop", "sources", "open-class live population N_k·LiveMass_k"},
		{"netmf", "netmf.<class>.born", "sources", "open-class cumulative sessions born N_k·born_k"},
		{"netmf", "netmf.<class>.died", "sources", "open-class cumulative sessions died N_k·died_k"},
		{"netmf", "netmf.clipped", "1", "cumulative clipped density mass, summed over classes"},
		{"des", "des.q", "packets", "packet queue length (packets in system)"},
	}
}
