package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderIsNoOp exercises every method on the nil recorder —
// the disabled default every engine holds — and checks nothing
// panics, nothing reports enabled, and violations still build usable
// errors.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Invariants() {
		t.Fatal("nil recorder reports invariants on")
	}
	if r.ProbeDue("x", 1) {
		t.Fatal("nil recorder reports probe due")
	}
	if r.MassTol() != DefaultMassTol {
		t.Fatalf("nil recorder mass tol %v", r.MassTol())
	}
	if r.Child("sub") != nil {
		t.Fatal("nil recorder child not nil")
	}
	r.Count("c", 1)
	r.Gauge("g", 2)
	r.Observe("h", 3)
	r.Probe("p", 0, 4)
	sp := r.Span("s")
	sp.End()
	r.WorkerSpan("w", 3).End()
	if got := r.SpanSeconds(); len(got) != 0 {
		t.Fatalf("nil recorder span seconds %v", got)
	}
	if r.Violations() != 0 {
		t.Fatal("nil recorder has violations")
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Violationf on a nil recorder still returns a step-stamped error.
	err := r.Violationf(42, 1.5, "field.x", "bad %d", 7)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("violation error type %T", err)
	}
	if v.Step != 42 || v.T != 1.5 || v.Field != "field.x" || v.Msg != "bad 7" {
		t.Fatalf("violation %+v", v)
	}
	if !strings.Contains(err.Error(), "step 42") || !strings.Contains(err.Error(), "field.x") {
		t.Fatalf("violation text %q", err.Error())
	}
}

func TestNilConfigRecorder(t *testing.T) {
	var c *Config
	if c.Recorder("x") != nil {
		t.Fatal("nil config produced a live recorder")
	}
}

// decodeEvents parses a JSONL buffer back into events.
func decodeEvents(t *testing.T, buf *bytes.Buffer) []Event {
	t.Helper()
	var evs []Event
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Sink: NewJSONL(&buf), ProbeDt: 1}
	r := cfg.Recorder("E99")

	if !r.ProbeDue("q", 0) {
		t.Fatal("first probe not due")
	}
	r.Probe("q", 0, 3.5)
	if r.ProbeDue("q", 0.5) {
		t.Fatal("probe due before ProbeDt elapsed")
	}
	if !r.ProbeDue("q", 1.0) {
		t.Fatal("probe not due after ProbeDt")
	}
	r.Probe("q", 1.0, 4.5)
	r.Span("phase").End()
	r.WorkerSpan("cell", 2).End()
	r.Count("steps", 10)
	r.Gauge("level", 7)
	r.Observe("lat", 1)
	r.Observe("lat", 3)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	evs := decodeEvents(t, &buf)
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
		if ev.Scope != "E99" {
			t.Fatalf("event scope %q", ev.Scope)
		}
	}
	if kinds["probe"] != 2 || kinds["span"] != 2 || kinds["counter"] != 1 ||
		kinds["gauge"] != 1 || kinds["hist"] != 1 || kinds["span_total"] != 2 {
		t.Fatalf("event kinds %v", kinds)
	}
	for _, ev := range evs {
		switch {
		case ev.Kind == "probe" && ev.Name == "q" && ev.T == 0:
			if ev.Value != 3.5 {
				t.Fatalf("probe value %v", ev.Value)
			}
		case ev.Kind == "span" && ev.Name == "cell":
			if ev.Worker != 3 { // 0-based worker 2 → 1-based 3
				t.Fatalf("cell span worker %d", ev.Worker)
			}
		case ev.Kind == "hist" && ev.Name == "lat":
			if ev.Count != 2 || ev.Value != 2 {
				t.Fatalf("hist summary %+v", ev)
			}
			if !strings.Contains(ev.Msg, "min=1") || !strings.Contains(ev.Msg, "max=3") {
				t.Fatalf("hist msg %q", ev.Msg)
			}
		}
	}
	if got := r.SpanSeconds(); len(got) != 2 {
		t.Fatalf("span totals %v", got)
	}
}

func TestViolationEventAndCount(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Sink: NewJSONL(&buf), Invariants: true}
	r := cfg.Recorder("test")
	if !r.Invariants() {
		t.Fatal("invariants not enabled")
	}
	err := r.Violationf(7, 2.5, "mf.class0.mass", "mass %g", 0.5)
	if err == nil || r.Violations() != 1 {
		t.Fatalf("violation not recorded: err=%v n=%d", err, r.Violations())
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := decodeEvents(t, &buf)
	if len(evs) != 1 || evs[0].Kind != "violation" || evs[0].Step != 7 || evs[0].Name != "mf.class0.mass" {
		t.Fatalf("violation events %+v", evs)
	}
}

func TestInvariantHelpers(t *testing.T) {
	var r *Recorder // helpers must work standalone on the nil recorder
	if err := r.CheckNonNegative(1, 0, "f", []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckNonNegative(1, 0, "f", []float64{0, -1e-3}); err == nil {
		t.Fatal("negative value passed")
	} else if !strings.Contains(err.Error(), "index 1") {
		t.Fatalf("missing index: %v", err)
	}
	nan := []float64{0, 1, 0}
	nan[2] = nan[2] / 0 * 0 // NaN
	if err := r.CheckNonNegative(1, 0, "f", nan); err == nil {
		t.Fatal("NaN passed")
	}
	if err := r.CheckMass(1, 0, "m", 1.0000001, 1, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckMass(1, 0, "m", 1.5, 1, 1e-6); err == nil {
		t.Fatal("mass breach passed")
	}
	if err := r.CheckFinite(1, 0, "q", -0.5); err == nil {
		t.Fatal("negative scalar passed")
	}
	if err := r.CheckCourant(1, 0, "c", 1.5, 1.0000001); err == nil {
		t.Fatal("Courant breach passed")
	}
	if err := r.CheckMonotoneTail(1, "h", []float64{0, 1, 0.5}); err == nil {
		t.Fatal("time regression passed")
	}
	if err := r.CheckMonotoneTail(1, "h", []float64{0, 1, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderConcurrency(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Sink: NewJSONL(&buf)}
	r := cfg.Recorder("conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Count("n", 1)
				r.WorkerSpan("cell", w).End()
			}
		}(w)
	}
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range r.SpanSeconds() {
		total += s
	}
	if total < 0 {
		t.Fatal("negative span total")
	}
	evs := decodeEvents(t, &buf)
	for _, ev := range evs {
		if ev.Kind == "counter" && ev.Name == "n" && ev.Count != 800 {
			t.Fatalf("counter %d, want 800", ev.Count)
		}
	}
}

// BenchmarkDisabledRecorder pins the cost of the disabled (nil) path:
// the per-call price an uninstrumented engine step pays at each probe
// gate. It should stay at roughly one branch per call.
func BenchmarkDisabledRecorder(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			r.Probe("q", float64(i), 1)
		}
		if r.Invariants() {
			_ = r.CheckFinite(int64(i), 0, "q", 1)
		}
	}
}
