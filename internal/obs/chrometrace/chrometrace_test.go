package chrometrace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fpcc/internal/obs"
)

// buildTrace runs a recorder through spans, probes (one NaN), and a
// flight-dumped violation, and returns the JSONL stream.
func buildTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	rec := (&obs.Config{Sink: sink, Invariants: true, FlightRecorder: 8}).Recorder("sim")
	rec.Span("setup").End()
	rec.WorkerSpan("step", 2).End()
	rec.Probe("q", 0.5, 1.25)
	rec.Probe("q", 1.0, math.NaN())
	rec.Probe("rate", 1.0, 3.5)
	if err := rec.Violationf(3, 1.5, "sim.q", "poisoned"); err == nil {
		t.Fatal("Violationf returned nil")
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConvertProducesValidTrace converts a real event stream and
// validates the output IS the Chrome trace_event JSON Object Format:
// it decodes, every event has a legal phase, complete events have
// non-negative ts/dur, and nothing smuggled a bare NaN into the file.
func TestConvertProducesValidTrace(t *testing.T) {
	jsonl := buildTrace(t)
	var out bytes.Buffer
	if err := Convert(bytes.NewReader(jsonl), &out); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out.Bytes(), []byte("NaN")) && !bytes.Contains(out.Bytes(), []byte(`"NaN"`)) {
		t.Fatal("bare NaN in the trace JSON (unloadable)")
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &tf); err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	legal := map[string]bool{"X": true, "C": true, "i": true, "M": true}
	var spans, counters, instants int
	for _, ev := range tf.TraceEvents {
		if !legal[ev.Ph] {
			t.Errorf("event %q has illegal phase %q", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q at ts=%g dur=%g (negative timeline)", ev.Name, ev.Ts, ev.Dur)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Pid != pidWall {
				t.Errorf("span %q on pid %d, want wall-clock pid %d", ev.Name, ev.Pid, pidWall)
			}
		case "C":
			counters++
			if ev.Pid != pidSim {
				t.Errorf("counter %q on pid %d, want sim pid %d", ev.Name, ev.Pid, pidSim)
			}
		case "i":
			instants++
		}
	}
	if spans != 2 {
		t.Errorf("%d complete spans, want 2", spans)
	}
	if counters != 3 {
		t.Errorf("%d counter samples, want 3 (NaN sample must survive as a string arg)", counters)
	}
	// The violation instant and the flight header both land as instants.
	if instants < 2 {
		t.Errorf("%d instants, want the violation and the flight header", instants)
	}
}

// TestConvertWorkerLabels pins the thread naming: worker-attributed
// spans land on their own named rows (the wire Worker index is
// 1-based, so 0-based worker 2 renders as w3).
func TestConvertWorkerLabels(t *testing.T) {
	jsonl := buildTrace(t)
	var out bytes.Buffer
	if err := Convert(bytes.NewReader(jsonl), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sim [w3]") {
		t.Error("worker-attributed span row 'sim [w3]' missing from the trace")
	}
}

// TestConvertRejectsGarbage requires malformed lines to fail the
// conversion instead of silently dropping post-mortem evidence.
func TestConvertRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	err := Convert(strings.NewReader("{\"kind\":\"probe\"}\nnot json\n"), &out)
	if err == nil {
		t.Fatal("malformed line converted without error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %v does not name the offending line", err)
	}
}

// TestConvertEmpty converts an empty stream to a valid, loadable
// trace (metadata only).
func TestConvertEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := Convert(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(out.Bytes(), &tf); err != nil {
		t.Fatalf("empty trace does not decode: %v", err)
	}
	if _, ok := tf["traceEvents"]; !ok {
		t.Fatal("traceEvents key missing")
	}
}
