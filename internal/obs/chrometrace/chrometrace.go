// Package chrometrace converts an internal/obs JSONL event stream
// into the Chrome trace_event JSON format, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// The trace has two synthetic processes:
//
//   - pid 1 "wall clock": every "span" event becomes a complete ("X")
//     slice on the wall-clock timeline, one thread row per
//     (scope, worker) pair — the suite's outer workers, the sweep
//     cells, and the CLI phase spans land here.
//   - pid 2 "simulation time": every "probe" sample becomes a counter
//     ("C") event at its SIMULATION time, one thread row per scope,
//     so Perfetto plots each probe series as a track against sim
//     seconds (shown as trace µs). Invariant violations and flight
//     dumps appear as instant ("i") events on the same timeline.
//
// Summary events (counter/gauge/hist/span_total) carry no timeline
// position and are skipped.
package chrometrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"fpcc/internal/obs"
)

// trace_event JSON shapes (the "JSON Object Format" variant, which
// Perfetto accepts and which tolerates the metadata events below).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	pidWall = 1
	pidSim  = 2
)

// Convert reads a JSONL event stream from r and writes the Chrome
// trace to w. Malformed lines fail the conversion (a trace that
// silently dropped events would lie in a post-mortem); blank lines
// are permitted.
func Convert(r io.Reader, w io.Writer) error {
	tf := traceFile{TraceEvents: []traceEvent{
		procName(pidWall, "wall clock"),
		procName(pidSim, "simulation time (1 sim s = 1 trace s)"),
	}, DisplayTimeUnit: "ms"}

	// tids are assigned per (pid, label) in encounter order, each
	// introduced by a thread_name metadata event.
	tids := map[string]int{}
	tid := func(pid int, label string) int {
		key := fmt.Sprintf("%d/%s", pid, label)
		id, ok := tids[key]
		if !ok {
			id = len(tids) + 1
			tids[key] = id
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
				Args: map[string]any{"name": label},
			})
		}
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("chrometrace: line %d does not decode as an obs event: %w", line, err)
		}
		switch ev.Kind {
		case "span":
			// Wall stamps the span's END; Value is its duration in
			// seconds. Pre-Wall traces (schema without the field)
			// clamp to a zero-based timeline.
			start := (ev.Wall - ev.Value) * 1e6
			if start < 0 {
				start = 0
			}
			label := ev.Scope
			if ev.Worker > 0 {
				label = fmt.Sprintf("%s [w%d]", ev.Scope, ev.Worker)
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: ev.Name, Cat: "span", Ph: "X",
				Ts: start, Dur: ev.Value * 1e6,
				Pid: pidWall, Tid: tid(pidWall, label),
				Args: map[string]any{"scope": ev.Scope},
			})
		case "probe":
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: ev.Name, Cat: "probe", Ph: "C",
				Ts:  ev.T * 1e6,
				Pid: pidSim, Tid: tid(pidSim, ev.Scope),
				Args: map[string]any{"value": jsonSafe(ev.Value)},
			})
		case "violation", "flight":
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: ev.Kind + ": " + ev.Name, Cat: ev.Kind, Ph: "i", S: "g",
				Ts:  ev.T * 1e6,
				Pid: pidSim, Tid: tid(pidSim, ev.Scope),
				Args: map[string]any{"scope": ev.Scope, "step": ev.Step, "msg": ev.Msg},
			})
		default:
			// counter/gauge/hist/span_total summaries and flight.*
			// replays have no timeline position of their own.
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("chrometrace: reading trace: %w", err)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// jsonSafe maps non-finite floats to strings: encoding/json refuses
// NaN/±Inf, and a probe that sampled one must not make the whole
// trace unloadable.
func jsonSafe(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprint(v)
	}
	return v
}

// procName builds a process_name metadata event.
func procName(pid int, name string) traceEvent {
	return traceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
}
