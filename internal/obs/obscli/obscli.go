// Package obscli is the shared observability flag layer every cmd
// binds. It lives one level below internal/obs so it can wire the
// recorder layer to the HTTP monitoring surface (obshttp) and the
// Chrome trace exporter (chrometrace) without an import cycle.
package obscli

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only when -pprof is set
	"os"
	"sync"

	"fpcc/internal/obs"
	"fpcc/internal/obs/chrometrace"
	"fpcc/internal/obs/obshttp"
)

// CLI is the shared observability flag set every cmd binds:
//
//	-trace out.jsonl     stream probe/span/metric events as JSONL
//	-trace-dt t          probe sampling interval in simulation seconds
//	-trace-chrome out    export the run's trace as Chrome trace_event
//	                     JSON (Perfetto-loadable); works with or
//	                     without -trace
//	-obs-listen addr     serve /metrics (Prometheus), /summary,
//	                     /debug/vars and /debug/pprof from the
//	                     running process
//	-obs-summary out     write the end-of-run obs.Summary manifest
//	-flight-recorder n   keep the n most recent events per recorder
//	                     and dump them when an invariant fires
//	                     (implies -obs-invariants)
//	-pprof addr          serve net/http/pprof on addr (default mux)
//	-obs-invariants      run per-step invariant checks (fail fast)
//
// Bind the flags with Bind before flag.Parse, call Setup after, hand
// Recorder(scope) to the engine configs, and defer Close.
type CLI struct {
	tracePath   string
	traceDt     float64
	chromePath  string
	listenAddr  string
	summaryPath string
	flightN     int
	pprofAddr   string
	invariants  bool

	sink      *obs.JSONL
	traceFile *os.File
	traceMem  *bytes.Buffer // backs the sink when -trace-chrome is set without -trace
	httpSrv   *obshttp.Server
	cfg       *obs.Config

	mu sync.Mutex
	// registered holds every root recorder created from the config —
	// including those the suite runner creates internally, via the
	// Config.OnRecorder hook — for the monitoring surface and the
	// summary manifest. handed holds only the recorders this CLI
	// handed out directly; Close flushes those (the suite runner
	// flushes its own, and Flush is not idempotent).
	registered []*obs.Recorder
	handed     []*obs.Recorder
}

// Bind registers the observability flags on fs and returns the CLI
// holding them.
func Bind(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.tracePath, "trace", "", "stream observability events (probes, spans, violations) as JSONL to this file")
	fs.Float64Var(&c.traceDt, "trace-dt", 0, fmt.Sprintf("probe sampling interval in simulation seconds (default %g)", obs.DefaultProbeDt))
	fs.StringVar(&c.chromePath, "trace-chrome", "", "export the run's event trace as Chrome trace_event JSON to this file (Perfetto-loadable; works without -trace)")
	fs.StringVar(&c.listenAddr, "obs-listen", "", "serve live Prometheus /metrics, /summary, /debug/vars and /debug/pprof on this address (e.g. localhost:9190)")
	fs.StringVar(&c.summaryPath, "obs-summary", "", "write the end-of-run obs.Summary JSON manifest (aggregates merged over the recorder hierarchy) to this file")
	fs.IntVar(&c.flightN, "flight-recorder", 0, "keep this many recent events per recorder and dump them with any invariant violation (implies -obs-invariants)")
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&c.invariants, "obs-invariants", false, "run per-step invariant checks (mass budgets, non-negativity, CFL, history monotonicity); fail fast on violation")
	return c
}

// Setup opens the trace destinations and starts the monitoring and
// pprof servers per the parsed flags. Call it once, after flag
// parsing.
func (c *CLI) Setup() error {
	switch {
	case c.tracePath != "":
		f, err := os.Create(c.tracePath)
		if err != nil {
			return fmt.Errorf("obs: creating trace file: %w", err)
		}
		c.traceFile = f
		c.sink = obs.NewJSONL(f)
	case c.chromePath != "":
		// No JSONL destination, but the exporter needs the event
		// stream: record it in memory for conversion at Close.
		c.traceMem = &bytes.Buffer{}
		c.sink = obs.NewJSONL(c.traceMem)
	}
	if c.pprofAddr != "" {
		go func() {
			// The pprof handlers are on http.DefaultServeMux via the
			// net/http/pprof import; the server runs for the process
			// lifetime.
			if err := http.ListenAndServe(c.pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", err)
			}
		}()
	}
	if c.sink != nil || c.invariants || c.listenAddr != "" || c.summaryPath != "" || c.flightN > 0 {
		c.cfg = &obs.Config{
			Sink:           c.sink,
			Invariants:     c.invariants || c.flightN > 0,
			ProbeDt:        c.traceDt,
			FlightRecorder: c.flightN,
			OnRecorder:     c.register,
		}
	}
	if c.listenAddr != "" {
		c.httpSrv = obshttp.New()
		addr, err := c.httpSrv.Start(c.listenAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /summary, /debug/vars, /debug/pprof on http://%s\n", addr)
	}
	return nil
}

// Config returns the observability config the flags selected, or nil
// when no observability flag was set (the zero-overhead default).
func (c *CLI) Config() *obs.Config { return c.cfg }

// register observes every root recorder created from the config (the
// OnRecorder hook): it joins the -obs-listen monitoring surface and
// the -obs-summary manifest.
func (c *CLI) register(r *obs.Recorder) {
	c.mu.Lock()
	c.registered = append(c.registered, r)
	c.mu.Unlock()
	if c.httpSrv != nil {
		c.httpSrv.Attach(r)
	}
}

// Recorder returns a recorder under the given scope, or nil when
// observability is disabled. Recorders join the -obs-listen
// monitoring surface as they are created; Close flushes the ones
// handed out here.
func (c *CLI) Recorder(scope string) *obs.Recorder {
	r := c.cfg.Recorder(scope)
	if r != nil {
		c.mu.Lock()
		c.handed = append(c.handed, r)
		c.mu.Unlock()
	}
	return r
}

// DumpViolation prints the flight-recorder context attached to an
// invariant violation — the events the failing recorder buffered
// before the fault — to stderr, as JSONL. It is a no-op for other
// errors (including violations recorded without -flight-recorder),
// so cmds call it unconditionally on their run-error path.
func (c *CLI) DumpViolation(err error) {
	var v *obs.Violation
	if !errors.As(err, &v) || len(v.Recent) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "obs: flight recorder: %d events preceding the violation of %s (step %d, t=%g):\n",
		len(v.Recent), v.Field, v.Step, v.T)
	enc := json.NewEncoder(os.Stderr)
	for _, ev := range v.Recent {
		enc.Encode(ev)
	}
}

// Fatal is the cmds' fatal-error exit: it dumps any flight-recorder
// context attached to err, closes the observability layer — so the
// trace, Chrome export and summary manifest survive for the
// post-mortem — and exits 1. (log.Fatalf would skip the deferred
// Close and lose all of that.)
func (c *CLI) Fatal(prefix string, err error) {
	c.DumpViolation(err)
	if cerr := c.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "%s: closing observability: %v\n", prefix, cerr)
	}
	log.Fatalf("%s: %v", prefix, err)
}

// Close flushes summary events for every recorder handed out, writes
// the -obs-summary manifest and the -trace-chrome export, closes the
// trace file, and stops the monitoring server.
func (c *CLI) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	c.mu.Lock()
	handed := append([]*obs.Recorder(nil), c.handed...)
	c.mu.Unlock()
	for _, r := range handed {
		keep(r.Flush())
	}
	if c.sink != nil {
		keep(c.sink.Flush())
	}
	if c.summaryPath != "" {
		keep(c.writeSummary())
	}
	if c.traceFile != nil {
		keep(c.traceFile.Close())
		c.traceFile = nil
	}
	if c.chromePath != "" {
		keep(c.writeChromeTrace())
	}
	if c.httpSrv != nil {
		keep(c.httpSrv.Close())
		c.httpSrv = nil
	}
	return first
}

// writeSummary assembles the run manifest — one child per registered
// recorder, under a root carrying whole-process resource totals —
// and writes it as indented JSON.
func (c *CLI) writeSummary() error {
	res := obs.ReadResources()
	root := &obs.Summary{Scope: "run", Resources: &res}
	c.mu.Lock()
	registered := append([]*obs.Recorder(nil), c.registered...)
	c.mu.Unlock()
	for _, r := range registered {
		if s := r.Summary(); s != nil {
			root.Children = append(root.Children, s)
		}
	}
	f, err := os.Create(c.summaryPath)
	if err != nil {
		return fmt.Errorf("obs: creating summary manifest: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(root); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing summary manifest: %w", err)
	}
	return f.Close()
}

// writeChromeTrace converts the run's JSONL stream (the -trace file,
// or the in-memory capture when -trace was not set) into a Chrome
// trace_event file.
func (c *CLI) writeChromeTrace() error {
	var src io.Reader
	if c.traceMem != nil {
		src = bytes.NewReader(c.traceMem.Bytes())
	} else {
		f, err := os.Open(c.tracePath)
		if err != nil {
			return fmt.Errorf("obs: reopening trace for chrome export: %w", err)
		}
		defer f.Close()
		src = f
	}
	out, err := os.Create(c.chromePath)
	if err != nil {
		return fmt.Errorf("obs: creating chrome trace: %w", err)
	}
	if err := chrometrace.Convert(src, out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
