package obscli

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpcc/internal/obs"
)

// setupCLI binds the flags on a fresh FlagSet, parses args, and runs
// Setup.
func setupCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Bind(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDisabledDefault pins the zero-overhead default: no flags, nil
// config, nil recorder, and Close is a no-op.
func TestDisabledDefault(t *testing.T) {
	c := setupCLI(t)
	if c.Config() != nil {
		t.Error("no flags must yield a nil obs.Config")
	}
	if r := c.Recorder("x"); r != nil {
		t.Error("disabled CLI handed out a live recorder")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndArtifacts drives the full flag surface — JSONL trace,
// Chrome export, summary manifest, flight recorder — through one
// simulated run and checks every artifact lands on disk well-formed.
func TestEndToEndArtifacts(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	chrome := filepath.Join(dir, "run.chrome.json")
	summary := filepath.Join(dir, "run.summary.json")
	c := setupCLI(t,
		"-trace", trace, "-trace-chrome", chrome,
		"-obs-summary", summary, "-flight-recorder", "16")

	if cfg := c.Config(); cfg == nil || !cfg.Invariants {
		t.Fatal("-flight-recorder must imply invariant checks")
	}
	rec := c.Recorder("engine")
	sp := rec.Span("step")
	rec.Probe("q", 0.5, 1.0)
	rec.Count("steps", 3)
	sp.End()
	// A second recorder created straight from the config (the suite
	// runner's path) must appear in the manifest via OnRecorder.
	c.Config().Recorder("suite").Count("experiments", 2)

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"probe"`) {
		t.Error("JSONL trace has no probe line")
	}

	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	craw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(craw, &tf); err != nil {
		t.Fatalf("chrome trace does not decode: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("chrome trace is empty")
	}

	sraw, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	var man obs.Summary
	if err := json.Unmarshal(sraw, &man); err != nil {
		t.Fatalf("summary manifest does not decode: %v", err)
	}
	if man.Scope != "run" || man.Resources == nil {
		t.Fatalf("manifest root = %+v, want scope run with resources", man)
	}
	scopes := map[string]*obs.Summary{}
	for _, ch := range man.Children {
		scopes[ch.Scope] = ch
	}
	if s := scopes["engine"]; s == nil || s.Counters["steps"] != 3 {
		t.Errorf("manifest engine child = %+v, want steps=3", scopes["engine"])
	}
	if s := scopes["suite"]; s == nil || s.Counters["experiments"] != 2 {
		t.Errorf("manifest suite child = %+v, want experiments=2 (OnRecorder registration)", scopes["suite"])
	}
}

// TestChromeOnlyCapture pins the in-memory path: -trace-chrome with
// no -trace still produces a trace via the buffered sink.
func TestChromeOnlyCapture(t *testing.T) {
	chrome := filepath.Join(t.TempDir(), "only.chrome.json")
	c := setupCLI(t, "-trace-chrome", chrome)
	rec := c.Recorder("solo")
	rec.Probe("p", 1, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"traceEvents"`) {
		t.Error("chrome-only export missing traceEvents")
	}
}
