package obs

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only when -pprof is set
	"os"
)

// CLI is the shared observability flag set every cmd binds:
//
//	-trace out.jsonl    stream probe/span/metric events as JSONL
//	-trace-dt t         probe sampling interval in simulation seconds
//	-pprof addr         serve net/http/pprof on addr (e.g. localhost:6060)
//	-obs-invariants     run per-step invariant checks (fail fast)
//
// Bind the flags with BindFlags before flag.Parse, call Setup after,
// hand Recorder(scope) to the engine configs, and defer Close.
type CLI struct {
	tracePath  string
	traceDt    float64
	pprofAddr  string
	invariants bool

	sink      *JSONL
	traceFile *os.File
	cfg       *Config
	recorders []*Recorder
}

// BindFlags registers the observability flags on fs and returns the
// CLI holding them.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.tracePath, "trace", "", "stream observability events (probes, spans, violations) as JSONL to this file")
	fs.Float64Var(&c.traceDt, "trace-dt", 0, fmt.Sprintf("probe sampling interval in simulation seconds (default %g)", DefaultProbeDt))
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&c.invariants, "obs-invariants", false, "run per-step invariant checks (mass budgets, non-negativity, CFL, history monotonicity); fail fast on violation")
	return c
}

// Setup opens the trace file and starts the pprof server per the
// parsed flags. Call it once, after flag parsing.
func (c *CLI) Setup() error {
	if c.tracePath != "" {
		f, err := os.Create(c.tracePath)
		if err != nil {
			return fmt.Errorf("obs: creating trace file: %w", err)
		}
		c.traceFile = f
		c.sink = NewJSONL(f)
	}
	if c.pprofAddr != "" {
		go func() {
			// The pprof handlers are on http.DefaultServeMux via the
			// net/http/pprof import; the server runs for the process
			// lifetime.
			if err := http.ListenAndServe(c.pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", err)
			}
		}()
	}
	if c.sink != nil || c.invariants {
		c.cfg = &Config{Sink: c.sink, Invariants: c.invariants, ProbeDt: c.traceDt}
	}
	return nil
}

// Config returns the observability config the flags selected, or nil
// when no observability flag was set (the zero-overhead default).
func (c *CLI) Config() *Config { return c.cfg }

// Recorder returns a recorder under the given scope, or nil when
// observability is disabled. Close flushes every recorder handed out.
func (c *CLI) Recorder(scope string) *Recorder {
	r := c.cfg.Recorder(scope)
	if r != nil {
		c.recorders = append(c.recorders, r)
	}
	return r
}

// Close flushes summary events for every recorder handed out, flushes
// the sink, and closes the trace file.
func (c *CLI) Close() error {
	var first error
	for _, r := range c.recorders {
		if err := r.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if c.sink != nil {
		if err := c.sink.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if c.traceFile != nil {
		if err := c.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		c.traceFile = nil
	}
	return first
}
