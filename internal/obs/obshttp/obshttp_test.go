package obshttp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fpcc/internal/obs"
)

// promSample is one parsed exposition line: name, sorted label set,
// value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
var promLabel = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// parseProm is a miniature Prometheus text-format parser: it rejects
// any non-comment line that does not match the exposition grammar, so
// the test fails on malformed output rather than skipping it.
func parseProm(t *testing.T, r io.Reader) []promSample {
	t.Helper()
	var out []promSample
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not parse as Prometheus exposition: %q", line)
		}
		s := promSample{name: m[1], labels: map[string]string{}}
		for _, lm := range promLabel.FindAllStringSubmatch(m[2], -1) {
			v, err := strconv.Unquote(`"` + lm[2] + `"`)
			if err != nil {
				t.Fatalf("label value does not unquote in %q: %v", line, err)
			}
			s.labels[lm[1]] = v
		}
		var err error
		if s.value, err = strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("value does not parse in %q: %v", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func find(samples []promSample, name string, labels map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return promSample{}, false
}

// TestScrapeMatchesRecorder starts the server, feeds a recorder, and
// requires the live /metrics exposition to parse and to report the
// exact counter, probe, span and histogram state — including a label
// value that needs escaping.
func TestScrapeMatchesRecorder(t *testing.T) {
	srv := New()
	rec := (&obs.Config{}).Recorder(`sim"with\escapes`)
	srv.Attach(rec)
	srv.Attach(nil) // disabled recorders attach as no-ops

	rec.Count("steps", 41)
	rec.Count("steps", 1)
	rec.Gauge("level", 2.5)
	rec.Probe("q", 1.5, 7)
	rec.Observe("lat", 0.75)
	rec.Observe("lat", 3)
	rec.Span("setup").End()
	child := rec.Child("cell")
	child.Count("steps", 8)

	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	samples := parseProm(t, resp.Body)
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}

	scope := map[string]string{"scope": `sim"with\escapes`}
	if s, ok := find(samples, "fpcc_counter_total", merge(scope, "name", "steps")); !ok || s.value != 50 {
		t.Errorf("counter steps = %+v, want 50 (rolled up over the child)", s)
	}
	if s, ok := find(samples, "fpcc_gauge", merge(scope, "name", "level")); !ok || s.value != 2.5 {
		t.Errorf("gauge level = %+v, want 2.5", s)
	}
	if s, ok := find(samples, "fpcc_probe", merge(scope, "series", "q")); !ok || s.value != 7 {
		t.Errorf("probe q = %+v, want 7", s)
	}
	if s, ok := find(samples, "fpcc_probe_samples_total", merge(scope, "series", "q")); !ok || s.value != 1 {
		t.Errorf("probe samples = %+v, want 1", s)
	}
	if s, ok := find(samples, "fpcc_span_count_total", merge(scope, "span", "setup")); !ok || s.value != 1 {
		t.Errorf("span count = %+v, want 1", s)
	}
	if s, ok := find(samples, "fpcc_hist_count", merge(scope, "name", "lat")); !ok || s.value != 2 {
		t.Errorf("hist count = %+v, want 2", s)
	}
	if s, ok := find(samples, "fpcc_hist_sum", merge(scope, "name", "lat")); !ok || s.value != 3.75 {
		t.Errorf("hist sum = %+v, want 3.75", s)
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	if s, ok := find(samples, "fpcc_hist_bucket", merge(scope, "name", "lat", "le", "+Inf")); !ok || s.value != 2 {
		t.Errorf("hist +Inf bucket = %+v, want 2", s)
	}
	var prev float64
	for _, le := range []string{"1", "4", "+Inf"} {
		s, ok := find(samples, "fpcc_hist_bucket", merge(scope, "name", "lat", "le", le))
		if !ok {
			t.Fatalf("missing le=%s bucket", le)
		}
		if s.value < prev {
			t.Errorf("bucket le=%s count %g below previous %g (not cumulative)", le, s.value, prev)
		}
		prev = s.value
	}

	// /summary must decode as the JSON manifest with the same state.
	sresp, err := http.Get("http://" + addr + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var man struct {
		UptimeSeconds float64        `json:"uptime_seconds"`
		Recorders     []*obs.Summary `json:"recorders"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&man); err != nil {
		t.Fatalf("/summary does not decode: %v", err)
	}
	if len(man.Recorders) != 1 || man.Recorders[0].Counters["steps"] != 42 {
		t.Fatalf("summary manifest = %+v, want one recorder with steps=42", man.Recorders)
	}
	if len(man.Recorders[0].Children) != 1 || man.Recorders[0].Children[0].Counters["steps"] != 8 {
		t.Fatalf("summary manifest lost the child: %+v", man.Recorders[0].Children)
	}
}

func merge(base map[string]string, kv ...string) map[string]string {
	out := map[string]string{}
	for k, v := range base {
		out[k] = v
	}
	for i := 0; i+1 < len(kv); i += 2 {
		out[kv[i]] = kv[i+1]
	}
	return out
}

// TestScrapeDuringRun hammers the recorder from worker goroutines
// while scraping repeatedly: every scrape must parse, and the counter
// must be monotonically non-decreasing across scrapes. Run with
// -race, this is also the data-race proof for live scraping.
func TestScrapeDuringRun(t *testing.T) {
	srv := New()
	rec := (&obs.Config{}).Recorder("live")
	srv.Attach(rec)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := rec.Child(fmt.Sprintf("w%d", w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Count("ops", 1)
					c.Probe("p", float64(i), float64(i))
					c.Observe("h", float64(i%7)+0.5)
				}
			}
		}(w)
	}
	var prev float64
	for i := 0; i < 8; i++ {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		samples := parseProm(t, resp.Body)
		resp.Body.Close()
		if s, ok := find(samples, "fpcc_counter_total", map[string]string{"scope": "live", "name": "ops"}); ok {
			if s.value < prev {
				t.Fatalf("scrape %d: ops went backwards: %g after %g", i, s.value, prev)
			}
			prev = s.value
		}
	}
	close(stop)
	wg.Wait()
	if prev == 0 {
		t.Error("no ops observed across the live scrapes")
	}
}
