// Package obshttp is the live HTTP surface over internal/obs: a
// management/monitoring endpoint a running engine serves while its
// hot path keeps stepping (the ndn-dpdk idiom of a control plane
// over a data plane). One small mux exposes
//
//	/metrics       Prometheus text-format exposition of every
//	               attached recorder, rolled up over its Child
//	               hierarchy (scrape cardinality stays independent
//	               of sweep-cell count)
//	/summary       the same state as a JSON obs.Summary tree
//	/debug/vars    expvar (memstats, cmdline, and the fpcc.obs map)
//	/debug/pprof/  net/http/pprof profiles
//
// Recorders are attached as they are created; snapshots are taken
// under the recorders' own locks, so scraping is safe at any moment
// of a run and costs the engines nothing between scrapes.
package obshttp

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fpcc/internal/obs"
)

// Server owns the monitoring mux and the set of recorders it
// exports. Zero value is not usable; create with New.
type Server struct {
	mu    sync.Mutex
	recs  []*obs.Recorder
	start time.Time
	srv   *http.Server
	lis   net.Listener
}

// expvarSrv is the server the process-global /debug/vars map reads
// from (expvar's registry forbids republishing, so the latest server
// wins the single "fpcc.obs" slot).
var (
	expvarSrv  atomic.Pointer[Server]
	expvarOnce sync.Once
)

// New returns a server with no recorders attached.
func New() *Server {
	s := &Server{start: time.Now()}
	expvarSrv.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("fpcc.obs", expvar.Func(func() any {
			if cur := expvarSrv.Load(); cur != nil {
				return cur.summaries()
			}
			return nil
		}))
	})
	return s
}

// Attach registers a recorder for export. Nil recorders (the
// disabled default) are ignored, so callers can attach
// unconditionally.
func (s *Server) Attach(r *obs.Recorder) {
	if r == nil {
		return
	}
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

// summaries snapshots every attached recorder's full tree, in attach
// order.
func (s *Server) summaries() []*obs.Summary {
	s.mu.Lock()
	recs := make([]*obs.Recorder, len(s.recs))
	copy(recs, s.recs)
	s.mu.Unlock()
	out := make([]*obs.Summary, 0, len(recs))
	for _, r := range recs {
		if sum := r.Summary(); sum != nil {
			out = append(out, sum)
		}
	}
	return out
}

// Handler returns the monitoring mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "fpcc observability\n\n/metrics\n/summary\n/debug/vars\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, s.summaries(), time.Since(s.start).Seconds())
	})
	mux.HandleFunc("/summary", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			UptimeSeconds float64        `json:"uptime_seconds"`
			Recorders     []*obs.Summary `json:"recorders"`
		}{time.Since(s.start).Seconds(), s.summaries()})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one) and
// serves the monitoring mux until Close. It returns the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obshttp: %w", err)
	}
	s.lis = lis
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(lis)
	return lis.Addr().String(), nil
}

// Close stops the server, if Start was called.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// WriteMetrics renders summaries as Prometheus text-format
// exposition (one rolled-up block per summary, labeled by scope).
// Output is deterministic given the summaries: families in fixed
// order, scopes in given order, names sorted.
func WriteMetrics(w io.Writer, sums []*obs.Summary, uptime float64) {
	rolled := make([]*obs.Summary, 0, len(sums))
	for _, s := range sums {
		rolled = append(rolled, s.Rollup())
	}

	fmt.Fprintf(w, "# HELP fpcc_uptime_seconds Wall-clock seconds since the monitoring surface started.\n")
	fmt.Fprintf(w, "# TYPE fpcc_uptime_seconds gauge\n")
	fmt.Fprintf(w, "fpcc_uptime_seconds %s\n", fmtVal(uptime))

	writeFamily(w, "fpcc_counter_total", "counter", "Recorder counters, summed over the Child hierarchy.", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			for _, k := range sortedKeysOf(s.Counters) {
				emit(labelPair(s.Scope, "name", k), strconv.FormatInt(s.Counters[k], 10))
			}
		})
	writeFamily(w, "fpcc_gauge", "gauge", "Recorder gauges (last value wins).", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			for _, k := range sortedKeysOf(s.Gauges) {
				emit(labelPair(s.Scope, "name", k), fmtVal(s.Gauges[k]))
			}
		})
	writeFamily(w, "fpcc_probe", "gauge", "Last sampled value of each probe series.", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			for _, k := range sortedKeysOf(s.Probes) {
				emit(labelPair(s.Scope, "series", k), fmtVal(s.Probes[k].Last))
			}
		})
	writeFamily(w, "fpcc_probe_sim_time", "gauge", "Simulation time of each probe series' last sample.", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			for _, k := range sortedKeysOf(s.Probes) {
				emit(labelPair(s.Scope, "series", k), fmtVal(s.Probes[k].LastT))
			}
		})
	writeFamily(w, "fpcc_probe_samples_total", "counter", "Samples taken per probe series.", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			for _, k := range sortedKeysOf(s.Probes) {
				emit(labelPair(s.Scope, "series", k), strconv.FormatInt(s.Probes[k].Count, 10))
			}
		})
	writeFamily(w, "fpcc_span_seconds_total", "counter", "Monotonic time accumulated per span name, workers summed.", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			for _, k := range sortedKeysOf(s.Spans) {
				emit(labelPair(s.Scope, "span", k), fmtVal(s.Spans[k].Seconds))
			}
		})
	writeFamily(w, "fpcc_span_count_total", "counter", "Completed spans per span name.", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			for _, k := range sortedKeysOf(s.Spans) {
				emit(labelPair(s.Scope, "span", k), strconv.FormatInt(s.Spans[k].Count, 10))
			}
		})
	writeFamily(w, "fpcc_violations_total", "counter", "Invariant violations recorded.", rolled,
		func(s *obs.Summary, emit func(labels string, v string)) {
			emit(fmt.Sprintf("scope=%q", s.Scope), strconv.FormatInt(s.Violations, 10))
		})

	// Histograms: cumulative le buckets from the sparse log₂ counts.
	wroteHeader := false
	for _, s := range rolled {
		for _, k := range sortedKeysOf(s.Hists) {
			if !wroteHeader {
				fmt.Fprintf(w, "# HELP fpcc_hist Log2-bucketed recorder histograms.\n# TYPE fpcc_hist histogram\n")
				wroteHeader = true
			}
			h := s.Hists[k]
			base := fmt.Sprintf("scope=%q,name=%q", s.Scope, k)
			cum := int64(0)
			for i, le := range h.Le {
				cum += h.Counts[i]
				fmt.Fprintf(w, "fpcc_hist_bucket{%s,le=%q} %d\n", base, fmtVal(le), cum)
			}
			fmt.Fprintf(w, "fpcc_hist_bucket{%s,le=\"+Inf\"} %d\n", base, h.Count)
			fmt.Fprintf(w, "fpcc_hist_sum{%s} %s\n", base, fmtVal(h.Sum))
			fmt.Fprintf(w, "fpcc_hist_count{%s} %d\n", base, h.Count)
		}
	}
}

// writeFamily emits one metric family: header once, then every
// scope's samples.
func writeFamily(w io.Writer, name, typ, help string, sums []*obs.Summary,
	each func(*obs.Summary, func(labels, v string))) {
	wrote := false
	for _, s := range sums {
		each(s, func(labels, v string) {
			if !wrote {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
				wrote = true
			}
			fmt.Fprintf(w, "%s{%s} %s\n", name, labels, v)
		})
	}
}

// labelPair renders a two-label set. %q escapes backslashes, quotes
// and newlines exactly as the Prometheus exposition format requires.
func labelPair(scope, key, name string) string {
	return fmt.Sprintf("scope=%q,%s=%q", scope, key, name)
}

// fmtVal renders a float in Prometheus exposition form (shortest
// round-trip representation; NaN and ±Inf spelled out).
func fmtVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeysOf returns m's keys sorted.
func sortedKeysOf[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
