//go:build !unix

package obs

// processCPUSeconds is unavailable off unix; Resources.CPUSeconds
// reads 0 there and the manifests simply omit CPU attribution.
func processCPUSeconds() float64 { return 0 }
