//go:build unix

package obs

import "syscall"

// processCPUSeconds returns the process's cumulative user+system CPU
// time via getrusage — the per-experiment CPU attribution the suite
// runner's Resources deltas are built on.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvSeconds(ru.Utime) + tvSeconds(ru.Stime)
}

func tvSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
