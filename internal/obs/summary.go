package obs

import (
	"runtime"
	"sort"
)

// This file is the streaming-aggregates half of the package: every
// Recorder's counters, gauges, probes, log-bucketed histograms and
// span totals can be snapshotted at any moment — concurrently with
// the engines feeding them — into a Summary, a JSON-stable run
// manifest. Summaries form the same tree the Child hierarchy does,
// children sorted by scope, and merge deterministically (Rollup), so
// two snapshots of identical recorder state are byte-identical JSON.
// The suite runner attaches per-experiment Resources (wall/CPU time,
// allocs, GC) and embeds the tree in the bench artifact
// (fpcc-bench/4); the obshttp /metrics endpoint exports rolled-up
// live summaries as Prometheus text.

// HistSummary is the snapshot of one log-bucketed histogram. Le[i]
// is a bucket's upper bound (2^e; 0 for the non-positive bucket) and
// Counts[i] the NON-cumulative count of samples in (Le[i]/2, Le[i]],
// ascending and sparse — only touched buckets appear.
type HistSummary struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Le     []float64 `json:"le,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// SpanSummary is the snapshot of one span accumulator, workers
// summed in deterministic (name, worker) order.
type SpanSummary struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// ProbeSummary is the snapshot of one probe series: how many samples
// were taken and the last (value, simulation-time) pair.
type ProbeSummary struct {
	Count int64   `json:"count"`
	Last  float64 `json:"last"`
	LastT float64 `json:"last_t"`
}

// Resources are process resource deltas harvested around a region of
// work: wall and CPU time, allocator traffic, and GC cycles. The
// counters are process-wide, so under parallel outer workers a
// per-experiment delta attributes concurrent experiments' traffic
// too — exact at workers=1, an upper bound otherwise.
type Resources struct {
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Mallocs     uint64  `json:"mallocs"`
	NumGC       uint32  `json:"num_gc"`
}

// ReadResources samples the process counters Resources is a delta
// of. WallSeconds is seconds since process start; subtract two reads
// (Sub) to attribute a region.
func ReadResources() Resources {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Resources{
		WallSeconds: sinceEpoch(),
		CPUSeconds:  processCPUSeconds(),
		AllocBytes:  ms.TotalAlloc,
		Mallocs:     ms.Mallocs,
		NumGC:       ms.NumGC,
	}
}

// Sub returns the delta r − start of two ReadResources samples.
func (r Resources) Sub(start Resources) Resources {
	return Resources{
		WallSeconds: r.WallSeconds - start.WallSeconds,
		CPUSeconds:  r.CPUSeconds - start.CPUSeconds,
		AllocBytes:  r.AllocBytes - start.AllocBytes,
		Mallocs:     r.Mallocs - start.Mallocs,
		NumGC:       r.NumGC - start.NumGC,
	}
}

// Add returns the sum of two resource deltas.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		WallSeconds: r.WallSeconds + o.WallSeconds,
		CPUSeconds:  r.CPUSeconds + o.CPUSeconds,
		AllocBytes:  r.AllocBytes + o.AllocBytes,
		Mallocs:     r.Mallocs + o.Mallocs,
		NumGC:       r.NumGC + o.NumGC,
	}
}

// Summary is the point-in-time aggregate snapshot of one recorder
// and, recursively, its children (sorted by scope). It marshals to
// deterministic JSON — maps sort by key, bucket and child orders are
// fixed — so identical recorder states produce identical manifests.
type Summary struct {
	Scope      string                  `json:"scope"`
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Probes     map[string]ProbeSummary `json:"probes,omitempty"`
	Hists      map[string]HistSummary  `json:"hists,omitempty"`
	Spans      map[string]SpanSummary  `json:"spans,omitempty"`
	Violations int64                   `json:"violations,omitempty"`
	Resources  *Resources              `json:"resources,omitempty"`
	Children   []*Summary              `json:"children,omitempty"`
}

// Summary snapshots the recorder and its Child hierarchy. It is safe
// to call at any time, including while engines are feeding the
// recorder from other goroutines (each node is captured atomically
// under its own lock; the tree as a whole is a crossing snapshot).
// A nil recorder returns nil.
func (r *Recorder) Summary() *Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := &Summary{Scope: r.scope, Violations: r.violations}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	if len(r.probes) > 0 {
		s.Probes = make(map[string]ProbeSummary, len(r.probes))
		for k, p := range r.probes {
			s.Probes[k] = ProbeSummary{Count: p.count, Last: p.last, LastT: p.lastT}
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSummary, len(r.hists))
		for k, h := range r.hists {
			s.Hists[k] = histSummaryLocked(h)
		}
	}
	if len(r.spans) > 0 {
		s.Spans = make(map[string]SpanSummary, len(r.spans))
		for _, k := range sortedSpanKeys(r.spans) {
			st := r.spans[k]
			agg := s.Spans[k.name]
			agg.Count += st.count
			agg.Seconds += st.total.Seconds()
			s.Spans[k.name] = agg
		}
	}
	children := make([]*Recorder, len(r.children))
	copy(children, r.children)
	r.mu.Unlock()
	for _, c := range children {
		s.Children = append(s.Children, c.Summary())
	}
	sort.Slice(s.Children, func(i, j int) bool { return s.Children[i].Scope < s.Children[j].Scope })
	return s
}

// histSummaryLocked converts a histStat (holder of r.mu) to its
// summary: sparse buckets sorted by ascending bound.
func histSummaryLocked(h *histStat) HistSummary {
	hs := HistSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if len(h.buckets) > 0 {
		keys := make([]int, 0, len(h.buckets))
		for e := range h.buckets {
			keys = append(keys, e)
		}
		sort.Ints(keys)
		for _, e := range keys {
			hs.Le = append(hs.Le, BucketBound(e))
			hs.Counts = append(hs.Counts, h.buckets[e])
		}
	}
	return hs
}

// Rollup merges the summary and all its descendants into one flat
// node (Children nil, the receiver's scope kept): counters, spans,
// violations and histogram buckets sum; gauges and probes are merged
// depth-first in sorted child order with a child's entry replacing
// the running one (for probes only when its LastT is at least as
// recent), so the result is a pure function of the tree. The obshttp
// /metrics endpoint exports one rolled-up node per attached
// recorder, keeping scrape cardinality independent of how many sweep
// cells a run spawns.
func (s *Summary) Rollup() *Summary {
	if s == nil {
		return nil
	}
	out := &Summary{Scope: s.Scope}
	s.rollInto(out)
	return out
}

func (s *Summary) rollInto(out *Summary) {
	for k, v := range s.Counters {
		if out.Counters == nil {
			out.Counters = map[string]int64{}
		}
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		if out.Gauges == nil {
			out.Gauges = map[string]float64{}
		}
		out.Gauges[k] = v
	}
	for k, p := range s.Probes {
		if out.Probes == nil {
			out.Probes = map[string]ProbeSummary{}
		}
		prev, ok := out.Probes[k]
		if ok {
			prev.Count += p.Count
			if p.LastT >= prev.LastT {
				prev.Last, prev.LastT = p.Last, p.LastT
			}
			out.Probes[k] = prev
		} else {
			out.Probes[k] = p
		}
	}
	for k, h := range s.Hists {
		if out.Hists == nil {
			out.Hists = map[string]HistSummary{}
		}
		out.Hists[k] = mergeHist(out.Hists[k], h)
	}
	for k, sp := range s.Spans {
		if out.Spans == nil {
			out.Spans = map[string]SpanSummary{}
		}
		agg := out.Spans[k]
		agg.Count += sp.Count
		agg.Seconds += sp.Seconds
		out.Spans[k] = agg
	}
	out.Violations += s.Violations
	if s.Resources != nil {
		sum := s.Resources.Add(deref(out.Resources))
		out.Resources = &sum
	}
	for _, c := range s.Children {
		c.rollInto(out)
	}
}

func deref(r *Resources) Resources {
	if r == nil {
		return Resources{}
	}
	return *r
}

// mergeHist merges two histogram summaries (bucket-wise merge-join
// on ascending bounds). The zero HistSummary is the identity.
func mergeHist(a, b HistSummary) HistSummary {
	if a.Count == 0 && len(a.Le) == 0 {
		return b
	}
	out := HistSummary{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   minNonEmpty(a, b),
		Max:   maxNonEmpty(a, b),
	}
	i, j := 0, 0
	for i < len(a.Le) || j < len(b.Le) {
		switch {
		case j >= len(b.Le) || (i < len(a.Le) && a.Le[i] < b.Le[j]):
			out.Le = append(out.Le, a.Le[i])
			out.Counts = append(out.Counts, a.Counts[i])
			i++
		case i >= len(a.Le) || b.Le[j] < a.Le[i]:
			out.Le = append(out.Le, b.Le[j])
			out.Counts = append(out.Counts, b.Counts[j])
			j++
		default:
			out.Le = append(out.Le, a.Le[i])
			out.Counts = append(out.Counts, a.Counts[i]+b.Counts[j])
			i++
			j++
		}
	}
	return out
}

func minNonEmpty(a, b HistSummary) float64 {
	switch {
	case a.Count == 0:
		return b.Min
	case b.Count == 0:
		return a.Min
	case a.Min < b.Min:
		return a.Min
	default:
		return b.Min
	}
}

func maxNonEmpty(a, b HistSummary) float64 {
	switch {
	case a.Count == 0:
		return b.Max
	case b.Count == 0:
		return a.Max
	case a.Max > b.Max:
		return a.Max
	default:
		return b.Max
	}
}
