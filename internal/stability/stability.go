// Package stability analyzes the delayed feedback loop of Section 7
// analytically: it linearizes the fluid system
//
//	dQ/dt = λ(t) − μ
//	dλ/dt = g(Q(t−τ), λ(t))
//
// around its equilibrium (q*, μ) and studies the characteristic
// equation of the resulting linear delay system
//
//	dx/dt = y(t)
//	dy/dt = a·x(t−τ) + b·y(t),   a = ∂g/∂q < 0,  b = ∂g/∂λ ≤ 0
//
// namely D(s) = s² − b·s − a·e^{−sτ} = 0. The paper observes that
// delayed feedback introduces oscillations; this package makes the
// observation sharp: the loop is asymptotically stable exactly for
// τ < τ*, where the critical delay τ* has the closed form computed by
// CriticalDelay, and the oscillation born at the Hopf point has
// angular frequency ω* = HopfFrequency. The root finder DominantRoot
// locates the rightmost characteristic root for any τ, giving the
// exact exponential growth/decay rate and ringing frequency of small
// disturbances — quantities the experiments check against both the
// DDE integrator and the packet simulator.
package stability

import (
	"fmt"
	"math"
	"math/cmplx"

	"fpcc/internal/control"
)

// Linearization holds the delayed loop linearized at its equilibrium.
type Linearization struct {
	QStar   float64 // equilibrium queue length
	LamStar float64 // equilibrium sending rate (= μ)
	A       float64 // a = ∂g/∂q at the equilibrium (< 0 for useful laws)
	B       float64 // b = ∂g/∂λ at the equilibrium (≤ 0)
}

// Linearize computes the equilibrium and the partial derivatives of a
// law numerically (central differences), so it works for any Law, not
// just SmoothAIMD. The equilibrium queue q* is located by bisection of
// g(q, μ) on [lo, hi]; for laws with closed forms prefer their own
// methods (e.g. SmoothAIMD.Equilibrium) as the bracket-free route.
func Linearize(law control.Law, mu, lo, hi float64) (*Linearization, error) {
	switch {
	case law == nil:
		return nil, fmt.Errorf("stability: nil law")
	case !(mu > 0) || math.IsInf(mu, 1):
		return nil, fmt.Errorf("stability: service rate must be positive, got %v", mu)
	case !(hi > lo):
		return nil, fmt.Errorf("stability: bad bracket [%v, %v]", lo, hi)
	}
	g := func(q float64) float64 { return law.Drift(q, mu) }
	glo, ghi := g(lo), g(hi)
	if glo == 0 {
		return linearizeAt(law, mu, lo)
	}
	if ghi == 0 {
		return linearizeAt(law, mu, hi)
	}
	if glo*ghi > 0 {
		return nil, fmt.Errorf("stability: g(q, μ) does not change sign on [%v, %v] (g=%v..%v); widen the bracket", lo, hi, glo, ghi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		gm := g(mid)
		if gm == 0 || (hi-lo) < 1e-13*(1+math.Abs(mid)) {
			return linearizeAt(law, mu, mid)
		}
		if glo*gm < 0 {
			hi = mid
		} else {
			lo, glo = mid, gm
		}
	}
	return linearizeAt(law, mu, (lo+hi)/2)
}

// linearizeAt evaluates the partials at (q*, μ).
func linearizeAt(law control.Law, mu, qStar float64) (*Linearization, error) {
	// Step sizes balance truncation against cancellation; the drift
	// magnitudes here are O(1)–O(10).
	hq := 1e-6 * (1 + math.Abs(qStar))
	hl := 1e-6 * (1 + mu)
	a := (law.Drift(qStar+hq, mu) - law.Drift(qStar-hq, mu)) / (2 * hq)
	b := (law.Drift(qStar, mu+hl) - law.Drift(qStar, mu-hl)) / (2 * hl)
	if math.IsNaN(a) || math.IsNaN(b) {
		return nil, fmt.Errorf("stability: non-finite partials at q*=%v", qStar)
	}
	return &Linearization{QStar: qStar, LamStar: mu, A: a, B: b}, nil
}

// CriticalDelay returns the smallest delay τ* > 0 at which the loop
// loses stability (the Hopf point), given the linearization a < 0,
// b ≤ 0. Writing α = −a and β = −b, the crossing frequency solves
// ω⁴ + β²ω² − α² = 0, i.e.
//
//	ω*² = (−β² + √(β⁴ + 4α²)) / 2
//
// and the critical delay is τ* = atan2(βω*, ω*²)/ω*. For β = 0 (AIAD-
// like laws with no rate damping) τ* = 0: the undelayed loop is
// already only neutrally stable, matching the paper's observation
// that linear-decrease algorithms oscillate without any delay.
func CriticalDelay(a, b float64) (tau, omega float64, err error) {
	if !(a < 0) {
		return 0, 0, fmt.Errorf("stability: need a < 0 (restoring feedback), got %v", a)
	}
	if b > 0 {
		return 0, 0, fmt.Errorf("stability: b > 0 means the undelayed loop is already unstable (b=%v)", b)
	}
	alpha, beta := -a, -b
	w2 := (-beta*beta + math.Sqrt(beta*beta*beta*beta+4*alpha*alpha)) / 2
	w := math.Sqrt(w2)
	if !(w > 0) {
		return 0, 0, fmt.Errorf("stability: degenerate crossing frequency")
	}
	return math.Atan2(beta*w, w2) / w, w, nil
}

// CharEval evaluates the characteristic function
// D(s) = s² − b·s − a·e^{−sτ} and its derivative.
func CharEval(s complex128, a, b, tau float64) (d, dPrime complex128) {
	e := cmplx.Exp(-s * complex(tau, 0))
	d = s*s - complex(b, 0)*s - complex(a, 0)*e
	dPrime = 2*s - complex(b, 0) + complex(a*tau, 0)*e
	return d, dPrime
}

// newtonRoot polishes one root of D from a starting point. Returns an
// error if Newton does not converge.
func newtonRoot(s complex128, a, b, tau float64) (complex128, error) {
	for i := 0; i < 100; i++ {
		d, dp := CharEval(s, a, b, tau)
		if cmplx.Abs(dp) < 1e-300 {
			return 0, fmt.Errorf("stability: derivative vanished at %v", s)
		}
		step := d / dp
		s -= step
		if cmplx.Abs(step) < 1e-12*(1+cmplx.Abs(s)) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("stability: Newton did not converge from %v", s)
}

// DominantRoot returns the characteristic root with the largest real
// part (searching a grid of starting points covering the low-frequency
// region where the rightmost root of this loop class lives, then
// polishing with Newton). The root's real part is the exponential
// growth rate of small disturbances; its imaginary part is the ringing
// frequency.
func DominantRoot(a, b, tau float64) (complex128, error) {
	if !(a < 0) {
		return 0, fmt.Errorf("stability: need a < 0, got %v", a)
	}
	if tau < 0 || math.IsNaN(tau) {
		return 0, fmt.Errorf("stability: negative delay %v", tau)
	}
	// Scales: the undelayed natural frequency is √(−a); roots of
	// interest live within a few multiples of it (delay only slows
	// the crossing frequency down).
	w0 := math.Sqrt(-a)
	best := complex(math.Inf(-1), 0)
	found := false
	var starts []complex128
	for _, re := range []float64{-2 * w0, -w0, -0.25 * w0, 0, 0.25 * w0, w0} {
		for _, im := range []float64{0, 0.25 * w0, 0.5 * w0, w0, 1.5 * w0, 2.5 * w0} {
			starts = append(starts, complex(re, im))
		}
	}
	for _, s0 := range starts {
		r, err := newtonRoot(s0, a, b, tau)
		if err != nil {
			continue
		}
		// Report the upper-half-plane representative (roots come in
		// conjugate pairs).
		if imag(r) < 0 {
			r = cmplx.Conj(r)
		}
		// Verify it actually is a root (Newton can wander).
		if d, _ := CharEval(r, a, b, tau); cmplx.Abs(d) > 1e-6*(1+cmplx.Abs(r*r)) {
			continue
		}
		if !found || real(r) > real(best)+1e-12 {
			best, found = r, true
		}
	}
	if !found {
		return 0, fmt.Errorf("stability: no characteristic root found (a=%v b=%v τ=%v)", a, b, tau)
	}
	return best, nil
}

// Classification labels a delayed loop.
type Classification int

// Classification values.
const (
	// Stable: all characteristic roots in the open left half-plane.
	Stable Classification = iota
	// Marginal: dominant root within tolerance of the imaginary axis.
	Marginal
	// Unstable: a root with positive real part (growing oscillation).
	Unstable
)

// String implements fmt.Stringer.
func (c Classification) String() string {
	switch c {
	case Stable:
		return "stable"
	case Marginal:
		return "marginal"
	case Unstable:
		return "unstable"
	default:
		return fmt.Sprintf("Classification(%d)", int(c))
	}
}

// Classify labels the loop by the sign of the dominant root's real
// part, with a tolerance band around zero for the marginal case.
func Classify(a, b, tau, tol float64) (Classification, complex128, error) {
	r, err := DominantRoot(a, b, tau)
	if err != nil {
		return Stable, 0, err
	}
	switch {
	case real(r) > tol:
		return Unstable, r, nil
	case real(r) < -tol:
		return Stable, r, nil
	default:
		return Marginal, r, nil
	}
}

// RegionPoint is one cell of a stability-region sweep.
type RegionPoint struct {
	Tau      float64
	A, B     float64
	Root     complex128
	Class    Classification
	TauStar  float64 // closed-form critical delay for this (a, b)
	OmegaHat float64 // Hopf frequency
}

// SweepDelay classifies the loop at each delay in taus.
func SweepDelay(a, b float64, taus []float64, tol float64) ([]RegionPoint, error) {
	if len(taus) == 0 {
		return nil, fmt.Errorf("stability: no delays to sweep")
	}
	tauStar, omega, err := CriticalDelay(a, b)
	if err != nil {
		return nil, err
	}
	out := make([]RegionPoint, 0, len(taus))
	for _, tau := range taus {
		cls, root, err := Classify(a, b, tau, tol)
		if err != nil {
			return nil, fmt.Errorf("τ=%v: %w", tau, err)
		}
		out = append(out, RegionPoint{
			Tau: tau, A: a, B: b, Root: root, Class: cls,
			TauStar: tauStar, OmegaHat: omega,
		})
	}
	return out, nil
}
