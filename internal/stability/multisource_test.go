package stability

import (
	"math"
	"testing"

	"fpcc/internal/control"
	"fpcc/internal/dde"
)

func TestMultiSourceLinearizeReducesToSingle(t *testing.T) {
	law, err := control.NewSmoothAIMD(2, 0.8, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Linearize(law, 10, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiSourceLinearize(law, 10, 1, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.A-multi.A) > 1e-9 || math.Abs(single.B-multi.B) > 1e-9 {
		t.Errorf("n=1 must equal the single-source linearization: %+v vs %+v", multi, single)
	}
}

func TestMultiSourceDelayBudgetInvariant(t *testing.T) {
	// For SmoothAIMD, β/α = width/μ independent of n: the delay
	// budget does not collapse as sources join, but the Hopf
	// frequency stiffens like √n.
	law, err := control.NewSmoothAIMD(2, 0.8, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const mu = 10.0
	var prevOmega float64
	for _, n := range []int{1, 2, 4, 8} {
		lin, err := MultiSourceLinearize(law, mu, n, 0, 200)
		if err != nil {
			t.Fatal(err)
		}
		tauStar, omega, err := CriticalDelay(lin.A, lin.B)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tauStar-0.15) > 0.03 {
			t.Errorf("n=%d: τ* = %v strayed from width/μ = 0.15", n, tauStar)
		}
		if omega < prevOmega {
			t.Errorf("n=%d: Hopf frequency %v fell below n=%d's %v", n, omega, n/2, prevOmega)
		}
		prevOmega = omega
	}
}

func TestMultiSourceHopfFrequencySaturates(t *testing.T) {
	// Closed form: ω*(n)² ≈ C0·C1·μ/((C0+C1·μ/n)·width) — growing in
	// n but saturating at C1·μ/width (the per-source decrease branch
	// weakens exactly as fast as the head count grows).
	const (
		c0, c1, width, mu = 2.0, 0.8, 1.5, 10.0
	)
	law, err := control.NewSmoothAIMD(c0, c1, 20, width)
	if err != nil {
		t.Fatal(err)
	}
	omega := func(n int) float64 {
		lin, err := MultiSourceLinearize(law, mu, n, 0, 200)
		if err != nil {
			t.Fatal(err)
		}
		_, w, err := CriticalDelay(lin.A, lin.B)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	for _, n := range []int{1, 2, 4, 16} {
		want := math.Sqrt(c0 * c1 * mu / ((c0 + c1*mu/float64(n)) * width))
		got := omega(n)
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("n=%d: ω* = %v, closed form %v", n, got, want)
		}
	}
	sat := math.Sqrt(c1 * mu / width)
	if omega(64) > sat {
		t.Errorf("ω*(64) = %v exceeds the saturation bound %v", omega(64), sat)
	}
}

func TestMultiSourceValidation(t *testing.T) {
	law, _ := control.NewSmoothAIMD(2, 0.8, 20, 1.5)
	if _, err := MultiSourceLinearize(law, 10, 0, 0, 60); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := MultiSourceLinearize(law, 0, 2, 0, 60); err == nil {
		t.Error("zero mu: want error")
	}
	if _, err := DifferenceModeRate(law, 10, 1, 0, 60); err == nil {
		t.Error("difference modes with one source: want error")
	}
}

func TestDifferenceModeDamped(t *testing.T) {
	law, err := control.NewSmoothAIMD(2, 0.8, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := DifferenceModeRate(law, 10, 4, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !(rate < 0) {
		t.Errorf("difference-mode rate %v, want negative (fairness restored)", rate)
	}
}

// TestMultiSourceDDEInPhaseOscillation verifies the mode split on the
// full nonlinear system: four sources with equal delays ring above
// τ*, and they ring *together* — the spread across sources stays
// small relative to the common swing.
func TestMultiSourceDDEInPhaseOscillation(t *testing.T) {
	law, err := control.NewSmoothAIMD(2, 0.8, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const (
		mu = 10.0
		n  = 4
	)
	lin, err := MultiSourceLinearize(law, mu, n, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	tauStar, _, err := CriticalDelay(lin.A, lin.B)
	if err != nil {
		t.Fatal(err)
	}
	tau := 2.5 * tauStar
	sys := func(tt float64, y []float64, lag dde.Lagger, dydt []float64) {
		qDel := lag.Lag(0, tau)
		var sum float64
		for i := 1; i <= n; i++ {
			sum += y[i]
		}
		dydt[0] = sum - mu
		if y[0] <= 0 && sum < mu {
			dydt[0] = 0
		}
		for i := 1; i <= n; i++ {
			dydt[i] = law.Drift(qDel, y[i])
		}
	}
	// Deliberately unequal starting rates: the difference modes must
	// die while the symmetric mode rings.
	hist := func(tt float64) []float64 { return []float64{5, 0.5, 1.5, 2.5, 3.5} }
	res, err := dde.Solve(sys, hist, []float64{tau}, 0, 300, 0.001, dde.Options{Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	var swingLo, swingHi = math.Inf(1), math.Inf(-1)
	var maxSpread float64
	for i := 0; i < res.Len(); i++ {
		tt, y := res.At(i)
		if tt < 200 {
			continue
		}
		var lo, hi float64 = math.Inf(1), math.Inf(-1)
		for j := 1; j <= n; j++ {
			lo = math.Min(lo, y[j])
			hi = math.Max(hi, y[j])
		}
		if s := hi - lo; s > maxSpread {
			maxSpread = s
		}
		swingLo = math.Min(swingLo, y[1])
		swingHi = math.Max(swingHi, y[1])
	}
	swing := swingHi - swingLo
	if swing < 0.3 {
		t.Fatalf("no oscillation above τ*: swing %v", swing)
	}
	if maxSpread > 0.1*swing {
		t.Errorf("sources out of phase: spread %v vs common swing %v", maxSpread, swing)
	}
}
