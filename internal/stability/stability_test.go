package stability

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"fpcc/internal/control"
	"fpcc/internal/dde"
)

func TestCriticalDelayClosedFormNoDamping(t *testing.T) {
	// β = 0: ω* = √α and τ* = atan2(0, ω²)/ω = 0 — an undamped
	// delayed oscillator is marginal at zero delay.
	tau, omega, err := CriticalDelay(-4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(omega-2) > 1e-12 {
		t.Errorf("omega = %v, want 2", omega)
	}
	if tau != 0 {
		t.Errorf("tau* = %v, want 0", tau)
	}
}

func TestCriticalDelayMatchesRootCrossing(t *testing.T) {
	// The dominant root's real part must change sign exactly at τ*.
	const a, b = -3.0, -0.9
	tauStar, omega, err := CriticalDelay(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !(tauStar > 0) {
		t.Fatalf("tau* = %v, want > 0 with damping", tauStar)
	}
	below, err := DominantRoot(a, b, 0.9*tauStar)
	if err != nil {
		t.Fatal(err)
	}
	above, err := DominantRoot(a, b, 1.1*tauStar)
	if err != nil {
		t.Fatal(err)
	}
	at, err := DominantRoot(a, b, tauStar)
	if err != nil {
		t.Fatal(err)
	}
	if real(below) >= 0 {
		t.Errorf("Re(root) = %v below τ*, want negative", real(below))
	}
	if real(above) <= 0 {
		t.Errorf("Re(root) = %v above τ*, want positive", real(above))
	}
	if math.Abs(real(at)) > 1e-6 {
		t.Errorf("Re(root) = %v at τ*, want ≈ 0", real(at))
	}
	if math.Abs(imag(at)-omega) > 1e-6 {
		t.Errorf("Im(root) = %v at τ*, want Hopf frequency %v", imag(at), omega)
	}
}

func TestCriticalDelayValidation(t *testing.T) {
	if _, _, err := CriticalDelay(1, -1); err == nil {
		t.Error("a > 0: want error")
	}
	if _, _, err := CriticalDelay(-1, 1); err == nil {
		t.Error("b > 0: want error")
	}
}

func TestDominantRootUndelayedQuadratic(t *testing.T) {
	// τ = 0 reduces to s² − bs − a = 0 with roots (b ± √(b²+4a))/2.
	const a, b = -5.0, -1.2
	r, err := DominantRoot(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	disc := complex(b*b+4*a, 0)
	want := (complex(b, 0) + cmplx.Sqrt(disc)) / 2
	if imag(want) < 0 {
		want = cmplx.Conj(want)
	}
	if cmplx.Abs(r-want) > 1e-9 {
		t.Errorf("root = %v, want %v", r, want)
	}
}

func TestDominantRootIsARoot(t *testing.T) {
	for _, tau := range []float64{0, 0.1, 0.5, 1, 2} {
		r, err := DominantRoot(-2.5, -0.4, tau)
		if err != nil {
			t.Fatalf("τ=%v: %v", tau, err)
		}
		if d, _ := CharEval(r, -2.5, -0.4, tau); cmplx.Abs(d) > 1e-8 {
			t.Errorf("τ=%v: |D(root)| = %v", tau, cmplx.Abs(d))
		}
	}
}

func TestDominantRootValidation(t *testing.T) {
	if _, err := DominantRoot(1, 0, 1); err == nil {
		t.Error("a > 0: want error")
	}
	if _, err := DominantRoot(-1, 0, -1); err == nil {
		t.Error("negative delay: want error")
	}
}

func TestClassify(t *testing.T) {
	const a, b = -3.0, -0.9
	tauStar, _, err := CriticalDelay(a, b)
	if err != nil {
		t.Fatal(err)
	}
	cls, _, err := Classify(a, b, 0.5*tauStar, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if cls != Stable {
		t.Errorf("below τ*: %v, want stable", cls)
	}
	cls, _, err = Classify(a, b, 2*tauStar, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if cls != Unstable {
		t.Errorf("above τ*: %v, want unstable", cls)
	}
	cls, _, err = Classify(a, b, tauStar, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if cls != Marginal {
		t.Errorf("at τ*: %v, want marginal", cls)
	}
	if Stable.String() != "stable" || Unstable.String() != "unstable" ||
		Marginal.String() != "marginal" || Classification(9).String() == "" {
		t.Error("Classification.String broken")
	}
}

func TestSweepDelayMonotoneGrowthRate(t *testing.T) {
	// The dominant root's real part grows monotonically with τ for
	// this loop class (more delay, more instability).
	const a, b = -2.0, -0.5
	taus := []float64{0, 0.2, 0.4, 0.8, 1.2, 1.6}
	pts, err := SweepDelay(a, b, taus, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if real(pts[i].Root) < real(pts[i-1].Root)-1e-9 {
			t.Errorf("growth rate fell from %v to %v at τ=%v",
				real(pts[i-1].Root), real(pts[i].Root), pts[i].Tau)
		}
	}
	if _, err := SweepDelay(a, b, nil, 1e-9); err == nil {
		t.Error("empty sweep: want error")
	}
}

func TestLinearizeSmoothAIMDMatchesClosedForm(t *testing.T) {
	law, err := control.NewSmoothAIMD(2, 0.8, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const mu = 10.0
	lin, err := Linearize(law, mu, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	qStar, err := law.Equilibrium(mu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin.QStar-qStar) > 1e-6 {
		t.Errorf("q* = %v, closed form %v", lin.QStar, qStar)
	}
	if math.Abs(lin.A-law.PartialQ(qStar, mu)) > 1e-5 {
		t.Errorf("a = %v, closed form %v", lin.A, law.PartialQ(qStar, mu))
	}
	if math.Abs(lin.B-law.PartialLambda(qStar, mu)) > 1e-5 {
		t.Errorf("b = %v, closed form %v", lin.B, law.PartialLambda(qStar, mu))
	}
	if !(lin.A < 0) || !(lin.B < 0) {
		t.Errorf("expected restoring feedback and damping, got a=%v b=%v", lin.A, lin.B)
	}
}

func TestLinearizeValidation(t *testing.T) {
	law, _ := control.NewSmoothAIMD(2, 0.8, 20, 1)
	if _, err := Linearize(nil, 10, 0, 50); err == nil {
		t.Error("nil law: want error")
	}
	if _, err := Linearize(law, 0, 0, 50); err == nil {
		t.Error("zero mu: want error")
	}
	if _, err := Linearize(law, 10, 50, 0); err == nil {
		t.Error("inverted bracket: want error")
	}
	// A bracket that misses the equilibrium.
	if _, err := Linearize(law, 10, 100, 200); err == nil {
		t.Error("bracket without sign change: want error")
	}
}

// simulateDelayedAmplitude integrates the nonlinear smoothed fluid
// loop with delay τ and returns the swing (max−min of λ) over the
// tail of the run.
func simulateDelayedAmplitude(t *testing.T, law control.SmoothAIMD, mu, tau float64) float64 {
	t.Helper()
	sys := func(tt float64, y []float64, lag dde.Lagger, dydt []float64) {
		qDelayed := lag.Lag(0, tau)
		dydt[0] = y[1] - mu
		if y[0] <= 0 && y[1] < mu {
			dydt[0] = 0 // reflecting boundary at empty queue
		}
		dydt[1] = law.Drift(qDelayed, y[1])
	}
	hist := func(tt float64) []float64 { return []float64{5, mu + 1} }
	res, err := dde.Solve(sys, hist, []float64{tau}, 0, 400, 0.001, dde.Options{Stride: 100})
	if err != nil {
		t.Fatalf("dde solve: %v", err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < res.Len(); i++ {
		tt, y := res.At(i)
		if tt < 300 {
			continue
		}
		if y[1] < lo {
			lo = y[1]
		}
		if y[1] > hi {
			hi = y[1]
		}
	}
	return hi - lo
}

func TestCriticalDelayPredictsNonlinearOnset(t *testing.T) {
	// The closed-form τ* from the linearization must separate decaying
	// from persistent oscillation in the full nonlinear DDE: well
	// below τ* the tail swing is tiny, well above it the loop rings
	// with O(μ) amplitude.
	law, err := control.NewSmoothAIMD(2, 0.8, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const mu = 10.0
	lin, err := Linearize(law, mu, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	tauStar, _, err := CriticalDelay(lin.A, lin.B)
	if err != nil {
		t.Fatal(err)
	}
	if !(tauStar > 0.01 && tauStar < 10) {
		t.Fatalf("τ* = %v outside plausible range", tauStar)
	}
	quiet := simulateDelayedAmplitude(t, law, mu, 0.25*tauStar)
	loud := simulateDelayedAmplitude(t, law, mu, 2.5*tauStar)
	if quiet > 0.5 {
		t.Errorf("swing %v below τ*, want near-converged", quiet)
	}
	if loud < 1.5 {
		t.Errorf("swing %v above τ*, want a persistent limit cycle", loud)
	}
}

// Property: for random damped loops the closed-form Hopf point always
// has the dominant root on the imaginary axis (|Re| small) with the
// predicted frequency.
func TestHopfPointProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := -(0.2 + float64(aRaw)/32)  // (-8.2, -0.2)
		b := -(0.05 + float64(bRaw)/64) // (-4.05, -0.05)
		tauStar, omega, err := CriticalDelay(a, b)
		if err != nil || !(tauStar > 0) {
			return false
		}
		r, err := DominantRoot(a, b, tauStar)
		if err != nil {
			return false
		}
		return math.Abs(real(r)) < 1e-6*(1+omega*omega) &&
			math.Abs(imag(r)-omega) < 1e-5*(1+omega)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCriticalDelayWidthOverMuLaw(t *testing.T) {
	// Derived law: for SmoothAIMD the linearization gives exactly
	// β/α = Width/μ, so τ* = Width/μ·(1 + O(β²/α)). Verify the exact
	// ratio and the first-order delay budget across parameters.
	for _, tc := range []struct{ c0, c1, width, mu float64 }{
		{2, 0.8, 1.5, 10}, {0.5, 0.2, 1.5, 10}, {8, 1.6, 1.5, 10},
		{2, 0.8, 4, 10}, {2, 0.8, 1.5, 40},
	} {
		law, err := control.NewSmoothAIMD(tc.c0, tc.c1, 20, tc.width)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := Linearize(law, tc.mu, 0, 400)
		if err != nil {
			t.Fatal(err)
		}
		ratio := -lin.B / -lin.A // β/α
		want := tc.width / tc.mu
		if math.Abs(ratio-want) > 1e-4*want {
			t.Errorf("%+v: β/α = %v, want Width/μ = %v", tc, ratio, want)
		}
		tauStar, _, err := CriticalDelay(lin.A, lin.B)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tauStar-want) > 0.15*want {
			t.Errorf("%+v: τ* = %v, want ≈ Width/μ = %v", tc, tauStar, want)
		}
	}
}
