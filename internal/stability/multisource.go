package stability

import (
	"fmt"
	"math"

	"fpcc/internal/control"
)

// MultiSourceLinearize linearizes the delayed loop of n identical
// sources sharing one bottleneck:
//
//	dQ/dt  = Σλᵢ − μ
//	dλᵢ/dt = g(Q(t−τ), λᵢ)
//
// At the symmetric equilibrium every source sends λᵢ* = μ/n and the
// deviation dynamics split into two decoupled families:
//
//   - the symmetric (aggregate) mode Y = Σ(λᵢ−μ/n), governed by
//     dx/dt = Y, dY/dt = n·a₁·x(t−τ) + b₁·Y with a₁ = ∂g/∂q and
//     b₁ = ∂g/∂λ at (q*, μ/n) — the returned Linearization carries
//     A = n·a₁, B = b₁ so CriticalDelay/DominantRoot apply directly;
//   - n−1 difference modes λᵢ−λⱼ, each governed by dy/dt = b₁·y with
//     no delay coupling at all: they decay exponentially whenever
//     b₁ < 0 (see DifferenceModeRate).
//
// Two consequences the experiments verify: delay-induced oscillation
// is a *shared* phenomenon (every source rings in phase — the
// difference modes cannot oscillate), which is the paper's
// "oscillations for every individual user"; and adding sources barely
// moves the delay budget — for SmoothAIMD the first-order law
// τ* ≈ width/μ is independent of n as well, while the Hopf frequency
// grows with n but saturates: ω*² = C0·C1·μ/((C0+C1·μ/n)·width),
// approaching √(C1·μ/width) as n → ∞ (each source's share μ/n
// shrinks, so the per-source decrease branch weakens exactly as fast
// as the head count grows).
func MultiSourceLinearize(law control.Law, mu float64, n int, lo, hi float64) (*Linearization, error) {
	if n < 1 {
		return nil, fmt.Errorf("stability: need at least one source, got %d", n)
	}
	if !(mu > 0) || math.IsInf(mu, 1) {
		return nil, fmt.Errorf("stability: service rate must be positive, got %v", mu)
	}
	// Per-source equilibrium: g(q, μ/n) = 0, partials at (q*, μ/n).
	per, err := Linearize(law, mu/float64(n), lo, hi)
	if err != nil {
		return nil, err
	}
	return &Linearization{
		QStar:   per.QStar,
		LamStar: mu / float64(n),
		A:       float64(n) * per.A,
		B:       per.B,
	}, nil
}

// DifferenceModeRate returns the decay rate of the pairwise
// difference modes λᵢ−λⱼ of the n-source symmetric loop — simply the
// per-source damping b₁, delay-independent. A negative value means
// inequality between equal-parameter sources dies out exponentially
// even under feedback delay (equal delays; unequal delays are the
// paper's unfairness mechanism, exercised by experiment E7).
func DifferenceModeRate(law control.Law, mu float64, n int, lo, hi float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("stability: difference modes need at least 2 sources, got %d", n)
	}
	per, err := Linearize(law, mu/float64(n), lo, hi)
	if err != nil {
		return 0, err
	}
	return per.B, nil
}
