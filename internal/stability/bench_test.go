package stability

import "testing"

// BenchmarkDominantRoot times one rightmost-root search (the unit of
// work behind stability maps and E19/E23 rows).
func BenchmarkDominantRoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DominantRoot(-1.067, -0.16, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCriticalDelay times the closed-form Hopf point.
func BenchmarkCriticalDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := CriticalDelay(-1.067, -0.16); err != nil {
			b.Fatal(err)
		}
	}
}
