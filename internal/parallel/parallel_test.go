package parallel

import (
	"math"
	"sync/atomic"
	"testing"

	"fpcc/internal/rng"
)

func TestBlocksCoverEverything(t *testing.T) {
	for _, n := range []int{0, 1, 2, 15, 16, 17, 63, 64, 65, 1000, 1024, 4097} {
		size, count := Blocks(n)
		if n == 0 {
			if count != 0 {
				t.Fatalf("Blocks(0) count = %d", count)
			}
			continue
		}
		if size < 1 || count < 1 {
			t.Fatalf("Blocks(%d) = (%d, %d)", n, size, count)
		}
		if count > maxBlocks {
			t.Fatalf("Blocks(%d): %d blocks > cap %d", n, count, maxBlocks)
		}
		if (count-1)*size >= n || count*size < n {
			t.Fatalf("Blocks(%d) = (%d, %d) does not tile [0, n)", n, size, count)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 17, 64, 1000} {
			visits := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, v)
				}
			}
		}
	}
}

func TestForWorkerSlotInRange(t *testing.T) {
	const workers = 4
	var bad atomic.Bool
	ForWorker(1000, workers, func(w, lo, hi int) {
		if w < 0 || w >= workers {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Fatal("worker slot outside [0, workers)")
	}
}

// TestReduceSumWorkerInvariance is the property the Fokker-Planck
// audit reductions rely on: the sum is bit-identical for any worker
// count, including the inline serial path.
func TestReduceSumWorkerInvariance(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{1, 7, 16, 65, 1024, 4097} {
		xs := make([]float64, n)
		for i := range xs {
			// Wild magnitudes so regrouping would visibly change the sum.
			xs[i] = (r.Float64() - 0.5) * math.Pow(10, 12*r.Float64()-6)
		}
		fn := func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		}
		want := ReduceSum(n, 1, fn)
		for _, workers := range []int{2, 3, 5, 8, 100} {
			for rep := 0; rep < 3; rep++ {
				if got := ReduceSum(n, workers, fn); got != want {
					t.Fatalf("n=%d workers=%d: sum %v != serial %v", n, workers, got, want)
				}
			}
		}
	}
}

// TestForRace exercises concurrent block claiming and per-worker
// scratch under the race detector.
func TestForRace(t *testing.T) {
	scratch := NewScratch(8, func() []float64 { return make([]float64, 32) })
	dst := make([]float64, 4096)
	for rep := 0; rep < 10; rep++ {
		ForWorker(len(dst), 8, func(w, lo, hi int) {
			buf := scratch.Get(w)
			for i := lo; i < hi; i++ {
				buf[i%len(buf)] = float64(i)
				dst[i] += 1
			}
		})
	}
	for i, v := range dst {
		if v != 10 {
			t.Fatalf("index %d updated %v times, want 10", i, v)
		}
	}
}

func TestEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 10, 100} {
			visits := make([]int32, n)
			Each(n, workers, func(i int) { atomic.AddInt32(&visits[i], 1) })
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, v)
				}
			}
		}
	}
}

func TestScratchBuildsOnce(t *testing.T) {
	var builds atomic.Int32
	s := NewScratch(2, func() int { builds.Add(1); return 7 })
	for i := 0; i < 3; i++ {
		if got := s.Get(0); got != 7 {
			t.Fatalf("Get(0) = %d", got)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("constructor ran %d times, want 1", builds.Load())
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("Workers(3) != 3")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("Workers(<=0) must be at least 1")
	}
}
