// Package parallel is the deterministic fork-join primitive for
// intra-step loops: the counterpart of sweep.Map for the tight sweeps
// inside a solver step (per-row advection, per-column diffusion
// solves, per-chunk particle updates), where spawning a goroutine per
// item would dominate the work.
//
// The package owns two invariants every hot path built on it relies
// on:
//
//   - Fixed block partitioning: the index range [0, n) is split into
//     blocks whose boundaries depend only on n — never on the worker
//     count — so any block-indexed state (per-chunk rng streams,
//     per-block partial reductions) is identical for any number of
//     workers. Workers claim whole blocks from a shared counter;
//     only the scheduling of blocks varies with the worker count.
//
//   - Block-ordered reductions: ReduceSum accumulates one partial sum
//     per block and folds them in ascending block order after the
//     barrier, so floating-point reductions are bit-identical for any
//     worker count (though not necessarily equal to a single
//     straight-line sum — the grouping is per-block by construction).
//
// With workers <= 1 (or a single block) every entry point runs inline
// on the calling goroutine with no synchronization at all, so a
// serial caller pays nothing for the abstraction.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// minBlock is the smallest block size Blocks will produce: below this
// many items per block the per-block claim overhead is no longer
// amortized for the ~100ns-per-item loop bodies this package hosts.
const minBlock = 16

// maxBlocks caps the number of blocks: enough for load balance at any
// realistic worker count without making the claim counter hot.
const maxBlocks = 64

// Blocks returns the fixed block partition of [0, n): the block size
// and block count. The partition depends only on n (never on the
// worker count), which is what makes block-indexed reductions and
// per-block state deterministic under any parallelism.
func Blocks(n int) (size, count int) {
	if n <= 0 {
		return 0, 0
	}
	size = (n + maxBlocks - 1) / maxBlocks
	if size < minBlock {
		size = minBlock
	}
	count = (n + size - 1) / size
	return size, count
}

// Workers resolves a worker-count knob: values <= 0 mean GOMAXPROCS.
func Workers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs fn over the fixed block partition of [0, n) on up to
// workers goroutines: fn(lo, hi) is called once per block with
// 0 <= lo < hi <= n. Blocks are claimed in ascending order from a
// shared counter, so the set of (lo, hi) calls — and therefore any
// state written by block index — is identical for any worker count.
// fn must not panic; writes from different blocks must not overlap.
// workers <= 0 means GOMAXPROCS; with one worker (or one block) fn
// runs inline on the calling goroutine.
func For(n, workers int, fn func(lo, hi int)) {
	ForWorker(n, workers, func(_, lo, hi int) { fn(lo, hi) })
}

// ForWorker is For with a worker slot: fn(w, lo, hi) receives the
// index w in [0, workers) of the goroutine running the block, for
// indexing per-worker scratch arenas (w is a scheduling artifact —
// anything that flows into results must depend only on lo and hi).
func ForWorker(n, workers int, fn func(w, lo, hi int)) {
	size, count := Blocks(n)
	if count == 0 {
		return
	}
	workers = Workers(workers)
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for b := 0; b < count; b++ {
			lo := b * size
			hi := min(lo+size, n)
			fn(0, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= count {
					return
				}
				lo := b * size
				hi := min(lo+size, n)
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Each runs fn(i) once for every i in [0, n) on up to workers
// goroutines, claiming indices in ascending order from a shared
// counter — the no-result analogue of sweep.Map, for coarse work
// items (particle chunks, solver classes) that are each already
// thousands of operations, where For's block batching would merge
// items that deserve their own scheduling slot. fn(i) must be
// self-contained per index, which makes Each trivially deterministic
// for any worker count.
func Each(n, workers int, fn func(i int)) {
	EachWorker(n, workers, func(_, i int) { fn(i) })
}

// EachWorker is Each with a worker slot for per-worker scratch, with
// the same caveat as ForWorker: w is a scheduling artifact.
func EachWorker(n, workers int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ReduceSum folds fn over the fixed block partition of [0, n):
// fn(lo, hi) returns the block's partial sum, and the partials are
// added in ascending block order after all blocks finish. The result
// is bit-identical for any worker count because both the block
// boundaries and the fold order are fixed by n alone.
func ReduceSum(n, workers int, fn func(lo, hi int) float64) float64 {
	size, count := Blocks(n)
	if count == 0 {
		return 0
	}
	if Workers(workers) <= 1 || count == 1 {
		// Inline serial path: same block partials folded in the same
		// ascending order, so the grouping — and the sum — matches
		// the parallel path bit-for-bit, without the partials array.
		var sum float64
		for b := 0; b < count; b++ {
			lo := b * size
			sum += fn(lo, min(lo+size, n))
		}
		return sum
	}
	partial := make([]float64, count)
	ForWorker(n, workers, func(_, lo, hi int) {
		partial[lo/size] = fn(lo, hi)
	})
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// Scratch is a per-worker scratch arena: one lazily-built value per
// worker slot, for reusable buffers (tridiagonal workspaces, flux
// rows) inside ForWorker bodies. Values persist across calls on the
// same Scratch, so steady-state hot paths allocate nothing.
//
// The zero Scratch is not ready to use; create one with NewScratch.
// A Scratch is safe for use by the single fork-join running on it at
// a time (one goroutine per slot); it is not safe for two concurrent
// For calls to share one Scratch.
type Scratch[T any] struct {
	make  func() T
	slots []T
	built []bool
}

// NewScratch returns a Scratch whose slots are built on first use by
// mk. workers bounds the slot count (<= 0 means GOMAXPROCS).
func NewScratch[T any](workers int, mk func() T) *Scratch[T] {
	if mk == nil {
		panic("parallel: NewScratch with nil constructor")
	}
	w := Workers(workers)
	return &Scratch[T]{
		make:  mk,
		slots: make([]T, w),
		built: make([]bool, w),
	}
}

// Get returns worker slot w's scratch value, building it on first
// use.
func (s *Scratch[T]) Get(w int) T {
	if w < 0 || w >= len(s.slots) {
		panic(fmt.Sprintf("parallel: scratch slot %d outside [0, %d)", w, len(s.slots)))
	}
	if !s.built[w] {
		s.slots[w] = s.make()
		s.built[w] = true
	}
	return s.slots[w]
}
