// Package queue provides closed-form results for Markovian queues,
// used as analytic anchors for the packet-level simulator: an M/M/1
// queue with fixed rates is the λ-frozen special case of the adaptive
// system, so the simulator must reproduce these formulas exactly
// before its adaptive results can be trusted.
package queue

import (
	"fmt"
	"math"
)

// MM1 is an M/M/1 queue with Poisson arrivals at rate Lambda and
// exponential service at rate Mu.
type MM1 struct {
	Lambda float64
	Mu     float64
}

// NewMM1 validates and returns an M/M/1 queue description. Stability
// (ρ < 1) is not required at construction; the steady-state accessors
// return +Inf/NaN as appropriate for ρ >= 1.
func NewMM1(lambda, mu float64) (MM1, error) {
	if !(lambda >= 0) || math.IsInf(lambda, 1) {
		return MM1{}, fmt.Errorf("queue: invalid arrival rate %v", lambda)
	}
	if !(mu > 0) || math.IsInf(mu, 1) {
		return MM1{}, fmt.Errorf("queue: invalid service rate %v", mu)
	}
	return MM1{Lambda: lambda, Mu: mu}, nil
}

// Rho returns the utilization ρ = λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// Stable reports whether the queue is stable (ρ < 1).
func (q MM1) Stable() bool { return q.Rho() < 1 }

// MeanNumber returns the steady-state mean number in system
// L = ρ/(1−ρ), or +Inf for an unstable queue.
func (q MM1) MeanNumber() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// VarNumber returns the steady-state variance of the number in
// system, ρ/(1−ρ)², or +Inf for an unstable queue.
func (q MM1) VarNumber() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / ((1 - rho) * (1 - rho))
}

// ProbN returns the steady-state probability of exactly n in system,
// (1−ρ)ρⁿ, or NaN for an unstable queue.
func (q MM1) ProbN(n int) float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.NaN()
	}
	if n < 0 {
		return 0
	}
	return (1 - rho) * math.Pow(rho, float64(n))
}

// TailProb returns P(N > n) = ρ^(n+1), or NaN for an unstable queue.
// This is the buffer-overflow measure experiment E10 uses: the
// probability the queue exceeds a buffer of size n.
func (q MM1) TailProb(n int) float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.NaN()
	}
	if n < 0 {
		return 1
	}
	return math.Pow(rho, float64(n+1))
}

// MeanSojourn returns the steady-state mean time in system
// W = 1/(μ−λ), or +Inf for an unstable queue.
func (q MM1) MeanSojourn() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return 1 / (q.Mu - q.Lambda)
}

// BirthDeathStationary solves the stationary distribution of a finite
// birth-death chain with birth rates birth[i] (i -> i+1) and death
// rates death[i] (i -> i-1, death[0] ignored), normalized over states
// 0..n-1. This generalizes M/M/1/K and is used to validate simulators
// with state-dependent rates.
func BirthDeathStationary(birth, death []float64) ([]float64, error) {
	n := len(birth)
	if n == 0 || len(death) != n {
		return nil, fmt.Errorf("queue: inconsistent chain sizes %d, %d", n, len(death))
	}
	pi := make([]float64, n)
	pi[0] = 1
	for i := 1; i < n; i++ {
		if !(death[i] > 0) {
			return nil, fmt.Errorf("queue: non-positive death rate at state %d", i)
		}
		if !(birth[i-1] >= 0) {
			return nil, fmt.Errorf("queue: negative birth rate at state %d", i-1)
		}
		pi[i] = pi[i-1] * birth[i-1] / death[i]
	}
	var total float64
	for _, p := range pi {
		total += p
	}
	if !(total > 0) || math.IsInf(total, 1) || math.IsNaN(total) {
		return nil, fmt.Errorf("queue: degenerate chain (normalization %v)", total)
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi, nil
}
