package queue

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMM1Validation(t *testing.T) {
	if _, err := NewMM1(-1, 1); err == nil {
		t.Error("accepted negative lambda")
	}
	if _, err := NewMM1(1, 0); err == nil {
		t.Error("accepted zero mu")
	}
	if _, err := NewMM1(math.Inf(1), 1); err == nil {
		t.Error("accepted infinite lambda")
	}
}

func TestMM1KnownValues(t *testing.T) {
	q, err := NewMM1(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if q.Rho() != 0.5 {
		t.Fatalf("Rho = %v, want 0.5", q.Rho())
	}
	if !q.Stable() {
		t.Fatal("rho=0.5 should be stable")
	}
	if got := q.MeanNumber(); got != 1 {
		t.Fatalf("L = %v, want 1", got)
	}
	if got := q.VarNumber(); got != 2 {
		t.Fatalf("Var = %v, want 2", got)
	}
	if got := q.ProbN(0); got != 0.5 {
		t.Fatalf("P(0) = %v, want 0.5", got)
	}
	if got := q.ProbN(2); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("P(2) = %v, want 0.125", got)
	}
	if got := q.ProbN(-1); got != 0 {
		t.Fatalf("P(-1) = %v, want 0", got)
	}
	if got := q.TailProb(2); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("P(N>2) = %v, want 0.125", got)
	}
	if got := q.TailProb(-1); got != 1 {
		t.Fatalf("P(N>-1) = %v, want 1", got)
	}
	if got := q.MeanSojourn(); got != 0.2 {
		t.Fatalf("W = %v, want 0.2", got)
	}
}

func TestMM1Unstable(t *testing.T) {
	q, err := NewMM1(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stable() {
		t.Fatal("rho=1 should be unstable")
	}
	if !math.IsInf(q.MeanNumber(), 1) || !math.IsInf(q.VarNumber(), 1) || !math.IsInf(q.MeanSojourn(), 1) {
		t.Fatal("unstable queue should report +Inf moments")
	}
	if !math.IsNaN(q.ProbN(0)) || !math.IsNaN(q.TailProb(0)) {
		t.Fatal("unstable queue should report NaN probabilities")
	}
}

// Property: Little's law L = λ·W holds for every stable queue.
func TestLittlesLawProperty(t *testing.T) {
	f := func(lamRaw, muRaw uint16) bool {
		mu := float64(muRaw%1000)/10 + 1
		lam := float64(lamRaw%1000) / 10
		if lam >= mu {
			return true
		}
		q, err := NewMM1(lam, mu)
		if err != nil {
			return false
		}
		l := q.MeanNumber()
		w := q.MeanSojourn()
		return math.Abs(l-lam*w) < 1e-9*(1+l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ProbN sums to ~1 over a long prefix for stable queues.
func TestProbNormalizationProperty(t *testing.T) {
	f := func(rhoRaw uint8) bool {
		rho := float64(rhoRaw%90)/100 + 0.01
		q, err := NewMM1(rho*10, 10)
		if err != nil {
			return false
		}
		var sum float64
		for n := 0; n < 2000; n++ {
			sum += q.ProbN(n)
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBirthDeathMatchesMM1K(t *testing.T) {
	// M/M/1/4 with lambda=3, mu=6: pi_n ∝ rho^n truncated.
	const lam, mu = 3.0, 6.0
	const k = 5 // states 0..4
	birth := []float64{lam, lam, lam, lam, 0}
	death := []float64{0, mu, mu, mu, mu}
	pi, err := BirthDeathStationary(birth, death)
	if err != nil {
		t.Fatal(err)
	}
	rho := lam / mu
	var norm float64
	for n := 0; n < k; n++ {
		norm += math.Pow(rho, float64(n))
	}
	for n := 0; n < k; n++ {
		want := math.Pow(rho, float64(n)) / norm
		if math.Abs(pi[n]-want) > 1e-12 {
			t.Fatalf("pi[%d] = %v, want %v", n, pi[n], want)
		}
	}
}

func TestBirthDeathValidation(t *testing.T) {
	if _, err := BirthDeathStationary(nil, nil); err == nil {
		t.Error("accepted empty chain")
	}
	if _, err := BirthDeathStationary([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := BirthDeathStationary([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Error("accepted zero death rate")
	}
	if _, err := BirthDeathStationary([]float64{-1, 1}, []float64{0, 1}); err == nil {
		t.Error("accepted negative birth rate")
	}
}

// Property: stationary distribution is a probability vector satisfying
// detailed balance.
func TestBirthDeathDetailedBalanceProperty(t *testing.T) {
	f := func(seed uint16) bool {
		n := int(seed%8) + 2
		birth := make([]float64, n)
		death := make([]float64, n)
		x := uint64(seed) + 1
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x%1000)/100 + 0.1
		}
		for i := 0; i < n; i++ {
			birth[i] = next()
			death[i] = next()
		}
		pi, err := BirthDeathStationary(birth, death)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for i := 1; i < n; i++ {
			if math.Abs(pi[i-1]*birth[i-1]-pi[i]*death[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
