package traffic

import (
	"fmt"
	"math"
	"sort"
)

// CountsInWindows partitions [0, horizon) into consecutive windows of
// the given width and counts arrivals in each (a trailing partial
// window is dropped). times must be sorted ascending.
func CountsInWindows(times []float64, window, horizon float64) ([]int, error) {
	if !(window > 0) || !(horizon > 0) {
		return nil, fmt.Errorf("traffic: window and horizon must be positive, got %v / %v", window, horizon)
	}
	if !sort.Float64sAreSorted(times) {
		return nil, fmt.Errorf("traffic: arrival times must be sorted")
	}
	n := int(horizon / window)
	if n == 0 {
		return nil, fmt.Errorf("traffic: horizon %v shorter than window %v", horizon, window)
	}
	counts := make([]int, n)
	for _, t := range times {
		k := int(t / window)
		if k >= 0 && k < n {
			counts[k]++
		}
	}
	return counts, nil
}

// IDC returns the index of dispersion for counts at the given window
// width: Var[N(window)] / E[N(window)]. Poisson processes have IDC = 1
// at every width; bursty processes exceed 1, approaching their
// asymptotic value as the window grows past the burst timescale.
func IDC(times []float64, window, horizon float64) (float64, error) {
	counts, err := CountsInWindows(times, window, horizon)
	if err != nil {
		return 0, err
	}
	if len(counts) < 2 {
		return 0, fmt.Errorf("traffic: need at least 2 windows, have %d", len(counts))
	}
	var mean float64
	for _, c := range counts {
		mean += float64(c)
	}
	mean /= float64(len(counts))
	if !(mean > 0) {
		return 0, fmt.Errorf("traffic: no arrivals in the measurement horizon")
	}
	var ss float64
	for _, c := range counts {
		d := float64(c) - mean
		ss += d * d
	}
	variance := ss / float64(len(counts)-1)
	return variance / mean, nil
}

// IDCCurve evaluates IDC at several window widths, returning the
// curve used to locate the burst timescale (IDC rises from ≈1 at
// widths below the burst scale to the asymptote above it).
func IDCCurve(times []float64, windows []float64, horizon float64) ([]float64, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("traffic: no window widths")
	}
	out := make([]float64, len(windows))
	for i, w := range windows {
		v, err := IDC(times, w, horizon)
		if err != nil {
			return nil, fmt.Errorf("window %v: %w", w, err)
		}
		out[i] = v
	}
	return out, nil
}

// PeakToMean returns the ratio of the busiest window's count to the
// mean window count — a crude, scale-dependent burstiness measure
// complementing IDC.
func PeakToMean(times []float64, window, horizon float64) (float64, error) {
	counts, err := CountsInWindows(times, window, horizon)
	if err != nil {
		return 0, err
	}
	var mean, peak float64
	for _, c := range counts {
		mean += float64(c)
		if float64(c) > peak {
			peak = float64(c)
		}
	}
	mean /= float64(len(counts))
	if !(mean > 0) {
		return 0, fmt.Errorf("traffic: no arrivals in the measurement horizon")
	}
	if math.IsNaN(peak / mean) {
		return 0, fmt.Errorf("traffic: degenerate counts")
	}
	return peak / mean, nil
}
