// Package traffic models bursty arrival processes — Markov-modulated
// Poisson processes (MMPP), on/off sources, square-wave modulation and
// batch Poisson arrivals — together with the burstiness measurement
// (index of dispersion for counts) used to characterize them.
//
// The paper's closing claim is that the Fokker-Planck model "addresses
// traffic variability (to some extent) that fluid approximation
// techniques do not address". This package supplies the variability:
// arrival streams whose index of dispersion is far above the Poisson
// value of 1, which stress the feedback controllers in ways a constant-
// rate fluid cannot. The packet simulator (internal/des) accepts any
// Modulator as a per-source rate envelope.
package traffic

import (
	"fmt"
	"math"

	"fpcc/internal/rng"
)

// Modulator describes a stationary piecewise-constant rate-modulation
// process: the instantaneous arrival rate of a modulated source is
// baseRate · Factor(state), with the state evolving as a semi-Markov
// chain. Implementations must be safe for concurrent use by
// independent goroutines holding independent rng.Sources (they are
// immutable descriptions; all randomness flows through the arguments).
type Modulator interface {
	// Name identifies the process family in reports.
	Name() string
	// States returns the number of modulation states.
	States() int
	// Factor returns the rate multiplier of a state (≥ 0).
	Factor(state int) float64
	// InitState draws the initial state from the stationary law.
	InitState(r *rng.Source) int
	// Sojourn draws the holding time in a state (> 0).
	Sojourn(state int, r *rng.Source) float64
	// Next draws the successor state.
	Next(state int, r *rng.Source) int
}

// MMPP is a Markov-modulated Poisson process: exponential sojourns
// with per-state rate multipliers. The special two-state case has
// closed-form burstiness (see IDCInfinity), which the tests exploit.
type MMPP struct {
	Factors []float64   // rate multiplier per state
	Switch  [][]float64 // Switch[i][j]: transition rate i→j (i≠j)
	name    string

	stationary []float64 // cached stationary law
	outRate    []float64 // total switch rate per state
}

// NewMMPP builds a general MMPP from factors and a switch-rate matrix.
func NewMMPP(factors []float64, sw [][]float64) (*MMPP, error) {
	m := &MMPP{Factors: factors, Switch: sw, name: "MMPP"}
	if err := m.init(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewMMPP2 builds the two-state MMPP with multipliers f1, f2 and
// switch rates r12 (state 1 → 2) and r21.
func NewMMPP2(f1, f2, r12, r21 float64) (*MMPP, error) {
	m := &MMPP{
		Factors: []float64{f1, f2},
		Switch:  [][]float64{{0, r12}, {r21, 0}},
		name:    "MMPP2",
	}
	if err := m.init(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewOnOff builds an on/off source: bursts at peak multiplier for
// Exp(meanOn) then silence for Exp(meanOff). peak is scaled so the
// long-run mean multiplier is exactly 1, keeping the modulated
// source's average rate equal to its nominal rate (the controller's
// λ). The burstiness β = (meanOn+meanOff)/meanOn is the peak factor.
func NewOnOff(meanOn, meanOff float64) (*MMPP, error) {
	if !(meanOn > 0) || !(meanOff > 0) {
		return nil, fmt.Errorf("traffic: on/off sojourns must be positive, got on=%v off=%v", meanOn, meanOff)
	}
	peak := (meanOn + meanOff) / meanOn
	m := &MMPP{
		Factors: []float64{peak, 0},
		Switch:  [][]float64{{0, 1 / meanOn}, {1 / meanOff, 0}},
		name:    "OnOff",
	}
	if err := m.init(); err != nil {
		return nil, err
	}
	return m, nil
}

// init validates and caches the stationary law.
func (m *MMPP) init() error {
	n := len(m.Factors)
	if n < 2 {
		return fmt.Errorf("traffic: MMPP needs at least 2 states, got %d", n)
	}
	if len(m.Switch) != n {
		return fmt.Errorf("traffic: switch matrix has %d rows, want %d", len(m.Switch), n)
	}
	for i, f := range m.Factors {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 1) {
			return fmt.Errorf("traffic: factor[%d] = %v invalid", i, f)
		}
	}
	m.outRate = make([]float64, n)
	for i, row := range m.Switch {
		if len(row) != n {
			return fmt.Errorf("traffic: switch row %d has %d entries, want %d", i, len(row), n)
		}
		for j, r := range row {
			if i == j {
				continue
			}
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 1) {
				return fmt.Errorf("traffic: switch[%d][%d] = %v invalid", i, j, r)
			}
			m.outRate[i] += r
		}
		if !(m.outRate[i] > 0) {
			return fmt.Errorf("traffic: state %d has no way out (absorbing)", i)
		}
	}
	// Stationary law of the modulating CTMC by power iteration on the
	// uniformized kernel (the chains here are tiny).
	lambda := 0.0
	for _, o := range m.outRate {
		if o > lambda {
			lambda = o
		}
	}
	lambda *= 1.0000001
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for it := 0; it < 200000; it++ {
		for j := range next {
			next[j] = 0
		}
		for i, p := range cur {
			next[i] += p * (1 - m.outRate[i]/lambda)
			for j, r := range m.Switch[i] {
				if i != j && r > 0 {
					next[j] += p * r / lambda
				}
			}
		}
		var d float64
		for i := range next {
			d += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if d < 1e-14 {
			break
		}
	}
	m.stationary = cur
	return nil
}

// Name implements Modulator.
func (m *MMPP) Name() string { return m.name }

// States implements Modulator.
func (m *MMPP) States() int { return len(m.Factors) }

// Factor implements Modulator.
func (m *MMPP) Factor(state int) float64 { return m.Factors[state] }

// Stationary returns the stationary law of the modulating chain.
func (m *MMPP) Stationary() []float64 {
	return append([]float64(nil), m.stationary...)
}

// MeanFactor returns the long-run mean rate multiplier E[Factor].
func (m *MMPP) MeanFactor() float64 {
	var s float64
	for i, p := range m.stationary {
		s += p * m.Factors[i]
	}
	return s
}

// InitState implements Modulator: draw from the stationary law.
func (m *MMPP) InitState(r *rng.Source) int {
	u := r.Float64()
	var cum float64
	for i, p := range m.stationary {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(m.stationary) - 1
}

// Sojourn implements Modulator: exponential holding time.
func (m *MMPP) Sojourn(state int, r *rng.Source) float64 {
	return r.Exp(m.outRate[state])
}

// Next implements Modulator: jump proportional to switch rates.
func (m *MMPP) Next(state int, r *rng.Source) int {
	u := r.Float64() * m.outRate[state]
	var cum float64
	for j, rate := range m.Switch[state] {
		if j == state {
			continue
		}
		cum += rate
		if u < cum {
			return j
		}
	}
	// Floating-point slack: return the last reachable state.
	for j := len(m.Switch[state]) - 1; j >= 0; j-- {
		if j != state && m.Switch[state][j] > 0 {
			return j
		}
	}
	return state
}

// IDCInfinity returns the large-window limit of the index of
// dispersion for counts of a two-state MMPP driven at the given base
// rate b (arrival rate in state i is b·fᵢ):
//
//	IDC(∞) = 1 + 2·b·π1·π2·(f1−f2)² / ((r12+r21)·f̄)
//
// The Poisson term contributes the 1; the modulation term scales with
// the base rate because rate fluctuations add variance ∝ b² while the
// mean count grows only ∝ b. For f1 = f2 the IDC is 1 at every rate.
// Only defined for 2-state chains.
func (m *MMPP) IDCInfinity(baseRate float64) (float64, error) {
	if len(m.Factors) != 2 {
		return 0, fmt.Errorf("traffic: IDCInfinity needs a 2-state MMPP, have %d states", len(m.Factors))
	}
	if !(baseRate > 0) || math.IsInf(baseRate, 1) {
		return 0, fmt.Errorf("traffic: base rate must be positive, got %v", baseRate)
	}
	r12, r21 := m.Switch[0][1], m.Switch[1][0]
	pi1 := r21 / (r12 + r21)
	pi2 := 1 - pi1
	fbar := pi1*m.Factors[0] + pi2*m.Factors[1]
	if !(fbar > 0) {
		return 0, fmt.Errorf("traffic: mean factor is zero")
	}
	d := m.Factors[0] - m.Factors[1]
	return 1 + 2*baseRate*pi1*pi2*d*d/((r12+r21)*fbar), nil
}

// SquareWave is a deterministic two-state modulator: factor hi for
// durHi seconds, lo for durLo, repeating. It is the worst-case
// periodic burst pattern (no randomness to average over) and doubles
// as a test fixture with exactly predictable switch times.
type SquareWave struct {
	Hi, Lo       float64
	DurHi, DurLo float64
}

// NewSquareWave validates and returns a square-wave modulator.
func NewSquareWave(hi, lo, durHi, durLo float64) (*SquareWave, error) {
	switch {
	case hi < 0 || lo < 0 || math.IsNaN(hi) || math.IsNaN(lo):
		return nil, fmt.Errorf("traffic: square-wave factors must be ≥ 0, got %v / %v", hi, lo)
	case !(durHi > 0) || !(durLo > 0):
		return nil, fmt.Errorf("traffic: square-wave durations must be positive, got %v / %v", durHi, durLo)
	}
	return &SquareWave{Hi: hi, Lo: lo, DurHi: durHi, DurLo: durLo}, nil
}

// Name implements Modulator.
func (s *SquareWave) Name() string { return "SquareWave" }

// States implements Modulator.
func (s *SquareWave) States() int { return 2 }

// Factor implements Modulator.
func (s *SquareWave) Factor(state int) float64 {
	if state == 0 {
		return s.Hi
	}
	return s.Lo
}

// InitState implements Modulator: start in the hi phase.
func (s *SquareWave) InitState(*rng.Source) int { return 0 }

// Sojourn implements Modulator: deterministic phase durations.
func (s *SquareWave) Sojourn(state int, _ *rng.Source) float64 {
	if state == 0 {
		return s.DurHi
	}
	return s.DurLo
}

// Next implements Modulator: alternate phases.
func (s *SquareWave) Next(state int, _ *rng.Source) int { return 1 - state }

// MeanFactor returns the time-average multiplier.
func (s *SquareWave) MeanFactor() float64 {
	return (s.Hi*s.DurHi + s.Lo*s.DurLo) / (s.DurHi + s.DurLo)
}

// Envelope is one realization of a modulation process: the factor is
// F[i] on [T[i], T[i+1]) (and F[len-1] from T[len-1] on).
type Envelope struct {
	T []float64
	F []float64
}

// Realize draws an envelope of the modulator over [0, horizon].
func Realize(m Modulator, r *rng.Source, horizon float64) (*Envelope, error) {
	if m == nil {
		return nil, fmt.Errorf("traffic: nil modulator")
	}
	if !(horizon > 0) {
		return nil, fmt.Errorf("traffic: horizon must be positive, got %v", horizon)
	}
	if r == nil {
		return nil, fmt.Errorf("traffic: nil rng")
	}
	env := &Envelope{}
	state := m.InitState(r)
	t := 0.0
	for t < horizon {
		env.T = append(env.T, t)
		env.F = append(env.F, m.Factor(state))
		t += m.Sojourn(state, r)
		state = m.Next(state, r)
	}
	return env, nil
}

// At returns the factor at time t (0 before the first segment).
func (e *Envelope) At(t float64) float64 {
	if len(e.T) == 0 || t < e.T[0] {
		return 0
	}
	// Binary search for the last segment start ≤ t.
	lo, hi := 0, len(e.T)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.T[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return e.F[lo]
}

// MeanOver returns the time-average factor over [0, horizon].
func (e *Envelope) MeanOver(horizon float64) float64 {
	if len(e.T) == 0 || !(horizon > 0) {
		return 0
	}
	var integral float64
	for i := range e.T {
		if e.T[i] >= horizon {
			break
		}
		end := horizon
		if i+1 < len(e.T) && e.T[i+1] < horizon {
			end = e.T[i+1]
		}
		integral += e.F[i] * (end - e.T[i])
	}
	return integral / horizon
}

// Arrivals generates the arrival times of a modulated Poisson process
// with the given base rate over [0, horizon]: in state s arrivals are
// Poisson with rate baseRate·Factor(s).
func Arrivals(m Modulator, r *rng.Source, baseRate, horizon float64) ([]float64, error) {
	if m == nil {
		return nil, fmt.Errorf("traffic: nil modulator")
	}
	if !(baseRate > 0) || math.IsInf(baseRate, 1) {
		return nil, fmt.Errorf("traffic: base rate must be positive, got %v", baseRate)
	}
	if !(horizon > 0) {
		return nil, fmt.Errorf("traffic: horizon must be positive, got %v", horizon)
	}
	if r == nil {
		return nil, fmt.Errorf("traffic: nil rng")
	}
	var times []float64
	state := m.InitState(r)
	t := 0.0
	switchAt := m.Sojourn(state, r)
	for t < horizon {
		rate := baseRate * m.Factor(state)
		var nextArr float64
		if rate > 0 {
			nextArr = t + r.Exp(rate)
		} else {
			nextArr = math.Inf(1)
		}
		if nextArr < switchAt {
			if nextArr > horizon {
				break
			}
			t = nextArr
			times = append(times, t)
		} else {
			t = switchAt
			state = m.Next(state, r)
			switchAt = t + m.Sojourn(state, r)
		}
	}
	return times, nil
}
