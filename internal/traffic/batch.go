package traffic

import (
	"fmt"
	"math"

	"fpcc/internal/rng"
)

// BatchPoisson generates batch arrivals: batches arrive as a Poisson
// process and each batch carries a geometrically distributed number of
// packets (mean BatchMean, support 1, 2, ...). The packet-level index
// of dispersion for counts is exactly 2·BatchMean − 1, so the process
// provides a one-knob burstiness dial with a closed form the tests
// verify against.
type BatchPoisson struct {
	// PacketRate is the long-run packets/s; batches arrive at
	// PacketRate/BatchMean.
	PacketRate float64
	// BatchMean is the mean geometric batch size (≥ 1; 1 = plain
	// Poisson).
	BatchMean float64
}

// NewBatchPoisson validates and returns a batch-Poisson source.
func NewBatchPoisson(packetRate, batchMean float64) (*BatchPoisson, error) {
	switch {
	case !(packetRate > 0) || math.IsInf(packetRate, 1):
		return nil, fmt.Errorf("traffic: packet rate must be positive, got %v", packetRate)
	case !(batchMean >= 1) || math.IsInf(batchMean, 1):
		return nil, fmt.Errorf("traffic: mean batch size must be ≥ 1, got %v", batchMean)
	}
	return &BatchPoisson{PacketRate: packetRate, BatchMean: batchMean}, nil
}

// IDC returns the exact large-window index of dispersion for counts,
// 2·BatchMean − 1.
func (b *BatchPoisson) IDC() float64 { return 2*b.BatchMean - 1 }

// geometric draws from the geometric distribution on {1, 2, ...} with
// mean m ≥ 1 (success probability 1/m).
func geometric(r *rng.Source, m float64) int {
	if m <= 1 {
		return 1
	}
	// Inversion: k = ceil(ln U / ln(1 − p)) with p = 1/m.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	k := int(math.Ceil(math.Log(u) / math.Log(1-1/m)))
	if k < 1 {
		k = 1
	}
	return k
}

// Arrivals generates packet arrival times over [0, horizon]. Packets
// in one batch share the batch's arrival instant (back-to-back line
// rate is an idealization, as in batch-arrival queueing models).
func (b *BatchPoisson) Arrivals(r *rng.Source, horizon float64) ([]float64, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("traffic: horizon must be positive, got %v", horizon)
	}
	if r == nil {
		return nil, fmt.Errorf("traffic: nil rng")
	}
	batchRate := b.PacketRate / b.BatchMean
	var times []float64
	t := 0.0
	for {
		t += r.Exp(batchRate)
		if t > horizon {
			return times, nil
		}
		n := geometric(r, b.BatchMean)
		for i := 0; i < n; i++ {
			times = append(times, t)
		}
	}
}
