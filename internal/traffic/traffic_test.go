package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/rng"
)

func TestNewMMPP2Validation(t *testing.T) {
	cases := []struct {
		f1, f2, r12, r21 float64
	}{
		{-1, 1, 1, 1}, {1, math.NaN(), 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0},
		{1, 1, -2, 1}, {math.Inf(1), 1, 1, 1},
	}
	for _, tc := range cases {
		if _, err := NewMMPP2(tc.f1, tc.f2, tc.r12, tc.r21); err == nil {
			t.Errorf("NewMMPP2(%v,%v,%v,%v): want error", tc.f1, tc.f2, tc.r12, tc.r21)
		}
	}
}

func TestNewMMPPValidation(t *testing.T) {
	if _, err := NewMMPP([]float64{1}, [][]float64{{0}}); err == nil {
		t.Error("single state: want error")
	}
	if _, err := NewMMPP([]float64{1, 2}, [][]float64{{0, 1}}); err == nil {
		t.Error("short switch matrix: want error")
	}
	if _, err := NewMMPP([]float64{1, 2}, [][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged switch matrix: want error")
	}
}

func TestMMPP2Stationary(t *testing.T) {
	// π1 = r21/(r12+r21).
	m, err := NewMMPP2(2, 0.5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pi := m.Stationary()
	if math.Abs(pi[0]-0.25) > 1e-10 || math.Abs(pi[1]-0.75) > 1e-10 {
		t.Errorf("stationary = %v, want [0.25 0.75]", pi)
	}
	wantMean := 0.25*2 + 0.75*0.5
	if math.Abs(m.MeanFactor()-wantMean) > 1e-10 {
		t.Errorf("MeanFactor = %v, want %v", m.MeanFactor(), wantMean)
	}
}

func TestOnOffMeanFactorIsOne(t *testing.T) {
	for _, tc := range []struct{ on, off float64 }{
		{1, 1}, {0.1, 0.9}, {5, 2}, {0.01, 1},
	} {
		m, err := NewOnOff(tc.on, tc.off)
		if err != nil {
			t.Fatal(err)
		}
		if mf := m.MeanFactor(); math.Abs(mf-1) > 1e-9 {
			t.Errorf("on=%v off=%v: mean factor %v, want 1", tc.on, tc.off, mf)
		}
	}
	if _, err := NewOnOff(0, 1); err == nil {
		t.Error("zero on-time: want error")
	}
	if _, err := NewOnOff(1, -1); err == nil {
		t.Error("negative off-time: want error")
	}
}

func TestPoissonIDCNearOne(t *testing.T) {
	// An unmodulated process (factors equal) is plain Poisson: IDC ≈ 1.
	m, err := NewMMPP2(1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	const horizon = 5000.0
	times, err := Arrivals(m, r, 20, horizon)
	if err != nil {
		t.Fatal(err)
	}
	idc, err := IDC(times, 1.0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if idc < 0.9 || idc > 1.1 {
		t.Errorf("Poisson IDC = %v, want ≈ 1", idc)
	}
}

func TestMMPP2IDCMatchesClosedForm(t *testing.T) {
	// Strongly bimodal MMPP: the measured large-window IDC must land
	// near the closed form 1 + 2π1π2(f1−f2)²/((r12+r21)·f̄).
	m, err := NewMMPP2(3, 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const baseRate = 25.0
	want, err := m.IDCInfinity(baseRate)
	if err != nil {
		t.Fatal(err)
	}
	if want <= 1.5 {
		t.Fatalf("test fixture too tame: closed-form IDC %v", want)
	}
	r := rng.New(7)
	const horizon = 40000.0
	times, err := Arrivals(m, r, baseRate, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Window far above the 1/(r12+r21) = 1s burst scale.
	idc, err := IDC(times, 50, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idc-want) > 0.35*want {
		t.Errorf("measured IDC %v vs closed form %v (>35%% off)", idc, want)
	}
}

func TestIDCInfinityRequiresTwoStates(t *testing.T) {
	m, err := NewMMPP(
		[]float64{1, 2, 3},
		[][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.IDCInfinity(10); err == nil {
		t.Error("3-state IDCInfinity: want error")
	}
	m2, err := NewMMPP2(1, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.IDCInfinity(0); err == nil {
		t.Error("zero base rate: want error")
	}
}

func TestIDCCurveRises(t *testing.T) {
	// For bursty traffic IDC(w) grows with w toward the asymptote.
	m, err := NewOnOff(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	const horizon = 30000.0
	times, err := Arrivals(m, r, 30, horizon)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := IDCCurve(times, []float64{0.05, 1, 20}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !(curve[0] < curve[1] && curve[1] < curve[2]) {
		t.Errorf("IDC curve not rising: %v", curve)
	}
	if curve[2] < 3 {
		t.Errorf("large-window IDC %v too small for on/off burst traffic", curve[2])
	}
}

func TestSquareWave(t *testing.T) {
	sw, err := NewSquareWave(2, 0.5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sw.States() != 2 || sw.Name() == "" {
		t.Error("basic accessors broken")
	}
	if mf := sw.MeanFactor(); math.Abs(mf-(2*1+0.5*3)/4) > 1e-12 {
		t.Errorf("MeanFactor = %v", mf)
	}
	r := rng.New(1)
	env, err := Realize(sw, r, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic phases: hi at t∈[0,1), lo at [1,4), hi at [4,5)...
	for _, tc := range []struct {
		t, want float64
	}{
		{0, 2}, {0.5, 2}, {1.5, 0.5}, {3.9, 0.5}, {4.2, 2}, {8.5, 2}, {9.5, 0.5},
	} {
		if got := env.At(tc.t); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if m := env.MeanOver(8); math.Abs(m-sw.MeanFactor()) > 1e-12 {
		t.Errorf("MeanOver(8) = %v, want %v", m, sw.MeanFactor())
	}
	if _, err := NewSquareWave(-1, 0, 1, 1); err == nil {
		t.Error("negative hi: want error")
	}
	if _, err := NewSquareWave(1, 0, 0, 1); err == nil {
		t.Error("zero duration: want error")
	}
}

func TestEnvelopeAtBeforeStart(t *testing.T) {
	e := &Envelope{T: []float64{1, 2}, F: []float64{3, 4}}
	if v := e.At(0.5); v != 0 {
		t.Errorf("At before first segment = %v, want 0", v)
	}
	var empty Envelope
	if v := empty.At(1); v != 0 {
		t.Errorf("empty envelope At = %v, want 0", v)
	}
}

func TestRealizeValidation(t *testing.T) {
	m, _ := NewOnOff(1, 1)
	r := rng.New(1)
	if _, err := Realize(nil, r, 1); err == nil {
		t.Error("nil modulator: want error")
	}
	if _, err := Realize(m, nil, 1); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := Realize(m, r, 0); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestArrivalsValidation(t *testing.T) {
	m, _ := NewOnOff(1, 1)
	r := rng.New(1)
	if _, err := Arrivals(nil, r, 1, 1); err == nil {
		t.Error("nil modulator: want error")
	}
	if _, err := Arrivals(m, nil, 1, 1); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := Arrivals(m, r, 0, 1); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := Arrivals(m, r, 1, 0); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestArrivalsMeanRatePreserved(t *testing.T) {
	// An on/off envelope with mean factor 1 keeps the long-run packet
	// rate at the base rate.
	m, err := NewOnOff(1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	const base, horizon = 40.0, 20000.0
	times, err := Arrivals(m, r, base, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(len(times)) / horizon
	if math.Abs(rate-base) > 0.05*base {
		t.Errorf("long-run rate %v, want ≈ %v", rate, base)
	}
}

// Property: envelopes are time-ordered with non-negative factors, and
// arrivals are sorted within the horizon.
func TestModulatorProperties(t *testing.T) {
	f := func(seed uint64, onRaw, offRaw uint8) bool {
		on := 0.05 + float64(onRaw)/64
		off := 0.05 + float64(offRaw)/64
		m, err := NewOnOff(on, off)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		env, err := Realize(m, r, 50)
		if err != nil {
			return false
		}
		for i := range env.T {
			if env.F[i] < 0 {
				return false
			}
			if i > 0 && env.T[i] <= env.T[i-1] {
				return false
			}
		}
		times, err := Arrivals(m, rng.New(seed+1), 5, 50)
		if err != nil {
			return false
		}
		for i, tt := range times {
			if tt < 0 || tt > 50 {
				return false
			}
			if i > 0 && tt < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBatchPoissonIDC(t *testing.T) {
	b, err := NewBatchPoisson(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.IDC(), 7.0; got != want {
		t.Fatalf("closed-form IDC = %v, want %v", got, want)
	}
	r := rng.New(5)
	const horizon = 20000.0
	times, err := b.Arrivals(r, horizon)
	if err != nil {
		t.Fatal(err)
	}
	idc, err := IDC(times, 10, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idc-7) > 2 {
		t.Errorf("measured IDC %v, want ≈ 7", idc)
	}
	rate := float64(len(times)) / horizon
	if math.Abs(rate-30) > 1.5 {
		t.Errorf("packet rate %v, want ≈ 30", rate)
	}
}

func TestBatchPoissonValidation(t *testing.T) {
	if _, err := NewBatchPoisson(0, 2); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := NewBatchPoisson(10, 0.5); err == nil {
		t.Error("batch mean < 1: want error")
	}
	b, _ := NewBatchPoisson(10, 1)
	if b.IDC() != 1 {
		t.Errorf("batch mean 1 must be Poisson (IDC 1), got %v", b.IDC())
	}
	r := rng.New(3)
	if _, err := b.Arrivals(r, 0); err == nil {
		t.Error("zero horizon: want error")
	}
	if _, err := b.Arrivals(nil, 10); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestGeometricMean(t *testing.T) {
	r := rng.New(8)
	const n = 200000
	for _, m := range []float64{1, 1.5, 4, 10} {
		var sum float64
		for i := 0; i < n; i++ {
			k := geometric(r, m)
			if k < 1 {
				t.Fatalf("geometric returned %d < 1", k)
			}
			sum += float64(k)
		}
		got := sum / n
		if math.Abs(got-m) > 0.05*m+0.01 {
			t.Errorf("geometric mean %v, want %v", got, m)
		}
	}
}

func TestCountsInWindowsErrors(t *testing.T) {
	if _, err := CountsInWindows([]float64{1, 0.5}, 1, 10); err == nil {
		t.Error("unsorted times: want error")
	}
	if _, err := CountsInWindows(nil, 0, 10); err == nil {
		t.Error("zero window: want error")
	}
	if _, err := CountsInWindows(nil, 5, 3); err == nil {
		t.Error("horizon < window: want error")
	}
}

func TestIDCErrors(t *testing.T) {
	if _, err := IDC(nil, 1, 1.5); err == nil {
		t.Error("single window: want error")
	}
	if _, err := IDC(nil, 1, 10); err == nil {
		t.Error("no arrivals: want error")
	}
	if _, err := IDCCurve(nil, nil, 10); err == nil {
		t.Error("no widths: want error")
	}
}

func TestPeakToMean(t *testing.T) {
	times := []float64{0.1, 0.2, 0.3, 5.5}
	p, err := PeakToMean(times, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Counts: [3 0 0 0 0 1 0 0 0 0] → mean 0.4, peak 3.
	if math.Abs(p-7.5) > 1e-12 {
		t.Errorf("PeakToMean = %v, want 7.5", p)
	}
	if _, err := PeakToMean(nil, 1, 10); err == nil {
		t.Error("no arrivals: want error")
	}
}
