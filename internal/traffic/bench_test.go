package traffic

import (
	"testing"

	"fpcc/internal/rng"
)

// BenchmarkArrivalsMMPP times generating one second of modulated
// arrivals at 10k packets/s (the open-loop generation path).
func BenchmarkArrivalsMMPP(b *testing.B) {
	m, err := NewMMPP2(2, 0.5, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Arrivals(m, r, 10000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIDC times the dispersion measurement over 1e5 arrivals.
func BenchmarkIDC(b *testing.B) {
	m, err := NewOnOff(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	times, err := Arrivals(m, rng.New(2), 100, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IDC(times, 1, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
