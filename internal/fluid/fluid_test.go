package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/control"
)

func mustAIMD(t testing.TB, c0, c1, qHat float64) control.AIMD {
	t.Helper()
	l, err := control.NewAIMD(c0, c1, qHat)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestValidate(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 10)
	good := Model{Mu: 5, Sources: []Source{{Law: l, Lambda0: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []Model{
		{Mu: 0, Sources: []Source{{Law: l}}},
		{Mu: 5, Q0: -1, Sources: []Source{{Law: l}}},
		{Mu: 5},
		{Mu: 5, Sources: []Source{{Law: nil}}},
		{Mu: 5, Sources: []Source{{Law: l, Delay: -1}}},
		{Mu: 5, Sources: []Source{{Law: l, Lambda0: -1}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

// TestSingleSourceConvergence: without delay the fluid model must
// reproduce Theorem 1 — convergence to Q = q̂, λ = μ.
func TestSingleSourceConvergence(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	m := Model{Mu: 10, Q0: 0, Sources: []Source{{Law: l, Lambda0: 2}}}
	sol, err := m.Solve(800, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, y := sol.Last()
	if math.Abs(y[0]-20) > 1.0 {
		t.Errorf("final queue %v, want near 20", y[0])
	}
	if math.Abs(y[1]-10) > 1.0 {
		t.Errorf("final rate %v, want near 10", y[1])
	}
}

// TestEqualSourcesFairShare: N identical sources converge to equal
// shares of μ (Section 6 fairness).
func TestEqualSourcesFairShare(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	const n = 4
	const mu = 12.0
	srcs := make([]Source, n)
	for i := range srcs {
		// Deliberately very unequal starting rates.
		srcs[i] = Source{Law: l, Lambda0: float64(i) * 2}
	}
	m := Model{Mu: mu, Q0: 0, Sources: srcs}
	sol, err := m.Solve(2000, 1e-3, 200)
	if err != nil {
		t.Fatal(err)
	}
	means := sol.MeanRates(1500)
	for i, mean := range means {
		if math.Abs(mean-mu/n)/(mu/n) > 0.05 {
			t.Errorf("source %d mean rate %v, want ~%v (equal share)", i, mean, mu/n)
		}
	}
}

// TestHeterogeneousShares: sources with different (C0, C1) split the
// bottleneck according to C0ᵢ/C1ᵢ (Section 6's exact-share law).
func TestHeterogeneousShares(t *testing.T) {
	laws := []control.AIMD{
		mustAIMD(t, 2, 0.8, 20),
		mustAIMD(t, 1, 0.8, 20), // half the increase rate -> half the share
	}
	const mu = 10.0
	m := Model{Mu: mu, Q0: 0, Sources: []Source{
		{Law: laws[0], Lambda0: 1},
		{Law: laws[1], Lambda0: 1},
	}}
	sol, err := m.Solve(3000, 1e-3, 200)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictedShares(laws)
	if err != nil {
		t.Fatal(err)
	}
	means := sol.MeanRates(2000)
	total := means[0] + means[1]
	for i := range means {
		gotShare := means[i] / total
		if math.Abs(gotShare-pred[i]) > 0.05 {
			t.Errorf("source %d share %v, predicted %v", i, gotShare, pred[i])
		}
	}
}

// TestDelayInducesOscillation: with feedback delay the queue must
// oscillate persistently instead of converging (Section 7).
func TestDelayInducesOscillation(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	const mu = 10.0
	run := func(delay float64) float64 {
		m := Model{Mu: mu, Q0: 0, Sources: []Source{{Law: l, Delay: delay, Lambda0: 2}}}
		sol, err := m.Solve(600, 1e-3, 10)
		if err != nil {
			t.Fatal(err)
		}
		// Late-window queue swing.
		var lo, hi = math.Inf(1), math.Inf(-1)
		for i := 0; i < sol.Len(); i++ {
			tt, y := sol.At(i)
			if tt < 400 {
				continue
			}
			lo = math.Min(lo, y[0])
			hi = math.Max(hi, y[0])
		}
		return hi - lo
	}
	noDelay := run(0)
	delayed := run(2.0)
	if noDelay > 2 {
		t.Errorf("no-delay late swing %v, want near 0 (converged)", noDelay)
	}
	if delayed < 5 {
		t.Errorf("delayed late swing %v, want sustained oscillation", delayed)
	}
	if delayed < 3*noDelay {
		t.Errorf("delay should amplify oscillation: %v vs %v", delayed, noDelay)
	}
}

// TestPureDelayKeepsAverageShares documents a structural property of
// the rate model: with identical laws and different observation delays
// only, a time-shifted copy of one source's periodic solution solves
// the other's equation, so long-run average shares stay (nearly)
// equal even though instantaneous rates separate. (The paper's
// delay-unfairness operates through the full RTT coupling — see
// TestRTTCoupledUnfairness.)
func TestPureDelayKeepsAverageShares(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	const mu = 10.0
	m := Model{Mu: mu, Q0: 0, Sources: []Source{
		{Law: l, Delay: 0.5, Lambda0: 5},
		{Law: l, Delay: 4.0, Lambda0: 5},
	}}
	sol, err := m.Solve(2000, 5e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	means := sol.MeanRates(1000)
	if ratio := means[0] / means[1]; math.Abs(ratio-1) > 0.05 {
		t.Fatalf("pure observation delay changed average shares: ratio %v", ratio)
	}
	// But the instantaneous rates must genuinely differ (the sources
	// are out of phase, not identical).
	_, l0 := sol.Rate(0)
	_, l1 := sol.Rate(1)
	var maxGap float64
	for i := range l0 {
		if g := math.Abs(l0[i] - l1[i]); g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 0.5 {
		t.Fatalf("sources move in lock-step (max gap %v); expected phase separation", maxGap)
	}
}

// TestRTTCoupledUnfairness: a longer connection has both a staler
// signal and a slower additive probe (C0 ∝ 1/RTT, one window step per
// RTT). The longer connection must then lose clearly (Section 7).
func TestRTTCoupledUnfairness(t *testing.T) {
	const mu = 10.0
	const rtt1, rtt2 = 0.5, 2.0
	l1 := mustAIMD(t, 2, 0.8, 20)
	l2 := mustAIMD(t, 2*rtt1/rtt2, 0.8, 20)
	m := Model{Mu: mu, Q0: 0, Sources: []Source{
		{Law: l1, Delay: rtt1, Lambda0: 5},
		{Law: l2, Delay: rtt2, Lambda0: 5},
	}}
	sol, err := m.Solve(2000, 5e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	means := sol.MeanRates(1000)
	if !(means[0] > 1.5*means[1]) {
		t.Fatalf("short connection %v should clearly beat long connection %v", means[0], means[1])
	}
}

func TestQueueNonNegative(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 5)
	m := Model{Mu: 20, Q0: 50, Sources: []Source{{Law: l, Lambda0: 0}}}
	sol, err := m.Solve(100, 1e-3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sol.Len(); i++ {
		_, y := sol.At(i)
		if y[0] < 0 {
			t.Fatalf("negative queue %v at sample %d", y[0], i)
		}
		if y[1] < 0 {
			t.Fatalf("negative rate %v at sample %d", y[1], i)
		}
	}
}

func TestQueueAndRateAccessors(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	m := Model{Mu: 10, Q0: 3, Sources: []Source{{Law: l, Lambda0: 2}, {Law: l, Lambda0: 4}}}
	sol, err := m.Solve(1, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	times, q := sol.Queue()
	if len(times) != len(q) || len(q) != sol.Len() {
		t.Fatal("Queue length mismatch")
	}
	if q[0] != 3 {
		t.Fatalf("initial queue %v, want 3", q[0])
	}
	_, lam0 := sol.Rate(0)
	_, lam1 := sol.Rate(1)
	if lam0[0] != 2 || lam1[0] != 4 {
		t.Fatalf("initial rates (%v, %v), want (2, 4)", lam0[0], lam1[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Rate out of range did not panic")
		}
	}()
	sol.Rate(2)
}

func TestMeanRatesWindow(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	m := Model{Mu: 10, Q0: 20, Sources: []Source{{Law: l, Lambda0: 10}}}
	sol, err := m.Solve(10, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	all := sol.MeanRates(0)
	if len(all) != 1 || all[0] <= 0 {
		t.Fatalf("MeanRates = %v", all)
	}
	// A window past the end yields zeros rather than NaN.
	empty := sol.MeanRates(1e9)
	if empty[0] != 0 {
		t.Fatalf("empty-window mean = %v, want 0", empty[0])
	}
}

func TestPredictedShares(t *testing.T) {
	laws := []control.AIMD{
		{C0: 2, C1: 1, QHat: 10},
		{C0: 1, C1: 1, QHat: 10},
		{C0: 1, C1: 2, QHat: 10},
	}
	shares, err := PredictedShares(laws)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios 2 : 1 : 0.5, total 3.5.
	want := []float64{2 / 3.5, 1 / 3.5, 0.5 / 3.5}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-12 {
			t.Errorf("share[%d] = %v, want %v", i, shares[i], want[i])
		}
	}
	if _, err := PredictedShares(nil); err == nil {
		t.Error("accepted empty laws")
	}
	if _, err := PredictedShares([]control.AIMD{{C0: 0, C1: 1}}); err == nil {
		t.Error("accepted zero C0")
	}
}

// Property: predicted shares always sum to 1 and are positive.
func TestPredictedSharesProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		laws := make([]control.AIMD, len(raw))
		for i, r := range raw {
			laws[i] = control.AIMD{
				C0:   float64(r%100)/10 + 0.1,
				C1:   float64(r%37)/10 + 0.1,
				QHat: 10,
			}
		}
		shares, err := PredictedShares(laws)
		if err != nil {
			return false
		}
		var sum float64
		for _, s := range shares {
			if s <= 0 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFluidSolveSingle(b *testing.B) {
	l := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	m := Model{Mu: 10, Q0: 0, Sources: []Source{{Law: l, Lambda0: 2}}}
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(100, 1e-3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidSolveDelayed4Sources(b *testing.B) {
	l := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	srcs := make([]Source, 4)
	for i := range srcs {
		srcs[i] = Source{Law: l, Delay: 1 + float64(i), Lambda0: 2}
	}
	m := Model{Mu: 10, Q0: 0, Sources: srcs}
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(100, 5e-3, 100); err != nil {
			b.Fatal(err)
		}
	}
}
