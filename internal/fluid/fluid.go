// Package fluid implements the deterministic fluid approximation of
// Bolot and Shankar [BoSh 90], the model the paper positions its
// Fokker-Planck analysis against. Queue length and source rates are
// coupled ordinary (or, with feedback delay, delay) differential
// equations:
//
//	dQ/dt  = Σᵢ λᵢ(t) − μ          (Q reflected at 0)
//	dλᵢ/dt = gᵢ(Q(t−τᵢ), λᵢ(t))    (one feedback law per source)
//
// Both Q(t) and λᵢ(t) are deterministic — that is precisely the
// limitation the paper's Section 3 discusses: the fluid model carries
// no variability, so it cannot say anything about the spread of the
// queue around its mean (experiment E10 quantifies this).
//
// The model supports N heterogeneous sources with per-source feedback
// delays, which is what Sections 6 and 7 need: equal-parameter sources
// (fairness), heterogeneous parameters (the exact-share law), and
// heterogeneous delays (delay-induced unfairness).
package fluid

import (
	"fmt"
	"math"

	"fpcc/internal/control"
	"fpcc/internal/dde"
)

// Source is one sender in the fluid model.
type Source struct {
	Law     control.Law // its rate-adjustment law
	Delay   float64     // feedback delay τ (0 = instantaneous feedback)
	Lambda0 float64     // initial sending rate
}

// Model is a bottleneck queue shared by N controlled sources.
type Model struct {
	Mu      float64  // bottleneck service rate
	Q0      float64  // initial queue length
	Sources []Source // the senders
}

// Validate checks the model parameters.
func (m *Model) Validate() error {
	switch {
	case !(m.Mu > 0) || math.IsInf(m.Mu, 1):
		return fmt.Errorf("fluid: service rate must be positive, got %v", m.Mu)
	case m.Q0 < 0:
		return fmt.Errorf("fluid: negative initial queue %v", m.Q0)
	case len(m.Sources) == 0:
		return fmt.Errorf("fluid: no sources")
	}
	for i, s := range m.Sources {
		if s.Law == nil {
			return fmt.Errorf("fluid: source %d has nil law", i)
		}
		if !(s.Delay >= 0) {
			return fmt.Errorf("fluid: source %d has negative delay %v", i, s.Delay)
		}
		if s.Lambda0 < 0 {
			return fmt.Errorf("fluid: source %d has negative initial rate %v", i, s.Lambda0)
		}
	}
	return nil
}

// Solution is a solved fluid trajectory. State layout: index 0 is the
// queue length Q, index 1+i is λ of source i.
type Solution struct {
	*dde.Result
	NumSources int
}

// Queue returns the queue-length series (aliasing the result storage).
func (s *Solution) Queue() (times, q []float64) {
	times = s.Times
	q = make([]float64, len(s.States))
	for i, st := range s.States {
		q[i] = st[0]
	}
	return times, q
}

// Rate returns the rate series of source i.
func (s *Solution) Rate(i int) (times, lam []float64) {
	if i < 0 || i >= s.NumSources {
		panic(fmt.Sprintf("fluid: source index %d out of range [0, %d)", i, s.NumSources))
	}
	times = s.Times
	lam = make([]float64, len(s.States))
	for k, st := range s.States {
		lam[k] = st[1+i]
	}
	return times, lam
}

// MeanRates returns the time-averaged rate of each source over
// [tFrom, end], computed by trapezoidal integration. Used as the
// throughput measure in the fairness experiments.
func (s *Solution) MeanRates(tFrom float64) []float64 {
	n := s.NumSources
	means := make([]float64, n)
	var span float64
	for k := 1; k < s.Len(); k++ {
		t0, y0 := s.At(k - 1)
		t1, y1 := s.At(k)
		if t1 <= tFrom {
			continue
		}
		lo := math.Max(t0, tFrom)
		w := t1 - lo
		if w <= 0 {
			continue
		}
		span += w
		for i := 0; i < n; i++ {
			means[i] += w * 0.5 * (y0[1+i] + y1[1+i])
		}
	}
	if span > 0 {
		for i := range means {
			means[i] /= span
		}
	}
	return means
}

// Solve integrates the model to time t1 with step h. With any nonzero
// delay h must not exceed the smallest nonzero delay (the underlying
// method of steps requires it). Stride subsamples the recorded output
// (0 = every step).
func (m *Model) Solve(t1, h float64, stride int) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(m.Sources)
	delays := make([]float64, 0, n)
	for _, s := range m.Sources {
		if s.Delay > 0 {
			delays = append(delays, s.Delay)
		}
	}
	sys := func(t float64, y []float64, lag dde.Lagger, dydt []float64) {
		var total float64
		for i := 0; i < n; i++ {
			total += y[1+i]
		}
		dq := total - m.Mu
		if y[0] <= 0 && dq < 0 {
			dq = 0 // an empty queue cannot drain further
		}
		dydt[0] = dq
		for i := 0; i < n; i++ {
			qObs := y[0]
			if d := m.Sources[i].Delay; d > 0 {
				qObs = lag.Lag(0, d)
			}
			dydt[1+i] = m.Sources[i].Law.Drift(qObs, y[1+i])
		}
	}
	history := func(t float64) []float64 {
		// Constant pre-history: the system sat at its initial state.
		y := make([]float64, 1+n)
		y[0] = m.Q0
		for i, s := range m.Sources {
			y[1+i] = s.Lambda0
		}
		return y
	}
	clamp := func(y []float64) {
		if y[0] < 0 {
			y[0] = 0
		}
		for i := 0; i < n; i++ {
			if y[1+i] < 0 {
				y[1+i] = 0
			}
		}
	}
	res, err := dde.Solve(sys, history, delays, 0, t1, h, dde.Options{Stride: stride, Clamp: clamp})
	if err != nil {
		return nil, err
	}
	return &Solution{Result: res, NumSources: n}, nil
}

// PredictedShares returns the paper's Section 6 closed-form share
// prediction for AIMD sources sharing one bottleneck with a common
// congestion signal: in the small-oscillation regime every source sees
// the same increase and decrease phase durations, so equilibrium
// requires C0ᵢ·T_up = λᵢ·C1ᵢ·T_down for each i, giving
//
//	λᵢ ∝ C0ᵢ / C1ᵢ,    shareᵢ = (C0ᵢ/C1ᵢ) / Σⱼ (C0ⱼ/C1ⱼ).
//
// Sources using identical parameters therefore receive exactly equal
// shares — the fairness half of the paper's Section 6 result.
func PredictedShares(laws []control.AIMD) ([]float64, error) {
	if len(laws) == 0 {
		return nil, fmt.Errorf("fluid: no laws")
	}
	shares := make([]float64, len(laws))
	var total float64
	for i, l := range laws {
		if !(l.C0 > 0) || !(l.C1 > 0) {
			return nil, fmt.Errorf("fluid: law %d has non-positive parameters", i)
		}
		shares[i] = l.C0 / l.C1
		total += shares[i]
	}
	for i := range shares {
		shares[i] /= total
	}
	return shares, nil
}
