package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil, nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1, 1}
	AXPY(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestScaleFillSum(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(3, x)
	if got := Sum(x); got != 18 {
		t.Fatalf("Sum after Scale = %v, want 18", got)
	}
	Fill(x, -1)
	if got := Sum(x); got != -3 {
		t.Fatalf("Sum after Fill = %v, want -3", got)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := NormInf(x); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Fatalf("NormInf(nil) = %v, want 0", got)
	}
}

func TestL1Dist(t *testing.T) {
	if got := L1Dist([]float64{1, 2}, []float64{3, 0}); got != 4 {
		t.Fatalf("L1Dist = %v, want 4", got)
	}
}

func TestClampNonNegative(t *testing.T) {
	x := []float64{1, -0.5, 2, -0.25}
	removed := ClampNonNegative(x)
	if removed != -0.75 {
		t.Fatalf("removed = %v, want -0.75", removed)
	}
	for i, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v still negative", i, v)
		}
	}
	if x[0] != 1 || x[2] != 2 {
		t.Fatal("ClampNonNegative modified non-negative entries")
	}
}

// Property: Clamp leaves the vector non-negative and conserves
// Sum(x) - removed.
func TestClampProperty(t *testing.T) {
	f := func(vals []float64) bool {
		x := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 100)
		}
		before := Sum(x)
		removed := ClampNonNegative(x)
		for _, v := range x {
			if v < 0 {
				return false
			}
		}
		return math.Abs(Sum(x)-(before-removed)) < 1e-9*(1+math.Abs(before))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz |x·y| <= |x||y|.
func TestDotCauchySchwarz(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := raw[i], raw[n+i]
			if math.IsNaN(a) || math.IsInf(a, 0) {
				a = 1
			}
			if math.IsNaN(b) || math.IsInf(b, 0) {
				b = 1
			}
			x[i] = math.Mod(a, 1000)
			y[i] = math.Mod(b, 1000)
		}
		lhs := math.Abs(Dot(x, y))
		rhs := Norm2(x) * Norm2(y)
		return lhs <= rhs*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinmod(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{1, 2, 1}, {2, 1, 1}, {-1, -2, -1}, {-2, -1, -1},
		{1, -1, 0}, {-1, 1, 0}, {0, 5, 0}, {5, 0, 0},
	}
	for _, tc := range cases {
		if got := Minmod(tc.a, tc.b); got != tc.want {
			t.Errorf("Minmod(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
