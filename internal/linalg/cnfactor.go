package linalg

// CNFactor is the prefactored Thomas decomposition of the zero-flux
// (Neumann) Crank-Nicolson left-hand side (I − r·A), with A the
// standard second-difference stencil: bands dd = {1+r, 1+2r, …,
// 1+2r, 1+r} and dl = du = −r. These systems appear once per
// diffusion axis in the Fokker-Planck solver and once per class in
// the mean-field kernels, always with bands that depend only on r —
// so the decomposition is built once per distinct r and each solve
// collapses to a forward and a back substitution. The matrix is
// strictly diagonally dominant for every r ≥ 0, so the factorization
// cannot fail and no pivot checks are needed.
//
// Cp and Inv are exposed for multi-RHS solves (the Fokker-Planck
// q-diffusion streams all its columns through one factorization);
// they are read-only outside Ensure.
type CNFactor struct {
	R   float64   // the factor the decomposition was built for
	N   int       // system size
	Cp  []float64 // Cp[i] = du[i]/den[i], the back-substitution band
	Inv []float64 // Inv[i] = 1/den[i], the forward-sweep pivots
}

// Ensure (re)builds the factorization for the given r and system size
// n >= 2; a repeated call with the same parameters is free.
func (f *CNFactor) Ensure(r float64, n int) {
	if f.N == n && f.R == r && f.Cp != nil {
		return
	}
	if cap(f.Cp) < n {
		f.Cp = make([]float64, n)
		f.Inv = make([]float64, n)
	}
	f.Cp = f.Cp[:n]
	f.Inv = f.Inv[:n]
	f.R = r
	f.N = n
	f.Inv[0] = 1 / (1 + r)
	f.Cp[0] = -r * f.Inv[0]
	for i := 1; i < n; i++ {
		dd := 1 + 2*r
		if i == n-1 {
			dd = 1 + r
		}
		den := dd + r*f.Cp[i-1] // dd − dl·cp with dl = −r
		f.Inv[i] = 1 / den
		f.Cp[i] = -r * f.Inv[i]
	}
}

// Step advances x by one Crank-Nicolson diffusion step in place:
// it builds the right-hand side (I + r·A)·x with the zero-flux
// stencil, forward-eliminates it into the workspace dp (len >= N)
// in the same fused pass, and back-substitutes into x.
func (f *CNFactor) Step(x, dp []float64) {
	n, r := f.N, f.R
	inv, cp := f.Inv, f.Cp
	dp[0] = (x[0] + r*(x[1]-x[0])) * inv[0]
	for i := 1; i < n-1; i++ {
		rhs := x[i] + r*(x[i-1]-2*x[i]+x[i+1])
		dp[i] = (rhs + r*dp[i-1]) * inv[i]
	}
	rhs := x[n-1] + r*(x[n-2]-x[n-1])
	dp[n-1] = (rhs + r*dp[n-2]) * inv[n-1]
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
}
