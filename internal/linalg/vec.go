package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y. It panics on length
// mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// AXPY computes y += alpha*x in place. It panics on length mismatch.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// NormInf returns the maximum absolute element of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// L1Dist returns the sum of absolute differences between x and y.
// It panics on length mismatch.
func L1Dist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: L1Dist length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += math.Abs(v - y[i])
	}
	return s
}

// Minmod returns the minmod slope limiter of two one-sided
// differences: 0 on sign disagreement, else the smaller magnitude.
// It is the TVD limiter shared by the MUSCL advection sweeps of
// internal/fokkerplanck and internal/meanfield.
func Minmod(a, b float64) float64 {
	if a > 0 && b > 0 {
		if a < b {
			return a
		}
		return b
	}
	if a < 0 && b < 0 {
		if a > b {
			return a
		}
		return b
	}
	return 0
}

// ClampNonNegative zeroes every negative element of x and returns the
// total (negative) mass removed. Upwind advection of a density can
// produce tiny negative undershoots; the Fokker-Planck solver clips
// them and accounts for the clipped mass in its audit.
func ClampNonNegative(x []float64) float64 {
	var removed float64
	for i, v := range x {
		if v < 0 {
			removed += v
			x[i] = 0
		}
	}
	return removed
}
