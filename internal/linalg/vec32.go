package linalg

// ClampNonNegative32 is ClampNonNegative for a float32 field: it
// zeroes every negative element and returns the total (negative) mass
// removed, accumulated in float64 so the audit quantity does not
// itself lose precision.
func ClampNonNegative32(x []float32) float64 {
	var removed float64
	for i, v := range x {
		if v < 0 {
			removed += float64(v)
			x[i] = 0
		}
	}
	return removed
}

// Widen copies a float32 field into a float64 one (dst and src must
// have equal length) — the boundary conversion of the float32 density
// lanes: storage and sweeps run single-precision, every reduction and
// rendered observable runs on the widened copy.
func Widen(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Narrow copies a float64 field into a float32 one (equal lengths) —
// the inverse boundary conversion, used when an initial condition
// computed in float64 seeds a float32 lane.
func Narrow(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}
