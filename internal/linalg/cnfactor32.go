package linalg

// CNFactor32 is the float32 twin of CNFactor: the prefactored Thomas
// decomposition of the zero-flux Crank-Nicolson left-hand side, with
// bands stored single-precision for the float32 density lanes of the
// Fokker-Planck and mean-field kernels. The factorization itself is
// computed in float64 (it is done once and costs nothing) and rounded
// to float32, so the bands carry the correctly-rounded values rather
// than accumulated single-precision recurrence error; the per-step
// sweeps then run entirely in float32. Diagonal dominance holds for
// every r ≥ 0 exactly as in the float64 kernel.
type CNFactor32 struct {
	R   float64   // the factor the decomposition was built for
	N   int       // system size
	Cp  []float32 // Cp[i] = du[i]/den[i], the back-substitution band
	Inv []float32 // Inv[i] = 1/den[i], the forward-sweep pivots
	r32 float32   // r rounded once, used by the sweeps
}

// Ensure (re)builds the factorization for the given r and system size
// n >= 2; a repeated call with the same parameters is free.
func (f *CNFactor32) Ensure(r float64, n int) {
	if f.N == n && f.R == r && f.Cp != nil {
		return
	}
	if cap(f.Cp) < n {
		f.Cp = make([]float32, n)
		f.Inv = make([]float32, n)
	}
	f.Cp = f.Cp[:n]
	f.Inv = f.Inv[:n]
	f.R = r
	f.N = n
	f.r32 = float32(r)
	inv := 1 / (1 + r)
	cp := -r * inv
	f.Inv[0] = float32(inv)
	f.Cp[0] = float32(cp)
	for i := 1; i < n; i++ {
		dd := 1 + 2*r
		if i == n-1 {
			dd = 1 + r
		}
		den := dd + r*cp // dd − dl·cp with dl = −r
		inv = 1 / den
		cp = -r * inv
		f.Inv[i] = float32(inv)
		f.Cp[i] = float32(cp)
	}
}

// R32 returns the step factor rounded to float32, for callers that
// build right-hand sides themselves (the multi-RHS q-diffusion).
func (f *CNFactor32) R32() float32 { return f.r32 }

// Step advances x by one Crank-Nicolson diffusion step in place, all
// arithmetic single-precision: RHS build fused with the forward
// elimination into dp (len >= N), then back substitution into x.
func (f *CNFactor32) Step(x, dp []float32) {
	n, r := f.N, f.r32
	inv, cp := f.Inv, f.Cp
	dp[0] = (x[0] + r*(x[1]-x[0])) * inv[0]
	for i := 1; i < n-1; i++ {
		rhs := x[i] + r*(x[i-1]-2*x[i]+x[i+1])
		dp[i] = (rhs + r*dp[i-1]) * inv[i]
	}
	rhs := x[n-1] + r*(x[n-2]-x[n-1])
	dp[n-1] = (rhs + r*dp[n-2]) * inv[n-1]
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
}
