package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveDenseKnown(t *testing.T) {
	// [2 1; 1 3]·x = [3; 5] → x = (4/5, 7/5).
	m, err := NewDense(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	b := []float64{3, 5}
	if err := SolveDense(m, b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-0.8) > 1e-12 || math.Abs(b[1]-1.4) > 1e-12 {
		t.Errorf("x = %v, want (0.8, 1.4)", b)
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// Zero pivot at (0,0) forces a row swap.
	m, _ := NewDense(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	b := []float64{2, 3}
	if err := SolveDense(m, b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-3) > 1e-12 || math.Abs(b[1]-2) > 1e-12 {
		t.Errorf("x = %v, want (3, 2)", b)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	m, _ := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if err := SolveDense(m, []float64{1, 2}); err == nil {
		t.Error("singular matrix: want error")
	}
}

func TestSolveDenseValidation(t *testing.T) {
	if _, err := NewDense(0); err == nil {
		t.Error("zero dim: want error")
	}
	if err := SolveDense(nil, nil); err == nil {
		t.Error("nil matrix: want error")
	}
	m, _ := NewDense(2)
	if err := SolveDense(m, []float64{1}); err == nil {
		t.Error("rhs length mismatch: want error")
	}
}

func TestSolveDenseIdentity(t *testing.T) {
	const n = 5
	m, _ := NewDense(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4, 5}
	want := append([]float64(nil), b...)
	if err := SolveDense(m, b); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if b[i] != want[i] {
			t.Errorf("x[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

// Property: for random diagonally dominant systems, A·x reproduces b.
func TestSolveDenseRoundTripProperty(t *testing.T) {
	f := func(raw [9]int8, rb [3]int8) bool {
		const n = 3
		m, err := NewDense(n)
		if err != nil {
			return false
		}
		orig := make([]float64, n*n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := float64(raw[i*n+j]) / 16
				if i != j {
					m.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			m.Set(i, i, rowSum+1) // strictly dominant
		}
		copy(orig, m.A)
		b := []float64{float64(rb[0]), float64(rb[1]), float64(rb[2])}
		rhs := append([]float64(nil), b...)
		if err := SolveDense(m, rhs); err != nil {
			return false
		}
		// Check A·x = b with the saved copy.
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += orig[i*n+j] * rhs[j]
			}
			if math.Abs(s-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
