package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/rng"
)

func TestTridiagSolveKnown(t *testing.T) {
	// System:
	//  2x0 +  x1        = 4
	//   x0 + 2x1 +  x2  = 8
	//         x1 + 2x2  = 8
	// Solution: x = [1, 2, 3]
	a := []float64{0, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{1, 1, 0}
	d := []float64{4, 8, 8}
	x := make([]float64, 3)
	var solver Tridiag
	if err := solver.Solve(a, b, c, d, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestTridiagSolveSize1(t *testing.T) {
	var solver Tridiag
	x := make([]float64, 1)
	if err := solver.Solve([]float64{0}, []float64{4}, []float64{0}, []float64{8}, x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-15 {
		t.Fatalf("x[0] = %v, want 2", x[0])
	}
}

func TestTridiagSolveAliasedRHS(t *testing.T) {
	a := []float64{0, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{1, 1, 0}
	d := []float64{4, 8, 8}
	var solver Tridiag
	if err := solver.Solve(a, b, c, d, d); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("aliased x[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestTridiagSingular(t *testing.T) {
	var solver Tridiag
	x := make([]float64, 2)
	err := solver.Solve([]float64{0, 0}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1}, x)
	if err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestTridiagLengthMismatch(t *testing.T) {
	var solver Tridiag
	err := solver.Solve(make([]float64, 2), make([]float64, 3), make([]float64, 3),
		make([]float64, 3), make([]float64, 3))
	if err == nil {
		t.Fatal("expected error on mismatched lengths")
	}
}

func TestTridiagEmpty(t *testing.T) {
	var solver Tridiag
	if err := solver.Solve(nil, nil, nil, nil, nil); err == nil {
		t.Fatal("expected error on empty system")
	}
}

// Property: Solve then MulTridiag round-trips for random diagonally
// dominant systems.
func TestTridiagRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := rng.New(seed)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = r.Float64() - 0.5
			c[i] = r.Float64() - 0.5
			// Diagonal dominance guarantees a stable solve.
			b[i] = 2 + math.Abs(a[i]) + math.Abs(c[i]) + r.Float64()
			d[i] = 10 * (r.Float64() - 0.5)
		}
		a[0], c[n-1] = 0, 0
		var solver Tridiag
		if err := solver.Solve(a, b, c, d, x); err != nil {
			return false
		}
		MulTridiag(a, b, c, x, y)
		for i := range y {
			if math.Abs(y[i]-d[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTridiagWorkspaceReuse(t *testing.T) {
	var solver Tridiag
	// First solve with size 5 allocates; second with size 3 must reuse.
	for _, n := range []int{5, 3, 5} {
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			b[i] = 2
			d[i] = 1
		}
		if err := solver.Solve(a, b, c, d, x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-0.5) > 1e-12 {
				t.Fatalf("n=%d: x[%d] = %v, want 0.5", n, i, x[i])
			}
		}
	}
}

func TestMulTridiagKnown(t *testing.T) {
	a := []float64{0, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{1, 1, 0}
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	MulTridiag(a, b, c, x, y)
	want := []float64{4, 8, 8}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulTridiagSize1(t *testing.T) {
	y := make([]float64, 1)
	MulTridiag([]float64{0}, []float64{3}, []float64{0}, []float64{2}, y)
	if y[0] != 6 {
		t.Fatalf("y[0] = %v, want 6", y[0])
	}
}

func BenchmarkTridiagSolve256(b *testing.B) {
	const n = 256
	a := make([]float64, n)
	bb := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i], bb[i], c[i], d[i] = -1, 4, -1, 1
	}
	a[0], c[n-1] = 0, 0
	var solver Tridiag
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := solver.Solve(a, bb, c, d, x); err != nil {
			b.Fatal(err)
		}
	}
}
