// Package linalg provides the small dense linear-algebra kernels used
// by the Fokker-Planck solver: a tridiagonal (Thomas) solver for the
// Crank-Nicolson diffusion step and a handful of vector helpers.
//
// Everything operates on plain []float64 with explicit workspace
// reuse, so the per-step hot path of the PDE solver allocates nothing.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when Gaussian elimination encounters a pivot
// too close to zero for a stable solve.
var ErrSingular = errors.New("linalg: matrix is singular or badly conditioned")

// Tridiag is a tridiagonal system solver with preallocated workspace.
// The system is
//
//	b[0]·x[0] + c[0]·x[1]                      = d[0]
//	a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1]      = d[i]   (0 < i < n-1)
//	a[n-1]·x[n-2] + b[n-1]·x[n-1]              = d[n-1]
//
// A zero Tridiag is ready to use; workspace grows on demand and is
// reused across calls, so repeated solves of same-sized systems do not
// allocate. Not safe for concurrent use; create one per goroutine.
type Tridiag struct {
	cp, dp []float64 // forward-sweep workspace
}

// Solve solves the tridiagonal system into x using the Thomas
// algorithm. a, b, c, d, x must all have length n >= 1 (a[0] and
// c[n-1] are ignored). d and x may alias. It returns ErrSingular when
// a pivot vanishes.
func (t *Tridiag) Solve(a, b, c, d, x []float64) error {
	n := len(b)
	if n == 0 {
		return errors.New("linalg: empty system")
	}
	if len(a) != n || len(c) != n || len(d) != n || len(x) != n {
		return fmt.Errorf("linalg: inconsistent lengths a=%d b=%d c=%d d=%d x=%d",
			len(a), len(b), len(c), len(d), len(x))
	}
	if cap(t.cp) < n {
		t.cp = make([]float64, n)
		t.dp = make([]float64, n)
	}
	cp, dp := t.cp[:n], t.dp[:n]

	const tiny = 1e-300
	piv := b[0]
	if math.Abs(piv) < tiny {
		return ErrSingular
	}
	cp[0] = c[0] / piv
	dp[0] = d[0] / piv
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if math.Abs(den) < tiny {
			return ErrSingular
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// MulTridiag computes y = T·x for the tridiagonal matrix T given by
// bands (a, b, c), with the same convention as Solve. y and x must not
// alias.
func MulTridiag(a, b, c, x, y []float64) {
	n := len(b)
	if n == 0 {
		return
	}
	if len(a) != n || len(c) != n || len(x) != n || len(y) != n {
		panic(fmt.Sprintf("linalg: inconsistent lengths a=%d b=%d c=%d x=%d y=%d",
			len(a), len(b), len(c), len(x), len(y)))
	}
	if n == 1 {
		y[0] = b[0] * x[0]
		return
	}
	y[0] = b[0]*x[0] + c[0]*x[1]
	for i := 1; i < n-1; i++ {
		y[i] = a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1]
	}
	y[n-1] = a[n-1]*x[n-2] + b[n-1]*x[n-1]
}
