package linalg

import (
	"math"
	"testing"

	"fpcc/internal/rng"
)

// cnBands builds the explicit (I − r·A) bands the factorization
// stands for.
func cnBands(r float64, n int) (dl, dd, du []float64) {
	dl = make([]float64, n)
	dd = make([]float64, n)
	du = make([]float64, n)
	for i := 0; i < n; i++ {
		switch i {
		case 0:
			dd[i], du[i] = 1+r, -r
		case n - 1:
			dl[i], dd[i] = -r, 1+r
		default:
			dl[i], dd[i], du[i] = -r, 1+2*r, -r
		}
	}
	return dl, dd, du
}

// TestCNFactorMatchesTridiag pins the fused prefactored step against
// the general Thomas solver on the explicitly built bands: same RHS,
// solution agreement to a tight relative bound, across sizes and r.
func TestCNFactorMatchesTridiag(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{2, 3, 8, 100, 257} {
		for _, rr := range []float64{0, 1e-4, 0.3, 5, 400} {
			x := make([]float64, n)
			for i := range x {
				x[i] = r.Float64() * 10
			}
			// Reference: explicit bands + Tridiag on the CN RHS.
			dl, dd, du := cnBands(rr, n)
			rhs := make([]float64, n)
			for i := range rhs {
				var lap float64
				switch i {
				case 0:
					lap = x[1] - x[0]
				case n - 1:
					lap = x[n-2] - x[n-1]
				default:
					lap = x[i-1] - 2*x[i] + x[i+1]
				}
				rhs[i] = x[i] + rr*lap
			}
			want := make([]float64, n)
			var tri Tridiag
			if err := tri.Solve(dl, dd, du, rhs, want); err != nil {
				t.Fatal(err)
			}
			var fac CNFactor
			fac.Ensure(rr, n)
			got := append([]float64(nil), x...)
			fac.Step(got, make([]float64, n))
			for i := range want {
				if d := math.Abs(got[i] - want[i]); d > 1e-12*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d r=%v: x[%d] = %v, Tridiag gives %v", n, rr, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCNFactorEnsureIdempotent checks the rebuild-only-on-change
// contract.
func TestCNFactorEnsureIdempotent(t *testing.T) {
	var fac CNFactor
	fac.Ensure(0.5, 16)
	cp0 := &fac.Cp[0]
	fac.Ensure(0.5, 16)
	if &fac.Cp[0] != cp0 {
		t.Fatal("Ensure with unchanged parameters rebuilt the factorization")
	}
	fac.Ensure(0.7, 16)
	if fac.R != 0.7 {
		t.Fatal("Ensure did not rebuild for a new r")
	}
}

// TestCNFactorConservesMass checks the zero-flux property: the CN
// step must conserve the discrete sum exactly up to rounding.
func TestCNFactorConservesMass(t *testing.T) {
	r := rng.New(11)
	const n = 64
	x := make([]float64, n)
	var before float64
	for i := range x {
		x[i] = r.Float64()
		before += x[i]
	}
	var fac CNFactor
	fac.Ensure(2.5, n)
	dp := make([]float64, n)
	for step := 0; step < 50; step++ {
		fac.Step(x, dp)
	}
	var after float64
	for _, v := range x {
		after += v
	}
	if math.Abs(after-before) > 1e-10*before {
		t.Fatalf("mass drifted: %v -> %v", before, after)
	}
}
