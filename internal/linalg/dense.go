package linalg

import (
	"fmt"
	"math"
)

// Dense is a small dense matrix in row-major order, sized for the
// Newton systems of the implicit ODE steppers (dimension = the state
// dimension of the fluid models, typically 2–20; nothing here is
// tuned for large n).
type Dense struct {
	N int
	A []float64 // N×N, row-major
}

// NewDense allocates an n×n zero matrix.
func NewDense(n int) (*Dense, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: dense dimension must be positive, got %d", n)
	}
	return &Dense{N: n, A: make([]float64, n*n)}, nil
}

// At returns A[i,j].
func (m *Dense) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set assigns A[i,j].
func (m *Dense) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// SolveDense solves A·x = b in place by Gaussian elimination with
// partial pivoting, overwriting both A and b; on return b holds x.
// Returns an error for singular (or numerically singular) systems.
func SolveDense(m *Dense, b []float64) error {
	if m == nil {
		return fmt.Errorf("linalg: nil matrix")
	}
	n := m.N
	if len(b) != n {
		return fmt.Errorf("linalg: rhs has length %d, want %d", len(b), n)
	}
	a := m.A
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		pmax := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if piv != col {
			for j := col; j < n; j++ {
				a[col*n+j], a[piv*n+j] = a[piv*n+j], a[col*n+j]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		// Eliminate below.
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for j := col + 1; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for j := r + 1; j < n; j++ {
			s -= a[r*n+j] * b[j]
		}
		b[r] = s / a[r*n+r]
	}
	return nil
}
