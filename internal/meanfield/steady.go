package meanfield

import (
	"fmt"
	"math"
)

// Stepper is the stepping surface the Density and Particles backends
// share. Code that measures either backend — the convergence tests,
// the E28/E29 experiments, cmd/meanfield, examples/many-users —
// programs against it.
type Stepper interface {
	Step() error
	Time() float64
	Queue() float64
	NumClasses() int
	ClassMeanRate(k int) float64
}

var (
	_ Stepper = (*Density)(nil)
	_ Stepper = (*Particles)(nil)
)

// SteadyStats advances s to the horizon and returns the per-step
// averages of the queue and each class's mean rate over the
// measurement window [warm, horizon] — the steady-state observables
// every consumer of the engine reports. A step landing exactly on the
// warmup boundary is part of the window (it samples the state AT
// warm, the first post-transient instant). onStep, when non-nil, runs
// after every step (during warmup too), for callers that also sample
// traces or marginals along the way.
//
// The average weights every sampled step equally, which equals the
// time average of the end-of-step states only on the fixed-Dt lattice
// both built-in backends (Density, Particles) step on; a Stepper with
// a varying step size would need time-weighted accumulation instead.
func SteadyStats(s Stepper, warm, horizon float64, onStep func()) (meanQ float64, meanRates []float64, err error) {
	if !(horizon > warm) {
		return 0, nil, fmt.Errorf("meanfield: horizon %v must exceed warmup %v", horizon, warm)
	}
	meanRates = make([]float64, s.NumClasses())
	var cnt int
	for s.Time() < horizon {
		if err := s.Step(); err != nil {
			return 0, nil, err
		}
		if onStep != nil {
			onStep()
		}
		if s.Time() >= warm {
			meanQ += s.Queue()
			for k := range meanRates {
				meanRates[k] += s.ClassMeanRate(k)
			}
			cnt++
		}
	}
	if cnt == 0 {
		return math.NaN(), meanRates, fmt.Errorf("meanfield: no steps fell in the window [%v, %v] with Dt so large", warm, horizon)
	}
	meanQ /= float64(cnt)
	for k := range meanRates {
		meanRates[k] /= float64(cnt)
	}
	return meanQ, meanRates, nil
}
