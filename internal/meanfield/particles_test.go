package meanfield

import (
	"math"
	"testing"
)

// runParticles advances a fresh particle system and returns its queue
// trajectory (one sample per step) plus the final class moments.
func runParticles(t *testing.T, n int, seed uint64, workers, steps int) ([]float64, []float64) {
	t.Helper()
	p, err := NewParticles(testConfig(n), seed, workers)
	if err != nil {
		t.Fatal(err)
	}
	traj := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		traj = append(traj, p.Queue())
	}
	m := p.ClassMoments(0)
	return traj, []float64{m.Mean(), m.Variance(), m.Min(), m.Max()}
}

// The worker count shards the fixed-size chunks differently across
// goroutines but must never change a single bit of the results: every
// chunk owns its rng.Mix-derived stream and all reductions run in
// chunk-index order.
func TestParticlesDeterministicAcrossWorkers(t *testing.T) {
	const n = 10000 // 3 chunks of 4096
	t1, m1 := runParticles(t, n, 99, 1, 300)
	t8, m8 := runParticles(t, n, 99, 8, 300)
	for i := range t1 {
		if t1[i] != t8[i] {
			t.Fatalf("queue trajectory diverges at step %d: %v vs %v (workers 1 vs 8)", i, t1[i], t8[i])
		}
	}
	for i := range m1 {
		if m1[i] != m8[i] {
			t.Fatalf("class moments differ between worker counts: %v vs %v", m1, m8)
		}
	}
}

// Same seed reproduces the run exactly; a different seed must not.
func TestParticlesSeedReproducibility(t *testing.T) {
	a, _ := runParticles(t, 5000, 7, 4, 200)
	b, _ := runParticles(t, 5000, 7, 2, 200)
	c, _ := runParticles(t, 5000, 8, 4, 200)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed did not reproduce the queue trajectory")
	}
	if !diff {
		t.Error("different seeds produced identical trajectories")
	}
}

// Particle moments merged from the per-chunk Welford states must
// match a direct pass over the flat rate array.
func TestParticlesChunkedMomentsMatchDirect(t *testing.T) {
	p, err := NewParticles(testConfig(9000), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(2); err != nil {
		t.Fatal(err)
	}
	m := p.ClassMoments(0)
	rates := p.Rates(0)
	if m.Count() != len(rates) {
		t.Fatalf("moment count %d != %d particles", m.Count(), len(rates))
	}
	var sum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, l := range rates {
		sum += l
		lo = math.Min(lo, l)
		hi = math.Max(hi, l)
	}
	mean := sum / float64(len(rates))
	var ss float64
	for _, l := range rates {
		ss += (l - mean) * (l - mean)
	}
	if math.Abs(m.Mean()-mean) > 1e-12 {
		t.Errorf("merged mean %v != direct %v", m.Mean(), mean)
	}
	if math.Abs(m.Variance()-ss/float64(len(rates))) > 1e-9 {
		t.Errorf("merged variance %v != direct %v", m.Variance(), ss/float64(len(rates)))
	}
	if m.Min() != lo || m.Max() != hi {
		t.Errorf("merged min/max %v/%v != direct %v/%v", m.Min(), m.Max(), lo, hi)
	}
}

// Rates must stay inside [0, LMax] under drift and reflection.
func TestParticlesRatesStayInDomain(t *testing.T) {
	cfg := testConfig(2000)
	cfg.Classes[0].SigmaL = 1.5 // strong noise exercises both reflections
	p, err := NewParticles(cfg, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(5); err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Rates(0) {
		if l < 0 || l > cfg.LMax {
			t.Fatalf("rate %v escaped [0, %v]", l, cfg.LMax)
		}
	}
	h, err := p.Histogram(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if h.Underflow != 0 || h.Overflow != 0 {
		t.Fatalf("histogram under/overflow %d/%d, want 0/0", h.Underflow, h.Overflow)
	}
}
