// Package meanfield is the population-density engine for the paper's
// large-N limit: millions of heterogeneous sources adjusting their
// sending rates from shared queue feedback, evolved as per-class
// densities instead of individuals.
//
// The finite-N system is the one internal/des and internal/fluid
// simulate source by source: N_k sources of class k, each with rate
// λ_i(t) obeying dλ = g_k(Q(t−τ_k), λ) dt (+ σ_k dW_i for intrinsic
// rate variability), feeding a shared bottleneck queue
//
//	dQ/dt = Σ_k w_k Σ_{i∈k} λ_i(t) − μ       (Q reflected at 0).
//
// Because every source of a class sees the same (delayed) queue, the
// kinetic limit N → ∞ closes exactly: the per-class density f_k(λ, t)
// of source rates obeys the one-dimensional transport-diffusion
// equation
//
//	∂f_k/∂t + ∂(g_k(Q(t−τ_k), λ) f_k)/∂λ = (σ_k²/2) ∂²f_k/∂λ²
//
// coupled to the queue ODE through the aggregate arrival rate
// Σ_k w_k N_k ∫ λ f_k dλ. Stepping the densities costs
// O(classes × bins), independent of N — a million-source population
// advances in the time a particle model spends on a few hundred — so
// heavy-traffic scenarios become directly computable rather than
// extrapolated.
//
// Two cross-checking backends share the Config:
//
//   - Density: the kinetic engine — conservative upwind (or
//     MUSCL/minmod, Config.SecondOrder) transport in λ per class, in
//     the style of internal/fokkerplanck's advection sweeps, plus a
//     Crank-Nicolson diffusion solve when σ_k > 0.
//   - Particles: a finite-N structure-of-arrays Monte-Carlo backend
//     (flat []float64 rate arrays in fixed-size chunks, stepped on a
//     bounded worker pool with rng.Mix-derived per-chunk streams), the
//     stochastic ground truth the density limit is validated against.
//
// Experiment E28 shows particle-mode observables converging to the
// density solution as N grows; E29 runs heterogeneous two-class
// (slow-RTT vs fast-RTT) populations at N = 10⁶ on internal/sweep
// grids.
package meanfield

import (
	"fmt"
	"math"

	"fpcc/internal/churn"
	"fpcc/internal/control"
	"fpcc/internal/obs"
)

// Class describes one homogeneous sub-population of sources.
type Class struct {
	// Name labels the class in reports (defaults to "class<k>").
	Name string
	// Law is the class's rate-control law g(Q, λ). The law observes
	// the TOTAL queue length (like every other engine in this
	// repository), so its threshold q̂ is a total-queue target.
	Law control.Law
	// N is the population size. The density engine's per-step cost is
	// independent of N; the particle engine allocates N slots.
	N int
	// Weight scales this class's per-source contribution to the
	// aggregate arrival rate (0 means 1). A weight of 2 models sources
	// whose packets are twice the base size.
	Weight float64
	// Delay is the class's feedback delay τ (its RTT): controllers
	// observe Q(t−τ).
	Delay float64
	// Lambda0 and InitStd define the initial rate distribution: a
	// Gaussian blob clipped to [0, LMax] (InitStd = 0 is a point
	// mass).
	Lambda0 float64
	InitStd float64
	// SigmaL is the intrinsic rate variability σ_k: per-source
	// Brownian rate noise in the particle backend, the matching
	// (σ_k²/2)·f_λλ diffusion in the density backend.
	SigmaL float64
	// Churn, when non-nil, opens the class: sessions are born at
	// Churn.Arrival flows/s (Poisson in the finite-N picture, a
	// deterministic mass source in the kinetic limit) and die after
	// Churn.Lifetime. N is then the population at t = 0 and the live
	// population is N·(1 + born − died). Density backend only; the
	// particle backend rejects open classes.
	Churn *churn.Flow
	// Pulse, when non-nil, scales the class's offered-rate
	// contribution by the deterministic duty-cycle envelope — the
	// synchronized on/off blaster of the adversarial experiments. It
	// multiplies only the queue coupling (the per-source densities
	// are unchanged). Density backend only.
	Pulse *churn.Pulse
}

// Config describes a mean-field problem: the class mix, the shared
// bottleneck, the rate domain, and the time step. Both backends
// (Density, Particles) take the same Config, so a scenario can be run
// at any fidelity without restating it.
type Config struct {
	Classes []Class
	// Mu is the total bottleneck service rate shared by all classes.
	Mu float64
	// LMax bounds the per-source rate domain λ ∈ [0, LMax]. The
	// density lives on this interval (zero-flux ends); particles are
	// reflected into it.
	LMax float64
	// Bins is the density engine's λ-grid resolution per class.
	Bins int
	// Dt is the explicit Euler step shared by both backends. The
	// density engine additionally enforces the CFL bound
	// max|g|·Dt/Δλ ≤ 1 at every step.
	Dt float64
	// Q0 is the initial queue length.
	Q0 float64
	// SecondOrder selects MUSCL/minmod (TVD) transport sweeps instead
	// of first-order upwind in the density engine, removing most of
	// the numerical diffusion (same trade as fokkerplanck.Config).
	SecondOrder bool

	// Workers bounds the density engine's per-step parallelism over
	// classes (0 = GOMAXPROCS). It affects wall-clock time only,
	// never results: each class's kernel is independent within a
	// step and the coupling reductions stay in class order. (The
	// particle backend takes its worker bound as a NewParticles
	// argument instead, alongside its seed.)
	Workers int

	// Obs, when non-nil, receives per-step probes (mf.queue,
	// mf.lambda, per-class moments; the particle backend's mfp.*
	// series) and, when it enables invariants, runs the per-step
	// checks: per-class mass budget ∫f_k = 1 + clipped_k, density
	// non-negativity, CFL margin, queue non-negativity, and
	// queue-history monotonicity. A failing check aborts Step with a
	// step-stamped error. The nil default costs one branch per step
	// and never changes any observable.
	Obs *obs.Recorder
}

// Validate checks the configuration shared by both backends.
func (c *Config) Validate() error {
	switch {
	case len(c.Classes) == 0:
		return fmt.Errorf("meanfield: no classes")
	case !(c.Mu > 0) || math.IsInf(c.Mu, 1):
		return fmt.Errorf("meanfield: service rate must be positive, got %v", c.Mu)
	case !(c.LMax > 0) || math.IsInf(c.LMax, 1):
		return fmt.Errorf("meanfield: LMax must be positive, got %v", c.LMax)
	case c.Bins < 8:
		return fmt.Errorf("meanfield: need at least 8 rate bins, got %d", c.Bins)
	case !(c.Dt > 0):
		return fmt.Errorf("meanfield: non-positive step %v", c.Dt)
	case !(c.Q0 >= 0):
		return fmt.Errorf("meanfield: invalid initial queue %v", c.Q0)
	}
	// The !(x >= 0) forms below reject NaN along with negatives: a NaN
	// parameter would pass a plain x < 0 check and silently poison the
	// queue ODE.
	for k, cl := range c.Classes {
		switch {
		case cl.Law == nil:
			return fmt.Errorf("meanfield: class %d has nil law", k)
		case cl.N < 1:
			return fmt.Errorf("meanfield: class %d has population %d, want >= 1", k, cl.N)
		case !(cl.Weight >= 0):
			return fmt.Errorf("meanfield: class %d has invalid weight %v", k, cl.Weight)
		case !(cl.Delay >= 0):
			return fmt.Errorf("meanfield: class %d has invalid delay %v", k, cl.Delay)
		case !(cl.Lambda0 >= 0) || cl.Lambda0 > c.LMax:
			return fmt.Errorf("meanfield: class %d initial rate %v outside [0, %v]", k, cl.Lambda0, c.LMax)
		case !(cl.InitStd >= 0):
			return fmt.Errorf("meanfield: class %d has invalid initial spread %v", k, cl.InitStd)
		case !(cl.SigmaL >= 0):
			return fmt.Errorf("meanfield: class %d has invalid sigma %v", k, cl.SigmaL)
		}
		if cl.Churn != nil {
			if err := cl.Churn.Validate(c.LMax); err != nil {
				return fmt.Errorf("meanfield: class %d: %w", k, err)
			}
		}
	}
	return nil
}

// open reports whether any class carries churn or pulse dynamics (the
// configurations the particle backend rejects).
func (c *Config) open() bool {
	for k := range c.Classes {
		if c.Classes[k].Churn != nil || c.Classes[k].Pulse != nil {
			return true
		}
	}
	return false
}

// TotalSources returns Σ_k N_k.
func (c *Config) TotalSources() int {
	n := 0
	for _, cl := range c.Classes {
		n += cl.N
	}
	return n
}

// ClassName returns the display name of class k.
func (c *Config) ClassName(k int) string {
	if c.Classes[k].Name != "" {
		return c.Classes[k].Name
	}
	return fmt.Sprintf("class%d", k)
}

// weight resolves the per-source weight of class k (0 means 1).
func (c *Config) weight(k int) float64 {
	if w := c.Classes[k].Weight; w > 0 {
		return w
	}
	return 1
}

// maxDelay returns the longest class feedback delay.
func (c *Config) maxDelay() float64 {
	var d float64
	for _, cl := range c.Classes {
		if cl.Delay > d {
			d = cl.Delay
		}
	}
	return d
}
