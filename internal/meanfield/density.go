package meanfield

import (
	"fmt"
	"math"

	"fpcc/internal/grid"
	"fpcc/internal/linalg"
)

// Density is the kinetic backend: one rate density f_k(λ, t) per
// class on a shared uniform λ-grid, coupled to the bottleneck queue
// ODE through the aggregate arrival rate. Stepping costs
// O(classes × bins) regardless of the population sizes N_k.
//
// Scheme, per step (operator splitting, mirroring the particle
// backend's update order so the two stay comparable):
//
//  1. the aggregate arrival rate Λ = Σ_k w_k N_k ⟨λ⟩_k is read from
//     the current densities;
//  2. each f_k is advected by its drift g_k(Q(t−τ_k), λ) —
//     conservative first-order upwind, or MUSCL/minmod when
//     Config.SecondOrder is set — with zero-flux ends, then diffused
//     by (σ_k²/2)·f_λλ with a Crank-Nicolson tridiagonal solve;
//  3. the queue advances by the explicit Euler update
//     Q ← max(Q + (Λ − μ)·Dt, 0).
//
// Tiny negative undershoots from the explicit sweeps are clipped and
// the clipped mass tracked (ClippedMass); means are normalized by the
// per-class mass so the audit quantity does not bias the coupling.
type Density struct {
	cfg Config
	ax  grid.Uniform1D
	f   [][]float64 // per-class density over λ, length Bins each
	tmp []float64   // scratch row for the transport sweeps
	lc  []float64   // cell centers
	t   float64
	q   float64

	hist     qHistory
	maxDelay float64

	// drift caches every class's edge drifts for the current step:
	// filled (and CFL-checked) before any density is mutated, so a
	// CFL error leaves the solver state untouched.
	drift [][]float64 // [class][edge], edges 1..Bins-1 used

	// Crank-Nicolson workspace for the σ_k diffusion solves.
	tri             linalg.Tridiag
	dl, dd, du, rhs []float64
	col             []float64
	clipped         float64
}

// NewDensity builds the kinetic engine with every class initialized
// to its (grid-discretized, renormalized) Gaussian blob.
func NewDensity(cfg Config) (*Density, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ax, err := grid.NewUniform1D(0, cfg.LMax, cfg.Bins)
	if err != nil {
		return nil, fmt.Errorf("meanfield: rate axis: %w", err)
	}
	d := &Density{
		cfg:      cfg,
		ax:       ax,
		tmp:      make([]float64, cfg.Bins),
		lc:       ax.Centers(),
		q:        cfg.Q0,
		maxDelay: cfg.maxDelay(),
		dl:       make([]float64, cfg.Bins),
		dd:       make([]float64, cfg.Bins),
		du:       make([]float64, cfg.Bins),
		rhs:      make([]float64, cfg.Bins),
		col:      make([]float64, cfg.Bins),
	}
	for range cfg.Classes {
		d.drift = append(d.drift, make([]float64, cfg.Bins))
	}
	for _, cl := range cfg.Classes {
		f := make([]float64, cfg.Bins)
		if cl.InitStd > 0 {
			for i, l := range d.lc {
				z := (l - cl.Lambda0) / cl.InitStd
				f[i] = math.Exp(-0.5 * z * z)
			}
		} else {
			f[ax.CellOf(cl.Lambda0)] = 1
		}
		mass := 0.0
		for _, v := range f {
			mass += v
		}
		if !(mass > 0) {
			return nil, fmt.Errorf("meanfield: class blob at %v±%v has no mass on [0, %v]",
				cl.Lambda0, cl.InitStd, cfg.LMax)
		}
		linalg.Scale(1/(mass*ax.Dx), f)
		d.f = append(d.f, f)
	}
	d.hist.record(0, d.q, 0)
	return d, nil
}

// Time returns the current simulation time.
func (d *Density) Time() float64 { return d.t }

// Queue returns the current queue length.
func (d *Density) Queue() float64 { return d.q }

// NumClasses returns the number of classes.
func (d *Density) NumClasses() int { return len(d.f) }

// ClippedMass returns the total probability mass ADDED by zeroing
// negative undershoots, summed over classes (so the exact budget is
// ∫f_k summed = classes + ClippedMass) — a discretization audit, not
// a physical gain.
func (d *Density) ClippedMass() float64 { return d.clipped }

// Marginal returns a copy of class k's rate density (length Bins,
// cell-centered on [0, LMax]).
func (d *Density) Marginal(k int) []float64 {
	return append([]float64(nil), d.f[k]...)
}

// RateGrid returns the λ-axis the densities live on.
func (d *Density) RateGrid() grid.Uniform1D { return d.ax }

// ClassMoments returns the mean and variance of class k's rate
// density, normalized by its current mass.
func (d *Density) ClassMoments(k int) (mean, variance float64) {
	var mass, m1 float64
	for i, v := range d.f[k] {
		mass += v
		m1 += v * d.lc[i]
	}
	if mass <= 0 {
		return math.NaN(), math.NaN()
	}
	mean = m1 / mass
	var m2 float64
	for i, v := range d.f[k] {
		dl := d.lc[i] - mean
		m2 += v * dl * dl
	}
	return mean, m2 / mass
}

// ClassMeanRate returns ⟨λ⟩_k, the mean per-source rate of class k.
// Unlike ClassMoments it makes a single pass (no variance), so the
// per-step coupling stays one O(bins) sweep per class.
func (d *Density) ClassMeanRate(k int) float64 {
	var mass, m1 float64
	for i, v := range d.f[k] {
		mass += v
		m1 += v * d.lc[i]
	}
	if mass <= 0 {
		return math.NaN()
	}
	return m1 / mass
}

// AggregateRate returns the total arrival rate Λ = Σ_k w_k N_k ⟨λ⟩_k
// currently offered to the bottleneck.
func (d *Density) AggregateRate() float64 {
	var agg float64
	for k := range d.f {
		agg += d.cfg.weight(k) * float64(d.cfg.Classes[k].N) * d.ClassMeanRate(k)
	}
	return agg
}

// observedQueue returns the queue class k's controllers see at the
// current time: Q(t−τ_k) from the history, or the live queue at zero
// delay.
func (d *Density) observedQueue(k int) float64 {
	if tau := d.cfg.Classes[k].Delay; tau > 0 {
		return d.hist.at(d.t - tau)
	}
	return d.q
}

// Step advances the system by one Dt. It returns an error if any
// class's drift violates the CFL bound max|g|·Dt/Δλ ≤ 1 (choose a
// smaller Dt or a coarser grid); the check runs before any state is
// mutated, so a failing Step leaves the solver exactly as it was.
func (d *Density) Step() error {
	agg := d.AggregateRate()
	dt := d.cfg.Dt
	dl := d.ax.Dx
	for k := range d.f {
		qObs := d.observedQueue(k)
		law := d.cfg.Classes[k].Law
		for e := 1; e < d.cfg.Bins; e++ {
			a := law.Drift(qObs, d.ax.Edge(e))
			if math.Abs(a)*dt/dl > 1.0000001 {
				return fmt.Errorf("meanfield: class %d drift %v at λ=%v violates CFL (|c|=%.3f > 1); reduce Dt",
					k, a, d.ax.Edge(e), math.Abs(a)*dt/dl)
			}
			d.drift[k][e] = a
		}
	}
	for k := range d.f {
		d.advect(k, dt)
		if d.cfg.Classes[k].SigmaL > 0 {
			d.diffuse(k, dt)
		}
		d.clipped += -linalg.ClampNonNegative(d.f[k]) * d.ax.Dx
	}
	d.q = math.Max(d.q+(agg-d.cfg.Mu)*dt, 0)
	d.t += dt
	d.hist.record(d.t, d.q, d.t-d.maxDelay-1)
	return nil
}

// Run advances until time tEnd (whole steps; the final partial step
// is skipped when shorter than Dt/2 to keep both backends on the same
// uniform time lattice).
func (d *Density) Run(tEnd float64) error {
	for d.t+d.cfg.Dt/2 <= tEnd {
		if err := d.Step(); err != nil {
			return err
		}
	}
	return nil
}

// advect performs the conservative transport sweep of
// f_t + (g f)_λ = 0 for class k with the cell-edge drifts Step cached
// in d.drift[k]: first-order upwind, or MUSCL/minmod with the
// time-centred correction when Config.SecondOrder is set. Both ends
// are zero-flux (a source's rate cannot leave [0, LMax]), so
// transport conserves mass exactly.
func (d *Density) advect(k int, dt float64) {
	f := d.f[k]
	nb := d.cfg.Bins
	dl := d.ax.Dx
	drift := d.drift[k]
	copy(d.tmp, f)
	at := func(i int) float64 { return d.tmp[i] }
	slope := func(i int) float64 {
		if i <= 0 || i >= nb-1 {
			return 0 // first-order fallback at the boundary cells
		}
		return linalg.Minmod(at(i)-at(i-1), at(i+1)-at(i))
	}
	for e := 1; e < nb; e++ { // interior edges; 0 and nb are zero-flux
		a := drift[e]
		if a == 0 {
			continue
		}
		c := a * dt / dl
		var up float64
		if a > 0 {
			up = at(e - 1)
			if d.cfg.SecondOrder {
				up += 0.5 * (1 - c) * slope(e-1)
			}
		} else {
			up = at(e)
			if d.cfg.SecondOrder {
				up -= 0.5 * (1 + c) * slope(e)
			}
		}
		dm := a * up * dt / dl
		f[e-1] -= dm
		f[e] += dm
	}
}

// diffuse performs the Crank-Nicolson solve of f_t = (σ²/2) f_λλ for
// class k with zero-flux (Neumann) ends — one tridiagonal system, the
// 1-D analogue of fokkerplanck's q-diffusion.
func (d *Density) diffuse(k int, dt float64) {
	f := d.f[k]
	nb := d.cfg.Bins
	dl := d.ax.Dx
	sigma := d.cfg.Classes[k].SigmaL
	r := 0.5 * sigma * sigma * dt / (2 * dl * dl) // θ=1/2 CN factor
	for i := 0; i < nb; i++ {
		var lap float64
		switch i {
		case 0:
			lap = f[1] - f[0]
		case nb - 1:
			lap = f[nb-2] - f[nb-1]
		default:
			lap = f[i-1] - 2*f[i] + f[i+1]
		}
		d.rhs[i] = f[i] + r*lap
		switch i {
		case 0:
			d.dl[i], d.dd[i], d.du[i] = 0, 1+r, -r
		case nb - 1:
			d.dl[i], d.dd[i], d.du[i] = -r, 1+r, 0
		default:
			d.dl[i], d.dd[i], d.du[i] = -r, 1+2*r, -r
		}
	}
	if err := d.tri.Solve(d.dl, d.dd, d.du, d.rhs, d.col); err != nil {
		// The CN matrix is strictly diagonally dominant, so this
		// cannot happen for valid inputs.
		panic(fmt.Sprintf("meanfield: diffusion solve failed: %v", err))
	}
	copy(f, d.col)
}
