package meanfield

import (
	"fmt"
	"math"

	"fpcc/internal/grid"
	"fpcc/internal/obs"
	"fpcc/internal/parallel"
)

// Density is the kinetic backend: one RateDensity per class on a
// shared uniform λ-grid, coupled to the bottleneck queue ODE through
// the aggregate arrival rate. Stepping costs O(classes × bins)
// regardless of the population sizes N_k.
//
// Scheme, per step (operator splitting, mirroring the particle
// backend's update order so the two stay comparable):
//
//  1. the aggregate arrival rate Λ = Σ_k w_k N_k ⟨λ⟩_k is read from
//     the current densities;
//  2. each f_k is advected by its drift g_k(Q(t−τ_k), λ) —
//     conservative first-order upwind, or MUSCL/minmod when
//     Config.SecondOrder is set — with zero-flux ends, then diffused
//     by (σ_k²/2)·f_λλ with a Crank-Nicolson tridiagonal solve;
//  3. the queue advances by the explicit Euler update
//     Q ← max(Q + (Λ − μ)·Dt, 0).
//
// Tiny negative undershoots from the explicit sweeps are clipped and
// the clipped mass tracked (ClippedMass); means are normalized by the
// per-class mass so the audit quantity does not bias the coupling.
//
// The per-class transport/diffusion kernel lives in RateDensity; the
// networked engine (internal/netmf) couples the same kernel to a
// topology of link queues instead of this single bottleneck.
type Density struct {
	cfg   Config
	kerns []*ClassKernel
	t     float64
	q     float64

	hist     History
	maxDelay float64
	step     int64 // completed steps, stamping probes and violations
}

// NewDensity builds the kinetic engine with every class initialized
// to its (grid-discretized, renormalized) Gaussian blob. Open classes
// (Class.Churn) get one phase kernel per lifetime phase, each
// starting with the phase's share of the blob.
func NewDensity(cfg Config) (*Density, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Density{
		cfg:      cfg,
		q:        cfg.Q0,
		maxDelay: cfg.maxDelay(),
	}
	for k, cl := range cfg.Classes {
		kern, err := NewClassKernel(cfg.LMax, cfg.Bins, cl.Lambda0, cl.InitStd, cfg.SecondOrder, cl.N, cl.Churn)
		if err != nil {
			return nil, fmt.Errorf("meanfield: class %d: %w", k, err)
		}
		d.kerns = append(d.kerns, kern)
	}
	d.hist.Record(0, d.q, 0)
	return d, nil
}

// Time returns the current simulation time.
func (d *Density) Time() float64 { return d.t }

// Queue returns the current queue length.
func (d *Density) Queue() float64 { return d.q }

// NumClasses returns the number of classes.
func (d *Density) NumClasses() int { return len(d.kerns) }

// ClippedMass returns the total probability mass ADDED by zeroing
// negative undershoots, summed over classes (so the exact budget is
// ∫f_k summed = classes + ClippedMass + born − died) — a
// discretization audit, not a physical gain.
func (d *Density) ClippedMass() float64 {
	var c float64
	for _, kern := range d.kerns {
		c += kern.ClippedMass()
	}
	return c
}

// Marginal returns a copy of class k's rate density (length Bins,
// cell-centered on [0, LMax]; phase kernels summed for open classes).
func (d *Density) Marginal(k int) []float64 { return d.kerns[k].Marginal() }

// RateGrid returns the λ-axis the densities live on.
func (d *Density) RateGrid() grid.Uniform1D { return d.kerns[0].Grid() }

// ClassMoments returns the mean and variance of class k's rate
// density, normalized by its current mass.
func (d *Density) ClassMoments(k int) (mean, variance float64) {
	return d.kerns[k].Moments()
}

// ClassMeanRate returns ⟨λ⟩_k, the mean per-source rate of class k.
// Unlike ClassMoments it makes a single pass (no variance), so the
// per-step coupling stays one O(bins) sweep per class.
func (d *Density) ClassMeanRate(k int) float64 { return d.kerns[k].MeanRate() }

// ClassPopulation returns class k's live population N_k·LiveMass_k —
// exactly N_k for closed classes, the birth–death ledger's value for
// open ones.
func (d *Density) ClassPopulation(k int) float64 {
	return float64(d.cfg.Classes[k].N) * d.kerns[k].LiveMass()
}

// AggregateRate returns the total arrival rate
// Λ = Σ_k w_k N_k ⟨λ⟩_k · live_k · env_k(t) currently offered to the
// bottleneck: the classic coupling scaled by each open class's live
// mass and each pulsed class's envelope factor (both factors exactly
// 1, and skipped, for classic classes).
func (d *Density) AggregateRate() float64 {
	var agg float64
	for k := range d.kerns {
		rate := d.cfg.weight(k) * float64(d.cfg.Classes[k].N) * d.ClassMeanRate(k)
		if d.cfg.Classes[k].Churn != nil {
			rate *= d.kerns[k].LiveMass()
		}
		if p := d.cfg.Classes[k].Pulse; p != nil {
			rate *= p.FactorAt(d.t)
		}
		agg += rate
	}
	return agg
}

// observedQueue returns the queue class k's controllers see at the
// current time: Q(t−τ_k) from the history, or the live queue at zero
// delay.
func (d *Density) observedQueue(k int) float64 {
	if tau := d.cfg.Classes[k].Delay; tau > 0 {
		return d.hist.At(d.t - tau)
	}
	return d.q
}

// Step advances the system by one Dt. It returns an error if any
// class's drift violates the CFL bound max|g|·Dt/Δλ ≤ 1 (choose a
// smaller Dt or a coarser grid); the check runs before any state is
// mutated, so a failing Step leaves the solver exactly as it was.
func (d *Density) Step() error {
	agg := d.AggregateRate()
	dt := d.cfg.Dt
	for k, kern := range d.kerns {
		qObs := d.observedQueue(k)
		if err := kern.SetDrift(d.cfg.Classes[k].Law, qObs, dt); err != nil {
			return fmt.Errorf("meanfield: class %d %v", k, err)
		}
	}
	// Each class's transport/diffusion kernel (and its birth–death
	// ledger) touches only its own densities, so the sweeps shard
	// across the worker pool; the coupling (AggregateRate above)
	// already ran in class order.
	parallel.Each(len(d.kerns), d.cfg.Workers, func(k int) {
		kern := d.kerns[k]
		kern.Advect(dt)
		if sigma := d.cfg.Classes[k].SigmaL; sigma > 0 {
			kern.Diffuse(sigma, dt)
		}
		kern.ClampNegative()
		kern.StepChurn(dt)
	})
	d.q = math.Max(d.q+(agg-d.cfg.Mu)*dt, 0)
	d.t += dt
	d.hist.Record(d.t, d.q, d.t-d.maxDelay-1)
	d.step++
	if rec := d.cfg.Obs; rec.Enabled() {
		if err := d.observe(rec, agg); err != nil {
			return err
		}
	}
	return nil
}

// observe feeds the attached recorder after a completed step: probe
// samples when due (the per-class moment passes are O(bins), computed
// only then), invariant checks when enabled.
func (d *Density) observe(rec *obs.Recorder, agg float64) error {
	if rec.ProbeDue("mf.queue", d.t) {
		rec.Probe("mf.queue", d.t, d.q)
		rec.Probe("mf.lambda", d.t, agg)
		rec.Probe("mf.clipped", d.t, d.ClippedMass())
		for k, kern := range d.kerns {
			mean, variance := kern.Moments()
			name := "mf." + d.cfg.ClassName(k)
			rec.Probe(name+".mean", d.t, mean)
			rec.Probe(name+".var", d.t, variance)
			if kern.Open() {
				rec.Probe(name+".pop", d.t, d.ClassPopulation(k))
				rec.Probe(name+".born", d.t, float64(d.cfg.Classes[k].N)*kern.Born())
				rec.Probe(name+".died", d.t, float64(d.cfg.Classes[k].N)*kern.Died())
			}
		}
	}
	if !rec.Invariants() {
		return nil
	}
	for k, kern := range d.kerns {
		if err := kern.CheckInvariants(rec, d.step, d.t, "mf."+d.cfg.ClassName(k)); err != nil {
			return err
		}
	}
	if err := rec.CheckFinite(d.step, d.t, "mf.queue", d.q); err != nil {
		return err
	}
	return rec.CheckMonotoneTail(d.step, "mf.history", d.hist.TailTimes())
}

// Run advances until time tEnd (whole steps; the final partial step
// is skipped when shorter than Dt/2 to keep both backends on the same
// uniform time lattice).
func (d *Density) Run(tEnd float64) error {
	for d.t+d.cfg.Dt/2 <= tEnd {
		if err := d.Step(); err != nil {
			return err
		}
	}
	return nil
}
