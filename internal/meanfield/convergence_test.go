package meanfield

import (
	"math"
	"testing"

	"fpcc/internal/control"
	"fpcc/internal/des"
)

// windowAvg wraps SteadyStats for tests: it returns the window-
// averaged queue, failing the test on any step error.
func windowAvg(t *testing.T, s Stepper, warm, horizon float64) float64 {
	t.Helper()
	q, _, err := SteadyStats(s, warm, horizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestParticleDensityConvergence is the tentpole's acceptance
// criterion: the kinetic (density) solution must reproduce the
// steady-state mean queue of a 10⁴-source stochastic particle
// ensemble within 2%, and the particle-to-density gap must not grow
// as N increases (the mean-field limit).
func TestParticleDensityConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("steps 10^4 particles through 6000 Euler-Maruyama steps")
	}
	cfg := testConfig(10000)
	cfg.SecondOrder = true
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dq := windowAvg(t, d, 30, 60)
	dq /= 10000

	var gaps []float64
	for _, n := range []int{100, 10000} {
		p, err := NewParticles(testConfig(n), 42, 0)
		if err != nil {
			t.Fatal(err)
		}
		pq := windowAvg(t, p, 30, 60)
		pq /= float64(n)
		gaps = append(gaps, math.Abs(pq-dq)/dq)
	}
	if gaps[1] > 0.02 {
		t.Errorf("N=10⁴ particle vs density steady mean queue gap %.3f%% exceeds 2%%", 100*gaps[1])
	}
	if gaps[1] > gaps[0]+0.02 {
		t.Errorf("gap grows with N: %.3f%% (N=100) -> %.3f%% (N=10⁴)", 100*gaps[0], 100*gaps[1])
	}
}

// TestDensityVsDES cross-checks the kinetic engine against the
// packet-level discrete-event simulator at an N where both are
// feasible: 40 Poisson sources sharing one bottleneck. The DES queue
// carries packet-level noise the fluid-limit queue does not, so the
// tolerance is looser than the particle comparison (measured gap
// ~1.7%; asserted at 5%).
func TestDensityVsDES(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 200-second packet-level simulation")
	}
	const (
		n     = 40
		share = 10.0
		qhat  = 80.0
	)
	law := control.AIMD{C0: 5, C1: 0.5, QHat: qhat}

	srcs := make([]des.SourceConfig, n)
	for i := range srcs {
		srcs[i] = des.SourceConfig{Law: law, Interval: 0.05, Lambda0: share}
	}
	sim, err := des.New(des.Config{Mu: n * share, Sources: srcs, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(200, 50)
	if err != nil {
		t.Fatal(err)
	}
	desQ := res.QueueStats.Mean()

	d, err := NewDensity(Config{
		Classes: []Class{{Law: law, N: n, Lambda0: share, InitStd: 1, SigmaL: 1}},
		Mu:      n * share, LMax: 40, Bins: 160, Dt: 0.01, SecondOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mfQ := windowAvg(t, d, 50, 200)

	if gap := math.Abs(mfQ-desQ) / desQ; gap > 0.05 {
		t.Errorf("density mean queue %.2f vs DES %.2f: gap %.1f%% exceeds 5%%", mfQ, desQ, 100*gap)
	}
}
