package meanfield

import (
	"fmt"
	"math"

	"fpcc/internal/obs"
	"fpcc/internal/rng"
	"fpcc/internal/stats"
	"fpcc/internal/sweep"
)

// chunkSize is the fixed shard width of the particle arrays. Fixing
// it (rather than deriving it from the worker count) is what makes
// particle runs byte-identical for any worker count: every chunk owns
// a deterministic rng stream and a fixed particle range, and only the
// scheduling of chunks — never their content — varies with workers.
const chunkSize = 4096

// chunk is one shard of a class's rate array: a sub-slice of the flat
// SoA storage, its own rng.Mix-derived random stream, and the partial
// reductions (rate sum, Welford moments) the coupling and the
// observables are assembled from without a second pass.
type chunk struct {
	class int
	lam   []float64 // sub-slice of the class's flat rate array
	r     *rng.Source
	sum   float64       // Σλ over the chunk, refreshed each step
	mom   stats.Moments // per-chunk Welford state, refreshed each step
}

// Particles is the finite-N Monte-Carlo backend: per-class flat
// []float64 rate arrays in structure-of-arrays layout, stepped in
// fixed-size chunks across a bounded worker pool. It simulates
// exactly the system whose N → ∞ limit Density solves:
//
//	dλ_i = g_k(Q(t−τ_k), λ_i) dt + σ_k dW_i   (reflected into [0, LMax])
//	dQ   = (Σ_k w_k Σ_{i∈k} λ_i − μ) dt       (reflected at 0)
//
// Each chunk draws from its own rng stream derived from the run seed
// by rng.Mix (via sweep.CellSeed), and all cross-chunk reductions are
// performed in chunk-index order, so results are reproducible from
// the seed alone and byte-identical for any worker count. Cost per
// step is O(N); practical up to N ≈ 10⁵ — beyond that, use Density.
type Particles struct {
	cfg     Config
	workers int
	lam     [][]float64 // per-class flat rate arrays
	chunks  []*chunk
	t       float64
	q       float64

	hist     History
	maxDelay float64
	step     int64 // completed steps, stamping probes and violations
}

// NewParticles builds the particle backend with every source's
// initial rate drawn from its class blob (clipped to [0, LMax]).
// workers bounds the per-step parallelism (0 = GOMAXPROCS); it
// affects wall-clock time only, never results.
func NewParticles(cfg Config, seed uint64, workers int) (*Particles, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.open() {
		return nil, fmt.Errorf("meanfield: particle backend does not support open-system classes (Churn/Pulse); use the density backend, or netsim for finite-N churn")
	}
	p := &Particles{
		cfg:      cfg,
		workers:  workers,
		q:        cfg.Q0,
		maxDelay: cfg.maxDelay(),
	}
	for k, cl := range cfg.Classes {
		arr := make([]float64, cl.N)
		p.lam = append(p.lam, arr)
		for lo := 0; lo < cl.N; lo += chunkSize {
			hi := lo + chunkSize
			if hi > cl.N {
				hi = cl.N
			}
			c := &chunk{
				class: k,
				lam:   arr[lo:hi],
				r:     rng.New(sweep.CellSeed(seed, len(p.chunks))),
			}
			for i := range c.lam {
				l := cl.Lambda0
				if cl.InitStd > 0 {
					l += cl.InitStd * c.r.Norm()
				}
				c.lam[i] = clampRate(l, cfg.LMax)
			}
			c.reduce()
			p.chunks = append(p.chunks, c)
		}
	}
	p.hist.Record(0, p.q, 0)
	return p, nil
}

// clampRate reflects l into [0, max] (mirror reflection, matching the
// zero-flux ends of the density grid; far-out values are clamped).
func clampRate(l, max float64) float64 {
	if l < 0 {
		l = -l
	}
	if l > max {
		l = 2*max - l
	}
	if l < 0 {
		return 0
	}
	if l > max {
		return max
	}
	return l
}

// reduce refreshes the chunk's partial sums from its current rates.
func (c *chunk) reduce() {
	c.sum = 0
	c.mom = stats.Moments{}
	for _, l := range c.lam {
		c.sum += l
		c.mom.Add(l)
	}
}

// Time returns the current simulation time.
func (p *Particles) Time() float64 { return p.t }

// Queue returns the current queue length.
func (p *Particles) Queue() float64 { return p.q }

// NumClasses returns the number of classes.
func (p *Particles) NumClasses() int { return len(p.lam) }

// Rates returns class k's rate array (the live storage — callers must
// not modify it).
func (p *Particles) Rates(k int) []float64 { return p.lam[k] }

// ClassMoments returns the rate moments of class k, assembled by
// merging the per-chunk Welford accumulators (stats.Moments.Merge) in
// chunk order — no second pass over the particles.
func (p *Particles) ClassMoments(k int) stats.Moments {
	var m stats.Moments
	for _, c := range p.chunks {
		if c.class == k {
			m.Merge(c.mom)
		}
	}
	return m
}

// ClassMeanRate returns ⟨λ⟩_k, the mean per-source rate of class k.
func (p *Particles) ClassMeanRate(k int) float64 {
	m := p.ClassMoments(k)
	return m.Mean()
}

// AggregateRate returns the total arrival rate Λ = Σ_k w_k Σ_i λ_i,
// reduced from the per-chunk sums in chunk-index order so the value
// is bit-identical for any worker count.
func (p *Particles) AggregateRate() float64 {
	var agg float64
	for _, c := range p.chunks {
		agg += p.cfg.weight(c.class) * c.sum
	}
	return agg
}

// observedQueue returns the queue class k's controllers see now.
func (p *Particles) observedQueue(k int) float64 {
	if tau := p.cfg.Classes[k].Delay; tau > 0 {
		return p.hist.At(p.t - tau)
	}
	return p.q
}

// Step advances every particle and the queue by one Dt. Chunks are
// stepped concurrently on up to the configured workers; the results
// are independent of the worker count.
func (p *Particles) Step() error {
	agg := p.AggregateRate()
	dt := p.cfg.Dt
	sqdt := math.Sqrt(dt)
	qObs := make([]float64, len(p.cfg.Classes))
	for k := range p.cfg.Classes {
		qObs[k] = p.observedQueue(k)
	}
	_, err := sweep.Map(len(p.chunks), p.workers, func(i int) (struct{}, error) {
		c := p.chunks[i]
		cl := &p.cfg.Classes[c.class]
		law := cl.Law
		qo := qObs[c.class]
		sum := 0.0
		mom := stats.Moments{}
		for j, l := range c.lam {
			l += law.Drift(qo, l) * dt
			if cl.SigmaL > 0 {
				l += cl.SigmaL * sqdt * c.r.Norm()
			}
			l = clampRate(l, p.cfg.LMax)
			c.lam[j] = l
			sum += l
			mom.Add(l)
		}
		c.sum = sum
		c.mom = mom
		return struct{}{}, nil
	})
	if err != nil {
		return fmt.Errorf("meanfield: particle step: %w", err)
	}
	p.q = math.Max(p.q+(agg-p.cfg.Mu)*dt, 0)
	p.t += dt
	p.hist.Record(p.t, p.q, p.t-p.maxDelay-1)
	p.step++
	if rec := p.cfg.Obs; rec.Enabled() {
		if err := p.observe(rec); err != nil {
			return err
		}
	}
	return nil
}

// observe feeds the attached recorder after a completed step. The
// aggregate rate reuses the per-chunk sums the step just refreshed,
// so probes stay O(chunks); the invariant scan over every particle is
// O(N) and runs only when invariants are enabled.
func (p *Particles) observe(rec *obs.Recorder) error {
	if rec.ProbeDue("mfp.queue", p.t) {
		rec.Probe("mfp.queue", p.t, p.q)
		rec.Probe("mfp.lambda", p.t, p.AggregateRate())
	}
	if !rec.Invariants() {
		return nil
	}
	// clampRate reflects every particle into [0, LMax]; a violation
	// means a law produced NaN or the state was corrupted.
	for k, arr := range p.lam {
		name := "mfp." + p.cfg.ClassName(k) + ".rates"
		if err := rec.CheckNonNegative(p.step, p.t, name, arr); err != nil {
			return err
		}
	}
	if err := rec.CheckFinite(p.step, p.t, "mfp.queue", p.q); err != nil {
		return err
	}
	return rec.CheckMonotoneTail(p.step, "mfp.history", p.hist.TailTimes())
}

// Run advances until time tEnd on the same whole-step lattice as
// Density.Run.
func (p *Particles) Run(tEnd float64) error {
	for p.t+p.cfg.Dt/2 <= tEnd {
		if err := p.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Histogram bins class k's rates over [0, LMax) into the given number
// of bins — the empirical counterpart of Density.Marginal.
func (p *Particles) Histogram(k, bins int) (*stats.Histogram1D, error) {
	h, err := stats.NewHistogram1D(0, p.cfg.LMax, bins)
	if err != nil {
		return nil, err
	}
	for _, l := range p.lam[k] {
		h.Add(l)
	}
	return h, nil
}
