package meanfield

import (
	"math"
	"testing"

	"fpcc/internal/control"
)

// testLaw returns the per-source AIMD law of the canonical scaled
// scenario: per-source service share 1, total queue target qhat0·n.
func testLaw(n int, qhat0 float64) control.AIMD {
	return control.AIMD{C0: 0.5, C1: 0.5, QHat: qhat0 * float64(n)}
}

// testConfig is the single-class scenario both backends are validated
// on: n sources with unit service share, total target 2n.
func testConfig(n int) Config {
	return Config{
		Classes: []Class{{
			Law: testLaw(n, 2), N: n, Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
		}},
		Mu: float64(n), LMax: 4, Bins: 160, Dt: 0.01, Q0: 2 * float64(n),
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(100)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"nil law", func(c *Config) { c.Classes[0].Law = nil }},
		{"zero population", func(c *Config) { c.Classes[0].N = 0 }},
		{"negative weight", func(c *Config) { c.Classes[0].Weight = -1 }},
		{"negative delay", func(c *Config) { c.Classes[0].Delay = -0.1 }},
		{"initial rate above LMax", func(c *Config) { c.Classes[0].Lambda0 = 5 }},
		{"negative spread", func(c *Config) { c.Classes[0].InitStd = -1 }},
		{"negative sigma", func(c *Config) { c.Classes[0].SigmaL = -1 }},
		{"non-positive mu", func(c *Config) { c.Mu = 0 }},
		{"non-positive LMax", func(c *Config) { c.LMax = 0 }},
		{"too few bins", func(c *Config) { c.Bins = 4 }},
		{"non-positive dt", func(c *Config) { c.Dt = 0 }},
		{"negative queue", func(c *Config) { c.Q0 = -1 }},
		{"NaN queue", func(c *Config) { c.Q0 = math.NaN() }},
		{"NaN initial rate", func(c *Config) { c.Classes[0].Lambda0 = math.NaN() }},
		{"NaN weight", func(c *Config) { c.Classes[0].Weight = math.NaN() }},
		{"NaN delay", func(c *Config) { c.Classes[0].Delay = math.NaN() }},
		{"NaN spread", func(c *Config) { c.Classes[0].InitStd = math.NaN() }},
		{"NaN sigma", func(c *Config) { c.Classes[0].SigmaL = math.NaN() }},
	}
	for _, tc := range cases {
		cfg := testConfig(100)
		cfg.Classes = append([]Class(nil), cfg.Classes...)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{Classes: []Class{
		{Name: "fast", N: 30, Weight: 2},
		{N: 70},
	}}
	if got := cfg.TotalSources(); got != 100 {
		t.Errorf("TotalSources = %d, want 100", got)
	}
	if got := cfg.ClassName(0); got != "fast" {
		t.Errorf("ClassName(0) = %q", got)
	}
	if got := cfg.ClassName(1); got != "class1" {
		t.Errorf("ClassName(1) = %q, want default", got)
	}
	if got := cfg.weight(0); got != 2 {
		t.Errorf("weight(0) = %v, want 2", got)
	}
	if got := cfg.weight(1); got != 1 {
		t.Errorf("weight(1) = %v, want 1 (default)", got)
	}
}

func TestQHistoryInterpolation(t *testing.T) {
	var h History
	if got := h.At(1); got != 0 {
		t.Fatalf("empty history at(1) = %v, want 0", got)
	}
	h.Record(0, 10, 0)
	h.Record(1, 20, 0)
	h.Record(2, 0, 0)
	for _, tc := range []struct{ t, want float64 }{
		{-1, 10}, {0, 10}, {0.5, 15}, {1, 20}, {1.75, 5}, {2, 0}, {3, 0},
	} {
		if got := h.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("at(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

// TestDensityBitIdenticalAcrossWorkers pins the new class-parallel
// step: a multi-class run must produce bit-identical marginals and
// queue for any Config.Workers.
func TestDensityBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) (*Density, error) {
		cfg := testConfig(1000)
		// Three classes with different dynamics so scheduling skew
		// would have something to scramble.
		cfg.Classes = []Class{
			{Law: testLaw(400, 2), N: 400, Lambda0: 1, InitStd: 0.3, SigmaL: 0.3},
			{Law: testLaw(300, 2), N: 300, Lambda0: 1.4, InitStd: 0.2, SigmaL: 0.5, Delay: 0.3},
			{Law: testLaw(300, 2), N: 300, Lambda0: 0.7, InitStd: 0.4, SigmaL: 0.2, Weight: 2},
		}
		cfg.Workers = workers
		d, err := NewDensity(cfg)
		if err != nil {
			return nil, err
		}
		return d, d.Run(5)
	}
	d1, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		dw, err := run(workers)
		if err != nil {
			t.Fatal(err)
		}
		if dw.Queue() != d1.Queue() {
			t.Fatalf("workers=%d: queue %v, workers=1 got %v", workers, dw.Queue(), d1.Queue())
		}
		for k := 0; k < d1.NumClasses(); k++ {
			m1, mw := d1.Marginal(k), dw.Marginal(k)
			for i := range m1 {
				if m1[i] != mw[i] {
					t.Fatalf("workers=%d: class %d marginal[%d] = %v, workers=1 got %v",
						workers, k, i, mw[i], m1[i])
				}
			}
		}
	}
}

// Transport has zero-flux ends and the diffusion solve is
// conservative, so each class's mass must stay at 1 up to the tracked
// negativity clipping.
func TestDensityMassConservation(t *testing.T) {
	for _, second := range []bool{false, true} {
		cfg := testConfig(1000)
		cfg.SecondOrder = second
		d, err := NewDensity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(20); err != nil {
			t.Fatal(err)
		}
		m := d.Marginal(0)
		mass := 0.0
		for _, v := range m {
			mass += v
		}
		mass *= d.RateGrid().Dx
		// Zeroing negative undershoots adds mass, so the exact budget
		// is mass = 1 + clipped.
		if math.Abs(mass-d.ClippedMass()-1) > 1e-8 {
			t.Errorf("secondOrder=%v: mass %.12f - clipped %.3g != 1", second, mass, d.ClippedMass())
		}
	}
}

// Without delay the mean-field AIMD population must settle at the
// operating point: time-averaged queue near the target and
// time-averaged per-source rate near the fair share μ/N (Theorem 1's
// limit point, reached by the aggregate dynamics).
func TestDensitySteadyState(t *testing.T) {
	const n = 1_000_000 // cost is independent of N — run the headline size
	cfg := testConfig(n)
	cfg.SecondOrder = true
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(30); err != nil {
		t.Fatal(err)
	}
	var qSum, rSum float64
	var cnt int
	for d.Time() < 60 {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		qSum += d.Queue()
		rSum += d.ClassMeanRate(0)
		cnt++
	}
	qAvg := qSum / float64(cnt) / n
	rAvg := rSum / float64(cnt)
	if math.Abs(qAvg-2) > 0.02*2 {
		t.Errorf("steady per-source queue %.4f, want 2 within 2%%", qAvg)
	}
	if math.Abs(rAvg-1) > 0.05 {
		t.Errorf("steady per-source rate %.4f, want 1 within 5%%", rAvg)
	}
}

// Feedback delay must destabilize the operating point into a limit
// cycle (Section 7): the queue's late-time swing with τ > 0 has to
// dwarf the zero-delay swing.
func TestDensityDelayOscillation(t *testing.T) {
	swing := func(delay float64) float64 {
		cfg := testConfig(10000)
		cfg.Classes[0].Delay = delay
		d, err := NewDensity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(40); err != nil {
			t.Fatal(err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for d.Time() < 80 {
			if err := d.Step(); err != nil {
				t.Fatal(err)
			}
			lo = math.Min(lo, d.Queue())
			hi = math.Max(hi, d.Queue())
		}
		return (hi - lo) / 10000
	}
	s0, s1 := swing(0), swing(1.0)
	if s1 < 4*s0 {
		t.Errorf("delay swing %.4f not ≫ zero-delay swing %.4f", s1, s0)
	}
}

func TestDensityCFLViolation(t *testing.T) {
	cfg := testConfig(100)
	cfg.Dt = 1 // |g|·Dt/Δλ = 2·1/0.025 = 80 ≫ 1
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Marginal(0)
	if err := d.Step(); err == nil {
		t.Fatal("CFL-violating step accepted")
	}
	// The check runs before any mutation: a failing Step must leave
	// the solver exactly as it was.
	after := d.Marginal(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("failed Step mutated the density at bin %d: %v -> %v", i, before[i], after[i])
		}
	}
	if d.Time() != 0 || d.Queue() != cfg.Q0 {
		t.Fatalf("failed Step advanced time/queue: t=%v q=%v", d.Time(), d.Queue())
	}
}

// Heterogeneous weights: a class of weight 2 contributes twice its
// rate sum to the aggregate.
func TestAggregateRateWeights(t *testing.T) {
	cfg := Config{
		Classes: []Class{
			{Law: testLaw(100, 2), N: 60, Lambda0: 1, Weight: 2},
			{Law: testLaw(100, 2), N: 40, Lambda0: 1},
		},
		Mu: 100, LMax: 4, Bins: 32, Dt: 0.01,
	}
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Point masses at the cell containing λ=1.
	cell := d.RateGrid().Center(d.RateGrid().CellOf(1))
	want := 2*60*cell + 40*cell
	if got := d.AggregateRate(); math.Abs(got-want) > 1e-9*want {
		t.Errorf("AggregateRate = %v, want %v", got, want)
	}
	p, err := NewParticles(cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantP := 2*60*1.0 + 40*1.0
	if got := p.AggregateRate(); math.Abs(got-wantP) > 1e-9*wantP {
		t.Errorf("particle AggregateRate = %v, want %v", got, wantP)
	}
}
