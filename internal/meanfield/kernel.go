package meanfield

import (
	"fmt"
	"math"
	"strconv"

	"fpcc/internal/churn"
	"fpcc/internal/control"
	"fpcc/internal/grid"
	"fpcc/internal/obs"
)

// ClassKernel bundles the transport kernels of one class. A closed
// class (no churn) owns exactly one RateDensity and every method
// delegates, so the classic engines' trajectories are bit-identical
// through this wrapper. An open class owns one RateDensity per
// lifetime phase: newborns are split across phases by the lifetime's
// phase weights and each phase's mass decays at its hazard, which is
// the Markovian (hyperexponential) representation of the session
// lifetime — exact for exponential lifetimes, a mean-exact tail fit
// for Pareto (see churn.Lifetime).
//
// Both engine couplings read the class through the same two numbers:
// MeanRate (⟨λ⟩ over the live mass) and LiveMass (base + born − died,
// the population in units of the initial N), so the offered rate is
// w·N·MeanRate·LiveMass with LiveMass exactly 1 for closed classes.
type ClassKernel struct {
	ph     []*RateDensity
	hazard []float64 // per-phase death hazard (1/s; 0 on closed kernels)
	share  []float64 // per-phase birth split (the lifetime's phase weights)

	// birthProfile is the cached newborn blob (unit mass, density
	// units) and birthRate the normalized mass birth rate Arrival/N;
	// both zero on closed kernels.
	birthProfile []float64
	birthRate    float64
}

// NewClassKernel builds the kernel group of one class: a single
// kernel at the class's initial blob when ch is nil, otherwise one
// phase kernel per lifetime phase (each starting with the phase's
// share of the initial blob — the t = 0 population is "fresh", phase
// composition equal to a newborn's, matching the packet engines
// sampling full lifetimes at t = 0). n is the class's initial
// population, used only to normalize the arrival rate to mass units.
func NewClassKernel(lMax float64, bins int, lambda0, initStd float64, secondOrder bool, n int, ch *churn.Flow) (*ClassKernel, error) {
	if ch == nil {
		rd, err := NewRateDensity(lMax, bins, lambda0, initStd, secondOrder)
		if err != nil {
			return nil, err
		}
		return &ClassKernel{ph: []*RateDensity{rd}, hazard: []float64{0}, share: []float64{1}}, nil
	}
	if err := ch.Validate(lMax); err != nil {
		return nil, err
	}
	phases := ch.Lifetime.Phases()
	k := &ClassKernel{birthRate: ch.Arrival / float64(n)}
	for _, p := range phases {
		rd, err := NewRateDensity(lMax, bins, lambda0, initStd, secondOrder)
		if err != nil {
			return nil, err
		}
		rd.ScaleInit(p.Weight)
		k.ph = append(k.ph, rd)
		k.hazard = append(k.hazard, p.Rate)
		k.share = append(k.share, p.Weight)
	}
	profile, err := k.ph[0].BlobProfile(ch.Lambda0, ch.InitStd)
	if err != nil {
		return nil, fmt.Errorf("newborn profile: %w", err)
	}
	k.birthProfile = profile
	return k, nil
}

// Open reports whether the kernel carries birth–death dynamics.
func (k *ClassKernel) Open() bool {
	return k.birthRate > 0 || k.hazard[0] > 0 || len(k.ph) > 1
}

// Grid returns the shared λ-axis.
func (k *ClassKernel) Grid() grid.Uniform1D { return k.ph[0].Grid() }

// Phase returns the i-th phase kernel (tests and probes; the slice
// structure is an implementation detail of the lifetime fit).
func (k *ClassKernel) Phase(i int) *RateDensity { return k.ph[i] }

// NumPhases returns the number of phase kernels.
func (k *ClassKernel) NumPhases() int { return len(k.ph) }

// Marginal returns the class's rate density: the single kernel's copy
// for closed classes, the per-phase sum for open ones.
func (k *ClassKernel) Marginal() []float64 {
	m := k.ph[0].Marginal()
	for _, rd := range k.ph[1:] {
		for i, v := range rd.Marginal() {
			m[i] += v
		}
	}
	return m
}

// Mass returns the summed ∫f over phases.
func (k *ClassKernel) Mass() float64 {
	var m float64
	for _, rd := range k.ph {
		m += rd.Mass()
	}
	return m
}

// ClippedMass returns the summed undershoot audit over phases.
func (k *ClassKernel) ClippedMass() float64 {
	var c float64
	for _, rd := range k.ph {
		c += rd.ClippedMass()
	}
	return c
}

// LiveMass returns the class's live population in units of its
// initial N: Σ over phases of base + born − died. Exactly 1 for a
// closed class, so the engines can multiply offered rates by it
// unconditionally without perturbing legacy trajectories.
func (k *ClassKernel) LiveMass() float64 {
	var m float64
	for _, rd := range k.ph {
		m += rd.Budget()
	}
	return m
}

// Born returns the cumulative born mass over phases.
func (k *ClassKernel) Born() float64 {
	var m float64
	for _, rd := range k.ph {
		m += rd.Born()
	}
	return m
}

// Died returns the cumulative died mass over phases.
func (k *ClassKernel) Died() float64 {
	var m float64
	for _, rd := range k.ph {
		m += rd.Died()
	}
	return m
}

// MeanRate returns ⟨λ⟩ over the class's whole live mass (phase masses
// pooled before normalizing, so clipping bias stays uniform). It
// delegates on closed kernels — the same arithmetic, one call.
func (k *ClassKernel) MeanRate() float64 {
	if len(k.ph) == 1 {
		return k.ph[0].MeanRate()
	}
	var mass, m1 float64
	for _, rd := range k.ph {
		rd.syncF64()
		for i, v := range rd.f {
			mass += v
			m1 += v * rd.lc[i]
		}
	}
	if mass <= 0 {
		return math.NaN()
	}
	return m1 / mass
}

// Moments returns the pooled mean and variance over phases,
// normalized by the class's current mass.
func (k *ClassKernel) Moments() (mean, variance float64) {
	if len(k.ph) == 1 {
		return k.ph[0].Moments()
	}
	var mass, m1 float64
	for _, rd := range k.ph {
		rd.syncF64()
		for i, v := range rd.f {
			mass += v
			m1 += v * rd.lc[i]
		}
	}
	if mass <= 0 {
		return math.NaN(), math.NaN()
	}
	mean = m1 / mass
	var m2 float64
	for _, rd := range k.ph {
		for i, v := range rd.f {
			dl := rd.lc[i] - mean
			m2 += v * dl * dl
		}
	}
	return mean, m2 / mass
}

// SetDrift caches (and CFL-checks) the drift on every phase kernel
// without mutating any density — same protocol as RateDensity.
func (k *ClassKernel) SetDrift(law control.Law, qObs, dt float64) error {
	for _, rd := range k.ph {
		if err := rd.SetDrift(law, qObs, dt); err != nil {
			return err
		}
	}
	return nil
}

// Advect applies the cached transport step to every phase kernel.
func (k *ClassKernel) Advect(dt float64) {
	for _, rd := range k.ph {
		rd.Advect(dt)
	}
}

// Diffuse applies the σ diffusion to every phase kernel.
func (k *ClassKernel) Diffuse(sigma, dt float64) {
	for _, rd := range k.ph {
		rd.Diffuse(sigma, dt)
	}
}

// ClampNegative clips undershoots on every phase kernel.
func (k *ClassKernel) ClampNegative() {
	for _, rd := range k.ph {
		rd.ClampNegative()
	}
}

// StepChurn applies one dt of birth–death dynamics: each phase decays
// by its exact per-step survival factor 1 − e^(−hazard·dt), then
// newborn mass birthRate·dt is deposited at the newborn profile,
// split across phases by the lifetime's phase weights (deaths first,
// so mass born within the step does not die within it). A no-op on
// closed kernels. Touches only this class's kernels, so engines run
// it inside their per-class parallel sections.
func (k *ClassKernel) StepChurn(dt float64) {
	for i, rd := range k.ph {
		if h := k.hazard[i]; h > 0 {
			rd.Decay(-math.Expm1(-h * dt))
		}
		if k.birthRate > 0 {
			rd.Deposit(k.birthProfile, k.birthRate*dt*k.share[i])
		}
	}
}

// FaultInjectBorn adds delta to phase i's born ledger without
// depositing any density mass — a fault-injection hook for the
// engines' invariant tests, which corrupt the ledger and assert the
// next step's mass-budget check names the exact kernel and step.
// Never called outside tests.
func (k *ClassKernel) FaultInjectBorn(i int, delta float64) {
	k.ph[i].born += delta
}

// CheckInvariants runs the per-phase conservation checks: field-named
// as the class on closed kernels, with a ".ph<i>" suffix per phase on
// open multi-phase ones, so a violation names the exact kernel.
func (k *ClassKernel) CheckInvariants(rec *obs.Recorder, step int64, t float64, field string) error {
	if len(k.ph) == 1 {
		return k.ph[0].CheckInvariants(rec, step, t, field)
	}
	for i, rd := range k.ph {
		if err := rd.CheckInvariants(rec, step, t, field+".ph"+strconv.Itoa(i)); err != nil {
			return err
		}
	}
	return nil
}
