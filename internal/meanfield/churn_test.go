package meanfield

import (
	"errors"
	"math"
	"testing"

	"fpcc/internal/churn"
	"fpcc/internal/obs"
)

// churnConfig opens the canonical scaled scenario: n sources alive at
// t = 0, sessions arriving at `arrivals` flows/s with the given
// lifetime, newborns entering at the class blob.
func churnConfig(n int, arrivals float64, lt churn.Lifetime) Config {
	cfg := testConfig(n)
	cfg.Classes[0].Churn = &churn.Flow{
		Arrival: arrivals, Lifetime: lt, Lambda0: 1, InitStd: 0.3,
	}
	return cfg
}

// TestDensityChurnSteadyPopulation pins the birth–death dynamics
// against the analytic phase-wise transient: each phase's live mass
// obeys live_i' = β·w_i − r_i·live_i, so the population at time t is
// known in closed form and relaxes toward Little's-law α·mean. Checked
// from above (N > α·m) and below (N < α·m), for the exact exponential
// representation and the fitted Pareto one (whose slow tail phases
// keep it far from the fixed point at t = 60 — exactly what the
// closed form predicts).
func TestDensityChurnSteadyPopulation(t *testing.T) {
	const mean = 4.0
	exp, err := churn.NewExponential(mean)
	if err != nil {
		t.Fatal(err)
	}
	// α = 1.5 with mean 3xm: Pareto(1.5, xm) has mean xm·α/(α−1).
	par, err := churn.NewPareto(1.5, mean/3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		n    int
		lt   churn.Lifetime
	}{
		{"exp from above", 2000, exp},
		{"exp from below", 500, exp},
		{"pareto from above", 2000, par},
		{"pareto from below", 500, par},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const arrivals = 250.0 // target population 250·4 = 1000
			cfg := churnConfig(tc.n, arrivals, tc.lt)
			d, err := NewDensity(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const tEnd = 60.0
			if err := d.Run(tEnd); err != nil {
				t.Fatal(err)
			}
			// Closed-form expectation: at t = 0 each phase holds weight
			// w_i of the (normalized) population, births feed it at
			// β·w_i = (α/N)·w_i, deaths drain it at r_i·live_i.
			beta := arrivals / float64(tc.n)
			var live float64
			for _, p := range tc.lt.Phases() {
				decay := math.Exp(-p.Rate * tEnd)
				live += p.Weight*decay + beta*p.Weight/p.Rate*(1-decay)
			}
			want := float64(tc.n) * live
			pop := d.ClassPopulation(0)
			if gap := math.Abs(pop-want) / want; gap > 0.01 {
				t.Errorf("live population %.1f at t=%g, closed form says %.1f (gap %.2f%%)",
					pop, tEnd, want, 100*gap)
			}
			// And the fixed point itself is Little's law: fully relaxed
			// for the exponential cases at 15 lifetimes.
			if _, exp := tc.lt.(*churn.Exponential); exp {
				target := arrivals * tc.lt.Mean()
				if gap := math.Abs(pop-target) / target; gap > 0.02 {
					t.Errorf("live population %.1f after 15 lifetimes, want %.1f (Little's law; gap %.2f%%)",
						pop, target, 100*gap)
				}
			}
		})
	}
}

// TestDensityChurnMassConservation checks the exact ledger identity
// ∫f = base + clipped + born − died directly (not through the obs
// layer) after a churn-heavy multi-phase run.
func TestDensityChurnMassConservation(t *testing.T) {
	par, err := churn.NewPareto(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(1000, 500, par)
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(20); err != nil {
		t.Fatal(err)
	}
	kern := d.kerns[0]
	if kern.NumPhases() < 2 {
		t.Fatalf("Pareto kernel has %d phases, want multi-phase", kern.NumPhases())
	}
	got := kern.Mass()
	want := 1 + kern.ClippedMass() + kern.Born() - kern.Died()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("mass budget drifted: ∫f = %.12f, ledger says %.12f", got, want)
	}
	if kern.Born() <= 0 || kern.Died() <= 0 {
		t.Errorf("ledger did not move: born %v died %v", kern.Born(), kern.Died())
	}
}

// TestDensityChurnInvariantsCleanRun pins the positive case: an
// instrumented open-system run (multi-phase Pareto lifetimes, live
// births and deaths every step) stays violation-free under the
// extended mass budget ∫f = base + clipped + born − died.
func TestDensityChurnInvariantsCleanRun(t *testing.T) {
	par, err := churn.NewPareto(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(1000, 500, par)
	rec := (&obs.Config{Invariants: true}).Recorder("mf")
	cfg.Obs = rec
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10); err != nil {
		t.Fatalf("instrumented churn run failed: %v", err)
	}
	if n := rec.Violations(); n != 0 {
		t.Fatalf("clean churn run recorded %d violations", n)
	}
}

// TestDensityChurnBirthLedgerFault corrupts the birth ledger of an
// open single-phase (exponential) class — crediting born mass that
// was never deposited — and requires the next Step to fail with a
// *obs.Violation naming the class mass field and the exact step.
func TestDensityChurnBirthLedgerFault(t *testing.T) {
	exp, err := churn.NewExponential(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(1000, 250, exp)
	rec := (&obs.Config{Invariants: true}).Recorder("mf")
	cfg.Obs = rec
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	d.kerns[0].FaultInjectBorn(0, 0.25)
	err = d.Step()
	if err == nil {
		t.Fatal("corrupted birth ledger passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if want := "mf." + cfg.ClassName(0) + ".mass"; v.Field != want {
		t.Errorf("violation field = %q, want %q", v.Field, want)
	}
	if v.Step != 2 {
		t.Errorf("violation step = %d, want 2 (the first step after corruption)", v.Step)
	}
	if rec.Violations() != 1 {
		t.Errorf("recorder counted %d violations, want 1", rec.Violations())
	}
}

// TestDensityChurnBirthLedgerFaultPhase corrupts a single phase of a
// multi-phase (Pareto) kernel and requires the violation to name that
// exact phase kernel via the ".ph<i>" field suffix.
func TestDensityChurnBirthLedgerFaultPhase(t *testing.T) {
	par, err := churn.NewPareto(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(1000, 250, par)
	rec := (&obs.Config{Invariants: true}).Recorder("mf")
	cfg.Obs = rec
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.kerns[0].NumPhases() < 2 {
		t.Fatalf("Pareto kernel has %d phases, want multi-phase", d.kerns[0].NumPhases())
	}
	if err := d.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	d.kerns[0].FaultInjectBorn(1, 0.25)
	err = d.Step()
	if err == nil {
		t.Fatal("corrupted phase birth ledger passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if want := "mf." + cfg.ClassName(0) + ".ph1.mass"; v.Field != want {
		t.Errorf("violation field = %q, want %q", v.Field, want)
	}
	if v.Step != 2 {
		t.Errorf("violation step = %d, want 2", v.Step)
	}
}

// TestDensityPulseScalesCoupling pins the pulse envelope's coupling
// contract: a pulsed class contributes exactly FactorAt(t) times the
// unpulsed offered rate, and the per-source density itself is
// untouched (the envelope models synchronized on/off blasting, not a
// rate change).
func TestDensityPulseScalesCoupling(t *testing.T) {
	plain := testConfig(1000)
	d0, err := NewDensity(plain)
	if err != nil {
		t.Fatal(err)
	}
	pulsed := testConfig(1000)
	p, err := churn.NewPulse(1.5, 0.25, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pulsed.Classes[0].Pulse = p
	d1, err := NewDensity(pulsed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d1.AggregateRate(), d0.AggregateRate()*p.FactorAt(0); got != want {
		t.Errorf("pulsed aggregate at t=0 is %v, want factor-scaled %v", got, want)
	}
	m0, m1 := d0.Marginal(0), d1.Marginal(0)
	for i := range m0 {
		if m0[i] != m1[i] {
			t.Fatalf("pulse perturbed the per-source density at bin %d: %v vs %v", i, m0[i], m1[i])
		}
	}
}

// TestParticlesRejectOpenClasses pins the backend split: the particle
// engine has no birth–death or envelope support and must say so at
// construction instead of silently simulating a closed system.
func TestParticlesRejectOpenClasses(t *testing.T) {
	exp, err := churn.NewExponential(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(1000, 250, exp)
	if _, err := NewParticles(cfg, 1, 0); err == nil {
		t.Error("particle backend accepted an open (churn) class")
	}
	pcfg := testConfig(1000)
	p, err := churn.NewPulse(1.5, 0.25, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pcfg.Classes[0].Pulse = p
	if _, err := NewParticles(pcfg, 1, 0); err == nil {
		t.Error("particle backend accepted a pulsed class")
	}
}
