package meanfield

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"fpcc/internal/obs"
)

// TestDensityInvariantCorruptMass corrupts one class's density mass
// between steps and requires the next Step to fail with a
// *obs.Violation naming the per-class mass field and the exact step.
func TestDensityInvariantCorruptMass(t *testing.T) {
	cfg := testConfig(100)
	rec := (&obs.Config{Invariants: true}).Recorder("mf")
	cfg.Obs = rec
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	// Scale the class density: advection conserves the corruption, so
	// the class mass budget ∫f = 1 + clipped breaks immediately.
	for i := range d.kerns[0].ph[0].f {
		d.kerns[0].ph[0].f[i] *= 1.02
	}
	err = d.Step()
	if err == nil {
		t.Fatal("corrupted class mass passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if want := "mf." + cfg.ClassName(0) + ".mass"; v.Field != want {
		t.Errorf("violation field = %q, want %q", v.Field, want)
	}
	if v.Step != 2 {
		t.Errorf("violation step = %d, want 2 (the first step after corruption)", v.Step)
	}
	if rec.Violations() != 1 {
		t.Errorf("recorder counted %d violations, want 1", rec.Violations())
	}
}

// TestDensityInvariantNaNQueue injects a poisoned queue (a plain
// negative value is healed by the queue ODE's max(·, 0) clamp before
// the checker sees it; NaN survives) and requires the checker to
// stamp the mf.queue field.
func TestDensityInvariantNaNQueue(t *testing.T) {
	cfg := testConfig(100)
	cfg.Obs = (&obs.Config{Invariants: true}).Recorder("mf")
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	d.q = math.NaN()
	err = d.Step()
	if err == nil {
		t.Fatal("negative queue passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if v.Field != "mf.queue" {
		t.Errorf("violation field = %q, want mf.queue", v.Field)
	}
	if v.Step != 2 {
		t.Errorf("violation step = %d, want 2", v.Step)
	}
}

// TestDensityInvariantsCleanRun pins the positive case: an
// uncorrupted instrumented run stays violation-free.
func TestDensityInvariantsCleanRun(t *testing.T) {
	cfg := testConfig(100)
	rec := (&obs.Config{Invariants: true}).Recorder("mf")
	cfg.Obs = rec
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5); err != nil {
		t.Fatalf("instrumented run failed: %v", err)
	}
	if n := rec.Violations(); n != 0 {
		t.Fatalf("clean run recorded %d violations", n)
	}
}

// TestFlightRecorderDump pins the post-mortem path at the mean-field
// layer: the class-mass violation must carry the preceding step's
// probe samples and the dump must land in the sink as a contiguous
// "flight.*" block.
func TestFlightRecorderDump(t *testing.T) {
	cfg := testConfig(100)
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	rec := (&obs.Config{Sink: sink, Invariants: true, FlightRecorder: 64}).Recorder("mf")
	cfg.Obs = rec
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	for i := range d.kerns[0].ph[0].f {
		d.kerns[0].ph[0].f[i] *= 1.02
	}
	err = d.Step()
	if err == nil {
		t.Fatal("corrupted class mass passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if len(v.Recent) == 0 {
		t.Fatal("violation carries no flight-recorder events")
	}
	sawEarlierProbe := false
	for _, ev := range v.Recent {
		if ev.T > v.T {
			t.Errorf("flight event %s at t=%g is later than the violation (t=%g)", ev.Name, ev.T, v.T)
		}
		if ev.Kind == "probe" && ev.T < v.T {
			sawEarlierProbe = true
		}
	}
	if !sawEarlierProbe {
		t.Error("flight dump has no probe sample from before the violating step")
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var flightLines, headerN int64
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("trace line does not decode: %v", err)
		}
		switch {
		case e.Kind == "flight":
			headerN = e.Count
		case strings.HasPrefix(e.Kind, "flight."):
			flightLines++
		}
	}
	if headerN != int64(len(v.Recent)) || flightLines != headerN {
		t.Errorf("flight block: header announces %d, %d dump lines, violation carried %d",
			headerN, flightLines, len(v.Recent))
	}
}
