package meanfield

import (
	"math"
	"testing"

	"fpcc/internal/control"
)

// TestRateDensity32MatchesFloat64 qualifies the kernel's float32 lane:
// driving both lanes through the same SetDrift/Advect/Diffuse/
// ClampNegative protocol for an E14-scale horizon, every observable
// must agree to single-precision accuracy. As with the Fokker-Planck
// lane this is a tolerance bar, not byte identity — which is why the
// mean-field suite experiments render from the float64 kernel (see
// EXPERIMENTS.md).
func TestRateDensity32MatchesFloat64(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	const (
		lMax    = 12.0
		bins    = 240
		lambda0 = 4.0
		initStd = 1.2
		sigma   = 0.35
		dt      = 0.002
		steps   = 1500
	)
	r64, err := NewRateDensity(lMax, bins, lambda0, initStd, false)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := NewRateDensity32(lMax, bins, lambda0, initStd)
	if err != nil {
		t.Fatal(err)
	}
	step := func(r *RateDensity, qObs float64) {
		t.Helper()
		if err := r.SetDrift(law, qObs, dt); err != nil {
			t.Fatal(err)
		}
		r.Advect(dt)
		r.Diffuse(sigma, dt)
		r.ClampNegative()
	}
	for i := 0; i < steps; i++ {
		// A queue signal that swings the drift sign over the run.
		qObs := 20 + 12*math.Sin(float64(i)*dt*2)
		step(r64, qObs)
		step(r32, qObs)
	}

	// Float32 mass conservation is approximate: pairwise flux updates
	// and the CN solve each round once per cell per step, so unit mass
	// drifts at a few×1e-8 per step (measured 3.5e-5 over these 1500
	// steps). That drift is the reason the lane keeps the float64
	// Recorder mass budget (1e-6) out of reach and the suite's kinetic
	// experiments render from float64.
	if e := math.Abs(r32.Mass() - r64.Mass()); e > 1e-4 {
		t.Errorf("mass gap %.2e: float32 %v vs float64 %v", e, r32.Mass(), r64.Mass())
	}
	m64, m32 := r64.MeanRate(), r32.MeanRate()
	if e := math.Abs(m32-m64) / math.Abs(m64); e > 2e-5 {
		t.Errorf("mean rate rel gap %.2e: float32 %v vs float64 %v", e, m32, m64)
	}
	mean64, var64 := r64.Moments()
	mean32, var32 := r32.Moments()
	if e := math.Abs(mean32 - mean64); e > 1e-4 {
		t.Errorf("moment mean gap %.2e", e)
	}
	if e := math.Abs(var32-var64) / var64; e > 1e-3 {
		t.Errorf("variance rel gap %.2e", e)
	}
	f64m, f32m := r64.Marginal(), r32.Marginal()
	var linf float64
	for i := range f64m {
		if d := math.Abs(f64m[i] - f32m[i]); d > linf {
			linf = d
		}
	}
	if linf > 1e-4 {
		t.Errorf("marginal L∞ gap %.2e > 1e-4", linf)
	}
}
