package meanfield

import (
	"math"
	"testing"
)

// lattice is a stub Stepper on an exact binary-fraction time lattice,
// so steps land on the warmup boundary with no floating-point fuzz:
// the queue equals the step count and the single class rate is
// constant.
type lattice struct {
	dt    float64
	t     float64
	steps int
}

func (l *lattice) Step() error               { l.steps++; l.t = float64(l.steps) * l.dt; return nil }
func (l *lattice) Time() float64             { return l.t }
func (l *lattice) Queue() float64            { return float64(l.steps) }
func (l *lattice) NumClasses() int           { return 1 }
func (l *lattice) ClassMeanRate(int) float64 { return 2.5 }

// TestSteadyStatsWindowIncludesBoundaryStep pins the measurement
// window [warm, horizon] sample by sample: with Dt = 0.25, warm = 1
// and horizon = 2, the sampled steps are exactly those ending at
// 1.00, 1.25, 1.50, 1.75 and 2.00 — five samples, INCLUDING the one
// landing exactly on the warmup boundary (the pre-fix window test
// `Time() > warm` silently dropped it).
func TestSteadyStatsWindowIncludesBoundaryStep(t *testing.T) {
	l := &lattice{dt: 0.25}
	meanQ, rates, err := SteadyStats(l, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.steps != 8 {
		t.Errorf("ran %d steps, want 8 (horizon 2 at Dt 0.25)", l.steps)
	}
	// Queue is the step counter, so the sampled values are 4..8: their
	// mean pins both the sample count (5) and the boundary inclusion
	// (a 4-sample window averaging 5..8 would give 6.5).
	if want := (4 + 5 + 6 + 7 + 8) / 5.0; meanQ != want {
		t.Errorf("meanQ = %v, want %v (5 samples including the t=warm step)", meanQ, want)
	}
	if len(rates) != 1 || rates[0] != 2.5 {
		t.Errorf("rates = %v, want [2.5]", rates)
	}
}

// TestSteadyStatsOnStepRunsDuringWarmup pins the onStep contract: the
// callback fires after every step, warmup included.
func TestSteadyStatsOnStepRunsDuringWarmup(t *testing.T) {
	l := &lattice{dt: 0.25}
	var calls int
	if _, _, err := SteadyStats(l, 1, 2, func() { calls++ }); err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Errorf("onStep ran %d times, want 8 (every step, warmup included)", calls)
	}
}

// TestSteadyStatsRejectsEmptyWindow covers the inverted-window error
// path. (The "no steps in window" guard is defensive: the final step
// always lands at or past the horizon, hence inside [warm, horizon]'s
// closure, so any time-advancing Stepper yields at least one sample.)
func TestSteadyStatsRejectsEmptyWindow(t *testing.T) {
	if _, _, err := SteadyStats(&lattice{dt: 0.25}, 2, 2, nil); err == nil {
		t.Error("accepted horizon == warm")
	}
	if _, _, err := SteadyStats(&lattice{dt: 0.25}, math.Inf(1), 2, nil); err == nil {
		t.Error("accepted warm > horizon")
	}
}
