package meanfield

import "sort"

// History is the continuous queue-length record the fluid-limit
// engines use for delayed observation: samples are appended once per
// step and a controller observing with delay τ reads the linear
// interpolation at t−τ. The queue of a fluid-limit model is
// continuous, unlike the integer-valued des.QueueHistory — hence
// interpolation rather than piecewise-constant lookup. It serves the
// shared-bottleneck backends here (Density, Particles) and the
// per-link queue histories of the networked engine (internal/netmf).
type History struct {
	t, q []float64
}

// Record appends the sample (t, q), pruning samples strictly older
// than cut once the history has grown large (one sample at or before
// the cut is kept so lookups just inside the window interpolate).
func (h *History) Record(t, q, cut float64) {
	h.t = append(h.t, t)
	h.q = append(h.q, q)
	if len(h.t) > 8192 {
		k := sort.SearchFloat64s(h.t, cut)
		if k > 1 {
			k-- // keep one sample at or before the cut
			h.t = append(h.t[:0], h.t[k:]...)
			h.q = append(h.q[:0], h.q[k:]...)
		}
	}
}

// TailTimes returns the timestamps of the most recent (up to) two
// samples, oldest first — what the per-step history-monotonicity
// invariant inspects (each step appends once, so checking the tail
// every step covers the whole series).
func (h *History) TailTimes() []float64 {
	if n := len(h.t); n > 2 {
		return h.t[n-2:]
	}
	return h.t
}

// At returns the queue length at time t, linearly interpolated
// between samples and clamped to the recorded range (times before the
// first sample return the initial state).
func (h *History) At(t float64) float64 {
	n := len(h.t)
	if n == 0 {
		return 0
	}
	if t <= h.t[0] {
		return h.q[0]
	}
	if t >= h.t[n-1] {
		return h.q[n-1]
	}
	k := sort.SearchFloat64s(h.t, t)
	t0, t1 := h.t[k-1], h.t[k]
	if t1 == t0 {
		return h.q[k]
	}
	frac := (t - t0) / (t1 - t0)
	return h.q[k-1] + frac*(h.q[k]-h.q[k-1])
}
