package meanfield

import (
	"testing"
	"time"
)

// The headline scaling claim: stepping a million-source population on
// the density engine costs O(classes × bins), independent of N.
func BenchmarkDensityStepMillion(b *testing.B) {
	cfg := testConfig(1_000_000)
	cfg.SecondOrder = true
	d, err := NewDensity(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// The finite-N comparison point: one step of the SoA particle backend
// at N = 10⁴ (its practical sweet spot).
func BenchmarkParticlesStep10k(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "workers=max"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			p, err := NewParticles(testConfig(10_000), 1, workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDensityStepSpeedup asserts the acceptance bound: a 10⁶-source
// density step must run at least 10× faster than a 10⁴-source
// particle step (measured headroom is ~50-100×, so the 10× bound has
// wide margin against scheduler noise).
func TestDensityStepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const steps = 200
	cfg := testConfig(1_000_000)
	cfg.SecondOrder = true
	d, err := NewDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParticles(testConfig(10_000), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both up so one-time costs stay out of the measurement.
	for i := 0; i < 10; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Now()
	for i := 0; i < steps; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	densityPer := time.Since(t0) / steps
	t0 = time.Now()
	for i := 0; i < steps; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	particlePer := time.Since(t0) / steps
	t.Logf("density N=10⁶: %v/step; particles N=10⁴: %v/step (ratio %.1fx)",
		densityPer, particlePer, float64(particlePer)/float64(densityPer))
	if particlePer < 10*densityPer {
		t.Errorf("density step (%v) is not ≥10x faster than the 10⁴-particle step (%v)",
			densityPer, particlePer)
	}
}
