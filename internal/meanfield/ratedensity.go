package meanfield

import (
	"fmt"
	"math"

	"fpcc/internal/control"
	"fpcc/internal/grid"
	"fpcc/internal/linalg"
	"fpcc/internal/obs"
)

// RateDensity is the single-class kinetic kernel: one rate density
// f(λ, t) on a uniform λ-grid over [0, LMax], advected by a drift
// g(qObs, λ) with conservative first-order upwind (or MUSCL/minmod)
// sweeps and diffused by (σ²/2)·f_λλ with a Crank-Nicolson
// tridiagonal solve, both with zero-flux ends. It is the piece of the
// mean-field machinery that knows nothing about queues: the
// shared-bottleneck Density engine couples a set of RateDensities to
// one queue ODE, and the networked engine (internal/netmf) couples
// them to a topology of link-queue ODEs — same transport, different
// coupling.
//
// The stepping protocol is split so an engine can validate a whole
// step before mutating anything: SetDrift caches the cell-edge drifts
// and performs the CFL check WITHOUT touching the density, then
// Advect/Diffuse/ClampNegative apply the cached step.
type RateDensity struct {
	ax  grid.Uniform1D
	f   []float64 // cell-centered density, length Bins
	tmp []float64 // scratch row for the transport sweeps
	lc  []float64 // cell centers

	// drift caches the cell-edge drifts SetDrift filled (and
	// CFL-checked) for the pending step; edges 1..Bins-1 are used.
	drift       []float64
	secondOrder bool

	// courant is the largest |g|·dt/Δλ of the drifts SetDrift last
	// cached — the margin the invariant checker re-verifies.
	courant float64

	// Prefactored Crank-Nicolson solve for the σ diffusion: the
	// bands depend only on rr, so the shared kernel rebuilds its
	// decomposition only when the step or σ changes and each Diffuse
	// is one fused forward/back substitution over the col workspace.
	fac     linalg.CNFactor
	col     []float64
	clipped float64

	// Open-system (birth–death) ledger. base is the initial mass (1
	// for a closed kernel, the phase weight for a churn phase kernel);
	// born and died accumulate the mass Deposit injected and Decay
	// removed, so the auditable budget generalizes to
	// ∫f = base + clipped + born − died. All three stay untouched on
	// closed kernels, reducing the budget to the classic 1 + clipped.
	base, born, died float64

	// Float32 lane (NewRateDensity32): f32 is the authoritative
	// density and f its lazily-synced float64 widening — every reader
	// calls syncF64 first. The transport and diffusion sweeps run
	// single-precision; drifts, CFL checks and the clipped audit stay
	// float64. First-order upwind only.
	f32, tmp32, col32 []float32
	fac32             linalg.CNFactor32
	f32Dirty          bool
}

// NewRateDensity builds the kernel on a Bins-cell grid over [0, lMax],
// initialized to a grid-discretized, renormalized Gaussian blob at
// lambda0 with spread initStd (a point mass when initStd is 0).
// secondOrder selects MUSCL/minmod transport over first-order upwind.
func NewRateDensity(lMax float64, bins int, lambda0, initStd float64, secondOrder bool) (*RateDensity, error) {
	ax, err := grid.NewUniform1D(0, lMax, bins)
	if err != nil {
		return nil, fmt.Errorf("rate axis: %w", err)
	}
	r := &RateDensity{
		ax:          ax,
		f:           make([]float64, bins),
		tmp:         make([]float64, bins),
		lc:          ax.Centers(),
		drift:       make([]float64, bins),
		secondOrder: secondOrder,
		col:         make([]float64, bins),
		base:        1,
	}
	blob, err := blobProfile(ax, r.lc, lambda0, initStd)
	if err != nil {
		return nil, err
	}
	copy(r.f, blob)
	return r, nil
}

// blobProfile builds the grid-discretized, renormalized Gaussian blob
// at lambda0 with spread initStd (a point mass when initStd is 0) as
// a unit-mass density (∫ = 1) on the axis.
func blobProfile(ax grid.Uniform1D, lc []float64, lambda0, initStd float64) ([]float64, error) {
	f := make([]float64, ax.N)
	if initStd > 0 {
		for i, l := range lc {
			z := (l - lambda0) / initStd
			f[i] = math.Exp(-0.5 * z * z)
		}
	} else {
		f[ax.CellOf(lambda0)] = 1
	}
	mass := 0.0
	for _, v := range f {
		mass += v
	}
	if !(mass > 0) {
		return nil, fmt.Errorf("blob at %v±%v has no mass on [0, %v]", lambda0, initStd, ax.Max)
	}
	linalg.Scale(1/(mass*ax.Dx), f)
	return f, nil
}

// NewRateDensity32 is NewRateDensity with single-precision density
// storage and float32 transport/diffusion sweeps — the kernel's
// Float32 lane. Only first-order upwind transport is supported (no
// secondOrder parameter); every observable is computed on a float64
// widening of the field, so callers see the same API with results
// differing from the float64 kernel only in the trailing digits.
func NewRateDensity32(lMax float64, bins int, lambda0, initStd float64) (*RateDensity, error) {
	r, err := NewRateDensity(lMax, bins, lambda0, initStd, false)
	if err != nil {
		return nil, err
	}
	r.f32 = make([]float32, bins)
	r.tmp32 = make([]float32, bins)
	r.col32 = make([]float32, bins)
	linalg.Narrow(r.f32, r.f)
	r.f32Dirty = true // reads widen the rounded initial condition back
	return r, nil
}

// syncF64 refreshes the float64 widening on the float32 lane; a no-op
// otherwise.
func (r *RateDensity) syncF64() {
	if r.f32Dirty {
		linalg.Widen(r.f, r.f32)
		r.f32Dirty = false
	}
}

// Grid returns the λ-axis the density lives on.
func (r *RateDensity) Grid() grid.Uniform1D { return r.ax }

// Marginal returns a copy of the density (length Bins, cell-centered).
func (r *RateDensity) Marginal() []float64 {
	r.syncF64()
	return append([]float64(nil), r.f...)
}

// ClippedMass returns the total probability mass ADDED by zeroing
// negative undershoots so far (a discretization audit, not a physical
// gain; see ClampNegative).
func (r *RateDensity) ClippedMass() float64 { return r.clipped }

// Budget returns the kernel's live mass base + born − died: the
// physical population mass (in units of the class's initial
// population), excluding the clipped-undershoot audit. 1 exactly for
// a closed kernel.
func (r *RateDensity) Budget() float64 { return r.base + r.born - r.died }

// Born returns the cumulative mass Deposit injected.
func (r *RateDensity) Born() float64 { return r.born }

// Died returns the cumulative mass Decay removed.
func (r *RateDensity) Died() float64 { return r.died }

// Mass returns the current total probability mass ∫f dλ. The sweeps
// are conservative with zero-flux ends, so the exact budget is
// Mass = base + ClippedMass + Born − Died to rounding (base is 1, and
// the ledger zero, outside the open-system configurations).
func (r *RateDensity) Mass() float64 {
	r.syncF64()
	var m float64
	for _, v := range r.f {
		m += v
	}
	return m * r.ax.Dx
}

// Courant returns the largest Courant number |g|·dt/Δλ of the last
// SetDrift (0 before the first step).
func (r *RateDensity) Courant() float64 { return r.courant }

// CheckInvariants verifies the kernel's conservation laws against the
// attached recorder at the given step: the mass budget
// ∫f = base + clipped + born − died (the classic 1 + clipped on
// closed kernels), density non-negativity (including NaN), and the
// cached Courant margin. Field names are prefixed with field (e.g.
// "mf.class0" → "mf.class0.mass").
func (r *RateDensity) CheckInvariants(rec *obs.Recorder, step int64, t float64, field string) error {
	r.syncF64()
	if err := rec.CheckMass(step, t, field+".mass", r.Mass(), r.base+r.clipped+r.born-r.died, rec.MassTol()); err != nil {
		return err
	}
	if err := rec.CheckNonNegative(step, t, field+".density", r.f); err != nil {
		return err
	}
	return rec.CheckCourant(step, t, field+".cfl", r.courant, 1.0000001)
}

// MeanRate returns ⟨λ⟩, the mean rate of the density normalized by
// its current mass, in a single O(Bins) pass.
func (r *RateDensity) MeanRate() float64 {
	r.syncF64()
	var mass, m1 float64
	for i, v := range r.f {
		mass += v
		m1 += v * r.lc[i]
	}
	if mass <= 0 {
		return math.NaN()
	}
	return m1 / mass
}

// Moments returns the mean and variance of the density, normalized by
// its current mass.
func (r *RateDensity) Moments() (mean, variance float64) {
	r.syncF64()
	var mass, m1 float64
	for i, v := range r.f {
		mass += v
		m1 += v * r.lc[i]
	}
	if mass <= 0 {
		return math.NaN(), math.NaN()
	}
	mean = m1 / mass
	var m2 float64
	for i, v := range r.f {
		dl := r.lc[i] - mean
		m2 += v * dl * dl
	}
	return mean, m2 / mass
}

// SetDrift caches the cell-edge drifts g(qObs, λ_edge) for a step of
// size dt and checks the CFL bound max|g|·dt/Δλ ≤ 1. It does NOT
// mutate the density, so an engine can SetDrift every class before
// advecting any: a CFL error leaves the whole system untouched.
func (r *RateDensity) SetDrift(law control.Law, qObs, dt float64) error {
	dl := r.ax.Dx
	var cmax float64
	for e := 1; e < r.ax.N; e++ {
		a := law.Drift(qObs, r.ax.Edge(e))
		if c := math.Abs(a) * dt / dl; c > 1.0000001 {
			return fmt.Errorf("drift %v at λ=%v violates CFL (|c|=%.3f > 1); reduce Dt",
				a, r.ax.Edge(e), c)
		} else if c > cmax {
			cmax = c
		}
		r.drift[e] = a
	}
	r.courant = cmax
	return nil
}

// Advect performs the conservative transport sweep of f_t + (g f)_λ =
// 0 with the cell-edge drifts SetDrift cached: first-order upwind, or
// MUSCL/minmod with the time-centred correction when the kernel is
// second-order. Both ends are zero-flux (a source's rate cannot leave
// [0, LMax]), so transport conserves mass exactly.
func (r *RateDensity) Advect(dt float64) {
	if r.f32 != nil {
		r.advect32(dt)
		return
	}
	f := r.f
	nb := r.ax.N
	dl := r.ax.Dx
	copy(r.tmp, f)
	at := func(i int) float64 { return r.tmp[i] }
	slope := func(i int) float64 {
		if i <= 0 || i >= nb-1 {
			return 0 // first-order fallback at the boundary cells
		}
		return linalg.Minmod(at(i)-at(i-1), at(i+1)-at(i))
	}
	for e := 1; e < nb; e++ { // interior edges; 0 and nb are zero-flux
		a := r.drift[e]
		if a == 0 {
			continue
		}
		c := a * dt / dl
		var up float64
		if a > 0 {
			up = at(e - 1)
			if r.secondOrder {
				up += 0.5 * (1 - c) * slope(e-1)
			}
		} else {
			up = at(e)
			if r.secondOrder {
				up -= 0.5 * (1 + c) * slope(e)
			}
		}
		dm := a * up * dt / dl
		f[e-1] -= dm
		f[e] += dm
	}
}

// Diffuse performs the Crank-Nicolson solve of f_t = (σ²/2) f_λλ with
// zero-flux (Neumann) ends — one tridiagonal system, the 1-D analogue
// of fokkerplanck's q-diffusion, run through the shared prefactored
// kernel (linalg.CNFactor): one fused RHS-build/forward-elimination
// and back-substitution pass, with no per-call band construction.
func (r *RateDensity) Diffuse(sigma, dt float64) {
	dl := r.ax.Dx
	rr := 0.5 * sigma * sigma * dt / (2 * dl * dl) // θ=1/2 CN factor
	if r.f32 != nil {
		r.fac32.Ensure(rr, r.ax.N)
		r.fac32.Step(r.f32, r.col32)
		r.f32Dirty = true
		return
	}
	r.fac.Ensure(rr, r.ax.N)
	r.fac.Step(r.f, r.col)
}

// ClampNegative zeroes the tiny negative undershoots the explicit
// sweeps can leave, accumulating the mass added into ClippedMass so
// the audit quantity stays available without biasing any coupling
// (means are normalized by the current mass).
func (r *RateDensity) ClampNegative() {
	if r.f32 != nil {
		r.clipped += -linalg.ClampNonNegative32(r.f32) * r.ax.Dx
		r.f32Dirty = true
		return
	}
	r.clipped += -linalg.ClampNonNegative(r.f) * r.ax.Dx
}

// ScaleInit scales the freshly built initial condition (and the base
// of the mass budget) by w — the constructor for phase kernels, whose
// initial mass is the phase's weight rather than 1. Call it before
// stepping; it is not meaningful mid-run.
func (r *RateDensity) ScaleInit(w float64) {
	linalg.Scale(w, r.f)
	r.base = w
	if r.f32 != nil {
		linalg.Narrow(r.f32, r.f)
		r.f32Dirty = true
	}
}

// BlobProfile returns the unit-mass (∫ = 1) grid discretization of
// the Gaussian blob at lambda0 with spread initStd on this kernel's
// axis — the newborn rate profile Deposit injects.
func (r *RateDensity) BlobProfile(lambda0, initStd float64) ([]float64, error) {
	return blobProfile(r.ax, r.lc, lambda0, initStd)
}

// Deposit injects mass·profile into the density (profile a unit-mass
// density as returned by BlobProfile), crediting the born ledger: the
// birth half of the open-system source term.
func (r *RateDensity) Deposit(profile []float64, mass float64) {
	r.syncF64()
	for i := range r.f {
		r.f[i] += mass * profile[i]
	}
	r.born += mass
	if r.f32 != nil {
		linalg.Narrow(r.f32, r.f)
		r.f32Dirty = true
	}
}

// Decay removes the fraction frac of the current mass uniformly
// across the density — the death half of the open-system source term,
// exact for a constant per-flow hazard because departures are
// rate-independent. The removed mass (frac times the current ∫f,
// whatever its clipped bias) is debited to the died ledger, keeping
// the budget ∫f = base + clipped + born − died exact to rounding.
func (r *RateDensity) Decay(frac float64) {
	if frac == 0 {
		return
	}
	r.syncF64()
	removed := frac * r.Mass()
	linalg.Scale(1-frac, r.f)
	r.died += removed
	if r.f32 != nil {
		linalg.Narrow(r.f32, r.f)
		r.f32Dirty = true
	}
}

// advect32 is the float32 first-order upwind transport sweep: same
// edge-flux scheme as Advect, single-precision field arithmetic, with
// each edge coefficient g·dt/Δλ rounded once from the float64 drift.
func (r *RateDensity) advect32(dt float64) {
	f := r.f32
	nb := r.ax.N
	dl := r.ax.Dx
	copy(r.tmp32, f)
	for e := 1; e < nb; e++ { // interior edges; 0 and nb are zero-flux
		a := r.drift[e]
		if a == 0 {
			continue
		}
		var up float32
		if a > 0 {
			up = r.tmp32[e-1]
		} else {
			up = r.tmp32[e]
		}
		dm := float32(a*dt/dl) * up
		f[e-1] -= dm
		f[e] += dm
	}
	r.f32Dirty = true
}
