package sde

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/control"
)

func baseConfig() Config {
	return Config{
		Law:       control.AIMD{C0: 2, C1: 0.8, QHat: 20},
		Mu:        10,
		Sigma:     1,
		Particles: 2000,
		Dt:        1e-3,
		Seed:      1,
		Q0:        5,
		Lambda0:   8,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Law = nil },
		func(c *Config) { c.Mu = 0 },
		func(c *Config) { c.Sigma = -1 },
		func(c *Config) { c.Particles = 0 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Q0 = -1 },
		func(c *Config) { c.Lambda0 = -1 },
		func(c *Config) { c.InitStdQ = -1 },
	}
	for i, mut := range mutations {
		c := baseConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() EnsembleMoments {
		e, err := New(baseConfig())
		if err != nil {
			t.Fatal(err)
		}
		e.Run(5)
		return e.Moments()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different moments: %+v vs %+v", a, b)
	}
}

// TestDeterministicAcrossWorkers pins the chunked-ensemble guarantee:
// the worker count schedules fixed chunks but never changes their
// streams, so every observable is bit-identical for any Workers.
func TestDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (EnsembleMoments, float64) {
		cfg := baseConfig()
		cfg.Particles = 3*4096 + 17 // straddle several chunks plus a ragged tail
		cfg.Workers = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(3)
		return e.Moments(), e.TailFraction(5)
	}
	m1, t1 := run(1)
	for _, workers := range []int{2, 8} {
		mw, tw := run(workers)
		if m1 != mw || t1 != tw {
			t.Fatalf("workers=%d diverged: %+v/%v vs %+v/%v", workers, mw, tw, m1, t1)
		}
	}
}

func TestQueueNeverNegative(t *testing.T) {
	cfg := baseConfig()
	cfg.Sigma = 3 // strong noise to stress the reflection
	cfg.Q0 = 0.5
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2000; s++ {
		e.Step()
		for i := 0; i < e.Size(); i++ {
			q, lam := e.Particle(i)
			if q < 0 {
				t.Fatalf("negative queue %v at step %d", q, s)
			}
			if lam < 0 {
				t.Fatalf("negative rate %v at step %d", lam, s)
			}
		}
	}
}

// TestZeroNoiseFollowsCharacteristic: with σ = 0 and a point initial
// condition every particle follows the deterministic characteristic,
// so the ensemble mean converges to (q̂, μ) per Theorem 1 and the
// variance stays 0.
func TestZeroNoiseFollowsCharacteristic(t *testing.T) {
	cfg := baseConfig()
	cfg.Sigma = 0
	cfg.Particles = 16
	cfg.Q0, cfg.Lambda0 = 0, 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(600)
	m := e.Moments()
	if m.VarQ > 1e-12 || m.VarLam > 1e-12 {
		t.Fatalf("deterministic ensemble has spread: %+v", m)
	}
	if math.Abs(m.MeanQ-20) > 1 {
		t.Fatalf("mean queue %v, want near q̂ = 20", m.MeanQ)
	}
	if math.Abs(m.MeanLam-10) > 1 {
		t.Fatalf("mean rate %v, want near μ = 10", m.MeanLam)
	}
}

// TestNoiseCreatesSpread: positive σ must hold the stationary ensemble
// away from a point mass — the variability the paper says fluid models
// cannot capture.
func TestNoiseCreatesSpread(t *testing.T) {
	cfg := baseConfig()
	cfg.Sigma = 2
	cfg.Particles = 4000
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(300)
	m := e.Moments()
	if m.VarQ < 0.1 {
		t.Fatalf("queue variance %v, want clearly positive under noise", m.VarQ)
	}
	// The mean still hovers near the operating point.
	if math.Abs(m.MeanQ-20) > 5 {
		t.Fatalf("mean queue %v, want near 20", m.MeanQ)
	}
}

// TestPureDiffusionVariance: with a frozen rate λ = μ (no control,
// Custom law with zero drift) and the queue far from both boundaries,
// Var[Q] grows like σ²t — the textbook diffusion check.
func TestPureDiffusionVariance(t *testing.T) {
	cfg := Config{
		Law:       control.Custom{DriftFunc: func(q, lambda float64) float64 { return 0 }, QHat: 1e9},
		Mu:        10,
		Sigma:     1.5,
		Particles: 12000,
		Dt:        1e-3,
		Seed:      3,
		Q0:        1000, // far from the reflecting boundary
		Lambda0:   10,   // v = 0
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4.0
	e.Run(horizon)
	m := e.Moments()
	want := cfg.Sigma * cfg.Sigma * horizon
	if math.Abs(m.VarQ-want)/want > 0.1 {
		t.Fatalf("Var[Q] = %v, want ~%v (σ²t)", m.VarQ, want)
	}
	if math.Abs(m.MeanQ-1000) > 0.5 {
		t.Fatalf("mean drifted to %v, want 1000", m.MeanQ)
	}
}

// TestReflectedDiffusionStationary: with λ frozen below μ the queue is
// a reflected Brownian motion with negative drift; its stationary
// density is exponential with mean σ²/(2|v|).
func TestReflectedDiffusionStationary(t *testing.T) {
	const sigma, muMinusLam = 2.0, 1.0
	cfg := Config{
		Law:       control.Custom{DriftFunc: func(q, lambda float64) float64 { return 0 }, QHat: 1e9},
		Mu:        10,
		Sigma:     sigma,
		Particles: 6000,
		Dt:        1e-3,
		Seed:      7,
		Q0:        1,
		Lambda0:   10 - muMinusLam,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50)
	m := e.Moments()
	want := sigma * sigma / (2 * muMinusLam)
	if math.Abs(m.MeanQ-want)/want > 0.1 {
		t.Fatalf("stationary mean %v, want ~%v (σ²/2|v|)", m.MeanQ, want)
	}
}

func TestRunLandsOnTime(t *testing.T) {
	cfg := baseConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1.2345)
	if math.Abs(e.Time()-1.2345) > 1e-9 {
		t.Fatalf("Time = %v, want 1.2345", e.Time())
	}
}

func TestHistograms(t *testing.T) {
	cfg := baseConfig()
	cfg.InitStdQ, cfg.InitStdL = 1, 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	h, err := e.QueueHistogram(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != cfg.Particles {
		t.Fatalf("histogram total %d, want %d", h.Total(), cfg.Particles)
	}
	j, err := e.JointHistogram(100, 20, 0, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	if j.Total() != cfg.Particles {
		t.Fatalf("joint total %d, want %d", j.Total(), cfg.Particles)
	}
}

func TestTailFraction(t *testing.T) {
	cfg := baseConfig()
	cfg.Sigma = 0
	cfg.Particles = 10
	cfg.Q0 = 5
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.TailFraction(4); got != 1 {
		t.Fatalf("TailFraction(4) = %v, want 1", got)
	}
	if got := e.TailFraction(5); got != 0 {
		t.Fatalf("TailFraction(5) = %v, want 0 (strict >)", got)
	}
}

// Property: ensembles with different seeds have nearly identical
// moments at scale (law of large numbers sanity).
func TestSeedInsensitivityProperty(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		if seedA == seedB {
			return true
		}
		run := func(seed uint64) float64 {
			cfg := baseConfig()
			cfg.Seed = seed
			cfg.Particles = 2000
			cfg.Dt = 2e-3
			e, err := New(cfg)
			if err != nil {
				return math.NaN()
			}
			e.Run(40)
			return e.Moments().MeanQ
		}
		a, b := run(uint64(seedA)), run(uint64(seedB))
		return math.Abs(a-b) < 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnsembleStep(b *testing.B) {
	cfg := baseConfig()
	cfg.Particles = 10000
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
