// Package sde simulates the stochastic differential system that the
// paper's Fokker-Planck equation (Eq. 14) describes, as a particle
// (Monte-Carlo) ensemble:
//
//	dQ = v dt + σ dW        (reflected at Q = 0)
//	dv = g(Q, λ) dt         (v = λ − μ, so dλ = g dt)
//
// Equation 14,  f_t + v f_q + (g f)_v = (σ²/2) f_qq,  is exactly the
// forward Kolmogorov equation of this diffusion, so the empirical
// density of a large ensemble must match the PDE solution — that is
// experiment E9, the validation of the Fokker-Planck solver.
//
// The integrator is Euler-Maruyama with reflection at the q = 0
// boundary, which is the standard strong-order-1/2 scheme and entirely
// adequate for density-level comparisons.
//
// # Parallelism and determinism
//
// Particles live in flat structure-of-arrays storage sharded into
// fixed chunks of 4096. Each chunk owns a deterministic rng stream
// derived from the run seed by rng.Mix (via sweep.CellSeed), is
// initialized and stepped only from that stream, and chunks are
// stepped concurrently on the fixed-block fork-join pool of
// internal/parallel. Because the chunk boundaries and streams depend
// only on the particle count and the seed — never on the worker
// count — every observable is byte-identical for any Config.Workers.
package sde

import (
	"fmt"
	"math"

	"fpcc/internal/control"
	"fpcc/internal/obs"
	"fpcc/internal/parallel"
	"fpcc/internal/rng"
	"fpcc/internal/stats"
	"fpcc/internal/sweep"
)

// chunkSize is the fixed shard width of the particle arrays; fixing
// it (rather than deriving it from the worker count) is what makes
// ensemble runs reproducible for any parallelism.
const chunkSize = 4096

// Config describes an ensemble simulation.
type Config struct {
	Law       control.Law // rate-control drift g(q, λ)
	Mu        float64     // service rate (v = λ − μ)
	Sigma     float64     // diffusion coefficient σ of the queue noise
	Particles int         // ensemble size
	Dt        float64     // Euler-Maruyama step
	Seed      uint64      // RNG seed (ensemble is reproducible)

	// Initial ensemble: Gaussian blob centred at (Q0, Lambda0) with
	// standard deviations InitStdQ, InitStdL (clipped to Q >= 0,
	// λ >= 0). Zero std means a point mass.
	Q0       float64
	Lambda0  float64
	InitStdQ float64
	InitStdL float64

	// Workers bounds the per-step parallelism (0 = GOMAXPROCS). It
	// affects wall-clock time only, never results: chunk streams and
	// reductions are fixed by Particles and Seed alone.
	Workers int

	// Obs, when non-nil, receives per-step probes (sde.meanq,
	// sde.meanlam, sde.varq) and, when it enables invariants, scans
	// the particle arrays for NaN/negative states. Step has no error
	// return, so the first violation is latched and exposed through
	// InvariantViolation rather than aborting mid-step. The nil
	// default costs one branch per step and never changes any
	// observable.
	Obs *obs.Recorder
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Law == nil:
		return fmt.Errorf("sde: nil law")
	case !(c.Mu > 0):
		return fmt.Errorf("sde: service rate must be positive, got %v", c.Mu)
	case !(c.Sigma >= 0):
		return fmt.Errorf("sde: negative sigma %v", c.Sigma)
	case c.Particles < 1:
		return fmt.Errorf("sde: need at least one particle, got %d", c.Particles)
	case !(c.Dt > 0):
		return fmt.Errorf("sde: non-positive step %v", c.Dt)
	case c.Q0 < 0 || c.Lambda0 < 0:
		return fmt.Errorf("sde: negative initial state (%v, %v)", c.Q0, c.Lambda0)
	case c.InitStdQ < 0 || c.InitStdL < 0:
		return fmt.Errorf("sde: negative initial spread")
	}
	return nil
}

// Ensemble is a particle ensemble evolving under the SDE. Create one
// with New, advance it with Step/Run, and read it out with Moments,
// Histogram or the raw particle accessors.
type Ensemble struct {
	cfg     Config
	workers int
	q       []float64     // flat SoA queue lengths
	lam     []float64     // flat SoA rates
	streams []*rng.Source // one deterministic stream per fixed chunk
	drift   *parallel.Scratch[[]float64]
	t       float64

	step   int64 // completed steps, stamping probes and violations
	invErr error // first latched invariant violation (Step has no error return)
}

// New creates an ensemble with the configured initial distribution.
// Every fixed 4096-wide chunk draws its initial states and all its
// noise from its own rng.Mix-derived stream, so the ensemble is
// reproducible from the seed alone and independent of Workers.
func New(cfg Config) (*Ensemble, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Particles
	e := &Ensemble{
		cfg:     cfg,
		workers: parallel.Workers(cfg.Workers),
		q:       make([]float64, n),
		lam:     make([]float64, n),
		streams: make([]*rng.Source, (n+chunkSize-1)/chunkSize),
	}
	e.drift = parallel.NewScratch(e.workers, func() []float64 { return make([]float64, chunkSize) })
	for c := range e.streams {
		r := rng.New(sweep.CellSeed(cfg.Seed, c))
		e.streams[c] = r
		lo := c * chunkSize
		hi := min(lo+chunkSize, n)
		for i := lo; i < hi; i++ {
			q := cfg.Q0
			l := cfg.Lambda0
			if cfg.InitStdQ > 0 {
				q += cfg.InitStdQ * r.Norm()
			}
			if cfg.InitStdL > 0 {
				l += cfg.InitStdL * r.Norm()
			}
			e.q[i] = math.Max(q, 0)
			e.lam[i] = math.Max(l, 0)
		}
	}
	return e, nil
}

// Time returns the current simulation time.
func (e *Ensemble) Time() float64 { return e.t }

// Size returns the number of particles.
func (e *Ensemble) Size() int { return len(e.q) }

// Particle returns particle i's state (q, λ).
func (e *Ensemble) Particle(i int) (q, lambda float64) { return e.q[i], e.lam[i] }

// Step advances the whole ensemble by one Euler-Maruyama step.
// Chunks are stepped concurrently on up to the configured workers;
// the rate drift uses the law's batch fast path when it has one
// (control.DriftBatcher), falling back to per-particle Drift calls.
func (e *Ensemble) Step() {
	dt := e.cfg.Dt
	sqdt := math.Sqrt(dt)
	noise := e.cfg.Sigma * sqdt
	useNoise := e.cfg.Sigma > 0
	mu := e.cfg.Mu
	law := e.cfg.Law
	parallel.EachWorker(len(e.streams), e.workers, func(w, c int) {
		lo := c * chunkSize
		hi := min(lo+chunkSize, len(e.q))
		q := e.q[lo:hi]
		lam := e.lam[lo:hi]
		r := e.streams[c]
		drift := e.drift.Get(w)[:len(q)]
		control.Drifts(law, q, lam, drift)
		for i, qi := range q {
			li := lam[i]
			v := li - mu
			d := v
			if qi <= 0 && v < 0 {
				d = 0 // empty queue cannot drain
			}
			qNew := qi + d*dt
			if useNoise {
				qNew += noise * r.Norm()
			}
			if qNew < 0 {
				qNew = -qNew // reflecting boundary at q = 0
			}
			lamNew := li + drift[i]*dt
			if lamNew < 0 {
				lamNew = 0
			}
			q[i] = qNew
			lam[i] = lamNew
		}
	})
	e.t += dt
	e.step++
	if rec := e.cfg.Obs; rec.Enabled() {
		e.observe(rec)
	}
}

// observe feeds the attached recorder after a completed step. Moments
// is an O(N) pass, so it runs only when the probe series is due.
func (e *Ensemble) observe(rec *obs.Recorder) {
	if rec.ProbeDue("sde.meanq", e.t) {
		m := e.Moments()
		rec.Probe("sde.meanq", e.t, m.MeanQ)
		rec.Probe("sde.meanlam", e.t, m.MeanLam)
		rec.Probe("sde.varq", e.t, m.VarQ)
	}
	if !rec.Invariants() || e.invErr != nil {
		return
	}
	// Reflection and clamping keep every particle in q ≥ 0, λ ≥ 0; a
	// violation means a law produced NaN or the state was corrupted.
	if err := rec.CheckNonNegative(e.step, e.t, "sde.q", e.q); err != nil {
		e.invErr = err
		return
	}
	if err := rec.CheckNonNegative(e.step, e.t, "sde.lambda", e.lam); err != nil {
		e.invErr = err
	}
}

// InvariantViolation returns the first invariant violation latched by
// a stepped ensemble (nil when none, or when invariants are off).
// Step has no error return, so callers poll this after Run.
func (e *Ensemble) InvariantViolation() error { return e.invErr }

// Run advances the ensemble until time t (inclusive of the final
// partial step).
func (e *Ensemble) Run(t float64) {
	for e.t+e.cfg.Dt <= t {
		e.Step()
	}
	if rem := t - e.t; rem > 1e-12 {
		// One shortened step to land on t.
		saved := e.cfg.Dt
		e.cfg.Dt = rem
		e.Step()
		e.cfg.Dt = saved
	}
}

// EnsembleMoments summarizes the particle cloud.
type EnsembleMoments struct {
	MeanQ, VarQ     float64
	MeanLam, VarLam float64
	Cov             float64 // covariance of (q, λ)
}

// Moments returns the ensemble moments.
func (e *Ensemble) Moments() EnsembleMoments {
	n := float64(len(e.q))
	var mq, ml float64
	for i := range e.q {
		mq += e.q[i]
		ml += e.lam[i]
	}
	mq /= n
	ml /= n
	var vq, vl, cov float64
	for i := range e.q {
		dq := e.q[i] - mq
		dl := e.lam[i] - ml
		vq += dq * dq
		vl += dl * dl
		cov += dq * dl
	}
	return EnsembleMoments{
		MeanQ: mq, VarQ: vq / n,
		MeanLam: ml, VarLam: vl / n,
		Cov: cov / n,
	}
}

// QueueHistogram bins the particle queue lengths over [0, max) into
// the given number of bins.
func (e *Ensemble) QueueHistogram(max float64, bins int) (*stats.Histogram1D, error) {
	h, err := stats.NewHistogram1D(0, max, bins)
	if err != nil {
		return nil, err
	}
	for _, q := range e.q {
		h.Add(q)
	}
	return h, nil
}

// JointHistogram bins the particles over [0, qMax) x [lMin, lMax).
func (e *Ensemble) JointHistogram(qMax float64, qBins int, lMin, lMax float64, lBins int) (*stats.Histogram2D, error) {
	h, err := stats.NewHistogram2D(0, qMax, qBins, lMin, lMax, lBins)
	if err != nil {
		return nil, err
	}
	for i := range e.q {
		h.Add(e.q[i], e.lam[i])
	}
	return h, nil
}

// TailFraction returns the fraction of particles with q > b — the
// Monte-Carlo estimate of the buffer-overflow probability P(Q > b)
// that experiment E10 compares against the fluid model (which, being
// deterministic, reports 0 or 1).
func (e *Ensemble) TailFraction(b float64) float64 {
	var c int
	for _, q := range e.q {
		if q > b {
			c++
		}
	}
	return float64(c) / float64(len(e.q))
}
