// Package netmf is the networked mean-field engine: the large-N
// kinetic limit of internal/meanfield generalized from one shared
// bottleneck to an arbitrary topology of fluid link queues — the join
// of the repository's two scaling axes (millions of sources, and
// multi-bottleneck scenarios).
//
// The finite-N system is the one internal/netsim simulates packet by
// packet: N_k sources of class k follow a fixed multi-hop route
// through a graph of queues, adjusting their rates from the summed,
// delayed congestion of the route. As N_k → ∞ with per-node capacity
// scaled along, the per-class rate densities f_k(λ, t) close exactly
// (every source of a class sees the same delayed path backlog):
//
//	∂f_k/∂t + ∂(g_k(B_k(t−τ_k), λ) f_k)/∂λ = (σ_k²/2) ∂²f_k/∂λ²
//
// where B_k(t) = Σ_{j ∈ route_k} Q_j(t) is the path backlog, coupled
// to one fluid queue ODE per node:
//
//	dQ_j/dt = Σ_{k : j ∈ route_k} w_k N_k ⟨λ⟩_k − μ_j     (Q_j ≥ 0).
//
// Sources are rate-limited (a class offers its source rate to every
// hop of its route; queues grow wherever capacity falls short), the
// standard kinetic-limit closure for feedback-controlled flows — the
// netsim cross-check test quantifies how close the packet system runs
// to it at small N.
//
// Each class's delayed congestion signal is accumulated along its
// route from the interpolated per-link queue histories at t−τ_k, with
// per-class RTTs τ_k — the density analogue of netsim's observePath.
// Stepping costs O(links + classes × bins) independent of every N_k,
// so parking-lot fairness and bottleneck-migration studies run at
// N = 10⁶ per class in the time netsim spends on tens of flows
// (experiments E30, E31).
//
// The per-class transport/diffusion kernel (meanfield.RateDensity)
// and the interpolated queue history (meanfield.History) are shared
// with the single-bottleneck engine; the topology vocabulary
// (netsim.Topology) is shared with the packet simulator, so a
// one-node netmf scenario reduces bit-for-bit to meanfield.Density
// and the same graph can be handed to either engine.
package netmf

import (
	"fmt"
	"math"

	"fpcc/internal/churn"
	"fpcc/internal/control"
	"fpcc/internal/netsim"
	"fpcc/internal/obs"
)

// Class describes one homogeneous sub-population of sources following
// a common route.
type Class struct {
	// Name labels the class in reports (defaults to "class<k>").
	Name string
	// Law is the class's rate-control law g(B, λ), driven by the
	// delayed path backlog B (the sum of the route's queue lengths),
	// so its threshold q̂ is a total-path-queue target — exactly the
	// feedback a netsim flow's controller sees.
	Law control.Law
	// N is the population size. The engine's per-step cost is
	// independent of N.
	N int
	// Weight scales this class's per-source contribution to every
	// arrival rate on its route (0 means 1).
	Weight float64
	// Delay is the class's feedback delay τ (its RTT): controllers
	// observe the path backlog as it stood at t−τ.
	Delay float64
	// Route is the ordered list of node indices the class's sources
	// traverse. Every consecutive pair must be connected by a link of
	// the topology.
	Route []int
	// Lambda0 and InitStd define the initial rate distribution: a
	// Gaussian blob clipped to [0, LMax] (InitStd = 0 is a point
	// mass).
	Lambda0 float64
	InitStd float64
	// SigmaL is the intrinsic rate variability σ_k, entering as the
	// (σ_k²/2)·f_λλ diffusion.
	SigmaL float64
	// Churn, when non-nil, opens the class: sessions are born at
	// Churn.Arrival flows/s and die after Churn.Lifetime, evolved as
	// birth–death source terms on the class's phase kernels (see
	// meanfield.ClassKernel). N is then the population at t = 0 and
	// the live population is N·(1 + born − died).
	Churn *churn.Flow
	// Pulse, when non-nil, scales the class's offered rate on every
	// hop by the deterministic duty-cycle envelope — the synchronized
	// on/off blaster of the adversarial experiments.
	Pulse *churn.Pulse
}

// Config describes a networked mean-field problem: the node/link
// graph, the class mix routed over it, the rate domain, and the time
// step.
//
// Only Node.Mu is meaningful to the fluid engine: queues are
// unbounded (Node.Buffer is ignored) and feedback is transparent
// (Node.Gateway is ignored) — the kinetic limit of drop-tail losses
// and gateway marking is future work. This keeps the graph type
// shared with netsim, so canned topologies can be handed to either
// engine.
type Config struct {
	Topology netsim.Topology
	Classes  []Class
	// LMax bounds the per-source rate domain λ ∈ [0, LMax].
	LMax float64
	// Bins is the rate-grid resolution per class.
	Bins int
	// Dt is the explicit Euler step; the transport sweeps additionally
	// enforce the CFL bound max|g|·Dt/Δλ ≤ 1 at every step.
	Dt float64
	// Q0, when non-nil, holds one initial queue length per node (nil
	// means every queue starts empty).
	Q0 []float64
	// SecondOrder selects MUSCL/minmod (TVD) transport sweeps instead
	// of first-order upwind (same trade as meanfield.Config).
	SecondOrder bool

	// Workers bounds the per-step parallelism over classes
	// (0 = GOMAXPROCS). It affects wall-clock time only, never
	// results: each class's kernel is independent within a step and
	// the arrival-rate coupling stays in class order.
	Workers int

	// Obs, when non-nil, receives per-step probes (per-node queues,
	// per-class offered rates and means) and, when it enables
	// invariants, runs the per-step checks: per-class mass budget
	// ∫f_k = 1 + clipped_k, density non-negativity, CFL margin,
	// per-node queue non-negativity, and queue-history monotonicity.
	// A failing check aborts Step with a step-stamped error. The nil
	// default costs one branch per step and never changes any
	// observable.
	Obs *obs.Recorder
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return fmt.Errorf("netmf: topology: %w", err)
	}
	switch {
	case len(c.Classes) == 0:
		return fmt.Errorf("netmf: no classes")
	case !(c.LMax > 0) || math.IsInf(c.LMax, 1):
		return fmt.Errorf("netmf: LMax must be positive, got %v", c.LMax)
	case c.Bins < 8:
		return fmt.Errorf("netmf: need at least 8 rate bins, got %d", c.Bins)
	case !(c.Dt > 0):
		return fmt.Errorf("netmf: non-positive step %v", c.Dt)
	}
	if c.Q0 != nil && len(c.Q0) != len(c.Topology.Nodes) {
		return fmt.Errorf("netmf: Q0 has %d entries for %d nodes", len(c.Q0), len(c.Topology.Nodes))
	}
	for j, q := range c.Q0 {
		if !(q >= 0) {
			return fmt.Errorf("netmf: node %d has invalid initial queue %v", j, q)
		}
	}
	// The !(x >= 0) forms reject NaN along with negatives, keeping a
	// NaN parameter from silently poisoning the queue ODEs.
	for k, cl := range c.Classes {
		switch {
		case cl.Law == nil:
			return fmt.Errorf("netmf: class %d has nil law", k)
		case cl.N < 1:
			return fmt.Errorf("netmf: class %d has population %d, want >= 1", k, cl.N)
		case !(cl.Weight >= 0):
			return fmt.Errorf("netmf: class %d has invalid weight %v", k, cl.Weight)
		case !(cl.Delay >= 0):
			return fmt.Errorf("netmf: class %d has invalid delay %v", k, cl.Delay)
		case !(cl.Lambda0 >= 0) || cl.Lambda0 > c.LMax:
			return fmt.Errorf("netmf: class %d initial rate %v outside [0, %v]", k, cl.Lambda0, c.LMax)
		case !(cl.InitStd >= 0):
			return fmt.Errorf("netmf: class %d has invalid initial spread %v", k, cl.InitStd)
		case !(cl.SigmaL >= 0):
			return fmt.Errorf("netmf: class %d has invalid sigma %v", k, cl.SigmaL)
		}
		if err := c.Topology.ValidateRoute(cl.Route); err != nil {
			return fmt.Errorf("netmf: class %d: %w", k, err)
		}
		if cl.Churn != nil {
			if err := cl.Churn.Validate(c.LMax); err != nil {
				return fmt.Errorf("netmf: class %d: %w", k, err)
			}
		}
	}
	return nil
}

// TotalSources returns Σ_k N_k.
func (c *Config) TotalSources() int {
	n := 0
	for _, cl := range c.Classes {
		n += cl.N
	}
	return n
}

// ClassName returns the display name of class k.
func (c *Config) ClassName(k int) string {
	if c.Classes[k].Name != "" {
		return c.Classes[k].Name
	}
	return fmt.Sprintf("class%d", k)
}

// weight resolves the per-source weight of class k (0 means 1).
func (c *Config) weight(k int) float64 {
	if w := c.Classes[k].Weight; w > 0 {
		return w
	}
	return 1
}

// maxDelay returns the longest class feedback delay.
func (c *Config) maxDelay() float64 {
	var d float64
	for _, cl := range c.Classes {
		if cl.Delay > d {
			d = cl.Delay
		}
	}
	return d
}
