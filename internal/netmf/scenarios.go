package netmf

import (
	"fmt"

	"fpcc/internal/control"
	"fpcc/internal/netsim"
)

// Canned large-N scenarios mirroring internal/netsim's topology
// builders: the same graphs the packet simulator evaluates at tens of
// flows, posed as mean-field class mixes so they run at millions of
// sources per class. Numeric fields left zero take the documented
// defaults, so a builder call reads like the scenario description.

// ParkingLotConfig parameterizes ParkingLot. All rate-like quantities
// are in per-source units scaled by Share.
type ParkingLotConfig struct {
	// Hops is the number of bottleneck hops (>= 1).
	Hops int
	// N is the population of EACH class: one long class crossing all
	// hops plus one cross class per hop, so a hop serves 2N sources.
	N int
	// Share is the per-source service share at a hop (0 = 1 pk/s):
	// every hop gets μ = 2·N·Share.
	Share float64
	// QHat0 is the per-source path-queue target (0 = 2): every class's
	// AIMD law uses q̂ = QHat0·2N, the E26 convention of one threshold
	// shared by long and cross flows alike.
	QHat0 float64
	// C0, C1 are the AIMD gains in Share units (0 = 0.5 each); all
	// classes share one law, so any unfairness is topology-induced.
	C0, C1 float64
	// Delay is the cross-class RTT (s); the long class's RTT is
	// Delay·RTTStretch·Hops (its path visits every hop).
	Delay float64
	// RTTStretch multiplies the long class's hop-proportional RTT
	// (0 = 1: RTT grows exactly with hop count).
	RTTStretch float64
	// Sigma is the per-source rate noise in Share units (0 = 0.3).
	Sigma float64
	// LinkDelay is the per-link propagation delay recorded on the
	// topology (documentation for the packet twin; the fluid engine
	// reads RTTs from Delay).
	LinkDelay float64
	// LMax (in Share units, 0 = 6), Bins (0 = 192) and Dt (0 = 0.005)
	// shape the rate grid and step.
	LMax float64
	Bins int
	Dt   float64
}

// ParkingLot builds the classic parking-lot fairness benchmark in the
// large-N limit: a chain of Hops identical bottleneck nodes, one long
// class crossing the whole chain, one cross class per hop. Max-min
// fairness gives every source an equal share; AIMD control instead
// beats the long class down — it observes the summed backlog of every
// hop (so it backs off for congestion anywhere on its path) and pays
// a longer RTT. Experiment E30 sweeps Hops and RTTStretch at
// N = 10⁶.
func ParkingLot(pc ParkingLotConfig) (Config, error) {
	if pc.Hops < 1 {
		return Config{}, fmt.Errorf("netmf: parking lot needs >= 1 hop, got %d", pc.Hops)
	}
	if pc.N < 1 {
		return Config{}, fmt.Errorf("netmf: parking lot needs >= 1 source per class, got %d", pc.N)
	}
	share := defaultTo(pc.Share, 1)
	qhat := defaultTo(pc.QHat0, 2) * 2 * float64(pc.N)
	c0 := defaultTo(pc.C0, 0.5) * share
	c1 := defaultTo(pc.C1, 0.5)
	sigma := defaultTo(pc.Sigma, 0.3) * share
	stretch := defaultTo(pc.RTTStretch, 1)
	law := control.AIMD{C0: c0, C1: c1, QHat: qhat}

	cfg := Config{
		LMax: defaultTo(pc.LMax, 6) * share,
		Bins: pc.Bins,
		Dt:   pc.Dt,
	}
	if cfg.Bins == 0 {
		cfg.Bins = 192
	}
	if cfg.Dt == 0 {
		cfg.Dt = 0.005
	}
	for h := 0; h < pc.Hops; h++ {
		cfg.Topology.Nodes = append(cfg.Topology.Nodes, netsim.Node{
			Name: fmt.Sprintf("hop%d", h), Mu: 2 * float64(pc.N) * share,
		})
		if h > 0 {
			cfg.Topology.Links = append(cfg.Topology.Links, netsim.Link{From: h - 1, To: h, Delay: pc.LinkDelay})
		}
	}
	longRoute := make([]int, pc.Hops)
	for h := range longRoute {
		longRoute[h] = h
	}
	cfg.Classes = append(cfg.Classes, Class{
		Name: "long", Law: law, N: pc.N, Route: longRoute,
		Delay:   pc.Delay * stretch * float64(pc.Hops),
		Lambda0: share, InitStd: 0.3 * share, SigmaL: sigma,
	})
	for h := 0; h < pc.Hops; h++ {
		cfg.Classes = append(cfg.Classes, Class{
			Name: fmt.Sprintf("cross%d", h), Law: law, N: pc.N, Route: []int{h},
			Delay:   pc.Delay,
			Lambda0: share, InitStd: 0.3 * share, SigmaL: sigma,
		})
	}
	return cfg, nil
}

// CrossChainConfig parameterizes CrossChain. Rate-like quantities are
// in per-source units scaled by Share, with the TOTAL population N
// split between the classes by CrossFrac.
type CrossChainConfig struct {
	// N is the total population across both classes.
	N int
	// CrossFrac is the fraction of N in the uncontrolled constant-rate
	// cross class injected at hop 2 (the class-mix ramp of E31). A
	// zero fraction still instantiates the cross class with one idle
	// source, so every cell of a sweep has the same class list.
	CrossFrac float64
	// Share is the per-source scale (0 = 1 pk/s).
	Share float64
	// Mu1Frac, Mu2Frac set each hop's service rate as a fraction of
	// N·Share (0 defaults: 0.4 and 0.6 — hop 1 is the designed
	// bottleneck until the cross class eats hop 2's residual).
	Mu1Frac, Mu2Frac float64
	// QHat0 is the adaptive class's per-source path-queue target
	// (0 = 2): q̂ = QHat0·N.
	QHat0 float64
	// C0, C1 are the adaptive AIMD gains in Share units (0 = 0.5).
	C0, C1 float64
	// Delay is the adaptive class's RTT (s).
	Delay float64
	// CrossRate is the cross class's fixed per-source rate in Share
	// units (0 = 1).
	CrossRate float64
	// Sigma is the adaptive class's rate noise in Share units
	// (0 = 0.3).
	Sigma float64
	// LMax (0 = 6, Share units), Bins (0 = 192), Dt (0 = 0.005).
	LMax float64
	Bins int
	Dt   float64
}

// CrossChain builds the bottleneck-migration scenario in the large-N
// limit: an adaptive class crossing two hops in series plus an
// uncontrolled constant-rate class injected at the second hop. With a
// small cross class the slower hop 1 carries the standing queue; as
// CrossFrac grows, hop 2's residual capacity μ2 − Λ_cross shrinks
// below μ1 and the standing fluid queue migrates downstream.
// Experiment E31 ramps CrossFrac at N = 10⁶.
func CrossChain(cc CrossChainConfig) (Config, error) {
	if cc.N < 2 {
		return Config{}, fmt.Errorf("netmf: cross chain needs >= 2 sources, got %d", cc.N)
	}
	if !(cc.CrossFrac >= 0) || cc.CrossFrac >= 1 {
		return Config{}, fmt.Errorf("netmf: cross fraction %v outside [0, 1)", cc.CrossFrac)
	}
	share := defaultTo(cc.Share, 1)
	crossRate := defaultTo(cc.CrossRate, 1) * share
	nCross := int(cc.CrossFrac * float64(cc.N))
	if nCross < 1 {
		// Keep the class list sweep-stable across a CrossFrac ramp: a
		// zero fraction still gets the cross class, as one source in
		// the bottom rate cell (offered rate ≤ Δλ/2 — idle up to grid
		// resolution, not the full CrossRate).
		nCross = 1
		crossRate = 0
	}
	nMain := cc.N - nCross
	qhat := defaultTo(cc.QHat0, 2) * float64(cc.N)
	law := control.AIMD{
		C0:   defaultTo(cc.C0, 0.5) * share,
		C1:   defaultTo(cc.C1, 0.5),
		QHat: qhat,
	}

	cfg := Config{
		Topology: netsim.Topology{
			Nodes: []netsim.Node{
				{Name: "hop1", Mu: defaultTo(cc.Mu1Frac, 0.4) * float64(cc.N) * share},
				{Name: "hop2", Mu: defaultTo(cc.Mu2Frac, 0.6) * float64(cc.N) * share},
			},
			Links: []netsim.Link{{From: 0, To: 1}},
		},
		LMax: defaultTo(cc.LMax, 6) * share,
		Bins: cc.Bins,
		Dt:   cc.Dt,
	}
	if cfg.Bins == 0 {
		cfg.Bins = 192
	}
	if cfg.Dt == 0 {
		cfg.Dt = 0.005
	}
	cfg.Classes = []Class{
		{
			Name: "main", Law: law, N: nMain, Route: []int{0, 1},
			Delay:   cc.Delay,
			Lambda0: share, InitStd: 0.3 * share,
			SigmaL: defaultTo(cc.Sigma, 0.3) * share,
		},
		{
			// Uncontrolled cross traffic: a point mass at CrossRate
			// under a zero-drift law never moves.
			Name: "cross", Law: netsim.ConstantRate(), N: nCross, Route: []int{1},
			Lambda0: crossRate,
		},
	}
	return cfg, nil
}

// defaultTo returns v, or def when v is zero.
func defaultTo(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
