package netmf

import (
	"fmt"
	"math"
)

// SteadyStats advances e to the horizon and returns the per-step
// averages of every node's queue and every class's mean per-source
// rate over the measurement window [warm, horizon] — the same window
// convention as meanfield.SteadyStats: a step landing exactly on the
// warmup boundary is part of the window, and every sampled step
// weighs equally (exact for the engine's fixed-Dt lattice). onStep,
// when non-nil, runs after every step (during warmup too), for
// callers sampling traces or marginals along the way.
func SteadyStats(e *Engine, warm, horizon float64, onStep func()) (meanQ, meanRates []float64, err error) {
	if !(horizon > warm) {
		return nil, nil, fmt.Errorf("netmf: horizon %v must exceed warmup %v", horizon, warm)
	}
	meanQ = make([]float64, e.NumNodes())
	meanRates = make([]float64, e.NumClasses())
	var cnt int
	for e.Time() < horizon {
		if err := e.Step(); err != nil {
			return nil, nil, err
		}
		if onStep != nil {
			onStep()
		}
		if e.Time() >= warm {
			for j := range meanQ {
				meanQ[j] += e.Queue(j)
			}
			for k := range meanRates {
				meanRates[k] += e.ClassMeanRate(k)
			}
			cnt++
		}
	}
	if cnt == 0 {
		for j := range meanQ {
			meanQ[j] = math.NaN()
		}
		return meanQ, meanRates, fmt.Errorf("netmf: no steps fell in the window [%v, %v] with Dt so large", warm, horizon)
	}
	for j := range meanQ {
		meanQ[j] /= float64(cnt)
	}
	for k := range meanRates {
		meanRates[k] /= float64(cnt)
	}
	return meanQ, meanRates, nil
}
