package netmf

import (
	"math"
	"testing"

	"fpcc/internal/control"
	"fpcc/internal/netsim"
)

// oneNodeConfig is a two-class scenario on a single-node topology —
// the degenerate case that must reduce to meanfield.Density.
func oneNodeConfig(n int) Config {
	qhat := 2 * float64(n)
	return Config{
		Topology: netsim.Topology{
			Nodes: []netsim.Node{{Name: "gw", Mu: float64(n)}},
		},
		Classes: []Class{
			{
				Name: "fast", Law: control.AIMD{C0: 0.5, C1: 0.5, QHat: qhat},
				N: n / 2, Delay: 0.2, Route: []int{0},
				Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
			},
			{
				Name: "slow", Law: control.AIMD{C0: 0.25, C1: 0.5, QHat: qhat},
				N: n - n/2, Delay: 0.4, Route: []int{0},
				Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
			},
		},
		LMax: 4, Bins: 96, Dt: 0.01,
		Q0: []float64{qhat},
	}
}

func TestConfigValidate(t *testing.T) {
	good := oneNodeConfig(1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Topology.Nodes = nil }},
		{"bad service rate", func(c *Config) { c.Topology.Nodes[0].Mu = 0 }},
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"nil law", func(c *Config) { c.Classes[0].Law = nil }},
		{"zero population", func(c *Config) { c.Classes[0].N = 0 }},
		{"negative delay", func(c *Config) { c.Classes[0].Delay = -1 }},
		{"NaN weight", func(c *Config) { c.Classes[0].Weight = math.NaN() }},
		{"empty route", func(c *Config) { c.Classes[0].Route = nil }},
		{"route out of range", func(c *Config) { c.Classes[0].Route = []int{3} }},
		{"unlinked hop pair", func(c *Config) {
			c.Topology.Nodes = append(c.Topology.Nodes, netsim.Node{Mu: 1})
			c.Classes[0].Route = []int{0, 1} // no link 0 -> 1
		}},
		{"initial rate beyond LMax", func(c *Config) { c.Classes[0].Lambda0 = 99 }},
		{"too few bins", func(c *Config) { c.Bins = 4 }},
		{"non-positive step", func(c *Config) { c.Dt = 0 }},
		{"Q0 length mismatch", func(c *Config) { c.Q0 = []float64{1, 2} }},
		{"negative Q0", func(c *Config) { c.Q0 = []float64{-1} }},
	}
	for _, tc := range cases {
		cfg := oneNodeConfig(1000)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if _, err2 := New(cfg); err2 == nil {
			t.Errorf("%s: New accepted what Validate rejected", tc.name)
		}
	}
}

// TestMassConservation: transport and diffusion are conservative up
// to the tracked negative-undershoot clipping, so every class's mass
// stays 1 + (its share of) ClippedMass.
func TestMassConservation(t *testing.T) {
	cfg, err := ParkingLot(ParkingLotConfig{Hops: 3, N: 100000, Delay: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.SecondOrder = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	dl := e.RateGrid().Dx
	var total float64
	for k := 0; k < e.NumClasses(); k++ {
		var mass float64
		for _, v := range e.Marginal(k) {
			mass += v
		}
		total += mass * dl
	}
	want := float64(e.NumClasses()) + e.ClippedMass()
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("total mass %v, want %v (classes + clipped)", total, want)
	}
	for j := 0; j < e.NumNodes(); j++ {
		if !(e.Queue(j) >= 0) {
			t.Errorf("node %d queue went negative: %v", j, e.Queue(j))
		}
	}
}

// TestCFLErrorLeavesStateUntouched: a Dt far beyond the CFL bound
// must fail without mutating densities or queues.
func TestCFLErrorLeavesStateUntouched(t *testing.T) {
	cfg := oneNodeConfig(1000)
	cfg.Dt = 10 // |g|·Dt/Δλ >> 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Marginal(0)
	q := e.Queue(0)
	if err := e.Step(); err == nil {
		t.Fatal("CFL violation not reported")
	}
	after := e.Marginal(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("density mutated by failing step at bin %d", i)
		}
	}
	if e.Queue(0) != q || e.Time() != 0 {
		t.Fatalf("queue/time mutated by failing step")
	}
}

// TestSteadyStatsWindow mirrors the meanfield convention on the
// networked engine: [warm, horizon] samples, per-step averages, one
// slot per node and per class.
func TestSteadyStatsWindow(t *testing.T) {
	cfg, err := CrossChain(CrossChainConfig{N: 10000, CrossFrac: 0.3, Delay: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var steps int
	meanQ, rates, err := SteadyStats(e, 5, 10, func() { steps++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(meanQ) != 2 || len(rates) != 2 {
		t.Fatalf("got %d node and %d class averages, want 2 and 2", len(meanQ), len(rates))
	}
	if steps != 2000 {
		t.Errorf("onStep ran %d times, want 2000 (horizon 10 at Dt 0.005)", steps)
	}
	for j, q := range meanQ {
		if !(q >= 0) || math.IsNaN(q) {
			t.Errorf("node %d mean queue %v", j, q)
		}
	}
	// The cross class's point mass under a zero-drift law must still
	// sit at its initial rate.
	if got := rates[1]; math.Abs(got-cfg.Classes[1].Lambda0) > e.RateGrid().Dx {
		t.Errorf("constant cross class drifted: mean rate %v, want ~%v", got, cfg.Classes[1].Lambda0)
	}
	if _, _, err := SteadyStats(e, 10, 10, nil); err == nil {
		t.Error("accepted horizon == warm")
	}
}

func TestScenarioBuildersValidate(t *testing.T) {
	if _, err := ParkingLot(ParkingLotConfig{Hops: 0, N: 10}); err == nil {
		t.Error("parking lot accepted 0 hops")
	}
	if _, err := ParkingLot(ParkingLotConfig{Hops: 2, N: 0}); err == nil {
		t.Error("parking lot accepted empty classes")
	}
	if _, err := CrossChain(CrossChainConfig{N: 1}); err == nil {
		t.Error("cross chain accepted N=1")
	}
	if _, err := CrossChain(CrossChainConfig{N: 100, CrossFrac: 1}); err == nil {
		t.Error("cross chain accepted CrossFrac=1")
	}
	for _, hops := range []int{1, 2, 5} {
		cfg, err := ParkingLot(ParkingLotConfig{Hops: hops, N: 1000, Delay: 0.05})
		if err != nil {
			t.Fatalf("hops=%d: %v", hops, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("hops=%d: built config invalid: %v", hops, err)
		}
		if len(cfg.Classes) != hops+1 || len(cfg.Topology.Nodes) != hops {
			t.Errorf("hops=%d: %d classes over %d nodes", hops, len(cfg.Classes), len(cfg.Topology.Nodes))
		}
	}
	cfg, err := CrossChain(CrossChainConfig{N: 1000, CrossFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("cross chain config invalid: %v", err)
	}
	if n := cfg.Classes[0].N + cfg.Classes[1].N; n != 1000 {
		t.Errorf("classes split to %d sources, want 1000", n)
	}
}
