package netmf

import (
	"fmt"
	"math"

	"fpcc/internal/grid"
	"fpcc/internal/meanfield"
	"fpcc/internal/obs"
	"fpcc/internal/parallel"
)

// Engine is the networked kinetic solver: one meanfield.ClassKernel
// per class (a single RateDensity for closed classes, one per
// lifetime phase for open ones), one fluid queue (with an
// interpolated history for delayed observation) per node.
//
// Scheme, per step (operator splitting, the netmf generalization of
// meanfield.Density.Step — on a one-node topology the two produce
// bit-identical trajectories):
//
//  1. every class's offered rate Λ_k = w_k N_k ⟨λ⟩_k is read from the
//     current densities, and each node's arrival rate is accumulated
//     as A_j = Σ_{k : j ∈ route_k} Λ_k (class order, so sums are
//     deterministic);
//  2. each class observes its delayed path backlog
//     B_k = Σ_{j ∈ route_k} Q_j(t−τ_k) from the per-node histories
//     and caches (CFL-checks) its drift — no density is mutated until
//     every class has passed the check;
//  3. each f_k is advected (and diffused when σ_k > 0);
//  4. every queue advances by Q_j ← max(Q_j + (A_j − μ_j)·Dt, 0) and
//     records its history.
//
// Steps cost O(links + classes × bins + Σ_k |route_k|), independent
// of every population size N_k.
type Engine struct {
	cfg   Config
	kerns []*meanfield.ClassKernel
	q     []float64
	arr   []float64 // per-node arrival rate of the current step
	hist  []meanfield.History
	t     float64

	maxDelay float64
	step     int64 // completed steps, stamping probes and violations
}

// New builds the networked engine with every class initialized to its
// (grid-discretized, renormalized) Gaussian blob and every queue to
// its Q0 entry (0 without Q0).
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		q:        make([]float64, len(cfg.Topology.Nodes)),
		arr:      make([]float64, len(cfg.Topology.Nodes)),
		hist:     make([]meanfield.History, len(cfg.Topology.Nodes)),
		maxDelay: cfg.maxDelay(),
	}
	copy(e.q, cfg.Q0)
	for k, cl := range cfg.Classes {
		kern, err := meanfield.NewClassKernel(cfg.LMax, cfg.Bins, cl.Lambda0, cl.InitStd, cfg.SecondOrder, cl.N, cl.Churn)
		if err != nil {
			return nil, fmt.Errorf("netmf: class %d: %w", k, err)
		}
		e.kerns = append(e.kerns, kern)
	}
	for j := range e.hist {
		e.hist[j].Record(0, e.q[j], 0)
	}
	return e, nil
}

// Time returns the current simulation time.
func (e *Engine) Time() float64 { return e.t }

// NumNodes returns the number of nodes in the topology.
func (e *Engine) NumNodes() int { return len(e.q) }

// Queue returns the current fluid queue length at node j.
func (e *Engine) Queue(j int) float64 { return e.q[j] }

// Queues returns a copy of every node's current queue length.
func (e *Engine) Queues() []float64 {
	return append([]float64(nil), e.q...)
}

// TotalQueue returns the summed queue length over all nodes.
func (e *Engine) TotalQueue() float64 {
	var s float64
	for _, q := range e.q {
		s += q
	}
	return s
}

// NumClasses returns the number of classes.
func (e *Engine) NumClasses() int { return len(e.kerns) }

// ClassMeanRate returns ⟨λ⟩_k, the mean per-source rate of class k.
func (e *Engine) ClassMeanRate(k int) float64 { return e.kerns[k].MeanRate() }

// ClassMoments returns the mean and variance of class k's rate
// density, normalized by its current mass.
func (e *Engine) ClassMoments(k int) (mean, variance float64) {
	return e.kerns[k].Moments()
}

// Marginal returns a copy of class k's rate density (length Bins,
// cell-centered on [0, LMax]; phase kernels summed for open classes).
func (e *Engine) Marginal(k int) []float64 { return e.kerns[k].Marginal() }

// RateGrid returns the λ-axis the densities live on.
func (e *Engine) RateGrid() grid.Uniform1D { return e.kerns[0].Grid() }

// ClippedMass returns the total probability mass added by zeroing
// negative transport undershoots, summed over classes — the same
// discretization audit as meanfield.Density.ClippedMass.
func (e *Engine) ClippedMass() float64 {
	var c float64
	for _, kern := range e.kerns {
		c += kern.ClippedMass()
	}
	return c
}

// ClassPopulation returns class k's live population N_k·LiveMass_k —
// exactly N_k for closed classes, the birth–death ledger's value for
// open ones.
func (e *Engine) ClassPopulation(k int) float64 {
	return float64(e.cfg.Classes[k].N) * e.kerns[k].LiveMass()
}

// ClassOfferedRate returns Λ_k = w_k N_k ⟨λ⟩_k · live_k · env_k(t),
// the rate class k currently offers to every hop of its route: the
// classic coupling scaled by an open class's live mass and a pulsed
// class's envelope factor (both factors exactly 1, and skipped, for
// classic classes).
func (e *Engine) ClassOfferedRate(k int) float64 {
	rate := e.cfg.weight(k) * float64(e.cfg.Classes[k].N) * e.kerns[k].MeanRate()
	if e.cfg.Classes[k].Churn != nil {
		rate *= e.kerns[k].LiveMass()
	}
	if p := e.cfg.Classes[k].Pulse; p != nil {
		rate *= p.FactorAt(e.t)
	}
	return rate
}

// NodeArrival returns node j's total arrival rate at the current
// densities, Σ over classes routing through j of Λ_k.
func (e *Engine) NodeArrival(j int) float64 {
	var a float64
	for k := range e.cfg.Classes {
		for _, h := range e.cfg.Classes[k].Route {
			if h == j {
				a += e.ClassOfferedRate(k)
			}
		}
	}
	return a
}

// PathBacklog returns B_k(t−τ_k): the delayed path backlog class k's
// controllers observe at the current time — per-link queue histories
// interpolated at t−τ_k and summed along the route (the live queues
// at zero delay).
func (e *Engine) PathBacklog(k int) float64 {
	cl := &e.cfg.Classes[k]
	var b float64
	if tau := cl.Delay; tau > 0 {
		obsT := e.t - tau
		for _, j := range cl.Route {
			b += e.hist[j].At(obsT)
		}
	} else {
		for _, j := range cl.Route {
			b += e.q[j]
		}
	}
	return b
}

// Step advances the system by one Dt. It returns an error if any
// class's drift violates the CFL bound max|g|·Dt/Δλ ≤ 1 (choose a
// smaller Dt or a coarser grid); the check runs before any state is
// mutated, so a failing Step leaves the solver exactly as it was.
func (e *Engine) Step() error {
	dt := e.cfg.Dt
	// 1. Arrival rates from the current densities, accumulated in
	// class order.
	for j := range e.arr {
		e.arr[j] = 0
	}
	for k := range e.cfg.Classes {
		lam := e.ClassOfferedRate(k)
		for _, j := range e.cfg.Classes[k].Route {
			e.arr[j] += lam
		}
	}
	// 2. Delayed path backlogs and CFL-checked drifts, before any
	// mutation.
	for k, kern := range e.kerns {
		if err := kern.SetDrift(e.cfg.Classes[k].Law, e.PathBacklog(k), dt); err != nil {
			return fmt.Errorf("netmf: class %d %v", k, err)
		}
	}
	// 3. Transport and diffusion sweeps (and the birth–death ledgers)
	// — per-class kernels touch only their own densities, so they
	// shard across the worker pool.
	parallel.Each(len(e.kerns), e.cfg.Workers, func(k int) {
		kern := e.kerns[k]
		kern.Advect(dt)
		if sigma := e.cfg.Classes[k].SigmaL; sigma > 0 {
			kern.Diffuse(sigma, dt)
		}
		kern.ClampNegative()
		kern.StepChurn(dt)
	})
	// 4. Fluid queue ODEs and their histories.
	e.t += dt
	cut := e.t - e.maxDelay - 1
	for j := range e.q {
		e.q[j] = math.Max(e.q[j]+(e.arr[j]-e.cfg.Topology.Nodes[j].Mu)*dt, 0)
		e.hist[j].Record(e.t, e.q[j], cut)
	}
	e.step++
	if rec := e.cfg.Obs; rec.Enabled() {
		if err := e.observe(rec); err != nil {
			return err
		}
	}
	return nil
}

// observe feeds the attached recorder after a completed step: probe
// samples when due (per-node queues and per-class rates), invariant
// checks when enabled.
func (e *Engine) observe(rec *obs.Recorder) error {
	if rec.ProbeDue("netmf.q", e.t) {
		// One shared rate-limit series ("netmf.q") gates the whole
		// snapshot, so every node and class samples at the same times.
		rec.Probe("netmf.q", e.t, e.TotalQueue())
		for j := range e.q {
			rec.Probe("netmf."+e.cfg.Topology.NodeName(j)+".q", e.t, e.q[j])
		}
		rec.Probe("netmf.clipped", e.t, e.ClippedMass())
		for k, kern := range e.kerns {
			name := "netmf." + e.cfg.ClassName(k)
			rec.Probe(name+".lambda", e.t, e.ClassOfferedRate(k))
			rec.Probe(name+".mean", e.t, kern.MeanRate())
			if kern.Open() {
				rec.Probe(name+".pop", e.t, e.ClassPopulation(k))
				rec.Probe(name+".born", e.t, float64(e.cfg.Classes[k].N)*kern.Born())
				rec.Probe(name+".died", e.t, float64(e.cfg.Classes[k].N)*kern.Died())
			}
		}
	}
	if !rec.Invariants() {
		return nil
	}
	for k, kern := range e.kerns {
		if err := kern.CheckInvariants(rec, e.step, e.t, "netmf."+e.cfg.ClassName(k)); err != nil {
			return err
		}
	}
	for j, q := range e.q {
		field := "netmf." + e.cfg.Topology.NodeName(j)
		if err := rec.CheckFinite(e.step, e.t, field+".q", q); err != nil {
			return err
		}
		if err := rec.CheckMonotoneTail(e.step, field+".history", e.hist[j].TailTimes()); err != nil {
			return err
		}
	}
	return nil
}

// Run advances until time tEnd (whole steps; the final partial step
// is skipped when shorter than Dt/2, the same uniform time lattice as
// meanfield.Density.Run).
func (e *Engine) Run(tEnd float64) error {
	for e.t+e.cfg.Dt/2 <= tEnd {
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}
