package netmf

import (
	"errors"
	"math"
	"testing"

	"fpcc/internal/churn"
	"fpcc/internal/control"
	"fpcc/internal/meanfield"
	"fpcc/internal/netsim"
	"fpcc/internal/obs"
)

// churnOneNode opens both classes of the canonical one-node scenario:
// "fast" with exponential lifetimes, "slow" with Pareto lifetimes and
// a pulse envelope, so one configuration exercises single-phase and
// multi-phase kernels plus the offered-rate scaling.
func churnOneNode(t *testing.T, n int) Config {
	t.Helper()
	exp, err := churn.NewExponential(8)
	if err != nil {
		t.Fatal(err)
	}
	par, err := churn.NewPareto(1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	pulse, err := churn.NewPulse(1.25, 0.5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := oneNodeConfig(n)
	cfg.Classes[0].Churn = &churn.Flow{
		Arrival: float64(n) / 16, Lifetime: exp, Lambda0: 1, InitStd: 0.3,
	}
	cfg.Classes[1].Churn = &churn.Flow{
		Arrival: float64(n) / 12, Lifetime: par, Lambda0: 1, InitStd: 0.3,
	}
	cfg.Classes[1].Pulse = pulse
	return cfg
}

// TestOneNodeChurnReducesToMeanField extends the one-node reduction
// to the open system: with churn and pulse on both classes the
// networked engine must still reproduce meanfield.Density bit for bit
// — same phase kernels, same birth–death ledgers, same envelope-scaled
// coupling.
func TestOneNodeChurnReducesToMeanField(t *testing.T) {
	const n = 100000
	net := churnOneNode(t, n)
	net.SecondOrder = true
	e, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	mf := meanfield.Config{
		Mu:   net.Topology.Nodes[0].Mu,
		LMax: net.LMax, Bins: net.Bins, Dt: net.Dt,
		Q0: net.Q0[0], SecondOrder: true,
	}
	for _, cl := range net.Classes {
		mf.Classes = append(mf.Classes, meanfield.Class{
			Name: cl.Name, Law: cl.Law, N: cl.N, Weight: cl.Weight,
			Delay: cl.Delay, Lambda0: cl.Lambda0, InitStd: cl.InitStd,
			SigmaL: cl.SigmaL, Churn: cl.Churn, Pulse: cl.Pulse,
		})
	}
	d, err := meanfield.NewDensity(mf)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2000; step++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		if e.Queue(0) != d.Queue() {
			t.Fatalf("step %d: queue diverged: netmf %v vs meanfield %v",
				step, e.Queue(0), d.Queue())
		}
		for k := 0; k < e.NumClasses(); k++ {
			if e.ClassMeanRate(k) != d.ClassMeanRate(k) {
				t.Fatalf("step %d: class %d mean rate diverged: %v vs %v",
					step, k, e.ClassMeanRate(k), d.ClassMeanRate(k))
			}
			if e.ClassPopulation(k) != d.ClassPopulation(k) {
				t.Fatalf("step %d: class %d live population diverged: %v vs %v",
					step, k, e.ClassPopulation(k), d.ClassPopulation(k))
			}
		}
	}
	for k := 0; k < e.NumClasses(); k++ {
		em, dm := e.Marginal(k), d.Marginal(k)
		for i := range em {
			if em[i] != dm[i] {
				t.Fatalf("class %d marginal bin %d: %v vs %v", k, i, em[i], dm[i])
			}
		}
	}
	if e.ClippedMass() != d.ClippedMass() {
		t.Errorf("clipped-mass audit diverged: %v vs %v", e.ClippedMass(), d.ClippedMass())
	}
}

// TestChurnVsNetsimSmallN is the open-system acceptance cross-check:
// the mean-field birth–death limit against the packet simulator's
// session churn on a shared two-hop parking lot. The long class turns
// over (exponential lifetimes, Little population = its t = 0 size);
// the cross classes are closed. Both engines must agree on every
// hop's steady mean queue and on the churning class's steady
// throughput — the packet side carries both service noise and
// finite-N population noise, so the bound is looser than the closed
// small-N check.
func TestChurnVsNetsimSmallN(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 240-flow, 200-second packet-level simulation with churn")
	}
	const (
		perClass = 80
		share    = 10.0
		qhat     = 80.0
		mu       = 2 * perClass * share // each hop serves two classes
		arrival  = 10.0
		lifeMean = 8.0 // arrival·lifeMean = perClass: steady population = N0
	)
	lt, err := churn.NewExponential(lifeMean)
	if err != nil {
		t.Fatal(err)
	}
	law := control.AIMD{C0: 5, C1: 0.5, QHat: qhat}
	topo := netsim.Topology{
		Nodes: []netsim.Node{{Name: "hop0", Mu: mu}, {Name: "hop1", Mu: mu}},
		Links: []netsim.Link{{From: 0, To: 1}},
	}

	// Packet side: the long class is an open churn population, the
	// cross classes 80 static flows each.
	ncfg := netsim.Config{Nodes: topo.Nodes, Links: topo.Links, Seed: 4}
	template := netsim.Flow{Law: law, Route: []int{0, 1}, Interval: 0.05, Lambda0: share}
	ncfg.Churn = []netsim.ChurnClass{{
		Name: "long", Template: template,
		Arrival: arrival, Lifetime: lt, N0: perClass,
	}}
	for i := 0; i < perClass; i++ {
		ncfg.Flows = append(ncfg.Flows,
			netsim.Flow{Law: law, Route: []int{0}, Interval: 0.05, Lambda0: share},
			netsim.Flow{Law: law, Route: []int{1}, Interval: 0.05, Lambda0: share})
	}
	sim, err := netsim.New(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(200, 50)
	if err != nil {
		t.Fatal(err)
	}

	// Fluid side: the same topology, the long class open with the
	// same arrival process and lifetime law.
	mcfg := Config{
		Topology: topo,
		Classes: []Class{
			{Name: "long", Law: law, N: perClass, Route: []int{0, 1},
				Lambda0: share, InitStd: 1, SigmaL: 1,
				Churn: &churn.Flow{Arrival: arrival, Lifetime: lt, Lambda0: share, InitStd: 1}},
			{Name: "cross0", Law: law, N: perClass, Route: []int{0},
				Lambda0: share, InitStd: 1, SigmaL: 1},
			{Name: "cross1", Law: law, N: perClass, Route: []int{1},
				Lambda0: share, InitStd: 1, SigmaL: 1},
		},
		LMax: 40, Bins: 160, Dt: 0.01, SecondOrder: true,
	}
	e, err := New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Time-average the churning class's offered rate alongside the
	// steady queue statistics: the threshold law limit-cycles, so a
	// single end-of-run sample sits at an arbitrary phase of the
	// oscillation.
	var rateSum float64
	var rateN int
	meanQ, _, err := SteadyStats(e, 50, 200, func() {
		if e.Time() > 50 {
			rateSum += e.ClassOfferedRate(0)
			rateN++
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	for h := 0; h < 2; h++ {
		simQ := res.NodeQueue[h].Mean()
		gap := math.Abs(meanQ[h]-simQ) / simQ
		t.Logf("hop %d: netmf %.2f vs netsim %.2f (gap %.2f%%)", h, meanQ[h], simQ, 100*gap)
		if gap > 0.08 {
			t.Errorf("hop %d steady mean queue: netmf %.2f vs netsim %.2f — gap %.1f%% exceeds 8%%",
				h, meanQ[h], simQ, 100*gap)
		}
	}
	// The churning class's steady throughput: packet deliveries per
	// second vs the time-averaged fluid offered rate.
	fluidRate := rateSum / float64(rateN)
	simRate := res.ChurnThroughput[0]
	gap := math.Abs(fluidRate-simRate) / simRate
	t.Logf("long class: netmf offered %.1f vs netsim delivered %.1f pkt/s (gap %.2f%%)",
		fluidRate, simRate, 100*gap)
	if gap > 0.10 {
		t.Errorf("churning class throughput: netmf %.1f vs netsim %.1f — gap %.1f%% exceeds 10%%",
			fluidRate, simRate, 100*gap)
	}
	// And the packet-side population honors Little's law.
	live := res.ChurnLive[0].Mean()
	if g := math.Abs(live-arrival*lifeMean) / (arrival * lifeMean); g > 0.15 {
		t.Errorf("netsim live population %.1f, Little's law says %.0f", live, arrival*lifeMean)
	}
}

// TestEngineChurnInvariantsCleanRun pins the positive case at the
// networked layer: an instrumented open-system run stays
// violation-free under the extended mass budget.
func TestEngineChurnInvariantsCleanRun(t *testing.T) {
	cfg := churnOneNode(t, 1000)
	rec := (&obs.Config{Invariants: true}).Recorder("netmf")
	cfg.Obs = rec
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatalf("instrumented churn run failed: %v", err)
	}
	if n := rec.Violations(); n != 0 {
		t.Fatalf("clean churn run recorded %d violations", n)
	}
}

// TestEngineChurnBirthLedgerFault corrupts the birth ledger of the
// open exponential class between steps and requires the next Step to
// fail with a *obs.Violation naming the class mass field and the
// exact step — the networked counterpart of the meanfield fault test.
func TestEngineChurnBirthLedgerFault(t *testing.T) {
	cfg := churnOneNode(t, 1000)
	rec := (&obs.Config{Invariants: true}).Recorder("netmf")
	cfg.Obs = rec
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	e.kerns[0].FaultInjectBorn(0, 0.25)
	err = e.Step()
	if err == nil {
		t.Fatal("corrupted birth ledger passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if want := "netmf." + cfg.ClassName(0) + ".mass"; v.Field != want {
		t.Errorf("violation field = %q, want %q", v.Field, want)
	}
	if v.Step != 2 {
		t.Errorf("violation step = %d, want 2 (the first step after corruption)", v.Step)
	}
	if rec.Violations() != 1 {
		t.Errorf("recorder counted %d violations, want 1", rec.Violations())
	}
}
