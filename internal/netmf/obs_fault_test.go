package netmf

import (
	"errors"
	"math"
	"testing"

	"fpcc/internal/obs"
)

// TestEngineInvariantNaNQueue injects a poisoned link queue (the
// downstream face of a broken coupling term; a plain negative value
// is healed by the queue ODE's max(·, 0) clamp before the checker
// sees it, and NaN survives the clamp) and requires the next Step to
// fail with a *obs.Violation naming the per-node queue field and the
// exact step. Density-mass corruption is covered at the RateDensity
// layer by the meanfield package's fault tests — the kernel is
// shared.
func TestEngineInvariantNaNQueue(t *testing.T) {
	cfg := oneNodeConfig(1000)
	rec := (&obs.Config{Invariants: true}).Recorder("netmf")
	cfg.Obs = rec
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	e.q[0] = math.NaN()
	err = e.Step()
	if err == nil {
		t.Fatal("NaN queue passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if want := "netmf." + cfg.Topology.NodeName(0) + ".q"; v.Field != want {
		t.Errorf("violation field = %q, want %q", v.Field, want)
	}
	if v.Step != 2 {
		t.Errorf("violation step = %d, want 2", v.Step)
	}
	if rec.Violations() != 1 {
		t.Errorf("recorder counted %d violations, want 1", rec.Violations())
	}
}

// TestEngineInvariantsCleanRun pins the positive case: an
// uncorrupted instrumented run stays violation-free.
func TestEngineInvariantsCleanRun(t *testing.T) {
	cfg := oneNodeConfig(1000)
	rec := (&obs.Config{Invariants: true}).Recorder("netmf")
	cfg.Obs = rec
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatalf("instrumented run failed: %v", err)
	}
	if n := rec.Violations(); n != 0 {
		t.Fatalf("clean run recorded %d violations", n)
	}
}

// TestFlightRecorderDump pins the post-mortem path at the network
// layer: the NaN-queue violation must carry the preceding probe
// samples (earlier simulation times) in Violation.Recent.
func TestFlightRecorderDump(t *testing.T) {
	cfg := oneNodeConfig(1000)
	rec := (&obs.Config{Invariants: true, FlightRecorder: 64}).Recorder("netmf")
	cfg.Obs = rec
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	e.q[0] = math.NaN()
	err = e.Step()
	if err == nil {
		t.Fatal("NaN queue passed the invariant checker")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *obs.Violation", err)
	}
	if len(v.Recent) == 0 {
		t.Fatal("violation carries no flight-recorder events (ring must fill with no sink attached too)")
	}
	sawEarlierProbe := false
	for _, ev := range v.Recent {
		if ev.T > v.T {
			t.Errorf("flight event %s at t=%g is later than the violation (t=%g)", ev.Name, ev.T, v.T)
		}
		if ev.Kind == "probe" && ev.T < v.T {
			sawEarlierProbe = true
		}
	}
	if !sawEarlierProbe {
		t.Error("flight dump has no probe sample from before the violating step")
	}
}
