package netmf

import (
	"testing"
	"time"
)

// benchLot builds the 3-hop parking lot (4 classes over 3 nodes) at n
// sources per class — the benchmark scenario for the O(links +
// classes × bins) step-cost claim.
func benchLot(tb testing.TB, n int) *Engine {
	cfg, err := ParkingLot(ParkingLotConfig{Hops: 3, N: n, Delay: 0.2})
	if err != nil {
		tb.Fatal(err)
	}
	cfg.SecondOrder = true
	e, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// The headline scaling claim: stepping a parking lot with a million
// sources per class costs O(links + classes × bins), independent of
// N.
func BenchmarkStepMillionPerClass(b *testing.B) {
	e := benchLot(b, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepByN records the step cost across six decades of
// population size on the same topology — the flat trajectory behind
// TestStepCostFlatInN.
func BenchmarkStepByN(b *testing.B) {
	for _, n := range []int{1_000, 1_000_000, 1_000_000_000} {
		b.Run(byNLabel(n), func(b *testing.B) {
			e := benchLot(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byNLabel(n int) string {
	switch {
	case n >= 1_000_000_000:
		return "N=1e9"
	case n >= 1_000_000:
		return "N=1e6"
	default:
		return "N=1e3"
	}
}

// TestStepCostFlatInN is the acceptance bound for the tentpole's
// scaling claim: the per-step cost at 10⁶ sources per class must stay
// within 2× of the cost at 10³ (the true ratio is ~1; the slack
// absorbs scheduler noise in CI).
func TestStepCostFlatInN(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const steps = 300
	perStep := func(n int) time.Duration {
		e := benchLot(t, n)
		for i := 0; i < 20; i++ { // warm up caches and histories
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(t0) / steps
	}
	// Best of 3 per size: the minimum is the cleanest estimate of the
	// intrinsic cost under CI scheduling noise.
	best := func(n int) time.Duration {
		b := perStep(n)
		for i := 0; i < 2; i++ {
			if d := perStep(n); d < b {
				b = d
			}
		}
		return b
	}
	small := best(1_000)
	large := best(1_000_000)
	t.Logf("per-step: %v at N=10³ vs %v at N=10⁶ per class (ratio %.2fx)",
		small, large, float64(large)/float64(small))
	if large > 2*small {
		t.Errorf("step cost grew with N: %v at 10³ vs %v at 10⁶ per class", small, large)
	}
}
