package netmf

import (
	"math"
	"testing"

	"fpcc/internal/control"
	"fpcc/internal/meanfield"
	"fpcc/internal/netsim"
)

// TestOneNodeReducesToMeanField is the first acceptance cross-check:
// on a single-node topology the networked engine must reproduce
// meanfield.Density bit for bit — same kernel, same coupling order,
// same history — step by step over a heterogeneous two-class run with
// delays and diffusion exercised.
func TestOneNodeReducesToMeanField(t *testing.T) {
	const n = 100000
	net := oneNodeConfig(n)
	net.SecondOrder = true
	e, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	mf := meanfield.Config{
		Mu:   net.Topology.Nodes[0].Mu,
		LMax: net.LMax, Bins: net.Bins, Dt: net.Dt,
		Q0: net.Q0[0], SecondOrder: true,
	}
	for _, cl := range net.Classes {
		mf.Classes = append(mf.Classes, meanfield.Class{
			Name: cl.Name, Law: cl.Law, N: cl.N, Weight: cl.Weight,
			Delay: cl.Delay, Lambda0: cl.Lambda0, InitStd: cl.InitStd,
			SigmaL: cl.SigmaL,
		})
	}
	d, err := meanfield.NewDensity(mf)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3000; step++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		if e.Queue(0) != d.Queue() {
			t.Fatalf("step %d: queue diverged: netmf %v vs meanfield %v",
				step, e.Queue(0), d.Queue())
		}
		for k := 0; k < e.NumClasses(); k++ {
			if e.ClassMeanRate(k) != d.ClassMeanRate(k) {
				t.Fatalf("step %d: class %d mean rate diverged: %v vs %v",
					step, k, e.ClassMeanRate(k), d.ClassMeanRate(k))
			}
		}
	}
	// The marginals themselves must agree bin for bin at the end.
	for k := 0; k < e.NumClasses(); k++ {
		em, dm := e.Marginal(k), d.Marginal(k)
		for i := range em {
			if em[i] != dm[i] {
				t.Fatalf("class %d marginal bin %d: %v vs %v", k, i, em[i], dm[i])
			}
		}
	}
	if e.ClippedMass() != d.ClippedMass() {
		t.Errorf("clipped-mass audit diverged: %v vs %v", e.ClippedMass(), d.ClippedMass())
	}
}

// TestVsNetsimSmallN is the second acceptance cross-check: the fluid
// limit against the packet-level simulator on a shared two-hop
// parking-lot topology at an N where both are feasible (80 sources
// per class, 240 Poisson flows total). The packet queues carry
// stochastic service noise the fluid queues do not, so the bound is
// the convergence-test tolerance: every hop's steady mean queue
// within 5%.
func TestVsNetsimSmallN(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 240-flow, 200-second packet-level simulation")
	}
	const (
		perClass = 80
		share    = 10.0
		qhat     = 80.0
		mu       = 2 * perClass * share // each hop serves two classes
	)
	law := control.AIMD{C0: 5, C1: 0.5, QHat: qhat}
	topo := netsim.Topology{
		Nodes: []netsim.Node{{Name: "hop0", Mu: mu}, {Name: "hop1", Mu: mu}},
		Links: []netsim.Link{{From: 0, To: 1}},
	}

	// Packet side: 80 individual flows per class, instantaneous
	// feedback (control fidelity, not delay, is under test here) on a
	// fast control clock.
	ncfg := netsim.Config{Nodes: topo.Nodes, Links: topo.Links, Seed: 4}
	addFlows := func(route []int) {
		for i := 0; i < perClass; i++ {
			ncfg.Flows = append(ncfg.Flows, netsim.Flow{
				Law: law, Route: route, Interval: 0.05, Lambda0: share,
			})
		}
	}
	addFlows([]int{0, 1})
	addFlows([]int{0})
	addFlows([]int{1})
	sim, err := netsim.New(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(200, 50)
	if err != nil {
		t.Fatal(err)
	}

	// Fluid side: the same topology, three 80-source classes.
	mcfg := Config{
		Topology: topo,
		Classes: []Class{
			{Name: "long", Law: law, N: perClass, Route: []int{0, 1},
				Lambda0: share, InitStd: 1, SigmaL: 1},
			{Name: "cross0", Law: law, N: perClass, Route: []int{0},
				Lambda0: share, InitStd: 1, SigmaL: 1},
			{Name: "cross1", Law: law, N: perClass, Route: []int{1},
				Lambda0: share, InitStd: 1, SigmaL: 1},
		},
		LMax: 40, Bins: 160, Dt: 0.01, SecondOrder: true,
	}
	e, err := New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	meanQ, _, err := SteadyStats(e, 50, 200, nil)
	if err != nil {
		t.Fatal(err)
	}

	for h := 0; h < 2; h++ {
		simQ := res.NodeQueue[h].Mean()
		gap := math.Abs(meanQ[h]-simQ) / simQ
		t.Logf("hop %d: netmf %.2f vs netsim %.2f (gap %.2f%%)", h, meanQ[h], simQ, 100*gap)
		if gap > 0.05 {
			t.Errorf("hop %d steady mean queue: netmf %.2f vs netsim %.2f — gap %.1f%% exceeds 5%%",
				h, meanQ[h], simQ, 100*gap)
		}
	}
}

// TestParkingLotFairnessOrderingMillion is the third acceptance
// cross-check: at N = 10⁶ sources per class the networked mean-field
// engine must reproduce the E26 parking-lot fairness ordering — the
// long class, observing the summed backlog of every hop and paying a
// hop-proportional RTT, ends below every one-hop cross class's
// per-source share.
func TestParkingLotFairnessOrderingMillion(t *testing.T) {
	cfg, err := ParkingLot(ParkingLotConfig{Hops: 3, N: 1_000_000, Delay: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cfg.SecondOrder = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rates, err := SteadyStats(e, 60, 120, nil)
	if err != nil {
		t.Fatal(err)
	}
	long := rates[0]
	for k := 1; k < len(rates); k++ {
		t.Logf("%s share %.4f vs long %.4f", cfg.ClassName(k), rates[k], long)
		if long >= rates[k] {
			t.Errorf("long class share %.4f not below %s's %.4f — parking-lot ordering lost in the large-N limit",
				long, cfg.ClassName(k), rates[k])
		}
	}
}
