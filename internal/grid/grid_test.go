package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func mustUniform1D(t *testing.T, min, max float64, n int) Uniform1D {
	t.Helper()
	g, err := NewUniform1D(min, max, n)
	if err != nil {
		t.Fatalf("NewUniform1D(%v, %v, %d): %v", min, max, n, err)
	}
	return g
}

func TestNewUniform1DValidation(t *testing.T) {
	cases := []struct {
		name     string
		min, max float64
		n        int
	}{
		{"too few cells", 0, 1, 1},
		{"empty interval", 1, 1, 10},
		{"inverted interval", 2, 1, 10},
		{"nan min", math.NaN(), 1, 10},
		{"inf max", 0, math.Inf(1), 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewUniform1D(tc.min, tc.max, tc.n); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
}

func TestCentersAndEdges(t *testing.T) {
	g := mustUniform1D(t, 0, 10, 5)
	if g.Dx != 2 {
		t.Fatalf("Dx = %v, want 2", g.Dx)
	}
	wantCenters := []float64{1, 3, 5, 7, 9}
	for i, want := range wantCenters {
		if got := g.Center(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("Center(%d) = %v, want %v", i, got, want)
		}
	}
	if got := g.Edge(0); got != 0 {
		t.Errorf("Edge(0) = %v, want 0", got)
	}
	if got := g.Edge(5); got != 10 {
		t.Errorf("Edge(5) = %v, want 10", got)
	}
	centers := g.Centers()
	if len(centers) != 5 {
		t.Fatalf("Centers length %d, want 5", len(centers))
	}
	for i, want := range wantCenters {
		if math.Abs(centers[i]-want) > 1e-12 {
			t.Errorf("Centers()[%d] = %v, want %v", i, centers[i], want)
		}
	}
}

func TestCellOf(t *testing.T) {
	g := mustUniform1D(t, 0, 10, 5)
	cases := []struct {
		x    float64
		want int
	}{
		{-5, 0}, {0, 0}, {1.9, 0}, {2.0, 1}, {9.99, 4}, {10, 4}, {100, 4},
	}
	for _, tc := range cases {
		if got := g.CellOf(tc.x); got != tc.want {
			t.Errorf("CellOf(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestCellOfCenterRoundTrip(t *testing.T) {
	f := func(nRaw uint8, minRaw, spanRaw int16) bool {
		n := int(nRaw%50) + 2
		min := float64(minRaw) / 10
		span := math.Abs(float64(spanRaw))/10 + 1
		g, err := NewUniform1D(min, min+span, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if g.CellOf(g.Center(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniform2DIndexing(t *testing.T) {
	x := mustUniform1D(t, 0, 4, 4)
	y := mustUniform1D(t, -2, 2, 8)
	g := NewUniform2D(x, y)
	if g.Len() != 32 {
		t.Fatalf("Len = %d, want 32", g.Len())
	}
	seen := make(map[int]bool)
	for ix := 0; ix < 4; ix++ {
		for iy := 0; iy < 8; iy++ {
			k := g.Index(ix, iy)
			if k < 0 || k >= g.Len() {
				t.Fatalf("Index(%d, %d) = %d out of range", ix, iy, k)
			}
			if seen[k] {
				t.Fatalf("Index(%d, %d) = %d collides", ix, iy, k)
			}
			seen[k] = true
			gx, gy := g.Coords(k)
			if math.Abs(gx-x.Center(ix)) > 1e-12 || math.Abs(gy-y.Center(iy)) > 1e-12 {
				t.Fatalf("Coords(%d) = (%v, %v), want (%v, %v)", k, gx, gy, x.Center(ix), y.Center(iy))
			}
		}
	}
}

func TestIntegrateConstant(t *testing.T) {
	x := mustUniform1D(t, 0, 2, 10)
	y := mustUniform1D(t, 0, 3, 15)
	g := NewUniform2D(x, y)
	f := g.NewField()
	for i := range f {
		f[i] = 2.5
	}
	// integral of 2.5 over a 2x3 rectangle = 15
	if got := g.Integrate(f); math.Abs(got-15) > 1e-10 {
		t.Fatalf("Integrate = %v, want 15", got)
	}
}

func TestIntegratePanicsOnWrongLength(t *testing.T) {
	x := mustUniform1D(t, 0, 1, 4)
	g := NewUniform2D(x, x)
	defer func() {
		if recover() == nil {
			t.Fatal("Integrate did not panic on mismatched field")
		}
	}()
	g.Integrate(make([]float64, 3))
}

func TestCFL(t *testing.T) {
	x := mustUniform1D(t, 0, 1, 10) // dx = 0.1
	y := mustUniform1D(t, 0, 2, 10) // dy = 0.2
	g := NewUniform2D(x, y)
	// dt*(|1|/0.1 + |2|/0.2) = dt*20
	if got := g.CFL(0.05, 1, 2); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("CFL = %v, want 1.0", got)
	}
	if got := g.CFL(0.05, -1, -2); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("CFL with negative speeds = %v, want 1.0", got)
	}
}

func TestMaxStableDt(t *testing.T) {
	x := mustUniform1D(t, 0, 1, 10)
	g := NewUniform2D(x, x)
	dt := g.MaxStableDt(0.9, 3, 0)
	if got := g.CFL(dt, 3, 0); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("CFL at MaxStableDt = %v, want 0.9", got)
	}
	if dt := g.MaxStableDt(1, 0, 0); !math.IsInf(dt, 1) {
		t.Fatalf("MaxStableDt with zero speeds = %v, want +Inf", dt)
	}
}

func TestMaxStableDtPanics(t *testing.T) {
	x := mustUniform1D(t, 0, 1, 10)
	g := NewUniform2D(x, x)
	defer func() {
		if recover() == nil {
			t.Fatal("MaxStableDt did not panic on non-positive target")
		}
	}()
	g.MaxStableDt(0, 1, 1)
}

// Property: CFL is linear in dt and respects MaxStableDt for arbitrary
// speeds.
func TestCFLProperty(t *testing.T) {
	f := func(sxRaw, syRaw int16) bool {
		sx := float64(sxRaw) / 100
		sy := float64(syRaw) / 100
		if sx == 0 && sy == 0 {
			return true
		}
		x, err := NewUniform1D(0, 1, 20)
		if err != nil {
			return false
		}
		g := NewUniform2D(x, x)
		dt := g.MaxStableDt(1.0, sx, sy)
		return math.Abs(g.CFL(dt, sx, sy)-1.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
