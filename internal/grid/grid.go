// Package grid provides the uniform one- and two-dimensional meshes
// used by the finite-difference Fokker-Planck solver, together with
// CFL (Courant-Friedrichs-Lewy) bookkeeping for explicit advection
// steps.
//
// A Uniform1D covers [Min, Max] with N cell centers; a Uniform2D is
// the tensor product of two Uniform1D axes with values stored
// row-major (the first axis is the slow index). Cell-centered storage
// is the natural choice for the conservative upwind fluxes used in
// internal/fokkerplanck: fluxes live on cell edges, densities on cell
// centers, and total mass is Sum(f)·dx·dy.
package grid

import (
	"fmt"
	"math"
)

// Uniform1D is a uniform cell-centered mesh over [Min, Max] with N
// cells. Cell i has center Min + (i+1/2)·Dx and width Dx.
type Uniform1D struct {
	Min, Max float64
	N        int
	Dx       float64
}

// NewUniform1D builds a 1-D mesh. It returns an error if n < 2, if the
// bounds are not finite, or if max <= min.
func NewUniform1D(min, max float64, n int) (Uniform1D, error) {
	switch {
	case n < 2:
		return Uniform1D{}, fmt.Errorf("grid: need at least 2 cells, got %d", n)
	case math.IsNaN(min) || math.IsInf(min, 0) || math.IsNaN(max) || math.IsInf(max, 0):
		return Uniform1D{}, fmt.Errorf("grid: non-finite bounds [%v, %v]", min, max)
	case max <= min:
		return Uniform1D{}, fmt.Errorf("grid: empty interval [%v, %v]", min, max)
	}
	return Uniform1D{Min: min, Max: max, N: n, Dx: (max - min) / float64(n)}, nil
}

// Center returns the coordinate of the center of cell i.
func (g Uniform1D) Center(i int) float64 {
	return g.Min + (float64(i)+0.5)*g.Dx
}

// Edge returns the coordinate of edge i (edge i is the left edge of
// cell i; edge N is the right boundary).
func (g Uniform1D) Edge(i int) float64 {
	return g.Min + float64(i)*g.Dx
}

// Centers returns a freshly allocated slice of all cell centers.
func (g Uniform1D) Centers() []float64 {
	c := make([]float64, g.N)
	for i := range c {
		c[i] = g.Center(i)
	}
	return c
}

// CellOf returns the index of the cell containing x, clamped to
// [0, N-1]. Points outside the mesh map to the nearest boundary cell.
func (g Uniform1D) CellOf(x float64) int {
	i := int(math.Floor((x - g.Min) / g.Dx))
	if i < 0 {
		return 0
	}
	if i >= g.N {
		return g.N - 1
	}
	return i
}

// Uniform2D is the tensor product of an X axis and a Y axis. Values
// associated with the mesh are stored row-major in a flat slice of
// length X.N*Y.N: index = ix*Y.N + iy.
type Uniform2D struct {
	X, Y Uniform1D
}

// NewUniform2D builds a 2-D mesh from two validated axes.
func NewUniform2D(x, y Uniform1D) Uniform2D { return Uniform2D{X: x, Y: y} }

// Len returns the number of cells, i.e. the length of a flat field.
func (g Uniform2D) Len() int { return g.X.N * g.Y.N }

// Index returns the flat index of cell (ix, iy).
func (g Uniform2D) Index(ix, iy int) int { return ix*g.Y.N + iy }

// Coords returns the cell-center coordinates of flat index k.
func (g Uniform2D) Coords(k int) (x, y float64) {
	ix, iy := k/g.Y.N, k%g.Y.N
	return g.X.Center(ix), g.Y.Center(iy)
}

// CellArea returns the area of one cell, Dx*Dy.
func (g Uniform2D) CellArea() float64 { return g.X.Dx * g.Y.Dx }

// NewField returns a zeroed flat field sized for the mesh.
func (g Uniform2D) NewField() []float64 { return make([]float64, g.Len()) }

// Integrate returns the integral of field f over the mesh, i.e.
// Sum(f)·Dx·Dy. It panics if len(f) does not match the mesh.
func (g Uniform2D) Integrate(f []float64) float64 {
	if len(f) != g.Len() {
		panic(fmt.Sprintf("grid: field length %d does not match mesh %dx%d", len(f), g.X.N, g.Y.N))
	}
	var sum float64
	for _, v := range f {
		sum += v
	}
	return sum * g.CellArea()
}

// CFL computes the Courant number for an explicit advection step of
// size dt with maximum speeds speedX and speedY along the two axes.
// A scheme using simple upwind differencing is stable when the
// returned value is <= 1.
func (g Uniform2D) CFL(dt, speedX, speedY float64) float64 {
	return dt * (math.Abs(speedX)/g.X.Dx + math.Abs(speedY)/g.Y.Dx)
}

// MaxStableDt returns the largest dt with CFL number <= target for
// the given maximum speeds. It panics if target <= 0. A zero speed on
// both axes returns +Inf (no advection constraint).
func (g Uniform2D) MaxStableDt(target, speedX, speedY float64) float64 {
	if target <= 0 {
		panic(fmt.Sprintf("grid: non-positive CFL target %v", target))
	}
	denom := math.Abs(speedX)/g.X.Dx + math.Abs(speedY)/g.Y.Dx
	if denom == 0 {
		return math.Inf(1)
	}
	return target / denom
}
