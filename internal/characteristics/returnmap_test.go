package characteristics

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/control"
)

func TestReturnMapValidation(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	if _, err := ReturnMap(law, 10, 0); err == nil {
		t.Error("accepted zero amplitude")
	}
	if _, err := ReturnMap(law, 10, -1); err == nil {
		t.Error("accepted negative amplitude")
	}
	if _, err := ReturnMap(law, 0, 1); err == nil {
		t.Error("accepted zero service rate")
	}
}

// TestReturnMapContracts: Theorem 1 — one revolution strictly shrinks
// the amplitude, across scales and parameters.
func TestReturnMapContracts(t *testing.T) {
	cases := []struct {
		c0, c1, qHat, mu float64
	}{
		{2, 0.8, 20, 10},
		{0.5, 0.2, 5, 3},
		{8, 3, 40, 25},
		{1, 1, 1, 1},
	}
	for _, tc := range cases {
		law := control.AIMD{C0: tc.c0, C1: tc.c1, QHat: tc.qHat}
		worst, err := VerifyContraction(law, tc.mu, tc.mu/100, tc.mu*2, 12)
		if err != nil {
			t.Errorf("%+v: %v", tc, err)
			continue
		}
		if worst >= 1 {
			t.Errorf("%+v: worst ratio %v >= 1", tc, worst)
		}
	}
}

// TestQuadraticContractionLaw verifies the small-amplitude expansion
// a' = a − (2/3)a²/μ: the coefficient is 2/3 independent of C0 and C1.
func TestQuadraticContractionLaw(t *testing.T) {
	for _, tc := range []struct {
		c0, c1, mu float64
	}{
		{2, 0.8, 10},
		{1, 0.3, 10},
		{5, 2, 4},
		{0.7, 1.5, 25},
	} {
		law := control.AIMD{C0: tc.c0, C1: tc.c1, QHat: 20}
		c, err := QuadraticContractionCoefficient(law, tc.mu)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if math.Abs(c-2.0/3) > 0.02 {
			t.Errorf("C0=%v C1=%v μ=%v: coefficient %v, want 2/3", tc.c0, tc.c1, tc.mu, c)
		}
	}
}

// TestReturnMapResidualIsCubic: the error of the quadratic model
// shrinks like a³ — halving a cuts the residual by ~8.
func TestReturnMapResidualIsCubic(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	const mu = 10.0
	resid := func(a float64) float64 {
		ap, err := ReturnMap(law, mu, a)
		if err != nil {
			t.Fatal(err)
		}
		model := a - (2.0/3)*a*a/mu
		return math.Abs(ap - model)
	}
	r1 := resid(0.4)
	r2 := resid(0.2)
	if r2 == 0 {
		t.Skip("residual below resolution")
	}
	ratio := r1 / r2
	if ratio < 5 || ratio > 12 {
		t.Errorf("residual ratio %v for halved amplitude, want ~8 (cubic)", ratio)
	}
}

// TestReturnMapMatchesIteratedCrossings: iterating the return map must
// reproduce the amplitude sequence of a full traced spiral.
func TestReturnMapMatchesIteratedCrossings(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	const mu = 10.0
	path, err := TraceExact(law, mu, Point{Q: law.QHat, Lambda: mu + 5}, 2000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ups := path.UpCrossings()
	if len(ups) < 5 {
		t.Fatalf("only %d crossings", len(ups))
	}
	a := 5.0
	for k := 0; k < 5; k++ {
		ap, err := ReturnMap(law, mu, a)
		if err != nil {
			t.Fatal(err)
		}
		traced := ups[k].Lambda - mu
		if math.Abs(ap-traced) > 1e-6*(1+traced) {
			t.Fatalf("revolution %d: map %v vs traced %v", k, ap, traced)
		}
		a = ap
	}
}

func TestContractionTable(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	rows, err := ContractionTable(law, 10, []float64{0.5, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r[1] >= r[0] {
			t.Errorf("a=%v: no contraction (a'=%v)", r[0], r[1])
		}
		if math.Abs(r[2]-r[1]/r[0]) > 1e-12 {
			t.Errorf("ratio column inconsistent: %v", r)
		}
	}
	// Larger amplitudes contract faster (ratio decreases with a).
	for i := 1; i < len(rows); i++ {
		if rows[i][2] >= rows[i-1][2] {
			t.Errorf("contraction ratio should decrease with amplitude: %v then %v", rows[i-1], rows[i])
		}
	}
}

// Property: contraction holds for random parameters and amplitudes.
func TestReturnMapContractionProperty(t *testing.T) {
	f := func(c0Raw, c1Raw, aRaw uint16) bool {
		c0 := float64(c0Raw%400)/100 + 0.05
		c1 := float64(c1Raw%300)/100 + 0.05
		a := float64(aRaw%2000)/100 + 0.01
		law := control.AIMD{C0: c0, C1: c1, QHat: 15}
		ap, err := ReturnMap(law, 10, a)
		if err != nil {
			return false
		}
		return ap > 0 && ap < a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReturnMap(b *testing.B) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReturnMap(law, 10, 3); err != nil {
			b.Fatal(err)
		}
	}
}
