package characteristics

import (
	"fmt"
	"math"
	"sort"

	"fpcc/internal/control"
)

// Exact tracer for the delayed AIMD system of Section 7:
//
//	dq/dt = λ − μ (reflected at 0),   dλ/dt = g_b(λ)
//
// where the active branch b (increase +C0 / decrease −C1·λ) follows
// the DELAYED congestion signal s(t) = 1{q(t−τ) > q̂}. The key
// structural fact: between control-branch switches the dynamics are
// the same closed-form arcs as the undelayed system (parabola /
// exponential), and the switch instants are exactly the q̂-crossing
// times of q shifted forward by τ. The tracer therefore advances arc
// by arc, locates each q̂ crossing analytically, schedules the branch
// switch τ later, and reproduces the delay-induced limit cycle with
// no time-stepping error — the precise version of what Section 7 does
// graphically and what internal/fluid's DDE integrator does
// numerically (the two are cross-checked in the tests).
//
// DelayedSegment is one closed-form piece of a delayed trajectory.
type DelayedSegment struct {
	T0    float64
	Dur   float64
	Q0    float64
	Lam0  float64
	Inc   bool // increase branch active
	Stuck bool // queue pinned at zero
	law   control.AIMD
	mu    float64
}

// At evaluates the segment at local time s ∈ [0, Dur].
func (sg DelayedSegment) At(s float64) Point {
	switch {
	case sg.Stuck && sg.Inc:
		return Point{Q: 0, Lambda: sg.Lam0 + sg.law.C0*s}
	case sg.Stuck:
		return Point{Q: 0, Lambda: sg.Lam0 * math.Exp(-sg.law.C1*s)}
	case sg.Inc:
		v0 := sg.Lam0 - sg.mu
		return Point{
			Q:      sg.Q0 + v0*s + 0.5*sg.law.C0*s*s,
			Lambda: sg.Lam0 + sg.law.C0*s,
		}
	default:
		e := math.Exp(-sg.law.C1 * s)
		return Point{
			Q:      sg.Q0 + sg.Lam0/sg.law.C1*(1-e) - sg.mu*s,
			Lambda: sg.Lam0 * e,
		}
	}
}

// DelayedPath is an exactly traced delayed trajectory.
type DelayedPath struct {
	Law      control.AIMD
	Mu       float64
	Tau      float64
	Segments []DelayedSegment
	// UpCrossTimes are the times q crossed q̂ moving upward — one per
	// oscillation cycle once the limit cycle is reached.
	UpCrossTimes []float64
	// PeakLambdas are the successive maxima of λ (one per cycle),
	// whose limit is the cycle's rate amplitude.
	PeakLambdas []float64
}

// TotalTime returns the trace end time.
func (p *DelayedPath) TotalTime() float64 {
	if len(p.Segments) == 0 {
		return 0
	}
	last := p.Segments[len(p.Segments)-1]
	return last.T0 + last.Dur
}

// At evaluates the path at absolute time t (clamped to the ends).
func (p *DelayedPath) At(t float64) Point {
	if len(p.Segments) == 0 {
		return Point{}
	}
	if t <= p.Segments[0].T0 {
		sg := p.Segments[0]
		return Point{Q: sg.Q0, Lambda: sg.Lam0}
	}
	// Binary search for the containing segment.
	k := sort.Search(len(p.Segments), func(i int) bool {
		sg := p.Segments[i]
		return sg.T0+sg.Dur >= t
	})
	if k >= len(p.Segments) {
		k = len(p.Segments) - 1
	}
	sg := p.Segments[k]
	s := t - sg.T0
	if s < 0 {
		s = 0
	}
	if s > sg.Dur {
		s = sg.Dur
	}
	return sg.At(s)
}

// Sample returns n+1 evenly spaced samples over the whole trace.
func (p *DelayedPath) Sample(n int) (ts []float64, pts []Point) {
	if n < 1 {
		n = 1
	}
	total := p.TotalTime()
	ts = make([]float64, n+1)
	pts = make([]Point, n+1)
	for i := 0; i <= n; i++ {
		t := total * float64(i) / float64(n)
		ts[i] = t
		pts[i] = p.At(t)
	}
	return ts, pts
}

// CycleMetrics summarizes the limit cycle from the trace tail.
type CycleMetrics struct {
	Period     float64 // mean spacing of the last up-crossings
	AmplitudeQ float64 // max q − min q over the last full cycle
	AmplitudeL float64 // max λ − min λ over the last full cycle
	Cycles     int     // number of full cycles observed
}

// Cycle measures the limit cycle from the final cycles of the path.
// It returns ok == false when fewer than three up-crossings were seen
// (no established cycle — e.g. τ = 0, which converges instead).
func (p *DelayedPath) Cycle() (CycleMetrics, bool) {
	n := len(p.UpCrossTimes)
	if n < 3 {
		return CycleMetrics{}, false
	}
	t0 := p.UpCrossTimes[n-2]
	t1 := p.UpCrossTimes[n-1]
	var m CycleMetrics
	m.Period = t1 - t0
	m.Cycles = n - 1
	// Sweep the final cycle densely using the closed forms.
	qMin, qMax := math.Inf(1), math.Inf(-1)
	lMin, lMax := math.Inf(1), math.Inf(-1)
	const steps = 2000
	for i := 0; i <= steps; i++ {
		pt := p.At(t0 + (t1-t0)*float64(i)/steps)
		qMin = math.Min(qMin, pt.Q)
		qMax = math.Max(qMax, pt.Q)
		lMin = math.Min(lMin, pt.Lambda)
		lMax = math.Max(lMax, pt.Lambda)
	}
	m.AmplitudeQ = qMax - qMin
	m.AmplitudeL = lMax - lMin
	return m, true
}

// arcEvent is an intra-arc occurrence located in closed form.
type arcEvent struct {
	dt   float64 // time from the arc start
	kind int
}

const (
	evNone      = iota // ran to the horizon
	evCrossUp          // q rose through q̂
	evCrossDown        // q fell through q̂
	evTouchZero        // q reached 0 while falling (λ < μ)
	evLiftoff          // stuck queue: λ rose to μ
)

// TraceExactDelayed integrates the delayed system from (q0, λ0) with
// constant pre-history q(t) = q0 for t < 0, for at most tEnd seconds
// or maxSegments arcs.
func TraceExactDelayed(law control.AIMD, mu, tau float64, p0 Point, tEnd float64, maxSegments int) (*DelayedPath, error) {
	switch {
	case !(mu > 0):
		return nil, fmt.Errorf("characteristics: service rate must be positive, got %v", mu)
	case !(tau >= 0):
		return nil, fmt.Errorf("characteristics: negative delay %v", tau)
	case p0.Q < 0 || p0.Lambda < 0:
		return nil, fmt.Errorf("characteristics: invalid initial state %+v", p0)
	case !(tEnd > 0) || maxSegments < 1:
		return nil, fmt.Errorf("characteristics: invalid horizon %v / segments %d", tEnd, maxSegments)
	}
	path := &DelayedPath{Law: law, Mu: mu, Tau: tau}
	q, lam := p0.Q, p0.Lambda
	// The signal for t < tau reflects the constant pre-history.
	inc := p0.Q <= law.QHat
	stuck := q <= 0 && lam < mu
	t := 0.0
	// Scheduled branch switches: (time, newBranchIsIncrease).
	type swEvent struct {
		t   float64
		inc bool
	}
	var pending []swEvent
	lastPeak := lam
	peakOpen := false

	for t < tEnd && len(path.Segments) < maxSegments {
		// Horizon: next scheduled switch or the end of the trace.
		horizon := tEnd
		if len(pending) > 0 && pending[0].t < horizon {
			horizon = pending[0].t
		}
		dur := horizon - t
		if dur < 0 {
			dur = 0
		}
		ev := nextArcEvent(law, mu, q, lam, inc, stuck, dur)
		segDur := ev.dt
		if ev.kind == evNone {
			segDur = dur
		}
		sg := DelayedSegment{
			T0: t, Dur: segDur, Q0: q, Lam0: lam,
			Inc: inc, Stuck: stuck, law: law, mu: mu,
		}
		path.Segments = append(path.Segments, sg)
		end := sg.At(segDur)
		q, lam = end.Q, end.Lambda
		t += segDur
		// Snap boundary residue: bisection can land a hair past a
		// horizon-coincident event, leaving q infinitesimally negative
		// and the stuck flag unset; re-derive both from the state.
		if lam < 0 {
			lam = 0
		}
		if q < 1e-9*(1+law.QHat) {
			q = 0
			if lam < mu {
				stuck = true
			}
		}
		// Track λ peaks (cycle amplitude bookkeeping): a peak forms
		// when the increase branch hands over to the decrease branch.
		if lam > lastPeak {
			lastPeak = lam
			peakOpen = true
		}

		switch ev.kind {
		case evCrossUp:
			q = law.QHat // snap exactly onto the line
			path.UpCrossTimes = append(path.UpCrossTimes, t)
			pending = append(pending, swEvent{t: t + tau, inc: false})
		case evCrossDown:
			q = law.QHat
			pending = append(pending, swEvent{t: t + tau, inc: true})
		case evTouchZero:
			q = 0
			stuck = true
		case evLiftoff:
			q = 0
			lam = mu
			stuck = false
		case evNone:
			if len(pending) > 0 && math.Abs(t-pending[0].t) < 1e-12*(1+t) {
				newInc := pending[0].inc
				pending = pending[1:]
				if newInc != inc {
					inc = newInc
					// Unstick if the new branch can move the queue.
					if stuck && lam >= mu {
						stuck = false
					}
					if !inc && peakOpen {
						path.PeakLambdas = append(path.PeakLambdas, lastPeak)
						peakOpen = false
						lastPeak = 0
					}
				}
			} else {
				// Reached tEnd.
				return path, nil
			}
		}
		// A stuck queue only remains stuck while it cannot grow.
		if stuck && lam > mu {
			stuck = false
		}
	}
	if len(path.Segments) >= maxSegments && t < tEnd {
		return path, fmt.Errorf("characteristics: delayed trace exceeded %d segments at t=%v", maxSegments, t)
	}
	return path, nil
}

// nextArcEvent locates the earliest event of the current arc within
// dur seconds, in closed form (quadratic roots on the increase branch,
// monotone-piece bisection on the decrease branch).
func nextArcEvent(law control.AIMD, mu, q, lam float64, inc, stuck bool, dur float64) arcEvent {
	const eps = 1e-12
	if dur <= eps {
		return arcEvent{kind: evNone}
	}
	qHat := law.QHat
	if stuck {
		if inc {
			// λ rises at C0; liftoff when it reaches μ.
			if lam < mu {
				if dt := (mu - lam) / law.C0; dt <= dur {
					return arcEvent{dt: dt, kind: evLiftoff}
				}
			}
		}
		// Stuck-decrease (or stuck-increase beyond the horizon): inert.
		return arcEvent{kind: evNone}
	}
	if inc {
		// Parabola: q(t) = q + v0 t + C0 t²/2.
		v0 := lam - mu
		// q̂ crossing: earliest positive root.
		tHat := smallestPositiveRoot(0.5*law.C0, v0, q-qHat)
		// zero touch (only while falling).
		tZero := math.Inf(1)
		if v0 < 0 && q > 0 {
			tZero = smallestPositiveRoot(0.5*law.C0, v0, q)
		}
		if tZero < tHat && tZero <= dur {
			return arcEvent{dt: tZero, kind: evTouchZero}
		}
		if tHat <= dur {
			vAt := v0 + law.C0*tHat
			if vAt >= 0 {
				return arcEvent{dt: tHat, kind: evCrossUp}
			}
			return arcEvent{dt: tHat, kind: evCrossDown}
		}
		return arcEvent{kind: evNone}
	}
	// Decrease arc: q(t) = q + (λ/C1)(1−e^{−C1 t}) − μ t, rising while
	// λ(t) > μ then falling forever. Split into monotone pieces.
	qAt := func(t float64) float64 {
		return q + lam/law.C1*(1-math.Exp(-law.C1*t)) - mu*t
	}
	var tPeak float64
	if lam > mu {
		tPeak = math.Log(lam/mu) / law.C1
	}
	// Rising piece [0, tPeak]: can cross q̂ upward.
	if tPeak > eps && q < qHat {
		if qAt(math.Min(tPeak, dur)) >= qHat {
			dt := bisectIncreasing(qAt, qHat, 0, math.Min(tPeak, dur))
			return arcEvent{dt: dt, kind: evCrossUp}
		}
	}
	// Falling piece [tPeak, ∞): crossings downward, then zero touch.
	start := tPeak
	if start > dur {
		return arcEvent{kind: evNone}
	}
	qStart := qAt(start)
	// q̂ downward crossing.
	if qStart > qHat {
		hi := start + 1/law.C1
		for qAt(hi) > qHat && hi < start+1e9 {
			hi = start + (hi-start)*2
		}
		if qAt(hi) <= qHat {
			dt := bisectDecreasing(qAt, qHat, start, hi)
			if dt <= dur {
				return arcEvent{dt: dt, kind: evCrossDown}
			}
		}
		return arcEvent{kind: evNone}
	}
	// Below (or at) q̂ and falling: next stop is the empty queue.
	if qStart > 0 {
		hi := start + 1/law.C1
		for qAt(hi) > 0 && hi < start+1e9 {
			hi = start + (hi-start)*2
		}
		if qAt(hi) <= 0 {
			dt := bisectDecreasing(qAt, 0, start, hi)
			if dt <= dur {
				return arcEvent{dt: dt, kind: evTouchZero}
			}
		}
	}
	return arcEvent{kind: evNone}
}

// bisectIncreasing finds t in [lo, hi] with f(t) = target for
// increasing f.
func bisectIncreasing(f func(float64) float64, target, lo, hi float64) float64 {
	for i := 0; i < 200 && hi-lo > 1e-14*(1+hi); i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// bisectDecreasing finds t in [lo, hi] with f(t) = target for
// decreasing f.
func bisectDecreasing(f func(float64) float64, target, lo, hi float64) float64 {
	for i := 0; i < 200 && hi-lo > 1e-14*(1+hi); i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
