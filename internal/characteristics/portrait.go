package characteristics

import (
	"fmt"

	"fpcc/internal/control"
)

// PhasePortrait samples trajectories from a grid of initial conditions
// — the full Figure 2 picture rather than a single spiral. Each
// trajectory is returned as a sequence of (t, q, λ) samples suitable
// for a plotting tool; cmd/phaseplot -portrait prints them as TSV
// blocks.
type PhasePortrait struct {
	// Trajectories[i] is the i-th trajectory's samples.
	Trajectories [][]Sample
}

// Sample is one point of a portrait trajectory.
type Sample struct {
	T      float64
	Q      float64
	Lambda float64
}

// PortraitConfig controls portrait generation.
type PortraitConfig struct {
	Mu       float64 // service rate
	QMaxInit float64 // initial queues are spread over [0, QMaxInit]
	LMaxInit float64 // initial rates are spread over [0, LMaxInit]
	GridQ    int     // number of initial queues
	GridL    int     // number of initial rates
	Horizon  float64 // trace duration per trajectory
	Samples  int     // samples recorded per trajectory
}

// Portrait traces the AIMD characteristic field from a GridQ x GridL
// lattice of initial conditions using the exact tracer.
func Portrait(law control.AIMD, cfg PortraitConfig) (*PhasePortrait, error) {
	switch {
	case !(cfg.Mu > 0):
		return nil, fmt.Errorf("characteristics: portrait needs positive μ, got %v", cfg.Mu)
	case cfg.GridQ < 1 || cfg.GridL < 1:
		return nil, fmt.Errorf("characteristics: empty portrait grid %dx%d", cfg.GridQ, cfg.GridL)
	case !(cfg.Horizon > 0):
		return nil, fmt.Errorf("characteristics: non-positive horizon %v", cfg.Horizon)
	case !(cfg.QMaxInit >= 0) || !(cfg.LMaxInit > 0):
		return nil, fmt.Errorf("characteristics: invalid initial ranges (%v, %v)", cfg.QMaxInit, cfg.LMaxInit)
	}
	samples := cfg.Samples
	if samples < 2 {
		samples = 100
	}
	p := &PhasePortrait{}
	for iq := 0; iq < cfg.GridQ; iq++ {
		for il := 0; il < cfg.GridL; il++ {
			q0 := 0.0
			if cfg.GridQ > 1 {
				q0 = cfg.QMaxInit * float64(iq) / float64(cfg.GridQ-1)
			}
			l0 := cfg.LMaxInit * float64(il+1) / float64(cfg.GridL)
			path, err := TraceExact(law, cfg.Mu, Point{Q: q0, Lambda: l0}, cfg.Horizon, 100000)
			if err != nil {
				return nil, fmt.Errorf("characteristics: portrait trajectory (%v, %v): %w", q0, l0, err)
			}
			ts, pts := path.Sample(samples - 1)
			traj := make([]Sample, len(pts))
			for k := range pts {
				traj[k] = Sample{T: ts[k], Q: pts[k].Q, Lambda: pts[k].Lambda}
			}
			p.Trajectories = append(p.Trajectories, traj)
		}
	}
	return p, nil
}
