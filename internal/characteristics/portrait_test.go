package characteristics

import (
	"math"
	"testing"

	"fpcc/internal/control"
)

func TestPortraitValidation(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	bad := []PortraitConfig{
		{Mu: 0, QMaxInit: 10, LMaxInit: 10, GridQ: 2, GridL: 2, Horizon: 10},
		{Mu: 10, QMaxInit: 10, LMaxInit: 10, GridQ: 0, GridL: 2, Horizon: 10},
		{Mu: 10, QMaxInit: 10, LMaxInit: 10, GridQ: 2, GridL: 2, Horizon: 0},
		{Mu: 10, QMaxInit: -1, LMaxInit: 10, GridQ: 2, GridL: 2, Horizon: 10},
		{Mu: 10, QMaxInit: 10, LMaxInit: 0, GridQ: 2, GridL: 2, Horizon: 10},
	}
	for i, cfg := range bad {
		if _, err := Portrait(law, cfg); err == nil {
			t.Errorf("bad portrait config %d accepted", i)
		}
	}
}

func TestPortraitShape(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	cfg := PortraitConfig{
		Mu: 10, QMaxInit: 40, LMaxInit: 20,
		GridQ: 3, GridL: 4, Horizon: 100, Samples: 50,
	}
	p, err := Portrait(law, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Trajectories) != 12 {
		t.Fatalf("got %d trajectories, want 12", len(p.Trajectories))
	}
	for i, traj := range p.Trajectories {
		if len(traj) != 50 {
			t.Fatalf("trajectory %d has %d samples, want 50", i, len(traj))
		}
		for k, s := range traj {
			if s.Q < -1e-9 || s.Lambda < -1e-9 {
				t.Fatalf("trajectory %d sample %d negative: %+v", i, k, s)
			}
			if k > 0 && s.T < traj[k-1].T {
				t.Fatalf("trajectory %d times not monotone at %d", i, k)
			}
		}
	}
}

// TestPortraitAllConverge: every lattice trajectory ends near the
// Theorem 1 limit point — the global picture of Figure 3.
func TestPortraitAllConverge(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	cfg := PortraitConfig{
		Mu: 10, QMaxInit: 40, LMaxInit: 20,
		GridQ: 3, GridL: 3, Horizon: 1500, Samples: 10,
	}
	p, err := Portrait(law, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, traj := range p.Trajectories {
		last := traj[len(traj)-1]
		if math.Abs(last.Q-20) > 1.5 || math.Abs(last.Lambda-10) > 1.5 {
			t.Errorf("trajectory %d ends at (%v, %v), want near (20, 10)", i, last.Q, last.Lambda)
		}
	}
}
