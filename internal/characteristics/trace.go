package characteristics

import (
	"fmt"
	"math"

	"fpcc/internal/control"
	"fpcc/internal/ode"
)

// traceRegion identifies the smooth piece of the piecewise field the
// integrator is currently in.
type traceRegion int

const (
	regionIncrease traceRegion = iota // q <= q̂ (the law's increase branch)
	regionDecrease                    // q > q̂ (the decrease branch)
	regionStuck                       // q = 0 with λ < μ (empty queue)
)

// Trace integrates the characteristic system dq/dt = v, dλ/dt = g
// numerically for an arbitrary law using RK4, returning the sampled
// trajectory with state [q, λ].
//
// The field is discontinuous across the switching line q = q̂ and the
// empty-queue boundary, so integrating it naively loses accuracy: RK4
// stages near a boundary sample the wrong branch. Trace therefore
// freezes the active branch, integrates the resulting smooth field
// until the region-exit event (located by bisection), snaps the state
// onto the boundary and switches branch — the numeric analogue of
// TraceExact's closed-form segment chain, and valid for any Law whose
// two branches are individually smooth.
//
// For AIMD prefer TraceExact, which is free of time-stepping error;
// Trace exists for the laws without closed-form arcs and as an
// independent cross-check of the exact tracer.
func Trace(law control.Law, mu float64, p0 Point, t1, dt float64) (*ode.Trajectory, error) {
	if !(mu > 0) {
		return nil, fmt.Errorf("characteristics: service rate must be positive, got %v", mu)
	}
	if p0.Q < 0 || p0.Lambda < 0 {
		return nil, fmt.Errorf("characteristics: invalid initial state %+v", p0)
	}
	if !(dt > 0) || !(t1 > 0) {
		return nil, fmt.Errorf("characteristics: invalid horizon/step t1=%v dt=%v", t1, dt)
	}
	qHat := law.Target()
	// Branch-frozen right-hand sides. The q argument passed to the law
	// is clamped to the active branch's side so that stage evaluations
	// that numerically wander across the boundary still see the frozen
	// branch.
	qAbove := math.Nextafter(qHat, math.Inf(1))
	rhs := map[traceRegion]ode.System{
		regionIncrease: func(t float64, y, dydt []float64) {
			dydt[0] = y[1] - mu
			dydt[1] = law.Drift(math.Min(y[0], qHat), y[1])
		},
		regionDecrease: func(t float64, y, dydt []float64) {
			dydt[0] = y[1] - mu
			dydt[1] = law.Drift(math.Max(y[0], qAbove), y[1])
		},
		regionStuck: func(t float64, y, dydt []float64) {
			dydt[0] = 0
			dydt[1] = law.Drift(0, y[1])
		},
	}
	regionOf := func(p Point) traceRegion {
		switch {
		case p.Q <= 0 && p.Lambda < mu:
			return regionStuck
		case p.Q < qHat || (p.Q == qHat && p.Lambda <= mu):
			return regionIncrease
		default:
			return regionDecrease
		}
	}

	stepper := ode.NewRK4(2)
	tol := math.Min(dt*1e-6, 1e-9)
	y := []float64{p0.Q, p0.Lambda}
	full := &ode.Trajectory{}
	full.Times = append(full.Times, 0)
	full.States = append(full.States, append([]float64(nil), y...))

	// Near the Filippov equilibrium (q̂, μ) region cycles become
	// arbitrarily short (the spiral converges in infinite time with
	// exponentially accelerating crossings). An arc that completes
	// within a single step is invisible to endpoint sign checks, so
	// once the state is within the amplitude an arc can traverse in
	// ~2 steps we hold it constant, matching TraceExact's steady
	// segment. The radius scales with dt: refining the step refines
	// the hold ball.
	gUp := math.Abs(law.Drift(qHat, mu))
	gDn := math.Abs(law.Drift(qAbove, mu))
	eqTol := 2*dt*math.Max(gUp, gDn) + 1e-9*(1+qHat+mu)
	t := 0.0
	for t < t1 {
		if math.Abs(y[0]-qHat) < eqTol && math.Abs(y[1]-mu) < eqTol {
			full.Times = append(full.Times, t1)
			full.States = append(full.States, []float64{qHat, mu})
			break
		}
		reg := regionOf(Point{Q: y[0], Lambda: y[1]})
		var events []ode.EventFunc
		switch reg {
		case regionIncrease:
			events = []ode.EventFunc{
				func(tt float64, yy []float64) float64 { return yy[0] - qHat },
				func(tt float64, yy []float64) float64 { return yy[0] },
			}
		case regionDecrease:
			events = []ode.EventFunc{
				func(tt float64, yy []float64) float64 { return yy[0] - qHat },
			}
		case regionStuck:
			events = []ode.EventFunc{
				func(tt float64, yy []float64) float64 { return yy[1] - mu },
			}
		}
		seg, evs, err := ode.SolveWithEvents(rhs[reg], stepper, y, t, t1, dt, tol, events, nil, 1)
		if err != nil {
			return nil, err
		}
		// Append the segment, skipping its duplicated initial sample.
		for i := 1; i < seg.Len(); i++ {
			st, sy := seg.At(i)
			full.Times = append(full.Times, st)
			full.States = append(full.States, append([]float64(nil), sy...))
		}
		tEnd, yEnd := seg.Last()
		copy(y, yEnd)
		if len(evs) == 0 {
			// Ran to the horizon without leaving the region.
			t = tEnd
			break
		}
		t = tEnd
		// Snap exactly onto the boundary the event located.
		switch reg {
		case regionIncrease:
			if math.Abs(y[0]-qHat) < math.Abs(y[0]) { // hit the switching line
				y[0] = qHat
			} else { // hit the empty-queue boundary
				y[0] = 0
			}
		case regionDecrease:
			y[0] = qHat
		case regionStuck:
			y[0] = 0
			y[1] = mu
		}
		if len(full.States) > 0 {
			copy(full.States[len(full.States)-1], y)
		}
		if y[0] < 0 {
			y[0] = 0
		}
		if y[1] < 0 {
			y[1] = 0
		}
	}
	return full, nil
}

// Crossing records one upward passage of the trajectory through the
// Poincaré section q = q̂ (moving from the increase region into the
// decrease region).
type Crossing struct {
	T      float64 // time of the crossing
	Lambda float64 // rate at the crossing; amplitude is Lambda − μ
}

// UpCrossings extracts the Poincaré-section hits from a sampled
// trajectory with state [q, λ]: samples where q crosses q̂ from below
// with λ > mu. Crossing times and rates are linearly interpolated
// between samples.
func UpCrossings(tr *ode.Trajectory, qHat, mu float64) []Crossing {
	var out []Crossing
	for i := 1; i < tr.Len(); i++ {
		t0, y0 := tr.At(i - 1)
		t1, y1 := tr.At(i)
		q0, q1 := y0[0], y1[0]
		if q0 <= qHat && q1 > qHat {
			// Interpolate the crossing.
			frac := 0.0
			if q1 != q0 {
				frac = (qHat - q0) / (q1 - q0)
			}
			lam := y0[1] + frac*(y1[1]-y0[1])
			if lam > mu {
				out = append(out, Crossing{T: t0 + frac*(t1-t0), Lambda: lam})
			}
		}
	}
	return out
}

// Behavior classifies the long-run behaviour of a trajectory from the
// amplitude sequence of its Poincaré map.
type Behavior int

const (
	// Converging: amplitudes contract toward zero — the convergent
	// spiral of Theorem 1 (Figure 3).
	Converging Behavior = iota
	// NeutralCycle: amplitudes neither grow nor shrink — a closed
	// orbit, as AIAD produces without delay.
	NeutralCycle
	// Diverging: amplitudes grow — an outward spiral, as delayed
	// feedback produces until it saturates into a limit cycle.
	Diverging
	// Inconclusive: fewer than three crossings were observed.
	Inconclusive
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Converging:
		return "converging"
	case NeutralCycle:
		return "neutral-cycle"
	case Diverging:
		return "diverging"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// Classify inspects the Poincaré amplitude sequence aₖ = λₖ − μ and
// returns the behaviour plus the total amplitude ratio
// R = a_last / a_first over the observation window; R < 1−tol is
// Converging, R > 1+tol Diverging, otherwise NeutralCycle.
//
// The total ratio (rather than a per-crossing geometric mean) is the
// right statistic here because Theorem 1's contraction is quadratic,
// a' = a − (2/3)a²/μ + O(a³): amplitudes decay algebraically (~1/k),
// so the per-crossing ratio tends to 1 even though the spiral
// converges. A neutral cycle keeps R ≈ 1 no matter how long the
// window; a convergent spiral drives R toward 0.
func Classify(crossings []Crossing, mu, tol float64) (Behavior, float64) {
	n := len(crossings)
	if n < 3 {
		return Inconclusive, math.NaN()
	}
	a0 := crossings[0].Lambda - mu
	aN := crossings[n-1].Lambda - mu
	if a0 <= 0 || aN < 0 {
		return Inconclusive, math.NaN()
	}
	r := aN / a0
	switch {
	case r < 1-tol:
		return Converging, r
	case r > 1+tol:
		return Diverging, r
	default:
		return NeutralCycle, r
	}
}

// ConvergenceTime returns the first sample time at which the
// trajectory enters and afterwards remains within distance eps of the
// equilibrium (Theorem 1's limit point), or NaN if it never settles.
func ConvergenceTime(tr *ode.Trajectory, law control.Law, mu, eps float64) float64 {
	settled := math.NaN()
	for i := 0; i < tr.Len(); i++ {
		t, y := tr.At(i)
		d := DistanceToEquilibrium(law, mu, Point{Q: y[0], Lambda: y[1]})
		if d <= eps {
			if math.IsNaN(settled) {
				settled = t
			}
		} else {
			settled = math.NaN()
		}
	}
	return settled
}

// Overshoot returns the maximum queue excursion above the target q̂
// observed along the trajectory.
func Overshoot(tr *ode.Trajectory, qHat float64) float64 {
	var m float64
	for i := 0; i < tr.Len(); i++ {
		_, y := tr.At(i)
		if over := y[0] - qHat; over > m {
			m = over
		}
	}
	return m
}
