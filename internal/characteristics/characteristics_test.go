package characteristics

import (
	"math"
	"testing"
	"testing/quick"

	"fpcc/internal/control"
)

func mustAIMD(t testing.TB, c0, c1, qHat float64) control.AIMD {
	t.Helper()
	l, err := control.NewAIMD(c0, c1, qHat)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestDriftReflectionAtEmptyQueue(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 10)
	// Empty queue, rate below service: queue cannot drain further.
	dq, dlam := Drift(l, 5, Point{Q: 0, Lambda: 3})
	if dq != 0 {
		t.Errorf("dq at empty queue = %v, want 0", dq)
	}
	if dlam != 1 {
		t.Errorf("dλ = %v, want C0 = 1", dlam)
	}
	// Empty queue but rate above service: normal growth.
	dq, _ = Drift(l, 5, Point{Q: 0, Lambda: 8})
	if dq != 3 {
		t.Errorf("dq = %v, want 3", dq)
	}
}

func TestQuadrantOf(t *testing.T) {
	const mu, qHat = 10.0, 20.0
	cases := []struct {
		p    Point
		want Quadrant
	}{
		{Point{Q: 5, Lambda: 15}, QuadrantI},
		{Point{Q: 25, Lambda: 15}, QuadrantII},
		{Point{Q: 25, Lambda: 5}, QuadrantIII},
		{Point{Q: 5, Lambda: 5}, QuadrantIV},
		{Point{Q: 20, Lambda: 15}, QuadrantI}, // boundary q = q̂ is "below"
		{Point{Q: 5, Lambda: 10}, QuadrantI},  // boundary v = 0 is "rising"
	}
	for _, tc := range cases {
		if got := QuadrantOf(tc.p, mu, qHat); got != tc.want {
			t.Errorf("QuadrantOf(%+v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// TestQuadrantTableAIMD reproduces Figure 2: the drift rotation
// pattern (+,+), (+,−), (−,−), (−,+) for quadrants I..IV.
func TestQuadrantTableAIMD(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 20)
	table := QuadrantTable(l, 10)
	want := [4][2]int{{1, 1}, {1, -1}, {-1, -1}, {-1, 1}}
	for i, row := range table {
		if row.QSign != want[i][0] || row.VSign != want[i][1] {
			t.Errorf("quadrant %v: drift signs (%d, %d), want (%d, %d)",
				row.Quadrant, row.QSign, row.VSign, want[i][0], want[i][1])
		}
	}
}

func TestQuadrantString(t *testing.T) {
	if QuadrantI.String() != "I" || QuadrantIV.String() != "IV" {
		t.Error("Quadrant String mismatch")
	}
	if Quadrant(9).String() != "Quadrant(9)" {
		t.Error("unknown quadrant String mismatch")
	}
}

func TestSegmentKinds(t *testing.T) {
	if SegIncrease.String() != "increase" || SegDecrease.String() != "decrease" ||
		SegBoundary.String() != "boundary" {
		t.Error("SegmentKind String mismatch")
	}
}

func TestTraceExactValidation(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 10)
	if _, err := TraceExact(l, 0, Point{Q: 0, Lambda: 1}, 10, 100); err == nil {
		t.Error("accepted zero service rate")
	}
	if _, err := TraceExact(l, 5, Point{Q: -1, Lambda: 1}, 10, 100); err == nil {
		t.Error("accepted negative queue")
	}
	if _, err := TraceExact(l, 5, Point{Q: 0, Lambda: 1}, 0, 100); err == nil {
		t.Error("accepted zero horizon")
	}
	if _, err := TraceExact(l, 5, Point{Q: 0, Lambda: 1}, 10, 0); err == nil {
		t.Error("accepted zero segments")
	}
}

// TestTheorem1Convergence is the headline result: for AIMD with no
// feedback delay, the trajectory is a convergent spiral with limit
// point (q̂, μ) — Theorem 1 / Figure 3.
func TestTheorem1Convergence(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	const mu = 10.0
	path, err := TraceExact(l, mu, Point{Q: 0, Lambda: 2}, 2000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	end := path.At(path.TotalTime())
	if math.Abs(end.Q-20) > 0.5 {
		t.Errorf("final queue %v, want near q̂ = 20", end.Q)
	}
	if math.Abs(end.Lambda-mu) > 0.5 {
		t.Errorf("final rate %v, want near μ = 10", end.Lambda)
	}
	// Poincaré amplitudes must contract monotonically.
	ups := path.UpCrossings()
	if len(ups) < 3 {
		t.Fatalf("only %d up-crossings, want >= 3", len(ups))
	}
	for i := 1; i < len(ups); i++ {
		a0 := ups[i-1].Lambda - mu
		a1 := ups[i].Lambda - mu
		if a1 >= a0 {
			t.Errorf("amplitude did not contract at crossing %d: %v -> %v", i, a0, a1)
		}
	}
}

// TestTheorem1ParameterProperty checks contraction for random valid
// parameters: Theorem 1 holds for every C0, C1 > 0.
func TestTheorem1ParameterProperty(t *testing.T) {
	f := func(c0Raw, c1Raw, muRaw uint16) bool {
		c0 := float64(c0Raw%500)/100 + 0.05
		c1 := float64(c1Raw%300)/100 + 0.05
		mu := float64(muRaw%50) + 2
		l, err := control.NewAIMD(c0, c1, 15)
		if err != nil {
			return false
		}
		path, err := TraceExact(l, mu, Point{Q: 0, Lambda: mu / 2}, 5000, 200000)
		if err != nil {
			return false
		}
		ups := path.UpCrossings()
		if len(ups) < 2 {
			// Overdamped path may settle with a single crossing.
			end := path.At(path.TotalTime())
			return math.Abs(end.Q-15) < 2 && math.Abs(end.Lambda-mu) < 2
		}
		for i := 1; i < len(ups); i++ {
			if ups[i].Lambda-mu >= ups[i-1].Lambda-mu+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceExactSegmentsContinuity(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	path, err := TraceExact(l, 10, Point{Q: 0, Lambda: 2}, 200, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Segments) < 3 {
		t.Fatalf("too few segments: %d", len(path.Segments))
	}
	for i := 1; i < len(path.Segments); i++ {
		prev := path.Segments[i-1]
		curr := path.Segments[i]
		pe := prev.End()
		if math.Abs(pe.Q-curr.Start.Q) > 1e-6 || math.Abs(pe.Lambda-curr.Start.Lambda) > 1e-6 {
			t.Fatalf("discontinuity between segments %d and %d: %+v vs %+v", i-1, i, pe, curr.Start)
		}
		if math.Abs((prev.T0+prev.Dur)-curr.T0) > 1e-9 {
			t.Fatalf("time gap between segments %d and %d", i-1, i)
		}
	}
}

func TestTraceExactStickyBoundary(t *testing.T) {
	// Start with a large queue and tiny rate: the trajectory must
	// drain, stick at q = 0 while λ climbs to μ, then rise again.
	l := mustAIMD(t, 1, 2.0, 5)
	path, err := TraceExact(l, 10, Point{Q: 50, Lambda: 0}, 500, 10000)
	if err != nil {
		t.Fatal(err)
	}
	foundBoundary := false
	for _, sg := range path.Segments {
		if sg.Kind == SegBoundary {
			foundBoundary = true
			if sg.Start.Q != 0 {
				t.Errorf("boundary segment starts at q = %v, want 0", sg.Start.Q)
			}
			if sg.Start.Lambda >= 10 {
				t.Errorf("boundary segment starts at λ = %v, want < μ", sg.Start.Lambda)
			}
			end := sg.End()
			if math.Abs(end.Lambda-10) > 1e-9 {
				t.Errorf("boundary segment ends at λ = %v, want μ = 10", end.Lambda)
			}
		}
	}
	if !foundBoundary {
		t.Fatal("trajectory never stuck at the empty-queue boundary")
	}
	// Queue must never be negative anywhere on the path.
	ts, pts := path.Sample(2000)
	_ = ts
	for i, p := range pts {
		if p.Q < -1e-9 {
			t.Fatalf("negative queue %v at sample %d", p.Q, i)
		}
	}
}

func TestTraceExactFromEquilibrium(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 10)
	path, err := TraceExact(l, 5, Point{Q: 10, Lambda: 5}, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	end := path.At(100)
	if math.Abs(end.Q-10) > 1e-9 || math.Abs(end.Lambda-5) > 1e-9 {
		t.Fatalf("equilibrium start drifted to %+v", end)
	}
}

func TestExactPathAtClamping(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 10)
	path, err := TraceExact(l, 5, Point{Q: 0, Lambda: 1}, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	before := path.At(-1)
	if before.Q != 0 || before.Lambda != 1 {
		t.Errorf("At(-1) = %+v, want initial state", before)
	}
	after := path.At(path.TotalTime() + 100)
	final := path.At(path.TotalTime())
	if math.Abs(after.Q-final.Q) > 1e-9 {
		t.Errorf("At beyond end = %+v, want clamp to final %+v", after, final)
	}
}

// TestExactVsNumeric cross-validates the closed-form tracer against
// the event-located RK4 tracer on the same problem.
func TestExactVsNumeric(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	const mu = 10.0
	p0 := Point{Q: 0, Lambda: 2}
	path, err := TraceExact(l, mu, p0, 60, 10000)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Trace(l, mu, p0, 60, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i += 50 {
		tt, y := tr.At(i)
		exact := path.At(tt)
		if math.Abs(y[0]-exact.Q) > 0.05 {
			t.Fatalf("t=%v: numeric q=%v, exact q=%v", tt, y[0], exact.Q)
		}
		if math.Abs(y[1]-exact.Lambda) > 0.05 {
			t.Fatalf("t=%v: numeric λ=%v, exact λ=%v", tt, y[1], exact.Lambda)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 10)
	if _, err := Trace(l, 0, Point{}, 1, 0.01); err == nil {
		t.Error("accepted zero service rate")
	}
	if _, err := Trace(l, 5, Point{Q: -1}, 1, 0.01); err == nil {
		t.Error("accepted negative queue")
	}
}

// TestAIADNeutralCycle: the linear-decrease law must produce a
// non-contracting (neutral) cycle — the algorithm-induced oscillation
// the paper distinguishes from delay-induced oscillation.
func TestAIADNeutralCycle(t *testing.T) {
	l, err := control.NewAIAD(1, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	const mu = 10.0
	tr, err := Trace(l, mu, Point{Q: 10, Lambda: 12}, 300, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	crossings := UpCrossings(tr, 20, mu)
	if len(crossings) < 4 {
		t.Fatalf("only %d crossings", len(crossings))
	}
	behavior, ratio := Classify(crossings, mu, 0.02)
	if behavior != NeutralCycle {
		t.Fatalf("AIAD classified as %v (ratio %v), want neutral-cycle", behavior, ratio)
	}
}

// TestAIMDClassifiedConverging: the same classifier must report the
// AIMD spiral as converging.
func TestAIMDClassifiedConverging(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	const mu = 10.0
	tr, err := Trace(l, mu, Point{Q: 0, Lambda: 2}, 400, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	crossings := UpCrossings(tr, 20, mu)
	behavior, ratio := Classify(crossings, mu, 0.02)
	if behavior != Converging {
		t.Fatalf("AIMD classified as %v (ratio %v), want converging", behavior, ratio)
	}
	if !(ratio < 1) {
		t.Fatalf("contraction ratio %v, want < 1", ratio)
	}
}

func TestClassifyInconclusive(t *testing.T) {
	b, _ := Classify(nil, 10, 0.02)
	if b != Inconclusive {
		t.Fatalf("Classify(nil) = %v, want inconclusive", b)
	}
	b, _ = Classify([]Crossing{{T: 1, Lambda: 11}, {T: 2, Lambda: 10.5}}, 10, 0.02)
	if b != Inconclusive {
		t.Fatalf("two crossings = %v, want inconclusive", b)
	}
}

func TestBehaviorString(t *testing.T) {
	if Converging.String() != "converging" || NeutralCycle.String() != "neutral-cycle" ||
		Diverging.String() != "diverging" || Inconclusive.String() != "inconclusive" {
		t.Error("Behavior String mismatch")
	}
	if Behavior(42).String() != "Behavior(42)" {
		t.Error("unknown Behavior String mismatch")
	}
}

func TestConvergenceTimeAndOvershoot(t *testing.T) {
	l := mustAIMD(t, 2, 0.8, 20)
	const mu = 10.0
	tr, err := Trace(l, mu, Point{Q: 0, Lambda: 2}, 600, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ct := ConvergenceTime(tr, l, mu, 0.05)
	if math.IsNaN(ct) {
		t.Fatal("trajectory never converged to within 5%")
	}
	if ct <= 0 || ct >= 600 {
		t.Fatalf("convergence time %v out of range", ct)
	}
	over := Overshoot(tr, 20)
	if over <= 0 {
		t.Fatalf("overshoot %v, want positive (the spiral overshoots q̂)", over)
	}
}

func TestEquilibriumHelpers(t *testing.T) {
	l := mustAIMD(t, 1, 0.5, 10)
	eq := EquilibriumPoint(l, 5)
	if eq.Q != 10 || eq.Lambda != 5 {
		t.Fatalf("EquilibriumPoint = %+v", eq)
	}
	if d := DistanceToEquilibrium(l, 5, eq); d != 0 {
		t.Fatalf("distance at equilibrium = %v", d)
	}
	if d := DistanceToEquilibrium(l, 5, Point{Q: 20, Lambda: 5}); d != 1 {
		t.Fatalf("distance = %v, want 1", d)
	}
}

// Property: exact-path queue is never negative and λ never negative,
// for random initial conditions.
func TestExactPathInvariants(t *testing.T) {
	f := func(q0Raw, l0Raw uint16) bool {
		q0 := float64(q0Raw % 100)
		l0 := float64(l0Raw%300) / 10
		l := control.AIMD{C0: 1.5, C1: 0.6, QHat: 25}
		path, err := TraceExact(l, 8, Point{Q: q0, Lambda: l0}, 300, 50000)
		if err != nil {
			return false
		}
		_, pts := path.Sample(500)
		for _, p := range pts {
			if p.Q < -1e-9 || p.Lambda < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTraceExact(b *testing.B) {
	l := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TraceExact(l, 10, Point{Q: 0, Lambda: 2}, 500, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceNumeric(b *testing.B) {
	l := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	for i := 0; i < b.N; i++ {
		if _, err := Trace(l, 10, Point{Q: 0, Lambda: 2}, 100, 1e-2); err != nil {
			b.Fatal(err)
		}
	}
}
