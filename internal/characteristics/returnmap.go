package characteristics

import (
	"fmt"
	"math"

	"fpcc/internal/control"
)

// ReturnMap evaluates one revolution of the Poincaré map of the AIMD
// system at the section {q = q̂, λ > μ}: starting on the section with
// amplitude a (that is, λ = μ + a), the trajectory makes one loop —
// exponential decrease arc above the line, parabolic arc below it
// (possibly sticking at the empty-queue boundary) — and returns to the
// section with amplitude a' = ReturnMap(a).
//
// Theorem 1 is the statement that a' < a for every a > 0. The
// small-amplitude expansion is quadratic, not geometric:
//
//	a' = a − (2/3)·a²/μ + O(a³)
//
// so the spiral converges algebraically in revolutions (amplitudes
// decay like 1/k), which is why the paper's limit point is approached
// asymptotically rather than in finite time. VerifyContraction and the
// package tests exercise both facts.
func ReturnMap(law control.AIMD, mu, a float64) (float64, error) {
	if !(a > 0) {
		return 0, fmt.Errorf("characteristics: amplitude must be positive, got %v", a)
	}
	if !(mu > 0) {
		return 0, fmt.Errorf("characteristics: service rate must be positive, got %v", mu)
	}
	start := Point{Q: law.QHat, Lambda: mu + a}
	// One revolution needs at most a handful of segments: decrease
	// arc, parabola, possibly boundary stick and a second parabola.
	// Time bound: generously cover slow revolutions at small C0/C1.
	maxTime := 1000 * (a/law.C0 + a/(law.C1*mu) + 1)
	path, err := TraceExact(law, mu, start, maxTime, 64)
	if err != nil {
		return 0, err
	}
	ups := path.UpCrossings()
	if len(ups) == 0 {
		return 0, fmt.Errorf("characteristics: no return crossing within %v segments (a=%v)", 64, a)
	}
	return ups[0].Lambda - mu, nil
}

// ContractionTable tabulates the return map over a range of
// amplitudes, returning (a, a', a'/a) triples — the quantitative
// content of Theorem 1 that experiment E2 reports.
func ContractionTable(law control.AIMD, mu float64, amplitudes []float64) ([][3]float64, error) {
	out := make([][3]float64, 0, len(amplitudes))
	for _, a := range amplitudes {
		ap, err := ReturnMap(law, mu, a)
		if err != nil {
			return nil, err
		}
		out = append(out, [3]float64{a, ap, ap / a})
	}
	return out, nil
}

// QuadraticContractionCoefficient estimates the leading coefficient c
// in a' = a − c·a²/μ + O(a³) by Richardson extrapolation of the return
// map at small amplitudes. The analytic value is 2/3 (independent of
// C0, C1 — the contraction comes purely from the curvature of the
// exponential arc against the service rate).
func QuadraticContractionCoefficient(law control.AIMD, mu float64) (float64, error) {
	// c(a) = (a − a')·μ/a² → c as a → 0. Use two amplitudes and
	// eliminate the O(a) error term.
	a1 := mu / 200
	a2 := a1 / 2
	f := func(a float64) (float64, error) {
		ap, err := ReturnMap(law, mu, a)
		if err != nil {
			return 0, err
		}
		return (a - ap) * mu / (a * a), nil
	}
	c1, err := f(a1)
	if err != nil {
		return 0, err
	}
	c2, err := f(a2)
	if err != nil {
		return 0, err
	}
	// c(a) = c + k·a ⇒ c ≈ 2·c(a/2) − c(a).
	return 2*c2 - c1, nil
}

// VerifyContraction checks a' < a across a logarithmic sweep of
// amplitudes from aMin to aMax and returns the worst ratio a'/a
// observed (always < 1 when Theorem 1 holds).
func VerifyContraction(law control.AIMD, mu, aMin, aMax float64, steps int) (worst float64, err error) {
	if !(aMin > 0) || !(aMax > aMin) || steps < 2 {
		return 0, fmt.Errorf("characteristics: invalid sweep [%v, %v] x %d", aMin, aMax, steps)
	}
	ratio := math.Pow(aMax/aMin, 1/float64(steps-1))
	a := aMin
	for i := 0; i < steps; i++ {
		ap, err := ReturnMap(law, mu, a)
		if err != nil {
			return 0, err
		}
		if r := ap / a; r > worst {
			worst = r
		}
		if ap >= a {
			return ap / a, fmt.Errorf("characteristics: contraction violated at a=%v (a'=%v)", a, ap)
		}
		a *= ratio
	}
	return worst, nil
}
