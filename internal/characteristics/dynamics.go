// Package characteristics implements the phase-plane analysis of
// Section 5 of the paper: the characteristics of the reduced
// (hyperbolic, σ² = 0) Fokker-Planck equation are the solution curves
// of
//
//	dq/dt = v = λ − μ,    dλ/dt = g(q, λ)         (Eq. 15/16)
//
// in the (q, v) plane. The package provides
//
//   - the drift field with the paper's q = 0 reflection convention
//     (η(t) = 0 when Q = 0 and λ < μ),
//   - the quadrant-by-quadrant drift-direction table of Figure 2,
//   - piecewise-exact trajectories for the AIMD law (parabolic arcs
//     below the switching line q = q̂, exponential arcs above it, with
//     analytically located switching times — no time-stepping error),
//   - a generic event-located RK4 tracer for arbitrary laws,
//   - Poincaré sections at q = q̂ and the classification of the spiral
//     (convergent per Theorem 1, neutral limit cycle, or divergent).
package characteristics

import (
	"fmt"
	"math"

	"fpcc/internal/control"
)

// Point is a state in the (Q, λ) phase plane. The queue growth rate is
// V = λ − μ; the paper draws the plane in (q, v) coordinates, which
// differ from (q, λ) by a vertical shift of μ.
type Point struct {
	Q      float64 // queue length
	Lambda float64 // arrival (sending) rate
}

// V returns the queue growth rate v = λ − μ of the point.
func (p Point) V(mu float64) float64 { return p.Lambda - mu }

// Drift returns the instantaneous drift (dq/dt, dλ/dt) at p under law
// and service rate mu, honoring the boundary convention that an empty
// queue cannot drain further: dq/dt = 0 when Q = 0 and λ < μ.
func Drift(law control.Law, mu float64, p Point) (dq, dlam float64) {
	dq = p.Lambda - mu
	if p.Q <= 0 && dq < 0 {
		dq = 0
	}
	dlam = law.Drift(p.Q, p.Lambda)
	return dq, dlam
}

// Quadrant identifies one of the four regions of Figure 2, formed by
// the lines q = q̂ and v = 0.
type Quadrant int

// Quadrants are numbered as in Figure 2 of the paper.
const (
	// QuadrantI is v > 0, q < q̂: below target, rate above service.
	QuadrantI Quadrant = iota + 1
	// QuadrantII is v > 0, q > q̂: above target, rate above service.
	QuadrantII
	// QuadrantIII is v < 0, q > q̂: above target, rate below service.
	QuadrantIII
	// QuadrantIV is v < 0, q < q̂: below target, rate below service.
	QuadrantIV
)

// String implements fmt.Stringer.
func (q Quadrant) String() string {
	switch q {
	case QuadrantI:
		return "I"
	case QuadrantII:
		return "II"
	case QuadrantIII:
		return "III"
	case QuadrantIV:
		return "IV"
	default:
		return fmt.Sprintf("Quadrant(%d)", int(q))
	}
}

// QuadrantOf returns the quadrant containing the point (boundary
// points are assigned to the quadrant the open region of which they
// close: q = q̂ counts as "below target" because the paper's law uses
// the increase branch at Q <= q̂, and v = 0 counts as v > 0).
func QuadrantOf(p Point, mu, qHat float64) Quadrant {
	below := p.Q <= qHat
	rising := p.V(mu) >= 0
	switch {
	case rising && below:
		return QuadrantI
	case rising && !below:
		return QuadrantII
	case !rising && !below:
		return QuadrantIII
	default:
		return QuadrantIV
	}
}

// QuadrantDrift records the sign pattern of the drift field in one
// quadrant; Figure 2 of the paper is exactly this table.
type QuadrantDrift struct {
	Quadrant Quadrant
	QSign    int // sign of dq/dt in the open quadrant
	VSign    int // sign of dv/dt = dλ/dt in the open quadrant
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// QuadrantTable evaluates the drift-direction pattern of Figure 2 for
// an arbitrary law: each quadrant is probed at a representative
// interior point and the signs of the two drift components recorded.
// For the paper's AIMD law the result is the cyclone pattern
// (+,+), (+,−), (−,−), (−,+) that forces every trajectory to rotate
// clockwise around the operating point (q̂, μ).
func QuadrantTable(law control.Law, mu float64) [4]QuadrantDrift {
	qHat := law.Target()
	// Representative interior points: offset well away from the axes.
	dq := qHat/2 + 1
	dv := mu/2 + 1
	probes := [4]Point{
		{Q: math.Max(qHat-dq, qHat/2), Lambda: mu + dv},               // I
		{Q: qHat + dq, Lambda: mu + dv},                               // II
		{Q: qHat + dq, Lambda: math.Max(mu-dv, mu/2)},                 // III
		{Q: math.Max(qHat-dq, qHat/2), Lambda: math.Max(mu-dv, mu/2)}, // IV
	}
	var out [4]QuadrantDrift
	for i, p := range probes {
		qd, ld := Drift(law, mu, p)
		out[i] = QuadrantDrift{
			Quadrant: Quadrant(i + 1),
			QSign:    sign(qd),
			VSign:    sign(ld),
		}
	}
	return out
}

// EquilibriumPoint returns the desired operating point of the adaptive
// algorithm: Q = q̂, λ = μ (Theorem 1's limit point).
func EquilibriumPoint(law control.Law, mu float64) Point {
	return Point{Q: law.Target(), Lambda: mu}
}

// DistanceToEquilibrium returns a scale-normalized distance from p to
// the limit point: |Δq|/max(q̂,1) + |Δλ|/max(μ,1). Used by convergence
// measurements.
func DistanceToEquilibrium(law control.Law, mu float64, p Point) float64 {
	eq := EquilibriumPoint(law, mu)
	qs := math.Max(eq.Q, 1)
	ls := math.Max(mu, 1)
	return math.Abs(p.Q-eq.Q)/qs + math.Abs(p.Lambda-eq.Lambda)/ls
}
