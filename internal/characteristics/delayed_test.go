package characteristics

import (
	"math"
	"testing"

	"fpcc/internal/control"
	"fpcc/internal/fluid"
)

func TestTraceExactDelayedValidation(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	if _, err := TraceExactDelayed(law, 0, 1, Point{}, 10, 100); err == nil {
		t.Error("accepted zero μ")
	}
	if _, err := TraceExactDelayed(law, 10, -1, Point{}, 10, 100); err == nil {
		t.Error("accepted negative delay")
	}
	if _, err := TraceExactDelayed(law, 10, 1, Point{Q: -1}, 10, 100); err == nil {
		t.Error("accepted negative queue")
	}
	if _, err := TraceExactDelayed(law, 10, 1, Point{}, 0, 100); err == nil {
		t.Error("accepted zero horizon")
	}
}

// TestDelayedZeroTauMatchesUndelayed: with τ = 0 the delayed tracer
// must reproduce the undelayed exact path.
func TestDelayedZeroTauMatchesUndelayed(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	const mu = 10.0
	p0 := Point{Q: 0, Lambda: 2}
	und, err := TraceExact(law, mu, p0, 60, 10000)
	if err != nil {
		t.Fatal(err)
	}
	del, err := TraceExactDelayed(law, mu, 0, p0, 60, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1, 5, 10, 20, 40, 59} {
		a := und.At(tt)
		b := del.At(tt)
		if math.Abs(a.Q-b.Q) > 1e-6 || math.Abs(a.Lambda-b.Lambda) > 1e-6 {
			t.Fatalf("t=%v: undelayed %+v vs delayed(τ=0) %+v", tt, a, b)
		}
	}
}

// TestDelayedLimitCycle: positive delay produces a persistent cycle
// whose successive amplitudes stabilize (a limit cycle, not a
// divergence), per Section 7.
func TestDelayedLimitCycle(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	const mu = 10.0
	path, err := TraceExactDelayed(law, mu, 2.0, Point{Q: 0, Lambda: 2}, 800, 200000)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := path.Cycle()
	if !ok {
		t.Fatal("no cycle established")
	}
	if m.AmplitudeQ < 5 {
		t.Fatalf("cycle queue amplitude %v, want sustained oscillation", m.AmplitudeQ)
	}
	if !(m.Period > 0) {
		t.Fatalf("cycle period %v", m.Period)
	}
	// Late peaks must have stabilized (limit cycle, not growth).
	n := len(path.PeakLambdas)
	if n < 5 {
		t.Fatalf("only %d peaks", n)
	}
	p1, p2 := path.PeakLambdas[n-2], path.PeakLambdas[n-1]
	if math.Abs(p2-p1)/p1 > 0.02 {
		t.Fatalf("late peaks %v -> %v still moving", p1, p2)
	}
}

// TestDelayedAmplitudeGrowsWithTau: the cycle amplitude must increase
// with the feedback delay (E6's shape, here to machine precision).
func TestDelayedAmplitudeGrowsWithTau(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	const mu = 10.0
	var prev float64
	for i, tau := range []float64{0.5, 1, 2, 4} {
		path, err := TraceExactDelayed(law, mu, tau, Point{Q: 0, Lambda: 2}, 1000, 200000)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := path.Cycle()
		if !ok {
			t.Fatalf("τ=%v: no cycle", tau)
		}
		if i > 0 && m.AmplitudeQ <= prev {
			t.Fatalf("amplitude not increasing: τ=%v gives %v after %v", tau, m.AmplitudeQ, prev)
		}
		prev = m.AmplitudeQ
	}
}

// TestDelayedMatchesDDE: the exact tracer and the numeric DDE (fluid
// package) must agree on the limit-cycle swing.
func TestDelayedMatchesDDE(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	const mu = 10.0
	const tau = 2.0
	path, err := TraceExactDelayed(law, mu, tau, Point{Q: 0, Lambda: 2}, 800, 200000)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := path.Cycle()
	if !ok {
		t.Fatal("no cycle from exact tracer")
	}
	fm := fluid.Model{Mu: mu, Q0: 0, Sources: []fluid.Source{{Law: law, Delay: tau, Lambda0: 2}}}
	sol, err := fm.Solve(800, 1e-3, 10)
	if err != nil {
		t.Fatal(err)
	}
	ts, qs := sol.Queue()
	var lo, hi = math.Inf(1), math.Inf(-1)
	for i, tt := range ts {
		if tt < 600 {
			continue
		}
		lo = math.Min(lo, qs[i])
		hi = math.Max(hi, qs[i])
	}
	ddeSwing := hi - lo
	if math.Abs(m.AmplitudeQ-ddeSwing)/ddeSwing > 0.05 {
		t.Fatalf("exact cycle amplitude %v vs DDE swing %v", m.AmplitudeQ, ddeSwing)
	}
}

// TestDelayedQueueNonNegative: the exact delayed path never dips below
// an empty queue, across delays and starts.
func TestDelayedQueueNonNegative(t *testing.T) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	for _, tau := range []float64{0.5, 2, 5} {
		path, err := TraceExactDelayed(law, 10, tau, Point{Q: 50, Lambda: 0}, 400, 100000)
		if err != nil {
			t.Fatal(err)
		}
		_, pts := path.Sample(4000)
		for i, p := range pts {
			if p.Q < -1e-9 {
				t.Fatalf("τ=%v: negative queue %v at sample %d", tau, p.Q, i)
			}
			if p.Lambda < -1e-9 {
				t.Fatalf("τ=%v: negative rate %v at sample %d", tau, p.Lambda, i)
			}
		}
	}
}

func BenchmarkTraceExactDelayed(b *testing.B) {
	law := control.AIMD{C0: 2, C1: 0.8, QHat: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TraceExactDelayed(law, 10, 2, Point{Q: 0, Lambda: 2}, 400, 100000); err != nil {
			b.Fatal(err)
		}
	}
}
