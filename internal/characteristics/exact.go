package characteristics

import (
	"errors"
	"fmt"
	"math"

	"fpcc/internal/control"
)

// SegmentKind identifies the closed-form piece of an exact AIMD
// trajectory.
type SegmentKind int

const (
	// SegIncrease is a parabolic arc in the region q <= q̂:
	// λ(t) = λ0 + C0·t, q(t) = q0 + v0·t + C0·t²/2.
	SegIncrease SegmentKind = iota
	// SegDecrease is an exponential arc in the region q > q̂:
	// λ(t) = λ0·e^(−C1·t), q(t) = q0 + (λ0/C1)(1−e^(−C1·t)) − μ·t.
	SegDecrease
	// SegBoundary is the sticky empty-queue piece: q ≡ 0 while
	// λ(t) = λ0 + C0·t climbs back to μ (the paper's convention
	// η = 0 when Q = 0, λ < μ).
	SegBoundary
	// SegSteady is the fixed point (q̂, μ): the trajectory has reached
	// Theorem 1's limit and stays put (a Filippov sliding
	// equilibrium of the piecewise field).
	SegSteady
)

// String implements fmt.Stringer.
func (k SegmentKind) String() string {
	switch k {
	case SegIncrease:
		return "increase"
	case SegDecrease:
		return "decrease"
	case SegBoundary:
		return "boundary"
	case SegSteady:
		return "steady"
	default:
		return fmt.Sprintf("SegmentKind(%d)", int(k))
	}
}

// Segment is one closed-form piece of an exact trajectory, valid for
// local time in [0, Dur] measured from absolute time T0.
type Segment struct {
	Kind  SegmentKind
	T0    float64 // absolute start time
	Dur   float64 // duration (may be +Inf for a final segment)
	Start Point   // state at T0
	law   control.AIMD
	mu    float64
}

// At evaluates the segment at local time s in [0, Dur].
func (sg Segment) At(s float64) Point {
	switch sg.Kind {
	case SegIncrease:
		v0 := sg.Start.Lambda - sg.mu
		return Point{
			Q:      sg.Start.Q + v0*s + 0.5*sg.law.C0*s*s,
			Lambda: sg.Start.Lambda + sg.law.C0*s,
		}
	case SegDecrease:
		e := math.Exp(-sg.law.C1 * s)
		return Point{
			Q:      sg.Start.Q + sg.Start.Lambda/sg.law.C1*(1-e) - sg.mu*s,
			Lambda: sg.Start.Lambda * e,
		}
	case SegBoundary:
		return Point{Q: 0, Lambda: sg.Start.Lambda + sg.law.C0*s}
	case SegSteady:
		return sg.Start
	default:
		panic(fmt.Sprintf("characteristics: unknown segment kind %v", sg.Kind))
	}
}

// End returns the state at the end of the segment. It panics for an
// unbounded final segment.
func (sg Segment) End() Point {
	if math.IsInf(sg.Dur, 1) {
		panic("characteristics: End of unbounded segment")
	}
	return sg.At(sg.Dur)
}

// ExactPath is a piecewise-closed-form AIMD trajectory. Switching
// times between segments are located analytically (quadratic roots
// below the line, bracketed Newton/bisection above it), so the path
// carries no time-discretization error — this mirrors the paper's own
// Section 5 treatment, which solves d²q/dt² = C0 exactly between
// crossings.
type ExactPath struct {
	Law      control.AIMD
	Mu       float64
	Segments []Segment
}

// TotalTime returns the absolute end time of the path.
func (p *ExactPath) TotalTime() float64 {
	if len(p.Segments) == 0 {
		return 0
	}
	last := p.Segments[len(p.Segments)-1]
	return last.T0 + last.Dur
}

// At evaluates the path at absolute time t, clamping beyond the ends.
func (p *ExactPath) At(t float64) Point {
	if len(p.Segments) == 0 {
		return Point{}
	}
	if t <= p.Segments[0].T0 {
		return p.Segments[0].Start
	}
	for _, sg := range p.Segments {
		if t <= sg.T0+sg.Dur {
			return sg.At(t - sg.T0)
		}
	}
	last := p.Segments[len(p.Segments)-1]
	return last.At(last.Dur)
}

// Sample evaluates the path at n+1 evenly spaced times covering
// [0, TotalTime] and returns the times and points.
func (p *ExactPath) Sample(n int) (ts []float64, pts []Point) {
	if n < 1 {
		n = 1
	}
	total := p.TotalTime()
	ts = make([]float64, n+1)
	pts = make([]Point, n+1)
	for i := 0; i <= n; i++ {
		t := total * float64(i) / float64(n)
		ts[i] = t
		pts[i] = p.At(t)
	}
	return ts, pts
}

// UpCrossings returns, in order, the states at which the path crosses
// from the increase region into the decrease region (q rising through
// q̂ with λ > μ). These are the Poincaré-section hits used by
// Theorem 1's contraction argument.
func (p *ExactPath) UpCrossings() []Point {
	var out []Point
	for i, sg := range p.Segments {
		if sg.Kind == SegDecrease && i > 0 {
			out = append(out, sg.Start)
		}
	}
	return out
}

// ErrNoProgress is returned when the exact tracer cannot advance
// (degenerate parameters such as a trajectory starting and staying at
// the equilibrium).
var ErrNoProgress = errors.New("characteristics: trajectory made no progress")

// TraceExact integrates the AIMD system from p0 for at most maxTime
// seconds or maxSegments closed-form pieces, whichever comes first.
// The initial rate must be non-negative and q0 >= 0.
func TraceExact(law control.AIMD, mu float64, p0 Point, maxTime float64, maxSegments int) (*ExactPath, error) {
	switch {
	case !(mu > 0):
		return nil, fmt.Errorf("characteristics: service rate must be positive, got %v", mu)
	case p0.Q < 0 || p0.Lambda < 0:
		return nil, fmt.Errorf("characteristics: invalid initial state %+v", p0)
	case !(maxTime > 0):
		return nil, fmt.Errorf("characteristics: non-positive horizon %v", maxTime)
	case maxSegments < 1:
		return nil, fmt.Errorf("characteristics: need at least one segment, got %d", maxSegments)
	}
	path := &ExactPath{Law: law, Mu: mu}
	cur := p0
	t := 0.0
	atEquilibrium := func(p Point) bool {
		return math.Abs(p.Q-law.QHat) < 1e-12*(1+law.QHat) &&
			math.Abs(p.Lambda-mu) < 1e-12*(1+mu)
	}
	for len(path.Segments) < maxSegments && t < maxTime {
		// At the (Filippov sliding) fixed point the trajectory stays
		// put forever; emit a single steady segment.
		if atEquilibrium(cur) {
			path.Segments = append(path.Segments, Segment{
				Kind: SegSteady, T0: t, Dur: maxTime - t,
				Start: Point{Q: law.QHat, Lambda: mu}, law: law, mu: mu,
			})
			break
		}
		sg, err := nextSegment(law, mu, cur, t)
		if err != nil {
			return path, err
		}
		if sg.Dur <= 0 {
			return path, ErrNoProgress
		}
		if t+sg.Dur > maxTime {
			sg.Dur = maxTime - t
			path.Segments = append(path.Segments, sg)
			break
		}
		path.Segments = append(path.Segments, sg)
		t += sg.Dur
		cur = sg.End()
		// Snap tiny numerical residue onto the switching manifolds so
		// the next segment classifies cleanly.
		if math.Abs(cur.Q-law.QHat) < 1e-12*(1+law.QHat) {
			cur.Q = law.QHat
		}
		if cur.Q < 1e-12*(1+law.QHat) {
			cur.Q = 0
		}
		if cur.Lambda < 0 {
			cur.Lambda = 0
		}
	}
	if len(path.Segments) == 0 {
		return path, ErrNoProgress
	}
	return path, nil
}

// nextSegment constructs the closed-form segment leaving state cur at
// absolute time t0, with its exact duration to the next switching
// event.
func nextSegment(law control.AIMD, mu float64, cur Point, t0 float64) (Segment, error) {
	qHat := law.QHat
	switch {
	case cur.Q <= 0 && cur.Lambda < mu:
		// Sticky empty queue: λ climbs at C0 until it reaches μ.
		dur := (mu - cur.Lambda) / law.C0
		return Segment{Kind: SegBoundary, T0: t0, Dur: dur, Start: Point{Q: 0, Lambda: cur.Lambda}, law: law, mu: mu}, nil

	case cur.Q < qHat || (cur.Q == qHat && cur.Lambda <= mu):
		// Increase region: parabola until q = q̂ (rising) or q = 0
		// (falling with λ < μ). A point exactly on the switching line
		// moving upward (λ > μ) belongs to the decrease region: for
		// any t > 0 it has q > q̂.
		dur, err := increaseExitTime(law, mu, cur)
		if err != nil {
			return Segment{}, err
		}
		return Segment{Kind: SegIncrease, T0: t0, Dur: dur, Start: cur, law: law, mu: mu}, nil

	default:
		// Decrease region (q > q̂, or q = q̂ rising): exponential arc
		// until q falls back to q̂.
		dur, err := decreaseExitTime(law, mu, cur)
		if err != nil {
			return Segment{}, err
		}
		return Segment{Kind: SegDecrease, T0: t0, Dur: dur, Start: cur, law: law, mu: mu}, nil
	}
}

// increaseExitTime returns the first positive time at which the
// parabola q(t) = q0 + v0 t + C0 t²/2 exits the increase region:
// either it rises to q̂ or it falls to 0 with v < 0 (only possible when
// v0 < 0).
func increaseExitTime(law control.AIMD, mu float64, cur Point) (float64, error) {
	c0 := law.C0
	v0 := cur.Lambda - mu
	// Candidate 1: q(t) = q̂, i.e. (C0/2)t² + v0 t + (q0 − q̂) = 0.
	tHat := smallestPositiveRoot(0.5*c0, v0, cur.Q-law.QHat)
	// Candidate 2 (only when falling): q(t) = 0.
	tZero := math.Inf(1)
	if v0 < 0 && cur.Q > 0 {
		tZero = smallestPositiveRoot(0.5*c0, v0, cur.Q)
	}
	dur := math.Min(tHat, tZero)
	if math.IsInf(dur, 1) {
		return 0, fmt.Errorf("characteristics: increase segment from %+v never exits", cur)
	}
	return dur, nil
}

// smallestPositiveRoot returns the smallest strictly positive root of
// a·t² + b·t + c = 0, or +Inf when none exists. A tiny positive root
// caused by starting exactly on the manifold is rejected only when the
// trajectory is moving away from it, which the quadratic handles
// naturally via root ordering.
func smallestPositiveRoot(a, b, c float64) float64 {
	const eps = 1e-14
	if a == 0 {
		if b == 0 {
			return math.Inf(1)
		}
		t := -c / b
		if t > eps {
			return t
		}
		return math.Inf(1)
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return math.Inf(1)
	}
	sq := math.Sqrt(disc)
	// Numerically stable quadratic roots.
	var t1, t2 float64
	if b >= 0 {
		t1 = (-b - sq) / (2 * a)
		t2 = 2 * c / (-b - sq)
	} else {
		t1 = 2 * c / (-b + sq)
		t2 = (-b + sq) / (2 * a)
	}
	lo, hi := math.Min(t1, t2), math.Max(t1, t2)
	if lo > eps {
		return lo
	}
	if hi > eps {
		return hi
	}
	return math.Inf(1)
}

// decreaseExitTime returns the time for the exponential arc to fall
// back to q = q̂. The arc is q(t) = q0 + (λ0/C1)(1−e^(−C1 t)) − μ t
// with q0 >= q̂; q first rises while λ > μ, peaks at
// t* = ln(λ0/μ)/C1, then decreases without bound, so a crossing
// always exists. Located by doubling bracket + bisection, polished
// with Newton steps.
func decreaseExitTime(law control.AIMD, mu float64, cur Point) (float64, error) {
	c1 := law.C1
	q0, l0, qHat := cur.Q, cur.Lambda, law.QHat
	f := func(t float64) float64 {
		return q0 + l0/c1*(1-math.Exp(-c1*t)) - mu*t - qHat
	}
	// Start the bracket after the peak so f is decreasing on it.
	var tPeak float64
	if l0 > mu {
		tPeak = math.Log(l0/mu) / c1
	}
	lo := tPeak
	if f(lo) < 0 {
		// Entered the region already past the peak (e.g. started
		// inside with λ <= μ); the crossing is immediate unless q0 > q̂.
		if q0 <= qHat {
			return 0, fmt.Errorf("characteristics: decrease segment started outside its region: %+v", cur)
		}
		lo = 0
	}
	hi := math.Max(lo, 1/c1)
	for f(hi) > 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("characteristics: no return crossing found from %+v", cur)
		}
	}
	// Bisection to a tight bracket.
	for i := 0; i < 200 && hi-lo > 1e-14*(1+hi); i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := 0.5 * (lo + hi)
	if !(t > 0) || math.IsNaN(t) {
		return 0, fmt.Errorf("characteristics: invalid decrease exit time %v from %+v", t, cur)
	}
	return t, nil
}
