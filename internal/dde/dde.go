// Package dde integrates delay differential equations (DDEs) of the
// form
//
//	dy/dt = f(t, y(t), y(t−τ₁), y(t−τ₂), ...)
//
// with constant delays, which is exactly the structure of Section 7 of
// the paper: the sender adjusts its rate from the queue length it
// observed one feedback delay ago,
//
//	dλ/dt = g(Q(t−τ), λ(t)),    dQ/dt = λ(t) − μ.
//
// The integrator is the method of steps with a fixed-step RK4 core: a
// dense history of past states is kept, and delayed values are read by
// linear interpolation between stored samples. Stage evaluations may
// only look back at least one step (the step size must not exceed the
// smallest delay), which keeps the scheme explicit.
package dde

import (
	"fmt"
	"math"
	"sort"
)

// Lagger provides access to past state values during integration.
type Lagger interface {
	// Lag returns component i of the state at time t−delay, where t is
	// the time of the current right-hand-side evaluation. delay must
	// be >= the solver's step size (checked at Solve time for the
	// declared delays).
	Lag(i int, delay float64) float64
}

// System is the right-hand side of a DDE: it writes dy/dt into dydt,
// reading the current state from y and past states through lag.
// Implementations must not retain the slices or the Lagger.
type System func(t float64, y []float64, lag Lagger, dydt []float64)

// History supplies the pre-initial state: y(t) for t <= t0.
type History func(t float64) []float64

// buffer is the dense solution history: strictly increasing times with
// their states, pruned to the lookback window.
type buffer struct {
	times   []float64
	states  [][]float64
	history History
	t0      float64
	curT    float64 // time of the current RHS evaluation
}

// Lag implements Lagger via binary search + linear interpolation.
func (b *buffer) Lag(i int, delay float64) float64 {
	t := b.curT - delay
	if t <= b.t0 {
		return b.history(t)[i]
	}
	// Find the first stored time >= t.
	k := sort.SearchFloat64s(b.times, t)
	if k == 0 {
		return b.states[0][i]
	}
	if k >= len(b.times) {
		// Delayed time beyond the newest sample can only happen by a
		// rounding hair when delay == step; clamp to the newest.
		return b.states[len(b.states)-1][i]
	}
	tL, tR := b.times[k-1], b.times[k]
	yL, yR := b.states[k-1][i], b.states[k][i]
	if tR == tL {
		return yR
	}
	frac := (t - tL) / (tR - tL)
	return yL + frac*(yR-yL)
}

// append stores a sample.
func (b *buffer) append(t float64, y []float64) {
	b.times = append(b.times, t)
	b.states = append(b.states, append([]float64(nil), y...))
}

// prune drops samples older than keepBefore, retaining one sample at
// or before it so interpolation at the window edge stays valid.
func (b *buffer) prune(keepBefore float64) {
	k := sort.SearchFloat64s(b.times, keepBefore)
	if k <= 1 {
		return
	}
	drop := k - 1
	b.times = append(b.times[:0], b.times[drop:]...)
	b.states = append(b.states[:0], b.states[drop:]...)
}

// Result holds the sampled DDE solution.
type Result struct {
	Times  []float64
	States [][]float64
}

// Len returns the number of samples.
func (r *Result) Len() int { return len(r.Times) }

// At returns sample i.
func (r *Result) At(i int) (float64, []float64) { return r.Times[i], r.States[i] }

// Last returns the final sample. It panics on an empty result.
func (r *Result) Last() (float64, []float64) {
	n := len(r.Times)
	return r.Times[n-1], r.States[n-1]
}

// Options configures Solve.
type Options struct {
	// Stride records every Stride-th accepted step into the Result
	// (plus the first and last). Zero means 1 (record every step).
	Stride int
	// Clamp, if non-nil, is applied to the state after every step —
	// used to enforce q >= 0 and λ >= 0 in the congestion systems.
	Clamp func(y []float64)
}

// Solve integrates the DDE from t0 to t1 with fixed RK4 steps of size
// h. delays must list every delay the system will request (used to
// validate h and to size the history window); history provides y(t)
// for t <= t0 (and y(t0) itself is history(t0)).
func Solve(f System, history History, delays []float64, t0, t1, h float64, opts Options) (*Result, error) {
	switch {
	case !(h > 0):
		return nil, fmt.Errorf("dde: non-positive step %v", h)
	case t1 < t0:
		return nil, fmt.Errorf("dde: reversed interval [%v, %v]", t0, t1)
	case history == nil:
		return nil, fmt.Errorf("dde: nil history")
	}
	maxDelay := 0.0
	for _, d := range delays {
		if !(d >= 0) {
			return nil, fmt.Errorf("dde: negative delay %v", d)
		}
		if d > 0 && d < h {
			return nil, fmt.Errorf("dde: step %v exceeds delay %v; the method of steps requires h <= min delay", h, d)
		}
		if d > maxDelay {
			maxDelay = d
		}
	}
	stride := opts.Stride
	if stride <= 0 {
		stride = 1
	}

	y0 := history(t0)
	dim := len(y0)
	y := append([]float64(nil), y0...)
	buf := &buffer{history: history, t0: t0}
	buf.append(t0, y)

	res := &Result{}
	record := func(t float64, y []float64) {
		res.Times = append(res.Times, t)
		res.States = append(res.States, append([]float64(nil), y...))
	}
	record(t0, y)

	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)

	eval := func(t float64, y, dydt []float64) {
		buf.curT = t
		f(t, y, buf, dydt)
	}

	t := t0
	step := 0
	for t < t1 {
		hh := h
		if t+hh > t1 {
			hh = t1 - t
		}
		if hh < 1e-15*(1+math.Abs(t)) {
			break
		}
		eval(t, y, k1)
		for i := 0; i < dim; i++ {
			tmp[i] = y[i] + 0.5*hh*k1[i]
		}
		eval(t+0.5*hh, tmp, k2)
		for i := 0; i < dim; i++ {
			tmp[i] = y[i] + 0.5*hh*k2[i]
		}
		eval(t+0.5*hh, tmp, k3)
		for i := 0; i < dim; i++ {
			tmp[i] = y[i] + hh*k3[i]
		}
		eval(t+hh, tmp, k4)
		for i := 0; i < dim; i++ {
			y[i] += hh / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += hh
		if opts.Clamp != nil {
			opts.Clamp(y)
		}
		buf.append(t, y)
		step++
		if step%stride == 0 || t >= t1 {
			record(t, y)
		}
		// Keep the history window: everything older than maxDelay plus
		// a couple of steps can go.
		if maxDelay > 0 && step%256 == 0 {
			buf.prune(t - maxDelay - 2*h)
		}
	}
	if res.Times[len(res.Times)-1] < t {
		record(t, y)
	}
	return res, nil
}
