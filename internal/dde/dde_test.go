package dde

import (
	"math"
	"testing"
	"testing/quick"
)

// TestNoDelayMatchesODE: with all lags reading far-past constant
// history the DDE reduces to an ODE we can check in closed form:
// dy/dt = -y, y(0) = 1.
func TestNoDelayMatchesODE(t *testing.T) {
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) {
		dydt[0] = -y[0]
	}
	hist := func(tt float64) []float64 { return []float64{1} }
	res, err := Solve(f, hist, nil, 0, 2, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, y := res.Last()
	if want := math.Exp(-2); math.Abs(y[0]-want) > 1e-9 {
		t.Fatalf("y(2) = %v, want %v", y[0], want)
	}
}

// TestLinearDelayEquation solves dy/dt = -y(t-1) with constant
// history y(t) = 1 for t <= 0. On [0, 1] the exact solution is
// y(t) = 1 - t; on [1, 2] it is y(t) = 1 - t + (t-1)²/2.
func TestLinearDelayEquation(t *testing.T) {
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) {
		dydt[0] = -lag.Lag(0, 1)
	}
	hist := func(tt float64) []float64 { return []float64{1} }
	res, err := Solve(f, hist, []float64{1}, 0, 2, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact := func(tt float64) float64 {
		if tt <= 1 {
			return 1 - tt
		}
		return 1 - tt + (tt-1)*(tt-1)/2
	}
	for i := 0; i < res.Len(); i += 100 {
		tt, y := res.At(i)
		if want := exact(tt); math.Abs(y[0]-want) > 1e-6 {
			t.Fatalf("y(%v) = %v, want %v", tt, y[0], want)
		}
	}
	_, yEnd := res.Last()
	if want := exact(2.0); math.Abs(yEnd[0]-want) > 1e-6 {
		t.Fatalf("y(2) = %v, want %v", yEnd[0], want)
	}
}

// TestHayesOscillation: dy/dt = -(pi/2)·y(t-1) is the classical
// marginally oscillatory case (Hayes criterion): the solution tends to
// cos-like sustained oscillation. Check that it oscillates (multiple
// sign changes) rather than decaying to zero quickly.
func TestHayesOscillation(t *testing.T) {
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) {
		dydt[0] = -math.Pi / 2 * lag.Lag(0, 1)
	}
	hist := func(tt float64) []float64 { return []float64{1} }
	res, err := Solve(f, hist, []float64{1}, 0, 30, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	signChanges := 0
	prev := 1.0
	maxLate := 0.0
	for i := 0; i < res.Len(); i++ {
		tt, y := res.At(i)
		if y[0]*prev < 0 {
			signChanges++
		}
		if y[0] != 0 {
			prev = y[0]
		}
		if tt > 20 && math.Abs(y[0]) > maxLate {
			maxLate = math.Abs(y[0])
		}
	}
	if signChanges < 10 {
		t.Fatalf("only %d sign changes, want sustained oscillation", signChanges)
	}
	// Marginal case: amplitude persists (neither exploding nor dying).
	if maxLate < 0.1 || maxLate > 10 {
		t.Fatalf("late amplitude %v, want O(1) sustained oscillation", maxLate)
	}
}

// TestDelayStabilityThreshold: for dy/dt = -a·y(t-1), solutions decay
// when a < pi/2 and grow when a > pi/2 (Hayes). Verify both sides.
func TestDelayStabilityThreshold(t *testing.T) {
	run := func(a float64) float64 {
		f := func(tt float64, y []float64, lag Lagger, dydt []float64) {
			dydt[0] = -a * lag.Lag(0, 1)
		}
		hist := func(tt float64) []float64 { return []float64{1} }
		res, err := Solve(f, hist, []float64{1}, 0, 40, 1e-3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		maxLate := 0.0
		for i := 0; i < res.Len(); i++ {
			tt, y := res.At(i)
			if tt > 30 && math.Abs(y[0]) > maxLate {
				maxLate = math.Abs(y[0])
			}
		}
		return maxLate
	}
	if amp := run(1.0); amp > 0.5 {
		t.Errorf("a=1.0 (stable side): late amplitude %v, want decay", amp)
	}
	if amp := run(2.2); amp < 2 {
		t.Errorf("a=2.2 (unstable side): late amplitude %v, want growth", amp)
	}
}

func TestSolveValidation(t *testing.T) {
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) { dydt[0] = 0 }
	hist := func(tt float64) []float64 { return []float64{0} }
	if _, err := Solve(f, hist, nil, 0, 1, 0, Options{}); err == nil {
		t.Error("accepted zero step")
	}
	if _, err := Solve(f, hist, nil, 1, 0, 0.1, Options{}); err == nil {
		t.Error("accepted reversed interval")
	}
	if _, err := Solve(f, nil, nil, 0, 1, 0.1, Options{}); err == nil {
		t.Error("accepted nil history")
	}
	if _, err := Solve(f, hist, []float64{-1}, 0, 1, 0.1, Options{}); err == nil {
		t.Error("accepted negative delay")
	}
	if _, err := Solve(f, hist, []float64{0.01}, 0, 1, 0.1, Options{}); err == nil {
		t.Error("accepted step larger than delay")
	}
}

func TestStrideRecording(t *testing.T) {
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) { dydt[0] = 1 }
	hist := func(tt float64) []float64 { return []float64{0} }
	dense, err := Solve(f, hist, nil, 0, 1, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Solve(f, hist, nil, 0, 1, 1e-3, Options{Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Len() >= dense.Len()/50 {
		t.Fatalf("stride 100 recorded %d samples vs dense %d", sparse.Len(), dense.Len())
	}
	// Both must end at the same final state.
	_, yd := dense.Last()
	_, ys := sparse.Last()
	if math.Abs(yd[0]-ys[0]) > 1e-12 {
		t.Fatalf("final states differ: %v vs %v", yd[0], ys[0])
	}
	td, _ := dense.Last()
	ts, _ := sparse.Last()
	if td != ts {
		t.Fatalf("final times differ: %v vs %v", td, ts)
	}
}

func TestClampOption(t *testing.T) {
	// dy/dt = -10 with clamp at zero must stay non-negative.
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) { dydt[0] = -10 }
	hist := func(tt float64) []float64 { return []float64{1} }
	res, err := Solve(f, hist, nil, 0, 1, 1e-3, Options{
		Clamp: func(y []float64) {
			if y[0] < 0 {
				y[0] = 0
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		_, y := res.At(i)
		if y[0] < 0 {
			t.Fatalf("clamped state went negative: %v", y[0])
		}
	}
	_, yEnd := res.Last()
	if yEnd[0] != 0 {
		t.Fatalf("final state %v, want 0", yEnd[0])
	}
}

// TestHistoryIsUsed: a lag reaching before t0 must read the supplied
// history function, including time dependence.
func TestHistoryIsUsed(t *testing.T) {
	// dy/dt = y(t-2); history y(t) = t for t <= 0, y(0) = 0.
	// On [0, 2]: dy/dt = t - 2, y(t) = t²/2 - 2t.
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) {
		dydt[0] = lag.Lag(0, 2)
	}
	hist := func(tt float64) []float64 { return []float64{tt} }
	res, err := Solve(f, hist, []float64{2}, 0, 2, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, y := res.Last()
	if want := 2.0*2/2 - 2*2; math.Abs(y[0]-want) > 1e-6 {
		t.Fatalf("y(2) = %v, want %v", y[0], want)
	}
}

// TestPruningKeepsAccuracy: a long integration with pruning enabled
// must agree with the closed-form solution at the end (the window
// retains everything the lags need).
func TestPruningKeepsAccuracy(t *testing.T) {
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) {
		dydt[0] = -0.5 * lag.Lag(0, 1)
	}
	hist := func(tt float64) []float64 { return []float64{1} }
	res, err := Solve(f, hist, []float64{1}, 0, 100, 1e-3, Options{Stride: 50})
	if err != nil {
		t.Fatal(err)
	}
	// a = 0.5 < pi/2 is asymptotically stable: solution decays.
	_, y := res.Last()
	if math.Abs(y[0]) > 1e-3 {
		t.Fatalf("y(100) = %v, want decay toward 0", y[0])
	}
}

// Property: two-component uncoupled system integrates each component
// independently (lag bookkeeping does not cross wires).
func TestComponentIndependenceProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%20)/10 + 0.1
		b := float64(bRaw%20)/10 + 0.1
		sys := func(tt float64, y []float64, lag Lagger, dydt []float64) {
			dydt[0] = -a * lag.Lag(0, 0.5)
			dydt[1] = -b * lag.Lag(1, 0.5)
		}
		hist := func(tt float64) []float64 { return []float64{1, 2} }
		res, err := Solve(sys, hist, []float64{0.5, 0.5}, 0, 3, 1e-3, Options{})
		if err != nil {
			return false
		}
		// Solve each scalar equation separately and compare.
		solo := func(coef, y0 float64) float64 {
			s := func(tt float64, y []float64, lag Lagger, dydt []float64) {
				dydt[0] = -coef * lag.Lag(0, 0.5)
			}
			h := func(tt float64) []float64 { return []float64{y0} }
			r, err := Solve(s, h, []float64{0.5}, 0, 3, 1e-3, Options{})
			if err != nil {
				return math.NaN()
			}
			_, y := r.Last()
			return y[0]
		}
		_, y := res.Last()
		return math.Abs(y[0]-solo(a, 1)) < 1e-9 && math.Abs(y[1]-solo(b, 2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveDelayed(b *testing.B) {
	f := func(tt float64, y []float64, lag Lagger, dydt []float64) {
		dydt[0] = -lag.Lag(0, 1)
	}
	hist := func(tt float64) []float64 { return []float64{1} }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(f, hist, []float64{1}, 0, 10, 1e-3, Options{Stride: 100}); err != nil {
			b.Fatal(err)
		}
	}
}
