package netsim

import (
	"fmt"
	"math"
)

// Topology is the node/link graph underneath a network scenario,
// factored out of Config so every engine that carries traffic over
// routes shares one validation and path-delay vocabulary: the
// packet-level simulator here routes its Flows over it, and the
// networked mean-field engine (internal/netmf) routes its large-N
// source classes over the same graph.
type Topology struct {
	Nodes []Node
	Links []Link
}

// linkKey indexes the delay table by directed edge.
type linkKey struct{ from, to int }

// linkTable builds the directed-edge -> delay lookup, rejecting
// duplicate edges.
func (tp *Topology) linkTable() (map[linkKey]float64, error) {
	tab := make(map[linkKey]float64, len(tp.Links))
	for i, l := range tp.Links {
		if l.From < 0 || l.From >= len(tp.Nodes) || l.To < 0 || l.To >= len(tp.Nodes) {
			return nil, fmt.Errorf("link %d endpoints (%d -> %d) out of range", i, l.From, l.To)
		}
		if l.From == l.To {
			return nil, fmt.Errorf("link %d is a self-loop at node %d", i, l.From)
		}
		if !(l.Delay >= 0) || math.IsInf(l.Delay, 1) {
			return nil, fmt.Errorf("link %d has invalid delay %v", i, l.Delay)
		}
		k := linkKey{l.From, l.To}
		if _, dup := tab[k]; dup {
			return nil, fmt.Errorf("duplicate link %d -> %d", l.From, l.To)
		}
		tab[k] = l.Delay
	}
	return tab, nil
}

// Validate checks the graph: every node needs a positive service rate
// and a non-negative buffer, and the link list must index existing
// nodes without self-loops or duplicates.
func (tp *Topology) Validate() error {
	if len(tp.Nodes) == 0 {
		return fmt.Errorf("no nodes")
	}
	for i, n := range tp.Nodes {
		if !(n.Mu > 0) || math.IsInf(n.Mu, 1) {
			return fmt.Errorf("node %d service rate must be positive, got %v", i, n.Mu)
		}
		if n.Buffer < 0 {
			return fmt.Errorf("node %d has negative buffer %d", i, n.Buffer)
		}
	}
	_, err := tp.linkTable()
	return err
}

// ValidateRoute checks that route is non-empty, stays inside the node
// range, and that every consecutive hop pair is connected by a link.
// Callers validating many routes should build the link table once and
// use validateRouteIn (inside the package) — this convenience form
// rebuilds it per call.
func (tp *Topology) ValidateRoute(route []int) error {
	tab, err := tp.linkTable()
	if err != nil {
		return err
	}
	return tp.validateRouteIn(tab, route)
}

// validateRouteIn is ValidateRoute against a pre-built link table.
func (tp *Topology) validateRouteIn(tab map[linkKey]float64, route []int) error {
	if len(route) == 0 {
		return fmt.Errorf("empty route")
	}
	for _, h := range route {
		if h < 0 || h >= len(tp.Nodes) {
			return fmt.Errorf("route node %d out of range", h)
		}
	}
	for k := 0; k+1 < len(route); k++ {
		if _, ok := tab[linkKey{route[k], route[k+1]}]; !ok {
			return fmt.Errorf("route hop %d -> %d has no link", route[k], route[k+1])
		}
	}
	return nil
}

// PathDelay returns the summed one-way propagation delay of the links
// along route (0 for a single-node route).
func (tp *Topology) PathDelay(route []int) (float64, error) {
	tab, err := tp.linkTable()
	if err != nil {
		return 0, err
	}
	return pathDelayIn(tab, route)
}

// pathDelayIn is PathDelay against a pre-built link table.
func pathDelayIn(tab map[linkKey]float64, route []int) (float64, error) {
	var d float64
	for k := 0; k+1 < len(route); k++ {
		ld, ok := tab[linkKey{route[k], route[k+1]}]
		if !ok {
			return 0, fmt.Errorf("route hop %d -> %d has no link", route[k], route[k+1])
		}
		d += ld
	}
	return d, nil
}

// NodeName returns the display name of node h.
func (tp *Topology) NodeName(h int) string {
	if h >= 0 && h < len(tp.Nodes) && tp.Nodes[h].Name != "" {
		return tp.Nodes[h].Name
	}
	return fmt.Sprintf("N%d", h)
}
