package netsim

import (
	"math"
	"testing"

	"fpcc/internal/control"
	"fpcc/internal/des"
)

func testLaw(t *testing.T) control.AIMD {
	t.Helper()
	law, err := control.NewAIMD(10, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	return law
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestValidateErrors(t *testing.T) {
	law := testLaw(t)
	node := Node{Mu: 60}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no nodes", Config{Flows: []Flow{{Law: law, Route: []int{0}, Interval: 1}}}},
		{"bad mu", Config{Nodes: []Node{{Mu: 0}}, Flows: []Flow{{Law: law, Route: []int{0}, Interval: 1}}}},
		{"negative buffer", Config{Nodes: []Node{{Mu: 60, Buffer: -1}}, Flows: []Flow{{Law: law, Route: []int{0}, Interval: 1}}}},
		{"no flows", Config{Nodes: []Node{node}}},
		{"nil law", Config{Nodes: []Node{node}, Flows: []Flow{{Route: []int{0}, Interval: 1}}}},
		{"empty route", Config{Nodes: []Node{node}, Flows: []Flow{{Law: law, Interval: 1}}}},
		{"route out of range", Config{Nodes: []Node{node}, Flows: []Flow{{Law: law, Route: []int{1}, Interval: 1}}}},
		{"unlinked hop pair", Config{Nodes: []Node{node, node}, Flows: []Flow{{Law: law, Route: []int{0, 1}, Interval: 1}}}},
		{"link out of range", Config{Nodes: []Node{node}, Links: []Link{{From: 0, To: 3}}, Flows: []Flow{{Law: law, Route: []int{0}, Interval: 1}}}},
		{"self-loop link", Config{Nodes: []Node{node}, Links: []Link{{From: 0, To: 0}}, Flows: []Flow{{Law: law, Route: []int{0}, Interval: 1}}}},
		{"duplicate link", Config{Nodes: []Node{node, node}, Links: []Link{{From: 0, To: 1}, {From: 0, To: 1}}, Flows: []Flow{{Law: law, Route: []int{0}, Interval: 1}}}},
		{"zero interval zero rtt", Config{Nodes: []Node{node}, Flows: []Flow{{Law: law, Route: []int{0}}}}},
		{"negative feedback delay", Config{Nodes: []Node{node}, Flows: []Flow{{Law: law, Route: []int{0}, Interval: 1, FeedbackDelay: -1}}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
	good := Config{
		Nodes: []Node{node, node},
		Links: []Link{{From: 0, To: 1, Delay: 0.01}},
		Flows: []Flow{{Law: law, Route: []int{0, 1}, Interval: 0.05}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestSingleNodeMatchesEngine holds the degenerate one-node topology
// to the seed simulator it generalizes: same seed, same sources, the
// mean queue length and total throughput must agree within 1%.
func TestSingleNodeMatchesEngine(t *testing.T) {
	law := testLaw(t)
	const (
		mu      = 60.0
		seed    = 42
		horizon = 4000.0
		warmup  = 400.0
	)
	mkSource := func(delay float64) des.SourceConfig {
		return des.SourceConfig{Law: law, Delay: delay, Interval: 0.05, Lambda0: 15, MinRate: 0.5}
	}
	engine, err := des.New(des.Config{
		Mu: mu, Seed: seed,
		Sources: []des.SourceConfig{mkSource(0.1), mkSource(0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	engRes, err := engine.Run(horizon, warmup)
	if err != nil {
		t.Fatal(err)
	}

	mkFlow := func(delay float64) Flow {
		return Flow{Law: law, Route: []int{0}, FeedbackDelay: delay, Interval: 0.05, Lambda0: 15, MinRate: 0.5}
	}
	sim, err := New(Config{
		Nodes: []Node{{Mu: mu}},
		Seed:  seed,
		Flows: []Flow{mkFlow(0.1), mkFlow(0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	netRes, err := sim.Run(horizon, warmup)
	if err != nil {
		t.Fatal(err)
	}

	if d := relDiff(engRes.QueueStats.Mean(), netRes.NodeQueue[0].Mean()); d > 0.01 {
		t.Errorf("mean queue: engine %.4f vs netsim %.4f (diff %.2f%%)",
			engRes.QueueStats.Mean(), netRes.NodeQueue[0].Mean(), 100*d)
	}
	var engTp, netTp float64
	for i := range engRes.Throughput {
		engTp += engRes.Throughput[i]
		netTp += netRes.Throughput[i]
	}
	if d := relDiff(engTp, netTp); d > 0.01 {
		t.Errorf("total throughput: engine %.4f vs netsim %.4f (diff %.2f%%)", engTp, netTp, 100*d)
	}
}

// TestTwoHopMatchesTandem holds a linear two-hop topology to
// des.TandemSim: same hops, flows and seed, per-flow throughput and
// per-hop mean backlog must agree within a few percent (the two
// simulators consume their rng streams differently — TandemSim shares
// one service stream across hops — so agreement is statistical, not
// bitwise).
func TestTwoHopMatchesTandem(t *testing.T) {
	if testing.Short() {
		t.Skip("long DES comparison")
	}
	law := testLaw(t)
	const (
		prop    = 0.02
		seed    = 7
		horizon = 6000.0
		warmup  = 600.0
	)
	tandem, err := des.NewTandem(des.TandemConfig{
		Mus:       []float64{80, 50},
		PropDelay: prop,
		Seed:      seed,
		Sources: []des.TandemSource{
			{Law: law, Path: []int{0, 1}, Lambda0: 10, MinRate: 0.5},
			{Law: law, Path: []int{1}, Lambda0: 10, MinRate: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tanRes, err := tandem.Run(horizon, warmup)
	if err != nil {
		t.Fatal(err)
	}

	// The netsim equivalent: TandemSim charges one PropDelay from the
	// sender to the first hop, one per inter-hop link, and defines
	// RTT = 2·PropDelay·len(path), observing the path backlog one RTT
	// late with once-per-RTT control.
	sim, err := New(Config{
		Nodes: []Node{{Mu: 80}, {Mu: 50}},
		Links: []Link{{From: 0, To: 1, Delay: prop}},
		Seed:  seed,
		Flows: []Flow{
			{
				Law: law, Route: []int{0, 1},
				IngressDelay: prop, ReturnDelay: 2 * prop,
				FeedbackDelay: 4 * prop, // = RTT
				Lambda0:       10, MinRate: 0.5,
			},
			{
				Law: law, Route: []int{1},
				IngressDelay: prop, ReturnDelay: prop,
				FeedbackDelay: 2 * prop, // = RTT
				Lambda0:       10, MinRate: 0.5,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4 * prop, 2 * prop} {
		if got := sim.RTT(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("flow %d RTT = %v, want %v", i, got, want)
		}
	}
	netRes, err := sim.Run(horizon, warmup)
	if err != nil {
		t.Fatal(err)
	}

	for i := range tanRes.Throughput {
		if d := relDiff(tanRes.Throughput[i], netRes.Throughput[i]); d > 0.05 {
			t.Errorf("flow %d throughput: tandem %.4f vs netsim %.4f (diff %.2f%%)",
				i, tanRes.Throughput[i], netRes.Throughput[i], 100*d)
		}
	}
	for h := range tanRes.MeanBacklog {
		if d := relDiff(tanRes.MeanBacklog[h], netRes.NodeQueue[h].Mean()); d > 0.10 {
			t.Errorf("hop %d mean backlog: tandem %.4f vs netsim %.4f (diff %.2f%%)",
				h, tanRes.MeanBacklog[h], netRes.NodeQueue[h].Mean(), 100*d)
		}
	}
}

// TestDeterminism: identical configs and seeds give identical results.
func TestDeterminism(t *testing.T) {
	law := testLaw(t)
	run := func() *Result {
		cfg, err := ParkingLot(ParkingLotConfig{
			Hops: 3, Mu: 40, Delay: 0.02, Law: law,
			Lambda0: 5, MinRate: 0.5, Buffer: 50, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(300, 30)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Throughput {
		if a.Throughput[i] != b.Throughput[i] {
			t.Errorf("flow %d throughput differs across identical runs: %v vs %v",
				i, a.Throughput[i], b.Throughput[i])
		}
		if a.Delivered[i] != b.Delivered[i] || a.Dropped[i] != b.Dropped[i] {
			t.Errorf("flow %d counters differ across identical runs", i)
		}
	}
	for h := range a.NodeQueue {
		if a.NodeQueue[h].Mean() != b.NodeQueue[h].Mean() {
			t.Errorf("node %d mean queue differs across identical runs", h)
		}
	}
}

// TestGatewayNodes runs a mixed-discipline topology: a RED-marking
// bottleneck behind a drop-tail transit hop. The RED gateway must
// keep the bottleneck queue near the law's target, well below the
// hard buffer.
func TestGatewayNodes(t *testing.T) {
	law := testLaw(t)
	red, err := des.NewREDGateway(4, 24, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Nodes: []Node{
			{Name: "transit", Mu: 200, Buffer: 100},
			{Name: "red", Mu: 50, Buffer: 100, Gateway: red},
		},
		Links: []Link{{From: 0, To: 1, Delay: 0.01}},
		Seed:  3,
		Flows: []Flow{
			{Law: law, Route: []int{0, 1}, IngressDelay: 0.01, ReturnDelay: 0.02,
				FeedbackDelay: 0.04, Lambda0: 10, MinRate: 0.5},
			{Law: law, Route: []int{1}, IngressDelay: 0.01, ReturnDelay: 0.01,
				FeedbackDelay: 0.02, Lambda0: 10, MinRate: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(800, 100)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, tp := range res.Throughput {
		if tp <= 0 {
			t.Fatalf("flow starved: throughputs %v", res.Throughput)
		}
		total += tp
	}
	if total > 50 {
		t.Errorf("total throughput %.2f exceeds bottleneck capacity 50", total)
	}
	if util := total / 50; util < 0.6 {
		t.Errorf("bottleneck utilization %.2f too low for a working control loop", util)
	}
	mean := res.NodeQueue[1].Mean()
	if mean <= 0 || mean > 40 {
		t.Errorf("RED bottleneck mean queue %.2f outside the early-marking regime (0, 40]", mean)
	}
}

// TestFiniteBufferDrops: an uncontrolled overload against a tiny
// buffer must record drops at the node and per flow, and deliver at
// most the service capacity.
func TestFiniteBufferDrops(t *testing.T) {
	sim, err := New(Config{
		Nodes: []Node{{Mu: 20, Buffer: 5}},
		Seed:  5,
		Flows: []Flow{{
			Law: ConstantRate(), Route: []int{0}, Interval: 1,
			Lambda0: 60, MinRate: 60,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(200, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped[0] == 0 || res.NodeDropped[0] != res.Dropped[0] {
		t.Errorf("expected drop-tail losses: flow %d, node %d", res.Dropped[0], res.NodeDropped[0])
	}
	if res.Throughput[0] > 20*1.05 {
		t.Errorf("throughput %.2f exceeds service rate 20", res.Throughput[0])
	}
	if mean := res.NodeQueue[0].Mean(); mean > 5 {
		t.Errorf("mean queue %v exceeded the buffer bound 5", mean)
	}
}

func TestFlowRTT(t *testing.T) {
	law := testLaw(t)
	cfg := Config{
		Nodes: []Node{{Mu: 10}, {Mu: 10}, {Mu: 10}},
		Links: []Link{{From: 0, To: 1, Delay: 0.1}, {From: 1, To: 2, Delay: 0.2}},
		Flows: []Flow{{
			Law: law, Route: []int{0, 1, 2},
			IngressDelay: 0.05, ReturnDelay: 0.15,
		}},
	}
	rtt, err := cfg.FlowRTT(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.05 + 0.1 + 0.2 + 0.15; math.Abs(rtt-want) > 1e-12 {
		t.Errorf("FlowRTT = %v, want %v", rtt, want)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
