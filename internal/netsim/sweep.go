package netsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"fpcc/internal/stats"
	"fpcc/internal/sweep"
)

// This file is the netsim client of the engine-agnostic sweep runner
// (internal/sweep): it maps one grid cell to a simulation Config,
// runs it, and aggregates per-flow throughput, fairness and per-node
// queue statistics. The worker pool, deterministic per-cell seeding,
// early abort and order-independent result assembly all live in
// internal/sweep; determinism under parallelism (byte-identical
// CSV/JSON for any worker count) is inherited from it.

// Param is one axis of the sweep grid.
type Param = sweep.Dim

// SweepConfig describes a parameter sweep.
type SweepConfig struct {
	// Params spans the grid; the cell count is the product of the
	// value counts. The last parameter varies fastest (row-major).
	Params []Param
	// Build maps one grid cell to a simulation Config. values[k] is
	// the value of Params[k] at this cell; seed is the cell's
	// deterministic seed and should be passed into Config.Seed.
	Build func(values []float64, seed uint64) (Config, error)
	// Horizon and Warmup are passed to every cell's Run.
	Horizon float64
	Warmup  float64
	// BaseSeed derives every cell seed; two sweeps with equal
	// BaseSeed and grid run identical simulations.
	BaseSeed uint64
	// Workers bounds the parallelism (0 means GOMAXPROCS).
	Workers int
}

// CellResult is the aggregate of one grid cell.
type CellResult struct {
	Index      int       `json:"index"`
	Values     []float64 `json:"values"`
	Seed       uint64    `json:"seed"`
	Throughput []float64 `json:"throughput"`
	Fairness   float64   `json:"fairness"`
	MeanQueue  []float64 `json:"mean_queue"`
	Delivered  int64     `json:"delivered"`
	Dropped    int64     `json:"dropped"`
}

// SweepResult holds every cell of a completed sweep in grid order.
type SweepResult struct {
	Params []Param      `json:"params"`
	Cells  []CellResult `json:"cells"`
}

// Sweep runs every cell of the grid and returns the results in grid
// order. Cells run concurrently on up to Workers goroutines; the
// result (and any error, which is reported for the lowest-indexed
// failing cell) is independent of the worker count. A failing cell
// stops the sweep early: already-claimed cells finish, unclaimed
// ones are never started.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("netsim: sweep has nil Build")
	}
	cells, err := sweep.Run(sweep.Config{
		Grid:     sweep.Grid{Dims: cfg.Params},
		BaseSeed: cfg.BaseSeed,
		Workers:  cfg.Workers,
	}, func(c sweep.Cell) (CellResult, error) {
		return runCell(cfg, c)
	})
	if err != nil {
		// CellErrors read "cell %d: ..." and want the "sweep" noun;
		// validation errors already carry the "sweep:" prefix.
		var ce *sweep.CellError
		if errors.As(err, &ce) {
			return nil, fmt.Errorf("netsim: sweep %w", err)
		}
		return nil, fmt.Errorf("netsim: %w", err)
	}
	return &SweepResult{Params: cfg.Params, Cells: cells}, nil
}

// runCell builds and runs one grid cell.
func runCell(cfg SweepConfig, c sweep.Cell) (CellResult, error) {
	simCfg, err := cfg.Build(c.Values, c.Seed)
	if err != nil {
		return CellResult{}, err
	}
	sim, err := New(simCfg)
	if err != nil {
		return CellResult{}, err
	}
	res, err := sim.Run(cfg.Horizon, cfg.Warmup)
	if err != nil {
		return CellResult{}, err
	}
	cell := CellResult{
		Index:      c.Index,
		Values:     c.Values,
		Seed:       c.Seed,
		Throughput: res.Throughput,
		Fairness:   finiteOrZero(stats.JainIndex(res.Throughput)),
		MeanQueue:  make([]float64, len(res.NodeQueue)),
	}
	for h := range res.NodeQueue {
		cell.MeanQueue[h] = finiteOrZero(res.NodeQueue[h].Mean())
	}
	for i := range res.Delivered {
		cell.Delivered += res.Delivered[i]
		cell.Dropped += res.Dropped[i]
	}
	return cell, nil
}

// finiteOrZero maps the NaN of an empty statistic (e.g. fairness of
// an all-zero allocation) to 0, keeping the aggregates JSON-encodable.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// generic converts the sweep into the generic emission schema, which
// owns the byte-stable CSV rendering.
func (r *SweepResult) generic() *sweep.Result {
	out := &sweep.Result{
		Dims:    r.Params,
		Columns: []string{"fairness", "delivered", "dropped", "throughput", "mean_queue"},
		Cells:   make([]sweep.CellRow, len(r.Cells)),
	}
	for i, c := range r.Cells {
		out.Cells[i] = sweep.CellRow{
			Index:  c.Index,
			Values: c.Values,
			Seed:   c.Seed,
			Row:    sweep.Row{c.Fairness, c.Delivered, c.Dropped, c.Throughput, c.MeanQueue},
		}
	}
	return out
}

// WriteCSV renders the sweep as CSV: one row per cell with the
// parameter values, the scalar aggregates, and the per-flow
// throughput and per-node mean-queue vectors joined with ';'.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	return r.generic().WriteCSV(w)
}

// WriteJSON renders the sweep as indented JSON.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
