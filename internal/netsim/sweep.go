package netsim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"fpcc/internal/rng"
	"fpcc/internal/stats"
)

// This file is the scenario-sweep runner: Sweep evaluates a
// simulation builder over every cell of an N-dimensional parameter
// grid, sharding cells across parallel workers. Determinism is
// preserved under parallelism: each cell gets a seed derived only
// from (BaseSeed, cell index), cells are mutually independent Sims,
// and results are stored by cell index — so the aggregate output is
// byte-identical for any worker count.

// Param is one axis of the sweep grid.
type Param struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// SweepConfig describes a parameter sweep.
type SweepConfig struct {
	// Params spans the grid; the cell count is the product of the
	// value counts. The last parameter varies fastest (row-major).
	Params []Param
	// Build maps one grid cell to a simulation Config. values[k] is
	// the value of Params[k] at this cell; seed is the cell's
	// deterministic seed and should be passed into Config.Seed.
	Build func(values []float64, seed uint64) (Config, error)
	// Horizon and Warmup are passed to every cell's Run.
	Horizon float64
	Warmup  float64
	// BaseSeed derives every cell seed; two sweeps with equal
	// BaseSeed and grid run identical simulations.
	BaseSeed uint64
	// Workers bounds the parallelism (0 means GOMAXPROCS).
	Workers int
}

// CellResult is the aggregate of one grid cell.
type CellResult struct {
	Index      int       `json:"index"`
	Values     []float64 `json:"values"`
	Seed       uint64    `json:"seed"`
	Throughput []float64 `json:"throughput"`
	Fairness   float64   `json:"fairness"`
	MeanQueue  []float64 `json:"mean_queue"`
	Delivered  int64     `json:"delivered"`
	Dropped    int64     `json:"dropped"`
}

// SweepResult holds every cell of a completed sweep in grid order.
type SweepResult struct {
	Params []Param      `json:"params"`
	Cells  []CellResult `json:"cells"`
}

// cellSeed derives the deterministic seed of cell idx from the base
// seed, one SplitMix64 step along the golden-ratio sequence per cell.
func cellSeed(base uint64, idx int) uint64 {
	return rng.Mix(base + 0x9e3779b97f4a7c15*uint64(idx))
}

// cellValues decodes cell idx into one value per parameter
// (row-major: the last parameter varies fastest).
func cellValues(params []Param, idx int) []float64 {
	vals := make([]float64, len(params))
	for k := len(params) - 1; k >= 0; k-- {
		n := len(params[k].Values)
		vals[k] = params[k].Values[idx%n]
		idx /= n
	}
	return vals
}

// Sweep runs every cell of the grid and returns the results in grid
// order. Cells run concurrently on up to Workers goroutines; the
// result (and any error, which is reported for the lowest-indexed
// failing cell) is independent of the worker count. A failing cell
// stops the sweep early: already-claimed cells finish, unclaimed
// ones are never started. Because cells are claimed in ascending
// index order, the lowest-indexed failure is always among the
// claimed cells, keeping the reported error deterministic.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Params) == 0 {
		return nil, fmt.Errorf("netsim: sweep has no parameters")
	}
	cells := 1
	for _, p := range cfg.Params {
		if p.Name == "" {
			return nil, fmt.Errorf("netsim: sweep parameter with empty name")
		}
		if len(p.Values) == 0 {
			return nil, fmt.Errorf("netsim: sweep parameter %q has no values", p.Name)
		}
		cells *= len(p.Values)
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("netsim: sweep has nil Build")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cells {
		workers = cells
	}

	results := make([]CellResult, cells)
	errs := make([]error, cells)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				idx := int(next.Add(1)) - 1
				if idx >= cells {
					return
				}
				results[idx], errs[idx] = runCell(cfg, idx)
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("netsim: sweep cell %d: %w", idx, err)
		}
	}
	return &SweepResult{Params: cfg.Params, Cells: results}, nil
}

// runCell builds and runs one grid cell.
func runCell(cfg SweepConfig, idx int) (CellResult, error) {
	vals := cellValues(cfg.Params, idx)
	seed := cellSeed(cfg.BaseSeed, idx)
	simCfg, err := cfg.Build(vals, seed)
	if err != nil {
		return CellResult{}, err
	}
	sim, err := New(simCfg)
	if err != nil {
		return CellResult{}, err
	}
	res, err := sim.Run(cfg.Horizon, cfg.Warmup)
	if err != nil {
		return CellResult{}, err
	}
	cell := CellResult{
		Index:      idx,
		Values:     vals,
		Seed:       seed,
		Throughput: res.Throughput,
		Fairness:   finiteOrZero(stats.JainIndex(res.Throughput)),
		MeanQueue:  make([]float64, len(res.NodeQueue)),
	}
	for h := range res.NodeQueue {
		cell.MeanQueue[h] = finiteOrZero(res.NodeQueue[h].Mean())
	}
	for i := range res.Delivered {
		cell.Delivered += res.Delivered[i]
		cell.Dropped += res.Dropped[i]
	}
	return cell, nil
}

// finiteOrZero maps the NaN of an empty statistic (e.g. fairness of
// an all-zero allocation) to 0, keeping the aggregates JSON-encodable.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// fmtFloat renders a float with full round-trip precision, so the
// text outputs are byte-stable across runs and worker counts.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV renders the sweep as CSV: one row per cell with the
// parameter values, the scalar aggregates, and the per-flow
// throughput and per-node mean-queue vectors joined with ';'.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cols := []string{"index"}
	for _, p := range r.Params {
		cols = append(cols, p.Name)
	}
	cols = append(cols, "fairness", "delivered", "dropped", "throughput", "mean_queue")
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{strconv.Itoa(c.Index)}
		for _, v := range c.Values {
			row = append(row, fmtFloat(v))
		}
		row = append(row,
			fmtFloat(c.Fairness),
			strconv.FormatInt(c.Delivered, 10),
			strconv.FormatInt(c.Dropped, 10),
			joinFloats(c.Throughput),
			joinFloats(c.MeanQueue),
		)
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the sweep as indented JSON.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// joinFloats renders a ';'-separated float list.
func joinFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmtFloat(v)
	}
	return strings.Join(parts, ";")
}
