package netsim

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"fpcc/internal/control"
	"fpcc/internal/sweep"
)

// sweepConfig64 is a 64-cell grid over (cross-traffic rate, C0) on
// the two-hop cross-traffic topology, small enough to run in tests.
func sweepConfig64(workers int) SweepConfig {
	return SweepConfig{
		Params: []Param{
			{Name: "cross", Values: []float64{0, 5, 10, 15, 20, 25, 30, 35}},
			{Name: "c0", Values: []float64{2, 4, 6, 8, 10, 12, 14, 16}},
		},
		Build: func(values []float64, seed uint64) (Config, error) {
			law, err := control.NewAIMD(values[1], 2, 12)
			if err != nil {
				return Config{}, err
			}
			return CrossChain(CrossChainConfig{
				Mu1: 60, Mu2: 50, Delay: 0.02, Law: law,
				Lambda0: 10, MinRate: 0.5, CrossRate: values[0], Seed: seed,
			})
		},
		Horizon:  60,
		Warmup:   10,
		BaseSeed: 99,
		Workers:  workers,
	}
}

func renderSweep(t *testing.T, r *SweepResult) (csv, js string) {
	t.Helper()
	var cb, jb bytes.Buffer
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return cb.String(), jb.String()
}

// TestSweepDeterministicAcrossWorkers is the acceptance criterion for
// the parallel runner: a >= 64-cell grid must produce byte-identical
// CSV and JSON aggregates for 1 worker and GOMAXPROCS workers.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Sweep(sweepConfig64(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(sweepConfig64(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Cells) != 64 || len(parallel.Cells) != 64 {
		t.Fatalf("expected 64 cells, got %d and %d", len(serial.Cells), len(parallel.Cells))
	}
	sc, sj := renderSweep(t, serial)
	pc, pj := renderSweep(t, parallel)
	if sc != pc {
		t.Errorf("CSV output differs between 1 worker and %d workers", runtime.GOMAXPROCS(0))
	}
	if sj != pj {
		t.Errorf("JSON output differs between 1 worker and %d workers", runtime.GOMAXPROCS(0))
	}
	// Spot-check the output shape: header plus one row per cell.
	lines := strings.Split(strings.TrimRight(sc, "\n"), "\n")
	if len(lines) != 65 {
		t.Fatalf("CSV has %d lines, want 65", len(lines))
	}
	if want := "index,cross,c0,fairness,delivered,dropped,throughput,mean_queue"; lines[0] != want {
		t.Errorf("CSV header = %q, want %q", lines[0], want)
	}
}

// TestSweepGridOrder: netsim sweeps enumerate the grid row-major
// with the last parameter varying fastest and carry the extracted
// runner's deterministic per-cell seeds (the pre-extraction contract,
// held against the delegated implementation).
func TestSweepGridOrder(t *testing.T) {
	cfg := sweepConfig64(2)
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Grid{Dims: cfg.Params}
	for idx, c := range res.Cells {
		if c.Index != idx {
			t.Fatalf("cell %d stored at index %d", c.Index, idx)
		}
		want := grid.Values(idx)
		if c.Values[0] != want[0] || c.Values[1] != want[1] {
			t.Errorf("cell %d values = %v, want %v", idx, c.Values, want)
		}
		if c.Seed != sweep.CellSeed(cfg.BaseSeed, idx) {
			t.Errorf("cell %d seed = %d, want %d", idx, c.Seed, sweep.CellSeed(cfg.BaseSeed, idx))
		}
	}
}

// TestSweepErrors: invalid grids are rejected, and a failing cell
// reports the lowest-indexed failure regardless of worker count.
func TestSweepErrors(t *testing.T) {
	base := sweepConfig64(4)

	bad := base
	bad.Params = nil
	if _, err := Sweep(bad); err == nil {
		t.Error("empty grid accepted")
	}

	bad = base
	bad.Params = []Param{{Name: "", Values: []float64{1}}}
	if _, err := Sweep(bad); err == nil {
		t.Error("unnamed parameter accepted")
	}

	bad = base
	bad.Params = []Param{{Name: "x", Values: nil}}
	if _, err := Sweep(bad); err == nil {
		t.Error("empty value list accepted")
	}

	bad = base
	bad.Build = nil
	if _, err := Sweep(bad); err == nil {
		t.Error("nil Build accepted")
	}

	failing := base
	failing.Build = func(values []float64, seed uint64) (Config, error) {
		if values[0] >= 10 { // cells with cross >= 10 fail; lowest such index is 16
			return Config{}, fmt.Errorf("boom at cross=%v", values[0])
		}
		return base.Build(values, seed)
	}
	_, err := Sweep(failing)
	if err == nil {
		t.Fatal("failing cell not reported")
	}
	if !strings.Contains(err.Error(), "cell 16") {
		t.Errorf("error %q does not name the lowest failing cell 16", err)
	}
}
