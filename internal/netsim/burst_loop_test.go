package netsim

import (
	"reflect"
	"testing"

	"fpcc/internal/control"
)

// TestBurstLoopMatchesScalar pins the burst event loop (PopBatch +
// per-burst trace sampling, per-node arena queues) byte-identical to
// the one-event-at-a-time scalar reference on the same seed, on a
// 2-hop parking lot with a finite buffer. The injected variant forces
// genuine multi-event bursts through same-timestamp control updates.
func TestBurstLoopMatchesScalar(t *testing.T) {
	cfg := func() Config {
		law := control.AIMD{C0: 3, C1: 0.5, QHat: 8}
		return Config{
			Nodes: []Node{{Mu: 30, Buffer: 20}, {Mu: 30, Buffer: 20}},
			Links: []Link{{From: 0, To: 1, Delay: 0.02}},
			Flows: []Flow{
				{Route: []int{0, 1}, Law: law, Lambda0: 8, FeedbackDelay: 0.1, Interval: 0.08, MinRate: 0.1},
				{Route: []int{0}, Law: law, Lambda0: 8, FeedbackDelay: 0.05, Interval: 0.08, MinRate: 0.1},
				{Route: []int{1}, Law: law, Lambda0: 8, FeedbackDelay: 0.05, Interval: 0.08, MinRate: 0.1},
			},
			Seed:        7,
			SampleEvery: 0.05,
		}
	}
	run := func(scalar, inject bool) *Result {
		t.Helper()
		s, err := New(cfg())
		if err != nil {
			t.Fatal(err)
		}
		s.scalarLoop = scalar
		if inject {
			for _, at := range []float64{3, 4.5} {
				for f := range s.flows {
					s.push(event{t: at, kind: evControl, flow: f})
				}
			}
		}
		res, err := s.Run(10, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, inject := range []bool{false, true} {
		ref := run(true, inject)
		got := run(false, inject)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("inject=%v: burst loop result differs from scalar reference", inject)
		}
	}
}
