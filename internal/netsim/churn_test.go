package netsim

import (
	"math"
	"reflect"
	"testing"

	"fpcc/internal/churn"
	"fpcc/internal/control"
	"fpcc/internal/traffic"
)

// churnTestConfig is the open-system reference scenario: one static
// compliant flow plus one churn class of short-lived AIMD sessions on
// a 2-hop path with a finite buffer.
func churnTestConfig(t *testing.T, arrival float64, n0 int) Config {
	t.Helper()
	lt, err := churn.NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	law := control.AIMD{C0: 3, C1: 0.5, QHat: 12}
	return Config{
		Nodes: []Node{{Mu: 60, Buffer: 40}, {Mu: 60, Buffer: 40}},
		Links: []Link{{From: 0, To: 1, Delay: 0.02}},
		Flows: []Flow{
			{Route: []int{0, 1}, Law: law, Lambda0: 8, Interval: 0.08, MinRate: 0.1},
		},
		Churn: []ChurnClass{{
			Name: "web",
			Template: Flow{
				Route: []int{0, 1}, Law: law, Lambda0: 4, Interval: 0.08, MinRate: 0.1,
			},
			Arrival:  arrival,
			Lifetime: lt,
			N0:       n0,
		}},
		Seed: 11,
	}
}

func TestChurnValidation(t *testing.T) {
	good := churnTestConfig(t, 5, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid churn config rejected: %v", err)
	}
	// Churn alone (no static flows) is a valid open system.
	noStatic := churnTestConfig(t, 5, 10)
	noStatic.Flows = nil
	if err := noStatic.Validate(); err != nil {
		t.Fatalf("churn-only config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no flows at all", func(c *Config) { c.Flows = nil; c.Churn = nil }},
		{"negative arrival", func(c *Config) { c.Churn[0].Arrival = -1 }},
		{"NaN arrival", func(c *Config) { c.Churn[0].Arrival = math.NaN() }},
		{"nil lifetime", func(c *Config) { c.Churn[0].Lifetime = nil }},
		{"negative N0", func(c *Config) { c.Churn[0].N0 = -1 }},
		{"forever empty", func(c *Config) { c.Churn[0].N0 = 0; c.Churn[0].Arrival = 0 }},
		{"template nil law", func(c *Config) { c.Churn[0].Template.Law = nil }},
		{"template empty route", func(c *Config) { c.Churn[0].Template.Route = nil }},
		{"template bad route", func(c *Config) { c.Churn[0].Template.Route = []int{1, 0} }},
		{"template negative rate", func(c *Config) { c.Churn[0].Template.Lambda0 = -1 }},
	}
	for _, tc := range cases {
		cfg := churnTestConfig(t, 5, 10)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestChurnPopulationLittle holds the open system to the M/G/∞ fixed
// point: sessions arriving at α flows/s living mean m seconds settle
// at α·m live sessions, and the birth counter matches α·horizon in
// expectation.
func TestChurnPopulationLittle(t *testing.T) {
	const (
		arrival = 30.0
		mean    = 2.0 // churnTestConfig's exponential lifetime mean
		horizon = 80.0
		warmup  = 20.0
	)
	cfg := churnTestConfig(t, arrival, int(arrival*mean))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(horizon, warmup)
	if err != nil {
		t.Fatal(err)
	}
	target := arrival * mean
	live := res.ChurnLive[0].Mean()
	if gap := math.Abs(live-target) / target; gap > 0.15 {
		t.Errorf("time-weighted live population %.1f, Little's law says %.1f (gap %.0f%%)",
			live, target, 100*gap)
	}
	born := float64(res.ChurnBorn[0])
	if gap := math.Abs(born-arrival*horizon) / (arrival * horizon); gap > 0.15 {
		t.Errorf("born %d sessions over %v s at %v/s (gap %.0f%%)",
			res.ChurnBorn[0], horizon, arrival, 100*gap)
	}
	if res.ChurnDied[0] == 0 {
		t.Error("no session ever died")
	}
	if res.ChurnDelivered[0] == 0 || res.ChurnThroughput[0] <= 0 {
		t.Error("churn sessions delivered nothing")
	}
	// Conservation: every session is initial, live, or dead.
	if got := int64(cfg.Churn[0].N0) + res.ChurnBorn[0] - res.ChurnDied[0]; got != res.ChurnLiveEnd[0] {
		t.Errorf("session ledger broken: N0 + born − died = %d, live at end = %d",
			got, res.ChurnLiveEnd[0])
	}
}

// TestChurnDeadSessionsDrain pins the death semantics: with no
// arrivals the initial population dies out, stops emitting, and the
// network drains.
func TestChurnDeadSessionsDrain(t *testing.T) {
	cfg := churnTestConfig(t, 0, 20)
	cfg.Flows = nil
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 40 s is 20 lifetime means: P(any survivor) ≈ 20·e⁻²⁰ ≈ 4e-8.
	res, err := s.Run(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnLiveEnd[0] != 0 {
		t.Errorf("%d of 20 no-arrival sessions still alive after 20 lifetimes", res.ChurnLiveEnd[0])
	}
	if res.ChurnDied[0] != 20 {
		t.Errorf("died = %d, want all 20", res.ChurnDied[0])
	}
	if res.ChurnBorn[0] != 0 {
		t.Errorf("born = %d without arrivals", res.ChurnBorn[0])
	}
}

// TestChurnDeterministicSeed pins reproducibility: identical seeds
// give identical results (including every churn aggregate), different
// seeds give different ones.
func TestChurnDeterministicSeed(t *testing.T) {
	run := func(seed uint64) *Result {
		t.Helper()
		cfg := churnTestConfig(t, 10, 20)
		cfg.Seed = seed
		cfg.SampleEvery = 0.1
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(20, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(3), run(3)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different open-system results")
	}
	if c := run(4); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical open-system results")
	}
}

// TestChurnBurstLoopMatchesScalar extends the burst-loop pin to the
// open system: births, deaths and modulator switches through PopBatch
// must replay byte-identically to the scalar reference.
func TestChurnBurstLoopMatchesScalar(t *testing.T) {
	run := func(scalar bool) *Result {
		t.Helper()
		cfg := churnTestConfig(t, 10, 20)
		sw, err := traffic.NewSquareWave(1.5, 0.25, 0.7, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Churn[0].Template.Burst = sw
		cfg.SampleEvery = 0.05
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.scalarLoop = scalar
		res, err := s.Run(15, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Error("open-system burst loop differs from scalar reference")
	}
}

// TestBurstModulatorThinsThroughput pins the emission envelope: a
// constant-rate flow under an on/off square wave delivers its mean
// duty-cycle fraction of the unmodulated throughput.
func TestBurstModulatorThinsThroughput(t *testing.T) {
	base := func(mod traffic.Modulator) float64 {
		t.Helper()
		cfg := Config{
			Nodes: []Node{{Mu: 500}},
			Flows: []Flow{{
				Route: []int{0}, Law: ConstantRate(), Lambda0: 100,
				Interval: 0.1, Burst: mod,
			}},
			Seed: 5,
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(60, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput[0]
	}
	sw, err := traffic.NewSquareWave(1, 0, 1, 1) // on/off, 50% duty
	if err != nil {
		t.Fatal(err)
	}
	plain := base(nil)
	gated := base(sw)
	ratio := gated / plain
	if math.Abs(ratio-sw.MeanFactor()) > 0.06 {
		t.Errorf("square-wave throughput ratio %.3f, want ≈ mean factor %.2f", ratio, sw.MeanFactor())
	}
}

// TestChurnStaticFlowsUnperturbed pins the rng-stream discipline:
// adding a churn class must not change a static flow's trajectory in
// any way before the churn sessions start interacting with it —
// verified on a disjoint route, where the static flow must be
// byte-identical with and without churn for the whole run.
func TestChurnStaticFlowsUnperturbed(t *testing.T) {
	lt, err := churn.NewExponential(1)
	if err != nil {
		t.Fatal(err)
	}
	law := control.AIMD{C0: 3, C1: 0.5, QHat: 10}
	run := func(withChurn bool) *Result {
		t.Helper()
		cfg := Config{
			Nodes: []Node{{Mu: 40}, {Mu: 40}}, // no links: two isolated nodes
			Flows: []Flow{{Route: []int{0}, Law: law, Lambda0: 8, Interval: 0.08}},
			Seed:  9,
		}
		if withChurn {
			cfg.Churn = []ChurnClass{{
				Template: Flow{Route: []int{1}, Law: law, Lambda0: 4, Interval: 0.08},
				Arrival:  8, Lifetime: lt, N0: 5,
			}}
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(20, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a.RateT[0], b.RateT[0]) || !reflect.DeepEqual(a.RateL[0], b.RateL[0]) {
		t.Error("adding a disjoint churn class changed the static flow's rate trajectory")
	}
	if a.Delivered[0] != b.Delivered[0] {
		t.Errorf("static flow delivered %d without churn, %d with", a.Delivered[0], b.Delivered[0])
	}
}
