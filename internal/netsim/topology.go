package netsim

import (
	"fmt"

	"fpcc/internal/control"
)

// Canned topologies for the scenario classes the congestion-avoidance
// literature evaluates on (DECbit's multi-bottleneck configurations,
// the parking-lot fairness benchmark, cross-traffic studies). Each
// builder returns a complete Config ready for New or for a Sweep
// Build function to perturb.

// ParkingLotConfig parameterizes ParkingLot.
type ParkingLotConfig struct {
	Hops    int     // number of bottleneck hops (>= 1)
	Mu      float64 // service rate of every hop
	Delay   float64 // per-link propagation delay
	Law     control.Law
	Lambda0 float64 // initial rate of every flow
	MinRate float64 // probe floor of every flow
	Buffer  int     // per-node buffer (0 = infinite)
	Seed    uint64
}

// ParkingLot builds the classic parking-lot fairness benchmark: a
// chain of Hops identical bottleneck nodes, one long flow crossing
// the whole chain, and one short cross flow entering at each hop and
// exiting after it. Every hop is shared by the long flow and exactly
// one short flow; max-min fairness gives all flows an equal share,
// while AIMD-style control is known to beat the long flow down below
// it (it sees the congestion of every hop at once and pays a longer
// RTT).
func ParkingLot(pc ParkingLotConfig) (Config, error) {
	if pc.Hops < 1 {
		return Config{}, fmt.Errorf("netsim: parking lot needs >= 1 hop, got %d", pc.Hops)
	}
	cfg := Config{Seed: pc.Seed}
	for h := 0; h < pc.Hops; h++ {
		cfg.Nodes = append(cfg.Nodes, Node{
			Name: fmt.Sprintf("hop%d", h), Mu: pc.Mu, Buffer: pc.Buffer,
		})
		if h > 0 {
			cfg.Links = append(cfg.Links, Link{From: h - 1, To: h, Delay: pc.Delay})
		}
	}
	longRoute := make([]int, pc.Hops)
	for h := range longRoute {
		longRoute[h] = h
	}
	long := Flow{
		Name: "long", Law: pc.Law, Route: longRoute,
		IngressDelay: pc.Delay, ReturnDelay: float64(pc.Hops) * pc.Delay,
		Lambda0: pc.Lambda0, MinRate: pc.MinRate,
	}
	long.FeedbackDelay = long.IngressDelay + float64(pc.Hops-1)*pc.Delay + long.ReturnDelay
	cfg.Flows = append(cfg.Flows, long)
	for h := 0; h < pc.Hops; h++ {
		cross := Flow{
			Name: fmt.Sprintf("cross%d", h), Law: pc.Law, Route: []int{h},
			IngressDelay: pc.Delay, ReturnDelay: pc.Delay,
			Lambda0: pc.Lambda0, MinRate: pc.MinRate,
		}
		cross.FeedbackDelay = cross.IngressDelay + cross.ReturnDelay
		cfg.Flows = append(cfg.Flows, cross)
	}
	return cfg, nil
}

// CrossChainConfig parameterizes CrossChain.
type CrossChainConfig struct {
	Mu1, Mu2  float64 // service rates of the two hops
	Delay     float64 // per-link propagation delay
	Law       control.Law
	Lambda0   float64 // initial rate of the adaptive flow
	MinRate   float64 // probe floor of the adaptive flow
	CrossRate float64 // constant (uncontrolled) cross-traffic rate at hop 2; 0 = idle cross flow
	Buffer    int     // per-node buffer (0 = infinite)
	Seed      uint64
}

// CrossChain builds the bottleneck-migration scenario: one adaptive
// flow crossing two hops in series, plus uncontrolled constant-rate
// cross traffic injected at the second hop. With no cross traffic
// the slower hop is the bottleneck; as CrossRate grows, hop 2's
// residual capacity Mu2−CrossRate shrinks below Mu1 and the
// bottleneck — the queue the adaptive flow's feedback actually
// tracks — migrates from hop 1 to hop 2.
func CrossChain(cc CrossChainConfig) (Config, error) {
	cfg := Config{
		Seed: cc.Seed,
		Nodes: []Node{
			{Name: "hop1", Mu: cc.Mu1, Buffer: cc.Buffer},
			{Name: "hop2", Mu: cc.Mu2, Buffer: cc.Buffer},
		},
		Links: []Link{{From: 0, To: 1, Delay: cc.Delay}},
	}
	main := Flow{
		Name: "main", Law: cc.Law, Route: []int{0, 1},
		IngressDelay: cc.Delay, ReturnDelay: 2 * cc.Delay,
		Lambda0: cc.Lambda0, MinRate: cc.MinRate,
	}
	main.FeedbackDelay = main.IngressDelay + cc.Delay + main.ReturnDelay
	cfg.Flows = append(cfg.Flows, main)
	// The cross flow is always present — idle at CrossRate 0 — so
	// every cell of a sweep over CrossRate has the same flow list and
	// the aggregate columns stay comparable across cells.
	cfg.Flows = append(cfg.Flows, Flow{
		Name: "cross", Law: ConstantRate(), Route: []int{1},
		IngressDelay: cc.Delay, ReturnDelay: cc.Delay,
		Lambda0: cc.CrossRate, MinRate: cc.CrossRate,
	})
	return cfg, nil
}
