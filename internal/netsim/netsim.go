// Package netsim is a packet-level discrete-event simulator for
// arbitrary network topologies: a directed graph of store-and-forward
// Nodes (FIFO queues with configurable service rate, buffer limit and
// gateway discipline) connected by Links with propagation delay,
// carrying Flows that follow explicit multi-hop routes and adjust
// their sending rate through the internal/control feedback laws.
//
// It generalizes the two hardwired simulators in internal/des — the
// single-bottleneck Engine of the paper's model and the linear
// TandemSim — to the scenario class the congestion-avoidance
// literature evaluates on: multi-bottleneck paths, parking-lot
// topologies, cross-traffic, and mixed gateway disciplines (drop-tail
// via finite buffers, DECbit-style averaged feedback, RED marking)
// on the same network. The proven idioms carry over unchanged: a
// binary-heap event loop ordered by (t, seq) for determinism, exact
// per-node queue-length histories for delayed feedback, and
// deterministic rng sub-streams split per node and per flow so a run
// is reproducible from a single integer seed.
//
// The degenerate cases reduce to the des simulators (and the tests
// hold netsim to them): a single-node topology reproduces des.Engine,
// a linear chain reproduces des.TandemSim.
//
// On top of the simulator, Sweep (sweep.go) shards an N-dimensional
// parameter grid across parallel workers with deterministic per-cell
// seeds and aggregates per-flow throughput, fairness and queue
// statistics into CSV or JSON.
package netsim

import (
	"fmt"
	"math"

	"fpcc/internal/churn"
	"fpcc/internal/control"
	"fpcc/internal/des"
	"fpcc/internal/traffic"
)

// Node is one store-and-forward queue in the topology.
type Node struct {
	// Name labels the node in reports (defaults to its index).
	Name string
	// Mu is the service rate in packets/s (> 0, exponential server).
	Mu float64
	// Buffer, when positive, bounds the queue (including the packet
	// in service): arrivals beyond it are dropped, drop-tail style.
	// 0 means an infinite queue.
	Buffer int
	// Gateway, when non-nil, owns this node's congestion signal: the
	// recorded feedback history holds Gateway.Signal (e.g. a DECbit
	// EWMA of the queue) and flow observations pass the delayed
	// signal through Gateway.Observe (e.g. RED marking) before the
	// law sees it. Nil means transparent feedback — the raw queue
	// length. Gateways are stateful and must not be shared between
	// nodes or between concurrently running simulators.
	Gateway des.Gateway
}

// Link is a directed edge with propagation delay.
type Link struct {
	From, To int     // node indices
	Delay    float64 // one-way propagation delay in seconds (>= 0)
}

// Flow is one rate-controlled sender following a fixed multi-hop
// route through the topology.
type Flow struct {
	// Name labels the flow in reports (defaults to its index).
	Name string
	// Law is the rate-control law driven by the delayed path
	// feedback (the sum of observed congestion over the route's
	// nodes; see Sim documentation).
	Law control.Law
	// Route is the ordered list of node indices the flow traverses.
	// Every consecutive pair must be connected by a Link.
	Route []int
	// IngressDelay is the propagation delay from the sender to the
	// first node of the route.
	IngressDelay float64
	// ReturnDelay is the propagation delay from the last node back
	// to the sender (the ack path). It contributes to RTT only.
	ReturnDelay float64
	// FeedbackDelay is the age of the path observation at the
	// controller. 0 means instantaneous observation; set it to the
	// flow's RTT for the once-around-the-loop feedback of
	// des.TandemSim.
	FeedbackDelay float64
	// Interval is the control-update period. 0 means once per RTT
	// (which must then be positive).
	Interval float64
	// Lambda0 is the initial sending rate (packets/s).
	Lambda0 float64
	// MinRate is the rate floor (> 0 keeps a silenced flow probing).
	MinRate float64
	// Burst, when non-nil, modulates the flow's instantaneous
	// emission rate by a piecewise-constant envelope factor
	// (λ_eff = λ·factor) without touching the control law's λ — the
	// same per-source modulation as des.SourceConfig.Burst, and the
	// packet twin of the mean-field pulse envelope. Modulators are
	// stateless here (per-flow state lives in the simulator), but a
	// stochastic modulator draws from the flow's own rng stream, so
	// instances must not be shared between concurrently running
	// simulators.
	Burst traffic.Modulator
}

// ChurnClass opens the simulation: a population of identical sessions
// that arrive as a Poisson process, live for a sampled lifetime, and
// disappear — the finite-N counterpart of the mean-field birth–death
// source terms (meanfield.Class.Churn). Every session instantiates
// Template with its own rng sub-stream; a dying session stops
// emitting and controlling but its in-flight packets drain normally.
type ChurnClass struct {
	// Name labels the class in reports (defaults to its index).
	Name string
	// Template is the flow every session of the class runs.
	Template Flow
	// Arrival is the Poisson session arrival rate in flows/s (0 means
	// no births — the initial N0 population only drains).
	Arrival float64
	// Lifetime samples session durations (one draw per session, from
	// the session's own rng stream).
	Lifetime churn.Lifetime
	// N0 is the number of sessions alive at t = 0; each samples a
	// full lifetime then (a "fresh" initial population, matching the
	// mean-field kernels' t = 0 phase composition).
	N0 int
}

// Config describes a netsim run.
type Config struct {
	Nodes []Node
	Links []Link
	Flows []Flow
	// Churn, when non-empty, adds open-system session classes on top
	// of the static Flows (which may then be empty): sessions are
	// born, live and die during the run, and are reported as
	// per-class aggregates (Result.Churn*) rather than per-flow
	// arrays.
	Churn []ChurnClass
	Seed  uint64
	// SampleEvery records every node's queue length each SampleEvery
	// seconds into Result.TraceQ (0 disables tracing).
	SampleEvery float64
}

// Topo returns the node/link graph of the configuration as a
// Topology, the validation and path-delay vocabulary shared with the
// networked mean-field engine.
func (c *Config) Topo() Topology {
	return Topology{Nodes: c.Nodes, Links: c.Links}
}

// linkTable builds the directed-edge -> delay lookup, rejecting
// duplicate edges.
func (c *Config) linkTable() (map[linkKey]float64, error) {
	tp := c.Topo()
	return tp.linkTable()
}

// FlowRTT returns the base (propagation-only) round-trip time of flow
// i: ingress + route links + return.
func (c *Config) FlowRTT(i int) (float64, error) {
	if i < 0 || i >= len(c.Flows) {
		return 0, fmt.Errorf("netsim: flow index %d out of range", i)
	}
	f := &c.Flows[i]
	tp := c.Topo()
	path, err := tp.PathDelay(f.Route)
	if err != nil {
		return 0, fmt.Errorf("netsim: flow %d: %w", i, err)
	}
	return f.IngressDelay + path + f.ReturnDelay, nil
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	tp := c.Topo()
	if err := tp.Validate(); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	// Build the link table once for every per-flow route check below
	// (Topology.Validate proved it constructible).
	tab, err := tp.linkTable()
	if err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if len(c.Flows) == 0 && len(c.Churn) == 0 {
		return fmt.Errorf("netsim: no flows")
	}
	validateFlow := func(who string, f *Flow) error {
		switch {
		case f.Law == nil:
			return fmt.Errorf("netsim: %s has nil law", who)
		case len(f.Route) == 0:
			return fmt.Errorf("netsim: %s has empty route", who)
		case !(f.IngressDelay >= 0) || !(f.ReturnDelay >= 0):
			return fmt.Errorf("netsim: %s has negative access delay", who)
		case !(f.FeedbackDelay >= 0):
			return fmt.Errorf("netsim: %s has negative feedback delay %v", who, f.FeedbackDelay)
		case !(f.Interval >= 0) || math.IsInf(f.Interval, 1):
			return fmt.Errorf("netsim: %s has invalid control interval %v", who, f.Interval)
		case !(f.Lambda0 >= 0) || math.IsInf(f.Lambda0, 1):
			return fmt.Errorf("netsim: %s has invalid initial rate %v", who, f.Lambda0)
		case !(f.MinRate >= 0) || math.IsInf(f.MinRate, 1):
			return fmt.Errorf("netsim: %s has invalid rate floor %v", who, f.MinRate)
		}
		if err := tp.validateRouteIn(tab, f.Route); err != nil {
			return fmt.Errorf("netsim: %s: %w", who, err)
		}
		path, err := pathDelayIn(tab, f.Route)
		if err != nil {
			return fmt.Errorf("netsim: %s: %w", who, err)
		}
		rtt := f.IngressDelay + path + f.ReturnDelay
		if f.Interval == 0 && !(rtt > 0) {
			return fmt.Errorf("netsim: %s has zero control interval and zero RTT; set Interval", who)
		}
		return nil
	}
	for i := range c.Flows {
		if err := validateFlow(fmt.Sprintf("flow %d", i), &c.Flows[i]); err != nil {
			return err
		}
	}
	for j := range c.Churn {
		cc := &c.Churn[j]
		switch {
		case !(cc.Arrival >= 0) || math.IsInf(cc.Arrival, 1):
			return fmt.Errorf("netsim: churn class %d has invalid arrival rate %v", j, cc.Arrival)
		case cc.Lifetime == nil:
			return fmt.Errorf("netsim: churn class %d has nil lifetime", j)
		case !(cc.Lifetime.Mean() > 0) || math.IsInf(cc.Lifetime.Mean(), 1):
			return fmt.Errorf("netsim: churn class %d has invalid lifetime mean %v", j, cc.Lifetime.Mean())
		case cc.N0 < 0:
			return fmt.Errorf("netsim: churn class %d has negative initial population %d", j, cc.N0)
		case cc.N0 == 0 && cc.Arrival == 0:
			return fmt.Errorf("netsim: churn class %d is forever empty (N0 = 0, Arrival = 0)", j)
		}
		if err := validateFlow(fmt.Sprintf("churn class %d template", j), &cc.Template); err != nil {
			return err
		}
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("netsim: negative sample period %v", c.SampleEvery)
	}
	return nil
}

// ChurnName returns the display name of churn class j.
func (c *Config) ChurnName(j int) string {
	if j >= 0 && j < len(c.Churn) && c.Churn[j].Name != "" {
		return c.Churn[j].Name
	}
	return fmt.Sprintf("C%d", j)
}

// NodeName returns the display name of node h.
func (c *Config) NodeName(h int) string {
	tp := c.Topo()
	return tp.NodeName(h)
}

// FlowName returns the display name of flow i.
func (c *Config) FlowName(i int) string {
	if i >= 0 && i < len(c.Flows) && c.Flows[i].Name != "" {
		return c.Flows[i].Name
	}
	return fmt.Sprintf("F%d", i)
}

// ConstantRate returns a law whose drift is identically zero: a flow
// using it sends at Lambda0 forever, ignoring feedback. It models
// uncontrolled cross-traffic (the background load that migrates a
// bottleneck or beats down adaptive flows).
func ConstantRate() control.Law {
	return control.Custom{
		DriftFunc: func(q, lambda float64) float64 { return 0 },
		LawName:   "constant",
	}
}
