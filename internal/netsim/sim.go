package netsim

import (
	"fmt"
	"math"

	"fpcc/internal/des"
	"fpcc/internal/eventq"
	"fpcc/internal/rng"
	"fpcc/internal/stats"
)

// eventKind enumerates the simulator's event types.
type eventKind int

const (
	evSend      eventKind = iota // a flow emits a packet
	evArrive                     // a packet reaches a node's queue
	evDepart                     // a node's server finishes a packet
	evControl                    // a flow applies its control law
	evModSwitch                  // a flow's burst modulator changes state
	evBirth                      // a churn class spawns a session (flow = class index)
	evDeath                      // a churn session's lifetime expires
)

// event is one scheduled occurrence.
type event struct {
	t    float64
	kind eventKind
	flow int // flow index (churn class index for evBirth)
	node int // for evArrive/evDepart
	leg  int // index into the packet's route for evArrive
	seq  uint64
}

// Key implements eventq.Event: min-heap order on (t, seq), time
// order with deterministic FIFO tie-breaking.
func (e event) Key() (float64, uint64) { return e.t, e.seq }

// packetRef identifies a queued packet: whose it is and how far along
// its route it has come.
type packetRef struct {
	flow int
	leg  int
}

// nodeState is the runtime state of one queue.
type nodeState struct {
	cfg Node
	// queue[head:] is the FIFO of queued packets (head in service when
	// serving): a per-node arena with a sliding head, so a departure
	// is one index bump instead of a slice-re-slice that churns the
	// backing array (see pop).
	queue   []packetRef
	head    int
	serving bool
	rng     *rng.Source
	// Queue-length (and gateway-signal) history for delayed
	// observation, recorded at every change and pruned outside the
	// longest lookback window.
	hist       des.QueueHistory
	drops      int64   // post-warmup drop-tail losses at this node
	lastChange float64 // when the queue last changed (for time-weighted stats)
}

// qLen returns the node's queue length (the live arena window).
func (ns *nodeState) qLen() int { return len(ns.queue) - ns.head }

// pop removes and returns the head packet. The arena compacts only
// when more than half the backing array is dead, so the amortized cost
// is O(1) with no steady-state allocation.
func (ns *nodeState) pop() packetRef {
	pkt := ns.queue[ns.head]
	ns.head++
	if ns.head == len(ns.queue) {
		ns.queue = ns.queue[:0]
		ns.head = 0
	} else if ns.head > 64 && ns.head > len(ns.queue)/2 {
		n := copy(ns.queue, ns.queue[ns.head:])
		ns.queue = ns.queue[:n]
		ns.head = 0
	}
	return pkt
}

// flowState is the runtime state of one sender.
type flowState struct {
	cfg      Flow
	lambda   float64
	rng      *rng.Source
	nextAt   float64 // next scheduled emission (superseded sends detected against it)
	rtt      float64
	interval float64 // resolved control period (cfg.Interval or RTT)
	class    int     // owning churn class, -1 for static flows
	alive    bool    // false after evDeath: no sends, no control
	// Burst-modulation state (factor = 1 when cfg.Burst is nil).
	modState int
	factor   float64
}

// classState is the runtime state of one churn class.
type classState struct {
	cfg        ChurnClass
	rng        *rng.Source // birth gaps and per-session stream splits
	rtt        float64     // template's base RTT (shared by every session)
	live       int
	born, died int64
	lastChange float64 // when live last changed (for time-weighted stats)
}

// Result summarizes a netsim run.
type Result struct {
	// TraceT / TraceQ[h] trace each node's queue length over time
	// (present when SampleEvery > 0).
	TraceT []float64
	TraceQ [][]float64
	// RateT/RateL[i] trace each flow's rate at its control updates.
	RateT [][]float64
	RateL [][]float64
	// Delivered[i] counts flow i's packets that exited the network
	// after warmup; Dropped[i] its post-warmup drop-tail losses.
	// (Static flows only; churn sessions aggregate per class below.)
	Delivered []int64
	Dropped   []int64
	// Throughput[i] is Delivered[i] / measurement window (packets/s).
	Throughput []float64
	// Per-churn-class aggregates (one entry per Config.Churn class;
	// all nil without churn). Born/Died count sessions over the whole
	// run (N0 sessions are initial population, not births); LiveEnd
	// is the population when the run ended; Live aggregates the
	// time-weighted live population after warmup. Delivered/Dropped/
	// Throughput sum the class's sessions post-warmup, the aggregate
	// counterparts of the per-flow arrays.
	ChurnBorn       []int64
	ChurnDied       []int64
	ChurnLiveEnd    []int64
	ChurnLive       []stats.WeightedMoments
	ChurnDelivered  []int64
	ChurnDropped    []int64
	ChurnThroughput []float64
	// NodeDropped[h] counts post-warmup losses at node h.
	NodeDropped []int64
	// NodeQueue[h] aggregates the time-weighted queue length at node
	// h after warmup.
	NodeQueue []stats.WeightedMoments
	// FlowRTT[i] is flow i's base (propagation-only) round-trip time.
	FlowRTT []float64
	// FinalT is the simulation end time; WarmupT the warmup boundary.
	FinalT  float64
	WarmupT float64
}

// Sim is the simulator instance. Create with New, execute with Run.
//
// Feedback model: a flow's controller observes the sum, over the
// nodes of its route, of each node's congestion value as it stood
// FeedbackDelay seconds ago — the raw queue length for transparent
// nodes, Gateway.Observe of the recorded signal for gateway nodes
// (so a RED mark at any hop pushes the sum past the law's threshold,
// the path analogue of a receiver OR-ing congestion bits). The sum
// over raw queues is exactly the path backlog of des.TandemSim.
type Sim struct {
	cfg     Config
	links   map[linkKey]float64
	nodes   []*nodeState
	flows   []*flowState
	classes []*classState
	events  eventq.Q[event]
	seq     uint64
	t       float64
	maxLook float64
	// batch is the reused burst buffer the event loop drains
	// same-timestamp events into (eventq.PopBatch); scalarLoop
	// switches Run back to one-event-at-a-time Pop so tests can pin
	// the burst loop byte-identical to the scalar reference.
	batch      []event
	scalarLoop bool
}

// New builds a simulator.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	links, err := cfg.linkTable()
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	s := &Sim{cfg: cfg, links: links}
	for _, nc := range cfg.Nodes {
		ns := &nodeState{cfg: nc, rng: root.Split(), hist: des.NewQueueHistory(nc.Gateway != nil)}
		var sig0 float64
		if nc.Gateway != nil {
			nc.Gateway.Reset()
			sig0 = nc.Gateway.Signal(0, 0)
		}
		ns.hist.Record(0, 0, sig0, 0)
		s.nodes = append(s.nodes, ns)
	}
	for i, fc := range cfg.Flows {
		rtt, err := cfg.FlowRTT(i)
		if err != nil {
			return nil, err
		}
		fs := &flowState{
			cfg: fc, lambda: fc.Lambda0, rng: root.Split(), rtt: rtt,
			class: -1, alive: true, factor: 1,
		}
		fs.interval = fc.Interval
		if fs.interval == 0 {
			fs.interval = rtt
		}
		if fc.FeedbackDelay > s.maxLook {
			s.maxLook = fc.FeedbackDelay
		}
		s.flows = append(s.flows, fs)
		if fc.Burst != nil {
			fs.modState = fc.Burst.InitState(fs.rng)
			fs.factor = fc.Burst.Factor(fs.modState)
			s.push(event{t: fc.Burst.Sojourn(fs.modState, fs.rng), kind: evModSwitch, flow: i})
		}
		// First control update staggered by flow index to avoid
		// artificial lock-step (same discipline as des.Engine).
		stagger := fs.interval * (1 + float64(i)/float64(len(cfg.Flows)))
		s.push(event{t: stagger, kind: evControl, flow: i})
		s.scheduleSend(i)
	}
	// Churn classes split their streams after every node and static
	// flow, so adding a class never perturbs a static flow's draws.
	tp := cfg.Topo()
	for j := range cfg.Churn {
		cc := &cfg.Churn[j]
		path, err := tp.PathDelay(cc.Template.Route)
		if err != nil {
			return nil, fmt.Errorf("netsim: churn class %d: %w", j, err)
		}
		cs := &classState{
			cfg: *cc, rng: root.Split(),
			rtt: cc.Template.IngressDelay + path + cc.Template.ReturnDelay,
		}
		if cc.Template.FeedbackDelay > s.maxLook {
			s.maxLook = cc.Template.FeedbackDelay
		}
		s.classes = append(s.classes, cs)
		for n := 0; n < cc.N0; n++ {
			s.spawn(j, false)
		}
		if cc.Arrival > 0 {
			s.push(event{t: cs.rng.Exp(cc.Arrival), kind: evBirth, flow: j})
		}
	}
	return s, nil
}

// spawn instantiates one session of churn class j at the current
// time: its own rng sub-stream (split from the class stream, so
// session identity is deterministic in birth order), a sampled
// lifetime, a control schedule staggered by a uniform draw, and its
// first emission. born counts arrivals only, not the initial N0.
func (s *Sim) spawn(j int, born bool) {
	cs := s.classes[j]
	fc := cs.cfg.Template
	i := len(s.flows)
	fs := &flowState{
		cfg: fc, lambda: fc.Lambda0, rng: cs.rng.Split(), rtt: cs.rtt,
		class: j, alive: true, factor: 1,
	}
	fs.interval = fc.Interval
	if fs.interval == 0 {
		fs.interval = cs.rtt
	}
	s.flows = append(s.flows, fs)
	s.push(event{t: s.t + cs.cfg.Lifetime.Sample(fs.rng), kind: evDeath, flow: i})
	if fc.Burst != nil {
		fs.modState = fc.Burst.InitState(fs.rng)
		fs.factor = fc.Burst.Factor(fs.modState)
		s.push(event{t: s.t + fc.Burst.Sojourn(fs.modState, fs.rng), kind: evModSwitch, flow: i})
	}
	// Sessions are born at arbitrary times, so a uniform stagger in
	// [1, 2) control periods replaces the static flows' index-based
	// one.
	s.push(event{t: s.t + fs.interval*(1+fs.rng.Float64()), kind: evControl, flow: i})
	s.scheduleSend(i)
	cs.live++
	if born {
		cs.born++
	}
}

func (s *Sim) push(e event) {
	e.seq = s.seq
	s.seq++
	s.events.Push(e)
}

// recordNode appends node h's current queue length (and gateway
// signal) to its history, pruning samples outside the lookback
// window occasionally.
func (s *Sim) recordNode(h int) {
	ns := s.nodes[h]
	var sig float64
	if ns.cfg.Gateway != nil {
		sig = ns.cfg.Gateway.Signal(s.t, ns.qLen())
	}
	ns.hist.Record(s.t, ns.qLen(), sig, s.t-s.maxLook-1)
}

// observePath returns the congestion value flow i's controller sees:
// the delayed path observation summed over its route.
func (s *Sim) observePath(i int, obsT float64) float64 {
	fs := s.flows[i]
	var total float64
	for _, h := range fs.cfg.Route {
		ns := s.nodes[h]
		if ns.cfg.Gateway != nil {
			total += ns.cfg.Gateway.Observe(ns.hist.SignalAt(obsT), fs.cfg.Law.Target(), fs.rng)
		} else {
			total += ns.hist.QueueAt(obsT)
		}
	}
	return total
}

// scheduleSend draws the next emission for flow i at its current
// effective rate λ·factor. A zero-rate flow gets no emission
// scheduled; the next control (or modulator) update reschedules when
// the rate rises.
func (s *Sim) scheduleSend(i int) {
	fs := s.flows[i]
	rate := fs.lambda * fs.factor
	if rate <= 0 {
		fs.nextAt = math.Inf(1)
		return
	}
	fs.nextAt = s.t + fs.rng.Exp(rate)
	s.push(event{t: fs.nextAt, kind: evSend, flow: i})
}

// startService begins serving the head packet at node h if idle.
func (s *Sim) startService(h int) {
	ns := s.nodes[h]
	if ns.serving || ns.qLen() == 0 {
		return
	}
	ns.serving = true
	s.push(event{t: s.t + ns.rng.Exp(ns.cfg.Mu), kind: evDepart, node: h})
}

// Run executes the simulation until time horizon, treating the first
// warmup seconds as transient (excluded from throughput, drop and
// queue statistics). Run may be called once per Sim.
func (s *Sim) Run(horizon, warmup float64) (*Result, error) {
	if !(horizon > 0) || warmup < 0 || warmup >= horizon {
		return nil, fmt.Errorf("netsim: invalid horizon %v / warmup %v", horizon, warmup)
	}
	// Per-flow arrays cover the static flows; churn sessions (flow
	// indices beyond nStatic, appearing and dying at runtime) report
	// through the per-class aggregates instead.
	nStatic := len(s.cfg.Flows)
	res := &Result{
		Delivered:   make([]int64, nStatic),
		Dropped:     make([]int64, nStatic),
		Throughput:  make([]float64, nStatic),
		RateT:       make([][]float64, nStatic),
		RateL:       make([][]float64, nStatic),
		NodeDropped: make([]int64, len(s.nodes)),
		NodeQueue:   make([]stats.WeightedMoments, len(s.nodes)),
		FlowRTT:     make([]float64, nStatic),
		WarmupT:     warmup,
	}
	for i := 0; i < nStatic; i++ {
		res.FlowRTT[i] = s.flows[i].rtt
	}
	if len(s.classes) > 0 {
		res.ChurnBorn = make([]int64, len(s.classes))
		res.ChurnDied = make([]int64, len(s.classes))
		res.ChurnLiveEnd = make([]int64, len(s.classes))
		res.ChurnLive = make([]stats.WeightedMoments, len(s.classes))
		res.ChurnDelivered = make([]int64, len(s.classes))
		res.ChurnDropped = make([]int64, len(s.classes))
		res.ChurnThroughput = make([]float64, len(s.classes))
	}
	if s.cfg.SampleEvery > 0 {
		res.TraceQ = make([][]float64, len(s.nodes))
	}
	// accrue adds node h's time-weighted queue statistic for the
	// constant stretch from its last change to now. Accumulating at
	// each node's own change points keeps the statistics O(events)
	// rather than O(nodes x events).
	accrue := func(h int, now float64) {
		ns := s.nodes[h]
		if now > warmup {
			from := math.Max(ns.lastChange, warmup)
			if w := now - from; w > 0 {
				res.NodeQueue[h].Add(float64(ns.qLen()), w)
			}
		}
		ns.lastChange = now
	}
	// accrueClass is the live-population analogue of accrue: the
	// time-weighted session count of class j over the constant stretch
	// since its population last changed.
	accrueClass := func(j int, now float64) {
		cs := s.classes[j]
		if now > warmup {
			from := math.Max(cs.lastChange, warmup)
			if w := now - from; w > 0 {
				res.ChurnLive[j].Add(float64(cs.live), w)
			}
		}
		cs.lastChange = now
	}
	nextSample := 0.0
	for s.events.Len() > 0 {
		// Drain the whole same-timestamp burst at once into the reused
		// buffer (eventq.PopBatch pops in exactly repeated-Pop order).
		// Trace sampling advances once per burst: within a burst the
		// clock is frozen, so the per-event version is a no-op after
		// the first event — the burst loop is byte-identical to the
		// scalar one (pinned by TestBurstLoopMatchesScalar).
		if s.scalarLoop {
			s.batch = append(s.batch[:0], s.events.Pop())
		} else {
			s.batch = s.events.PopBatch(s.batch[:0])
		}
		bt := s.batch[0].t
		if bt > horizon {
			break
		}
		// Trace sampling between bursts (piecewise-constant queues).
		if s.cfg.SampleEvery > 0 {
			for nextSample <= bt {
				res.TraceT = append(res.TraceT, nextSample)
				for h, ns := range s.nodes {
					res.TraceQ[h] = append(res.TraceQ[h], float64(ns.qLen()))
				}
				nextSample += s.cfg.SampleEvery
			}
		}
		s.t = bt

		s.processBatch(res, warmup, accrue, accrueClass)
	}
	res.FinalT = math.Min(s.t, horizon)
	// Flush each node's final constant stretch up to the last
	// processed event, matching the every-event accumulation of
	// des.Engine (the [last event, horizon] tail is excluded there
	// too).
	for h := range s.nodes {
		accrue(h, res.FinalT)
	}
	window := horizon - warmup
	for i := range res.Throughput {
		res.Throughput[i] = float64(res.Delivered[i]) / window
	}
	for h, ns := range s.nodes {
		res.NodeDropped[h] = ns.drops
	}
	for j, cs := range s.classes {
		accrueClass(j, res.FinalT)
		res.ChurnBorn[j] = cs.born
		res.ChurnDied[j] = cs.died
		res.ChurnLiveEnd[j] = int64(cs.live)
		res.ChurnThroughput[j] = float64(res.ChurnDelivered[j]) / window
	}
	return res, nil
}

// processBatch applies every event of the drained burst in (time,
// sequence) order — exactly the order the scalar loop processed them.
func (s *Sim) processBatch(res *Result, warmup float64, accrue, accrueClass func(int, float64)) {
	for _, e := range s.batch {
		switch e.kind {
		case evSend:
			fs := s.flows[e.flow]
			if e.t != fs.nextAt {
				break // superseded by a reschedule
			}
			s.push(event{
				t: s.t + fs.cfg.IngressDelay, kind: evArrive,
				flow: e.flow, leg: 0, node: fs.cfg.Route[0],
			})
			s.scheduleSend(e.flow)

		case evArrive:
			ns := s.nodes[e.node]
			if ns.cfg.Buffer > 0 && ns.qLen() >= ns.cfg.Buffer {
				// Drop-tail loss at the finite buffer.
				if e.t > warmup {
					if c := s.flows[e.flow].class; c >= 0 {
						res.ChurnDropped[c]++
					} else {
						res.Dropped[e.flow]++
					}
					ns.drops++
				}
				break
			}
			accrue(e.node, s.t)
			ns.queue = append(ns.queue, packetRef{flow: e.flow, leg: e.leg})
			s.recordNode(e.node)
			s.startService(e.node)

		case evDepart:
			ns := s.nodes[e.node]
			if ns.qLen() == 0 {
				break // defensive; should not happen
			}
			accrue(e.node, s.t)
			pkt := ns.pop()
			ns.serving = false
			s.recordNode(e.node)
			s.startService(e.node)
			route := s.flows[pkt.flow].cfg.Route
			if pkt.leg+1 < len(route) {
				next := route[pkt.leg+1]
				s.push(event{
					t: s.t + s.links[linkKey{e.node, next}], kind: evArrive,
					flow: pkt.flow, leg: pkt.leg + 1, node: next,
				})
			} else if s.t > warmup {
				if c := s.flows[pkt.flow].class; c >= 0 {
					res.ChurnDelivered[c]++
				} else {
					res.Delivered[pkt.flow]++
				}
			}

		case evControl:
			fs := s.flows[e.flow]
			if !fs.alive {
				break // the session died; its control loop dies with it
			}
			qObs := s.observePath(e.flow, s.t-fs.cfg.FeedbackDelay)
			fs.lambda += fs.cfg.Law.Drift(qObs, fs.lambda) * fs.interval
			if fs.lambda < fs.cfg.MinRate {
				fs.lambda = fs.cfg.MinRate
			}
			if fs.class < 0 {
				// Rate traces are per static flow; churn sessions are
				// unbounded in number and report class aggregates.
				res.RateT[e.flow] = append(res.RateT[e.flow], s.t)
				res.RateL[e.flow] = append(res.RateL[e.flow], fs.lambda)
			}
			// Reschedule this flow's emissions at the new rate
			// (memorylessness makes the fresh draw unbiased).
			s.scheduleSend(e.flow)
			s.push(event{t: s.t + fs.interval, kind: evControl, flow: e.flow})

		case evModSwitch:
			fs := s.flows[e.flow]
			if !fs.alive {
				break
			}
			fs.modState = fs.cfg.Burst.Next(fs.modState, fs.rng)
			fs.factor = fs.cfg.Burst.Factor(fs.modState)
			s.push(event{t: s.t + fs.cfg.Burst.Sojourn(fs.modState, fs.rng), kind: evModSwitch, flow: e.flow})
			s.scheduleSend(e.flow)

		case evBirth:
			accrueClass(e.flow, s.t)
			s.spawn(e.flow, true)
			cs := s.classes[e.flow]
			s.push(event{t: s.t + cs.rng.Exp(cs.cfg.Arrival), kind: evBirth, flow: e.flow})

		case evDeath:
			fs := s.flows[e.flow]
			accrueClass(fs.class, s.t)
			cs := s.classes[fs.class]
			// The session stops emitting and controlling; packets
			// already in flight drain (and are counted) normally.
			fs.alive = false
			fs.lambda = 0
			fs.nextAt = math.Inf(1)
			cs.live--
			cs.died++
		}
	}
}

// RTT returns the base (propagation-only) round-trip time of flow i.
func (s *Sim) RTT(i int) float64 { return s.flows[i].rtt }
