package experiments

import "testing"

// TestNetmfTablesDeterministicAcrossWorkers pins the sweep worker
// bound under E30/E31 at 1 and at 8 and requires byte-identical text,
// CSV and JSON — the netmf instance of the repository-wide contract
// that worker counts change wall-clock time, never results. (The
// networked mean-field engine itself is deterministic — it draws no
// random numbers — so any divergence would be an aggregation-order
// bug in the sweep runner.)
func TestNetmfTablesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E30 (6 cells) and E31 (6 cells) twice each at N=10⁶")
	}
	for _, tc := range []struct {
		id  string
		run func(rc *Recorder, workers int) (*Table, error)
	}{
		{"E30", e30Table},
		{"E31", e31Table},
	} {
		serial, err := tc.run(nil, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", tc.id, err)
		}
		parallel, err := tc.run(nil, 8)
		if err != nil {
			t.Fatalf("%s workers=8: %v", tc.id, err)
		}
		st, sc, sj := renderTable(t, serial)
		pt, pc, pj := renderTable(t, parallel)
		if st != pt {
			t.Errorf("%s text differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", tc.id, st, pt)
		}
		if sc != pc {
			t.Errorf("%s CSV differs between 1 and 8 workers", tc.id)
		}
		if sj != pj {
			t.Errorf("%s JSON differs between 1 and 8 workers", tc.id)
		}
		if alarm := serial.Alarm(); alarm != "" {
			t.Errorf("%s alarmed: %s", tc.id, alarm)
		}
	}
}
