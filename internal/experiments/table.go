// Package experiments regenerates every table and figure of the
// paper's evaluation, plus the extensions layered on it: each
// experiment E1..E34 is a function returning a Table of labelled rows
// that a CLI (cmd/benchreport) or a benchmark (bench_test.go at the
// repository root) can print and time. EXPERIMENTS.md records the
// paper's claim next to the measured outcome for each.
//
// Every experiment is deterministic: stochastic components take fixed
// seeds, so the printed tables are reproducible run to run. The
// registry (All) carries per-experiment metadata, and the parallel
// suite runner (RunSuite) executes any selection of it on the
// engine-agnostic worker pool of internal/sweep with byte-identical
// output for any worker count.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"fpcc/internal/obs"
	"fpcc/internal/sweep"
)

// Table is a labelled result table in paper style: a caption, column
// headers, and rows of cells.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Caption string
	Columns []string
	Rows    [][]string
	// Findings summarizes the qualitative outcome (who wins, which
	// direction), mirroring how EXPERIMENTS.md reports shape checks.
	Findings []string
	// raw holds the unformatted AddRow arguments, so the machine
	// outputs (WriteCSV, MarshalJSON) can emit full-precision values
	// while Rows/String keep the compact %.4g alignment.
	raw [][]any
}

// AddRow appends a formatted row; values are Sprint'ed with %v unless
// they are float64, which use %.4g in the aligned text rendering.
// The originals are retained so CSV/JSON output is full precision.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
	t.raw = append(t.raw, append([]any(nil), cells...))
}

// AddFinding records a qualitative outcome line.
func (t *Table) AddFinding(format string, args ...any) {
	t.Findings = append(t.Findings, fmt.Sprintf(format, args...))
}

// alarmWords mark a reproduction failure when they appear in a
// finding; tests and benchmarks fail on them.
var alarmWords = []string{"MISMATCH", "UNEXPECTED", "VIOLATED", "FAILURE", "DEVIATION", "NOT REACHED", "GAP:"}

// Alarm returns the first finding flagging a reproduction failure
// (a finding containing a capitalized alarm word), or "" if the
// experiment reproduced cleanly.
func (t *Table) Alarm() string {
	for _, f := range t.Findings {
		for _, alarm := range alarmWords {
			if strings.Contains(f, alarm) {
				return f
			}
		}
	}
	return ""
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Caption)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, f := range t.Findings {
		fmt.Fprintf(&b, "  => %s\n", f)
	}
	return b.String()
}

// rawRows returns the unformatted row values, falling back to the
// formatted strings for rows appended without AddRow.
func (t *Table) rawRows() [][]any {
	if len(t.raw) == len(t.Rows) {
		return t.raw
	}
	rows := make([][]any, len(t.Rows))
	for i, row := range t.Rows {
		cells := make([]any, len(row))
		for j, cell := range row {
			cells[j] = cell
		}
		rows[i] = cells
	}
	return rows
}

// MarshalJSON renders the table with full-precision row values (the
// aligned text rendering keeps %.4g; see AddRow). Non-finite floats
// (NaN settling times, ±Inf) become strings via sweep.JSONValue.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := make([][]any, len(t.Rows))
	for i, row := range t.rawRows() {
		cells := make([]any, len(row))
		for j, v := range row {
			cells[j] = sweep.JSONValue(v)
		}
		rows[i] = cells
	}
	return json.Marshal(struct {
		ID       string   `json:"id"`
		Caption  string   `json:"caption"`
		Columns  []string `json:"columns"`
		Rows     [][]any  `json:"rows"`
		Findings []string `json:"findings"`
	}{t.ID, t.Caption, t.Columns, rows, t.Findings})
}

// WriteCSV renders the table as one CSV block: '#' comment lines for
// the caption and findings, a header row, then full-precision data
// rows (sweep.FormatValue: round-trip floats, ';'-joined vectors).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Caption); err != nil {
		return err
	}
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = sweep.CSVField(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range t.rawRows() {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = sweep.CSVField(sweep.FormatValue(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	for _, f := range t.Findings {
		if _, err := fmt.Fprintf(w, "# => %s\n", f); err != nil {
			return err
		}
	}
	return nil
}

// Recorder aliases obs.Recorder so every experiment signature can
// name the observability hook without importing internal/obs. The nil
// default is the zero-overhead no-op; the suite runner hands each
// experiment its own recorder when benchreport enables tracing.
type Recorder = obs.Recorder

// Experiment is one registry entry: stable id, human title, coarse
// tags for selection, the entry point, and the parallel width the
// experiment can exploit internally. Run receives the run context —
// recorder plus negotiated inner-worker grant; nil is the
// zero-overhead direct-invocation default — and must produce
// byte-identical tables for any context. Width declares how many
// inner workers the experiment can usefully employ (0 = none: the
// experiment is single-threaded inside); the suite scheduler never
// grants more than Width.
type Experiment struct {
	ID    string
	Title string
	Tags  []string
	Run   func(ctx *Ctx) (*Table, error)
	Width int
}

// Runner is the registry entry's pre-registry name, kept as an alias.
type Runner = Experiment

// All returns every experiment in order; EXPERIMENTS.md is the
// companion index of claims and measured outcomes. Tags: "core"
// (E1–E15, the paper's own analysis) vs "extension" (E16–E34), plus
// the engines exercised and "sweep" for grid-shaped workloads.
func All() []Experiment {
	return []Experiment{
		{"E1", "characteristic drift directions (Figure 2)", []string{"core", "characteristics"}, E1QuadrantDrifts, 0},
		{"E2", "convergent spiral and Theorem 1 (Figure 3)", []string{"core", "characteristics"}, E2ConvergentSpiral, 0},
		{"E3", "packet-level queue trace (Figure 1)", []string{"core", "des"}, E3QueueTrace, 0},
		{"E4", "equal-parameter fairness (Section 6)", []string{"core", "fairness", "fluid", "des"}, E4FairnessEqual, 0},
		{"E5", "heterogeneous-parameter shares (Section 6)", []string{"core", "fairness", "fluid"}, E5FairnessHetero, 0},
		{"E6", "delay-induced oscillation (Section 7)", []string{"core", "delay"}, E6DelayOscillation, 0},
		{"E7", "delay-induced unfairness (Section 7)", []string{"core", "delay", "fairness"}, E7DelayUnfairness, 0},
		{"E8", "algorithm-induced oscillation: AIAD vs AIMD", []string{"core", "delay"}, E8AlgorithmOscillation, 0},
		{"E9", "Fokker-Planck vs Monte-Carlo validation (Eq. 14)", []string{"core", "fokkerplanck", "sde"}, E9FokkerPlanckVsMonteCarlo, 8},
		{"E10", "variability: Fokker-Planck vs fluid approximation", []string{"core", "fokkerplanck", "fluid"}, E10VariabilityVsFluid, 8},
		{"E11", "convergence speed vs (C0, C1) (Theorem 1)", []string{"core", "characteristics", "sweep"}, E11ParameterSweep, 9},
		{"E12", "stationary spread vs sigma (Section 5 closing)", []string{"core", "fokkerplanck", "sweep"}, E12DiffusionSpread, 4},
		{"E13", "window protocol vs rate analogue (Eq. 1 vs Eq. 2)", []string{"core", "des"}, E13WindowRateEquivalence, 0},
		{"E14", "FP advection scheme ablation (upwind vs MUSCL)", []string{"core", "fokkerplanck", "ablation"}, E14SchemeAblation, 8},
		{"E15", "Poincaré return map and quadratic contraction law", []string{"core", "characteristics"}, E15ReturnMapLaw, 0},
		{"E16", "multi-hop tandem network: share vs hop count", []string{"extension", "des", "multihop"}, E16TandemHopCount, 0},
		{"E17", "Fokker-Planck vs exact Markov chain (Eq. 14 ground truth)", []string{"extension", "fokkerplanck", "markov"}, E17FokkerPlanckVsMarkov, 0},
		{"E18", "AIMD under bursty (on/off) traffic: variability sweep", []string{"extension", "des", "traffic", "sweep"}, E18BurstinessSweep, 4},
		{"E19", "delayed-feedback stability boundary (Hopf point)", []string{"extension", "dde", "stability", "sweep"}, E19StabilityBoundary, 7},
		{"E20", "gateway feedback disciplines: threshold vs DECbit vs RED", []string{"extension", "des", "gateway"}, E20GatewayComparison, 0},
		{"E21", "TCP-Tahoe share vs RTT ratio (Jacobson/Zhang unfairness)", []string{"extension", "des", "tahoe"}, E21TahoeRTTShare, 0},
		{"E22", "stiff-law integrator ablation: RK4 vs implicit", []string{"extension", "ode", "ablation"}, E22IntegratorAblation, 0},
		{"E23", "engineering the delay budget: AIMD vs PD damping", []string{"extension", "dde", "stability"}, E23DelayBudgetEngineering, 0},
		{"E24", "n delayed sources: shared-loop oscillation, invariant budget", []string{"extension", "dde", "stability", "sweep"}, E24MultiSourceDelay, 4},
		{"E25", "explicit queue feedback vs implicit loss feedback", []string{"extension", "des"}, E25ImplicitVsExplicit, 0},
		{"E26", "parking-lot topology fairness (netsim)", []string{"extension", "netsim", "multihop"}, E26ParkingLotFairness, 0},
		{"E27", "cross-traffic bottleneck migration (netsim sweep)", []string{"extension", "netsim", "sweep"}, E27BottleneckMigration, 0},
		{"E28", "mean-field convergence: particles vs density in N", []string{"extension", "meanfield", "sde", "sweep"}, E28MeanFieldConvergence, 8},
		{"E29", "heterogeneous RTT mix at N=10⁶ (mean-field sweep)", []string{"extension", "meanfield", "fairness", "sweep"}, E29HeterogeneousRTTMix, 8},
		{"E30", "parking-lot fairness in the large-N limit (netmf sweep)", []string{"extension", "netmf", "multihop", "fairness", "sweep"}, E30ParkingLotLargeN, 6},
		{"E31", "bottleneck migration under a class-mix ramp (netmf sweep)", []string{"extension", "netmf", "sweep"}, E31BottleneckMigrationLargeN, 6},
		{"E32", "misbehaving sources vs 10⁶ compliant sources (mean-field sweep)", []string{"extension", "meanfield", "adversarial", "sweep"}, E32AdversarialDegradation, 9},
		{"E33", "gateway protection under an unresponsive blaster (netsim sweep)", []string{"extension", "netsim", "gateway", "adversarial", "sweep"}, E33GatewayProtection, 9},
		{"E34", "session churn vs kinetic starvation on a two-hop path (netmf sweep)", []string{"extension", "netmf", "churn", "sweep"}, E34ChurnTurnover, 6},
	}
}
