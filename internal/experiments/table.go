// Package experiments regenerates every table and figure of the
// paper's evaluation, plus the extensions layered on it: each
// experiment E1..E27 is a function returning a Table of labelled rows
// that a CLI (cmd/benchreport) or a benchmark (bench_test.go at the
// repository root) can print and time. EXPERIMENTS.md records the
// paper's claim next to the measured outcome for each.
//
// Every experiment is deterministic: stochastic components take fixed
// seeds, so the printed tables are reproducible run to run.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a labelled result table in paper style: a caption, column
// headers, and rows of cells.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Caption string
	Columns []string
	Rows    [][]string
	// Findings summarizes the qualitative outcome (who wins, which
	// direction), mirroring how EXPERIMENTS.md reports shape checks.
	Findings []string
}

// AddRow appends a formatted row; values are Sprint'ed with %v unless
// they are float64, which use %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddFinding records a qualitative outcome line.
func (t *Table) AddFinding(format string, args ...any) {
	t.Findings = append(t.Findings, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Caption)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, f := range t.Findings {
		fmt.Fprintf(&b, "  => %s\n", f)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns every experiment in order; EXPERIMENTS.md is the
// companion index of claims and measured outcomes.
func All() []Runner {
	return []Runner{
		{"E1", "characteristic drift directions (Figure 2)", E1QuadrantDrifts},
		{"E2", "convergent spiral and Theorem 1 (Figure 3)", E2ConvergentSpiral},
		{"E3", "packet-level queue trace (Figure 1)", E3QueueTrace},
		{"E4", "equal-parameter fairness (Section 6)", E4FairnessEqual},
		{"E5", "heterogeneous-parameter shares (Section 6)", E5FairnessHetero},
		{"E6", "delay-induced oscillation (Section 7)", E6DelayOscillation},
		{"E7", "delay-induced unfairness (Section 7)", E7DelayUnfairness},
		{"E8", "algorithm-induced oscillation: AIAD vs AIMD", E8AlgorithmOscillation},
		{"E9", "Fokker-Planck vs Monte-Carlo validation (Eq. 14)", E9FokkerPlanckVsMonteCarlo},
		{"E10", "variability: Fokker-Planck vs fluid approximation", E10VariabilityVsFluid},
		{"E11", "convergence speed vs (C0, C1) (Theorem 1)", E11ParameterSweep},
		{"E12", "stationary spread vs sigma (Section 5 closing)", E12DiffusionSpread},
		{"E13", "window protocol vs rate analogue (Eq. 1 vs Eq. 2)", E13WindowRateEquivalence},
		{"E14", "FP advection scheme ablation (upwind vs MUSCL)", E14SchemeAblation},
		{"E15", "Poincaré return map and quadratic contraction law", E15ReturnMapLaw},
		{"E16", "multi-hop tandem network: share vs hop count", E16TandemHopCount},
		{"E17", "Fokker-Planck vs exact Markov chain (Eq. 14 ground truth)", E17FokkerPlanckVsMarkov},
		{"E18", "AIMD under bursty (on/off) traffic: variability sweep", E18BurstinessSweep},
		{"E19", "delayed-feedback stability boundary (Hopf point)", E19StabilityBoundary},
		{"E20", "gateway feedback disciplines: threshold vs DECbit vs RED", E20GatewayComparison},
		{"E21", "TCP-Tahoe share vs RTT ratio (Jacobson/Zhang unfairness)", E21TahoeRTTShare},
		{"E22", "stiff-law integrator ablation: RK4 vs implicit", E22IntegratorAblation},
		{"E23", "engineering the delay budget: AIMD vs PD damping", E23DelayBudgetEngineering},
		{"E24", "n delayed sources: shared-loop oscillation, invariant budget", E24MultiSourceDelay},
		{"E25", "explicit queue feedback vs implicit loss feedback", E25ImplicitVsExplicit},
		{"E26", "parking-lot topology fairness (netsim)", E26ParkingLotFairness},
		{"E27", "cross-traffic bottleneck migration (netsim sweep)", E27BottleneckMigration},
	}
}
