package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// renderTable renders one table in all three formats.
func renderTable(t *testing.T, tb *Table) (text, csv, js string) {
	t.Helper()
	var cb bytes.Buffer
	if err := tb.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	return tb.String(), cb.String(), string(j)
}

// TestMeanFieldTablesDeterministicAcrossWorkers pins the worker bound
// of both parallel layers under E28/E29 — the sweep cell pool and the
// particle chunk pool — at 1 and at 8, and requires byte-identical
// text, CSV and JSON. This is the meanfield instance of the
// repository-wide contract that worker counts change wall-clock time,
// never results.
func TestMeanFieldTablesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E28 (10⁴-particle ensembles) and E29 twice each")
	}
	for _, tc := range []struct {
		id  string
		run func(rc *Recorder, workers int) (*Table, error)
	}{
		{"E28", e28Table},
		{"E29", e29Table},
	} {
		serial, err := tc.run(nil, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", tc.id, err)
		}
		parallel, err := tc.run(nil, 8)
		if err != nil {
			t.Fatalf("%s workers=8: %v", tc.id, err)
		}
		st, sc, sj := renderTable(t, serial)
		pt, pc, pj := renderTable(t, parallel)
		if st != pt {
			t.Errorf("%s text differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", tc.id, st, pt)
		}
		if sc != pc {
			t.Errorf("%s CSV differs between 1 and 8 workers", tc.id)
		}
		if sj != pj {
			t.Errorf("%s JSON differs between 1 and 8 workers", tc.id)
		}
		if alarm := serial.Alarm(); alarm != "" {
			t.Errorf("%s alarmed: %s", tc.id, alarm)
		}
	}
}
