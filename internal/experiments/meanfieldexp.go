package experiments

import (
	"math"
	"strconv"

	"fpcc/internal/control"
	"fpcc/internal/meanfield"
	"fpcc/internal/sweep"
)

// The meanfield experiments exercise the paper's large-N limit
// directly: E28 validates the kinetic (population-density) engine
// against finite-N particle ensembles of growing size, and E29 runs
// the heterogeneous-population scenario — mixed RTT classes at
// N = 10⁶ — that Jain/Ramakrishnan/Chiu evaluate congestion avoidance
// on and that per-source engines cannot reach.

// mfScaledConfig is the canonical scaled scenario shared by E28's
// cells: n sources with unit service share, total queue target 2n, so
// observables per source are N-invariant and the mean-field limit is
// approached along a fixed trajectory.
func mfScaledConfig(n int) meanfield.Config {
	return meanfield.Config{
		Classes: []meanfield.Class{{
			Law:     control.AIMD{C0: 0.5, C1: 0.5, QHat: 2 * float64(n)},
			N:       n,
			Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
		}},
		Mu: float64(n), LMax: 4, Bins: 160, Dt: 0.01, Q0: 2 * float64(n),
	}
}

const (
	mfWarm        = 40.0 // transient discarded before measuring
	mfHorizon     = 80.0
	mfSampleEvery = 50 // steps between marginal samples
)

// E28MeanFieldConvergence runs the convergence harness: the kinetic
// density solution (cost independent of N) against SoA particle
// ensembles of growing N, compared on the window-averaged queue and
// the time-averaged rate distribution (marginal L1). The particle
// cells run on the parallel sweep runner with deterministic per-cell
// seeds.
func E28MeanFieldConvergence(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	return e28Table(rc, ctx.Inner())
}

// e28Table is E28 with an explicit worker bound for both the sweep
// pool and the per-cell particle chunk pool, so determinism tests can
// pin workers=1 vs 8 and compare bytes.
func e28Table(rc *Recorder, workers int) (*Table, error) {
	t := &Table{
		ID:      "E28",
		Caption: "mean-field convergence: particle ensembles vs kinetic density as N grows (per-source units)",
		Columns: []string{"N", "mean Q/N (particles)", "mean Q/N (density)", "queue gap %", "marginal L1"},
	}

	// Kinetic reference: one density solve serves every N (the
	// scenario is scaled so per-source observables are N-invariant).
	setup := rc.Span("setup")
	cfg := mfScaledConfig(10000)
	cfg.SecondOrder = true
	cfg.Obs = rc.Child("ref")
	d, err := meanfield.NewDensity(cfg)
	if err != nil {
		return nil, err
	}
	setup.End()
	stepSpan := rc.Span("step")
	if err := d.Run(mfWarm); err != nil {
		return nil, err
	}
	refMarg := make([]float64, cfg.Bins)
	var refQ float64
	var cnt, samples int
	for step := 0; d.Time() < mfHorizon; step++ {
		if err := d.Step(); err != nil {
			return nil, err
		}
		refQ += d.Queue()
		cnt++
		if step%mfSampleEvery == 0 {
			m := d.Marginal(0)
			for i := range refMarg {
				refMarg[i] += m[i]
			}
			samples++
		}
	}
	refQ = refQ / float64(cnt) / 10000
	for i := range refMarg {
		refMarg[i] /= float64(samples)
	}

	type cellOut struct {
		meanQ, gap, l1 float64
	}
	grid := sweep.Grid{Dims: []sweep.Dim{
		{Name: "N", Values: []float64{100, 1000, 10000}},
	}}
	dl := cfg.LMax / float64(cfg.Bins)
	cells, err := sweep.Run(sweep.Config{Grid: grid, BaseSeed: 28, Workers: workers, Obs: rc}, func(c sweep.Cell) (cellOut, error) {
		n := int(c.Values[0])
		pcfg := mfScaledConfig(n)
		pcfg.Obs = rc.Child("cell" + strconv.Itoa(c.Index))
		p, err := meanfield.NewParticles(pcfg, c.Seed, workers)
		if err != nil {
			return cellOut{}, err
		}
		if err := p.Run(mfWarm); err != nil {
			return cellOut{}, err
		}
		avgEmp := make([]float64, cfg.Bins)
		var qSum float64
		var qn, hs int
		for step := 0; p.Time() < mfHorizon; step++ {
			if err := p.Step(); err != nil {
				return cellOut{}, err
			}
			qSum += p.Queue()
			qn++
			if step%mfSampleEvery == 0 {
				h, err := p.Histogram(0, cfg.Bins)
				if err != nil {
					return cellOut{}, err
				}
				for i, cnt := range h.Counts {
					avgEmp[i] += float64(cnt) / float64(n) / dl
				}
				hs++
			}
		}
		var l1 float64
		for i := range avgEmp {
			l1 += math.Abs(avgEmp[i]/float64(hs)-refMarg[i]) * dl
		}
		meanQ := qSum / float64(qn) / float64(n)
		return cellOut{meanQ: meanQ, gap: 100 * math.Abs(meanQ-refQ) / refQ, l1: l1}, nil
	})
	stepSpan.End()
	if err != nil {
		return nil, err
	}
	render := rc.Span("render")
	defer render.End()
	l1Monotone := true
	for i, c := range cells {
		t.AddRow(grid.Dims[0].Values[i], c.meanQ, refQ, c.gap, c.l1)
		if i > 0 && c.l1 >= cells[i-1].l1 {
			l1Monotone = false
		}
	}
	last := cells[len(cells)-1]
	if last.gap <= 2 && l1Monotone {
		t.AddFinding("particle observables converge to the kinetic solution: marginal L1 falls %.3f -> %.3f -> %.3f (~1/√N) and the N=10⁴ steady mean queue matches within %.2g%% — the density engine is the valid large-N limit at O(classes × bins) cost",
			cells[0].l1, cells[1].l1, cells[2].l1, last.gap)
	} else {
		t.AddFinding("MISMATCH: N=10⁴ queue gap %.2f%% (want <= 2%%), L1 sequence %v monotone=%v",
			last.gap, []float64{cells[0].l1, cells[1].l1, cells[2].l1}, l1Monotone)
	}
	return t, nil
}

// E29HeterogeneousRTTMix runs the scenario the DEC congestion-
// avoidance evaluations posed and per-source engines cannot scale to:
// a million-source population split between a fast-RTT and a slow-RTT
// class (the slow class probes more slowly, C0 ∝ 1/RTT, and observes
// the queue later), swept over the mix fraction and the RTT ratio as
// grid dimensions of the parallel sweep runner.
func E29HeterogeneousRTTMix(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	return e29Table(rc, ctx.Inner())
}

// e29Table is E29 with an explicit sweep worker bound (see e28Table).
func e29Table(rc *Recorder, workers int) (*Table, error) {
	t := &Table{
		ID:      "E29",
		Caption: "heterogeneous RTT mix at N=10⁶: per-source shares of slow vs fast classes (mean-field density)",
		Columns: []string{"slow frac", "RTT ratio", "fast share", "slow share", "share ratio", "mean Q/N", "Jain"},
	}
	const (
		total = 1_000_000
		qhat0 = 2.0
	)
	type cellOut struct {
		fast, slow, q, jain float64
	}
	grid := sweep.Grid{Dims: []sweep.Dim{
		{Name: "slowfrac", Values: []float64{0.2, 0.5, 0.8}},
		{Name: "rttratio", Values: []float64{2, 8}},
	}}
	stepSpan := rc.Span("step")
	cells, err := sweep.Run(sweep.Config{Grid: grid, BaseSeed: 29, Workers: workers, Obs: rc}, func(c sweep.Cell) (cellOut, error) {
		frac, ratio := c.Values[0], c.Values[1]
		nSlow := int(frac * total)
		nFast := total - nSlow
		qhat := qhat0 * total
		cfg := meanfield.Config{
			Classes: []meanfield.Class{
				{
					Name: "fast", Law: control.AIMD{C0: 0.5, C1: 0.5, QHat: qhat},
					N: nFast, Delay: 0.2, Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
				},
				{
					Name: "slow", Law: control.AIMD{C0: 0.5 / ratio, C1: 0.5, QHat: qhat},
					N: nSlow, Delay: 0.2 * ratio, Lambda0: 1, InitStd: 0.3, SigmaL: 0.3,
				},
			},
			Mu: total, LMax: 6, Bins: 192, Dt: 0.005, Q0: qhat, SecondOrder: true,
			Obs: rc.Child("cell" + strconv.Itoa(c.Index)),
		}
		d, err := meanfield.NewDensity(cfg)
		if err != nil {
			return cellOut{}, err
		}
		meanQ, rates, err := meanfield.SteadyStats(d, 60, 120, nil)
		if err != nil {
			return cellOut{}, err
		}
		fast, slow := rates[0], rates[1]
		// Jain's index over the full per-source allocation (nFast
		// sources at the fast share, nSlow at the slow share).
		nf, ns := float64(nFast), float64(nSlow)
		sum := nf*fast + ns*slow
		sumSq := nf*fast*fast + ns*slow*slow
		return cellOut{
			fast: fast, slow: slow,
			q:    meanQ / total,
			jain: sum * sum / (float64(total) * sumSq),
		}, nil
	})
	stepSpan.End()
	if err != nil {
		return nil, err
	}
	render := rc.Span("render")
	defer render.End()
	allBeaten := true
	ratioGrows := true
	maxRatio := math.Inf(-1)
	for i, c := range cells {
		vals := grid.Values(i)
		shareRatio := c.fast / c.slow
		t.AddRow(vals[0], vals[1], c.fast, c.slow, shareRatio, c.q, c.jain)
		if shareRatio <= 1 {
			allBeaten = false
		}
		if shareRatio > maxRatio {
			maxRatio = shareRatio
		}
		// Cells come in (slowfrac, ratio=2), (slowfrac, ratio=8)
		// pairs: the higher RTT ratio must widen the share gap.
		if i%2 == 1 && shareRatio <= cells[i-1].fast/cells[i-1].slow {
			ratioGrows = false
		}
	}
	if allBeaten && ratioGrows {
		t.AddFinding("the slow-RTT class is beaten below the fast class's per-source share in every mix (ratio up to %.2f at RTT ratio 8), and widening the RTT ratio widens the gap — the DEC heterogeneous-population unfairness, reproduced at N=10⁶ for the cost of a density solve",
			maxRatio)
	} else {
		t.AddFinding("UNEXPECTED: beaten-everywhere=%v ratio-grows-with-RTT=%v", allBeaten, ratioGrows)
	}
	return t, nil
}
