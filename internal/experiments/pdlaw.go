package experiments

import (
	"math"

	"fpcc/internal/control"
	"fpcc/internal/dde"
	"fpcc/internal/stability"
)

// E23DelayBudgetEngineering compares the paper's threshold feedback
// (AIMD, via its smooth surrogate) with the PD law of the Mitra-Seery
// style the introduction cites: g = −Kq(q−q̂) − Kl(λ−μ). AIMD's
// linearization (a, b) is fixed by (C0, C1, μ) — its Section 7 delay
// budget is whatever τ* those give, in fact ≈ width/μ regardless of
// gains (E19). The PD law exposes the damping b = −Kl directly, so
// raising Kl buys delay tolerance. Each row fixes the restoring gain
// at AIMD's own a and sweeps Kl; the last column verifies with the
// nonlinear DDE at a delay where AIMD already rings.
func E23DelayBudgetEngineering(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E23",
		Caption: "engineering the delay budget: AIMD's fixed damping vs PD damping sweep (τ test = 0.30 s)",
		Columns: []string{"law", "damping b", "τ* (s)", "Hopf ω (rad/s)", "DDE swing at τ=0.30"},
	}
	const (
		mu      = 10.0
		qHat    = 20.0
		tauTest = 0.30
	)
	smooth, err := control.NewSmoothAIMD(2, 0.8, qHat, 1.5)
	if err != nil {
		return nil, err
	}
	lin, err := stability.Linearize(smooth, mu, 0, 60)
	if err != nil {
		return nil, err
	}

	swing := func(law control.Law) (float64, error) {
		sys := func(tt float64, y []float64, lag dde.Lagger, dydt []float64) {
			dydt[0] = y[1] - mu
			if y[0] <= 0 && y[1] < mu {
				dydt[0] = 0
			}
			dydt[1] = law.Drift(lag.Lag(0, tauTest), y[1])
		}
		hist := func(tt float64) []float64 { return []float64{5, mu + 1} }
		res, err := dde.Solve(sys, hist, []float64{tauTest}, 0, 400, 0.001, dde.Options{Stride: 100})
		if err != nil {
			return 0, err
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < res.Len(); i++ {
			tt, y := res.At(i)
			if tt < 300 {
				continue
			}
			lo = math.Min(lo, y[1])
			hi = math.Max(hi, y[1])
		}
		return hi - lo, nil
	}

	addRow := func(name string, a, b float64, law control.Law) error {
		tauStar, omega, err := stability.CriticalDelay(a, b)
		if err != nil {
			return err
		}
		sw, err := swing(law)
		if err != nil {
			return err
		}
		t.AddRow(name, b, tauStar, omega, sw)
		return nil
	}

	if err := addRow("AIMD (smooth)", lin.A, lin.B, smooth); err != nil {
		return nil, err
	}
	var lastTau float64
	for _, kl := range []float64{0.5, 1, 2, 4} {
		pd, err := control.NewLinear(-lin.A, kl, qHat, mu)
		if err != nil {
			return nil, err
		}
		if err := addRow("PD", lin.A, -kl, pd); err != nil {
			return nil, err
		}
		tauStar, _, err := stability.CriticalDelay(lin.A, -kl)
		if err != nil {
			return nil, err
		}
		lastTau = tauStar
	}
	tauAIMD, _, err := stability.CriticalDelay(lin.A, lin.B)
	if err != nil {
		return nil, err
	}
	if lastTau > 5*tauAIMD {
		t.AddFinding("explicit rate damping stretches the delay budget from %.2f s (AIMD, stuck at ≈ width/μ) to %.2f s (PD, Kl=4) at the same restoring gain — the lever Section 7's threshold law does not have", tauAIMD, lastTau)
	} else {
		t.AddFinding("τ*: AIMD %.3f s vs PD(Kl=4) %.3f s", tauAIMD, lastTau)
	}
	t.AddFinding("the DDE column confirms it nonlinearly: at τ = 0.30 s the AIMD loop rings while sufficiently damped PD loops sit quiet")
	return t, nil
}
