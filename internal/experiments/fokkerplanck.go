package experiments

import (
	"math"

	"fpcc/internal/fluid"
	"fpcc/internal/fokkerplanck"
	"fpcc/internal/sde"
	"fpcc/internal/stats"
)

// e9Config returns the shared FP/SDE configuration for the validation
// experiments. The solver's sweep pool is bounded by the suite's
// inner-worker knob; results are worker-count independent.
func e9Config(sigma float64, inner int) fokkerplanck.Config {
	return fokkerplanck.Config{
		Law:   refLaw(),
		Mu:    refMu,
		Sigma: sigma,
		QMax:  60, NQ: 150,
		VMin: -12, VMax: 12, NV: 120,
		Workers: inner,
	}
}

// E9FokkerPlanckVsMonteCarlo validates the Section 4 equation: the
// PDE solution's moments and q-marginal must match a large SDE
// particle ensemble of the same system through the transient.
func E9FokkerPlanckVsMonteCarlo(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	t := &Table{
		ID:      "E9",
		Caption: "Eq. 14 PDE vs Monte-Carlo ensemble: transient moments and density distance",
		Columns: []string{"t (s)", "E[Q] FP", "E[Q] MC", "Var[Q] FP", "Var[Q] MC", "marginal L1 dist"},
	}
	const sigma = 1.5
	const q0, l0, stdQ, stdL = 5.0, 8.0, 1.5, 1.0
	inner := ctx.Inner()
	setup := rc.Span("setup")
	cfg := e9Config(sigma, inner)
	cfg.Obs = rc
	cfg.Float32 = float32For("E9")
	s, err := fokkerplanck.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.SetGaussian(q0, l0-refMu, stdQ, stdL); err != nil {
		return nil, err
	}
	ens, err := sde.New(sde.Config{
		Law: cfg.Law, Mu: refMu, Sigma: sigma,
		Particles: 40000, Dt: 2e-3, Seed: 99,
		Q0: q0, Lambda0: l0, InitStdQ: stdQ, InitStdL: stdL,
		Workers: inner,
		Obs:     rc,
	})
	if err != nil {
		return nil, err
	}
	setup.End()
	stepSpan := rc.Span("step")
	checkpoints := []float64{1, 2, 5, 10, 20}
	worstL1 := 0.0
	worstMean := 0.0
	fpMarg := make([]float64, 0, cfg.NQ)
	for _, cp := range checkpoints {
		if err := s.Advance(cp, 0); err != nil {
			return nil, err
		}
		ens.Run(cp)
		fp := s.Moments()
		mc := ens.Moments()
		// Marginal density comparison on the PDE grid (buffer reused
		// across checkpoints).
		fpMarg = s.AppendMarginalQ(fpMarg[:0])
		hist, err := ens.QueueHistogram(cfg.QMax, cfg.NQ)
		if err != nil {
			return nil, err
		}
		mcMarg := hist.Density()
		l1, err := stats.L1DensityDistance(fpMarg, mcMarg, s.Grid().X.Dx)
		if err != nil {
			return nil, err
		}
		if l1 > worstL1 {
			worstL1 = l1
		}
		if d := math.Abs(fp.MeanQ - mc.MeanQ); d > worstMean {
			worstMean = d
		}
		t.AddRow(cp, fp.MeanQ, mc.MeanQ, fp.VarQ, mc.VarQ, l1)
	}
	stepSpan.End()
	if err := ens.InvariantViolation(); err != nil {
		return nil, err
	}
	render := rc.Span("render")
	defer render.End()
	if worstMean < 2.5 && worstL1 < 0.5 {
		t.AddFinding("FP tracks the particle system through the transient (worst mean gap %.2f, worst L1 %.2f): Eq. 14 is the right forward equation", worstMean, worstL1)
	} else {
		t.AddFinding("VALIDATION GAP: worst mean %.2f, worst L1 %.2f", worstMean, worstL1)
	}
	return t, nil
}

// E10VariabilityVsFluid is the abstract's differentiating claim: the
// Fokker-Planck model "addresses traffic variability that fluid
// approximation techniques do not". The fluid model collapses to a
// trajectory (a point mass), so any buffer larger than the final queue
// value overflows with probability exactly 0; the FP density keeps the
// spread and reports a positive overflow probability near the
// operating point.
func E10VariabilityVsFluid(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	t := &Table{
		ID:      "E10",
		Caption: "buffer overflow P(Q > B) at steady state: fluid vs Fokker-Planck vs Monte-Carlo",
		Columns: []string{"buffer B", "fluid P(Q>B)", "FP P(Q>B)", "MC P(Q>B)"},
	}
	// By t = 80 the σ=2 system has reached its stationary regime
	// (cross-checked by E12's longer runs).
	const sigma = 2.0
	const horizon = 80.0
	inner := ctx.Inner()
	setup := rc.Span("setup")
	cfg := e9Config(sigma, inner)
	cfg.Obs = rc
	cfg.Float32 = float32For("E10")
	s, err := fokkerplanck.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.SetGaussian(5, -2, 1.5, 1); err != nil {
		return nil, err
	}
	setup.End()
	stepSpan := rc.Span("step")
	if err := s.Advance(horizon, 0); err != nil {
		return nil, err
	}
	ens, err := sde.New(sde.Config{
		Law: cfg.Law, Mu: refMu, Sigma: sigma,
		Particles: 20000, Dt: 5e-3, Seed: 123,
		Q0: 5, Lambda0: 8, InitStdQ: 1.5, InitStdL: 1,
		Workers: inner,
		Obs:     rc,
	})
	if err != nil {
		return nil, err
	}
	ens.Run(horizon)
	stepSpan.End()
	if err := ens.InvariantViolation(); err != nil {
		return nil, err
	}
	render := rc.Span("render")
	defer render.End()

	// Fluid trajectory: deterministic point state at the horizon.
	m := fluid.Model{Mu: refMu, Q0: 5, Sources: []fluid.Source{{Law: refLaw(), Lambda0: 8}}}
	sol, err := m.Solve(horizon, 1e-3, 100)
	if err != nil {
		return nil, err
	}
	_, yEnd := sol.Last()
	qFluid := yEnd[0]

	buffers := []float64{22, 25, 30, 35, 40}
	fpPositive := true
	fluidZero := true
	for _, b := range buffers {
		var pFluid float64
		if qFluid > b {
			pFluid = 1
		}
		pFP := s.TailProb(b)
		pMC := ens.TailFraction(b)
		if pFP <= 0 && b <= 30 {
			fpPositive = false
		}
		if pFluid != 0 {
			fluidZero = false
		}
		t.AddRow(b, pFluid, pFP, pMC)
	}
	if fluidZero && fpPositive {
		t.AddFinding("fluid reports 0 for every buffer above its point value (q=%.2f) while FP and MC agree on positive overflow mass: the FP model captures variability the fluid cannot", qFluid)
	} else {
		t.AddFinding("UNEXPECTED: fluid zero=%v, FP positive=%v", fluidZero, fpPositive)
	}
	return t, nil
}
