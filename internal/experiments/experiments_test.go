package experiments

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// checkTable verifies an experiment ran, produced rows, and did not
// flag an unexpected shape (findings containing capitalized alarm
// words mark a reproduction failure).
func checkTable(t *testing.T, tb *Table, err error, wantRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want >= %d", tb.ID, len(tb.Rows), wantRows)
	}
	if len(tb.Findings) == 0 {
		t.Fatalf("%s: no findings recorded", tb.ID)
	}
	if alarm := tb.Alarm(); alarm != "" {
		t.Fatalf("%s: alarmed finding: %s", tb.ID, alarm)
	}
	// The table must render without panicking and contain its id.
	s := tb.String()
	if !strings.Contains(s, tb.ID) {
		t.Fatalf("%s: rendered table missing id", tb.ID)
	}
}

func TestE1(t *testing.T) {
	tb, err := E1QuadrantDrifts(nil)
	checkTable(t, tb, err, 4)
}

func TestE2(t *testing.T) {
	tb, err := E2ConvergentSpiral(nil)
	checkTable(t, tb, err, 5)
}

func TestE3(t *testing.T) {
	tb, err := E3QueueTrace(nil)
	checkTable(t, tb, err, 5)
}

func TestE4(t *testing.T) {
	if testing.Short() {
		t.Skip("long fluid+DES run")
	}
	tb, err := E4FairnessEqual(nil)
	checkTable(t, tb, err, 2)
}

func TestE5(t *testing.T) {
	if testing.Short() {
		t.Skip("long fluid run")
	}
	tb, err := E5FairnessHetero(nil)
	checkTable(t, tb, err, 3)
}

func TestE6(t *testing.T) {
	if testing.Short() {
		t.Skip("delay sweep")
	}
	tb, err := E6DelayOscillation(nil)
	checkTable(t, tb, err, 5)
}

func TestE7(t *testing.T) {
	if testing.Short() {
		t.Skip("delay-ratio sweep")
	}
	tb, err := E7DelayUnfairness(nil)
	checkTable(t, tb, err, 4)
}

func TestE8(t *testing.T) {
	tb, err := E8AlgorithmOscillation(nil)
	checkTable(t, tb, err, 2)
}

func TestE9(t *testing.T) {
	if testing.Short() {
		t.Skip("PDE + 40k-particle ensemble")
	}
	tb, err := E9FokkerPlanckVsMonteCarlo(nil)
	checkTable(t, tb, err, 5)
}

func TestE10(t *testing.T) {
	if testing.Short() {
		t.Skip("PDE steady-state run")
	}
	tb, err := E10VariabilityVsFluid(nil)
	checkTable(t, tb, err, 5)
}

func TestE11(t *testing.T) {
	if testing.Short() {
		t.Skip("9-point parameter sweep")
	}
	tb, err := E11ParameterSweep(nil)
	checkTable(t, tb, err, 9)
}

func TestE12(t *testing.T) {
	if testing.Short() {
		t.Skip("sigma sweep of PDE runs")
	}
	tb, err := E12DiffusionSpread(nil)
	checkTable(t, tb, err, 4)
}

func TestE13(t *testing.T) {
	if testing.Short() {
		t.Skip("two long DES runs")
	}
	tb, err := E13WindowRateEquivalence(nil)
	checkTable(t, tb, err, 2)
}

func TestE14(t *testing.T) {
	if testing.Short() {
		t.Skip("two PDE runs + ensemble")
	}
	tb, err := E14SchemeAblation(nil)
	checkTable(t, tb, err, 3)
}

func TestE15(t *testing.T) {
	tb, err := E15ReturnMapLaw(nil)
	checkTable(t, tb, err, 6)
}

func TestE16(t *testing.T) {
	if testing.Short() {
		t.Skip("long tandem run")
	}
	tb, err := E16TandemHopCount(nil)
	checkTable(t, tb, err, 3)
}

func TestAllRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 34 {
		t.Fatalf("registry has %d experiments, want 34", len(all))
	}
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("reading EXPERIMENTS.md: %v", err)
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete experiment %+v", r)
		}
		if len(r.Tags) == 0 {
			t.Fatalf("%s has no tags", r.ID)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		// Every registered experiment must be documented: EXPERIMENTS.md
		// is the companion index of claims vs outcomes. Anchor to a
		// '### ' heading (possibly shared, e.g. '### E4 / E5 — ...')
		// so an incidental mention in prose does not satisfy the check.
		heading := regexp.MustCompile(`(?m)^### .*\b` + regexp.QuoteMeta(r.ID) + `\b`)
		if !heading.Match(doc) {
			t.Errorf("%s is registered but has no '### %s' section in EXPERIMENTS.md", r.ID, r.ID)
		}
		// The suite runner derives the experiment-level span metric
		// ("exp.<ID>") and the trace scope from the ID, so IDs must
		// stay plain E<number> tokens — anything else would produce
		// trace names that filters and dashboards can't address.
		if !regexp.MustCompile(`^E\d+$`).MatchString(r.ID) {
			t.Errorf("id %q is not a plain E<number> token (breaks exp.<ID> span naming)", r.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:      "T",
		Caption: "caption",
		Columns: []string{"a", "long-column"},
	}
	tb.AddRow(1.23456789, "x")
	tb.AddRow("str", 7)
	tb.AddFinding("finding %d", 42)
	s := tb.String()
	for _, want := range []string{"T — caption", "long-column", "1.235", "finding 42", "=>"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestE17(t *testing.T) {
	if testing.Short() {
		t.Skip("uniformization + FP run")
	}
	tb, err := E17FokkerPlanckVsMarkov(nil)
	checkTable(t, tb, err, 4)
}

func TestE18(t *testing.T) {
	if testing.Short() {
		t.Skip("long DES sweep")
	}
	tb, err := E18BurstinessSweep(nil)
	checkTable(t, tb, err, 4)
}

func TestE19(t *testing.T) {
	if testing.Short() {
		t.Skip("DDE sweep")
	}
	tb, err := E19StabilityBoundary(nil)
	checkTable(t, tb, err, 7)
}

func TestE20(t *testing.T) {
	if testing.Short() {
		t.Skip("DES gateway sweep")
	}
	tb, err := E20GatewayComparison(nil)
	checkTable(t, tb, err, 3)
}

func TestE21(t *testing.T) {
	if testing.Short() {
		t.Skip("Tahoe sweep")
	}
	tb, err := E21TahoeRTTShare(nil)
	checkTable(t, tb, err, 4)
}

func TestE22(t *testing.T) {
	if testing.Short() {
		t.Skip("reference integration")
	}
	tb, err := E22IntegratorAblation(nil)
	checkTable(t, tb, err, 9)
}

func TestE23(t *testing.T) {
	if testing.Short() {
		t.Skip("DDE sweep")
	}
	tb, err := E23DelayBudgetEngineering(nil)
	checkTable(t, tb, err, 5)
}

func TestE24(t *testing.T) {
	if testing.Short() {
		t.Skip("n-source DDE sweep")
	}
	tb, err := E24MultiSourceDelay(nil)
	checkTable(t, tb, err, 4)
}

func TestE25(t *testing.T) {
	if testing.Short() {
		t.Skip("long DES runs")
	}
	tb, err := E25ImplicitVsExplicit(nil)
	checkTable(t, tb, err, 3)
}

func TestE26(t *testing.T) {
	if testing.Short() {
		t.Skip("long netsim run")
	}
	tb, err := E26ParkingLotFairness(nil)
	checkTable(t, tb, err, 4)
}

func TestE27(t *testing.T) {
	if testing.Short() {
		t.Skip("netsim sweep")
	}
	tb, err := E27BottleneckMigration(nil)
	checkTable(t, tb, err, 6)
}
