package experiments

import (
	"regexp"
	"testing"
)

// TestSuiteDeterministicAcrossSplits is the two-level scheduler's
// acceptance criterion: any (outer, inner) worker split — serial with
// wide grants, wide outer with unit grants, and a forced inner
// override — must render byte-identical text, CSV and JSON. The
// filter picks experiments whose inner pools actually engage
// (sweep-cell inner workers for E11/E12/E18, the netmf sweep for
// E30), so a split that leaked into results would show here.
func TestSuiteDeterministicAcrossSplits(t *testing.T) {
	filter := regexp.MustCompile(`^E(11|12|18|30)$`)
	base, baseCSV, baseJS := renderSuite(t, 1, filter)
	for _, cfg := range []struct {
		name  string
		outer int
		inner int
	}{
		{"outer4", 4, 0},
		{"outer2-forced3", 2, 3},
		{"outer8-forced1", 8, 1},
	} {
		SetInnerWorkers(cfg.inner)
		text, csv, js := renderSuite(t, cfg.outer, filter)
		SetInnerWorkers(0)
		if text != base {
			t.Errorf("%s: text output differs from serial run", cfg.name)
		}
		if csv != baseCSV {
			t.Errorf("%s: CSV output differs from serial run", cfg.name)
		}
		if js != baseJS {
			t.Errorf("%s: JSON output differs from serial run", cfg.name)
		}
	}
}

// TestNegotiateInner pins the grant policy: the shared budget is
// GOMAXPROCS, each outer worker's experiment receives
// clamp(budget/outer, 1, Width), and Width 0 leaves the grant uncapped.
func TestNegotiateInner(t *testing.T) {
	// negotiateInner reads GOMAXPROCS; derive expectations from it so
	// the test is host-independent.
	budget := negotiateInner(1, 0)
	if budget < 1 {
		t.Fatalf("budget %d < 1", budget)
	}
	if got := negotiateInner(budget, 0); got != 1 {
		t.Errorf("grant at outer=budget: %d, want 1", got)
	}
	if got := negotiateInner(2*budget, 0); got != 1 {
		t.Errorf("grant must clamp to 1 when oversubscribed, got %d", got)
	}
	if got := negotiateInner(1, 1); got != 1 {
		t.Errorf("width 1 must cap the grant, got %d", got)
	}
	if budget > 1 {
		if got := negotiateInner(1, budget-1); got != budget-1 {
			t.Errorf("width %d cap: got %d", budget-1, got)
		}
	}
}

// TestCtxNil: a nil context is the valid direct-invocation default —
// no recorder, unconstrained grant — and the SetInnerWorkers override
// applies to it too.
func TestCtxNil(t *testing.T) {
	var c *Ctx
	if c.Rec() != nil {
		t.Error("nil ctx has a recorder")
	}
	if c.Inner() != 0 {
		t.Errorf("nil ctx grant = %d, want 0 (GOMAXPROCS)", c.Inner())
	}
	SetInnerWorkers(3)
	defer SetInnerWorkers(0)
	if c.Inner() != 3 {
		t.Errorf("override not applied to nil ctx: %d", c.Inner())
	}
	if got := NewCtx(nil, 5).Inner(); got != 3 {
		t.Errorf("override must win over the grant: %d", got)
	}
}
