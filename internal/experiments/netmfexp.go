package experiments

import (
	"math"
	"strconv"

	"fpcc/internal/netmf"
	"fpcc/internal/stats"
	"fpcc/internal/sweep"
)

// The netmf experiments join the repository's two scaling axes:
// multi-bottleneck topologies (the netsim scenario class, E26/E27)
// evaluated in the large-N kinetic limit (the meanfield machinery,
// E28/E29). E30 re-poses the parking-lot fairness benchmark at 10⁶
// sources per class with hop count and RTT stretch as sweep grid
// dimensions; E31 re-poses the bottleneck-migration study as a
// class-mix ramp.

// E30ParkingLotLargeN sweeps the parking-lot benchmark in the
// mean-field limit: one long class crossing every hop vs one cross
// class per hop, at N = 10⁶ sources per class, over hop count × RTT
// stretch. The E26 packet-level ordering (the long flow beaten below
// every cross flow's share) reproduces in every cell — and sharpens:
// because the cross classes hold each hop's queue at the shared
// target q̂, the long class's summed path backlog sits at ≈ hops·q̂,
// permanently above threshold for ANY path of 2+ hops, so its rate
// density collapses to the σ/C1 diffusion floor — a share independent
// of hop count and RTT stretch alike. The partial share E26's long
// flow retains at small N is a finite-N effect (stochastic queue dips
// below threshold re-open its increase branch); in the kinetic limit
// the multi-bottleneck observation bias alone starves a long path
// completely.
func E30ParkingLotLargeN(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	return e30Table(rc, ctx.Inner())
}

// e30Table is E30 with an explicit sweep worker bound, so determinism
// tests can pin workers=1 vs 8 and compare bytes.
func e30Table(rc *Recorder, workers int) (*Table, error) {
	t := &Table{
		ID:      "E30",
		Caption: "parking-lot fairness at N=10⁶ per class: hop count × RTT stretch (netmf sweep)",
		Columns: []string{"hops", "RTT stretch", "long share", "min cross share", "cross/long", "mean Q/hop/N", "Jain"},
	}
	const n = 1_000_000
	type cellOut struct {
		long, minCross, q, jain float64
	}
	grid := sweep.Grid{Dims: []sweep.Dim{
		{Name: "hops", Values: []float64{2, 3, 5}},
		{Name: "rttstretch", Values: []float64{1, 4}},
	}}
	stepSpan := rc.Span("step")
	cells, err := sweep.Run(sweep.Config{Grid: grid, BaseSeed: 30, Workers: workers, Obs: rc}, func(c sweep.Cell) (cellOut, error) {
		hops := int(c.Values[0])
		cfg, err := netmf.ParkingLot(netmf.ParkingLotConfig{
			Hops: hops, N: n, Delay: 0.2, RTTStretch: c.Values[1],
		})
		if err != nil {
			return cellOut{}, err
		}
		cfg.SecondOrder = true
		cfg.Obs = rc.Child("cell" + strconv.Itoa(c.Index))
		e, err := netmf.New(cfg)
		if err != nil {
			return cellOut{}, err
		}
		meanQ, rates, err := netmf.SteadyStats(e, 60, 120, nil)
		if err != nil {
			return cellOut{}, err
		}
		long := rates[0]
		minCross := rates[1]
		for _, r := range rates[2:] {
			if r < minCross {
				minCross = r
			}
		}
		var qPerHop float64
		for _, q := range meanQ {
			qPerHop += q
		}
		qPerHop /= float64(hops) * n
		// Jain's index over the full per-source allocation: n sources
		// at the long share plus n per cross class.
		alloc := make([]float64, 0, len(rates))
		alloc = append(alloc, rates...)
		return cellOut{long: long, minCross: minCross, q: qPerHop, jain: stats.JainIndex(alloc)}, nil
	})
	stepSpan.End()
	if err != nil {
		return nil, err
	}
	render := rc.Span("render")
	defer render.End()
	allBeaten := true
	jainRises := true
	minLong, maxLong := math.Inf(1), math.Inf(-1)
	var minRatio float64
	var prevJain [2]float64 // per RTT-stretch column, indexed by idx%2
	for i, c := range cells {
		vals := grid.Values(i)
		ratio := c.minCross / c.long
		t.AddRow(int(vals[0]), vals[1], c.long, c.minCross, ratio, c.q, c.jain)
		if c.long >= c.minCross {
			allBeaten = false
		}
		if minRatio == 0 || ratio < minRatio {
			minRatio = ratio
		}
		minLong = math.Min(minLong, c.long)
		maxLong = math.Max(maxLong, c.long)
		// Rows arrive hops-major: (2,1),(2,4),(3,1),(3,4),(5,1),(5,4).
		// Within each stretch column, Jain's index must rise with hop
		// count: the one starved class dilutes among ever more
		// fair-share cross classes.
		col := i % 2
		if prevJain[col] != 0 && c.jain <= prevJain[col] {
			jainRises = false
		}
		prevJain[col] = c.jain
	}
	floorFlat := maxLong <= 1.05*minLong
	if allBeaten && floorFlat && jainRises {
		t.AddFinding("the long class ends below every cross share in all %d cells (cross/long >= %.1fx) and is pinned at the same diffusion floor (%.3g-%.3g) regardless of hop count or RTT stretch: in the kinetic limit the summed-backlog bias alone starves any 2+-hop path — the finite share E26's long flow keeps at small N is stochastic mercy, not control fairness", len(cells), minRatio, minLong, maxLong)
	} else {
		t.AddFinding("UNEXPECTED: beaten-everywhere=%v floor-flat=%v jain-rises-with-hops=%v", allBeaten, floorFlat, jainRises)
	}
	return t, nil
}

// E31BottleneckMigrationLargeN ramps the class mix of a two-hop chain
// at N = 10⁶ total sources: an adaptive class crossing both hops
// (μ1 < μ2) against a constant-rate class injected at the second hop.
// As the cross fraction grows, hop 2's residual capacity μ2 − Λ_cross
// shrinks below μ1 and the standing fluid queue migrates downstream —
// the E27 packet-level migration, with the adaptive class's
// throughput tracking the shrinking residual across the whole ramp
// because its feedback sums the path backlog wherever the queue
// stands.
func E31BottleneckMigrationLargeN(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	return e31Table(rc, ctx.Inner())
}

// e31Table is E31 with an explicit sweep worker bound (see e30Table).
func e31Table(rc *Recorder, workers int) (*Table, error) {
	t := &Table{
		ID:      "E31",
		Caption: "bottleneck migration under a class-mix ramp at N=10⁶: adaptive 2-hop class vs constant cross class (netmf sweep)",
		Columns: []string{"cross frac", "main rate", "main throughput/N", "mean Q1/N", "mean Q2/N", "bottleneck"},
	}
	const n = 1_000_000
	type cellOut struct {
		rate, tput, q1, q2 float64
	}
	grid := sweep.Grid{Dims: []sweep.Dim{
		{Name: "crossfrac", Values: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}},
	}}
	stepSpan := rc.Span("step")
	cells, err := sweep.Run(sweep.Config{Grid: grid, BaseSeed: 31, Workers: workers, Obs: rc}, func(c sweep.Cell) (cellOut, error) {
		cfg, err := netmf.CrossChain(netmf.CrossChainConfig{
			N: n, CrossFrac: c.Values[0], Delay: 0.1,
		})
		if err != nil {
			return cellOut{}, err
		}
		cfg.SecondOrder = true
		cfg.Obs = rc.Child("cell" + strconv.Itoa(c.Index))
		e, err := netmf.New(cfg)
		if err != nil {
			return cellOut{}, err
		}
		meanQ, rates, err := netmf.SteadyStats(e, 60, 120, nil)
		if err != nil {
			return cellOut{}, err
		}
		nMain := float64(cfg.Classes[0].N)
		return cellOut{
			rate: rates[0],
			tput: rates[0] * nMain / n,
			q1:   meanQ[0] / n,
			q2:   meanQ[1] / n,
		}, nil
	})
	stepSpan.End()
	if err != nil {
		return nil, err
	}
	render := rc.Span("render")
	defer render.End()
	firstBottleneck, lastBottleneck := "", ""
	var tputs []float64
	for i, c := range cells {
		bottleneck := "hop1"
		if c.q2 > c.q1 {
			bottleneck = "hop2"
		}
		if firstBottleneck == "" {
			firstBottleneck = bottleneck
		}
		lastBottleneck = bottleneck
		tputs = append(tputs, c.tput)
		t.AddRow(grid.Values(i)[0], c.rate, c.tput, c.q1, c.q2, bottleneck)
	}
	declining := tputs[len(tputs)-1] < 0.6*tputs[0]
	if firstBottleneck == "hop1" && lastBottleneck == "hop2" && declining {
		t.AddFinding("the standing fluid queue migrates %s -> %s as the cross class grows and the adaptive class's per-source-normalized throughput falls %.3g -> %.3g, tracking hop 2's residual capacity — the E27 migration at 10⁶ sources", firstBottleneck, lastBottleneck, tputs[0], tputs[len(tputs)-1])
	} else {
		t.AddFinding("UNEXPECTED: bottleneck %s -> %s, throughput/N %v", firstBottleneck, lastBottleneck, tputs)
	}
	return t, nil
}
