package experiments

import (
	"math"

	"fpcc/internal/characteristics"
	"fpcc/internal/control"
	"fpcc/internal/des"
	"fpcc/internal/fokkerplanck"
	"fpcc/internal/sde"
)

// E13WindowRateEquivalence validates the correspondence the paper
// asserts in Section 1 — it analyses "the Jacobson-Ramakrishnan-Jain
// algorithm (or rather, an equivalent rate-based algorithm)". We run
// the original window protocol (Equation 1) and its rate analogue
// (Equation 2, via control.Window.RateEquivalent) through the packet
// simulator and compare long-run throughput and queue behaviour.
func E13WindowRateEquivalence(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Caption: "Eq. 1 window protocol vs its Eq. 2 rate analogue (packet-level)",
		Columns: []string{"controller", "throughput", "utilization", "mean queue", "queue std"},
	}
	const mu = 50.0
	const rtt = 0.2
	wlaw, err := control.NewWindow(1, 0.5, 15)
	if err != nil {
		return nil, err
	}

	wsim, err := des.NewWindowSim(mu, 5, []des.WindowSourceConfig{
		{Law: wlaw, RTT: rtt, Window0: 1},
	}, 0)
	if err != nil {
		return nil, err
	}
	wres, err := wsim.Run(3000, 300)
	if err != nil {
		return nil, err
	}
	t.AddRow("window (Eq. 1)", wres.Throughput[0], wres.Throughput[0]/mu,
		wres.QueueStats.Mean(), wres.QueueStats.StdDev())

	rlaw, err := wlaw.RateEquivalent(rtt, rtt)
	if err != nil {
		return nil, err
	}
	rsim, err := des.New(des.Config{
		Mu:   mu,
		Seed: 5,
		Sources: []des.SourceConfig{{
			Law: rlaw, Delay: rtt, Interval: rtt, Lambda0: 1 / rtt, MinRate: 1 / rtt,
		}},
	})
	if err != nil {
		return nil, err
	}
	rres, err := rsim.Run(3000, 300)
	if err != nil {
		return nil, err
	}
	t.AddRow("rate (Eq. 2)", rres.Throughput[0], rres.Throughput[0]/mu,
		rres.QueueStats.Mean(), rres.QueueStats.StdDev())

	tpGap := math.Abs(wres.Throughput[0]-rres.Throughput[0]) / rres.Throughput[0]
	if tpGap < 0.10 {
		t.AddFinding("throughput within %.1f%% and comparable queue statistics: the rate model is a faithful stand-in for the window protocol", tpGap*100)
	} else {
		t.AddFinding("UNEXPECTED gap %.1f%% between window and rate controllers", tpGap*100)
	}
	return t, nil
}

// E14SchemeAblation quantifies the numerical design choice in the FP
// solver — first-order upwind advection with an optional second-order
// MUSCL/minmod limiter: both schemes against the Monte-Carlo ground
// truth at the same grid, plus their cost per step.
func E14SchemeAblation(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Caption: "FP advection scheme ablation at t=15 (150x120 grid): first-order upwind vs MUSCL",
		Columns: []string{"scheme", "E[Q]", "Var[Q]", "|E[Q]-MC|", "|Var[Q]-MC|"},
	}
	law := refLaw()
	inner := ctx.Inner()
	const sigma = 1.5
	const q0, l0, stdQ, stdL = 5.0, 8.0, 1.5, 1.0
	const horizon = 15.0

	ens, err := sde.New(sde.Config{
		Law: law, Mu: refMu, Sigma: sigma,
		Particles: 20000, Dt: 2e-3, Seed: 21,
		Q0: q0, Lambda0: l0, InitStdQ: stdQ, InitStdL: stdL,
		Workers: inner,
	})
	if err != nil {
		return nil, err
	}
	ens.Run(horizon)
	mc := ens.Moments()

	gaps := make([]float64, 0, 2)
	for _, secondOrder := range []bool{false, true} {
		cfg := e9Config(sigma, inner)
		cfg.SecondOrder = secondOrder
		// Only the first-order row is float32-eligible; the lane has
		// no MUSCL kernels.
		cfg.Float32 = !secondOrder && float32For("E14")
		s, err := fokkerplanck.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := s.SetGaussian(q0, l0-refMu, stdQ, stdL); err != nil {
			return nil, err
		}
		if err := s.Advance(horizon, 0); err != nil {
			return nil, err
		}
		m := s.Moments()
		name := "upwind (1st order)"
		if secondOrder {
			name = "MUSCL/minmod (2nd order)"
		}
		varGap := math.Abs(m.VarQ - mc.VarQ)
		gaps = append(gaps, varGap)
		t.AddRow(name, m.MeanQ, m.VarQ, math.Abs(m.MeanQ-mc.MeanQ), varGap)
	}
	t.AddRow("Monte-Carlo reference", mc.MeanQ, mc.VarQ, 0.0, 0.0)
	if gaps[1] < gaps[0] {
		t.AddFinding("the limiter cuts the variance gap from %.2f to %.2f: numerical diffusion was the dominant first-order error", gaps[0], gaps[1])
	} else {
		t.AddFinding("UNEXPECTED: second-order gap %.2f >= first-order %.2f", gaps[1], gaps[0])
	}
	return t, nil
}

// E15ReturnMapLaw tabulates the Poincaré return map and its quadratic
// small-amplitude law a' = a − (2/3)a²/μ — the sharpened form of
// Theorem 1 this reproduction derives (see EXPERIMENTS.md E2).
func E15ReturnMapLaw(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Caption: "Poincaré return map of the AIMD spiral and its quadratic contraction law",
		Columns: []string{"amplitude a", "a' (one revolution)", "a'/a", "quadratic model a-(2/3)a²/μ"},
	}
	law := refLaw()
	rows, err := characteristics.ContractionTable(law, refMu, []float64{0.25, 0.5, 1, 2, 4, 8})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		model := r[0] - (2.0/3)*r[0]*r[0]/refMu
		t.AddRow(r[0], r[1], r[2], model)
	}
	c, err := characteristics.QuadraticContractionCoefficient(law, refMu)
	if err != nil {
		return nil, err
	}
	if math.Abs(c-2.0/3) < 0.02 {
		t.AddFinding("extrapolated contraction coefficient %.4f ≈ 2/3, independent of C0/C1: Theorem 1's contraction is quadratic, so convergence is asymptotic (amplitudes ~ 1/k)", c)
	} else {
		t.AddFinding("UNEXPECTED coefficient %.4f (want 2/3)", c)
	}
	return t, nil
}
