package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"testing"
	"time"
)

// cheapFilter selects a fast cross-section of the registry (pure
// characteristics analysis, no long DES/PDE runs) for tests that run
// the suite repeatedly.
var cheapFilter = regexp.MustCompile(`^E(1|2|8|15)$`)

func renderSuite(t *testing.T, workers int, filter *regexp.Regexp) (text, csv, js string) {
	t.Helper()
	suite, err := RunSuite(SuiteConfig{Filter: filter, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var tb, cb, jb bytes.Buffer
	if err := suite.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if err := suite.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := suite.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), cb.String(), jb.String()
}

// TestSuiteDeterministicAcrossWorkers is the tentpole's acceptance
// criterion at the suite layer: the full registry, run serially and
// run on 8 workers, must render byte-identical text, CSV and JSON.
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	st, sc, sj := renderSuite(t, 1, nil)
	pt, pc, pj := renderSuite(t, 8, nil)
	if st != pt {
		t.Error("text output differs between 1 worker and 8 workers")
	}
	if sc != pc {
		t.Error("CSV output differs between 1 worker and 8 workers")
	}
	if sj != pj {
		t.Error("JSON output differs between 1 worker and 8 workers")
	}
	for _, e := range All() {
		if !strings.Contains(st, e.ID+" — ") {
			t.Errorf("text output missing table %s", e.ID)
		}
	}
}

// TestSuiteDeterministicCheap covers the same determinism contract on
// a fast subset, so `go test -short` still exercises it.
func TestSuiteDeterministicCheap(t *testing.T) {
	st, sc, sj := renderSuite(t, 1, cheapFilter)
	pt, pc, pj := renderSuite(t, 8, cheapFilter)
	if st != pt || sc != pc || sj != pj {
		t.Error("suite output differs between 1 worker and 8 workers")
	}
	if !strings.Contains(sc, "# E1 — ") || !strings.Contains(sc, "# => ") {
		t.Errorf("CSV missing caption/finding comments:\n%s", sc)
	}
}

// TestSuiteSelect: filters match on id, title and tag; empty
// selections are an error from RunSuite.
func TestSuiteSelect(t *testing.T) {
	if got := Select(nil); len(got) != 34 {
		t.Fatalf("nil filter selects %d, want 34", len(got))
	}
	byID := Select(regexp.MustCompile(`^E19$`))
	if len(byID) != 1 || byID[0].ID != "E19" {
		t.Fatalf("id filter selected %+v", byID)
	}
	byTag := Select(regexp.MustCompile(`^netsim$`))
	if len(byTag) != 3 {
		t.Fatalf("netsim tag selects %d experiments, want 3", len(byTag))
	}
	byTitle := Select(regexp.MustCompile(`Tahoe`))
	if len(byTitle) != 1 || byTitle[0].ID != "E21" {
		t.Fatalf("title filter selected %+v", byTitle)
	}
	if _, err := RunSuite(SuiteConfig{Filter: regexp.MustCompile(`^nothing-matches$`)}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// TestSuiteBenchJSON: the timing report decodes, covers every report,
// and records the worker bound.
func TestSuiteBenchJSON(t *testing.T) {
	suite, err := RunSuite(SuiteConfig{Filter: cheapFilter, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := suite.WriteBenchJSON(&buf, 2, 123*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bench JSON does not decode: %v", err)
	}
	if rep.Workers != 2 {
		t.Errorf("workers = %d, want 2", rep.Workers)
	}
	if rep.TotalSeconds != 0.123 {
		t.Errorf("total = %v, want 0.123", rep.TotalSeconds)
	}
	if len(rep.Experiments) != len(suite.Reports) {
		t.Fatalf("%d timing entries for %d reports", len(rep.Experiments), len(suite.Reports))
	}
	for i, e := range rep.Experiments {
		if e.ID != suite.Reports[i].Experiment.ID || e.Title == "" {
			t.Errorf("entry %d = %+v", i, e)
		}
		if e.Seconds < 0 {
			t.Errorf("%s has negative elapsed %v", e.ID, e.Seconds)
		}
	}
	if len(suite.Alarms()) != 0 {
		t.Errorf("cheap suite alarmed: %v", suite.Alarms())
	}
}

// TestTablePrecision: the aligned text keeps %.4g while CSV and JSON
// carry full-precision values (the AddRow lossiness fix).
func TestTablePrecision(t *testing.T) {
	tb := &Table{ID: "T", Caption: "precision", Columns: []string{"x", "v", "s"}}
	third := 1.0 / 3.0
	tb.AddRow(third, []float64{1.5, third}, "a,b")
	tb.AddFinding("ok")
	if tb.Rows[0][0] != "0.3333" {
		t.Errorf("text cell = %q, want %%.4g rendering 0.3333", tb.Rows[0][0])
	}
	var cb bytes.Buffer
	if err := tb.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	csv := cb.String()
	for _, want := range []string{"# T — precision", "x,v,s", "0.3333333333333333", "1.5;0.3333333333333333", `"a,b"`, "# => ok"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
	js, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "0.3333333333333333") {
		t.Errorf("JSON not full precision: %s", js)
	}
	// Non-finite values must not break JSON encoding (E24 reports a
	// NaN difference-mode rate for n=1).
	nan := &Table{ID: "N", Columns: []string{"v"}}
	nan.AddRow(math.NaN())
	if _, err := json.Marshal(nan); err != nil {
		t.Fatalf("NaN row does not marshal: %v", err)
	}
}
