package experiments

import "testing"

// TestChurnTablesDeterministicAcrossWorkers pins the sweep worker
// bound under the adversarial/churn experiments E32–E34 at 1 and at 8
// and requires byte-identical text, CSV and JSON. E32 and E34 run
// deterministic density engines (no random numbers at all); E33 runs
// packet simulations whose randomness is fully determined by the
// per-cell sweep seeds — so for all three, any divergence would be an
// aggregation-order bug in the sweep runner, not stochastic noise.
func TestChurnTablesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E32 (9 cells at N=10⁶), E33 (9 packet cells) and E34 (6 cells at N=10⁶) twice each")
	}
	for _, tc := range []struct {
		id  string
		run func(rc *Recorder, workers int) (*Table, error)
	}{
		{"E32", e32Table},
		{"E33", e33Table},
		{"E34", e34Table},
	} {
		serial, err := tc.run(nil, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", tc.id, err)
		}
		parallel, err := tc.run(nil, 8)
		if err != nil {
			t.Fatalf("%s workers=8: %v", tc.id, err)
		}
		st, sc, sj := renderTable(t, serial)
		pt, pc, pj := renderTable(t, parallel)
		if st != pt {
			t.Errorf("%s text differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", tc.id, st, pt)
		}
		if sc != pc {
			t.Errorf("%s CSV differs between 1 and 8 workers", tc.id)
		}
		if sj != pj {
			t.Errorf("%s JSON differs between 1 and 8 workers", tc.id)
		}
		if alarm := serial.Alarm(); alarm != "" {
			t.Errorf("%s alarmed: %s", tc.id, alarm)
		}
	}
}
