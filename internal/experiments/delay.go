package experiments

import (
	"math"

	"fpcc/internal/characteristics"
	"fpcc/internal/control"
	"fpcc/internal/fluid"
	"fpcc/internal/stats"
)

// E6DelayOscillation sweeps the feedback delay τ and measures the
// induced limit-cycle amplitude and period of the queue (Section 7:
// "a delay in the feedback information introduces cyclic behavior",
// with amplitude growing with the delay and vanishing as τ → 0).
func E6DelayOscillation(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Caption: "limit-cycle amplitude and period vs feedback delay τ (Section 7)",
		Columns: []string{"τ (s)", "late queue swing", "amplitude", "period (s)"},
	}
	law := refLaw()
	taus := []float64{0, 0.25, 0.5, 1, 2, 4}
	var swings []float64
	for _, tau := range taus {
		m := fluid.Model{
			Mu: refMu, Q0: 0,
			Sources: []fluid.Source{{Law: law, Delay: tau, Lambda0: 2}},
		}
		h := 1e-3
		sol, err := m.Solve(800, h, 20)
		if err != nil {
			return nil, err
		}
		ts, qs := sol.Queue()
		swing := stats.SwingOver(ts, qs, 600)
		osc := stats.MeasureOscillation(ts, qs, 600, math.Max(swing/4, 0.05))
		swings = append(swings, swing)
		period := osc.Period
		t.AddRow(tau, swing, osc.Amplitude, period)
	}
	monotone := true
	for i := 1; i < len(swings); i++ {
		if swings[i] < swings[i-1]-0.5 {
			monotone = false
		}
	}
	if swings[0] < 1 && swings[len(swings)-1] > 5 && monotone {
		t.AddFinding("oscillation amplitude grows with τ and vanishes at τ=0: delay is the cause of the cycles (Section 7)")
	} else {
		t.AddFinding("UNEXPECTED SHAPE: swings %v", swings)
	}
	return t, nil
}

// E7DelayUnfairness examines unfairness across connections with
// different feedback delays (Section 7; Jacobson's and Zhang's
// observation that longer connections fare worse).
//
// Two regimes are measured:
//
//  1. Pure observation delay (same law, different τ): the rate model
//     has an exact symmetry — a time-shifted copy of the short-delay
//     sawtooth solves the long-delay equation — so long-run average
//     shares stay equal even though the instantaneous rates separate.
//     The table verifies this structural property.
//
//  2. Full connection-length coupling: a longer path means both a
//     staler signal (τ ∝ RTT) and a slower additive probe (one window
//     step per RTT, so C0 ∝ 1/RTT in the rate analogue — see
//     control.Window.RateEquivalent). This is the regime the paper's
//     measurements refer to, and it produces strong unfairness against
//     the longer connection, beyond the parameter-only C0/C1 share
//     law of Section 6.
func E7DelayUnfairness(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Caption: "unfairness vs connection length (Section 7): pure delay vs full RTT coupling",
		Columns: []string{"regime", "RTT2/RTT1", "share S1", "share S2", "S1/S2", "C0-law prediction S1/S2"},
	}
	law := refLaw()
	const baseRTT = 0.5

	// Regime 1: pure observation delay, τ2 = 8·τ1.
	m := fluid.Model{
		Mu: refMu, Q0: 0,
		Sources: []fluid.Source{
			{Law: law, Delay: baseRTT, Lambda0: 5},
			{Law: law, Delay: baseRTT * 8, Lambda0: 5},
		},
	}
	sol, err := m.Solve(3000, 5e-3, 100)
	if err != nil {
		return nil, err
	}
	means := sol.MeanRates(1500)
	total := means[0] + means[1]
	pureRatio := means[0] / means[1]
	t.AddRow("pure delay", 8.0, means[0]/total, means[1]/total, pureRatio, 1.0)

	// Regime 2: full RTT coupling, sweeping the length ratio.
	var ratios []float64
	for _, r := range []float64{1, 2, 4, 8} {
		rtt2 := baseRTT * r
		law1 := control.AIMD{C0: refC0, C1: refC1, QHat: refQHat}
		law2 := control.AIMD{C0: refC0 * baseRTT / rtt2, C1: refC1, QHat: refQHat}
		m := fluid.Model{
			Mu: refMu, Q0: 0,
			Sources: []fluid.Source{
				{Law: law1, Delay: baseRTT, Lambda0: 5},
				{Law: law2, Delay: rtt2, Lambda0: 5},
			},
		}
		sol, err := m.Solve(3000, 5e-3, 100)
		if err != nil {
			return nil, err
		}
		means := sol.MeanRates(1500)
		total := means[0] + means[1]
		ratio := means[0] / means[1]
		pred, err := fluid.PredictedShares([]control.AIMD{law1, law2})
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, ratio)
		t.AddRow("RTT-coupled", r, means[0]/total, means[1]/total, ratio, pred[0]/pred[1])
	}
	if math.Abs(pureRatio-1) < 0.05 && math.Abs(ratios[0]-1) < 0.05 && ratios[len(ratios)-1] > 2 {
		t.AddFinding("pure observation delay alone leaves average shares equal (time-shift symmetry of the rate model)")
		t.AddFinding("with the full RTT coupling the longer connection loses, increasingly with length — the unfairness the paper attributes 'partly' to feedback delay")
	} else {
		t.AddFinding("UNEXPECTED SHAPE: pure %v, coupled %v", pureRatio, ratios)
	}
	return t, nil
}

// E8AlgorithmOscillation contrasts AIMD and AIAD without any feedback
// delay: the paper attributes AIMD oscillation to delay alone, while
// linear-increase/linear-decrease oscillates because of the algorithm
// itself (neutrally stable closed orbits).
func E8AlgorithmOscillation(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Caption: "oscillation without delay: AIMD converges, AIAD cycles (Sections 1, 7)",
		Columns: []string{"law", "behavior", "amplitude ratio (last/first)", "late queue swing"},
	}
	const horizon = 400.0
	aimd := refLaw()
	trA, err := characteristics.Trace(aimd, refMu, characteristics.Point{Q: 10, Lambda: 12}, horizon, 1e-3)
	if err != nil {
		return nil, err
	}
	crA := characteristics.UpCrossings(trA, refQHat, refMu)
	behA, ratioA := characteristics.Classify(crA, refMu, 0.05)
	swingA := lateQueueSwing(trA, horizon*0.75)
	t.AddRow("AIMD (lin-inc/exp-dec)", behA.String(), ratioA, swingA)

	aiad, err := control.NewAIAD(refC0, refC1*refMu, refQHat)
	if err != nil {
		return nil, err
	}
	trB, err := characteristics.Trace(aiad, refMu, characteristics.Point{Q: 10, Lambda: 12}, horizon, 1e-3)
	if err != nil {
		return nil, err
	}
	crB := characteristics.UpCrossings(trB, refQHat, refMu)
	behB, ratioB := characteristics.Classify(crB, refMu, 0.05)
	swingB := lateQueueSwing(trB, horizon*0.75)
	t.AddRow("AIAD (lin-inc/lin-dec)", behB.String(), ratioB, swingB)

	if behA == characteristics.Converging && behB == characteristics.NeutralCycle {
		t.AddFinding("with zero delay AIMD's oscillation dies out while AIAD's persists: AIAD oscillates because of the algorithm itself")
	} else {
		t.AddFinding("UNEXPECTED: AIMD=%v AIAD=%v", behA, behB)
	}
	return t, nil
}

// lateQueueSwing measures max-min of q over the trajectory tail.
func lateQueueSwing(tr interface {
	Len() int
	At(i int) (float64, []float64)
}, tFrom float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < tr.Len(); i++ {
		tt, y := tr.At(i)
		if tt < tFrom {
			continue
		}
		lo = math.Min(lo, y[0])
		hi = math.Max(hi, y[0])
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
