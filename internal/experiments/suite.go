package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"regexp"
	"time"

	"fpcc/internal/obs"
	"fpcc/internal/sweep"
)

// This file is the parallel suite runner: it executes any selection
// of the registry on the engine-agnostic worker pool of
// internal/sweep. Experiments are mutually independent and
// internally deterministic, so the suite's text/CSV/JSON renderings
// are byte-identical for any worker count; only the timing report
// (WriteBenchJSON) varies run to run.

// SuiteConfig selects and bounds a suite run.
type SuiteConfig struct {
	// Filter selects experiments whose ID, Title or any Tag matches;
	// nil runs everything.
	Filter *regexp.Regexp
	// Workers bounds the parallelism (0 means GOMAXPROCS).
	Workers int
	// Obs, when non-nil, instruments the run: each experiment gets a
	// recorder scoped to its ID (streaming probes/spans/violations to
	// the configured sink) and its setup/step/render phase spans are
	// harvested into Report.Phases and the bench JSON. Nil is the
	// zero-overhead default; the suite renderings are byte-identical
	// either way.
	Obs *obs.Config
}

// Report is one executed experiment: its registry entry, the table it
// produced, the wall-clock time it took, its resource-annotated
// summary manifest, and — when the run was instrumented — the
// per-phase span totals (seconds by span name, e.g. "setup", "step",
// "render") its recorder accumulated.
type Report struct {
	Experiment Experiment
	Table      *Table
	Elapsed    time.Duration
	Phases     map[string]float64
	// Summary is the experiment's obs.Summary node: the recorder
	// hierarchy's aggregates merged deterministically (empty but for
	// the scope on uninstrumented runs), annotated with the resource
	// deltas harvested around the run — wall and CPU seconds, bytes
	// allocated, mallocs, GC cycles. The process-wide counters
	// attribute exactly at workers=1 and are upper bounds when other
	// experiments run concurrently.
	Summary *obs.Summary
}

// Suite holds the reports of a completed run in registry order, plus
// the inner-worker configuration the two-level scheduler used: the
// base grant each experiment was offered before its Width cap (or the
// SetInnerWorkers override, when set), and the run manifest root.
type Suite struct {
	Reports     []Report
	InnerGrant  int
	InnerForced bool // true when SetInnerWorkers overrode negotiation
	// Resources are the whole-run process deltas (the per-experiment
	// splits live on each Report.Summary).
	Resources obs.Resources
}

// Select returns the registry entries matched by filter (nil = all),
// in registry order.
func Select(filter *regexp.Regexp) []Experiment {
	all := All()
	if filter == nil {
		return all
	}
	var out []Experiment
	for _, e := range all {
		if matches(e, filter) {
			out = append(out, e)
		}
	}
	return out
}

// matches reports whether the filter hits the experiment's ID, Title
// or any Tag.
func matches(e Experiment, filter *regexp.Regexp) bool {
	if filter.MatchString(e.ID) || filter.MatchString(e.Title) {
		return true
	}
	for _, tag := range e.Tags {
		if filter.MatchString(tag) {
			return true
		}
	}
	return false
}

// ErrNoMatch reports a filter that selects nothing; callers can
// errors.Is on it to suggest the registry listing.
var ErrNoMatch = errors.New("no experiment matches the filter")

// RunSuite executes the selected experiments in parallel and returns
// their reports in registry order. A failing experiment aborts the
// suite; the reported error names the lowest-indexed failure
// regardless of worker count.
//
// RunSuite is the outer level of the two-level scheduler: cfg.Workers
// experiments run concurrently, and each receives an inner-worker
// grant negotiated from the shared GOMAXPROCS budget (capped by the
// experiment's declared Width), so outer × inner never oversubscribes
// the machine. Every (outer, inner) split renders byte-identical
// tables; only wall-clock time moves.
func RunSuite(cfg SuiteConfig) (*Suite, error) {
	selected := Select(cfg.Filter)
	if len(selected) == 0 {
		return nil, fmt.Errorf("experiments: %w", ErrNoMatch)
	}
	outer := cfg.Workers
	if n := len(selected); outer > n {
		outer = n
	}
	suiteRec := cfg.Obs.Recorder("suite")
	runStart := obs.ReadResources()
	reports, err := sweep.MapWorker(len(selected), cfg.Workers, func(w, i int) (Report, error) {
		rec := cfg.Obs.Recorder(selected[i].ID)
		sp := suiteRec.WorkerSpan("exp."+selected[i].ID, w)
		before := obs.ReadResources()
		start := time.Now() //fpcc:wallclock -- resource accounting for Report.WallSeconds; never feeds simulation state
		tb, err := selected[i].Run(NewCtx(rec, negotiateInner(outer, selected[i].Width)))
		elapsed := time.Since(start) //fpcc:wallclock -- resource accounting for Report.WallSeconds; never feeds simulation state
		res := obs.ReadResources().Sub(before)
		res.WallSeconds = elapsed.Seconds()
		sp.End()
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", selected[i].ID, err)
		}
		if ferr := rec.Flush(); ferr != nil {
			return Report{}, fmt.Errorf("%s: flushing trace: %w", selected[i].ID, ferr)
		}
		sum := rec.Summary()
		if sum == nil {
			sum = &obs.Summary{Scope: selected[i].ID}
		}
		sum.Resources = &res
		return Report{Experiment: selected[i], Table: tb, Elapsed: elapsed, Phases: rec.SpanSeconds(), Summary: sum}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: suite %w", err)
	}
	if ferr := suiteRec.Flush(); ferr != nil {
		return nil, fmt.Errorf("experiments: flushing suite trace: %w", ferr)
	}
	s := &Suite{Reports: reports, InnerGrant: negotiateInner(outer, 0), Resources: obs.ReadResources().Sub(runStart)}
	if forced := InnerWorkersOverride(); forced > 0 {
		s.InnerGrant, s.InnerForced = forced, true
	}
	return s, nil
}

// Alarms returns every alarmed finding across the suite, prefixed
// with its experiment id.
func (s *Suite) Alarms() []string {
	var out []string
	for _, r := range s.Reports {
		if a := r.Table.Alarm(); a != "" {
			out = append(out, r.Experiment.ID+": "+a)
		}
	}
	return out
}

// WriteText renders every table as aligned plain text, in registry
// order, separated by blank lines. The output is deterministic (no
// timings) and byte-identical for any worker count.
func (s *Suite) WriteText(w io.Writer) error {
	for _, r := range s.Reports {
		if _, err := fmt.Fprintln(w, r.Table.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders every table as a full-precision CSV block (see
// Table.WriteCSV), separated by blank lines. Deterministic for any
// worker count.
func (s *Suite) WriteCSV(w io.Writer) error {
	for i, r := range s.Reports {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := r.Table.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// suiteEntry is the JSON shape of one report (no timing: the JSON
// report is deterministic; timings go to WriteBenchJSON).
type suiteEntry struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Tags  []string `json:"tags"`
	Table *Table   `json:"table"`
}

// WriteJSON renders the suite as indented JSON with full-precision
// row values. Deterministic for any worker count.
func (s *Suite) WriteJSON(w io.Writer) error {
	entries := make([]suiteEntry, len(s.Reports))
	for i, r := range s.Reports {
		entries[i] = suiteEntry{ID: r.Experiment.ID, Title: r.Experiment.Title, Tags: r.Experiment.Tags, Table: r.Table}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// BenchSchema versions the bench JSON artifact. "fpcc-bench/2" added
// the schema field itself and the optional per-experiment phase
// breakdowns; "fpcc-bench/3" added inner_workers (the inner grant of
// the two-level scheduler); "fpcc-bench/4" added per-experiment
// resources (wall/CPU seconds, allocator traffic, GC cycles) and the
// run's obs.Summary manifest. Schema-less files are the v1 shape;
// older baselines still decode — every added field is optional — but
// a pre-v3 baseline cannot be checked for inner-worker mismatch, so
// benchreport only warns for those.
const BenchSchema = "fpcc-bench/4"

// BenchEntry is one experiment's timing in the machine-readable
// benchmark report. Phases, present when the run was instrumented
// (benchreport -trace / SuiteConfig.Obs), breaks Seconds down by span
// name — setup/step/render for the instrumented heavy experiments —
// so a regression names the phase it lives in, not just the
// experiment. Resources (v4) carries the run's process-counter
// deltas: exact at workers=1, an upper bound when experiments ran
// concurrently.
type BenchEntry struct {
	ID        string             `json:"id"`
	Title     string             `json:"title"`
	Seconds   float64            `json:"seconds"`
	Phases    map[string]float64 `json:"phases,omitempty"`
	Resources *obs.Resources     `json:"resources,omitempty"`
}

// BenchReport is the machine-readable per-experiment timing report
// seeding the BENCH_*.json perf trajectory.
type BenchReport struct {
	Schema  string `json:"schema,omitempty"`
	Workers int    `json:"workers"`
	// InnerWorkers is the per-experiment inner grant of the two-level
	// scheduler (before Width caps), or the SetInnerWorkers override.
	// 0 in pre-v3 baselines, which predate the field.
	InnerWorkers int          `json:"inner_workers,omitempty"`
	TotalSeconds float64      `json:"total_seconds"`
	Experiments  []BenchEntry `json:"experiments"`
	// Summary (v4) is the run manifest: a root node carrying the
	// whole-run resource deltas with one child per experiment — each
	// the experiment's recorder hierarchy merged deterministically,
	// annotated with its own resource delta.
	Summary *obs.Summary `json:"summary,omitempty"`
}

// Bench summarizes the suite's timings. total is the wall-clock time
// of the whole run (under parallelism it is less than the sum of the
// per-experiment times); workers records the pool bound used, and the
// suite's inner grant rides along so baseline diffs can refuse
// mismatched worker configurations.
func (s *Suite) Bench(workers int, total time.Duration) *BenchReport {
	rep := &BenchReport{Schema: BenchSchema, Workers: workers, InnerWorkers: s.InnerGrant, TotalSeconds: total.Seconds()}
	rep.Summary = s.Summary()
	for _, r := range s.Reports {
		entry := BenchEntry{
			ID:      r.Experiment.ID,
			Title:   r.Experiment.Title,
			Seconds: r.Elapsed.Seconds(),
		}
		if len(r.Phases) > 0 {
			entry.Phases = r.Phases
		}
		if r.Summary != nil {
			entry.Resources = r.Summary.Resources
		}
		rep.Experiments = append(rep.Experiments, entry)
	}
	return rep
}

// Summary assembles the run manifest: a root node scoped "suite"
// carrying the whole-run resource deltas, with one child per report
// in registry order (the order the suite renders in, which reads
// better in a manifest than the lexicographic child order recorder
// trees use).
func (s *Suite) Summary() *obs.Summary {
	res := s.Resources
	root := &obs.Summary{Scope: "suite", Resources: &res}
	for _, r := range s.Reports {
		if r.Summary != nil {
			root.Children = append(root.Children, r.Summary)
		}
	}
	return root
}

// WriteBenchJSON renders the timing report as indented JSON. Unlike
// the suite renderings this is inherently non-deterministic (it
// reports wall-clock measurements).
func (s *Suite) WriteBenchJSON(w io.Writer, workers int, total time.Duration) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Bench(workers, total))
}
