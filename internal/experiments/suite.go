package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"regexp"
	"time"

	"fpcc/internal/sweep"
)

// This file is the parallel suite runner: it executes any selection
// of the registry on the engine-agnostic worker pool of
// internal/sweep. Experiments are mutually independent and
// internally deterministic, so the suite's text/CSV/JSON renderings
// are byte-identical for any worker count; only the timing report
// (WriteBenchJSON) varies run to run.

// SuiteConfig selects and bounds a suite run.
type SuiteConfig struct {
	// Filter selects experiments whose ID, Title or any Tag matches;
	// nil runs everything.
	Filter *regexp.Regexp
	// Workers bounds the parallelism (0 means GOMAXPROCS).
	Workers int
}

// Report is one executed experiment: its registry entry, the table it
// produced, and the wall-clock time it took.
type Report struct {
	Experiment Experiment
	Table      *Table
	Elapsed    time.Duration
}

// Suite holds the reports of a completed run in registry order.
type Suite struct {
	Reports []Report
}

// Select returns the registry entries matched by filter (nil = all),
// in registry order.
func Select(filter *regexp.Regexp) []Experiment {
	all := All()
	if filter == nil {
		return all
	}
	var out []Experiment
	for _, e := range all {
		if matches(e, filter) {
			out = append(out, e)
		}
	}
	return out
}

// matches reports whether the filter hits the experiment's ID, Title
// or any Tag.
func matches(e Experiment, filter *regexp.Regexp) bool {
	if filter.MatchString(e.ID) || filter.MatchString(e.Title) {
		return true
	}
	for _, tag := range e.Tags {
		if filter.MatchString(tag) {
			return true
		}
	}
	return false
}

// ErrNoMatch reports a filter that selects nothing; callers can
// errors.Is on it to suggest the registry listing.
var ErrNoMatch = errors.New("no experiment matches the filter")

// RunSuite executes the selected experiments in parallel and returns
// their reports in registry order. A failing experiment aborts the
// suite; the reported error names the lowest-indexed failure
// regardless of worker count.
func RunSuite(cfg SuiteConfig) (*Suite, error) {
	selected := Select(cfg.Filter)
	if len(selected) == 0 {
		return nil, fmt.Errorf("experiments: %w", ErrNoMatch)
	}
	reports, err := sweep.Map(len(selected), cfg.Workers, func(i int) (Report, error) {
		start := time.Now()
		tb, err := selected[i].Run()
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", selected[i].ID, err)
		}
		return Report{Experiment: selected[i], Table: tb, Elapsed: time.Since(start)}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: suite %w", err)
	}
	return &Suite{Reports: reports}, nil
}

// Alarms returns every alarmed finding across the suite, prefixed
// with its experiment id.
func (s *Suite) Alarms() []string {
	var out []string
	for _, r := range s.Reports {
		if a := r.Table.Alarm(); a != "" {
			out = append(out, r.Experiment.ID+": "+a)
		}
	}
	return out
}

// WriteText renders every table as aligned plain text, in registry
// order, separated by blank lines. The output is deterministic (no
// timings) and byte-identical for any worker count.
func (s *Suite) WriteText(w io.Writer) error {
	for _, r := range s.Reports {
		if _, err := fmt.Fprintln(w, r.Table.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders every table as a full-precision CSV block (see
// Table.WriteCSV), separated by blank lines. Deterministic for any
// worker count.
func (s *Suite) WriteCSV(w io.Writer) error {
	for i, r := range s.Reports {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := r.Table.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// suiteEntry is the JSON shape of one report (no timing: the JSON
// report is deterministic; timings go to WriteBenchJSON).
type suiteEntry struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Tags  []string `json:"tags"`
	Table *Table   `json:"table"`
}

// WriteJSON renders the suite as indented JSON with full-precision
// row values. Deterministic for any worker count.
func (s *Suite) WriteJSON(w io.Writer) error {
	entries := make([]suiteEntry, len(s.Reports))
	for i, r := range s.Reports {
		entries[i] = suiteEntry{ID: r.Experiment.ID, Title: r.Experiment.Title, Tags: r.Experiment.Tags, Table: r.Table}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// BenchEntry is one experiment's timing in the machine-readable
// benchmark report.
type BenchEntry struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

// BenchReport is the machine-readable per-experiment timing report
// seeding the BENCH_*.json perf trajectory.
type BenchReport struct {
	Workers      int          `json:"workers"`
	TotalSeconds float64      `json:"total_seconds"`
	Experiments  []BenchEntry `json:"experiments"`
}

// Bench summarizes the suite's timings. total is the wall-clock time
// of the whole run (under parallelism it is less than the sum of the
// per-experiment times); workers records the pool bound used.
func (s *Suite) Bench(workers int, total time.Duration) *BenchReport {
	rep := &BenchReport{Workers: workers, TotalSeconds: total.Seconds()}
	for _, r := range s.Reports {
		rep.Experiments = append(rep.Experiments, BenchEntry{
			ID:      r.Experiment.ID,
			Title:   r.Experiment.Title,
			Seconds: r.Elapsed.Seconds(),
		})
	}
	return rep
}

// WriteBenchJSON renders the timing report as indented JSON. Unlike
// the suite renderings this is inherently non-deterministic (it
// reports wall-clock measurements).
func (s *Suite) WriteBenchJSON(w io.Writer, workers int, total time.Duration) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Bench(workers, total))
}
