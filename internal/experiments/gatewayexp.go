package experiments

import (
	"fpcc/internal/control"
	"fpcc/internal/des"
	"fpcc/internal/stats"
)

// E20GatewayComparison holds the control law, delay and load fixed
// and swaps only the gateway's feedback discipline: the paper's raw
// threshold signal, a DECbit-style EWMA average, and RED-style random
// early marking. The paper analyzes the first; DECbit is the feedback
// its Ramakrishnan-Jain citation actually used, and RED is the
// gateway line of work that followed. The comparison shows how much
// of the delayed-feedback oscillation is attributable to the raw,
// synchronous congestion signal.
func E20GatewayComparison(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E20",
		Caption: "gateway feedback disciplines under feedback delay 0.5s (AIMD, μ=30, q̂=15)",
		Columns: []string{"gateway", "throughput", "utilization", "mean queue", "queue std", "rate std"},
	}
	law, err := control.NewAIMD(2, 0.5, 15)
	if err != nil {
		return nil, err
	}
	const (
		mu      = 30.0
		horizon = 3000.0
		warmup  = 500.0
	)
	run := func(gw des.Gateway) (*des.Result, error) {
		sim, err := des.New(des.Config{
			Mu:      mu,
			Seed:    61,
			Gateway: gw,
			Sources: []des.SourceConfig{{
				Law: law, Interval: 0.25, Delay: 0.5, Lambda0: 10, MinRate: 0.5,
			}},
		})
		if err != nil {
			return nil, err
		}
		return sim.Run(horizon, warmup)
	}
	rateStd := func(res *des.Result) float64 {
		var m stats.Moments
		for i, tt := range res.RateT[0] {
			if tt < warmup {
				continue
			}
			m.Add(res.RateL[0][i])
		}
		return m.StdDev()
	}

	ewma, err := des.NewEWMAGateway(1.0)
	if err != nil {
		return nil, err
	}
	red, err := des.NewREDGateway(5, 25, 0.3, 0.5)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name string
		gw   des.Gateway
	}{
		{"threshold (paper)", nil},
		{"ewma / DECbit", ewma},
		{"red / early marking", red},
	}
	var qstd, rstd []float64
	for _, r := range rows {
		res, err := run(r.gw)
		if err != nil {
			return nil, err
		}
		rs := rateStd(res)
		t.AddRow(r.name, res.Throughput[0], res.Throughput[0]/mu,
			res.QueueStats.Mean(), res.QueueStats.StdDev(), rs)
		qstd = append(qstd, res.QueueStats.StdDev())
		rstd = append(rstd, rs)
	}
	if rstd[2] < rstd[0] {
		t.AddFinding("randomized early marking damps the rate oscillation relative to the raw threshold signal (rate std %.2f vs %.2f)", rstd[2], rstd[0])
	} else {
		t.AddFinding("rate std: threshold %.2f, ewma %.2f, red %.2f", rstd[0], rstd[1], rstd[2])
	}
	if qstd[1] != qstd[0] {
		t.AddFinding("EWMA filtering changes the queue spread (%.2f vs %.2f): averaging trades feedback noise for loop lag, shifting the oscillation balance", qstd[1], qstd[0])
	}
	return t, nil
}
