package experiments

import (
	"strings"
	"testing"
)

// TestE9E10TablesDeterministicAcrossInnerWorkers is the tentpole's
// acceptance bar for the optimized Fokker-Planck and SDE hot paths:
// the rendered E9 and E10 tables — text, full-precision CSV and JSON
// — must be byte-identical whether the solver sweeps and the
// Monte-Carlo chunks run on 1 worker or 8. The experiments read the
// package's inner-worker bound, so the test swings it around the
// runs; any scheduling dependence in the parallel sweeps, the
// chunk-ordered reductions or the prefactored diffusion solves shows
// up as a diff here.
func TestE9E10TablesDeterministicAcrossInnerWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second PDE+MC runs")
	}
	defer SetInnerWorkers(0)
	render := func(id string, workers int) string {
		t.Helper()
		SetInnerWorkers(workers)
		var e Experiment
		for _, cand := range All() {
			if cand.ID == id {
				e = cand
			}
		}
		if e.Run == nil {
			t.Fatalf("experiment %s not in registry", id)
		}
		tb, err := e.Run(nil)
		if err != nil {
			t.Fatalf("%s at inner workers %d: %v", id, workers, err)
		}
		var b strings.Builder
		b.WriteString(tb.String())
		if err := tb.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		j, err := tb.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b.Write(j)
		return b.String()
	}
	for _, id := range []string{"E9", "E10"} {
		base := render(id, 1)
		if got := render(id, 8); got != base {
			t.Errorf("%s renders differ between inner workers 1 and 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", id, base, got)
		}
	}
}
