package experiments

import (
	"math"

	"fpcc/internal/characteristics"
	"fpcc/internal/control"
	"fpcc/internal/fokkerplanck"
)

// E11ParameterSweep quantifies Theorem 1 across the (C0, C1) parameter
// plane: convergence holds everywhere (the theorem's content), while
// speed and overshoot trade off — the engineering question ("what
// values should a and d take") the paper poses in Section 2.
func E11ParameterSweep() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Caption: "convergence time and overshoot vs (C0, C1), no delay (Theorem 1)",
		Columns: []string{"C0", "C1", "settling time (s)", "queue overshoot", "behavior"},
	}
	c0s := []float64{0.5, 2, 8}
	c1s := []float64{0.2, 0.8, 3.2}
	allConverge := true
	for _, c0 := range c0s {
		for _, c1 := range c1s {
			law := control.AIMD{C0: c0, C1: c1, QHat: refQHat}
			tr, err := characteristics.Trace(law, refMu, characteristics.Point{Q: 0, Lambda: 2}, 2000, 2e-3)
			if err != nil {
				return nil, err
			}
			settle := characteristics.ConvergenceTime(tr, law, refMu, 0.05)
			over := characteristics.Overshoot(tr, refQHat)
			crossings := characteristics.UpCrossings(tr, refQHat, refMu)
			beh, _ := characteristics.Classify(crossings, refMu, 0.05)
			behStr := beh.String()
			if beh != characteristics.Converging && beh != characteristics.Inconclusive {
				allConverge = false
			}
			if beh == characteristics.Inconclusive {
				// Overdamped runs settle with <3 crossings; verify by
				// the settling time instead.
				if math.IsNaN(settle) {
					allConverge = false
					behStr = "no-settle"
				} else {
					behStr = "overdamped"
				}
			}
			t.AddRow(c0, c1, settle, over, behStr)
		}
	}
	if allConverge {
		t.AddFinding("every (C0, C1) pair converges — Theorem 1 is parameter-free; speed/overshoot trade off across the sweep")
	} else {
		t.AddFinding("CONVERGENCE FAILURE in sweep")
	}
	return t, nil
}

// E12DiffusionSpread quantifies the Section 5 closing remark: with
// σ² > 0 the operating point spreads into a stationary distribution
// whose width grows with σ. We sweep σ and report the stationary
// queue spread around q̂.
func E12DiffusionSpread() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Caption: "stationary queue spread around q̂ vs noise amplitude σ (Section 5, σ²>0)",
		Columns: []string{"σ", "E[Q]", "Std[Q]", "P(Q > q̂+5)"},
	}
	sigmas := []float64{0.5, 1, 2, 4}
	var stds []float64
	for _, sigma := range sigmas {
		// Starting at the operating point itself, the stationary
		// spread is established quickly; a coarser grid suffices for
		// the monotonicity question.
		cfg := e9Config(sigma)
		cfg.NQ, cfg.NV = 100, 80
		s, err := fokkerplanck.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := s.SetGaussian(refQHat, 0, 2, 1); err != nil {
			return nil, err
		}
		if err := s.Advance(60, 0); err != nil {
			return nil, err
		}
		m := s.Moments()
		stds = append(stds, math.Sqrt(m.VarQ))
		t.AddRow(sigma, m.MeanQ, math.Sqrt(m.VarQ), s.TailProb(refQHat+5))
	}
	monotone := true
	for i := 1; i < len(stds); i++ {
		if stds[i] <= stds[i-1] {
			monotone = false
		}
	}
	if monotone {
		t.AddFinding("stationary spread grows monotonically with σ: variability widens the operating point into a distribution")
	} else {
		t.AddFinding("UNEXPECTED: spreads %v", stds)
	}
	return t, nil
}
