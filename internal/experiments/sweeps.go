package experiments

import (
	"math"

	"fpcc/internal/characteristics"
	"fpcc/internal/control"
	"fpcc/internal/fokkerplanck"
	"fpcc/internal/sweep"
)

// E11ParameterSweep quantifies Theorem 1 across the (C0, C1) parameter
// plane: convergence holds everywhere (the theorem's content), while
// speed and overshoot trade off — the engineering question ("what
// values should a and d take") the paper poses in Section 2. The 3×3
// grid runs on the generic parallel sweep runner; cell order (C1
// varying fastest) matches the original nested loop.
func E11ParameterSweep(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	t := &Table{
		ID:      "E11",
		Caption: "convergence time and overshoot vs (C0, C1), no delay (Theorem 1)",
		Columns: []string{"C0", "C1", "settling time (s)", "queue overshoot", "behavior"},
	}
	type cellOut struct {
		settle, over float64
		behavior     string
		converged    bool
	}
	grid := sweep.Grid{Dims: []sweep.Dim{
		{Name: "c0", Values: []float64{0.5, 2, 8}},
		{Name: "c1", Values: []float64{0.2, 0.8, 3.2}},
	}}
	cells, err := sweep.Run(sweep.Config{Grid: grid, Workers: ctx.Inner(), Obs: rc}, func(c sweep.Cell) (cellOut, error) {
		law := control.AIMD{C0: c.Values[0], C1: c.Values[1], QHat: refQHat}
		tr, err := characteristics.Trace(law, refMu, characteristics.Point{Q: 0, Lambda: 2}, 2000, 2e-3)
		if err != nil {
			return cellOut{}, err
		}
		out := cellOut{
			settle:    characteristics.ConvergenceTime(tr, law, refMu, 0.05),
			over:      characteristics.Overshoot(tr, refQHat),
			converged: true,
		}
		crossings := characteristics.UpCrossings(tr, refQHat, refMu)
		beh, _ := characteristics.Classify(crossings, refMu, 0.05)
		out.behavior = beh.String()
		if beh != characteristics.Converging && beh != characteristics.Inconclusive {
			out.converged = false
		}
		if beh == characteristics.Inconclusive {
			// Overdamped runs settle with <3 crossings; verify by
			// the settling time instead.
			if math.IsNaN(out.settle) {
				out.converged = false
				out.behavior = "no-settle"
			} else {
				out.behavior = "overdamped"
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	allConverge := true
	for i, c := range cells {
		vals := grid.Values(i)
		if !c.converged {
			allConverge = false
		}
		t.AddRow(vals[0], vals[1], c.settle, c.over, c.behavior)
	}
	if allConverge {
		t.AddFinding("every (C0, C1) pair converges — Theorem 1 is parameter-free; speed/overshoot trade off across the sweep")
	} else {
		t.AddFinding("CONVERGENCE FAILURE in sweep")
	}
	return t, nil
}

// E12DiffusionSpread quantifies the Section 5 closing remark: with
// σ² > 0 the operating point spreads into a stationary distribution
// whose width grows with σ. We sweep σ on the parallel runner and
// report the stationary queue spread around q̂.
func E12DiffusionSpread(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	t := &Table{
		ID:      "E12",
		Caption: "stationary queue spread around q̂ vs noise amplitude σ (Section 5, σ²>0)",
		Columns: []string{"σ", "E[Q]", "Std[Q]", "P(Q > q̂+5)"},
	}
	sigmas := []float64{0.5, 1, 2, 4}
	type cellOut struct {
		mean, std, tail float64
	}
	cells, err := sweep.Run(sweep.Config{
		Grid:    sweep.Grid{Dims: []sweep.Dim{{Name: "sigma", Values: sigmas}}},
		Workers: ctx.Inner(),
		Obs:     rc,
	}, func(c sweep.Cell) (cellOut, error) {
		// Starting at the operating point itself, the stationary
		// spread is established quickly; a coarser grid suffices for
		// the monotonicity question.
		// Cells already run in parallel; each FP solve stays
		// single-threaded so the sweep pool owns the whole grant.
		cfg := e9Config(c.Values[0], 1)
		cfg.NQ, cfg.NV = 100, 80
		cfg.Float32 = float32For("E12")
		s, err := fokkerplanck.New(cfg)
		if err != nil {
			return cellOut{}, err
		}
		if err := s.SetGaussian(refQHat, 0, 2, 1); err != nil {
			return cellOut{}, err
		}
		if err := s.Advance(60, 0); err != nil {
			return cellOut{}, err
		}
		m := s.Moments()
		return cellOut{mean: m.MeanQ, std: math.Sqrt(m.VarQ), tail: s.TailProb(refQHat + 5)}, nil
	})
	if err != nil {
		return nil, err
	}
	var stds []float64
	for i, c := range cells {
		stds = append(stds, c.std)
		t.AddRow(sigmas[i], c.mean, c.std, c.tail)
	}
	monotone := true
	for i := 1; i < len(stds); i++ {
		if stds[i] <= stds[i-1] {
			monotone = false
		}
	}
	if monotone {
		t.AddFinding("stationary spread grows monotonically with σ: variability widens the operating point into a distribution")
	} else {
		t.AddFinding("UNEXPECTED: spreads %v", stds)
	}
	return t, nil
}
