package experiments

// float32Qualified is the per-experiment precision decision for the
// density kernels' float32 lane (fokkerplanck.Config.Float32,
// meanfield.NewRateDensity32). An experiment may flip to true only if
// its rendered golden tables stay byte-identical under the lane —
// the suite's outputs are full-precision, so this effectively requires
// every rendered digit to survive single precision.
//
// Measured decisions (procedure: FPCC_MEASURE_F32=1 go test
// ./internal/experiments/ -run Float32GoldenDelta -v; deltas recorded
// in EXPERIMENTS.md): all four candidates move their goldens — worst
// relative cell deltas E9 3.0e-5, E10 1.5e-5, E12 1.7e-5, E14 1.2e-6
// — well inside the lane's qualified tolerance but visible in the
// rendered digits — so all four stay on float64. The lane remains
// available (and covered by kernel-level equivalence tests) for
// callers that trade digits for footprint.
var float32Qualified = map[string]bool{
	"E9":  false,
	"E10": false,
	"E12": false,
	"E14": false,
}

// float32For reports whether experiment id renders from the float32
// density lane. Unlisted experiments always use float64.
func float32For(id string) bool { return float32Qualified[id] }
