package experiments

import (
	"fpcc/internal/control"
	"fpcc/internal/des"
)

// E25ImplicitVsExplicit exercises the dichotomy of the paper's very
// first sentence — rates adjusted "based on implicit or explicit
// feedback". The same AIMD law drives one source against the same
// finite-buffer bottleneck under three signals: the paper's explicit
// queue observation, RED-style explicit marking, and the implicit
// TCP-style signal (was one of my packets dropped last interval?).
// Implicit feedback only fires *after* the buffer overflows, so it
// must operate the queue near the top of the buffer and pay a loss
// rate; explicit feedback can hold the queue at q̂ ≪ B with zero loss.
func E25ImplicitVsExplicit(ctx *Ctx) (*Table, error) {
	t := &Table{
		ID:      "E25",
		Caption: "explicit vs implicit feedback at a 40-packet buffer (AIMD, μ=30, q̂=15, delay 0.1s)",
		Columns: []string{"feedback", "throughput", "utilization", "mean queue", "queue std", "loss rate"},
	}
	law, err := control.NewAIMD(2, 0.5, 15)
	if err != nil {
		return nil, err
	}
	const (
		mu      = 30.0
		buffer  = 40
		horizon = 4000.0
		warmup  = 500.0
	)
	run := func(implicit bool, gw des.Gateway) (*des.Result, error) {
		sim, err := des.New(des.Config{
			Mu:      mu,
			Buffer:  buffer,
			Seed:    47,
			Gateway: gw,
			Sources: []des.SourceConfig{{
				Law: law, Interval: 0.25, Delay: 0.1, Lambda0: 5,
				MinRate: 1, ImplicitLoss: implicit,
			}},
		})
		if err != nil {
			return nil, err
		}
		return sim.Run(horizon, warmup)
	}
	addRow := func(name string, res *des.Result) float64 {
		loss := float64(res.Dropped[0]) / float64(res.Dropped[0]+res.Delivered[0])
		t.AddRow(name, res.Throughput[0], res.Throughput[0]/mu,
			res.QueueStats.Mean(), res.QueueStats.StdDev(), loss)
		return loss
	}

	exp, err := run(false, nil)
	if err != nil {
		return nil, err
	}
	lossExp := addRow("explicit queue (paper)", exp)

	red, err := des.NewREDGateway(5, 30, 0.3, 0.5)
	if err != nil {
		return nil, err
	}
	redRes, err := run(false, red)
	if err != nil {
		return nil, err
	}
	addRow("explicit RED marking", redRes)

	imp, err := run(true, nil)
	if err != nil {
		return nil, err
	}
	lossImp := addRow("implicit loss (TCP-style)", imp)

	if lossImp > 0 && lossExp < lossImp/5 {
		t.AddFinding("implicit feedback must fill the buffer to learn anything: the queue rides at %.0f of %d (vs q̂ = 15) and %.2f%% of packets die as signal — it buys its extra utilization (%.2f vs %.2f) with loss and standing delay, the classic bufferbloat trade", imp.QueueStats.Mean(), buffer, 100*lossImp, imp.Throughput[0]/mu, exp.Throughput[0]/mu)
	} else {
		t.AddFinding("loss rates: explicit %.3f%%, implicit %.3f%%", 100*lossExp, 100*lossImp)
	}
	t.AddFinding("the paper's explicit-observation model (with its q̂) operates in a genuinely different regime from the implicit protocols it motivates — the gap RED/ECN later closed")
	return t, nil
}
