package experiments

import (
	"fpcc/internal/control"
	"fpcc/internal/des"
	"fpcc/internal/sweep"
	"fpcc/internal/traffic"
)

// E18BurstinessSweep stresses the AIMD loop with on/off modulated
// traffic of increasing burstiness — the "traffic variability" the
// paper's closing section says distinguishes the Fokker-Planck view
// from fluid approximations. The long-run offered rate is identical
// in every row (the modulators have mean factor 1); only the packet-
// scale variability changes. Burstiness β is the on/off peak factor;
// the equivalent index of dispersion grows with β. The β grid runs on
// the parallel sweep runner, one independent DES per cell.
func E18BurstinessSweep(ctx *Ctx) (*Table, error) {
	rc := ctx.Rec()
	t := &Table{
		ID:      "E18",
		Caption: "AIMD under on/off bursts (2s cycle, mean factor 1): queue statistics vs burstiness",
		Columns: []string{"burstiness β", "throughput", "utilization", "mean queue", "queue std"},
	}
	law, err := control.NewAIMD(2, 0.5, 15)
	if err != nil {
		return nil, err
	}
	const (
		mu      = 30.0
		cycle   = 2.0
		horizon = 4000.0
		warmup  = 500.0
	)
	betas := []float64{1, 2, 4, 8} // β = 1 is plain Poisson
	type cellOut struct {
		throughput, util, meanQ, stdQ float64
	}
	cells, err := sweep.Run(sweep.Config{
		Grid:    sweep.Grid{Dims: []sweep.Dim{{Name: "beta", Values: betas}}},
		Workers: ctx.Inner(),
		Obs:     rc,
	}, func(c sweep.Cell) (cellOut, error) {
		var mod traffic.Modulator
		if beta := c.Values[0]; beta > 1 {
			m, err := traffic.NewOnOff(cycle/beta, cycle-cycle/beta)
			if err != nil {
				return cellOut{}, err
			}
			mod = m
		}
		sim, err := des.New(des.Config{
			Mu:   mu,
			Seed: 33,
			Sources: []des.SourceConfig{{
				Law: law, Interval: 0.25, Lambda0: 10, MinRate: 0.5, Burst: mod,
			}},
		})
		if err != nil {
			return cellOut{}, err
		}
		res, err := sim.Run(horizon, warmup)
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{
			throughput: res.Throughput[0],
			util:       res.Throughput[0] / mu,
			meanQ:      res.QueueStats.Mean(),
			stdQ:       res.QueueStats.StdDev(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var stds, utils []float64
	for i, c := range cells {
		t.AddRow(betas[i], c.throughput, c.util, c.meanQ, c.stdQ)
		stds = append(stds, c.stdQ)
		utils = append(utils, c.util)
	}
	if stds[len(stds)-1] > 1.5*stds[0] {
		t.AddFinding("queue variability grows with burstiness (std %.2f → %.2f) at identical offered load — the spread a fluid model cannot represent", stds[0], stds[len(stds)-1])
	} else {
		t.AddFinding("UNEXPECTED: queue std did not grow with burstiness (%.2f → %.2f)", stds[0], stds[len(stds)-1])
	}
	if utils[len(utils)-1] < utils[0] {
		t.AddFinding("utilization falls with burstiness (%.2f → %.2f): off-periods drain the queue dry and the idle link time is unrecoverable", utils[0], utils[len(utils)-1])
	}
	return t, nil
}
